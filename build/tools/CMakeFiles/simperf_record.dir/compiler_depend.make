# Empty compiler generated dependencies file for simperf_record.
# This may be replaced when dependencies are built.
