file(REMOVE_RECURSE
  "CMakeFiles/simperf_record.dir/simperf_record.cpp.o"
  "CMakeFiles/simperf_record.dir/simperf_record.cpp.o.d"
  "simperf_record"
  "simperf_record.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simperf_record.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
