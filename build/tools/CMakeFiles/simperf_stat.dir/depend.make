# Empty dependencies file for simperf_stat.
# This may be replaced when dependencies are built.
