file(REMOVE_RECURSE
  "CMakeFiles/simperf_stat.dir/simperf_stat.cpp.o"
  "CMakeFiles/simperf_stat.dir/simperf_stat.cpp.o.d"
  "simperf_stat"
  "simperf_stat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simperf_stat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
