file(REMOVE_RECURSE
  "CMakeFiles/papi_native_avail.dir/papi_native_avail.cpp.o"
  "CMakeFiles/papi_native_avail.dir/papi_native_avail.cpp.o.d"
  "papi_native_avail"
  "papi_native_avail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papi_native_avail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
