# Empty compiler generated dependencies file for papi_native_avail.
# This may be replaced when dependencies are built.
