file(REMOVE_RECURSE
  "CMakeFiles/papi_avail.dir/papi_avail.cpp.o"
  "CMakeFiles/papi_avail.dir/papi_avail.cpp.o.d"
  "papi_avail"
  "papi_avail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papi_avail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
