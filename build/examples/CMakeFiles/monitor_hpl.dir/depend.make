# Empty dependencies file for monitor_hpl.
# This may be replaced when dependencies are built.
