file(REMOVE_RECURSE
  "CMakeFiles/monitor_hpl.dir/monitor_hpl.cpp.o"
  "CMakeFiles/monitor_hpl.dir/monitor_hpl.cpp.o.d"
  "monitor_hpl"
  "monitor_hpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_hpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
