file(REMOVE_RECURSE
  "CMakeFiles/hpl_timeline.dir/hpl_timeline.cpp.o"
  "CMakeFiles/hpl_timeline.dir/hpl_timeline.cpp.o.d"
  "hpl_timeline"
  "hpl_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpl_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
