# Empty compiler generated dependencies file for hpl_timeline.
# This may be replaced when dependencies are built.
