file(REMOVE_RECURSE
  "CMakeFiles/sysdetect_report.dir/sysdetect_report.cpp.o"
  "CMakeFiles/sysdetect_report.dir/sysdetect_report.cpp.o.d"
  "sysdetect_report"
  "sysdetect_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysdetect_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
