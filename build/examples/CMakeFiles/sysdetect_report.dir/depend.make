# Empty dependencies file for sysdetect_report.
# This may be replaced when dependencies are built.
