file(REMOVE_RECURSE
  "CMakeFiles/hybrid_native_events.dir/hybrid_native_events.cpp.o"
  "CMakeFiles/hybrid_native_events.dir/hybrid_native_events.cpp.o.d"
  "hybrid_native_events"
  "hybrid_native_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_native_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
