# Empty compiler generated dependencies file for hybrid_native_events.
# This may be replaced when dependencies are built.
