# Empty dependencies file for sampling_profile.
# This may be replaced when dependencies are built.
