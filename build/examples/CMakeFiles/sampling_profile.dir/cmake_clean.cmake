file(REMOVE_RECURSE
  "CMakeFiles/sampling_profile.dir/sampling_profile.cpp.o"
  "CMakeFiles/sampling_profile.dir/sampling_profile.cpp.o.d"
  "sampling_profile"
  "sampling_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampling_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
