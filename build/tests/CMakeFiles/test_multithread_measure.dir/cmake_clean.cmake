file(REMOVE_RECURSE
  "CMakeFiles/test_multithread_measure.dir/test_multithread_measure.cpp.o"
  "CMakeFiles/test_multithread_measure.dir/test_multithread_measure.cpp.o.d"
  "test_multithread_measure"
  "test_multithread_measure.pdb"
  "test_multithread_measure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multithread_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
