file(REMOVE_RECURSE
  "CMakeFiles/test_hpl.dir/test_hpl.cpp.o"
  "CMakeFiles/test_hpl.dir/test_hpl.cpp.o.d"
  "test_hpl"
  "test_hpl.pdb"
  "test_hpl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
