# Empty dependencies file for test_hpl.
# This may be replaced when dependencies are built.
