file(REMOVE_RECURSE
  "CMakeFiles/test_pmu_registry.dir/test_pmu_registry.cpp.o"
  "CMakeFiles/test_pmu_registry.dir/test_pmu_registry.cpp.o.d"
  "test_pmu_registry"
  "test_pmu_registry.pdb"
  "test_pmu_registry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmu_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
