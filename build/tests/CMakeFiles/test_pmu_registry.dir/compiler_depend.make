# Empty compiler generated dependencies file for test_pmu_registry.
# This may be replaced when dependencies are built.
