
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/test_thread_pool.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/test_thread_pool.dir/test_thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/hetpapi_base.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/hetpapi_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/cpumodel/CMakeFiles/hetpapi_cpumodel.dir/DependInfo.cmake"
  "/root/repo/build/src/simkernel/CMakeFiles/hetpapi_simkernel.dir/DependInfo.cmake"
  "/root/repo/build/src/pfm/CMakeFiles/hetpapi_pfm.dir/DependInfo.cmake"
  "/root/repo/build/src/papi/CMakeFiles/hetpapi_papi.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hetpapi_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/hetpapi_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/linuxkernel/CMakeFiles/hetpapi_linuxkernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
