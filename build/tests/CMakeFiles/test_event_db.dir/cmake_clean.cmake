file(REMOVE_RECURSE
  "CMakeFiles/test_event_db.dir/test_event_db.cpp.o"
  "CMakeFiles/test_event_db.dir/test_event_db.cpp.o.d"
  "test_event_db"
  "test_event_db.pdb"
  "test_event_db[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
