# Empty dependencies file for test_event_db.
# This may be replaced when dependencies are built.
