file(REMOVE_RECURSE
  "CMakeFiles/test_overflow.dir/test_overflow.cpp.o"
  "CMakeFiles/test_overflow.dir/test_overflow.cpp.o.d"
  "test_overflow"
  "test_overflow.pdb"
  "test_overflow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
