# Empty compiler generated dependencies file for test_containers.
# This may be replaced when dependencies are built.
