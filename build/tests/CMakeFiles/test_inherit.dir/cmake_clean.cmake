file(REMOVE_RECURSE
  "CMakeFiles/test_inherit.dir/test_inherit.cpp.o"
  "CMakeFiles/test_inherit.dir/test_inherit.cpp.o.d"
  "test_inherit"
  "test_inherit.pdb"
  "test_inherit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inherit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
