# Empty compiler generated dependencies file for test_inherit.
# This may be replaced when dependencies are built.
