file(REMOVE_RECURSE
  "CMakeFiles/test_cpumodel.dir/test_cpumodel.cpp.o"
  "CMakeFiles/test_cpumodel.dir/test_cpumodel.cpp.o.d"
  "test_cpumodel"
  "test_cpumodel.pdb"
  "test_cpumodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpumodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
