# Empty compiler generated dependencies file for test_cpumodel.
# This may be replaced when dependencies are built.
