# Empty compiler generated dependencies file for test_hybrid_matrix.
# This may be replaced when dependencies are built.
