file(REMOVE_RECURSE
  "CMakeFiles/test_hybrid_matrix.dir/test_hybrid_matrix.cpp.o"
  "CMakeFiles/test_hybrid_matrix.dir/test_hybrid_matrix.cpp.o.d"
  "test_hybrid_matrix"
  "test_hybrid_matrix.pdb"
  "test_hybrid_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hybrid_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
