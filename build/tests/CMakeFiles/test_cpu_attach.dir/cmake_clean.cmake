file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_attach.dir/test_cpu_attach.cpp.o"
  "CMakeFiles/test_cpu_attach.dir/test_cpu_attach.cpp.o.d"
  "test_cpu_attach"
  "test_cpu_attach.pdb"
  "test_cpu_attach[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_attach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
