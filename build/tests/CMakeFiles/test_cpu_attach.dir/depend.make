# Empty dependencies file for test_cpu_attach.
# This may be replaced when dependencies are built.
