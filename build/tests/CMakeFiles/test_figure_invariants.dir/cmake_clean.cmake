file(REMOVE_RECURSE
  "CMakeFiles/test_figure_invariants.dir/test_figure_invariants.cpp.o"
  "CMakeFiles/test_figure_invariants.dir/test_figure_invariants.cpp.o.d"
  "test_figure_invariants"
  "test_figure_invariants.pdb"
  "test_figure_invariants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_figure_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
