# Empty compiler generated dependencies file for test_sample_ring.
# This may be replaced when dependencies are built.
