file(REMOVE_RECURSE
  "CMakeFiles/test_sample_ring.dir/test_sample_ring.cpp.o"
  "CMakeFiles/test_sample_ring.dir/test_sample_ring.cpp.o.d"
  "test_sample_ring"
  "test_sample_ring.pdb"
  "test_sample_ring[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sample_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
