file(REMOVE_RECURSE
  "CMakeFiles/test_machine_presets.dir/test_machine_presets.cpp.o"
  "CMakeFiles/test_machine_presets.dir/test_machine_presets.cpp.o.d"
  "test_machine_presets"
  "test_machine_presets.pdb"
  "test_machine_presets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_presets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
