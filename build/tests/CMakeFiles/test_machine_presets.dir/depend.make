# Empty dependencies file for test_machine_presets.
# This may be replaced when dependencies are built.
