# Empty compiler generated dependencies file for test_pfm.
# This may be replaced when dependencies are built.
