file(REMOVE_RECURSE
  "CMakeFiles/test_pfm.dir/test_pfm.cpp.o"
  "CMakeFiles/test_pfm.dir/test_pfm.cpp.o.d"
  "test_pfm"
  "test_pfm.pdb"
  "test_pfm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pfm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
