file(REMOVE_RECURSE
  "CMakeFiles/test_programs.dir/test_programs.cpp.o"
  "CMakeFiles/test_programs.dir/test_programs.cpp.o.d"
  "test_programs"
  "test_programs.pdb"
  "test_programs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
