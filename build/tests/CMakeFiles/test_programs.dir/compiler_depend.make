# Empty compiler generated dependencies file for test_programs.
# This may be replaced when dependencies are built.
