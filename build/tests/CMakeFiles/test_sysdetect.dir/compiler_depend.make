# Empty compiler generated dependencies file for test_sysdetect.
# This may be replaced when dependencies are built.
