file(REMOVE_RECURSE
  "CMakeFiles/test_sysdetect.dir/test_sysdetect.cpp.o"
  "CMakeFiles/test_sysdetect.dir/test_sysdetect.cpp.o.d"
  "test_sysdetect"
  "test_sysdetect.pdb"
  "test_sysdetect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sysdetect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
