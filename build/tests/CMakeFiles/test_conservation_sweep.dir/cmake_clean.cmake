file(REMOVE_RECURSE
  "CMakeFiles/test_conservation_sweep.dir/test_conservation_sweep.cpp.o"
  "CMakeFiles/test_conservation_sweep.dir/test_conservation_sweep.cpp.o.d"
  "test_conservation_sweep"
  "test_conservation_sweep.pdb"
  "test_conservation_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conservation_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
