file(REMOVE_RECURSE
  "CMakeFiles/test_headers.dir/test_headers.cpp.o"
  "CMakeFiles/test_headers.dir/test_headers.cpp.o.d"
  "test_headers"
  "test_headers.pdb"
  "test_headers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_headers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
