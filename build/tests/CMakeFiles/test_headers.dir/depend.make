# Empty dependencies file for test_headers.
# This may be replaced when dependencies are built.
