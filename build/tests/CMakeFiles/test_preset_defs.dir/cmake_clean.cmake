file(REMOVE_RECURSE
  "CMakeFiles/test_preset_defs.dir/test_preset_defs.cpp.o"
  "CMakeFiles/test_preset_defs.dir/test_preset_defs.cpp.o.d"
  "test_preset_defs"
  "test_preset_defs.pdb"
  "test_preset_defs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preset_defs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
