# Empty compiler generated dependencies file for test_preset_defs.
# This may be replaced when dependencies are built.
