# Empty dependencies file for test_library.
# This may be replaced when dependencies are built.
