# Empty dependencies file for test_sysfs.
# This may be replaced when dependencies are built.
