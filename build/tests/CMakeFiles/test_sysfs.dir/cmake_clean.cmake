file(REMOVE_RECURSE
  "CMakeFiles/test_sysfs.dir/test_sysfs.cpp.o"
  "CMakeFiles/test_sysfs.dir/test_sysfs.cpp.o.d"
  "test_sysfs"
  "test_sysfs.pdb"
  "test_sysfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sysfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
