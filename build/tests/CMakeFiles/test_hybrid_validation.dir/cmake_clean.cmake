file(REMOVE_RECURSE
  "CMakeFiles/test_hybrid_validation.dir/test_hybrid_validation.cpp.o"
  "CMakeFiles/test_hybrid_validation.dir/test_hybrid_validation.cpp.o.d"
  "test_hybrid_validation"
  "test_hybrid_validation.pdb"
  "test_hybrid_validation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hybrid_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
