# Empty dependencies file for test_hybrid_validation.
# This may be replaced when dependencies are built.
