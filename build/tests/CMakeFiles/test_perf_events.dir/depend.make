# Empty dependencies file for test_perf_events.
# This may be replaced when dependencies are built.
