file(REMOVE_RECURSE
  "CMakeFiles/test_perf_events.dir/test_perf_events.cpp.o"
  "CMakeFiles/test_perf_events.dir/test_perf_events.cpp.o.d"
  "test_perf_events"
  "test_perf_events.pdb"
  "test_perf_events[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
