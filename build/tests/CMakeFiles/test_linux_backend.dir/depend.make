# Empty dependencies file for test_linux_backend.
# This may be replaced when dependencies are built.
