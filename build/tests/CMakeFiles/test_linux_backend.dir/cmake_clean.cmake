file(REMOVE_RECURSE
  "CMakeFiles/test_linux_backend.dir/test_linux_backend.cpp.o"
  "CMakeFiles/test_linux_backend.dir/test_linux_backend.cpp.o.d"
  "test_linux_backend"
  "test_linux_backend.pdb"
  "test_linux_backend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linux_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
