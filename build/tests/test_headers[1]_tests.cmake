add_test([=[Headers.AllPublicHeadersAreSelfContained]=]  /root/repo/build/tests/test_headers [==[--gtest_filter=Headers.AllPublicHeadersAreSelfContained]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Headers.AllPublicHeadersAreSelfContained]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_headers_TESTS Headers.AllPublicHeadersAreSelfContained)
