# Empty dependencies file for hetpapi_base.
# This may be replaced when dependencies are built.
