file(REMOVE_RECURSE
  "CMakeFiles/hetpapi_base.dir/log.cpp.o"
  "CMakeFiles/hetpapi_base.dir/log.cpp.o.d"
  "CMakeFiles/hetpapi_base.dir/strings.cpp.o"
  "CMakeFiles/hetpapi_base.dir/strings.cpp.o.d"
  "CMakeFiles/hetpapi_base.dir/table.cpp.o"
  "CMakeFiles/hetpapi_base.dir/table.cpp.o.d"
  "CMakeFiles/hetpapi_base.dir/thread_pool.cpp.o"
  "CMakeFiles/hetpapi_base.dir/thread_pool.cpp.o.d"
  "libhetpapi_base.a"
  "libhetpapi_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetpapi_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
