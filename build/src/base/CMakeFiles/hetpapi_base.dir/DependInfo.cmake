
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/log.cpp" "src/base/CMakeFiles/hetpapi_base.dir/log.cpp.o" "gcc" "src/base/CMakeFiles/hetpapi_base.dir/log.cpp.o.d"
  "/root/repo/src/base/strings.cpp" "src/base/CMakeFiles/hetpapi_base.dir/strings.cpp.o" "gcc" "src/base/CMakeFiles/hetpapi_base.dir/strings.cpp.o.d"
  "/root/repo/src/base/table.cpp" "src/base/CMakeFiles/hetpapi_base.dir/table.cpp.o" "gcc" "src/base/CMakeFiles/hetpapi_base.dir/table.cpp.o.d"
  "/root/repo/src/base/thread_pool.cpp" "src/base/CMakeFiles/hetpapi_base.dir/thread_pool.cpp.o" "gcc" "src/base/CMakeFiles/hetpapi_base.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
