file(REMOVE_RECURSE
  "libhetpapi_base.a"
)
