# Empty dependencies file for hetpapi_simkernel.
# This may be replaced when dependencies are built.
