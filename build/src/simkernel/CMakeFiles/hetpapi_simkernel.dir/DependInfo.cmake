
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simkernel/kernel.cpp" "src/simkernel/CMakeFiles/hetpapi_simkernel.dir/kernel.cpp.o" "gcc" "src/simkernel/CMakeFiles/hetpapi_simkernel.dir/kernel.cpp.o.d"
  "/root/repo/src/simkernel/perf_events.cpp" "src/simkernel/CMakeFiles/hetpapi_simkernel.dir/perf_events.cpp.o" "gcc" "src/simkernel/CMakeFiles/hetpapi_simkernel.dir/perf_events.cpp.o.d"
  "/root/repo/src/simkernel/pmu.cpp" "src/simkernel/CMakeFiles/hetpapi_simkernel.dir/pmu.cpp.o" "gcc" "src/simkernel/CMakeFiles/hetpapi_simkernel.dir/pmu.cpp.o.d"
  "/root/repo/src/simkernel/scheduler.cpp" "src/simkernel/CMakeFiles/hetpapi_simkernel.dir/scheduler.cpp.o" "gcc" "src/simkernel/CMakeFiles/hetpapi_simkernel.dir/scheduler.cpp.o.d"
  "/root/repo/src/simkernel/sysfs.cpp" "src/simkernel/CMakeFiles/hetpapi_simkernel.dir/sysfs.cpp.o" "gcc" "src/simkernel/CMakeFiles/hetpapi_simkernel.dir/sysfs.cpp.o.d"
  "/root/repo/src/simkernel/trace.cpp" "src/simkernel/CMakeFiles/hetpapi_simkernel.dir/trace.cpp.o" "gcc" "src/simkernel/CMakeFiles/hetpapi_simkernel.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/hetpapi_base.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/hetpapi_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/cpumodel/CMakeFiles/hetpapi_cpumodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
