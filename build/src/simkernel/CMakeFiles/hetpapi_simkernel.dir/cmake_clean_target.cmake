file(REMOVE_RECURSE
  "libhetpapi_simkernel.a"
)
