file(REMOVE_RECURSE
  "CMakeFiles/hetpapi_simkernel.dir/kernel.cpp.o"
  "CMakeFiles/hetpapi_simkernel.dir/kernel.cpp.o.d"
  "CMakeFiles/hetpapi_simkernel.dir/perf_events.cpp.o"
  "CMakeFiles/hetpapi_simkernel.dir/perf_events.cpp.o.d"
  "CMakeFiles/hetpapi_simkernel.dir/pmu.cpp.o"
  "CMakeFiles/hetpapi_simkernel.dir/pmu.cpp.o.d"
  "CMakeFiles/hetpapi_simkernel.dir/scheduler.cpp.o"
  "CMakeFiles/hetpapi_simkernel.dir/scheduler.cpp.o.d"
  "CMakeFiles/hetpapi_simkernel.dir/sysfs.cpp.o"
  "CMakeFiles/hetpapi_simkernel.dir/sysfs.cpp.o.d"
  "CMakeFiles/hetpapi_simkernel.dir/trace.cpp.o"
  "CMakeFiles/hetpapi_simkernel.dir/trace.cpp.o.d"
  "libhetpapi_simkernel.a"
  "libhetpapi_simkernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetpapi_simkernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
