file(REMOVE_RECURSE
  "libhetpapi_cpumodel.a"
)
