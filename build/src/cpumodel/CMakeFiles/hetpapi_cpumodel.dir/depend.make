# Empty dependencies file for hetpapi_cpumodel.
# This may be replaced when dependencies are built.
