
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpumodel/dvfs.cpp" "src/cpumodel/CMakeFiles/hetpapi_cpumodel.dir/dvfs.cpp.o" "gcc" "src/cpumodel/CMakeFiles/hetpapi_cpumodel.dir/dvfs.cpp.o.d"
  "/root/repo/src/cpumodel/machine.cpp" "src/cpumodel/CMakeFiles/hetpapi_cpumodel.dir/machine.cpp.o" "gcc" "src/cpumodel/CMakeFiles/hetpapi_cpumodel.dir/machine.cpp.o.d"
  "/root/repo/src/cpumodel/power.cpp" "src/cpumodel/CMakeFiles/hetpapi_cpumodel.dir/power.cpp.o" "gcc" "src/cpumodel/CMakeFiles/hetpapi_cpumodel.dir/power.cpp.o.d"
  "/root/repo/src/cpumodel/thermal.cpp" "src/cpumodel/CMakeFiles/hetpapi_cpumodel.dir/thermal.cpp.o" "gcc" "src/cpumodel/CMakeFiles/hetpapi_cpumodel.dir/thermal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/hetpapi_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
