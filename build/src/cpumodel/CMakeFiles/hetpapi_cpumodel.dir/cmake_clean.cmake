file(REMOVE_RECURSE
  "CMakeFiles/hetpapi_cpumodel.dir/dvfs.cpp.o"
  "CMakeFiles/hetpapi_cpumodel.dir/dvfs.cpp.o.d"
  "CMakeFiles/hetpapi_cpumodel.dir/machine.cpp.o"
  "CMakeFiles/hetpapi_cpumodel.dir/machine.cpp.o.d"
  "CMakeFiles/hetpapi_cpumodel.dir/power.cpp.o"
  "CMakeFiles/hetpapi_cpumodel.dir/power.cpp.o.d"
  "CMakeFiles/hetpapi_cpumodel.dir/thermal.cpp.o"
  "CMakeFiles/hetpapi_cpumodel.dir/thermal.cpp.o.d"
  "libhetpapi_cpumodel.a"
  "libhetpapi_cpumodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetpapi_cpumodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
