file(REMOVE_RECURSE
  "CMakeFiles/hetpapi_telemetry.dir/monitor.cpp.o"
  "CMakeFiles/hetpapi_telemetry.dir/monitor.cpp.o.d"
  "CMakeFiles/hetpapi_telemetry.dir/multi_run.cpp.o"
  "CMakeFiles/hetpapi_telemetry.dir/multi_run.cpp.o.d"
  "CMakeFiles/hetpapi_telemetry.dir/sampler.cpp.o"
  "CMakeFiles/hetpapi_telemetry.dir/sampler.cpp.o.d"
  "libhetpapi_telemetry.a"
  "libhetpapi_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetpapi_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
