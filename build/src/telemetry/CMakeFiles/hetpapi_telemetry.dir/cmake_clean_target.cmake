file(REMOVE_RECURSE
  "libhetpapi_telemetry.a"
)
