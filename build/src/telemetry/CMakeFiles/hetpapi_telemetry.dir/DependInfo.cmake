
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/monitor.cpp" "src/telemetry/CMakeFiles/hetpapi_telemetry.dir/monitor.cpp.o" "gcc" "src/telemetry/CMakeFiles/hetpapi_telemetry.dir/monitor.cpp.o.d"
  "/root/repo/src/telemetry/multi_run.cpp" "src/telemetry/CMakeFiles/hetpapi_telemetry.dir/multi_run.cpp.o" "gcc" "src/telemetry/CMakeFiles/hetpapi_telemetry.dir/multi_run.cpp.o.d"
  "/root/repo/src/telemetry/sampler.cpp" "src/telemetry/CMakeFiles/hetpapi_telemetry.dir/sampler.cpp.o" "gcc" "src/telemetry/CMakeFiles/hetpapi_telemetry.dir/sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/hetpapi_base.dir/DependInfo.cmake"
  "/root/repo/build/src/simkernel/CMakeFiles/hetpapi_simkernel.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hetpapi_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/hetpapi_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/cpumodel/CMakeFiles/hetpapi_cpumodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
