# Empty compiler generated dependencies file for hetpapi_telemetry.
# This may be replaced when dependencies are built.
