file(REMOVE_RECURSE
  "CMakeFiles/hetpapi_pfm.dir/event_db.cpp.o"
  "CMakeFiles/hetpapi_pfm.dir/event_db.cpp.o.d"
  "CMakeFiles/hetpapi_pfm.dir/host.cpp.o"
  "CMakeFiles/hetpapi_pfm.dir/host.cpp.o.d"
  "CMakeFiles/hetpapi_pfm.dir/pfmlib.cpp.o"
  "CMakeFiles/hetpapi_pfm.dir/pfmlib.cpp.o.d"
  "libhetpapi_pfm.a"
  "libhetpapi_pfm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetpapi_pfm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
