file(REMOVE_RECURSE
  "libhetpapi_pfm.a"
)
