# Empty compiler generated dependencies file for hetpapi_pfm.
# This may be replaced when dependencies are built.
