file(REMOVE_RECURSE
  "libhetpapi_workload.a"
)
