# Empty compiler generated dependencies file for hetpapi_workload.
# This may be replaced when dependencies are built.
