file(REMOVE_RECURSE
  "CMakeFiles/hetpapi_workload.dir/exec_model.cpp.o"
  "CMakeFiles/hetpapi_workload.dir/exec_model.cpp.o.d"
  "CMakeFiles/hetpapi_workload.dir/hpl.cpp.o"
  "CMakeFiles/hetpapi_workload.dir/hpl.cpp.o.d"
  "CMakeFiles/hetpapi_workload.dir/programs.cpp.o"
  "CMakeFiles/hetpapi_workload.dir/programs.cpp.o.d"
  "libhetpapi_workload.a"
  "libhetpapi_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetpapi_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
