
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/exec_model.cpp" "src/workload/CMakeFiles/hetpapi_workload.dir/exec_model.cpp.o" "gcc" "src/workload/CMakeFiles/hetpapi_workload.dir/exec_model.cpp.o.d"
  "/root/repo/src/workload/hpl.cpp" "src/workload/CMakeFiles/hetpapi_workload.dir/hpl.cpp.o" "gcc" "src/workload/CMakeFiles/hetpapi_workload.dir/hpl.cpp.o.d"
  "/root/repo/src/workload/programs.cpp" "src/workload/CMakeFiles/hetpapi_workload.dir/programs.cpp.o" "gcc" "src/workload/CMakeFiles/hetpapi_workload.dir/programs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/hetpapi_base.dir/DependInfo.cmake"
  "/root/repo/build/src/cpumodel/CMakeFiles/hetpapi_cpumodel.dir/DependInfo.cmake"
  "/root/repo/build/src/simkernel/CMakeFiles/hetpapi_simkernel.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/hetpapi_vfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
