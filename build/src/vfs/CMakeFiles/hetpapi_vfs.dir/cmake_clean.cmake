file(REMOVE_RECURSE
  "CMakeFiles/hetpapi_vfs.dir/vfs.cpp.o"
  "CMakeFiles/hetpapi_vfs.dir/vfs.cpp.o.d"
  "libhetpapi_vfs.a"
  "libhetpapi_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetpapi_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
