file(REMOVE_RECURSE
  "libhetpapi_vfs.a"
)
