# Empty compiler generated dependencies file for hetpapi_vfs.
# This may be replaced when dependencies are built.
