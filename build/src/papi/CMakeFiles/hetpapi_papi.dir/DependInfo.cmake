
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/papi/detect.cpp" "src/papi/CMakeFiles/hetpapi_papi.dir/detect.cpp.o" "gcc" "src/papi/CMakeFiles/hetpapi_papi.dir/detect.cpp.o.d"
  "/root/repo/src/papi/library.cpp" "src/papi/CMakeFiles/hetpapi_papi.dir/library.cpp.o" "gcc" "src/papi/CMakeFiles/hetpapi_papi.dir/library.cpp.o.d"
  "/root/repo/src/papi/preset_defs.cpp" "src/papi/CMakeFiles/hetpapi_papi.dir/preset_defs.cpp.o" "gcc" "src/papi/CMakeFiles/hetpapi_papi.dir/preset_defs.cpp.o.d"
  "/root/repo/src/papi/presets.cpp" "src/papi/CMakeFiles/hetpapi_papi.dir/presets.cpp.o" "gcc" "src/papi/CMakeFiles/hetpapi_papi.dir/presets.cpp.o.d"
  "/root/repo/src/papi/sysdetect.cpp" "src/papi/CMakeFiles/hetpapi_papi.dir/sysdetect.cpp.o" "gcc" "src/papi/CMakeFiles/hetpapi_papi.dir/sysdetect.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/hetpapi_base.dir/DependInfo.cmake"
  "/root/repo/build/src/pfm/CMakeFiles/hetpapi_pfm.dir/DependInfo.cmake"
  "/root/repo/build/src/simkernel/CMakeFiles/hetpapi_simkernel.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/hetpapi_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/cpumodel/CMakeFiles/hetpapi_cpumodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
