file(REMOVE_RECURSE
  "CMakeFiles/hetpapi_papi.dir/detect.cpp.o"
  "CMakeFiles/hetpapi_papi.dir/detect.cpp.o.d"
  "CMakeFiles/hetpapi_papi.dir/library.cpp.o"
  "CMakeFiles/hetpapi_papi.dir/library.cpp.o.d"
  "CMakeFiles/hetpapi_papi.dir/preset_defs.cpp.o"
  "CMakeFiles/hetpapi_papi.dir/preset_defs.cpp.o.d"
  "CMakeFiles/hetpapi_papi.dir/presets.cpp.o"
  "CMakeFiles/hetpapi_papi.dir/presets.cpp.o.d"
  "CMakeFiles/hetpapi_papi.dir/sysdetect.cpp.o"
  "CMakeFiles/hetpapi_papi.dir/sysdetect.cpp.o.d"
  "libhetpapi_papi.a"
  "libhetpapi_papi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetpapi_papi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
