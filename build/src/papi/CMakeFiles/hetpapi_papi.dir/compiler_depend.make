# Empty compiler generated dependencies file for hetpapi_papi.
# This may be replaced when dependencies are built.
