file(REMOVE_RECURSE
  "libhetpapi_papi.a"
)
