file(REMOVE_RECURSE
  "CMakeFiles/hetpapi_linuxkernel.dir/linux_backend.cpp.o"
  "CMakeFiles/hetpapi_linuxkernel.dir/linux_backend.cpp.o.d"
  "libhetpapi_linuxkernel.a"
  "libhetpapi_linuxkernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetpapi_linuxkernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
