file(REMOVE_RECURSE
  "libhetpapi_linuxkernel.a"
)
