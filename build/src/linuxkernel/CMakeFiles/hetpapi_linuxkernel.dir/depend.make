# Empty dependencies file for hetpapi_linuxkernel.
# This may be replaced when dependencies are built.
