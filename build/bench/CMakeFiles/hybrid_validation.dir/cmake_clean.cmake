file(REMOVE_RECURSE
  "CMakeFiles/hybrid_validation.dir/hybrid_validation.cpp.o"
  "CMakeFiles/hybrid_validation.dir/hybrid_validation.cpp.o.d"
  "hybrid_validation"
  "hybrid_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
