# Empty dependencies file for hybrid_validation.
# This may be replaced when dependencies are built.
