# Empty dependencies file for ablation_energy.
# This may be replaced when dependencies are built.
