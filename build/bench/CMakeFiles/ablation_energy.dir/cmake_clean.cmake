file(REMOVE_RECURSE
  "CMakeFiles/ablation_energy.dir/ablation_energy.cpp.o"
  "CMakeFiles/ablation_energy.dir/ablation_energy.cpp.o.d"
  "ablation_energy"
  "ablation_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
