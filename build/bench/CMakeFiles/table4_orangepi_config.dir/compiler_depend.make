# Empty compiler generated dependencies file for table4_orangepi_config.
# This may be replaced when dependencies are built.
