file(REMOVE_RECURSE
  "CMakeFiles/table4_orangepi_config.dir/table4_orangepi_config.cpp.o"
  "CMakeFiles/table4_orangepi_config.dir/table4_orangepi_config.cpp.o.d"
  "table4_orangepi_config"
  "table4_orangepi_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_orangepi_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
