file(REMOVE_RECURSE
  "CMakeFiles/table2_hpl_gflops.dir/table2_hpl_gflops.cpp.o"
  "CMakeFiles/table2_hpl_gflops.dir/table2_hpl_gflops.cpp.o.d"
  "table2_hpl_gflops"
  "table2_hpl_gflops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_hpl_gflops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
