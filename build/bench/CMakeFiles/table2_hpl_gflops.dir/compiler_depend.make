# Empty compiler generated dependencies file for table2_hpl_gflops.
# This may be replaced when dependencies are built.
