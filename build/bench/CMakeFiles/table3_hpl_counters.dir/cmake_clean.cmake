file(REMOVE_RECURSE
  "CMakeFiles/table3_hpl_counters.dir/table3_hpl_counters.cpp.o"
  "CMakeFiles/table3_hpl_counters.dir/table3_hpl_counters.cpp.o.d"
  "table3_hpl_counters"
  "table3_hpl_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_hpl_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
