# Empty compiler generated dependencies file for table3_hpl_counters.
# This may be replaced when dependencies are built.
