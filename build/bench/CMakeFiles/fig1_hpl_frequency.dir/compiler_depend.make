# Empty compiler generated dependencies file for fig1_hpl_frequency.
# This may be replaced when dependencies are built.
