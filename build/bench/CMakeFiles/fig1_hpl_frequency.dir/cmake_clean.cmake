file(REMOVE_RECURSE
  "CMakeFiles/fig1_hpl_frequency.dir/fig1_hpl_frequency.cpp.o"
  "CMakeFiles/fig1_hpl_frequency.dir/fig1_hpl_frequency.cpp.o.d"
  "fig1_hpl_frequency"
  "fig1_hpl_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_hpl_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
