# Empty dependencies file for overhead_read.
# This may be replaced when dependencies are built.
