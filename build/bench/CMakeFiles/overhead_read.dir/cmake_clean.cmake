file(REMOVE_RECURSE
  "CMakeFiles/overhead_read.dir/overhead_read.cpp.o"
  "CMakeFiles/overhead_read.dir/overhead_read.cpp.o.d"
  "overhead_read"
  "overhead_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
