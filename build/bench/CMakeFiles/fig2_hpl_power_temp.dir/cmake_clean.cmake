file(REMOVE_RECURSE
  "CMakeFiles/fig2_hpl_power_temp.dir/fig2_hpl_power_temp.cpp.o"
  "CMakeFiles/fig2_hpl_power_temp.dir/fig2_hpl_power_temp.cpp.o.d"
  "fig2_hpl_power_temp"
  "fig2_hpl_power_temp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_hpl_power_temp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
