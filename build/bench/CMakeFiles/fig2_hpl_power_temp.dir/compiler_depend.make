# Empty compiler generated dependencies file for fig2_hpl_power_temp.
# This may be replaced when dependencies are built.
