file(REMOVE_RECURSE
  "CMakeFiles/table1_raptorlake_config.dir/table1_raptorlake_config.cpp.o"
  "CMakeFiles/table1_raptorlake_config.dir/table1_raptorlake_config.cpp.o.d"
  "table1_raptorlake_config"
  "table1_raptorlake_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_raptorlake_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
