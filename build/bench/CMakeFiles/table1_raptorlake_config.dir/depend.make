# Empty dependencies file for table1_raptorlake_config.
# This may be replaced when dependencies are built.
