file(REMOVE_RECURSE
  "CMakeFiles/fig4_orangepi_scaling.dir/fig4_orangepi_scaling.cpp.o"
  "CMakeFiles/fig4_orangepi_scaling.dir/fig4_orangepi_scaling.cpp.o.d"
  "fig4_orangepi_scaling"
  "fig4_orangepi_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_orangepi_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
