file(REMOVE_RECURSE
  "CMakeFiles/multiplex_accuracy.dir/multiplex_accuracy.cpp.o"
  "CMakeFiles/multiplex_accuracy.dir/multiplex_accuracy.cpp.o.d"
  "multiplex_accuracy"
  "multiplex_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiplex_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
