# Empty dependencies file for multiplex_accuracy.
# This may be replaced when dependencies are built.
