file(REMOVE_RECURSE
  "CMakeFiles/fig3_orangepi_throttle.dir/fig3_orangepi_throttle.cpp.o"
  "CMakeFiles/fig3_orangepi_throttle.dir/fig3_orangepi_throttle.cpp.o.d"
  "fig3_orangepi_throttle"
  "fig3_orangepi_throttle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_orangepi_throttle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
