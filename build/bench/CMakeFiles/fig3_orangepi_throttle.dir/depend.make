# Empty dependencies file for fig3_orangepi_throttle.
# This may be replaced when dependencies are built.
