// Regenerates Figure 3: frequency scaling behaviour on the ARM64
// big.LITTLE system. HPL on all six cores — the big (Cortex-A72) cores
// ramp to 1.8 GHz, trip the thermal limit within seconds, and get scaled
// far down, so most of the computation ends up on the LITTLE cores.
// Board power comes from the WattsUpPro-style wall meter model.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace hetpapi;
using namespace hetpapi::bench;

int main(int argc, char** argv) {
  int n = 15000;  // fits the 4 GB board; full-memory N would be ~20000
  if (argc > 1) {
    if (const auto parsed = parse_int(argv[1])) n = static_cast<int>(*parsed);
  }
  const auto machine = cpumodel::orangepi800_rk3399();
  const std::vector<int> all_cpus = {0, 1, 2, 3, 4, 5};  // 4 little + 2 big

  const auto run = run_hpl_once(machine,
                                workload::HplConfig::openblas(n, 128),
                                all_cpus);

  std::printf(
      "Figure 3: OrangePi 800 frequency scaling during all-core HPL "
      "(N=%d)\n", n);
  std::vector<double> t;
  std::vector<double> big;
  std::vector<double> little;
  std::vector<double> board;
  std::vector<double> temp;
  double first_throttle = -1.0;
  for (const telemetry::Sample& sample : run.samples) {
    if (sample.t_seconds <= 0.0) continue;
    t.push_back(sample.t_seconds);
    big.push_back(sample.core_freq_mhz[4]);     // cpu4 = Cortex-A72
    little.push_back(sample.core_freq_mhz[0]);  // cpu0 = Cortex-A53
    board.push_back(sample.board_power_w);
    temp.push_back(sample.package_temp_c);
    if (first_throttle < 0.0 &&
        sample.core_freq_mhz[4] <
            0.8 * machine.core_types[0].dvfs.freq_max.value &&
        sample.t_seconds > 1.0) {
      first_throttle = sample.t_seconds;
    }
  }
  print_series("big_mhz", t, big);
  print_series("little_mhz", t, little);
  print_series("board_power_w", t, board);
  print_series("soc_temp_c", t, temp);

  // Late-run medians show where the cores settle.
  const auto late_median = [&](const std::vector<double>& series) {
    std::vector<double> tail(series.begin() + static_cast<long>(series.size()) / 2,
                             series.end());
    std::sort(tail.begin(), tail.end());
    return tail.empty() ? 0.0 : tail[tail.size() / 2];
  };
  std::printf(
      "summary: big cores throttle below 80%% of fmax at t=%.0f s;"
      " late-run medians big=%.0f MHz little=%.0f MHz;"
      " run %.0f s, %.2f Gflops\n",
      first_throttle, late_median(big), late_median(little),
      std::chrono::duration<double>(run.elapsed).count(), run.gflops);
  std::printf(
      "paper: big cores ramp to max 'but not for long' — temperature"
      " throttling pushes them down while the LITTLE cores hold 1.4 GHz.\n");
  return 0;
}
