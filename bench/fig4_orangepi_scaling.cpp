// Regenerates Figure 4: "OrangePi HPL performance as more cores added".
// Due to thermal throttling, HPL on the four LITTLE cores completes
// faster than on the two big cores, and adding the big cores to the
// LITTLE ones yields only a small further improvement.
#include <cstdio>

#include "base/table.hpp"
#include "bench/bench_common.hpp"

using namespace hetpapi;
using namespace hetpapi::bench;

int main(int argc, char** argv) {
  const auto opts = parse_bench_args(argc, argv, 15000);
  const int n = opts.n;
  const auto machine = cpumodel::orangepi800_rk3399();

  struct Config {
    const char* label;
    std::vector<int> cpus;  // cpu4-5 = big, cpu0-3 = little
  };
  const Config configs[] = {
      {"1 big", {4}},
      {"2 big", {4, 5}},
      {"2 little", {0, 1}},
      {"4 little", {0, 1, 2, 3}},
      {"4 little + 1 big", {0, 1, 2, 3, 4}},
      {"all 6", {0, 1, 2, 3, 4, 5}},
  };
  constexpr std::size_t kNumConfigs = std::size(configs);

  // One independent simulation per core configuration, fanned across
  // the executor; the table prints from the slots in fixed order.
  std::vector<telemetry::RunResult> results(kNumConfigs);
  std::vector<telemetry::RunCell> cells;
  for (std::size_t i = 0; i < kNumConfigs; ++i) {
    cells.push_back({configs[i].label, [&, i] {
                       results[i] = run_hpl_once(
                           machine, workload::HplConfig::openblas(n, 128),
                           configs[i].cpus);
                     }});
  }
  telemetry::MultiRunExecutor executor(opts.threads);
  BenchRecorder recorder("fig4_orangepi_scaling", executor.thread_count());
  recorder.add_cells(executor.execute(cells));

  std::printf(
      "Figure 4: OrangePi HPL performance as more cores are added (N=%d)\n",
      n);
  TextTable table({"Cores", "Runtime (s)", "Gflops"});
  double t_2big = 0.0;
  double t_4little = 0.0;
  double t_all = 0.0;
  for (std::size_t i = 0; i < kNumConfigs; ++i) {
    const auto& run = results[i];
    const double seconds = std::chrono::duration<double>(run.elapsed).count();
    recorder.set_cell_sim_s(i, seconds);
    table.add_row({configs[i].label, str_format("%.1f", seconds),
                   str_format("%.2f", run.gflops)});
    if (std::string(configs[i].label) == "2 big") t_2big = seconds;
    if (std::string(configs[i].label) == "4 little") t_4little = seconds;
    if (std::string(configs[i].label) == "all 6") t_all = seconds;
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "shape check: 4 little (%.0f s) faster than 2 big (%.0f s): %s;"
      " all 6 vs 4 little improvement: %.1f%%\n",
      t_4little, t_2big, t_4little < t_2big ? "yes" : "NO",
      (t_4little - t_all) / t_4little * 100.0);
  std::printf(
      "paper: 4 little completes faster than 2 big; all six provide only"
      " minimal improvement over the 4 little cores.\n");
  recorder.write();
  return 0;
}
