// Regenerates Figure 4: "OrangePi HPL performance as more cores added".
// Due to thermal throttling, HPL on the four LITTLE cores completes
// faster than on the two big cores, and adding the big cores to the
// LITTLE ones yields only a small further improvement.
#include <cstdio>

#include "base/table.hpp"
#include "bench/bench_common.hpp"

using namespace hetpapi;
using namespace hetpapi::bench;

int main(int argc, char** argv) {
  int n = 15000;
  if (argc > 1) {
    if (const auto parsed = parse_int(argv[1])) n = static_cast<int>(*parsed);
  }
  const auto machine = cpumodel::orangepi800_rk3399();

  struct Config {
    const char* label;
    std::vector<int> cpus;  // cpu4-5 = big, cpu0-3 = little
  };
  const Config configs[] = {
      {"1 big", {4}},
      {"2 big", {4, 5}},
      {"2 little", {0, 1}},
      {"4 little", {0, 1, 2, 3}},
      {"4 little + 1 big", {0, 1, 2, 3, 4}},
      {"all 6", {0, 1, 2, 3, 4, 5}},
  };

  std::printf(
      "Figure 4: OrangePi HPL performance as more cores are added (N=%d)\n",
      n);
  TextTable table({"Cores", "Runtime (s)", "Gflops"});
  double t_2big = 0.0;
  double t_4little = 0.0;
  double t_all = 0.0;
  for (const Config& config : configs) {
    const auto run = run_hpl_once(machine,
                                  workload::HplConfig::openblas(n, 128),
                                  config.cpus);
    const double seconds = std::chrono::duration<double>(run.elapsed).count();
    table.add_row({config.label, str_format("%.1f", seconds),
                   str_format("%.2f", run.gflops)});
    if (std::string(config.label) == "2 big") t_2big = seconds;
    if (std::string(config.label) == "4 little") t_4little = seconds;
    if (std::string(config.label) == "all 6") t_all = seconds;
    std::fflush(stdout);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "shape check: 4 little (%.0f s) faster than 2 big (%.0f s): %s;"
      " all 6 vs 4 little improvement: %.1f%%\n",
      t_4little, t_2big, t_4little < t_2big ? "yes" : "NO",
      (t_4little - t_all) / t_4little * 100.0);
  std::printf(
      "paper: 4 little completes faster than 2 big; all six provide only"
      " minimal improvement over the 4 little cores.\n");
  return 0;
}
