// overflow_sampling: sampling-mode cost and loss characterization.
// Sweeps the sampling period over a deliberately small ring
// (capacity 64 records) with a fixed drain cadence, so short periods
// overflow between drains and long periods do not, and reports per
// cell:
//
//   * crossings (counter / period), delivered and lost record counts —
//     deterministic, printed to stdout, and reconciled exactly
//     (delivered + lost == crossings; bench_check --overflow guards
//     this and that the loss rate never grows as the period grows), and
//   * arming cost (set_overflow wall time) and drain throughput
//     (records ingested per wall second) — wall-clock, JSON only.
//
// Counts go to stdout, timings to BENCH_overflow.json (BenchRecorder
// convention: stdout stays bit-identical across runs and --threads
// values; cells run on the multi-run executor).
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "papi/library.hpp"
#include "papi/sim_backend.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

using namespace hetpapi;
using papi::Library;
using papi::SimBackend;
using simkernel::CpuSet;
using simkernel::SimKernel;
using simkernel::Tid;
using workload::FixedWorkProgram;
using workload::PhaseSpec;

namespace {

constexpr std::uint64_t kPeriods[] = {250'000, 500'000, 1'000'000, 2'000'000,
                                      4'000'000};
constexpr std::uint64_t kRingCapacity = 64;
constexpr int kDrainPasses = 25;
constexpr std::uint64_t kWork = 200'000'000;

struct CellResult {
  std::string label;
  std::uint64_t period = 0;
  std::uint64_t crossings = 0;
  std::uint64_t delivered = 0;
  std::uint64_t lost = 0;
  double lost_rate = 0.0;
  int drains = 0;
  double arm_us = 0.0;
  double drain_us = 0.0;
  double ingest_per_s = 0.0;  // records per wall second of drain time
  bool ok = false;
};

double elapsed_us(std::chrono::steady_clock::time_point from) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - from)
      .count();
}

CellResult run_cell(const cpumodel::MachineSpec& machine,
                    std::uint64_t period) {
  CellResult cell;
  cell.label = "period/" + std::to_string(period);
  cell.period = period;

  SimKernel::Config config;
  config.perf.sample_ring_capacity = kRingCapacity;
  SimKernel kernel(machine, config);
  SimBackend backend(&kernel);
  PhaseSpec phase;
  const Tid tid = kernel.spawn(std::make_shared<FixedWorkProgram>(phase, kWork),
                               CpuSet::of({0}));
  backend.set_default_target(tid);

  auto lib = Library::init(&backend);
  if (!lib.has_value()) return cell;
  auto set = (*lib)->create_eventset();
  if (!set.has_value() || !(*lib)->add_event(*set, "PAPI_TOT_INS").is_ok()) {
    return cell;
  }
  const auto arm_start = std::chrono::steady_clock::now();
  if (!(*lib)
           ->set_overflow(*set, 0, period,
                          [](const Library::OverflowEvent&) {})
           .is_ok()) {
    return cell;
  }
  cell.arm_us = elapsed_us(arm_start);
  if (!(*lib)->start(*set).is_ok()) return cell;

  // Fixed cadence: the short-period cells outrun the capacity-64 ring
  // between passes (records drop to in-band LOST), the long-period
  // cells never fill it. Either way nothing vanishes silently.
  const auto drain = [&] {
    const auto drain_start = std::chrono::steady_clock::now();
    auto batch = (*lib)->read_samples(*set);
    cell.drain_us += elapsed_us(drain_start);
    ++cell.drains;
    if (batch.has_value()) {
      cell.delivered += batch->samples.size();
      cell.lost += batch->lost;
    }
  };
  for (int pass = 0; pass < kDrainPasses; ++pass) {
    kernel.run_for(std::chrono::milliseconds(2));
    drain();
  }
  kernel.run_until_idle(std::chrono::seconds(60));
  auto values = (*lib)->stop(*set);
  if (!values.has_value()) return cell;
  drain();
  drain();  // a drained ring must stay drained — rides into the total

  const auto counter = static_cast<std::uint64_t>((*values)[0]);
  cell.crossings = counter / period;
  cell.lost_rate = cell.crossings == 0
                       ? 0.0
                       : static_cast<double>(cell.lost) /
                             static_cast<double>(cell.crossings);
  cell.ingest_per_s =
      cell.drain_us <= 0.0
          ? 0.0
          : static_cast<double>(cell.delivered) / (cell.drain_us * 1e-6);
  cell.ok = cell.delivered + cell.lost == cell.crossings;
  return cell;
}

void write_json(const std::vector<CellResult>& cells, std::size_t threads,
                double wall_s) {
  const char* path = "BENCH_overflow.json";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path);
    return;
  }
  std::fprintf(out,
               "{\n  \"name\": \"overflow_sampling\",\n"
               "  \"threads\": %zu,\n  \"ring_capacity\": %" PRIu64 ",\n"
               "  \"drain_passes\": %d,\n  \"wall_s\": %.6f,\n"
               "  \"cells\": [\n",
               threads, kRingCapacity, kDrainPasses, wall_s);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    std::fprintf(
        out,
        "    {\"label\": \"%s\", \"period\": %" PRIu64
        ", \"crossings\": %" PRIu64 ", \"delivered\": %" PRIu64
        ", \"lost\": %" PRIu64
        ", \"lost_rate\": %.6f, "
        "\"arm_us\": %.3f, \"drain_us\": %.3f, \"ingest_per_s\": %.1f}%s\n",
        c.label.c_str(), c.period, c.crossings, c.delivered, c.lost,
        c.lost_rate, c.arm_us, c.drain_us, c.ingest_per_s,
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote %s (wall %.3f s, %zu cells, %zu threads)\n",
               path, wall_s, cells.size(), threads);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv, 0);
  const auto machine = cpumodel::machine_preset_by_name(opts.machine);
  if (!machine.has_value()) {
    std::fprintf(stderr, "unknown machine preset: %s\n", opts.machine.c_str());
    return 2;
  }
  const auto start = std::chrono::steady_clock::now();

  std::vector<CellResult> cells(std::size(kPeriods));
  std::vector<telemetry::RunCell> run_cells;
  for (std::size_t i = 0; i < std::size(kPeriods); ++i) {
    run_cells.push_back(telemetry::RunCell{
        "period/" + std::to_string(kPeriods[i]), [&, i] {
          cells[i] = run_cell(*machine, kPeriods[i]);
        }});
  }
  telemetry::MultiRunExecutor executor(opts.threads);
  executor.execute(run_cells);

  std::printf("overflow_sampling machine=%s work=%" PRIu64
              " ring_capacity=%" PRIu64 " drain_passes=%d\n\n",
              opts.machine.c_str(), kWork, kRingCapacity, kDrainPasses);
  std::printf("%-16s %10s %10s %10s %10s %8s\n", "cell", "crossings",
              "delivered", "lost", "lost_rate", "exact");
  bool all_ok = true;
  for (const CellResult& c : cells) {
    std::printf("%-16s %10" PRIu64 " %10" PRIu64 " %10" PRIu64
                " %10.4f %8s\n",
                c.label.c_str(), c.crossings, c.delivered, c.lost, c.lost_rate,
                c.ok ? "ok" : "FAIL");
    all_ok = all_ok && c.ok;
  }
  std::printf(
      "\ndelivered + lost == crossings on every cell: %s\n"
      "(arming cost and drain throughput are wall-clock and live in "
      "BENCH_overflow.json)\n",
      all_ok ? "yes" : "NO");

  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  write_json(cells, opts.threads, wall_s);
  return all_ok ? 0 : 1;
}
