// Regenerates Table II: "Benchmark performance comparison" — OpenBLAS
// HPL vs Intel-optimized HPL on the Raptor Lake model, for E-only,
// P-only and all-core runs.
//
// Paper values (for shape comparison; absolute numbers depend on the
// authors' silicon, ours on the calibrated model):
//   E only  : 188.62 vs 198.95  (+5.4%)
//   P only  : 356.28 vs 392.89 (+10.3%)
//   P and E : 290.51 vs 457.38 (+57.4%)
// Shape requirements: Intel wins every row; OpenBLAS all-core is WORSE
// than its P-only run; Intel all-core is BETTER than its P-only run.
#include <cstdio>

#include "base/table.hpp"
#include "bench/bench_common.hpp"

using namespace hetpapi;
using namespace hetpapi::bench;

int main(int argc, char** argv) {
  // Allow a reduced problem size for quick runs: table2_hpl_gflops [N].
  int n = 57024;
  if (argc > 1) {
    if (const auto parsed = parse_int(argv[1])) n = static_cast<int>(*parsed);
  }
  const int nb = 192;
  const auto machine = cpumodel::raptor_lake_i7_13700();

  struct Row {
    const char* label;
    std::vector<int> cpus;
  };
  const Row rows[] = {
      {"E only", raptor_cpus_e_only(machine)},
      {"P only", raptor_cpus_p_only(machine)},
      {"P and E", raptor_cpus_all(machine)},
  };

  std::printf("Table II: HPL performance, N=%d NB=%d P=1 Q=1 (model)\n", n,
              nb);
  TextTable table({"Enabled cores", "OpenBLAS HPL", "Intel HPL", "% Change"});
  for (const Row& row : rows) {
    const auto openblas =
        run_hpl_once(machine, workload::HplConfig::openblas(n, nb), row.cpus);
    const auto intel =
        run_hpl_once(machine, workload::HplConfig::intel(n, nb), row.cpus);
    table.add_row({row.label, gflops_str(openblas.gflops),
                   gflops_str(intel.gflops),
                   pct_change(openblas.gflops, intel.gflops)});
    std::fflush(stdout);
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
