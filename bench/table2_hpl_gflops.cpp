// Regenerates Table II: "Benchmark performance comparison" — OpenBLAS
// HPL vs Intel-optimized HPL, one row per core type plus an all-core
// row. Default machine is the paper's Raptor Lake model (rows E only,
// P only, all cores); --machine runs the same table on any cpumodel
// catalog preset, so three-type hybrids get four rows.
//
// Paper values on Raptor Lake (for shape comparison; absolute numbers
// depend on the authors' silicon, ours on the calibrated model):
//   E only  : 188.62 vs 198.95  (+5.4%)
//   P only  : 356.28 vs 392.89 (+10.3%)
//   P and E : 290.51 vs 457.38 (+57.4%)
// Shape requirements: Intel wins every row; OpenBLAS all-core is WORSE
// than its P-only run; Intel all-core is BETTER than its P-only run.
#include <cstdio>

#include "base/table.hpp"
#include "bench/bench_common.hpp"

using namespace hetpapi;
using namespace hetpapi::bench;

int main(int argc, char** argv) {
  // table2_hpl_gflops [N] [--threads T] [--machine M]: reduced problem
  // size for quick runs, worker count for the multi-run executor,
  // machine preset for the simulated system.
  const auto opts = parse_bench_args(argc, argv, 57024);
  const int n = opts.n;
  const int nb = 192;
  const auto preset = cpumodel::machine_preset_by_name(opts.machine);
  if (!preset.has_value()) {
    std::fprintf(stderr, "unknown machine preset %s\n", opts.machine.c_str());
    return 2;
  }
  const cpumodel::MachineSpec machine = *preset;

  // One row per core type — smallest cores first, matching the paper's
  // E-then-P row order — then the all-core row.
  struct Row {
    std::string label;
    std::vector<int> cpus;
  };
  std::vector<Row> rows;
  for (std::size_t t = machine.core_types.size(); t-- > 0;) {
    rows.push_back({machine.core_types[t].name + " only",
                    machine.primary_threads_of_type(
                        static_cast<cpumodel::CoreTypeId>(t))});
  }
  rows.push_back({"all cores", all_primary_cpus(machine)});

  // Each cell is an independent deterministic simulation (its own
  // kernel + machine), so the executor can fan them across workers; the
  // table prints from the result slots in fixed order afterwards, making
  // stdout bit-identical for any worker count.
  std::vector<telemetry::RunResult> results(2 * rows.size());
  std::vector<telemetry::RunCell> cells;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    cells.push_back({rows[r].label + " / OpenBLAS", [&, r] {
                       results[2 * r] = run_hpl_once(
                           machine, workload::HplConfig::openblas(n, nb),
                           rows[r].cpus);
                     }});
    cells.push_back({rows[r].label + " / Intel", [&, r] {
                       results[2 * r + 1] = run_hpl_once(
                           machine, workload::HplConfig::intel(n, nb),
                           rows[r].cpus);
                     }});
  }

  // Phase-instrumented twins of the all-core cells: LIKWID-style
  // markers bracket the run and the master worker's factor/update
  // items, with counters served through the rdpmc read plan. Separate
  // cells so the marker/caliper perturbation never touches the Table II
  // numbers above.
  telemetry::MonitorConfig marked;
  marked.sample_events = {"PAPI_TOT_INS"};
  marked.mark_hpl_phases = true;
  marked.use_rdpmc = true;
  std::vector<telemetry::RunResult> marked_results(2);
  cells.push_back({"all cores / OpenBLAS (regions)", [&] {
                     marked_results[0] = run_hpl_once(
                         machine, workload::HplConfig::openblas(n, nb),
                         all_primary_cpus(machine), 42, marked);
                   }});
  cells.push_back({"all cores / Intel (regions)", [&] {
                     marked_results[1] = run_hpl_once(
                         machine, workload::HplConfig::intel(n, nb),
                         all_primary_cpus(machine), 42, marked);
                   }});

  telemetry::MultiRunExecutor executor(opts.threads);
  BenchRecorder recorder("table2_hpl_gflops", executor.thread_count());
  recorder.add_cells(executor.execute(cells));
  for (std::size_t i = 0; i < results.size(); ++i) {
    recorder.set_cell_sim_s(
        i, std::chrono::duration<double>(results[i].elapsed).count());
  }
  for (std::size_t i = 0; i < marked_results.size(); ++i) {
    recorder.set_cell_sim_s(
        results.size() + i,
        std::chrono::duration<double>(marked_results[i].elapsed).count());
  }

  std::printf("Table II: HPL performance on %s, N=%d NB=%d P=1 Q=1 (model)\n",
              machine.name.c_str(), n, nb);
  TextTable table({"Enabled cores", "OpenBLAS HPL", "Intel HPL", "% Change"});
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto& openblas = results[2 * r];
    const auto& intel = results[2 * r + 1];
    table.add_row({rows[r].label, gflops_str(openblas.gflops),
                   gflops_str(intel.gflops),
                   pct_change(openblas.gflops, intel.gflops)});
  }
  std::printf("%s", table.render().c_str());

  // Per-core-type split of the same runs (§V-2's reporting): where the
  // retired instructions actually executed, per PMU/core type — the
  // breakdown the derived-preset qualified read exposes at the API level.
  std::printf("\nTable II (split by core type): instructions retired\n");
  std::vector<std::string> split_header = {"Enabled cores", "Variant"};
  for (const auto& type : machine.core_types) {
    split_header.push_back(type.name + " (" + type.pfm_pmu_name + ")");
  }
  TextTable split(split_header);
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::vector<std::string> cells_row = {rows[i / 2].label,
                                          i % 2 == 0 ? "OpenBLAS" : "Intel"};
    for (std::size_t t = 0; t < machine.core_types.size(); ++t) {
      const std::uint64_t ins = t < results[i].counts_per_type.size()
                                    ? results[i].counts_per_type[t].instructions
                                    : 0;
      cells_row.push_back(str_format("%.3fe9", static_cast<double>(ins) / 1e9));
    }
    split.add_row(std::move(cells_row));
  }
  std::printf("%s", split.render().c_str());

  // Marker regions on the master worker (all-core runs): where the
  // master's instructions go — panel factorization vs trailing update —
  // measured by the region deltas of PAPI_TOT_INS.
  std::printf("\nHPL phases on the master worker (all cores, markers)\n");
  TextTable phases({"Variant", "Region", "Entries", "Time (s)",
                    "PAPI_TOT_INS"});
  for (std::size_t i = 0; i < marked_results.size(); ++i) {
    for (const telemetry::RegionReport& region : marked_results[i].regions) {
      phases.add_row(
          {i == 0 ? "OpenBLAS" : "Intel", region.name,
           str_format("%llu", static_cast<unsigned long long>(region.entries)),
           str_format("%.2f", region.time_s),
           region.totals.empty()
               ? std::string("-")
               : str_format("%.3fe9",
                            static_cast<double>(region.totals[0]) / 1e9)});
    }
  }
  std::printf("%s", phases.render().c_str());
  recorder.write();
  return 0;
}
