// Regenerates Table I: hardware configuration of the Raptor Lake system,
// as the library itself reports it (machine model + sysdetect).
#include <cstdio>

#include "base/table.hpp"
#include "bench/bench_common.hpp"
#include "papi/sysdetect.hpp"
#include "pfm/sim_host.hpp"

using namespace hetpapi;

int main() {
  const auto machine = cpumodel::raptor_lake_i7_13700();
  simkernel::SimKernel kernel(machine);

  TextTable table({"", ""});
  table.add_row({"CPU", machine.cpu_model_string});
  for (std::size_t t = 0; t < machine.core_types.size(); ++t) {
    const auto& type = machine.core_types[t];
    const auto cores =
        machine.primary_threads_of_type(static_cast<cpumodel::CoreTypeId>(t));
    const int threads = static_cast<int>(
        machine.cpus_of_type(static_cast<cpumodel::CoreTypeId>(t)).size());
    std::string label = type.name + (t == 0 ? " (performance)" : " (efficiency)");
    std::string value = str_format(
        "%zu (%d threads) @%.2f-%.2f GHz", cores.size(), threads,
        type.dvfs.freq_base.gigahertz(), type.dvfs.freq_max.gigahertz());
    table.add_row({label, value});
  }
  table.add_row({"Memory", machine.memory.description});
  std::printf("Table I: hardware configuration of the Raptor Lake system\n%s",
              table.render().c_str());

  // Cross-check: what the detection stack reports for the same machine.
  pfm::SimHost host(&kernel);
  pfm::PfmLibrary pfmlib;
  if (pfmlib.initialize(host).is_ok()) {
    const auto report = papi::build_sysdetect_report(host, pfmlib);
    std::printf("\n%s", report.to_text().c_str());
  }
  return 0;
}
