// Shared helpers for the table/figure regeneration benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "base/strings.hpp"
#include "cpumodel/machine.hpp"
#include "simkernel/kernel.hpp"
#include "telemetry/monitor.hpp"
#include "workload/hpl.hpp"

namespace hetpapi::bench {

/// The paper's three Raptor Lake core sets (HPL runs use one thread per
/// physical core; Table I / §II-A.1).
inline std::vector<int> raptor_cpus_p_only(const cpumodel::MachineSpec& m) {
  return m.primary_threads_of_type(0);  // cpus 0,2,...,14
}
inline std::vector<int> raptor_cpus_e_only(const cpumodel::MachineSpec& m) {
  return m.primary_threads_of_type(1);  // cpus 16-23
}
inline std::vector<int> raptor_cpus_all(const cpumodel::MachineSpec& m) {
  std::vector<int> cpus = raptor_cpus_p_only(m);
  const std::vector<int> e = raptor_cpus_e_only(m);
  cpus.insert(cpus.end(), e.begin(), e.end());
  return cpus;
}

/// Kernel tuned for long HPL runs (coarser tick).
inline simkernel::SimKernel::Config hpl_kernel_config(std::uint64_t seed = 42) {
  simkernel::SimKernel::Config config;
  config.tick = std::chrono::milliseconds(1);
  config.seed = seed;
  return config;
}

/// One monitored HPL run on a fresh machine instance.
inline telemetry::RunResult run_hpl_once(const cpumodel::MachineSpec& machine,
                                         const workload::HplConfig& hpl,
                                         const std::vector<int>& cpus,
                                         std::uint64_t seed = 42) {
  simkernel::SimKernel kernel(machine, hpl_kernel_config(seed));
  telemetry::MonitorConfig monitor;
  return telemetry::run_monitored_hpl(kernel, hpl, cpus, monitor);
}

inline std::string gflops_str(double gflops) {
  return str_format("%.2f Gflops", gflops);
}

inline std::string pct_change(double from, double to) {
  return str_format("%+.1f%%", (to - from) / from * 100.0);
}

/// Emit a gnuplot/CSV-friendly series block for "figure" benches.
inline void print_series(const std::string& name,
                         const std::vector<double>& x,
                         const std::vector<double>& y) {
  std::printf("# series: %s (%zu points)\n", name.c_str(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    std::printf("%s %.3f %.3f\n", name.c_str(), x[i], y[i]);
  }
  std::printf("\n");
}

}  // namespace hetpapi::bench
