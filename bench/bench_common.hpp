// Shared helpers for the table/figure regeneration benches.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "base/strings.hpp"
#include "base/thread_pool.hpp"
#include "cpumodel/machine.hpp"
#include "simkernel/kernel.hpp"
#include "telemetry/monitor.hpp"
#include "telemetry/multi_run.hpp"
#include "workload/hpl.hpp"

namespace hetpapi::bench {

/// Command-line knobs every bench accepts:
///   bench [N] [--threads T | --threads=T] [--machine <preset>]
/// N is the bench-specific problem-size knob; T is the worker count the
/// multi-run executor fans independent cells across (default: one per
/// hardware thread). Results are bit-identical for any T. The machine
/// is any cpumodel catalog preset (default raptorlake, the paper's
/// system); benches that generalize beyond two core types honour it.
struct BenchOptions {
  int n = 0;
  std::size_t threads = ThreadPool::default_thread_count();
  std::string machine = "raptorlake";
};

inline BenchOptions parse_bench_args(int argc, char** argv, int default_n) {
  BenchOptions opts;
  opts.n = default_n;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--machine" && i + 1 < argc) {
      opts.machine = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      if (const auto parsed = parse_int(argv[++i]); parsed && *parsed > 0) {
        opts.threads = static_cast<std::size_t>(*parsed);
      }
    } else if (starts_with(arg, "--threads=")) {
      if (const auto parsed = parse_int(arg.substr(10)); parsed && *parsed > 0) {
        opts.threads = static_cast<std::size_t>(*parsed);
      }
    } else if (const auto parsed = parse_int(arg)) {
      opts.n = static_cast<int>(*parsed);
    }
  }
  return opts;
}

/// Collects per-cell timings and writes a machine-readable
/// BENCH_<name>.json next to the bench's stdout tables, so CI and the
/// perf notebooks can track wall time without scraping text output.
class BenchRecorder {
 public:
  BenchRecorder(std::string name, std::size_t threads)
      : name_(std::move(name)),
        threads_(threads),
        start_(std::chrono::steady_clock::now()) {}

  void add_cell(const std::string& label, double wall_s, double sim_s = 0.0) {
    cells_.push_back({label, wall_s, sim_s});
  }

  /// Fold the executor's per-cell wall timings in, in cell order.
  void add_cells(const std::vector<telemetry::CellTiming>& timings) {
    for (const telemetry::CellTiming& t : timings) {
      add_cell(t.label, t.wall_s);
    }
  }

  /// Attach the simulated duration to the most recently added cells
  /// (used when sim time is only known after aggregation).
  void set_cell_sim_s(std::size_t index, double sim_s) {
    if (index < cells_.size()) cells_[index].sim_s = sim_s;
  }

  /// Write BENCH_<name>.json into the working directory.
  void write() const {
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    double sim_s = 0.0;
    for (const Cell& cell : cells_) sim_s += cell.sim_s;
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(out,
                 "{\n  \"name\": \"%s\",\n  \"threads\": %zu,\n"
                 "  \"runs\": %zu,\n  \"wall_s\": %.6f,\n  \"sim_s\": %.6f,\n"
                 "  \"cells\": [\n",
                 escape(name_).c_str(), threads_, cells_.size(), wall_s,
                 sim_s);
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      const Cell& cell = cells_[i];
      std::fprintf(out,
                   "    {\"label\": \"%s\", \"wall_s\": %.6f, "
                   "\"sim_s\": %.6f}%s\n",
                   escape(cell.label).c_str(), cell.wall_s, cell.sim_s,
                   i + 1 < cells_.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    // stderr, not stdout: timings vary run to run, and bench stdout must
    // stay bit-identical across worker counts.
    std::fprintf(stderr, "wrote %s (wall %.3f s, %zu cells, %zu threads)\n",
                 path.c_str(), wall_s, cells_.size(), threads_);
  }

 private:
  struct Cell {
    std::string label;
    double wall_s = 0.0;
    double sim_s = 0.0;
  };

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string name_;
  std::size_t threads_;
  std::chrono::steady_clock::time_point start_;
  std::vector<Cell> cells_;
};

/// The paper's three Raptor Lake core sets (HPL runs use one thread per
/// physical core; Table I / §II-A.1).
inline std::vector<int> raptor_cpus_p_only(const cpumodel::MachineSpec& m) {
  return m.primary_threads_of_type(0);  // cpus 0,2,...,14
}
inline std::vector<int> raptor_cpus_e_only(const cpumodel::MachineSpec& m) {
  return m.primary_threads_of_type(1);  // cpus 16-23
}
inline std::vector<int> raptor_cpus_all(const cpumodel::MachineSpec& m) {
  std::vector<int> cpus = raptor_cpus_p_only(m);
  const std::vector<int> e = raptor_cpus_e_only(m);
  cpus.insert(cpus.end(), e.begin(), e.end());
  return cpus;
}

/// One HPL thread per physical core of every core type — the N-type
/// generalization of raptor_cpus_all, valid on any machine preset.
inline std::vector<int> all_primary_cpus(const cpumodel::MachineSpec& m) {
  std::vector<int> cpus;
  for (std::size_t t = 0; t < m.core_types.size(); ++t) {
    const std::vector<int> of_type =
        m.primary_threads_of_type(static_cast<cpumodel::CoreTypeId>(t));
    cpus.insert(cpus.end(), of_type.begin(), of_type.end());
  }
  return cpus;
}

/// Kernel tuned for long HPL runs (coarser tick).
inline simkernel::SimKernel::Config hpl_kernel_config(std::uint64_t seed = 42) {
  simkernel::SimKernel::Config config;
  config.tick = std::chrono::milliseconds(1);
  config.seed = seed;
  return config;
}

/// One monitored HPL run on a fresh machine instance. The optional
/// MonitorConfig lets phase-instrumented benches attach counters,
/// markers or the rdpmc path without duplicating the setup.
inline telemetry::RunResult run_hpl_once(
    const cpumodel::MachineSpec& machine, const workload::HplConfig& hpl,
    const std::vector<int>& cpus, std::uint64_t seed = 42,
    const telemetry::MonitorConfig& monitor = {}) {
  simkernel::SimKernel kernel(machine, hpl_kernel_config(seed));
  return telemetry::run_monitored_hpl(kernel, hpl, cpus, monitor);
}

inline std::string gflops_str(double gflops) {
  return str_format("%.2f Gflops", gflops);
}

inline std::string pct_change(double from, double to) {
  return str_format("%+.1f%%", (to - from) / from * 100.0);
}

/// Emit a gnuplot/CSV-friendly series block for "figure" benches.
inline void print_series(const std::string& name,
                         const std::vector<double>& x,
                         const std::vector<double>& y) {
  std::printf("# series: %s (%zu points)\n", name.c_str(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    std::printf("%s %.3f %.3f\n", name.c_str(), x[i], y[i]);
  }
  std::printf("\n");
}

}  // namespace hetpapi::bench
