# Figure 3: OrangePi big.LITTLE frequency scaling and board power.
# usage: gnuplot -c fig3.gnuplot <datafile>
datafile = ARG1
set terminal pngcairo size 1000,600
set output "fig3.png"
set title "OrangePi 800 frequency scaling during all-core HPL (model)"
set xlabel "time (s)"
set ylabel "frequency (MHz)"
set y2label "board power (W) / SoC temp (C)"
set y2tics
set key outside
plot \
  "<grep '^big_mhz' ".datafile u 2:3 w lines t "A72 (big)", \
  "<grep '^little_mhz' ".datafile u 2:3 w lines t "A53 (LITTLE)", \
  "<grep '^board_power_w' ".datafile u 2:3 axes x1y2 w lines t "board power", \
  "<grep '^soc_temp_c' ".datafile u 2:3 axes x1y2 w lines t "SoC temp"
