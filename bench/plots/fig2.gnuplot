# Figure 2: package power and temperature during all-core HPL.
# usage: gnuplot -c fig2.gnuplot <datafile>
datafile = ARG1
set terminal pngcairo size 1000,600
set output "fig2.png"
set title "Package power and temperature during all-core HPL (model)"
set xlabel "time (s)"
set ylabel "power (W)"
set y2label "temperature (C)"
set y2tics
set key outside
plot \
  "<grep '^openblas_power_w' ".datafile u 2:3 w lines t "OpenBLAS power", \
  "<grep '^intel_power_w' ".datafile u 2:3 w lines t "Intel power", \
  "<grep '^openblas_temp_c' ".datafile u 2:3 axes x1y2 w lines t "OpenBLAS temp", \
  "<grep '^intel_temp_c' ".datafile u 2:3 axes x1y2 w lines t "Intel temp", \
  65 w lines dt 2 lc "gray" t "PL1 = 65 W", \
  219 w lines dt 3 lc "gray" t "PL2 = 219 W"
