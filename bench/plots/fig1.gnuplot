# Figure 1: measured core frequencies during all-core HPL.
# usage: gnuplot -c fig1.gnuplot <datafile>
datafile = ARG1
set terminal pngcairo size 1000,600
set output "fig1.png"
set title "Core frequencies during all-core HPL (model)"
set xlabel "time (s)"
set ylabel "frequency (MHz)"
set key outside
plot \
  "<grep '^openblas_pcore_mhz' ".datafile u 2:3 w lines t "OpenBLAS P median", \
  "<grep '^openblas_ecore_mhz' ".datafile u 2:3 w lines t "OpenBLAS E median", \
  "<grep '^intel_pcore_mhz' ".datafile u 2:3 w lines t "Intel P median", \
  "<grep '^intel_ecore_mhz' ".datafile u 2:3 w lines t "Intel E median"
