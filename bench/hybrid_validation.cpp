// Regenerates the §IV-F validation run, papi_hybrid_100m_one_eventset:
// 1 million instructions executed 100 times with PAPI calipers around
// each iteration, measuring both per-core-type INST_RETIRED events in a
// single EventSet. Prints the same line the paper shows:
//
//   Average instructions p: 836848 e: 167487
//
// plus the taskset-pinned control runs and the legacy (single-PMU)
// baseline whose failure motivated the work.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "papi/library.hpp"
#include "papi/sim_backend.hpp"
#include "workload/programs.hpp"

using namespace hetpapi;
using namespace hetpapi::bench;
using papi::Library;
using papi::LibraryConfig;
using simkernel::CpuSet;
using simkernel::SimKernel;
using simkernel::Tid;

namespace {

constexpr std::uint64_t kMillion = 1'000'000;
constexpr int kIterations = 100;

struct Averages {
  double p = 0.0;
  double e = 0.0;
  bool e_available = false;
};

Averages run_case(const CpuSet& affinity, bool hybrid_support) {
  SimKernel::Config kernel_config;
  kernel_config.sched.migration_rate_hz = 40.0;  // background OS churn
  SimKernel kernel(cpumodel::raptor_lake_i7_13700(), kernel_config);
  papi::SimBackend backend(&kernel);
  LibraryConfig lib_config;
  lib_config.hybrid_support = hybrid_support;
  auto lib = Library::init(&backend, lib_config);
  if (!lib) {
    std::fprintf(stderr, "library init failed: %s\n",
                 lib.status().to_string().c_str());
    std::exit(1);
  }

  auto program = std::make_shared<workload::WorkQueueProgram>();
  const Tid tid = kernel.spawn(program, affinity);

  auto set = (*lib)->create_eventset();
  (void)(*lib)->attach(*set, tid);
  (void)(*lib)->add_event(*set, "adl_glc::INST_RETIRED:ANY");
  Averages avg;
  if (hybrid_support) {
    (void)(*lib)->add_event(*set, "adl_grt::INST_RETIRED:ANY");
    avg.e_available = true;
  }

  workload::PhaseSpec phase;  // the 1M-instruction integer loop
  std::uint64_t p_total = 0;
  std::uint64_t e_total = 0;
  for (int i = 0; i < kIterations; ++i) {
    (void)(*lib)->start(*set);
    program->enqueue(phase, kMillion);
    while (!program->idle()) kernel.run_for(std::chrono::milliseconds(1));
    auto values = (*lib)->stop(*set);
    p_total += static_cast<std::uint64_t>((*values)[0]);
    if (avg.e_available) {
      e_total += static_cast<std::uint64_t>((*values)[1]);
    }
  }
  program->finish();
  kernel.run_until_idle(std::chrono::seconds(5));
  avg.p = static_cast<double>(p_total) / kIterations;
  avg.e = static_cast<double>(e_total) / kIterations;
  return avg;
}

}  // namespace

int main(int argc, char** argv) {
  // This bench is a fast serial control (it exercises the kernel's
  // post-exit idle fast path via run_until_idle); it still records
  // per-case wall timings for BENCH_hybrid_validation.json.
  const auto opts = parse_bench_args(argc, argv, 0);
  (void)opts;  // --threads accepted for CLI uniformity; cases run serially
  const auto machine = cpumodel::raptor_lake_i7_13700();
  const CpuSet all = CpuSet::all(machine.num_cpus());
  BenchRecorder recorder("hybrid_validation", 1);
  const auto timed = [&recorder](const char* label, auto&& fn) {
    const auto start = std::chrono::steady_clock::now();
    const Averages result = fn();
    recorder.add_cell(label,
                      std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count());
    return result;
  };

  std::printf("papi_hybrid_100m_one_eventset (%d x %llu instructions)\n\n",
              kIterations, static_cast<unsigned long long>(kMillion));

  const Averages hybrid =
      timed("unpinned", [&] { return run_case(all, /*hybrid_support=*/true); });
  std::printf("[patched PAPI, unpinned]\n");
  std::printf("Average instructions p: %.0f e: %.0f   (sum %.0f)\n\n",
              hybrid.p, hybrid.e, hybrid.p + hybrid.e);

  const Averages pinned_p =
      timed("pinned P", [&] { return run_case(CpuSet::of({0}), true); });
  std::printf("[patched PAPI, taskset to P-core cpu0]\n");
  std::printf("Average instructions p: %.0f e: %.0f\n\n", pinned_p.p,
              pinned_p.e);

  const Averages pinned_e =
      timed("pinned E", [&] { return run_case(CpuSet::of({16}), true); });
  std::printf("[patched PAPI, taskset to E-core cpu16]\n");
  std::printf("Average instructions p: %.0f e: %.0f\n\n", pinned_e.p,
              pinned_e.e);

  const Averages legacy = timed(
      "legacy", [&] { return run_case(all, /*hybrid_support=*/false); });
  std::printf("[original PAPI: only the P-core event fits the EventSet]\n");
  std::printf(
      "Average instructions p: %.0f   (undercounts: E-core share is "
      "invisible)\n\n",
      legacy.p);

  std::printf(
      "paper reference: 'Average instructions p: 836848 e: 167487' — the\n"
      "per-type counts vary with scheduling, but their sum stays ~1M.\n");
  recorder.write();
  return 0;
}
