// Regenerates Table III: hardware counter measurements for the all-core
// HPL runs — LLC miss rate per core type and the share of instructions
// executed by each core type, for both HPL variants.
//
// Methodology matches the paper: the counters come from perf-style
// cpu-scoped events (one LLC-reference, LLC-miss and instructions event
// per logical cpu, each opened on that cpu's core PMU), aggregated per
// core type — exactly what `perf stat -a` does on a hybrid system.
//
// Paper values (shape targets):
//                OpenBLAS-P  OpenBLAS-E  Intel-P  Intel-E
//   LLC missrate     86%        0.05%      64%      0.03%
//   % instructions   80%        20%        68%      32%
#include <cstdio>

#include "base/table.hpp"
#include "bench/bench_common.hpp"

using namespace hetpapi;
using namespace hetpapi::bench;
using simkernel::CountKind;
using simkernel::PerfEventAttr;
using simkernel::PerfIoctl;

namespace {

struct TypeCounts {
  double llc_refs = 0;
  double llc_misses = 0;
  double instructions = 0;
};

struct MeasuredRun {
  TypeCounts per_type[2];  // [0]=P, [1]=E
};

PerfEventAttr attr_for(std::uint32_t type, CountKind kind) {
  PerfEventAttr attr;
  attr.type = type;
  attr.config = static_cast<std::uint64_t>(kind);
  attr.disabled = true;
  return attr;
}

MeasuredRun run_measured(const cpumodel::MachineSpec& machine,
                         const workload::HplConfig& hpl_config, int n) {
  simkernel::SimKernel kernel(machine, hpl_kernel_config());
  (void)n;

  // perf stat -a: cpu-scoped events on every logical cpu's own core PMU.
  struct CpuEvents {
    int type;  // core type id
    int refs_fd, miss_fd, instr_fd;
  };
  std::vector<CpuEvents> events;
  for (int cpu = 0; cpu < machine.num_cpus(); ++cpu) {
    const auto* pmu = kernel.pmus().core_pmu_for_cpu(cpu);
    CpuEvents e;
    e.type = machine.cpus[static_cast<std::size_t>(cpu)].type;
    e.refs_fd = *kernel.perf_event_open(
        attr_for(pmu->type_id, CountKind::kLlcReferences), -1, cpu, -1);
    e.miss_fd = *kernel.perf_event_open(
        attr_for(pmu->type_id, CountKind::kLlcMisses), -1, cpu, e.refs_fd);
    e.instr_fd = *kernel.perf_event_open(
        attr_for(pmu->type_id, CountKind::kInstructions), -1, cpu, e.refs_fd);
    (void)kernel.perf_ioctl(e.refs_fd, PerfIoctl::kEnable,
                            simkernel::kIocFlagGroup);
    events.push_back(e);
  }

  const auto cpus = raptor_cpus_all(machine);
  workload::HplSimulation hpl(hpl_config, static_cast<int>(cpus.size()));
  for (std::size_t i = 0; i < cpus.size(); ++i) {
    kernel.spawn(hpl.make_worker(static_cast<int>(i)),
                 simkernel::CpuSet::of({cpus[i]}));
  }
  kernel.run_until_idle(std::chrono::seconds(3600));

  MeasuredRun out;
  for (const CpuEvents& e : events) {
    TypeCounts& tc = out.per_type[e.type];
    tc.llc_refs += static_cast<double>(kernel.perf_read(e.refs_fd)->value);
    tc.llc_misses += static_cast<double>(kernel.perf_read(e.miss_fd)->value);
    tc.instructions +=
        static_cast<double>(kernel.perf_read(e.instr_fd)->value);
  }
  return out;
}

std::string pct(double x) { return str_format("%.2f%%", x * 100.0); }

}  // namespace

int main(int argc, char** argv) {
  const auto opts = parse_bench_args(argc, argv, 57024);
  const int n = opts.n;
  const auto machine = cpumodel::raptor_lake_i7_13700();

  // Two independent measured runs, fanned across the executor; results
  // land in fixed slots so output does not depend on the worker count.
  MeasuredRun openblas;
  MeasuredRun intel;
  const std::vector<telemetry::RunCell> cells = {
      {"OpenBLAS",
       [&] {
         openblas = run_measured(machine, workload::HplConfig::openblas(n, 192), n);
       }},
      {"Intel",
       [&] {
         intel = run_measured(machine, workload::HplConfig::intel(n, 192), n);
       }},
  };
  telemetry::MultiRunExecutor executor(opts.threads);
  BenchRecorder recorder("table3_hpl_counters", executor.thread_count());
  recorder.add_cells(executor.execute(cells));

  const auto missrate = [](const TypeCounts& tc) {
    return tc.llc_refs > 0 ? tc.llc_misses / tc.llc_refs : 0.0;
  };
  const auto instr_share = [](const MeasuredRun& run, int type) {
    const double total =
        run.per_type[0].instructions + run.per_type[1].instructions;
    return total > 0 ? run.per_type[type].instructions / total : 0.0;
  };

  std::printf(
      "Table III: hardware counter measurements for all-core runs "
      "(N=%d, perf-style cpu-scoped counting)\n",
      n);
  TextTable table({"", "OpenBLAS P", "OpenBLAS E", "Intel P", "Intel E"});
  table.add_row({"LLC missrate", pct(missrate(openblas.per_type[0])),
                 pct(missrate(openblas.per_type[1])),
                 pct(missrate(intel.per_type[0])),
                 pct(missrate(intel.per_type[1]))});
  table.add_row({"% of total instructions", pct(instr_share(openblas, 0)),
                 pct(instr_share(openblas, 1)), pct(instr_share(intel, 0)),
                 pct(instr_share(intel, 1))});
  std::printf("%s", table.render().c_str());
  std::printf(
      "paper:   missrate 86%% / 0.05%% / 64%% / 0.03%%;"
      " instructions 80%% / 20%% / 68%% / 32%%\n");
  recorder.write();
  return 0;
}
