// Regenerates Figure 2: measured package power and temperature on the
// Raptor Lake system for both HPL variants, all-core runs.
//
// Shape targets from the paper:
//  * both variants ride the 65 W long-term cap for most of the run;
//  * Intel HPL spikes toward the 219 W short-term cap at the start;
//  * OpenBLAS HPL cannot reach the short-term cap — it peaks around
//    165.7 W before dropping to the long-term limit (barrier stragglers
//    leave cores idle);
//  * neither run approaches the 100 C junction limit (no thermal
//    throttling).
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace hetpapi;
using namespace hetpapi::bench;

int main(int argc, char** argv) {
  int n = 57024;
  if (argc > 1) {
    if (const auto parsed = parse_int(argv[1])) n = static_cast<int>(*parsed);
  }
  const auto machine = cpumodel::raptor_lake_i7_13700();

  struct Variant {
    const char* name;
    workload::HplConfig config;
  };
  const Variant variants[] = {
      {"openblas", workload::HplConfig::openblas(n, 192)},
      {"intel", workload::HplConfig::intel(n, 192)},
  };

  std::printf(
      "Figure 2: package power (RAPL) and temperature during all-core HPL "
      "(N=%d; PL1=%.0f W, PL2=%.0f W)\n",
      n, machine.rapl.pl1.value, machine.rapl.pl2.value);
  for (const Variant& variant : variants) {
    const auto run = run_hpl_once(machine, variant.config,
                                  raptor_cpus_all(machine));
    std::vector<double> t;
    std::vector<double> power;
    std::vector<double> temp;
    double peak_power = 0.0;
    double peak_temp = 0.0;
    std::vector<double> steady;
    for (const telemetry::Sample& sample : run.samples) {
      if (sample.t_seconds <= 0.0 || std::isnan(sample.package_power_w)) {
        continue;
      }
      t.push_back(sample.t_seconds);
      power.push_back(sample.package_power_w);
      temp.push_back(sample.package_temp_c);
      peak_power = std::max(peak_power, sample.package_power_w);
      peak_temp = std::max(peak_temp, sample.package_temp_c);
      // Steady state: second half of the run.
      if (sample.t_seconds >
          0.5 * std::chrono::duration<double>(run.elapsed).count()) {
        steady.push_back(sample.package_power_w);
      }
    }
    print_series(str_format("%s_power_w", variant.name), t, power);
    print_series(str_format("%s_temp_c", variant.name), t, temp);
    double steady_avg = 0.0;
    for (double w : steady) steady_avg += w;
    if (!steady.empty()) steady_avg /= static_cast<double>(steady.size());
    std::printf(
        "summary %s: peak %.1f W, steady %.1f W, max temp %.1f C "
        "(Tj,max %.0f C)\n\n",
        variant.name, peak_power, steady_avg, peak_temp,
        machine.thermal.t_junction_max.value);
  }
  std::printf(
      "paper: Intel spikes toward the 219 W PL2, OpenBLAS peaks at 165.7 W;"
      " both settle at the 65 W PL1; no thermal throttling (<100 C).\n");
  return 0;
}
