// Ablation: scheduler placement policy vs the §IV-F residency split.
//
// The paper's unpinned validation run landed ~83% of instructions on
// the P cores — a consequence of the hybrid-aware placement bias real
// kernels apply (§I-B: "these heterogeneous-aware schedulers make use
// of hardware performance counters"). This bench re-runs the 1M x 100
// caliper loop under three placement policies and reports the split the
// hybrid EventSet measures, plus the wall-clock consequence.
#include <cstdio>

#include "base/table.hpp"
#include "bench/bench_common.hpp"
#include "papi/library.hpp"
#include "papi/sim_backend.hpp"
#include "workload/programs.hpp"

using namespace hetpapi;
using namespace hetpapi::bench;
using papi::Library;
using simkernel::CpuSet;
using simkernel::PlacementPolicy;
using simkernel::SimKernel;
using simkernel::Tid;

namespace {

struct Result {
  double p_share = 0.0;
  double seconds = 0.0;
};

Result run_policy(PlacementPolicy policy) {
  SimKernel::Config config;
  config.sched.policy = policy;
  config.sched.migration_rate_hz = 80.0;
  SimKernel kernel(cpumodel::raptor_lake_i7_13700(), config);
  papi::SimBackend backend(&kernel);
  auto lib = Library::init(&backend);

  auto program = std::make_shared<workload::WorkQueueProgram>();
  const Tid tid =
      kernel.spawn(program, CpuSet::all(kernel.machine().num_cpus()));
  auto set = (*lib)->create_eventset();
  (void)(*lib)->attach(*set, tid);
  (void)(*lib)->add_event(*set, "adl_glc::INST_RETIRED:ANY");
  (void)(*lib)->add_event(*set, "adl_grt::INST_RETIRED:ANY");

  workload::PhaseSpec phase;
  const SimTime start = kernel.now();
  std::uint64_t p_total = 0;
  std::uint64_t e_total = 0;
  // 400 x 25M-instruction iterations: a long enough horizon that the
  // placement statistics converge (individual dwell segments span many
  // iterations).
  for (int i = 0; i < 400; ++i) {
    (void)(*lib)->start(*set);
    program->enqueue(phase, 25'000'000);
    while (!program->idle()) kernel.run_for(std::chrono::milliseconds(1));
    auto values = (*lib)->stop(*set);
    p_total += static_cast<std::uint64_t>((*values)[0]);
    e_total += static_cast<std::uint64_t>((*values)[1]);
  }
  program->finish();
  Result result;
  result.p_share =
      static_cast<double>(p_total) / static_cast<double>(p_total + e_total);
  result.seconds =
      std::chrono::duration<double>(kernel.now() - start).count();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = parse_bench_args(argc, argv, 0);
  const std::pair<const char*, PlacementPolicy> policies[] = {
      {"capacity-biased (default)", PlacementPolicy::kCapacityBiased},
      {"uniform", PlacementPolicy::kUniform},
      {"little-first", PlacementPolicy::kLittleFirst},
  };

  // One independent deterministic run per policy, fanned across the
  // executor; printed from the slots in fixed order.
  std::vector<Result> results(3);
  std::vector<telemetry::RunCell> cells;
  for (std::size_t i = 0; i < 3; ++i) {
    cells.push_back({policies[i].first, [&, i] {
                       results[i] = run_policy(policies[i].second);
                     }});
  }
  telemetry::MultiRunExecutor executor(opts.threads);
  BenchRecorder recorder("ablation_scheduler", executor.thread_count());
  recorder.add_cells(executor.execute(cells));

  std::printf(
      "Scheduler-placement ablation (400 x 25M-instruction calipered\n"
      "iterations; paper's §IV-F split under the real kernel: 83%% P / 17%% E)\n\n");
  TextTable table({"policy", "P share", "E share", "loop runtime (s)"});
  for (std::size_t i = 0; i < 3; ++i) {
    const Result& result = results[i];
    recorder.set_cell_sim_s(i, result.seconds);
    table.add_row({policies[i].first,
                   str_format("%.1f%%", result.p_share * 100.0),
                   str_format("%.1f%%", (1.0 - result.p_share) * 100.0),
                   str_format("%.3f", result.seconds)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "expectation: the capacity-biased policy lands near the paper's\n"
      "split; uniform placement over-uses E cores and runs slower;\n"
      "little-first pushes the work to the E cores and is slowest (its\n"
      "instruction share stays near half only because P cores retire the\n"
      "P-resident segments so much faster).\n");
  recorder.write();
  return 0;
}
