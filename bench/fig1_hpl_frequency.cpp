// Regenerates Figure 1: measured core frequencies over time on the
// Raptor Lake system for both HPL variants, all-core runs, sampled at
// 1 Hz by the telemetry stack (mon_hpl.py equivalent).
//
// Output: per-second median P-core and E-core frequency series (gnuplot
// friendly), plus the run-median summary the paper quotes:
//   OpenBLAS: P median 2.94 GHz, E median 2.26 GHz
//   Intel:    P median 2.61 GHz, E median 2.32 GHz
// (i.e. the hybrid-aware run keeps the core types' frequencies *less
// dissimilar*.)
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace hetpapi;
using namespace hetpapi::bench;

namespace {

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

/// Median frequency of the cpus of one core type in one sample.
double type_median(const telemetry::Sample& sample,
                   const std::vector<int>& cpus) {
  std::vector<double> freqs;
  for (int cpu : cpus) {
    freqs.push_back(sample.core_freq_mhz[static_cast<std::size_t>(cpu)]);
  }
  return median(std::move(freqs));
}

}  // namespace

int main(int argc, char** argv) {
  int n = 57024;
  if (argc > 1) {
    if (const auto parsed = parse_int(argv[1])) n = static_cast<int>(*parsed);
  }
  const auto machine = cpumodel::raptor_lake_i7_13700();
  const auto p_cpus = raptor_cpus_p_only(machine);
  const auto e_cpus = raptor_cpus_e_only(machine);

  struct Variant {
    const char* name;
    workload::HplConfig config;
  };
  const Variant variants[] = {
      {"openblas", workload::HplConfig::openblas(n, 192)},
      {"intel", workload::HplConfig::intel(n, 192)},
  };

  std::printf("Figure 1: core frequencies during all-core HPL (N=%d)\n", n);
  for (const Variant& variant : variants) {
    const auto run = run_hpl_once(machine, variant.config,
                                  raptor_cpus_all(machine));
    std::vector<double> t;
    std::vector<double> p_series;
    std::vector<double> e_series;
    std::vector<double> p_all;
    std::vector<double> e_all;
    for (const telemetry::Sample& sample : run.samples) {
      if (sample.t_seconds <= 0.0) continue;  // pre-run baseline
      t.push_back(sample.t_seconds);
      const double p = type_median(sample, p_cpus);
      const double e = type_median(sample, e_cpus);
      p_series.push_back(p);
      e_series.push_back(e);
      // Only busy-phase samples contribute to the run median (the tail
      // after completion reads idle frequency).
      if (p > machine.core_types[0].dvfs.freq_min.value * 1.2) {
        p_all.push_back(p);
        e_all.push_back(e);
      }
    }
    print_series(str_format("%s_pcore_mhz", variant.name), t, p_series);
    print_series(str_format("%s_ecore_mhz", variant.name), t, e_series);
    std::printf(
        "summary %s: run medians P=%.2f GHz E=%.2f GHz (run %.0f s, %.1f "
        "Gflops)\n\n",
        variant.name, median(p_all) / 1000.0, median(e_all) / 1000.0,
        std::chrono::duration<double>(run.elapsed).count(), run.gflops);
  }
  std::printf(
      "paper: OpenBLAS P=2.94 E=2.26; Intel P=2.61 E=2.32 (GHz) — the\n"
      "hybrid-aware run keeps P/E frequencies less dissimilar.\n");
  return 0;
}
