// Ablation for the §IV-E multiplexing caveat: when an EventSet holds
// more counting events than the PMU has counters, the kernel rotates
// groups and PAPI reports scaled estimates. This bench sweeps the
// oversubscription factor and reports the estimation error against the
// simulator's ground truth, for a steady workload and for a bursty,
// phase-changing workload (where rotation sampling is biased).
#include <cstdio>

#include "base/table.hpp"
#include "bench/bench_common.hpp"
#include "papi/library.hpp"
#include "papi/sim_backend.hpp"
#include "workload/programs.hpp"

using namespace hetpapi;
using namespace hetpapi::bench;
using papi::Library;
using papi::LibraryConfig;
using simkernel::CpuSet;
using simkernel::SimKernel;

namespace {

struct Result {
  double mean_abs_error_pct = 0.0;
  double worst_abs_error_pct = 0.0;
};

Result run_case(int num_events, bool bursty) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  papi::SimBackend backend(&kernel);

  auto program = std::make_shared<workload::WorkQueueProgram>();
  workload::PhaseSpec steady;
  steady.llc_refs_per_kinstr = 8.0;
  steady.llc_miss_ratio = 0.4;
  steady.flops_per_instr = 1.0;
  if (bursty) {
    // Alternate phases with very different event densities.
    workload::PhaseSpec quiet;
    quiet.llc_refs_per_kinstr = 0.1;
    quiet.llc_miss_ratio = 0.05;
    quiet.flops_per_instr = 0.0;
    for (int i = 0; i < 40; ++i) {
      program->enqueue(i % 2 == 0 ? steady : quiet, 100'000'000);
    }
  } else {
    program->enqueue(steady, 4'000'000'000ULL);
  }
  program->finish();
  const auto tid = kernel.spawn(program, CpuSet::of({0}));
  backend.set_default_target(tid);

  LibraryConfig config;
  config.call_overhead_instructions = 0;
  auto lib = Library::init(&backend, config);
  auto set = (*lib)->create_eventset();
  (void)(*lib)->attach(*set, tid);

  // GP-consuming event names to replicate (all count on the P core).
  const char* names[] = {
      "adl_glc::LONGEST_LAT_CACHE:REFERENCE",
      "adl_glc::LONGEST_LAT_CACHE:MISS",
      "adl_glc::BR_INST_RETIRED:ALL_BRANCHES",
      "adl_glc::BR_MISP_RETIRED:ALL_BRANCHES",
      "adl_glc::RESOURCE_STALLS",
      "adl_glc::FP_ARITH_INST_RETIRED:SCALAR_DOUBLE",
  };
  std::vector<simkernel::CountKind> kinds = {
      simkernel::CountKind::kLlcReferences,
      simkernel::CountKind::kLlcMisses,
      simkernel::CountKind::kBranches,
      simkernel::CountKind::kBranchMisses,
      simkernel::CountKind::kStalledCycles,
      simkernel::CountKind::kFlopsDp,
  };
  for (int i = 0; i < num_events; ++i) {
    (void)(*lib)->add_event(*set, names[i % 6]);
  }
  (void)(*lib)->set_multiplex(*set);
  (void)(*lib)->start(*set);
  kernel.run_until_idle(std::chrono::seconds(600));
  auto values = (*lib)->stop(*set);

  const auto* truth = kernel.ground_truth(tid);
  Result result;
  for (int i = 0; i < num_events; ++i) {
    const double expected = static_cast<double>(
        truth->per_type[0].get(kinds[static_cast<std::size_t>(i % 6)]));
    if (expected <= 0.0) continue;
    const double got = static_cast<double>((*values)[static_cast<std::size_t>(i)]);
    const double err = std::abs(got - expected) / expected * 100.0;
    result.mean_abs_error_pct += err / num_events;
    result.worst_abs_error_pct = std::max(result.worst_abs_error_pct, err);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = parse_bench_args(argc, argv, 0);
  const int counts[] = {6, 8, 12, 18, 24};
  constexpr std::size_t kNumCounts = std::size(counts);

  // {event count} x {steady, bursty} = 10 independent cells, fanned
  // across the executor; printed from the slots in fixed order.
  std::vector<Result> steady_results(kNumCounts);
  std::vector<Result> bursty_results(kNumCounts);
  std::vector<telemetry::RunCell> cells;
  for (std::size_t i = 0; i < kNumCounts; ++i) {
    cells.push_back({str_format("%d events / steady", counts[i]), [&, i] {
                       steady_results[i] = run_case(counts[i], false);
                     }});
    cells.push_back({str_format("%d events / bursty", counts[i]), [&, i] {
                       bursty_results[i] = run_case(counts[i], true);
                     }});
  }
  telemetry::MultiRunExecutor executor(opts.threads);
  BenchRecorder recorder("multiplex_accuracy", executor.thread_count());
  recorder.add_cells(executor.execute(cells));

  std::printf(
      "Multiplexing accuracy ablation (P-core PMU: 8 GP counters; events\n"
      "beyond that rotate at 1 ms and are scaled by enabled/running time)\n");
  TextTable table({"events", "oversubscription", "steady mean|max err %",
                   "bursty mean|max err %"});
  for (std::size_t i = 0; i < kNumCounts; ++i) {
    const Result& steady = steady_results[i];
    const Result& bursty = bursty_results[i];
    table.add_row({std::to_string(counts[i]),
                   str_format("%.1fx", counts[i] / 8.0),
                   str_format("%.2f | %.2f", steady.mean_abs_error_pct,
                              steady.worst_abs_error_pct),
                   str_format("%.2f | %.2f", bursty.mean_abs_error_pct,
                              bursty.worst_abs_error_pct)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "expectation: error ~0 up to 8 events (everything fits), then grows\n"
      "with oversubscription, and is larger for bursty workloads.\n");
  recorder.write();
  return 0;
}
