// Energy-to-solution ablation.
//
// The paper's motivation is power/efficiency ("typically this is done
// for power-saving reasons"); this bench extends Table II with the
// energy dimension RAPL makes measurable: Joules to complete the same
// HPL problem and the resulting Gflops/W, for every core set and both
// build variants — measured with a combined RAPL package+DRAM EventSet,
// i.e. the unified-component path of §V-3.
#include <cstdio>

#include "base/table.hpp"
#include "bench/bench_common.hpp"
#include "papi/library.hpp"
#include "papi/sim_backend.hpp"

using namespace hetpapi;
using namespace hetpapi::bench;

namespace {

struct EnergyResult {
  double gflops = 0.0;
  double seconds = 0.0;
  double package_j = 0.0;
  double dram_j = 0.0;
};

EnergyResult run_case(const workload::HplConfig& hpl_config,
                      const std::vector<int>& cpus) {
  simkernel::SimKernel kernel(cpumodel::raptor_lake_i7_13700(),
                              hpl_kernel_config());
  papi::SimBackend backend(&kernel);
  papi::LibraryConfig lib_config;
  lib_config.call_overhead_instructions = 0;
  auto lib = papi::Library::init(&backend, lib_config);

  auto set = (*lib)->create_eventset();
  (void)(*lib)->add_event(*set, "rapl::RAPL_ENERGY_PKG");
  (void)(*lib)->add_event(*set, "rapl::RAPL_ENERGY_DRAM");
  (void)(*lib)->start(*set);

  workload::HplSimulation hpl(hpl_config, static_cast<int>(cpus.size()));
  for (std::size_t i = 0; i < cpus.size(); ++i) {
    kernel.spawn(hpl.make_worker(static_cast<int>(i)),
                 simkernel::CpuSet::of({cpus[i]}));
  }
  const SimDuration elapsed =
      kernel.run_until_idle(std::chrono::seconds(3600));
  auto values = (*lib)->stop(*set);

  EnergyResult result;
  result.seconds = std::chrono::duration<double>(elapsed).count();
  result.gflops = hpl.gflops(elapsed).value;
  result.package_j = static_cast<double>((*values)[0]) / 1e6;
  result.dram_j = static_cast<double>((*values)[1]) / 1e6;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = parse_bench_args(argc, argv, 43008);
  const int n = opts.n;
  const auto machine = cpumodel::raptor_lake_i7_13700();
  struct Row {
    const char* label;
    std::vector<int> cpus;
  };
  const Row rows[] = {
      {"E only", raptor_cpus_e_only(machine)},
      {"P only", raptor_cpus_p_only(machine)},
      {"P and E", raptor_cpus_all(machine)},
  };
  const char* variants[] = {"openblas", "intel"};

  // 2 variants x 3 core sets = 6 independent cells, fanned across the
  // executor; printed from the result slots in fixed order.
  std::vector<EnergyResult> results(6);
  std::vector<telemetry::RunCell> cells;
  for (std::size_t v = 0; v < 2; ++v) {
    for (std::size_t r = 0; r < 3; ++r) {
      cells.push_back({std::string(variants[v]) + " / " + rows[r].label,
                       [&, v, r] {
                         const auto config =
                             v == 1 ? workload::HplConfig::intel(n, 192)
                                    : workload::HplConfig::openblas(n, 192);
                         results[3 * v + r] = run_case(config, rows[r].cpus);
                       }});
    }
  }
  telemetry::MultiRunExecutor executor(opts.threads);
  BenchRecorder recorder("ablation_energy", executor.thread_count());
  recorder.add_cells(executor.execute(cells));

  std::printf(
      "Energy-to-solution ablation (HPL N=%d; RAPL package+DRAM via one "
      "combined EventSet)\n",
      n);
  TextTable table({"variant", "cores", "time (s)", "Gflops", "pkg (kJ)",
                   "dram (kJ)", "Gflops/W"});
  for (std::size_t v = 0; v < 2; ++v) {
    for (std::size_t r = 0; r < 3; ++r) {
      const EnergyResult& result = results[3 * v + r];
      recorder.set_cell_sim_s(3 * v + r, result.seconds);
      const double avg_watts = result.package_j / result.seconds;
      table.add_row({variants[v], rows[r].label,
                     str_format("%.1f", result.seconds),
                     str_format("%.1f", result.gflops),
                     str_format("%.2f", result.package_j / 1000.0),
                     str_format("%.2f", result.dram_j / 1000.0),
                     str_format("%.2f", result.gflops / avg_watts)});
    }
    table.add_rule();
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "expectations: the hybrid-unaware all-core run burns MORE energy\n"
      "than its own P-only run for the same problem (longer runtime at\n"
      "the same 65 W cap), while the hybrid-aware build converts the\n"
      "extra cores into both speed and efficiency — all-core becomes the\n"
      "fastest AND cheapest configuration. (E-only is not the efficiency\n"
      "winner here: with the whole 65 W budget to itself the E cluster\n"
      "races to its multi-core turbo ceiling, far from its efficiency\n"
      "sweet spot.)\n");
  recorder.write();
  return 0;
}
