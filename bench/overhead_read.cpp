// §V-5 overhead analysis: the multi-group EventSet design adds "an extra
// layer of indirection" — every start/stop/read now fans out across one
// perf group per PMU type. This bench quantifies the cost of the read
// path as the group count grows, the rdpmc fast path against read(2),
// and — when the host kernel allows perf_event_open — the *real* syscall
// read cost for comparison with the simulated backend's bookkeeping.
#include <benchmark/benchmark.h>

#include "cpumodel/machine.hpp"
#include "linuxkernel/linux_backend.hpp"
#include "papi/fault_injection.hpp"
#include "papi/library.hpp"
#include "papi/marker.hpp"
#include "papi/sim_backend.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

namespace {

using namespace hetpapi;
using papi::Library;
using papi::LibraryConfig;
using simkernel::CpuSet;
using simkernel::SimKernel;

struct Fixture {
  std::unique_ptr<SimKernel> kernel;
  std::unique_ptr<papi::SimBackend> backend;
  std::unique_ptr<papi::FaultInjectingBackend> injector;
  std::unique_ptr<Library> lib;
  int set = -1;

  explicit Fixture(const std::vector<std::string>& events,
                   bool multiplex = false, bool use_rdpmc = false,
                   bool cache_read_plan = true,
                   const char* fault_profile = nullptr,
                   const char* machine_preset = "raptorlake") {
    kernel = std::make_unique<SimKernel>(
        *cpumodel::machine_preset_by_name(machine_preset));
    backend = std::make_unique<papi::SimBackend>(kernel.get());
    if (fault_profile != nullptr) {
      injector = std::make_unique<papi::FaultInjectingBackend>(
          backend.get(), *papi::FaultProfile::named(fault_profile), 1);
    }
    workload::PhaseSpec phase;
    const auto tid = kernel->spawn(
        std::make_shared<workload::FixedWorkProgram>(phase,
                                                     1'000'000'000'000ULL),
        CpuSet::of({0}));
    backend->set_default_target(tid);
    LibraryConfig config;
    config.use_rdpmc = use_rdpmc;
    config.cache_read_plan = cache_read_plan;
    config.call_overhead_instructions = 0;  // measuring, not modelling
    auto created = Library::init(
        injector ? static_cast<papi::Backend*>(injector.get())
                 : backend.get(),
        config);
    lib = std::move(*created);
    set = *lib->create_eventset();
    for (const std::string& event : events) {
      const Status added = lib->add_event(set, event);
      if (!added.is_ok()) {
        throw std::runtime_error("add_event: " + added.to_string());
      }
    }
    if (multiplex) (void)lib->set_multiplex(set);
    (void)lib->start(set);
    kernel->run_for(std::chrono::milliseconds(50));
  }
};

void BM_Read_OneGroup_SinglePmu(benchmark::State& state) {
  Fixture f({"adl_glc::INST_RETIRED:ANY", "adl_glc::CPU_CLK_UNHALTED:THREAD"});
  for (auto _ : state) {
    auto values = f.lib->read(f.set);
    benchmark::DoNotOptimize(values);
  }
}
BENCHMARK(BM_Read_OneGroup_SinglePmu);

void BM_Read_TwoGroups_Hybrid(benchmark::State& state) {
  // The paper's case: equivalent events on both core PMUs => two perf
  // groups => two reads per collection.
  Fixture f({"adl_glc::INST_RETIRED:ANY", "adl_grt::INST_RETIRED:ANY",
             "adl_glc::CPU_CLK_UNHALTED:THREAD",
             "adl_grt::CPU_CLK_UNHALTED:THREAD"});
  for (auto _ : state) {
    auto values = f.lib->read(f.set);
    benchmark::DoNotOptimize(values);
  }
}
BENCHMARK(BM_Read_TwoGroups_Hybrid);

void BM_Read_DerivedPreset_Hybrid(benchmark::State& state) {
  // One preset that expands to a native per core PMU; read() folds the
  // constituents into a single transparent sum (§V-2).
  Fixture f({"PAPI_TOT_INS", "PAPI_TOT_CYC"});
  for (auto _ : state) {
    auto values = f.lib->read(f.set);
    benchmark::DoNotOptimize(values);
  }
}
BENCHMARK(BM_Read_DerivedPreset_Hybrid);

void BM_ReadQualified_DerivedPreset_Hybrid(benchmark::State& state) {
  // The qualified read keeps the per-PMU constituents instead of folding
  // them away — this is the extra summation/bookkeeping indirection the
  // per-core-type breakdown costs over read().
  Fixture f({"PAPI_TOT_INS", "PAPI_TOT_CYC"});
  for (auto _ : state) {
    auto readings = f.lib->read_qualified(f.set);
    benchmark::DoNotOptimize(readings);
  }
}
BENCHMARK(BM_ReadQualified_DerivedPreset_Hybrid);

// --- three-PMU hybrid (N-type generalization) --------------------------------
// The same read paths on the Meteor-Lake-like P/E/LP-E model: every
// collection fans out across three perf groups, so these quantify how
// the indirection §V-5 measures scales from two PMU types to three.

void BM_Read_ThreeGroups_TriHybrid(benchmark::State& state) {
  Fixture f({"mtl_rwc::INST_RETIRED:ANY", "mtl_cmt::INST_RETIRED:ANY",
             "mtl_lpe::INST_RETIRED:ANY"},
            false, false, true, nullptr, "meteorlake");
  for (auto _ : state) {
    auto values = f.lib->read(f.set);
    benchmark::DoNotOptimize(values);
  }
}
BENCHMARK(BM_Read_ThreeGroups_TriHybrid);

void BM_Read_DerivedPreset_TriHybrid(benchmark::State& state) {
  // One preset, three constituents folded into the transparent sum.
  Fixture f({"PAPI_TOT_INS", "PAPI_TOT_CYC"}, false, false, true, nullptr,
            "meteorlake");
  for (auto _ : state) {
    auto values = f.lib->read(f.set);
    benchmark::DoNotOptimize(values);
  }
}
BENCHMARK(BM_Read_DerivedPreset_TriHybrid);

void BM_ReadQualified_DerivedPreset_TriHybrid(benchmark::State& state) {
  // The qualified breakdown now carries three labelled parts per slot.
  Fixture f({"PAPI_TOT_INS", "PAPI_TOT_CYC"}, false, false, true, nullptr,
            "meteorlake");
  for (auto _ : state) {
    auto readings = f.lib->read_qualified(f.set);
    benchmark::DoNotOptimize(readings);
  }
}
BENCHMARK(BM_ReadQualified_DerivedPreset_TriHybrid);

void BM_ReadChecked_DerivedPreset_Hybrid(benchmark::State& state) {
  // The tolerant read: the same group fan-out as read() plus the
  // per-slot validity bookkeeping the degradation machinery threads
  // through — the A/B partner that shows the hardening stays off the
  // plain read's hot path.
  Fixture f({"PAPI_TOT_INS", "PAPI_TOT_CYC"});
  for (auto _ : state) {
    auto reading = f.lib->read_checked(f.set);
    benchmark::DoNotOptimize(reading);
  }
}
BENCHMARK(BM_ReadChecked_DerivedPreset_Hybrid);

void BM_Read_ThroughIdleFaultInjector(benchmark::State& state) {
  // The fault-injection decorator with the "none" profile: what the
  // chaos seam costs when plumbed in but idle (one ledger lookup and a
  // forwarded virtual call per backend operation).
  Fixture f({"PAPI_TOT_INS", "PAPI_TOT_CYC"}, false, false, true, "none");
  for (auto _ : state) {
    auto values = f.lib->read(f.set);
    benchmark::DoNotOptimize(values);
  }
}
BENCHMARK(BM_Read_ThroughIdleFaultInjector);

void BM_ReadQualified_SinglePmu(benchmark::State& state) {
  // Breakdown structure on a non-derived set: one constituent per slot,
  // so this isolates the allocation cost of the qualified result shape.
  Fixture f({"adl_glc::INST_RETIRED:ANY", "adl_glc::CPU_CLK_UNHALTED:THREAD"});
  for (auto _ : state) {
    auto readings = f.lib->read_qualified(f.set);
    benchmark::DoNotOptimize(readings);
  }
}
BENCHMARK(BM_ReadQualified_SinglePmu);

void BM_Read_ThreeGroups_HybridPlusUncore(benchmark::State& state) {
  Fixture f({"adl_glc::INST_RETIRED:ANY", "adl_grt::INST_RETIRED:ANY",
             "unc_imc_0::UNC_M_CAS_COUNT:RD"});
  for (auto _ : state) {
    auto values = f.lib->read(f.set);
    benchmark::DoNotOptimize(values);
  }
}
BENCHMARK(BM_Read_ThreeGroups_HybridPlusUncore);

void BM_Read_MultiplexedTwelveGroups(benchmark::State& state) {
  std::vector<std::string> events;
  const char* names[] = {
      "adl_glc::LONGEST_LAT_CACHE:REFERENCE",
      "adl_glc::LONGEST_LAT_CACHE:MISS",
      "adl_glc::BR_INST_RETIRED:ALL_BRANCHES",
      "adl_glc::BR_MISP_RETIRED:ALL_BRANCHES",
      "adl_glc::RESOURCE_STALLS",
      "adl_glc::FP_ARITH_INST_RETIRED:SCALAR_DOUBLE",
  };
  for (int copy = 0; copy < 2; ++copy) {
    events.insert(events.end(), std::begin(names), std::end(names));
  }
  Fixture f(events, /*multiplex=*/true);
  for (auto _ : state) {
    auto values = f.lib->read(f.set);
    benchmark::DoNotOptimize(values);
  }
}
BENCHMARK(BM_Read_MultiplexedTwelveGroups);

void BM_Read_CachedReadPlan(benchmark::State& state) {
  // The cached group fan-out: collect() resolves which leader fds to
  // read and where each value lands once, then reuses the plan.
  Fixture f({"adl_glc::INST_RETIRED:ANY", "adl_grt::INST_RETIRED:ANY",
             "adl_glc::CPU_CLK_UNHALTED:THREAD",
             "adl_grt::CPU_CLK_UNHALTED:THREAD"},
            false, false, /*cache_read_plan=*/true);
  for (auto _ : state) {
    auto values = f.lib->read(f.set);
    benchmark::DoNotOptimize(values);
  }
}
BENCHMARK(BM_Read_CachedReadPlan);

void BM_Read_UncachedReadPlan(benchmark::State& state) {
  // Historical behaviour: the fan-out is re-derived on every read.
  Fixture f({"adl_glc::INST_RETIRED:ANY", "adl_grt::INST_RETIRED:ANY",
             "adl_glc::CPU_CLK_UNHALTED:THREAD",
             "adl_grt::CPU_CLK_UNHALTED:THREAD"},
            false, false, /*cache_read_plan=*/false);
  for (auto _ : state) {
    auto values = f.lib->read(f.set);
    benchmark::DoNotOptimize(values);
  }
}
BENCHMARK(BM_Read_UncachedReadPlan);

void BM_Read_RdpmcFastPath(benchmark::State& state) {
  // A singleton group served by the userspace counter read.
  Fixture f({"adl_glc::INST_RETIRED:ANY"}, false, /*use_rdpmc=*/true);
  for (auto _ : state) {
    auto values = f.lib->read(f.set);
    benchmark::DoNotOptimize(values);
  }
}
BENCHMARK(BM_Read_RdpmcFastPath);

void BM_Read_SyscallPath(benchmark::State& state) {
  Fixture f({"adl_glc::INST_RETIRED:ANY"}, false, /*use_rdpmc=*/false);
  for (auto _ : state) {
    auto values = f.lib->read(f.set);
    benchmark::DoNotOptimize(values);
  }
}
BENCHMARK(BM_Read_SyscallPath);

// --- the allocation-free read plan (§V-5's low-tens-of-ns target) ------------
// read_into() reuses the caller's buffer and the EventSet's internal
// scratch, so the steady-state iteration allocates nothing; with
// use_rdpmc the whole hybrid group is served by seqlock user-page
// reads. The A/B pair below is what tools/bench_check guards in CI.

void BM_ReadInto_RdpmcPlan_Hybrid(benchmark::State& state) {
  Fixture f({"adl_glc::INST_RETIRED:ANY", "adl_grt::INST_RETIRED:ANY",
             "adl_glc::CPU_CLK_UNHALTED:THREAD",
             "adl_grt::CPU_CLK_UNHALTED:THREAD"},
            false, /*use_rdpmc=*/true);
  std::vector<long long> values;
  for (auto _ : state) {
    const Status read = f.lib->read_into(f.set, values);
    benchmark::DoNotOptimize(read);
    benchmark::DoNotOptimize(values.data());
  }
}
BENCHMARK(BM_ReadInto_RdpmcPlan_Hybrid);

void BM_ReadInto_SyscallPath_Hybrid(benchmark::State& state) {
  Fixture f({"adl_glc::INST_RETIRED:ANY", "adl_grt::INST_RETIRED:ANY",
             "adl_glc::CPU_CLK_UNHALTED:THREAD",
             "adl_grt::CPU_CLK_UNHALTED:THREAD"},
            false, /*use_rdpmc=*/false);
  std::vector<long long> values;
  for (auto _ : state) {
    const Status read = f.lib->read_into(f.set, values);
    benchmark::DoNotOptimize(read);
    benchmark::DoNotOptimize(values.data());
  }
}
BENCHMARK(BM_ReadInto_SyscallPath_Hybrid);

void BM_ReadQualifiedInto_DerivedPreset_Hybrid(benchmark::State& state) {
  // The in-place qualified read: same per-PMU breakdown as
  // BM_ReadQualified_DerivedPreset_Hybrid, but the result shape is
  // verified and updated in place instead of rebuilt — the sampler's
  // per-tick path.
  Fixture f({"PAPI_TOT_INS", "PAPI_TOT_CYC"});
  std::vector<papi::QualifiedReading> readings;
  for (auto _ : state) {
    const Status read = f.lib->read_qualified_into(f.set, readings);
    benchmark::DoNotOptimize(read);
    benchmark::DoNotOptimize(readings.data());
  }
}
BENCHMARK(BM_ReadQualifiedInto_DerivedPreset_Hybrid);

void BM_Marker_RegionEnterExit(benchmark::State& state) {
  // One begin/end pair of the LIKWID-style marker API over the rdpmc
  // read plan: two user-page reads plus the per-region accumulation.
  Fixture f({"adl_glc::INST_RETIRED:ANY", "adl_glc::CPU_CLK_UNHALTED:THREAD"},
            false, /*use_rdpmc=*/true);
  papi::MarkerManager markers;
  // The sim-backend configuration: regions are timed by the simulated
  // clock (what the monitored harnesses install), not the host clock.
  markers.set_time_source(
      +[](void* k) {
        return static_cast<std::uint64_t>(
            static_cast<SimKernel*>(k)->now().since_epoch.count());
      },
      f.kernel.get());
  if (!markers.attach_thread(f.lib.get(), f.set).is_ok()) {
    state.SkipWithError("marker attach failed");
    return;
  }
  for (auto _ : state) {
    (void)markers.region_begin("bench");
    const Status ended = markers.region_end("bench");
    benchmark::DoNotOptimize(ended);
  }
}
BENCHMARK(BM_Marker_RegionEnterExit);

// --- per-component dispatch cost ---------------------------------------------
// The componentized core routes every read through the registry; these
// cases isolate what each component contributes to a collection so the
// fan-out cost is attributable (papi_component_avail's view of §V-5).

void BM_Read_Component_PerfCore(benchmark::State& state) {
  Fixture f({"adl_glc::INST_RETIRED:ANY"});
  for (auto _ : state) {
    auto values = f.lib->read(f.set);
    benchmark::DoNotOptimize(values);
  }
}
BENCHMARK(BM_Read_Component_PerfCore);

void BM_Read_Component_Rapl(benchmark::State& state) {
  Fixture f({"rapl::RAPL_ENERGY_PKG"});
  for (auto _ : state) {
    auto values = f.lib->read(f.set);
    benchmark::DoNotOptimize(values);
  }
}
BENCHMARK(BM_Read_Component_Rapl);

void BM_Read_Component_Sysinfo(benchmark::State& state) {
  // Pure software reads: no perf group, the cost is the procfs parse.
  Fixture f({"sysinfo::SYS_CTX_SWITCHES", "sysinfo::SYS_CPU_TIME_MS"});
  for (auto _ : state) {
    auto values = f.lib->read(f.set);
    benchmark::DoNotOptimize(values);
  }
}
BENCHMARK(BM_Read_Component_Sysinfo);

void BM_Read_Component_MixedThree(benchmark::State& state) {
  // One collection dispatched across three peer components.
  Fixture f({"adl_glc::INST_RETIRED:ANY", "rapl::RAPL_ENERGY_PKG",
             "sysinfo::SYS_CTX_SWITCHES"});
  for (auto _ : state) {
    auto values = f.lib->read(f.set);
    benchmark::DoNotOptimize(values);
  }
}
BENCHMARK(BM_Read_Component_MixedThree);

// --- real kernel comparison (skipped when perf_event is unavailable) ---------

void BM_RealPerf_ReadGroup(benchmark::State& state) {
  if (!linuxkernel::perf_event_available()) {
    state.SkipWithError("perf_event_open unavailable in this environment");
    return;
  }
  linuxkernel::LinuxBackend backend;
  simkernel::PerfEventAttr attr;
  attr.type = simkernel::kPerfTypeSoftware;
  attr.config =
      static_cast<std::uint64_t>(simkernel::CountKind::kTaskClockNs);
  attr.read_format = simkernel::kFormatGroup |
                     simkernel::kFormatTotalTimeEnabled |
                     simkernel::kFormatTotalTimeRunning;
  attr.disabled = false;
  const auto n_events = state.range(0);
  std::vector<int> fds;
  int leader = -1;
  for (std::int64_t i = 0; i < n_events; ++i) {
    auto fd = backend.perf_event_open(attr, 0, -1, leader, 0);
    if (!fd) {
      state.SkipWithError("open failed");
      return;
    }
    if (leader < 0) leader = *fd;
    fds.push_back(*fd);
  }
  for (auto _ : state) {
    auto values = backend.perf_read_group(leader);
    benchmark::DoNotOptimize(values);
  }
  for (int fd : fds) (void)backend.perf_close(fd);
}
BENCHMARK(BM_RealPerf_ReadGroup)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

// Like BENCHMARK_MAIN(), but defaults the machine-readable output to
// BENCH_overhead_read.json (the repo-wide bench artifact convention) so
// the per-component dispatch costs land on disk without extra flags.
// Explicit --benchmark_out on the command line wins.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_overhead_read.json";
  std::string format_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
