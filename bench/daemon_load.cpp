// daemon_load: the counter-service load generator. Sweeps client count
// 1 -> 1024 (c10k via --n 10000) with every client riding the SAME
// subscription spec, plus a distinct-spec control cell, a mixed cell
// (1024 clients over 8 distinct specs), a shard-count axis over the
// mixed cell, and a session-churn cell (steady riders while
// short-lived clients connect and vanish every tick), and reports:
//
//   * backend reads per client-delivered sample (the coalescing ratio:
//     ~1/N for the shared sweep, ~1 for the distinct control, ~1/128
//     for the mixed cell — reads scale with distinct specs, never with
//     client count), and
//   * per-client sample-retrieval latency percentiles (p50/p95/p99),
//     which must stay flat across the sweep and the shard axis — a slow
//     client count would mean the daemon does per-client backend work
//     it should coalesce (bench_check --daemon-load guards both).
//
// Counts and ratios are deterministic and go to stdout; wall-clock
// latencies go to BENCH_daemon_load.json (BenchRecorder convention:
// stdout stays bit-identical across runs, --threads values, and
// --shards values, which feed the daemon's encode pool and fan-out
// partitioning).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "cpumodel/machine.hpp"
#include "papi/sim_backend.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/transport.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

using namespace hetpapi;
using service::Client;
using service::TargetKind;

namespace {

constexpr int kTicks = 40;
constexpr int kDistinctTargets = 8;

struct CellResult {
  std::string label;
  int clients = 0;
  std::size_t shards = 1;
  std::uint64_t distinct_subscriptions = 0;
  std::uint64_t backend_reads = 0;
  std::uint64_t client_reads = 0;  // samples delivered across all clients
  double reads_per_client_read = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// One load cell: `clients` subscribers spread across `targets` worker
/// threads (targets == 1 -> everyone coalesces onto one EventSet;
/// targets == clients -> every subscription is distinct), delivered by
/// `shards` session shards. With `churn_per_tick` > 0, that many
/// short-lived sessions additionally connect, hello and subscribe the
/// same coalesced spec every tick and leave before the next delivery —
/// half politely (Close/CloseAck), half by abandoning the socket so the
/// daemon's dead-pipe reaper runs — and the steady riders' counts and
/// latencies must be completely undisturbed.
CellResult run_cell(const std::string& label, int clients, int targets,
                    std::size_t encode_threads, std::size_t shards,
                    int churn_per_tick = 0) {
  simkernel::SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  papi::SimBackend backend(&kernel);
  std::vector<simkernel::Tid> tids;
  for (int i = 0; i < targets; ++i) {
    tids.push_back(kernel.spawn(
        std::make_shared<workload::FixedWorkProgram>(workload::PhaseSpec{},
                                                     40'000'000'000ull),
        simkernel::CpuSet::of({i})));
  }
  service::DaemonConfig dconfig;
  dconfig.encode_threads = encode_threads;
  dconfig.shards = shards;
  service::LoopbackTransport transport;
  service::Daemon daemon(&kernel, &backend, dconfig);
  if (const Status s = daemon.init(); !s.is_ok()) {
    std::fprintf(stderr, "daemon init: %s\n", s.to_string().c_str());
    std::exit(1);
  }
  daemon.add_listener(transport.listener());
  transport.set_pump([&daemon] { daemon.poll(); });

  std::vector<std::unique_ptr<Client>> riders;
  for (int i = 0; i < clients; ++i) {
    auto client = std::make_unique<Client>(transport.connect());
    if (!client->hello("load-" + std::to_string(i)).is_ok()) {
      std::fprintf(stderr, "hello failed for client %d\n", i);
      std::exit(1);
    }
    service::Subscribe spec;
    spec.target_kind = TargetKind::kThread;
    spec.target = tids[static_cast<std::size_t>(i % targets)];
    spec.events = {"PAPI_TOT_INS", "PAPI_TOT_CYC"};
    if (const auto ack = client->subscribe(spec); !ack.has_value()) {
      std::fprintf(stderr, "subscribe failed for client %d: %s\n", i,
                   ack.status().to_string().c_str());
      std::exit(1);
    }
    riders.push_back(std::move(client));
  }

  const std::uint64_t reads_before = daemon.stats().backend_reads;
  const std::uint64_t samples_before = daemon.stats().samples_delivered;
  std::vector<double> latencies_us;
  latencies_us.reserve(static_cast<std::size_t>(clients) * kTicks);
  std::uint64_t samples_seen = 0;
  for (int t = 0; t < kTicks; ++t) {
    kernel.run_for(std::chrono::milliseconds(5));
    daemon.tick();
    if (churn_per_tick > 0) {
      std::vector<std::unique_ptr<Client>> ephemerals;
      for (int c = 0; c < churn_per_tick; ++c) {
        auto eph = std::make_unique<Client>(transport.connect());
        if (!eph->hello("churn-" + std::to_string(t) + "-" +
                        std::to_string(c))
                 .is_ok()) {
          std::fprintf(stderr, "churn hello failed (tick %d)\n", t);
          std::exit(1);
        }
        service::Subscribe spec;
        spec.target_kind = TargetKind::kThread;
        spec.target = tids[0];
        spec.events = {"PAPI_TOT_INS", "PAPI_TOT_CYC"};
        if (!eph->subscribe(spec).has_value()) {
          std::fprintf(stderr, "churn subscribe failed (tick %d)\n", t);
          std::exit(1);
        }
        ephemerals.push_back(std::move(eph));
      }
      for (std::size_t c = 0; c < ephemerals.size(); ++c) {
        if (c % 2 == 0) {
          static_cast<void>(ephemerals[c]->close());  // polite farewell
        } else {
          ephemerals[c].reset();  // vanish mid-session
        }
      }
      // Reap the vanished before the next delivery tick so churned
      // sessions never receive a sample: client_reads stays exactly
      // steady-riders x ticks.
      daemon.poll();
    }
    for (auto& rider : riders) {
      const auto start = std::chrono::steady_clock::now();
      samples_seen += rider->take_samples().size();
      const auto stop = std::chrono::steady_clock::now();
      latencies_us.push_back(
          std::chrono::duration<double, std::micro>(stop - start).count());
    }
  }

  CellResult result;
  result.label = label;
  result.clients = clients;
  result.shards = shards;
  result.distinct_subscriptions = daemon.distinct_subscription_count();
  result.backend_reads = daemon.stats().backend_reads - reads_before;
  result.client_reads = daemon.stats().samples_delivered - samples_before;
  if (samples_seen != result.client_reads) {
    std::fprintf(stderr, "warning: %s: clients swept %llu of %llu samples\n",
                 label.c_str(),
                 static_cast<unsigned long long>(samples_seen),
                 static_cast<unsigned long long>(result.client_reads));
  }
  result.reads_per_client_read =
      result.client_reads == 0
          ? 0.0
          : static_cast<double>(result.backend_reads) /
                static_cast<double>(result.client_reads);
  std::sort(latencies_us.begin(), latencies_us.end());
  result.p50_us = percentile(latencies_us, 0.50);
  result.p95_us = percentile(latencies_us, 0.95);
  result.p99_us = percentile(latencies_us, 0.99);

  for (auto& rider : riders) static_cast<void>(rider->close());
  daemon.shutdown();
  if (backend.open_fd_count() != 0) {
    std::fprintf(stderr, "error: %s leaked %zu fds\n", label.c_str(),
                 backend.open_fd_count());
    std::exit(1);
  }
  return result;
}

void write_json(const std::vector<CellResult>& cells, std::size_t threads,
                double wall_s) {
  const char* path = "BENCH_daemon_load.json";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path);
    return;
  }
  std::fprintf(out,
               "{\n  \"name\": \"daemon_load\",\n  \"threads\": %zu,\n"
               "  \"ticks_per_cell\": %d,\n  \"wall_s\": %.6f,\n"
               "  \"cells\": [\n",
               threads, kTicks, wall_s);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    std::fprintf(
        out,
        "    {\"label\": \"%s\", \"clients\": %d, \"shards\": %zu, "
        "\"distinct_subscriptions\": %llu, \"backend_reads\": %llu, "
        "\"client_reads\": %llu, \"reads_per_client_read\": %.6f, "
        "\"latency_us\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f}}%s\n",
        c.label.c_str(), c.clients, c.shards,
        static_cast<unsigned long long>(c.distinct_subscriptions),
        static_cast<unsigned long long>(c.backend_reads),
        static_cast<unsigned long long>(c.client_reads),
        c.reads_per_client_read, c.p50_us, c.p95_us, c.p99_us,
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote %s (wall %.3f s, %zu cells, %zu threads)\n",
               path, wall_s, cells.size(), threads);
}

}  // namespace

// Stdout carries only the deterministic counts: it must be byte-for-byte
// identical across --threads and --shards (CI diffs the runs). The shard
// count and the latency percentiles live in the JSON.
void print_cell(const CellResult& c) {
  std::printf("%-26s %8d %9llu %13llu %13llu %9.4f\n", c.label.c_str(),
              c.clients,
              static_cast<unsigned long long>(c.distinct_subscriptions),
              static_cast<unsigned long long>(c.backend_reads),
              static_cast<unsigned long long>(c.client_reads),
              c.reads_per_client_read);
}

int main(int argc, char** argv) {
  // --shards S is our own axis; strip it before the shared parser (which
  // would otherwise read the bare value as the client count).
  std::size_t base_shards = 1;
  std::vector<char*> rest;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--shards" && i + 1 < argc) {
      base_shards = static_cast<std::size_t>(
          std::max(1L, std::strtol(argv[++i], nullptr, 10)));
      continue;
    }
    rest.push_back(argv[i]);
  }
  const bench::BenchOptions opts =
      bench::parse_bench_args(static_cast<int>(rest.size()), rest.data(), 1024);
  const auto bench_start = std::chrono::steady_clock::now();

  std::vector<CellResult> cells;
  std::printf("daemon_load: shared-subscription sweep, %d ticks per cell\n\n",
              kTicks);
  std::fprintf(stderr, "daemon_load: %zu base shard(s)\n", base_shards);
  std::printf("%-26s %8s %9s %13s %13s %9s\n", "cell", "clients", "distinct",
              "backend-reads", "client-reads", "ratio");
  for (int clients = 1; clients <= opts.n; clients *= 2) {
    cells.push_back(run_cell("same-spec/" + std::to_string(clients), clients,
                             /*targets=*/1, opts.threads, base_shards));
    print_cell(cells.back());
  }
  // Control: distinct targets -> no coalescing -> ratio ~1.
  cells.push_back(run_cell("distinct-spec/" + std::to_string(kDistinctTargets),
                           kDistinctTargets, kDistinctTargets, opts.threads,
                           base_shards));
  print_cell(cells.back());
  // Mixed cell: a big client population over a handful of distinct
  // specs — reads must scale with the 8 specs, not the client count —
  // swept across the shard axis to show fan-out partitioning keeps the
  // counts (and, in the JSON, the latency percentiles) invariant.
  const int mixed_clients = std::min(opts.n, 1024);
  if (mixed_clients >= kDistinctTargets) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4},
                                     std::size_t{16}}) {
      cells.push_back(run_cell(
          "mixed-spec/" + std::to_string(mixed_clients) + "x" +
              std::to_string(kDistinctTargets) + "/shards" +
              std::to_string(shards),
          mixed_clients, kDistinctTargets, opts.threads, shards));
      print_cell(cells.back());
    }
  }
  // Churn cell (PR 9, self-healing fabric): steady riders under
  // constant session churn — 16 short-lived clients join and leave
  // every tick, half of them by abandoning their socket. The steady
  // stream's counts must match same-spec/64 exactly and its p99 must
  // stay flat (bench_check's churn guard).
  if (opts.n >= 64) {
    cells.push_back(run_cell("churn/64+16", 64, /*targets=*/1, opts.threads,
                             base_shards, /*churn_per_tick=*/16));
    print_cell(cells.back());
  }
  std::printf(
      "\ncoalescing holds when same-spec ratios track 1/clients while the\n"
      "distinct-spec control stays at 1.0 and the mixed cells sit at\n"
      "specs/clients regardless of shard count; latency percentiles live\n"
      "in BENCH_daemon_load.json and must stay flat across the sweep\n"
      "(bench_check --daemon-load enforces both properties).\n");

  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - bench_start)
                            .count();
  write_json(cells, opts.threads, wall_s);
  return 0;
}
