// Regenerates Table IV: hardware configuration of the OrangePi 800, as
// reported by the machine model and the detection stack.
#include <cstdio>

#include "base/table.hpp"
#include "bench/bench_common.hpp"
#include "papi/sysdetect.hpp"
#include "pfm/sim_host.hpp"

using namespace hetpapi;

int main() {
  const auto machine = cpumodel::orangepi800_rk3399();
  simkernel::SimKernel kernel(machine);

  TextTable table({"", ""});
  table.add_row({"CPU", machine.cpu_model_string});
  for (std::size_t t = 0; t < machine.core_types.size(); ++t) {
    const auto& type = machine.core_types[t];
    const auto cores =
        machine.cpus_of_type(static_cast<cpumodel::CoreTypeId>(t));
    table.add_row({type.name + " cores",
                   str_format("%zu ARM %s @%.1f GHz", cores.size(),
                              type.uarch_name.c_str(),
                              type.dvfs.freq_max.gigahertz())});
  }
  table.add_row({"Memory", machine.memory.description});
  std::printf("Table IV: hardware configuration of the OrangePi 800 system\n%s",
              table.render().c_str());

  pfm::SimHost host(&kernel);
  pfm::PfmLibrary pfmlib;
  if (pfmlib.initialize(host).is_ok()) {
    const auto report = papi::build_sysdetect_report(host, pfmlib);
    std::printf("\n%s", report.to_text().c_str());
  }
  return 0;
}
