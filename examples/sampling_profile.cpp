// Sample-based profiling on a hybrid machine.
//
// Installs an overflow handler (PAPI_overflow style) on a derived
// PAPI_TOT_INS preset while an HPL worker runs unpinned, and builds a
// time histogram of where the samples land — P-core vs E-core — the
// sampling-side counterpart of the paper's per-PMU counting. Because
// the preset expands to one sampling event per core PMU, each sample
// arrives tagged with the native event (and therefore core type) that
// fired.
#include <cstdio>
#include <vector>

#include "base/strings.hpp"
#include "cpumodel/machine.hpp"
#include "papi/library.hpp"
#include "papi/sim_backend.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

using namespace hetpapi;

int main() {
  simkernel::SimKernel::Config kernel_config;
  kernel_config.sched.migration_rate_hz = 25.0;
  simkernel::SimKernel kernel(cpumodel::raptor_lake_i7_13700(),
                              kernel_config);
  papi::SimBackend backend(&kernel);

  // An unpinned, phase-changing workload: compute bursts with memory
  // phases in between.
  auto program = std::make_shared<workload::WorkQueueProgram>();
  const simkernel::Tid tid = kernel.spawn(
      program, simkernel::CpuSet::all(kernel.machine().num_cpus()));
  for (int i = 0; i < 40; ++i) {
    workload::PhaseSpec compute;
    compute.flops_per_instr = 2.0;
    program->enqueue(compute, 400'000'000);
    program->enqueue(workload::phases::memory_bound(), 100'000'000);
  }
  program->finish();
  backend.set_default_target(tid);

  auto lib = papi::Library::init(&backend);
  if (!lib) {
    std::fprintf(stderr, "init: %s\n", lib.status().to_string().c_str());
    return 1;
  }
  const int set = *(*lib)->create_eventset();
  (void)(*lib)->add_event(set, "PAPI_TOT_INS");

  // One histogram bucket per 100 ms of simulated time.
  struct Bucket {
    std::uint64_t p = 0;
    std::uint64_t e = 0;
  };
  std::vector<Bucket> histogram;
  const auto bucket_for = [&](double seconds) -> Bucket& {
    const auto index = static_cast<std::size_t>(seconds * 10.0);
    if (index >= histogram.size()) histogram.resize(index + 1);
    return histogram[index];
  };

  const Status installed = (*lib)->set_overflow(
      set, 0, 5'000'000,  // one sample every 5M retired instructions
      [&](const papi::Library::OverflowEvent& event) {
        Bucket& bucket = bucket_for(kernel.now().seconds());
        if (event.native_name.rfind("adl_glc", 0) == 0) {
          bucket.p += event.periods;
        } else {
          bucket.e += event.periods;
        }
      });
  if (!installed.is_ok()) {
    std::fprintf(stderr, "set_overflow: %s\n", installed.to_string().c_str());
    return 1;
  }

  (void)(*lib)->start(set);
  kernel.run_until_idle(std::chrono::seconds(120));
  const auto values = (*lib)->stop(set);

  std::printf("sampling profile: one sample per 5M instructions\n");
  std::printf("%-8s %-28s %-28s\n", "t (s)", "P-core samples", "E-core samples");
  std::uint64_t total_p = 0;
  std::uint64_t total_e = 0;
  for (std::size_t i = 0; i < histogram.size(); ++i) {
    const Bucket& bucket = histogram[i];
    total_p += bucket.p;
    total_e += bucket.e;
    std::string p_bar(static_cast<std::size_t>(bucket.p), '#');
    std::string e_bar(static_cast<std::size_t>(bucket.e), '*');
    std::printf("%-8.1f %-28s %-28s\n", static_cast<double>(i) / 10.0,
                p_bar.c_str(), e_bar.c_str());
  }
  std::printf(
      "\ntotals: %llu P samples, %llu E samples; counted instructions "
      "%lld (expected samples %lld)\n",
      static_cast<unsigned long long>(total_p),
      static_cast<unsigned long long>(total_e), (*values)[0],
      (*values)[0] / 5'000'000);
  return 0;
}
