// mon_hpl: the paper's monitoring workflow as a CLI.
//
//   monitor_hpl [--machine raptorlake|orangepi] [--variant openblas|intel]
//               [--cores <cpulist>] [--n <size>] [--runs <count>]
//               [--events <comma-list>]    (PAPI events read per sample)
//               [--per-core-type yes]      (split each sampled event into
//                                           its per-core-PMU constituents)
//               [--regions yes]            (LIKWID-style markers: bracket
//                                           the run and the master worker's
//                                           factor/update items, print a
//                                           per-region counter table)
//               [--rdpmc yes]              (serve counter reads through the
//                                           userspace rdpmc read plan
//                                           instead of read(2))
//               [--fault-profile <name>]   (chaos mode: inject faults into
//                                           the measurement backend; names
//                                           from papi::FaultProfile)
//               [--fault-seed <n>]         (seed for the fault schedule —
//                                           same seed, same faults)
//               [--out <dir>]    (write per-run and averaged CSVs, the
//                                 raw-data layout of the paper's artifact)
//
// Runs HPL under 1 Hz telemetry (frequency / temperature / RAPL power /
// wall power), waits for thermal settle between repetitions, averages
// the runs, and prints the aggregated time series plus a summary — the
// T1 (mon_hpl.py) -> T2 (process_runs.py) pipeline of the artifact.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "base/cli.hpp"
#include "base/strings.hpp"
#include "cpumodel/machine.hpp"
#include "papi/fault_injection.hpp"
#include "simkernel/kernel.hpp"
#include "telemetry/monitor.hpp"
#include "workload/hpl.hpp"

using namespace hetpapi;

int main(int argc, char** argv) {
  std::string machine_name = "raptorlake";
  std::string variant = "openblas";
  std::string cores;
  std::string out_dir;
  std::string events;
  std::string fault_profile = "none";
  long long fault_seed = 0;
  bool per_core_type = false;
  bool regions = false;
  bool rdpmc = false;
  int n = 0;
  int runs = 3;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string_view flag = argv[i];
    const char* value = argv[i + 1];
    if (flag == "--machine") machine_name = value;
    else if (flag == "--variant") variant = value;
    else if (flag == "--cores") cores = value;
    else if (flag == "--n") {
      n = static_cast<int>(cli::require_positive_int(flag, value));
    }
    else if (flag == "--runs") {
      runs = static_cast<int>(cli::require_positive_int(flag, value));
    }
    else if (flag == "--out") out_dir = value;
    else if (flag == "--events") events = value;
    else if (flag == "--per-core-type")
      per_core_type = std::string_view(value) == "yes";
    else if (flag == "--regions") regions = std::string_view(value) == "yes";
    else if (flag == "--rdpmc") rdpmc = std::string_view(value) == "yes";
    else if (flag == "--fault-profile") fault_profile = value;
    else if (flag == "--fault-seed") fault_seed = cli::require_int(flag, value);
  }
  if (fault_profile != "none" && !papi::FaultProfile::named(fault_profile)) {
    std::string known;
    for (const std::string& name : papi::FaultProfile::profile_names()) {
      known += known.empty() ? name : ", " + name;
    }
    std::fprintf(stderr, "unknown --fault-profile '%s' (known: %s)\n",
                 fault_profile.c_str(), known.c_str());
    return 1;
  }

  const cpumodel::MachineSpec machine = machine_name == "orangepi"
                                            ? cpumodel::orangepi800_rk3399()
                                            : cpumodel::raptor_lake_i7_13700();
  if (n == 0) n = machine_name == "orangepi" ? 10240 : 30720;
  const int nb = machine_name == "orangepi" ? 128 : 192;
  const workload::HplConfig hpl = variant == "intel"
                                      ? workload::HplConfig::intel(n, nb)
                                      : workload::HplConfig::openblas(n, nb);

  std::vector<int> cpus;
  if (!cores.empty()) {
    const auto parsed = parse_cpulist(cores);
    if (!parsed) {
      std::fprintf(stderr, "bad --cores list: %s\n", cores.c_str());
      return 1;
    }
    cpus = *parsed;
  } else {
    for (const auto& slot : machine.cpus) cpus.push_back(slot.cpu);
    if (machine_name != "orangepi") {
      // Default to the paper's one-thread-per-core list.
      cpus = machine.primary_threads_of_type(0);
      const auto e = machine.cpus_of_type(1);
      cpus.insert(cpus.end(), e.begin(), e.end());
    }
  }

  std::printf("machine=%s variant=%s N=%d NB=%d cores=%s runs=%d\n",
              machine.name.c_str(), variant.c_str(), n, nb,
              format_cpulist(cpus).c_str(), runs);

  simkernel::SimKernel::Config config;
  config.tick = std::chrono::milliseconds(1);
  simkernel::SimKernel kernel(machine, config);
  telemetry::MonitorConfig monitor;
  if (!events.empty()) {
    for (const std::string_view event : split(events, ',')) {
      monitor.sample_events.emplace_back(trim(event));
    }
    monitor.per_core_type_counters = per_core_type;
  }
  monitor.fault_profile = fault_profile;
  monitor.fault_seed = static_cast<std::uint64_t>(fault_seed);
  monitor.use_rdpmc = rdpmc;
  if (regions && monitor.sample_events.empty()) {
    std::fprintf(stderr,
                 "--regions needs --events (the regions accumulate the "
                 "sampled counters)\n");
    return 1;
  }
  monitor.mark_hpl_phases = regions;

  // CSV writer shared by per-run and averaged outputs (one row per
  // sample: t, per-cpu MHz, temp, rapl W, wall W, then one column per
  // sampled PAPI event — each followed by its per-core-PMU constituent
  // columns when --per-core-type is on).
  const auto write_csv = [&](const std::string& path,
                             const telemetry::RunResult& result) {
    std::ofstream out(path);
    out << "t_s";
    for (int cpu = 0; cpu < machine.num_cpus(); ++cpu) {
      out << ",cpu" << cpu << "_mhz";
    }
    out << ",temp_c,rapl_w,wall_w";
    for (std::size_t e = 0; e < result.counter_names.size(); ++e) {
      out << "," << result.counter_names[e];
      if (e < result.counter_part_names.size()) {
        for (const std::string& part : result.counter_part_names[e]) {
          out << "," << part;
        }
      }
    }
    out << "\n";
    for (const telemetry::Sample& sample : result.samples) {
      out << sample.t_seconds;
      for (const double mhz : sample.core_freq_mhz) out << "," << mhz;
      out << "," << sample.package_temp_c << "," << sample.package_power_w
          << "," << sample.board_power_w;
      for (std::size_t e = 0; e < sample.counters.size(); ++e) {
        out << "," << sample.counters[e];
        if (e < sample.counter_parts.size()) {
          for (const double part : sample.counter_parts[e]) {
            out << "," << part;
          }
        }
      }
      out << "\n";
    }
  };
  if (!out_dir.empty()) std::filesystem::create_directories(out_dir);

  std::vector<telemetry::RunResult> results;
  for (int run = 0; run < runs; ++run) {
    results.push_back(telemetry::run_monitored_hpl(kernel, hpl, cpus, monitor));
    std::printf("run %d: %.1f s, %.2f Gflops\n", run + 1,
                std::chrono::duration<double>(results.back().elapsed).count(),
                results.back().gflops);
    if (fault_profile != "none") {
      const telemetry::RunHealth& h = results.back().health;
      std::printf(
          "  health: ticks=%llu failed=%llu degraded=%llu dropped=%zu"
          "%s faults=%llu leaked_fds=%zu\n",
          static_cast<unsigned long long>(h.ticks_attempted),
          static_cast<unsigned long long>(h.ticks_failed),
          static_cast<unsigned long long>(h.ticks_degraded),
          h.counters_dropped, h.sampling_abandoned ? " ABANDONED" : "",
          static_cast<unsigned long long>(h.faults_injected), h.leaked_fds);
    }
    if (!out_dir.empty()) {
      write_csv(out_dir + "/run" + std::to_string(run + 1) + ".csv",
                results.back());
    }
  }
  const telemetry::RunResult avg = telemetry::average_runs(results);
  if (!out_dir.empty()) {
    write_csv(out_dir + "/averaged.csv", avg);
    std::printf("raw data written to %s/run*.csv and %s/averaged.csv\n",
                out_dir.c_str(), out_dir.c_str());
  }

  std::printf("\n# averaged series: t  freq_cpu0(MHz)  temp(C)  rapl(W)  wall(W)\n");
  for (const telemetry::Sample& sample : avg.samples) {
    std::printf("%7.1f %8.0f %7.1f %7.1f %7.1f\n", sample.t_seconds,
                sample.core_freq_mhz.empty() ? 0.0 : sample.core_freq_mhz[0],
                sample.package_temp_c, sample.package_power_w,
                sample.board_power_w);
  }
  if (regions && !avg.regions.empty()) {
    std::printf("\n# regions (averaged over %d runs)\n", runs);
    std::printf("%-10s %10s %12s", "region", "entries", "time_s");
    for (const std::string& name : avg.counter_names) {
      std::printf(" %20s", name.c_str());
    }
    std::printf("\n");
    for (const telemetry::RegionReport& region : avg.regions) {
      std::printf("%-10s %10llu %12.3f", region.name.c_str(),
                  static_cast<unsigned long long>(region.entries),
                  region.time_s);
      for (const long long total : region.totals) {
        std::printf(" %20lld", total);
      }
      std::printf("\n");
    }
  }

  std::printf("\naverage over %d runs: %.2f Gflops\n", runs, avg.gflops);
  return 0;
}
