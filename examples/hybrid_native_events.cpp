// Per-core-type measurement with native events — the §IV-E workflow.
//
// Builds one EventSet holding the equivalent INST_RETIRED and cycles
// events from *both* core PMUs (the paper's adl_glc/adl_grt example),
// measures a migrating workload, and reports how much ran where plus the
// per-type IPC. Also demonstrates the legacy failure: with hybrid
// support disabled, adding the second PMU's event returns PAPI_ECNFLCT.
#include <cstdio>

#include "cpumodel/machine.hpp"
#include "papi/library.hpp"
#include "papi/sim_backend.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

using namespace hetpapi;

int main() {
  simkernel::SimKernel::Config kernel_config;
  kernel_config.sched.migration_rate_hz = 40.0;
  simkernel::SimKernel kernel(cpumodel::raptor_lake_i7_13700(),
                              kernel_config);
  workload::PhaseSpec phase;
  const simkernel::Tid tid = kernel.spawn(
      std::make_shared<workload::FixedWorkProgram>(phase, 3'000'000'000ULL),
      simkernel::CpuSet::all(kernel.machine().num_cpus()));

  papi::SimBackend backend(&kernel);
  backend.set_default_target(tid);

  // --- the legacy behaviour, for contrast -----------------------------------
  {
    papi::LibraryConfig legacy;
    legacy.hybrid_support = false;
    auto lib = papi::Library::init(&backend, legacy);
    const int set = *(*lib)->create_eventset();
    (void)(*lib)->add_event(set, "adl_glc::INST_RETIRED:ANY");
    const Status conflict = (*lib)->add_event(set, "adl_grt::INST_RETIRED:ANY");
    std::printf("legacy PAPI adding the E-core event: %s\n\n",
                conflict.to_string().c_str());
  }

  // --- the patched behaviour --------------------------------------------------
  auto lib = papi::Library::init(&backend);
  if (!lib) {
    std::fprintf(stderr, "init failed: %s\n", lib.status().to_string().c_str());
    return 1;
  }
  const int set = *(*lib)->create_eventset();
  const char* events[] = {
      "adl_glc::INST_RETIRED:ANY",
      "adl_grt::INST_RETIRED:ANY",
      "adl_glc::CPU_CLK_UNHALTED:THREAD",
      "adl_grt::CPU_CLK_UNHALTED:THREAD",
  };
  for (const char* event : events) {
    const Status added = (*lib)->add_event(set, event);
    if (!added.is_ok()) {
      std::fprintf(stderr, "add %s: %s\n", event, added.to_string().c_str());
      return 1;
    }
  }
  std::printf("one EventSet, %d perf groups (one per PMU type)\n",
              *(*lib)->eventset_group_count(set));

  (void)(*lib)->start(set);
  kernel.run_until_idle(std::chrono::seconds(30));
  const auto values = (*lib)->stop(set);

  const long long p_instr = (*values)[0];
  const long long e_instr = (*values)[1];
  const long long p_cycles = (*values)[2];
  const long long e_cycles = (*values)[3];
  std::printf("\nP-core: %12lld instructions %12lld cycles  (IPC %.2f)\n",
              p_instr, p_cycles,
              p_cycles > 0 ? static_cast<double>(p_instr) / static_cast<double>(p_cycles) : 0.0);
  std::printf("E-core: %12lld instructions %12lld cycles  (IPC %.2f)\n",
              e_instr, e_cycles,
              e_cycles > 0 ? static_cast<double>(e_instr) / static_cast<double>(e_cycles) : 0.0);
  std::printf("total : %12lld instructions (%.1f%% on P cores)\n",
              p_instr + e_instr,
              100.0 * static_cast<double>(p_instr) /
                  static_cast<double>(p_instr + e_instr));
  return 0;
}
