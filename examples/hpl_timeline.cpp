// Export a chrome://tracing timeline of an all-core HPL run.
//
// Shows each worker's occupancy per cpu row (P cores vs E cores), which
// makes the hybrid-unaware variant's barrier gaps visually obvious next
// to the dynamic variant's dense packing. Open the output JSON in
// chrome://tracing or https://ui.perfetto.dev.
//
//   hpl_timeline [openblas|intel] [output.json]
#include <cstdio>
#include <fstream>
#include <map>
#include <string>

#include "base/strings.hpp"
#include "cpumodel/machine.hpp"
#include "simkernel/kernel.hpp"
#include "simkernel/trace.hpp"
#include "workload/hpl.hpp"

using namespace hetpapi;

int main(int argc, char** argv) {
  const std::string variant = argc > 1 ? argv[1] : "openblas";
  const std::string output =
      argc > 2 ? argv[2] : "hpl_timeline_" + variant + ".json";

  const auto machine = cpumodel::raptor_lake_i7_13700();
  simkernel::SimKernel::Config config;
  config.tick = std::chrono::milliseconds(1);
  simkernel::SimKernel kernel(machine, config);
  simkernel::TraceRecorder recorder;
  kernel.attach_tracer(&recorder);

  const int n = 9216;  // a short run keeps the trace readable
  const auto hpl_config = variant == "intel"
                              ? workload::HplConfig::intel(n, 192)
                              : workload::HplConfig::openblas(n, 192);
  std::vector<int> cpus = machine.primary_threads_of_type(0);
  const auto e_cpus = machine.cpus_of_type(1);
  cpus.insert(cpus.end(), e_cpus.begin(), e_cpus.end());

  workload::HplSimulation hpl(hpl_config, static_cast<int>(cpus.size()));
  for (std::size_t i = 0; i < cpus.size(); ++i) {
    const auto tid = kernel.spawn(hpl.make_worker(static_cast<int>(i)),
                                  simkernel::CpuSet::of({cpus[i]}));
    recorder.set_thread_name(
        tid, str_format("hpl-worker-%zu%s", i, i == 0 ? " (master)" : ""));
  }
  kernel.run_until_idle(std::chrono::seconds(600));
  kernel.attach_tracer(nullptr);

  std::map<int, std::string> labels;
  for (int cpu = 0; cpu < machine.num_cpus(); ++cpu) {
    labels[cpu] = machine.type_of(cpu).name + " cpu" + std::to_string(cpu);
  }
  std::ofstream out(output);
  out << recorder.to_chrome_json(labels);
  out.close();

  std::printf(
      "%s HPL N=%d: %.2f s simulated, %.1f Gflops; %zu scheduling "
      "segments written to %s\n",
      variant.c_str(), n, kernel.now().seconds(),
      hpl.gflops(kernel.now() - SimTime{}).value, recorder.segment_count(),
      output.c_str());
  std::printf("open in chrome://tracing or ui.perfetto.dev\n");
  return 0;
}
