// Quickstart: caliper a region of (simulated) code with preset events on
// a hybrid machine.
//
// This is the core PAPI workflow the paper defends — PAPI_start()/
// PAPI_stop() around an arbitrary chunk of code — working transparently
// on a heterogeneous CPU: the presets expand to one native event per
// core PMU and the results sum across whichever cores the code actually
// ran on.
#include <cstdio>

#include "cpumodel/machine.hpp"
#include "papi/library.hpp"
#include "papi/sim_backend.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

using namespace hetpapi;

int main() {
  // 1. A hybrid machine (8 P + 8 E Raptor Lake model) and a thread that
  //    is free to migrate between core types, like any normal process.
  simkernel::SimKernel::Config kernel_config;
  kernel_config.sched.migration_rate_hz = 30.0;
  simkernel::SimKernel kernel(cpumodel::raptor_lake_i7_13700(),
                              kernel_config);
  auto program = std::make_shared<workload::WorkQueueProgram>();
  const simkernel::Tid tid = kernel.spawn(
      program, simkernel::CpuSet::all(kernel.machine().num_cpus()));

  // 2. Initialize the library and build an EventSet out of presets. On
  //    this machine each preset silently becomes a derived sum over the
  //    P-core and E-core PMUs.
  papi::SimBackend backend(&kernel);
  backend.set_default_target(tid);
  auto lib = papi::Library::init(&backend);
  if (!lib) {
    std::fprintf(stderr, "init failed: %s\n", lib.status().to_string().c_str());
    return 1;
  }
  const int set = *(*lib)->create_eventset();
  for (const char* preset : {"PAPI_TOT_INS", "PAPI_TOT_CYC", "PAPI_L3_TCM",
                             "PAPI_DP_OPS"}) {
    const Status added = (*lib)->add_event(set, preset);
    if (!added.is_ok()) {
      std::fprintf(stderr, "add %s: %s\n", preset, added.to_string().c_str());
      return 1;
    }
  }

  std::printf("machine: %s (hybrid: %s)\n",
              (*lib)->hardware_info().model_string.c_str(),
              (*lib)->hardware_info().hybrid ? "yes" : "no");
  const auto info = (*lib)->eventset_info(set);
  for (const papi::EventInfo& event : *info) {
    std::printf("  %-13s <-", event.display_name.c_str());
    for (const std::string& native : event.native_names) {
      std::printf(" %s", native.c_str());
    }
    std::printf("\n");
  }

  // 3. Caliper the region: start, run the "kernel" (a memory-heavy
  //    compute loop), stop.
  (void)(*lib)->start(set);
  workload::PhaseSpec phase;
  phase.flops_per_instr = 2.0;
  phase.llc_refs_per_kinstr = 12.0;
  phase.llc_miss_ratio = 0.35;
  program->enqueue(phase, 500'000'000);  // ~0.5 G instructions of work
  while (!program->idle()) kernel.run_for(std::chrono::milliseconds(1));
  const auto values = (*lib)->stop(set);
  program->finish();

  // 4. Report.
  std::printf("\nmeasured over the calipered region:\n");
  const char* names[] = {"instructions", "cycles", "L3 misses", "DP flops"};
  for (std::size_t i = 0; i < values->size(); ++i) {
    std::printf("  %-13s %12lld\n", names[i], (*values)[i]);
  }
  std::printf("\nthe region migrated freely between P and E cores; the\n"
              "derived presets summed both PMUs behind the scenes.\n");
  return 0;
}
