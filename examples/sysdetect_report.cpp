// Heterogeneity detection report across every supported machine model,
// plus — when the environment allows it — the real host this binary is
// running on. Shows which rung of the §IV-B detection ladder fired on
// each system, what the sysdetect component reports, and the component
// registry each backend ends up with (papi_component_avail's listing).
#include <cstdio>

#include "cpumodel/machine.hpp"
#include "linuxkernel/linux_backend.hpp"
#include "papi/library.hpp"
#include "papi/sim_backend.hpp"
#include "papi/sysdetect.hpp"
#include "pfm/sim_host.hpp"
#include "simkernel/kernel.hpp"

using namespace hetpapi;

namespace {

void report_machine(const cpumodel::MachineSpec& spec) {
  simkernel::SimKernel kernel(spec);
  papi::SimBackend backend(&kernel);
  std::printf("================ %s ================\n", spec.name.c_str());
  auto lib = papi::Library::init(&backend);
  if (!lib) {
    std::printf("library init failed: %s\n\n",
                lib.status().to_string().c_str());
    return;
  }
  const auto report = papi::build_sysdetect_report(
      backend.host(), (*lib)->pfm(), (*lib)->registry());
  std::printf("%s\n", report.to_text().c_str());
}

}  // namespace

int main() {
  for (const std::string& name : cpumodel::machine_preset_names()) {
    const auto machine = cpumodel::machine_preset_by_name(name);
    if (machine.has_value()) report_machine(*machine);
  }

  // The real host: detection runs against the live /sys and /proc. On a
  // PMU-less VM the pfm scan may only find the software PMU — that too
  // is a faithful report.
  std::printf("================ real host ================\n");
  linuxkernel::LinuxBackend backend;
  auto lib = papi::Library::init(&backend);
  if (!lib) {
    std::printf("library init on the real host: %s\n",
                lib.status().to_string().c_str());
    const auto detection = papi::detect_core_types(backend.host());
    std::printf("core-type detection alone: %s, %zu type(s)\n",
                std::string(papi::to_string(detection.method)).c_str(),
                detection.core_types.size());
    return 0;
  }
  const auto report = papi::build_sysdetect_report(
      backend.host(), (*lib)->pfm(), (*lib)->registry());
  std::printf("%s", report.to_text().c_str());
  return 0;
}
