// Counter-service quickstart: three clients share one daemon, and the
// two that subscribe to the same spec coalesce onto a single
// server-side EventSet — the daemon does one backend read per tick for
// them, not two. The third client uses a plain session (open/add/
// start/read), the library-style workflow over the wire.
//
// Everything runs in-process over the loopback transport so the
// example is deterministic; swap `transport->connect()` for
// `service::unix_connect(path)` (and hand the daemon a
// `service::unix_listen(path)` listener) to serve real processes.
#include <cstdio>
#include <memory>

#include "cpumodel/machine.hpp"
#include "papi/sim_backend.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/transport.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

using namespace hetpapi;
using service::Client;
using service::TargetKind;

int main() {
  // One simulated hybrid machine with a measured workload thread.
  simkernel::SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  papi::SimBackend backend(&kernel);
  const simkernel::Tid tid = kernel.spawn(
      std::make_shared<workload::FixedWorkProgram>(workload::PhaseSpec{},
                                                   4'000'000'000ull),
      simkernel::CpuSet::of({0}));
  // A second measured thread for the stat session: PAPI permits one
  // running EventSet per (component, thread), so the stat session
  // cannot share `tid` with the monitors' EventSet — only identical
  // subscription specs coalesce.
  const simkernel::Tid stat_tid = kernel.spawn(
      std::make_shared<workload::FixedWorkProgram>(workload::PhaseSpec{},
                                                   4'000'000'000ull),
      simkernel::CpuSet::of({2}));

  // The daemon owns the papi::Library; clients only speak the wire.
  service::LoopbackTransport transport;
  service::Daemon daemon(&kernel, &backend, service::DaemonConfig{});
  if (const Status s = daemon.init(); !s.is_ok()) {
    std::fprintf(stderr, "daemon init: %s\n", s.to_string().c_str());
    return 1;
  }
  daemon.add_listener(transport.listener());
  transport.set_pump([&daemon] { daemon.poll(); });

  // Two monitors ask for the same thing (different spellings, same
  // canonical spec) — the SubscribeAck's shared_key_id shows they ride
  // one shared EventSet.
  Client monitor_a(transport.connect());
  Client monitor_b(transport.connect());
  if (!monitor_a.hello("monitor-a").is_ok() ||
      !monitor_b.hello("monitor-b").is_ok()) {
    std::fprintf(stderr, "handshake failed\n");
    return 1;
  }
  service::Subscribe spec;
  spec.target_kind = TargetKind::kThread;
  spec.target = tid;
  spec.events = {"PAPI_TOT_INS", "PAPI_TOT_CYC"};
  auto ack_a = monitor_a.subscribe(spec);
  spec.events = {"papi_tot_ins", "papi_tot_cyc"};  // same after canonicalization
  auto ack_b = monitor_b.subscribe(spec);
  if (!ack_a.has_value() || !ack_b.has_value()) {
    std::fprintf(stderr, "subscribe failed\n");
    return 1;
  }
  std::printf("monitor-a rides shared key %u, monitor-b rides %u (%s)\n",
              ack_a->shared_key_id, ack_b->shared_key_id,
              ack_a->shared_key_id == ack_b->shared_key_id
                  ? "coalesced onto one EventSet"
                  : "distinct EventSets");

  // A classic stat-style session next to the stream.
  Client stat(transport.connect());
  if (!stat.hello("stat").is_ok()) {
    std::fprintf(stderr, "handshake failed\n");
    return 1;
  }
  auto session = stat.open_session(TargetKind::kThread, stat_tid);
  if (session.has_value()) {
    if (!stat.add_events(*session, {"PAPI_TOT_INS"}).has_value() ||
        !stat.start(*session).is_ok()) {
      std::fprintf(stderr, "stat session setup failed\n");
      session = make_error(StatusCode::kNotRunning, "session setup failed");
    }
  }

  // Five sampling ticks: both monitors see identical per-tick values.
  for (int t = 0; t < 5; ++t) {
    kernel.run_for(std::chrono::milliseconds(10));
    daemon.tick();
    const auto samples_a = monitor_a.take_samples();
    const auto samples_b = monitor_b.take_samples();
    if (!samples_a.empty() && !samples_b.empty()) {
      std::printf("tick %llu: a sees INS=%lld, b sees INS=%lld\n",
                  static_cast<unsigned long long>(samples_a.back().tick),
                  samples_a.back().values[0], samples_b.back().values[0]);
    }
  }

  if (session.has_value()) {
    auto reading = stat.read(*session);
    if (reading.has_value()) {
      std::printf("stat session total INS: %lld\n", reading->values[0]);
    }
  }

  // The receipts: reads scaled with distinct subscriptions (2: the
  // shared monitor spec + the stat session's on-demand read), not with
  // the three clients.
  const service::DaemonStats& stats = daemon.stats();
  std::printf("daemon served %zu clients with %llu backend reads over "
              "%llu ticks (%llu samples delivered)\n",
              daemon.client_count(),
              static_cast<unsigned long long>(stats.backend_reads),
              static_cast<unsigned long long>(stats.ticks),
              static_cast<unsigned long long>(stats.samples_delivered));

  static_cast<void>(monitor_a.close());
  static_cast<void>(monitor_b.close());
  static_cast<void>(stat.close());
  daemon.shutdown();
  return 0;
}
