// Preset (generic) events — PAPI_TOT_INS and friends.
//
// A preset names a hardware-independent quantity; the library resolves
// it to whatever native event provides that quantity on each PMU. On a
// hybrid machine a preset becomes a *derived* event: one native event
// per core PMU, transparently summed at read time (§V-2), so users need
// not care which core types exist.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "pfm/event_db.hpp"
#include "simkernel/perf_abi.hpp"

namespace hetpapi::papi {

struct PresetDef {
  std::string name;  // "PAPI_TOT_INS"
  simkernel::CountKind kind;
  std::string description;
};

const std::vector<PresetDef>& preset_table();
const PresetDef* find_preset(std::string_view name);

/// Find a native event string ("EVENT" or "EVENT:UMASK", no pmu prefix)
/// providing `kind` on the given PMU table; nullopt when the PMU cannot
/// measure the quantity (e.g. topdown on the E-core table).
std::optional<std::string> native_for_kind(const pfm::PmuTable& table,
                                           simkernel::CountKind kind);

/// How presets behave on hybrid machines.
enum class PresetPolicy {
  /// Pre-patch behaviour: presets error out on hybrid machines (no sane
  /// single answer exists).
  kErrorOnHybrid,
  /// Resolve on the default (P) PMU only — undercounts migrated work.
  kDefaultPmuOnly,
  /// One native event per core PMU, values summed: the §V-2 design.
  kDerivedSum,
};

}  // namespace hetpapi::papi
