// User-definable preset tables — the role of PAPI_events.csv.
//
// §V-2 of the paper: presets were historically keyed by CPU
// family/model, which collapses on hybrid parts where the P and E cores
// share one family/model but need *different* native events; "the code
// that parses the PAPI_events.csv file will have to be modified to be
// aware of the existence of E and P core availability so it can
// properly pick which combination of events to use."
//
// This parser keys definitions by PMU instead of family/model. Format
// (comma-separated, '#' comments):
//
//   CPU,adl_glc                       # section: the P-core PMU
//   PRESET,PAPI_TOT_INS,NATIVE,INST_RETIRED:ANY
//   PRESET,PAPI_GOOD_BR,DERIVED_SUB,BR_INST_RETIRED:ALL_BRANCHES,BR_MISP_RETIRED:ALL_BRANCHES
//   CPU,adl_grt                       # section: the E-core PMU
//   PRESET,PAPI_TOT_INS,NATIVE,INST_RETIRED:ANY
//   ...
//
// On a hybrid machine the library resolves a custom preset by taking
// the definition from *every* active core PMU's section and summing
// across them (the §V-2 derived-add); a preset missing from any
// section is unavailable, because a partial sum would silently
// undercount migrated work.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "base/status.hpp"

namespace hetpapi::papi {

struct CustomPresetDef {
  enum class Op {
    kNative,      // single event
    kDerivedAdd,  // sum of the listed events
    kDerivedSub,  // first minus the rest
  };
  std::string name;  // "PAPI_..."
  Op op = Op::kNative;
  /// Native event names *within the section's PMU* (no pmu:: prefix).
  std::vector<std::string> events;
};

struct PresetDefinitionFile {
  /// Section PMU name (pfm name, e.g. "adl_glc") -> its definitions.
  std::map<std::string, std::vector<CustomPresetDef>> sections;

  /// All preset names defined anywhere in the file.
  std::vector<std::string> preset_names() const;

  const CustomPresetDef* find(const std::string& pmu,
                              std::string_view preset) const;
};

/// Parse the csv text; fails with line-precise messages on bad input.
Expected<PresetDefinitionFile> parse_preset_definitions(std::string_view text);

}  // namespace hetpapi::papi
