// The EventSet core: everything an EventSet is, with every counter
// operation dispatched through the component registry instead of
// hard-coded perf calls. The core knows *which* component serves each
// native event and in what order to fan start/stop/read across them; it
// never knows *how* a component measures. The Library facade resolves
// names (presets, custom presets, native encodings) and delegates here.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/fixed_vector.hpp"
#include "base/status.hpp"
#include "papi/component.hpp"
#include "papi/config.hpp"

namespace hetpapi::papi {

class EventSetCore {
 public:
  EventSetCore(int id, Backend* backend, const pfm::PfmLibrary* pfm,
               const LibraryConfig* config, const ComponentRegistry* registry,
               ComponentLocks* locks)
      : id_(id),
        backend_(backend),
        pfm_(pfm),
        config_(config),
        registry_(registry),
        locks_(locks),
        target_(backend->default_target()) {}

  EventSetCore(const EventSetCore&) = delete;
  EventSetCore& operator=(const EventSetCore&) = delete;

  int id() const { return id_; }
  bool running() const { return state_ == SetState::kRunning; }
  bool has_natives() const { return !natives_.empty(); }
  /// True when any user event opened on only a subset of its
  /// constituent PMUs (LibraryConfig::degrade_partial_presets): plain
  /// read() values for those slots are partial sums.
  bool degraded() const;

  /// Bind to a thread. Existing events transparently re-open.
  Status attach(Tid tid);
  /// Bind to a logical cpu (validated by the caller against hwinfo).
  Status attach_cpu(int cpu);

  /// Add one user-visible event backed by `constituents` (encoding,
  /// sign) pairs, all-or-nothing: any constituent failing to open rolls
  /// the whole addition back.
  Status add_user_event(std::string_view display_name, bool is_preset,
                        const std::vector<std::pair<pfm::Encoding, int>>&
                            constituents);

  /// Drop an event by display name (case-insensitive); survivors keep
  /// their order and are re-opened.
  Status remove_event(std::string_view name);

  Status set_multiplex();
  /// Arm PAPI_overflow-style sampling on one user event. Transactional:
  /// if any constituent refuses to re-open with the sampling
  /// configuration, the set is restored to its previous (counting)
  /// layout and periods — arming never empties a working set. Only a
  /// failure of the restoration itself falls back to the empty state.
  Status set_overflow(int user_event_index, std::uint64_t threshold,
                      OverflowCallback callback);

  /// Drain every sampling slot's mmap ring into `batch` (append-only),
  /// fanning across the components in use. Components without a
  /// sampling surface are skipped. kInvalidArgument when no event of
  /// this set is in overflow mode.
  Status drain_samples(SampleBatch& batch);

  Status start();
  Expected<std::vector<long long>> stop();
  Expected<std::vector<long long>> read() const;
  /// Allocation-free read(): folds the current counts into `out`
  /// (resized to one slot per user event; steady-state callers reuse the
  /// buffer's capacity, so the hot path never allocates). The marker API
  /// and the low-tens-of-ns read target are built on this.
  Status read_into(std::vector<long long>& out) const;
  /// Allocation-free read_qualified(): updates `out` in place when its
  /// shape matches the set's layout (sizes and part names are verified
  /// and repaired per call); reshapes — and then allocates — only when
  /// the layout actually changed.
  Status read_qualified_into(std::vector<QualifiedReading>& out) const;
  /// Resolver from PMU name to detected core-type label, installed by
  /// the Library facade so read_qualified_into can label parts without a
  /// round trip through the facade.
  void set_core_type_resolver(
      std::function<std::string(std::string_view)> resolver) {
    core_type_resolver_ = std::move(resolver);
  }
  /// read() plus per-slot degradation tags, collected tolerantly: a
  /// counter that cannot deliver (dead fd, retry budget exhausted)
  /// degrades its slot to a partial sum instead of failing the call.
  /// The strict read() surfaces the same situation as an error.
  Expected<Reading> read_checked() const;
  /// PAPI_read_qualified: one reading per user event carrying the raw
  /// per-constituent (per-PMU) values alongside the derived total. The
  /// totals are computed from the same collection as read(), so a
  /// qualified read never disagrees with the transparent sum. Core-type
  /// labels are filled in by the Library facade, which owns the
  /// detection result.
  Expected<std::vector<QualifiedReading>> read_qualified() const;
  Status accum(std::vector<long long>& values);
  Status reset();

  Expected<std::vector<EventInfo>> info() const;

  /// Kernel groups across every component in use — the unit the
  /// per-call overhead model charges.
  int group_count() const;

  /// Close every slot of every component and drop the component states.
  /// Safe to call repeatedly; used by destroy and the Library dtor.
  Status close_everything();

 private:
  struct NativeSlot {
    pfm::Encoding enc;
    Component* component = nullptr;
    /// Sampling period when this slot is in overflow mode (0 = counting).
    std::uint64_t sample_period = 0;
    /// Which user event this slot belongs to.
    int user_event_index = -1;
  };

  /// A constituent that failed to open under graceful degradation:
  /// remembered so read_qualified() can report it with its validity bit
  /// cleared instead of silently narrowing the breakdown.
  struct MissingConstituent {
    pfm::Encoding enc;
    int sign = 1;
    std::string error;  // why the open failed, for reporting
  };

  struct UserEvent {
    std::string display_name;
    bool is_preset = false;
    FixedVector<int, 2 * kMaxPmuGroups> native_indices;
    /// +1 / -1 weight per constituent (DERIVED_SUB presets subtract).
    FixedVector<int, 2 * kMaxPmuGroups> native_signs;
    /// Constituents that refused to open (degrade_partial_presets);
    /// non-empty implies the event's values are partial sums.
    std::vector<MissingConstituent> missing;
  };

  /// One component with open slots on behalf of this EventSet, in
  /// first-use order — the order start/stop/read fan out in.
  struct ComponentUse {
    Component* component = nullptr;
    std::unique_ptr<ComponentState> state;
  };

  enum class SetState { kStopped, kRunning };

  MeasureTarget target() const { return {target_, target_cpu_, multiplexed_}; }

  /// The use record for `component`, created on first touch.
  ComponentUse& use_for(Component* component);

  /// Resolve + open one native event (grouping rules applied by the
  /// component). On failure the set is unchanged.
  Status add_native(const pfm::Encoding& enc, int sign, UserEvent& user);

  /// Ask the owning component to open native slot `native_idx`.
  Status open_slot(std::size_t native_idx);

  Status reopen_all();

  /// Open every native slot in order. On failure every fd is closed
  /// (leak-free) but the slot/user-event layout is preserved, so the
  /// caller can amend the layout and try again — the building block of
  /// transactional set_overflow.
  Status try_open_slots();

  /// Undo a partially applied multi-native add: drop every native slot
  /// beyond `natives_before`, close everything and rebuild survivors.
  Status rollback_natives(std::size_t natives_before);

  /// Re-open every surviving native slot; if any refuses, tear the set
  /// down to empty (consistent, zero leaked fds) rather than leave a
  /// half-open layout that would read stale values.
  Status reopen_slots_or_empty();

  Expected<std::vector<long long>> collect() const;
  /// Tolerant collection: per-native validity recorded in
  /// valid_scratch_, failed slots contribute 0 (see Component::read).
  Status collect_checked() const;
  /// Fan the component reads into native_scratch_ (strict; the shared
  /// first half of collect() and read_into()).
  Status collect_natives() const;
  /// Fold native_scratch_ into per-user-event sums, reusing `out`.
  void fold_user_events(std::vector<long long>& out) const;
  /// Charge the per-call overhead model for one read-shaped call.
  void charge_read_overhead() const;

  int id_;
  Backend* backend_;
  const pfm::PfmLibrary* pfm_;
  const LibraryConfig* config_;
  const ComponentRegistry* registry_;
  ComponentLocks* locks_;

  SetState state_ = SetState::kStopped;
  /// group_count() snapshotted at start(): the layout is frozen while
  /// running, and the per-call overhead charge sits on the read hot
  /// path where re-summing the components would cost virtual dispatch.
  std::uint64_t running_group_count_ = 0;
  Tid target_ = simkernel::kInvalidTid;
  /// >= 0: cpu-scoped measurement (target_ is ignored).
  int target_cpu_ = -1;
  bool multiplexed_ = false;
  OverflowCallback overflow_callback_;

  FixedVector<NativeSlot, kMaxEventSetEvents> natives_;
  std::vector<UserEvent> user_events_;
  std::vector<ComponentUse> uses_;

  /// Per-native value scratch for collect() (mutable: read is logically
  /// const).
  mutable std::vector<double> native_scratch_;
  /// Per-native validity scratch for the tolerant collection paths.
  mutable std::vector<std::uint8_t> valid_scratch_;
  std::function<std::string(std::string_view)> core_type_resolver_;
};

}  // namespace hetpapi::papi
