#include "papi/component.hpp"

namespace hetpapi::papi {

std::string_view to_string(ComponentScope scope) {
  switch (scope) {
    case ComponentScope::kThread: return "thread";
    case ComponentScope::kPackage: return "package";
  }
  return "unknown";
}

Status ComponentRegistry::register_component(
    std::unique_ptr<Component> component) {
  if (component == nullptr) {
    return make_error(StatusCode::kInvalidArgument, "null component");
  }
  for (const auto& existing : components_) {
    if (existing->name() == component->name()) {
      return make_error(StatusCode::kConflict,
                        "component " + std::string(component->name()) +
                            " is already registered");
    }
  }
  components_.push_back(std::move(component));
  return Status::ok();
}

Component* ComponentRegistry::find(std::string_view name) const {
  for (const auto& component : components_) {
    if (component->name() == name) return component.get();
  }
  return nullptr;
}

Component* ComponentRegistry::component_for(const pfm::ActivePmu& pmu) const {
  for (const auto& component : components_) {
    if (component->serves(pmu)) return component.get();
  }
  return nullptr;
}

Status ComponentLocks::check(const Component& component,
                             const MeasureTarget& target, int eventset) const {
  const auto it = held_.find({&component, scope_key(component, target)});
  if (it != held_.end() && it->second != eventset) {
    return make_error(StatusCode::kConflict,
                      std::string("component ") +
                          std::string(component.name()) +
                          " already has a running EventSet (" +
                          std::to_string(it->second) + ")");
  }
  return Status::ok();
}

void ComponentLocks::acquire(const Component& component,
                             const MeasureTarget& target, int eventset) {
  held_[{&component, scope_key(component, target)}] = eventset;
}

void ComponentLocks::release(const Component& component,
                             const MeasureTarget& target) {
  held_.erase({&component, scope_key(component, target)});
}

}  // namespace hetpapi::papi
