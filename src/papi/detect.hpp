// Heterogeneous core detection (§IV-B).
//
// Linux has no standard interface for "what core types exist", so the
// library walks a ladder of strategies, each of which works on some
// machines and fails on others:
//   1. /sys/devices/system/cpu/cpuX/cpu_capacity   (ARM arch_topology)
//   2. CPUID leaf 0x1A core-type byte              (Intel hybrid only)
//   3. per-PMU "cpus" files under /sys/devices     (hybrid kernels)
//   4. cpuinfo_max_freq grouping                   (last-resort heuristic)
// Every strategy is exposed individually so tests can defeat each one
// and confirm the ladder degrades the way the paper describes.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.hpp"
#include "pfm/host.hpp"

namespace hetpapi::papi {

/// One detected core type.
struct DetectedCoreType {
  std::string label;       // "cpu_core", "capacity-1024", "freq-5100000", ...
  std::vector<int> cpus;   // logical cpus of this type
  /// Raw discriminator value (capacity, cpuid byte, max freq kHz) —
  /// whatever the winning strategy used.
  std::int64_t discriminator = 0;
};

enum class DetectionMethod {
  kCpuCapacity,
  kCpuidHybridLeaf,
  /// CPUID groups split along per-PMU "cpus" boundaries: leaf 0x1A
  /// cannot tell apart two core types that share a core-kind byte (an
  /// E-core and a low-power-island E-core both read 0x20), but when the
  /// kernel exports more core PMUs than CPUID found groups — each PMU's
  /// cpu list nesting cleanly inside one CPUID group — the PMU topology
  /// refines the CPUID answer.
  kCpuidPmuRefined,
  kPmuCpusFiles,
  kMaxFrequency,
  kHomogeneousFallback,
};

std::string_view to_string(DetectionMethod method);

struct DetectionResult {
  DetectionMethod method = DetectionMethod::kHomogeneousFallback;
  std::vector<DetectedCoreType> core_types;  // size 1 = homogeneous

  bool hybrid() const { return core_types.size() > 1; }
};

/// Individual strategies. Each returns nullopt when its data source is
/// absent or uninformative (one group found counts as informative for
/// capacity/cpuid; the frequency heuristic also accepts one group).
std::optional<std::vector<DetectedCoreType>> detect_by_cpu_capacity(
    const pfm::Host& host);
std::optional<std::vector<DetectedCoreType>> detect_by_cpuid(
    const pfm::Host& host);
std::optional<std::vector<DetectedCoreType>> detect_by_pmu_cpus(
    const pfm::Host& host);
std::optional<std::vector<DetectedCoreType>> detect_by_max_freq(
    const pfm::Host& host);

/// Split `cpuid_types` along per-PMU "cpus" boundaries (see
/// DetectionMethod::kCpuidPmuRefined). Returns nullopt when the PMU
/// strategy is unavailable, finds no extra groups, or its groups
/// straddle a CPUID boundary (contradictory data — trust CPUID).
std::optional<std::vector<DetectedCoreType>> refine_cpuid_with_pmu_topology(
    const pfm::Host& host, const std::vector<DetectedCoreType>& cpuid_types);

/// Label for a CPUID leaf 0x1A core-kind discriminator. Known kinds map
/// through a vendor-aware table ("intel" + 0x40 -> "intel_core");
/// unknown discriminators get a deterministic "<vendor>_kind_0xNN"
/// label instead of a silently generic one.
std::string core_kind_label(std::string_view vendor_prefix,
                            std::int64_t discriminator);

/// Label for a core-sibling PMU sysfs name ("cpu_core" -> "intel_core",
/// "cpu_lowpower" -> "intel_lowpower", ...); unknown names label as
/// themselves.
std::string pmu_sysfs_label(std::string_view sysfs_name);

/// The full ladder.
DetectionResult detect_core_types(const pfm::Host& host);

/// Hardware summary reported via the PAPI_get_hardware_info-equivalent.
struct HardwareInfo {
  std::string model_string;
  int total_cpus = 0;
  bool hybrid = false;
  DetectionResult detection;
};

Expected<HardwareInfo> get_hardware_info(const pfm::Host& host);

/// Label of the detected core type that serves a core PMU covering
/// `pmu_cpus` — the type with the largest cpu overlap (§V-2's
/// per-core-type reporting needs the PMU -> core-type join). An empty
/// cpu list means "all cpus" and resolves only on homogeneous machines;
/// returns "" when nothing matches.
std::string core_type_label(const DetectionResult& detection,
                            const std::vector<int>& pmu_cpus);

}  // namespace hetpapi::papi
