// The measurement library: a modern-C++ rendition of PAPI with the
// heterogeneous support this paper adds.
//
// Key behaviours, each switchable to its pre-patch form for baselines:
//  * EventSets accept events from multiple PMUs; the perf_event
//    component splits them into one perf event group per PMU type and
//    fans every start/stop/read/reset across the groups (§IV-E). With
//    hybrid_support=false an EventSet is pinned to its first PMU and a
//    second PMU draws PAPI_ECNFLCT — the legacy behaviour whose failure
//    the paper demonstrates.
//  * Preset events (PAPI_TOT_INS, ...) resolve per PMU; on hybrid
//    machines they become derived sums across core PMUs (§V-2).
//  * The RAPL and uncore PMUs either live in their own components
//    (legacy) or join combined EventSets (§V-3, unified_uncore).
//  * Group bookkeeping uses statically allocated arrays, matching the
//    implementation choice the paper describes (and letting the
//    overhead bench quantify it).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/fixed_vector.hpp"
#include "base/status.hpp"
#include "papi/backend.hpp"
#include "papi/detect.hpp"
#include "papi/preset_defs.hpp"
#include "papi/presets.hpp"
#include "pfm/pfmlib.hpp"

namespace hetpapi::papi {

/// Compile-time capacities for the static bookkeeping arrays.
inline constexpr std::size_t kMaxEventSetEvents = 64;
inline constexpr std::size_t kMaxPmuGroups = 8;

enum class Component { kPerfEvent, kRapl, kUncore };
std::string_view to_string(Component component);

struct LibraryConfig {
  /// The paper's contribution on/off switch.
  bool hybrid_support = true;
  /// §V-3: fold uncore events into ordinary EventSets instead of the
  /// historical separate component.
  bool unified_uncore = true;
  PresetPolicy preset_policy = PresetPolicy::kDerivedSum;
  pfm::PfmLibrary::Config pfm{};
  /// Instructions charged to the measured thread per start/stop/read
  /// call, per perf group touched (models caliper overhead; §V-5).
  std::uint64_t call_overhead_instructions = 900;
  /// Return multiplex-scaled estimates instead of raw values when an
  /// EventSet is multiplexed.
  bool scale_multiplexed = true;
  /// Serve reads through the rdpmc fast path when the event is resident,
  /// falling back to read(2) (§V-5).
  bool use_rdpmc = false;
  /// Cache the per-EventSet group read fan-out (which leader fds to
  /// read, which native slot each returned value lands in) instead of
  /// re-deriving it on every read/stop/accum. Off reproduces the
  /// per-call recomputation cost the overhead bench quantifies.
  bool cache_read_plan = true;
};

/// Describes one value slot of an EventSet read.
struct EventInfo {
  std::string display_name;       // what the user added
  bool is_preset = false;
  std::vector<std::string> native_names;  // canonical constituent events
};

class Library {
 public:
  /// Initialize against a backend: scans PMUs (via the pfm layer), runs
  /// core-type detection, prepares preset resolution.
  static Expected<std::unique_ptr<Library>> init(Backend* backend,
                                                 LibraryConfig config);
  static Expected<std::unique_ptr<Library>> init(Backend* backend) {
    return init(backend, LibraryConfig{});
  }

  ~Library();
  Library(const Library&) = delete;
  Library& operator=(const Library&) = delete;

  // --- information ---------------------------------------------------------

  const HardwareInfo& hardware_info() const { return hwinfo_; }
  const pfm::PfmLibrary& pfm() const { return pfm_; }
  const LibraryConfig& config() const { return config_; }

  /// All native event names across active PMUs.
  std::vector<std::string> native_event_names() const;

  /// Presets measurable on this machine under the current policy.
  std::vector<std::string> available_presets() const;

  /// Load user preset definitions (the PAPI_events.csv role, keyed by
  /// PMU instead of family/model — §V-2). Loaded definitions take
  /// precedence over the built-in preset table. Replaces any previously
  /// loaded definitions.
  Status load_preset_definitions(std::string_view text);

  /// Names defined by the loaded definition file (empty if none).
  std::vector<std::string> custom_preset_names() const {
    return custom_presets_.preset_names();
  }

  // --- EventSet lifecycle ----------------------------------------------------

  Expected<int> create_eventset();
  Status destroy_eventset(int eventset);

  /// Bind the EventSet to a thread. Allowed while stopped; existing
  /// events are transparently re-opened on the new target.
  Status attach(int eventset, Tid tid);

  /// Bind the EventSet to a logical CPU instead of a thread
  /// (PAPI_attach with cpu granularity / `perf stat -C`): core events
  /// count everything executing on that cpu regardless of thread. Core
  /// events must come from the PMU that serves the cpu; adding a
  /// foreign core type's event fails the way the kernel does.
  Status attach_cpu(int eventset, int cpu);

  /// Add a native event ("adl_glc::INST_RETIRED:ANY", "INST_RETIRED")
  /// or a preset ("PAPI_TOT_INS").
  Status add_event(int eventset, std::string_view name);

  /// PAPI_remove_event: drop a previously added event (matched against
  /// its display name, case-insensitively). The set must be stopped; the
  /// surviving events keep their relative order and are transparently
  /// re-opened, so a subsequent read returns one value per remaining
  /// event.
  Status remove_event(int eventset, std::string_view name);

  /// Convert the EventSet to multiplexed operation: every event becomes
  /// its own group leader so the kernel can rotate freely (§IV-E's
  /// multiplexing caveat). Must be stopped.
  Status set_multiplex(int eventset);

  /// PAPI_overflow equivalent: install a sampling handler on one of the
  /// EventSet's user events. The set must be stopped; its constituent
  /// native events are re-opened in sampling mode with `threshold` as
  /// the period. On a hybrid machine a derived preset samples on every
  /// constituent PMU — the callback reports which native event fired, so
  /// callers can attribute samples per core type.
  struct OverflowEvent {
    int eventset = -1;
    int user_event_index = -1;
    std::string native_name;  // constituent that crossed the threshold
    std::uint64_t value = 0;
    std::uint64_t periods = 1;
  };
  using OverflowCallback = std::function<void(const OverflowEvent&)>;
  Status set_overflow(int eventset, int user_event_index,
                      std::uint64_t threshold, OverflowCallback callback);

  Status start(int eventset);
  /// Stop counting; returns the final values (one per added event, in
  /// add order).
  Expected<std::vector<long long>> stop(int eventset);
  Expected<std::vector<long long>> read(int eventset) const;
  /// PAPI_accum: add the current counts into `values` (which must have
  /// one slot per added event) and reset the counters — the idiom for
  /// accumulating across loop iterations without stop/start pairs.
  Status accum(int eventset, std::vector<long long>& values);
  Status reset(int eventset);

  /// PAPI_state equivalent.
  enum class SetStatePublic { kStopped, kRunning };
  Expected<SetStatePublic> state(int eventset) const;

  /// Value-slot descriptions, in add order.
  Expected<std::vector<EventInfo>> eventset_info(int eventset) const;

  /// Number of perf groups the EventSet currently holds (1 on legacy,
  /// one per PMU type with hybrid support) — exposed for tests and the
  /// overhead bench.
  Expected<int> eventset_group_count(int eventset) const;

  bool eventset_running(int eventset) const;

 private:
  Library(Backend* backend, LibraryConfig config);

  struct NativeSlot {
    pfm::Encoding enc;
    Component component = Component::kPerfEvent;
    int fd = -1;
    /// Sampling period when this slot is in overflow mode (0 = counting).
    std::uint64_t sample_period = 0;
    /// Which user event this slot belongs to.
    int user_event_index = -1;
  };

  struct PmuGroup {
    std::uint32_t perf_type = 0;
    Component component = Component::kPerfEvent;
    int leader_fd = -1;
    /// Indices into `natives`, in sibling order (leader first).
    FixedVector<int, kMaxEventSetEvents> members;
  };

  struct UserEvent {
    std::string display_name;
    bool is_preset = false;
    FixedVector<int, 2 * kMaxPmuGroups> native_indices;
    /// +1 / -1 weight per constituent (DERIVED_SUB presets subtract).
    FixedVector<int, 2 * kMaxPmuGroups> native_signs;
  };

  enum class SetState { kStopped, kRunning };

  /// One pre-resolved group read in collect()'s fan-out.
  struct ReadPlanEntry {
    int leader_fd = -1;
    /// Singleton group eligible for the rdpmc fast path.
    bool rdpmc_single = false;
    int single_fd = -1;
    std::size_t single_native = 0;
    /// Members (native slot indices) in sibling order, flattened into
    /// EventSet::plan_members.
    std::size_t member_begin = 0;
    std::size_t member_count = 0;
  };

  struct EventSet {
    int id = -1;
    SetState state = SetState::kStopped;
    Tid target = simkernel::kInvalidTid;
    /// >= 0: cpu-scoped measurement (target is ignored).
    int target_cpu = -1;
    bool multiplexed = false;
    OverflowCallback overflow_callback;
    FixedVector<NativeSlot, kMaxEventSetEvents> natives;
    /// One entry per PMU type normally; one per event when multiplexed
    /// (each event becomes its own group leader so the kernel can
    /// rotate), hence sized for the worst case.
    FixedVector<PmuGroup, kMaxEventSetEvents> groups;
    std::vector<UserEvent> user_events;
    /// Cached collect() fan-out + value scratch (mutable: collect() is
    /// logically const). Invalidated by any group-layout change
    /// (open_slot / close_all, hence add/remove/attach/multiplex).
    mutable bool read_plan_valid = false;
    mutable std::vector<ReadPlanEntry> read_plan;
    mutable std::vector<std::size_t> plan_members;
    mutable std::vector<double> native_scratch;
  };

  EventSet* find_set(int eventset);
  const EventSet* find_set(int eventset) const;

  Component component_for(const pfm::ActivePmu& pmu) const;

  /// Resolve + open one native event into the set (grouping rules
  /// applied). On failure the set is unchanged.
  Status add_native(EventSet& set, const pfm::Encoding& enc,
                    UserEvent& user, int sign = 1);

  /// Expand a custom (file-defined) preset into the set.
  Status add_custom_preset(EventSet& set, const CustomPresetDef& first_def,
                           std::string_view name);

  Status open_slot(EventSet& set, std::size_t native_idx);
  Status close_all(EventSet& set);
  Status reopen_all(EventSet& set);

  /// Undo a partially applied multi-native add: drop every native slot
  /// beyond `natives_before`, close all fds (the group bookkeeping may
  /// reference the dropped slots) and rebuild the survivors.
  Status rollback_natives(EventSet& set, std::size_t natives_before);

  /// (Re)build `set.read_plan` from the current group layout.
  void build_read_plan(const EventSet& set) const;

  Expected<std::vector<long long>> collect(const EventSet& set) const;

  Backend* backend_;
  LibraryConfig config_;
  pfm::PfmLibrary pfm_;
  PresetDefinitionFile custom_presets_;
  HardwareInfo hwinfo_;
  std::vector<std::unique_ptr<EventSet>> sets_;
  int next_set_id_ = 0;
  /// "PAPI only allows one EventSet to be active per component at a
  /// time" (per measured thread) — the constraint that defeats the
  /// two-EventSet workaround (§IV-E). Key: (component, target tid);
  /// value: the running EventSet id. Package-scope components (RAPL,
  /// legacy uncore) are genuinely global, keyed with kInvalidTid.
  std::map<std::pair<int, Tid>, int> running_sets_;

  /// The lock key an EventSet's use of `component` takes: per measured
  /// thread (or per attached cpu); package-scope components are global.
  static std::pair<int, Tid> component_key(Component component,
                                           const EventSet& set) {
    const bool package_scope = component != Component::kPerfEvent;
    Tid scope = set.target;
    if (set.target_cpu >= 0) scope = -1000 - set.target_cpu;
    if (package_scope) scope = simkernel::kInvalidTid;
    return {static_cast<int>(component), scope};
  }
};

}  // namespace hetpapi::papi
