// The measurement library: a modern-C++ rendition of PAPI with the
// heterogeneous support this paper adds.
//
// Library is a thin facade over the componentized core:
//  * Name resolution lives here — presets (PAPI_TOT_INS, ...) resolve
//    per PMU and become derived sums across core PMUs on hybrid
//    machines (§V-2), custom preset files take precedence, native names
//    encode through the pfm layer.
//  * Everything an EventSet *does* lives in EventSetCore
//    (papi/eventset.hpp), which dispatches through the component
//    registry (papi/component.hpp): core/software perf events, RAPL,
//    uncore and the sysinfo software component are peer components
//    registered at init (papi/components/). With hybrid_support=false
//    an EventSet is pinned to its first PMU and a second PMU draws
//    PAPI_ECNFLCT — the legacy behaviour whose failure the paper
//    demonstrates. Uncore PMUs are served by the perf_event component
//    outright, so their events fold into ordinary mixed EventSets
//    (§V-3; the historical exclusive uncore component is retired).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "base/status.hpp"
#include "papi/backend.hpp"
#include "papi/component.hpp"
#include "papi/config.hpp"
#include "papi/detect.hpp"
#include "papi/eventset.hpp"
#include "papi/preset_defs.hpp"
#include "papi/presets.hpp"
#include "pfm/pfmlib.hpp"

namespace hetpapi::papi {

class Library {
 public:
  /// Initialize against a backend: scans PMUs (via the pfm layer), runs
  /// core-type detection, registers the built-in components, prepares
  /// preset resolution.
  static Expected<std::unique_ptr<Library>> init(Backend* backend,
                                                 LibraryConfig config);
  static Expected<std::unique_ptr<Library>> init(Backend* backend) {
    return init(backend, LibraryConfig{});
  }

  ~Library();
  Library(const Library&) = delete;
  Library& operator=(const Library&) = delete;

  // --- information ---------------------------------------------------------

  const HardwareInfo& hardware_info() const { return hwinfo_; }
  const pfm::PfmLibrary& pfm() const { return pfm_; }
  const LibraryConfig& config() const { return config_; }

  /// The component table built at init — what papi_component_avail
  /// walks: perf_event (core + folded uncore), rapl, sysinfo.
  const ComponentRegistry& registry() const { return registry_; }

  /// All native event names across active PMUs.
  std::vector<std::string> native_event_names() const;

  /// Presets measurable on this machine under the current policy.
  std::vector<std::string> available_presets() const;

  /// Load user preset definitions (the PAPI_events.csv role, keyed by
  /// PMU instead of family/model — §V-2). Loaded definitions take
  /// precedence over the built-in preset table. Replaces any previously
  /// loaded definitions.
  Status load_preset_definitions(std::string_view text);

  /// Names defined by the loaded definition file (empty if none).
  std::vector<std::string> custom_preset_names() const {
    return custom_presets_.preset_names();
  }

  /// Canonical spelling of an event name without touching any EventSet:
  /// presets resolve to their table spelling ("papi_tot_ins" ->
  /// "PAPI_TOT_INS"), natives to the pfm canonical form
  /// ("INST_RETIRED" -> "adl_glc::INST_RETIRED:ANY"). The sharing hook
  /// the counter-service daemon keys shared subscriptions on — two
  /// clients spelling the same event differently must coalesce onto one
  /// server-side EventSet (src/service/daemon.cpp).
  Expected<std::string> canonical_event_name(std::string_view name) const;

  // --- EventSet lifecycle ----------------------------------------------------

  Expected<int> create_eventset();
  Status destroy_eventset(int eventset);
  /// Teardown-grade destroy for session reapers: stop is best-effort
  /// and the set is closed and erased even when the backend faults
  /// mid-stop (plain destroy_eventset refuses a running set, which
  /// would pin its fds forever behind an injected stop failure).
  Status force_destroy_eventset(int eventset);

  /// Bind the EventSet to a thread. Allowed while stopped; existing
  /// events are transparently re-opened on the new target.
  Status attach(int eventset, Tid tid);

  /// Bind the EventSet to a logical CPU instead of a thread
  /// (PAPI_attach with cpu granularity / `perf stat -C`): core events
  /// count everything executing on that cpu regardless of thread. Core
  /// events must come from the PMU that serves the cpu; adding a
  /// foreign core type's event fails the way the kernel does.
  Status attach_cpu(int eventset, int cpu);

  /// Add a native event ("adl_glc::INST_RETIRED:ANY", "INST_RETIRED")
  /// or a preset ("PAPI_TOT_INS").
  Status add_event(int eventset, std::string_view name);

  /// PAPI_remove_event: drop a previously added event (matched against
  /// its display name, case-insensitively). The set must be stopped; the
  /// surviving events keep their relative order and are transparently
  /// re-opened, so a subsequent read returns one value per remaining
  /// event.
  Status remove_event(int eventset, std::string_view name);

  /// Convert the EventSet to multiplexed operation: every event becomes
  /// its own group leader so the kernel can rotate freely (§IV-E's
  /// multiplexing caveat). Must be stopped; every component in the set
  /// must advertise the multiplex capability.
  Status set_multiplex(int eventset);

  /// PAPI_overflow equivalent: install a sampling handler on one of the
  /// EventSet's user events. The set must be stopped; its constituent
  /// native events are re-opened in sampling mode with `threshold` as
  /// the period. On a hybrid machine a derived preset samples on every
  /// constituent PMU — the callback reports which native event fired, so
  /// callers can attribute samples per core type.
  using OverflowEvent = ::hetpapi::papi::OverflowEvent;
  using OverflowCallback = ::hetpapi::papi::OverflowCallback;
  Status set_overflow(int eventset, int user_event_index,
                      std::uint64_t threshold, OverflowCallback callback);

  /// Drain the EventSet's sample rings: one safe pass over every
  /// sampling slot's mmap ring, decoding PERF_RECORD_SAMPLE records
  /// into typed samples labelled per core type (the core_type_for_pmu
  /// ladder), summing PERF_RECORD_LOST drops, and reporting the
  /// degradation counters (denied rings, stalled drains, dropped
  /// wakeups). Callable while running or after stop; each record is
  /// returned exactly once. kInvalidArgument when the set has no event
  /// in overflow mode.
  Expected<SampleBatch> read_samples(int eventset);

  Status start(int eventset);
  /// Stop counting; returns the final values (one per added event, in
  /// add order).
  Expected<std::vector<long long>> stop(int eventset);
  Expected<std::vector<long long>> read(int eventset) const;
  /// Allocation-free read(): folds the current counts into `out`
  /// (resized to one slot per event; steady-state callers reuse the
  /// buffer's capacity so the hot path never allocates). The marker API
  /// and the rdpmc read-latency target are built on this.
  Status read_into(int eventset, std::vector<long long>& out) const;
  /// Allocation-free read_qualified(): updates `out` in place when its
  /// shape still matches the set's layout; reshapes (and then
  /// allocates) only when the layout changed since the last call.
  Status read_qualified_into(int eventset,
                             std::vector<QualifiedReading>& out) const;
  /// read() plus degradation tags, collected tolerantly: one dead
  /// counter (stale fd, exhausted retry budget) degrades its slot to a
  /// partial sum with Reading::value_degraded[i] set, instead of
  /// failing the whole call the way the strict read() does. The
  /// resilience surface the telemetry sampler reads through.
  Expected<Reading> read_checked(int eventset) const;
  /// True when any event in the set opened on only a subset of its
  /// constituent PMUs (LibraryConfig::degrade_partial_presets) — plain
  /// read() values are partial sums for those slots.
  Expected<bool> eventset_degraded(int eventset) const;
  /// PAPI_read_qualified: like read(), but each value slot carries the
  /// per-PMU breakdown a derived preset was transparently summed from,
  /// with every constituent labelled by its detected core type (§V-2's
  /// per-core-type reporting). For non-derived events the breakdown is
  /// the single constituent; totals always equal what read() returns.
  Expected<std::vector<QualifiedReading>> read_qualified(int eventset) const;
  /// Detected core-type label serving `pmu_name` ("" when the PMU is not
  /// a core PMU or is unknown).
  std::string core_type_for_pmu(std::string_view pmu_name) const;
  /// PAPI_accum: add the current counts into `values` (which must have
  /// one slot per added event) and reset the counters — the idiom for
  /// accumulating across loop iterations without stop/start pairs.
  Status accum(int eventset, std::vector<long long>& values);
  Status reset(int eventset);

  /// PAPI_state equivalent.
  enum class SetStatePublic { kStopped, kRunning };
  Expected<SetStatePublic> state(int eventset) const;

  /// Value-slot descriptions, in add order.
  Expected<std::vector<EventInfo>> eventset_info(int eventset) const;

  /// Number of perf groups the EventSet currently holds (1 on legacy,
  /// one per PMU type with hybrid support) — exposed for tests and the
  /// overhead bench.
  Expected<int> eventset_group_count(int eventset) const;

  bool eventset_running(int eventset) const;

 private:
  Library(Backend* backend, LibraryConfig config);

  EventSetCore* find_set(int eventset);
  const EventSetCore* find_set(int eventset) const;

  /// Expand a custom (file-defined) preset into the set.
  Status add_custom_preset(EventSetCore& set, std::string_view name);

  Backend* backend_;
  LibraryConfig config_;
  pfm::PfmLibrary pfm_;
  PresetDefinitionFile custom_presets_;
  HardwareInfo hwinfo_;
  ComponentRegistry registry_;
  ComponentLocks locks_;
  std::vector<std::unique_ptr<EventSetCore>> sets_;
  int next_set_id_ = 0;
};

}  // namespace hetpapi::papi
