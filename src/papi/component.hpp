// The component abstraction: PAPI's framework/components split.
//
// The framework (EventSet core + Library facade) never touches a
// counter directly; every measurement domain — core/software perf
// events, RAPL energy, uncore, procfs/sysfs readings — is a Component
// registered at init time. The framework resolves each native event to
// the component serving its PMU and dispatches open/start/stop/read
// through this interface, so adding a measurement domain is a new file
// under src/papi/components/, not surgery on the core (§IV-E; the same
// layering real PAPI uses and papi_component_avail reports).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/status.hpp"
#include "papi/backend.hpp"
#include "papi/config.hpp"
#include "pfm/pfmlib.hpp"

namespace hetpapi::papi {

/// Lock granularity of a component's counters: per measured thread
/// (core PMUs) or package-global (RAPL, uncore — one reader at a time,
/// whatever thread or cpu the EventSet targets).
enum class ComponentScope { kThread, kPackage };
std::string_view to_string(ComponentScope scope);

/// Capability flags, reported like papi_component_avail's columns.
struct ComponentCaps {
  bool rdpmc = false;      // userspace fast-path reads
  bool overflow = false;   // sampling / PAPI_overflow
  bool multiplex = false;  // events can rotate
};

/// Everything a component needs from its surroundings. The pointers
/// outlive the registry (they belong to the Library that registered the
/// component).
struct ComponentEnv {
  Backend* backend = nullptr;
  const pfm::PfmLibrary* pfm = nullptr;
  const LibraryConfig* config = nullptr;
};

/// What an EventSet is bound to when a component opens or reads slots.
struct MeasureTarget {
  Tid tid = simkernel::kInvalidTid;
  /// >= 0: cpu-scoped measurement (tid is ignored).
  int cpu = -1;
  /// Every event becomes its own rotatable group.
  bool multiplexed = false;
};

/// One native event the EventSet asks a component to open.
struct SlotRequest {
  pfm::Encoding enc;
  /// Value slot this event fills in the EventSet-wide read vector.
  std::size_t global_index = 0;
  /// Sampling period when in overflow mode (0 = counting).
  std::uint64_t sample_period = 0;
  int eventset_id = -1;
  int user_event_index = -1;
  /// Non-null when sampling: stable pointer into the owning EventSet.
  const OverflowCallback* overflow = nullptr;
};

/// Per-EventSet state a component keeps (its slots, fds, groups, read
/// plans). Owned by the EventSet, created via Component::create_state.
class ComponentState {
 public:
  virtual ~ComponentState() = default;
};

class Component {
 public:
  virtual ~Component() = default;

  virtual std::string_view name() const = 0;
  virtual ComponentScope scope() const = 0;
  virtual ComponentCaps caps() const = 0;

  /// True when this component hosts events of `pmu`. The registry asks
  /// components in registration order; first yes wins.
  virtual bool serves(const pfm::ActivePmu& pmu) const = 0;

  virtual std::unique_ptr<ComponentState> create_state() const = 0;

  /// Open one native event. On failure the state is unchanged.
  virtual Status open_slot(ComponentState& state, const SlotRequest& request,
                           const MeasureTarget& target) = 0;

  /// Close every slot and clear the state back to empty; returns the
  /// first close error but keeps going.
  virtual Status close_all(ComponentState& state) = 0;

  virtual Status start(ComponentState& state) = 0;
  virtual Status stop(ComponentState& state) = 0;
  virtual Status reset(ComponentState& state) = 0;

  /// Read every open slot into values[slot.global_index]. `scale`
  /// requests multiplex-scaled estimates where supported.
  ///
  /// `valid` selects the failure policy. nullptr (the strict, default
  /// path behind read()/stop()/accum()) fails the whole call when any
  /// slot cannot deliver. Non-null (the tolerant path behind
  /// read_checked()/read_qualified()) must be sized like `values`; a
  /// slot whose counter cannot deliver — dead fd, retry budget
  /// exhausted — gets its entry cleared to 0 and a 0.0 value while the
  /// remaining slots still report, so one dead counter degrades one
  /// slot instead of aborting the collection.
  virtual Status read(const ComponentState& state, bool scale,
                      std::vector<double>& values,
                      std::vector<std::uint8_t>* valid = nullptr) const = 0;

  /// Kernel-level groups currently held — the unit of per-call overhead
  /// accounting and of eventset_group_count().
  virtual int group_count(const ComponentState& state) const = 0;

  /// Drain every sampling slot's mmap ring into `batch` (append-only:
  /// callers may fan one batch across components). Components without a
  /// sampling surface report kNotSupported; the EventSet skips them.
  virtual Status drain_samples(ComponentState& state, SampleBatch& batch) {
    (void)state;
    (void)batch;
    return make_error(StatusCode::kNotSupported,
                      "component has no sampling rings");
  }
};

/// The component table built at Library::init — the registry
/// papi_component_avail walks.
class ComponentRegistry {
 public:
  /// Rejects duplicate names (kConflict).
  Status register_component(std::unique_ptr<Component> component);

  /// nullptr when no component of that name is registered.
  Component* find(std::string_view name) const;

  /// The component serving a PMU (first registered that claims it);
  /// nullptr when none does.
  Component* component_for(const pfm::ActivePmu& pmu) const;

  const std::vector<std::unique_ptr<Component>>& components() const {
    return components_;
  }

 private:
  std::vector<std::unique_ptr<Component>> components_;
};

/// "PAPI only allows one EventSet to be active per component at a time"
/// (per measured thread) — the constraint that defeats the two-EventSet
/// workaround (§IV-E). Keyed by (component, scope): per-thread
/// components lock their target tid (or attached cpu); package-scope
/// components are genuinely global.
class ComponentLocks {
 public:
  /// The scope key `component` takes for an EventSet bound to `target`.
  static Tid scope_key(const Component& component,
                       const MeasureTarget& target) {
    if (component.scope() == ComponentScope::kPackage) {
      return simkernel::kInvalidTid;
    }
    if (target.cpu >= 0) return -1000 - target.cpu;
    return target.tid;
  }

  /// kConflict when another EventSet already holds the lock.
  Status check(const Component& component, const MeasureTarget& target,
               int eventset) const;
  void acquire(const Component& component, const MeasureTarget& target,
               int eventset);
  void release(const Component& component, const MeasureTarget& target);

 private:
  std::map<std::pair<const Component*, Tid>, int> held_;
};

}  // namespace hetpapi::papi
