#include "papi/preset_defs.hpp"

#include <algorithm>

#include "base/strings.hpp"

namespace hetpapi::papi {

std::vector<std::string> PresetDefinitionFile::preset_names() const {
  std::vector<std::string> names;
  for (const auto& [pmu, defs] : sections) {
    for (const CustomPresetDef& def : defs) {
      if (std::find(names.begin(), names.end(), def.name) == names.end()) {
        names.push_back(def.name);
      }
    }
  }
  return names;
}

const CustomPresetDef* PresetDefinitionFile::find(
    const std::string& pmu, std::string_view preset) const {
  const auto it = sections.find(pmu);
  if (it == sections.end()) return nullptr;
  for (const CustomPresetDef& def : it->second) {
    if (iequals(def.name, preset)) return &def;
  }
  return nullptr;
}

Expected<PresetDefinitionFile> parse_preset_definitions(
    std::string_view text) {
  PresetDefinitionFile file;
  std::string current_section;
  int line_number = 0;
  for (std::string_view raw_line : split(text, '\n')) {
    ++line_number;
    // Strip comments and whitespace.
    const std::size_t hash = raw_line.find('#');
    const std::string_view line =
        trim(hash == std::string_view::npos ? raw_line
                                            : raw_line.substr(0, hash));
    if (line.empty()) continue;

    std::vector<std::string_view> fields = split(line, ',');
    for (std::string_view& field : fields) field = trim(field);

    const auto error = [&](const std::string& what) {
      return make_error(StatusCode::kInvalidArgument,
                        "preset definitions line " +
                            std::to_string(line_number) + ": " + what);
    };

    if (iequals(fields[0], "CPU")) {
      if (fields.size() != 2 || fields[1].empty()) {
        return error("CPU section needs exactly one PMU name");
      }
      current_section = std::string(fields[1]);
      file.sections[current_section];  // register even if empty
      continue;
    }
    if (iequals(fields[0], "PRESET")) {
      if (current_section.empty()) {
        return error("PRESET before any CPU section");
      }
      if (fields.size() < 4) {
        return error("PRESET needs name, derivation and >=1 event");
      }
      CustomPresetDef def;
      def.name = std::string(fields[1]);
      if (!starts_with(def.name, "PAPI_")) {
        return error("preset names must start with PAPI_");
      }
      const std::string_view op = fields[2];
      if (iequals(op, "NATIVE")) {
        def.op = CustomPresetDef::Op::kNative;
        if (fields.size() != 4) return error("NATIVE takes exactly one event");
      } else if (iequals(op, "DERIVED_ADD")) {
        def.op = CustomPresetDef::Op::kDerivedAdd;
      } else if (iequals(op, "DERIVED_SUB")) {
        def.op = CustomPresetDef::Op::kDerivedSub;
        if (fields.size() < 5) return error("DERIVED_SUB needs >=2 events");
      } else {
        return error("unknown derivation '" + std::string(op) + "'");
      }
      for (std::size_t i = 3; i < fields.size(); ++i) {
        if (fields[i].empty()) return error("empty event name");
        if (fields[i].find("::") != std::string_view::npos) {
          return error(
              "event names are PMU-relative; the CPU section supplies the "
              "PMU");
        }
        def.events.emplace_back(fields[i]);
      }
      // Reject duplicate definitions within one section.
      for (const CustomPresetDef& existing :
           file.sections[current_section]) {
        if (iequals(existing.name, def.name)) {
          return error("duplicate definition of " + def.name + " in " +
                       current_section);
        }
      }
      file.sections[current_section].push_back(std::move(def));
      continue;
    }
    return error("unknown record type '" + std::string(fields[0]) + "'");
  }
  return file;
}

}  // namespace hetpapi::papi
