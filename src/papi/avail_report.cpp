#include "papi/avail_report.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "base/strings.hpp"
#include "base/table.hpp"

namespace hetpapi::papi {

namespace {

/// "adl_glc[intel_core]" on hybrid machines, bare PMU name when no core
/// type is attributable (non-core PMU, homogeneous fallback label).
std::string labelled_pmu(const Library& lib, const pfm::ActivePmu& pmu) {
  const std::string label = lib.core_type_for_pmu(pmu.table->pfm_name);
  if (label.empty()) return pmu.table->pfm_name;
  return pmu.table->pfm_name + "[" + label + "]";
}

}  // namespace

std::string render_avail_report(const Library& lib,
                                std::string_view machine_name,
                                std::string_view policy_name) {
  std::string out;
  out += str_format("Available PAPI preset events on %s (policy: %s)\n",
                    std::string(machine_name).c_str(),
                    std::string(policy_name).c_str());
  out += str_format("hybrid: %s; core PMUs:",
                    lib.hardware_info().hybrid ? "yes" : "no");
  for (const pfm::ActivePmu* pmu : lib.pfm().default_pmus()) {
    out += ' ';
    out += labelled_pmu(lib, *pmu);
  }
  out += "\n";

  // papi_component_avail's one-liner: which measurement components the
  // library registered against this backend.
  out += "components:";
  for (const auto& component : lib.registry().components()) {
    out += str_format(" %s(%s)", std::string(component->name()).c_str(),
                      std::string(to_string(component->scope())).c_str());
  }
  out += "\n\n";

  const auto available = lib.available_presets();
  const auto is_available = [&](const std::string& name) {
    return std::find(available.begin(), available.end(), name) !=
           available.end();
  };

  TextTable table({"preset", "avail", "description", "expands to"});
  for (const PresetDef& preset : preset_table()) {
    std::string expansion;
    for (const pfm::ActivePmu* pmu : lib.pfm().default_pmus()) {
      const auto native = native_for_kind(*pmu->table, preset.kind);
      if (!expansion.empty()) expansion += " + ";
      expansion += labelled_pmu(lib, *pmu) +
                   "::" + (native ? *native : std::string("<none>"));
    }
    table.add_row({preset.name, is_available(preset.name) ? "yes" : "no",
                   preset.description, expansion});
  }
  out += table.render();
  out += str_format("\n%zu of %zu presets available\n", available.size(),
                    preset_table().size());
  return out;
}

std::string render_native_avail_report(const pfm::PfmLibrary& pfmlib,
                                       std::string_view machine_name) {
  std::string out;
  out += str_format("Native events on %s\n",
                    std::string(machine_name).c_str());
  int total = 0;
  for (const pfm::ActivePmu& pmu : pfmlib.pmus()) {
    out += str_format("\n--- PMU %s (%s, perf type %u)%s ---\n",
                      pmu.table->pfm_name.c_str(), pmu.sysfs_name.c_str(),
                      pmu.perf_type, pmu.is_core ? " [core]" : "");
    for (const pfm::EventDesc& event : pmu.table->events) {
      if (event.umasks.empty()) {
        out += str_format("  %-46s %s\n",
                          (pmu.table->pfm_name + "::" + event.name).c_str(),
                          event.description.c_str());
        ++total;
        continue;
      }
      out += str_format("  %s::%s — %s\n", pmu.table->pfm_name.c_str(),
                        event.name.c_str(), event.description.c_str());
      for (const pfm::UmaskDesc& umask : event.umasks) {
        out += str_format("      :%-20s %s\n", umask.name.c_str(),
                          umask.description.c_str());
        ++total;
      }
    }
  }

  // Cross-PMU availability diff for the core PMUs (the §I-C asymmetry).
  const auto core_pmus = pfmlib.default_pmus();
  if (core_pmus.size() > 1) {
    std::map<std::string, std::vector<std::string>> by_event;
    for (const pfm::ActivePmu* pmu : core_pmus) {
      for (const pfm::EventDesc& event : pmu->table->events) {
        by_event[event.name].push_back(pmu->table->pfm_name);
      }
    }
    out += "\n--- events NOT available on every core type ---\n";
    bool any = false;
    for (const auto& [event, pmus] : by_event) {
      if (pmus.size() == core_pmus.size()) continue;
      any = true;
      out += str_format("  %-24s only on:", event.c_str());
      for (const std::string& pmu : pmus) out += " " + pmu;
      out += "\n";
    }
    if (!any) out += "  (none)\n";
  }
  out += str_format("\n%d native events total\n", total);
  return out;
}

}  // namespace hetpapi::papi
