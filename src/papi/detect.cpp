#include "papi/detect.hpp"

#include <algorithm>
#include <map>

#include "base/strings.hpp"

namespace hetpapi::papi {

std::string_view to_string(DetectionMethod method) {
  switch (method) {
    case DetectionMethod::kCpuCapacity: return "cpu_capacity";
    case DetectionMethod::kCpuidHybridLeaf: return "cpuid_leaf_1a";
    case DetectionMethod::kCpuidPmuRefined: return "cpuid_leaf_1a+pmu_cpus";
    case DetectionMethod::kPmuCpusFiles: return "pmu_cpus_files";
    case DetectionMethod::kMaxFrequency: return "cpuinfo_max_freq";
    case DetectionMethod::kHomogeneousFallback: return "homogeneous_fallback";
  }
  return "unknown";
}

namespace {

std::string cpu_path(int cpu, std::string_view attr) {
  return "/sys/devices/system/cpu/cpu" + std::to_string(cpu) +
         std::string(attr);
}

/// Group cpus by an integer attribute; nullopt if the attribute is
/// missing for any cpu.
template <typename Fn>
std::optional<std::vector<DetectedCoreType>> group_by(
    const pfm::Host& host, std::string_view label_prefix, Fn&& value_of) {
  std::map<std::int64_t, std::vector<int>> groups;
  for (int cpu = 0; cpu < host.num_cpus(); ++cpu) {
    const std::optional<std::int64_t> value = value_of(cpu);
    if (!value) return std::nullopt;
    groups[*value].push_back(cpu);
  }
  if (groups.empty()) return std::nullopt;
  std::vector<DetectedCoreType> out;
  // Highest discriminator first: capacity/frequency both rank the "big"
  // type highest, which keeps P/big cores at index 0 everywhere.
  for (auto it = groups.rbegin(); it != groups.rend(); ++it) {
    DetectedCoreType type;
    type.label = std::string(label_prefix) + "-" + std::to_string(it->first);
    type.discriminator = it->first;
    type.cpus = it->second;
    out.push_back(std::move(type));
  }
  return out;
}

/// Vendor prefix for discriminator labels, from /proc/cpuinfo. Only x86
/// machines reach the CPUID strategy today, but the label table is keyed
/// on vendor so another vendor's discriminator space can slot in without
/// touching the labelling logic.
std::string x86_vendor_prefix(const pfm::Host& host) {
  const auto cpuinfo = host.read_file("/proc/cpuinfo");
  if (cpuinfo) {
    for (std::string_view line : split(*cpuinfo, '\n')) {
      if (!starts_with(line, "vendor_id")) continue;
      if (line.find("GenuineIntel") != std::string_view::npos) return "intel";
      if (line.find("AuthenticAMD") != std::string_view::npos) return "amd";
      break;
    }
  }
  return "x86";
}

}  // namespace

std::string core_kind_label(std::string_view vendor_prefix,
                            std::int64_t discriminator) {
  struct KindLabel {
    std::string_view vendor;
    std::int64_t discriminator;
    std::string_view label;
  };
  // CPUID leaf 0x1A EAX[31:24] core kinds (SDM vol. 2A).
  static constexpr KindLabel kKnownKinds[] = {
      {"intel", 0x40, "intel_core"},
      {"intel", 0x20, "intel_atom"},
  };
  for (const KindLabel& known : kKnownKinds) {
    if (known.vendor == vendor_prefix && known.discriminator == discriminator) {
      return std::string(known.label);
    }
  }
  // Deterministic fallback: a future core kind still gets a stable,
  // greppable label rather than an empty or raw-number one.
  return std::string(vendor_prefix) +
         str_format("_kind_0x%02llx",
                    static_cast<unsigned long long>(discriminator));
}

std::string pmu_sysfs_label(std::string_view sysfs_name) {
  static constexpr std::pair<std::string_view, std::string_view> kPmuLabels[] =
      {
          {"cpu_core", "intel_core"},
          {"cpu_atom", "intel_atom"},
          {"cpu_lowpower", "intel_lowpower"},
      };
  for (const auto& [name, label] : kPmuLabels) {
    if (name == sysfs_name) return std::string(label);
  }
  return std::string(sysfs_name);
}

std::optional<std::vector<DetectedCoreType>> detect_by_cpu_capacity(
    const pfm::Host& host) {
  return group_by(host, "capacity", [&](int cpu) -> std::optional<std::int64_t> {
    const auto v = host.read_int(cpu_path(cpu, "/cpu_capacity"));
    if (!v) return std::nullopt;
    return *v;
  });
}

std::optional<std::vector<DetectedCoreType>> detect_by_cpuid(
    const pfm::Host& host) {
  auto result = group_by(host, "cpuid", [&](int cpu) -> std::optional<std::int64_t> {
    const auto kind = host.cpuid_core_kind(cpu);
    if (!kind) return std::nullopt;
    return static_cast<std::int64_t>(*kind);
  });
  // Leaf 0x1A reads as zero on pre-hybrid parts: a single all-zero group
  // means "no information", not "one core type".
  if (result && result->size() == 1 && result->front().discriminator == 0) {
    return std::nullopt;
  }
  if (result) {
    const std::string vendor = x86_vendor_prefix(host);
    for (DetectedCoreType& type : *result) {
      type.label = core_kind_label(vendor, type.discriminator);
    }
  }
  return result;
}

std::optional<std::vector<DetectedCoreType>> refine_cpuid_with_pmu_topology(
    const pfm::Host& host, const std::vector<DetectedCoreType>& cpuid_types) {
  const auto pmu_types = detect_by_pmu_cpus(host);
  // No refinement unless the (fully tiling) PMU strategy distinguishes
  // strictly more groups than CPUID did.
  if (!pmu_types || pmu_types->size() <= cpuid_types.size()) {
    return std::nullopt;
  }
  // Every PMU group must nest inside exactly one CPUID group; a PMU
  // whose cpus straddle a CPUID boundary contradicts the leaf and the
  // refinement is not trustworthy.
  const auto parent_of = [&](const DetectedCoreType& pmu)
      -> const DetectedCoreType* {
    for (const DetectedCoreType& parent : cpuid_types) {
      const bool all_inside = std::all_of(
          pmu.cpus.begin(), pmu.cpus.end(), [&](int cpu) {
            return std::find(parent.cpus.begin(), parent.cpus.end(), cpu) !=
                   parent.cpus.end();
          });
      if (all_inside) return &parent;
      const bool any_inside = std::any_of(
          pmu.cpus.begin(), pmu.cpus.end(), [&](int cpu) {
            return std::find(parent.cpus.begin(), parent.cpus.end(), cpu) !=
                   parent.cpus.end();
          });
      if (any_inside) return nullptr;  // straddles the boundary
    }
    return nullptr;
  };

  std::vector<DetectedCoreType> refined;
  for (const DetectedCoreType& parent : cpuid_types) {
    // Sub-groups keep the parent's CPUID discriminator and order by
    // first cpu, so e.g. the 0x20 group splits into E-cores before the
    // higher-numbered low-power island.
    std::vector<const DetectedCoreType*> children;
    for (const DetectedCoreType& pmu : *pmu_types) {
      const DetectedCoreType* p = parent_of(pmu);
      if (p == nullptr) return std::nullopt;
      if (p == &parent) children.push_back(&pmu);
    }
    if (children.empty()) return std::nullopt;  // PMUs missed a group
    std::sort(children.begin(), children.end(),
              [](const DetectedCoreType* a, const DetectedCoreType* b) {
                return a->cpus.front() < b->cpus.front();
              });
    for (const DetectedCoreType* child : children) {
      DetectedCoreType type;
      // The PMU sysfs name is the only thing that distinguishes the
      // sub-groups; its label table names them.
      type.label = pmu_sysfs_label(child->label);
      type.cpus = child->cpus;
      type.discriminator = parent.discriminator;
      refined.push_back(std::move(type));
    }
  }
  return refined;
}

std::optional<std::vector<DetectedCoreType>> detect_by_pmu_cpus(
    const pfm::Host& host) {
  const auto devices = host.list_dir("/sys/devices");
  if (!devices) return std::nullopt;
  std::vector<DetectedCoreType> out;
  std::vector<bool> covered(static_cast<std::size_t>(host.num_cpus()), false);
  for (const std::string& name : *devices) {
    const std::string dir = "/sys/devices/" + name;
    if (!host.read_int(dir + "/type").has_value()) continue;
    // Only the "cpus" file marks a core-sibling PMU; "cpumask" PMUs
    // (uncore, RAPL) describe package scope, not a core type.
    const auto cpus_value = host.read_value(dir + "/cpus");
    if (!cpus_value) continue;
    const auto cpus = parse_cpulist(*cpus_value);
    if (!cpus || cpus->empty()) continue;
    DetectedCoreType type;
    type.label = name;
    type.cpus = *cpus;
    type.discriminator = static_cast<std::int64_t>(out.size());
    for (int cpu : *cpus) {
      if (cpu >= 0 && cpu < host.num_cpus()) {
        covered[static_cast<std::size_t>(cpu)] = true;
      }
    }
    out.push_back(std::move(type));
  }
  if (out.empty()) return std::nullopt;
  // The strategy is only trustworthy when the PMUs tile every cpu.
  if (std::find(covered.begin(), covered.end(), false) != covered.end()) {
    return std::nullopt;
  }
  return out;
}

std::optional<std::vector<DetectedCoreType>> detect_by_max_freq(
    const pfm::Host& host) {
  return group_by(host, "freq", [&](int cpu) -> std::optional<std::int64_t> {
    const auto v = host.read_int(cpu_path(cpu, "/cpufreq/cpuinfo_max_freq"));
    if (!v) return std::nullopt;
    return *v;
  });
}

DetectionResult detect_core_types(const pfm::Host& host) {
  DetectionResult result;
  if (auto types = detect_by_cpu_capacity(host)) {
    result.method = DetectionMethod::kCpuCapacity;
    result.core_types = std::move(*types);
    return result;
  }
  if (auto types = detect_by_cpuid(host)) {
    // CPUID found groups, but core types sharing a core-kind byte (E and
    // LP-E both read 0x20) collapse into one; the PMU topology can split
    // them apart when it is strictly finer.
    if (auto refined = refine_cpuid_with_pmu_topology(host, *types)) {
      result.method = DetectionMethod::kCpuidPmuRefined;
      result.core_types = std::move(*refined);
      return result;
    }
    result.method = DetectionMethod::kCpuidHybridLeaf;
    result.core_types = std::move(*types);
    return result;
  }
  if (auto types = detect_by_pmu_cpus(host)) {
    if (types->size() > 1) {  // one "cpus"-bearing PMU proves nothing
      result.method = DetectionMethod::kPmuCpusFiles;
      result.core_types = std::move(*types);
      return result;
    }
  }
  if (auto types = detect_by_max_freq(host)) {
    if (types->size() > 1) {
      result.method = DetectionMethod::kMaxFrequency;
      result.core_types = std::move(*types);
      return result;
    }
  }
  // Homogeneous fallback: one type containing every cpu.
  DetectedCoreType only;
  only.label = "cpu";
  for (int cpu = 0; cpu < host.num_cpus(); ++cpu) only.cpus.push_back(cpu);
  result.method = DetectionMethod::kHomogeneousFallback;
  result.core_types = {std::move(only)};
  return result;
}

Expected<HardwareInfo> get_hardware_info(const pfm::Host& host) {
  HardwareInfo info;
  info.total_cpus = host.num_cpus();
  info.detection = detect_core_types(host);
  info.hybrid = info.detection.hybrid();

  // Model string from /proc/cpuinfo ("model name" on x86; ARM boards
  // often lack one, in which case implementer/part stand in).
  const auto cpuinfo = host.read_file("/proc/cpuinfo");
  if (cpuinfo) {
    for (std::string_view line : split(*cpuinfo, '\n')) {
      if (starts_with(line, "model name")) {
        const std::size_t colon = line.find(':');
        if (colon != std::string_view::npos) {
          info.model_string = std::string(trim(line.substr(colon + 1)));
          break;
        }
      }
    }
    if (info.model_string.empty()) {
      for (std::string_view line : split(*cpuinfo, '\n')) {
        if (starts_with(line, "CPU part")) {
          const std::size_t colon = line.find(':');
          if (colon != std::string_view::npos) {
            info.model_string =
                "ARM part " + std::string(trim(line.substr(colon + 1)));
            break;
          }
        }
      }
    }
  }
  return info;
}

std::string core_type_label(const DetectionResult& detection,
                            const std::vector<int>& pmu_cpus) {
  if (detection.core_types.empty()) return "";
  if (pmu_cpus.empty()) {
    // "All cpus" is only unambiguous when there is one type to name.
    return detection.core_types.size() == 1 ? detection.core_types[0].label
                                            : "";
  }
  const DetectedCoreType* best = nullptr;
  std::size_t best_overlap = 0;
  for (const DetectedCoreType& type : detection.core_types) {
    std::size_t overlap = 0;
    for (const int cpu : pmu_cpus) {
      for (const int type_cpu : type.cpus) {
        if (cpu == type_cpu) {
          ++overlap;
          break;
        }
      }
    }
    if (overlap > best_overlap) {
      best_overlap = overlap;
      best = &type;
    }
  }
  return best != nullptr ? best->label : "";
}

}  // namespace hetpapi::papi
