#include "papi/detect.hpp"

#include <algorithm>
#include <map>

#include "base/strings.hpp"

namespace hetpapi::papi {

std::string_view to_string(DetectionMethod method) {
  switch (method) {
    case DetectionMethod::kCpuCapacity: return "cpu_capacity";
    case DetectionMethod::kCpuidHybridLeaf: return "cpuid_leaf_1a";
    case DetectionMethod::kPmuCpusFiles: return "pmu_cpus_files";
    case DetectionMethod::kMaxFrequency: return "cpuinfo_max_freq";
    case DetectionMethod::kHomogeneousFallback: return "homogeneous_fallback";
  }
  return "unknown";
}

namespace {

std::string cpu_path(int cpu, std::string_view attr) {
  return "/sys/devices/system/cpu/cpu" + std::to_string(cpu) +
         std::string(attr);
}

/// Group cpus by an integer attribute; nullopt if the attribute is
/// missing for any cpu.
template <typename Fn>
std::optional<std::vector<DetectedCoreType>> group_by(
    const pfm::Host& host, std::string_view label_prefix, Fn&& value_of) {
  std::map<std::int64_t, std::vector<int>> groups;
  for (int cpu = 0; cpu < host.num_cpus(); ++cpu) {
    const std::optional<std::int64_t> value = value_of(cpu);
    if (!value) return std::nullopt;
    groups[*value].push_back(cpu);
  }
  if (groups.empty()) return std::nullopt;
  std::vector<DetectedCoreType> out;
  // Highest discriminator first: capacity/frequency both rank the "big"
  // type highest, which keeps P/big cores at index 0 everywhere.
  for (auto it = groups.rbegin(); it != groups.rend(); ++it) {
    DetectedCoreType type;
    type.label = std::string(label_prefix) + "-" + std::to_string(it->first);
    type.discriminator = it->first;
    type.cpus = it->second;
    out.push_back(std::move(type));
  }
  return out;
}

}  // namespace

std::optional<std::vector<DetectedCoreType>> detect_by_cpu_capacity(
    const pfm::Host& host) {
  return group_by(host, "capacity", [&](int cpu) -> std::optional<std::int64_t> {
    const auto v = host.read_int(cpu_path(cpu, "/cpu_capacity"));
    if (!v) return std::nullopt;
    return *v;
  });
}

std::optional<std::vector<DetectedCoreType>> detect_by_cpuid(
    const pfm::Host& host) {
  auto result = group_by(host, "cpuid", [&](int cpu) -> std::optional<std::int64_t> {
    const auto kind = host.cpuid_core_kind(cpu);
    if (!kind) return std::nullopt;
    return static_cast<std::int64_t>(*kind);
  });
  // Leaf 0x1A reads as zero on pre-hybrid parts: a single all-zero group
  // means "no information", not "one core type".
  if (result && result->size() == 1 && result->front().discriminator == 0) {
    return std::nullopt;
  }
  if (result) {
    for (DetectedCoreType& type : *result) {
      if (type.discriminator == 0x40) type.label = "intel_core";
      if (type.discriminator == 0x20) type.label = "intel_atom";
    }
  }
  return result;
}

std::optional<std::vector<DetectedCoreType>> detect_by_pmu_cpus(
    const pfm::Host& host) {
  const auto devices = host.list_dir("/sys/devices");
  if (!devices) return std::nullopt;
  std::vector<DetectedCoreType> out;
  std::vector<bool> covered(static_cast<std::size_t>(host.num_cpus()), false);
  for (const std::string& name : *devices) {
    const std::string dir = "/sys/devices/" + name;
    if (!host.read_int(dir + "/type").has_value()) continue;
    // Only the "cpus" file marks a core-sibling PMU; "cpumask" PMUs
    // (uncore, RAPL) describe package scope, not a core type.
    const auto cpus_value = host.read_value(dir + "/cpus");
    if (!cpus_value) continue;
    const auto cpus = parse_cpulist(*cpus_value);
    if (!cpus || cpus->empty()) continue;
    DetectedCoreType type;
    type.label = name;
    type.cpus = *cpus;
    type.discriminator = static_cast<std::int64_t>(out.size());
    for (int cpu : *cpus) {
      if (cpu >= 0 && cpu < host.num_cpus()) {
        covered[static_cast<std::size_t>(cpu)] = true;
      }
    }
    out.push_back(std::move(type));
  }
  if (out.empty()) return std::nullopt;
  // The strategy is only trustworthy when the PMUs tile every cpu.
  if (std::find(covered.begin(), covered.end(), false) != covered.end()) {
    return std::nullopt;
  }
  return out;
}

std::optional<std::vector<DetectedCoreType>> detect_by_max_freq(
    const pfm::Host& host) {
  return group_by(host, "freq", [&](int cpu) -> std::optional<std::int64_t> {
    const auto v = host.read_int(cpu_path(cpu, "/cpufreq/cpuinfo_max_freq"));
    if (!v) return std::nullopt;
    return *v;
  });
}

DetectionResult detect_core_types(const pfm::Host& host) {
  DetectionResult result;
  if (auto types = detect_by_cpu_capacity(host)) {
    result.method = DetectionMethod::kCpuCapacity;
    result.core_types = std::move(*types);
    return result;
  }
  if (auto types = detect_by_cpuid(host)) {
    result.method = DetectionMethod::kCpuidHybridLeaf;
    result.core_types = std::move(*types);
    return result;
  }
  if (auto types = detect_by_pmu_cpus(host)) {
    if (types->size() > 1) {  // one "cpus"-bearing PMU proves nothing
      result.method = DetectionMethod::kPmuCpusFiles;
      result.core_types = std::move(*types);
      return result;
    }
  }
  if (auto types = detect_by_max_freq(host)) {
    if (types->size() > 1) {
      result.method = DetectionMethod::kMaxFrequency;
      result.core_types = std::move(*types);
      return result;
    }
  }
  // Homogeneous fallback: one type containing every cpu.
  DetectedCoreType only;
  only.label = "cpu";
  for (int cpu = 0; cpu < host.num_cpus(); ++cpu) only.cpus.push_back(cpu);
  result.method = DetectionMethod::kHomogeneousFallback;
  result.core_types = {std::move(only)};
  return result;
}

Expected<HardwareInfo> get_hardware_info(const pfm::Host& host) {
  HardwareInfo info;
  info.total_cpus = host.num_cpus();
  info.detection = detect_core_types(host);
  info.hybrid = info.detection.hybrid();

  // Model string from /proc/cpuinfo ("model name" on x86; ARM boards
  // often lack one, in which case implementer/part stand in).
  const auto cpuinfo = host.read_file("/proc/cpuinfo");
  if (cpuinfo) {
    for (std::string_view line : split(*cpuinfo, '\n')) {
      if (starts_with(line, "model name")) {
        const std::size_t colon = line.find(':');
        if (colon != std::string_view::npos) {
          info.model_string = std::string(trim(line.substr(colon + 1)));
          break;
        }
      }
    }
    if (info.model_string.empty()) {
      for (std::string_view line : split(*cpuinfo, '\n')) {
        if (starts_with(line, "CPU part")) {
          const std::size_t colon = line.find(':');
          if (colon != std::string_view::npos) {
            info.model_string =
                "ARM part " + std::string(trim(line.substr(colon + 1)));
            break;
          }
        }
      }
    }
  }
  return info;
}

std::string core_type_label(const DetectionResult& detection,
                            const std::vector<int>& pmu_cpus) {
  if (detection.core_types.empty()) return "";
  if (pmu_cpus.empty()) {
    // "All cpus" is only unambiguous when there is one type to name.
    return detection.core_types.size() == 1 ? detection.core_types[0].label
                                            : "";
  }
  const DetectedCoreType* best = nullptr;
  std::size_t best_overlap = 0;
  for (const DetectedCoreType& type : detection.core_types) {
    std::size_t overlap = 0;
    for (const int cpu : pmu_cpus) {
      for (const int type_cpu : type.cpus) {
        if (cpu == type_cpu) {
          ++overlap;
          break;
        }
      }
    }
    if (overlap > best_overlap) {
      best_overlap = overlap;
      best = &type;
    }
  }
  return best != nullptr ? best->label : "";
}

}  // namespace hetpapi::papi
