// papi_avail rendering, factored out of the tool so the report is
// golden-testable in-process: preset availability plus the hybrid
// expansion, with every core PMU labelled by its detected core type
// (§V-2's per-core-type reporting surface).
#pragma once

#include <string>
#include <string_view>

#include "papi/library.hpp"

namespace hetpapi::papi {

/// Render the papi_avail report against an initialized library.
/// `machine_name` and `policy_name` only feed the header line — the
/// availability itself comes from the library's backend and config.
std::string render_avail_report(const Library& lib,
                                std::string_view machine_name,
                                std::string_view policy_name);

}  // namespace hetpapi::papi
