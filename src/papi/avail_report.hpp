// papi_avail rendering, factored out of the tool so the report is
// golden-testable in-process: preset availability plus the hybrid
// expansion, with every core PMU labelled by its detected core type
// (§V-2's per-core-type reporting surface).
#pragma once

#include <string>
#include <string_view>

#include "papi/library.hpp"

namespace hetpapi::papi {

/// Render the papi_avail report against an initialized library.
/// `machine_name` and `policy_name` only feed the header line — the
/// availability itself comes from the library's backend and config.
std::string render_avail_report(const Library& lib,
                                std::string_view machine_name,
                                std::string_view policy_name);

/// Render the papi_native_avail listing: every native event (and umask)
/// of every active PMU, followed by the cross-core-type availability
/// diff over the core PMUs (the §I-C asymmetry — events present on one
/// core type but not another). Only needs the pfm layer, so the tool
/// and the golden tests share it without building a Library.
std::string render_native_avail_report(const pfm::PfmLibrary& pfmlib,
                                       std::string_view machine_name);

}  // namespace hetpapi::papi
