#include "papi/fault_injection.hpp"

namespace hetpapi::papi {

Expected<FaultProfile> FaultProfile::named(std::string_view name) {
  FaultProfile p;
  p.name = std::string(name);
  if (name == "none") return p;
  if (name == "flaky-open") {
    // Missing hybrid PMUs / paranoid settings: opens refuse outright.
    p.open_fail_prob = 0.25;
    p.open_enoent_weight = 2.0;
    p.open_eacces_weight = 1.0;
    p.open_emfile_weight = 1.0;
    return p;
  }
  if (name == "fd-pressure") {
    // RLIMIT_NOFILE headroom of a busy server process.
    p.max_open_fds = 6;
    return p;
  }
  if (name == "transient-read") {
    // Signal-heavy process: reads and ioctls keep getting interrupted,
    // in bursts short enough that the bounded retry rides them out.
    p.read_transient_prob = 0.30;
    p.ioctl_transient_prob = 0.15;
    p.transient_burst = 2;
    return p;
  }
  if (name == "stale-fd") {
    // Counters die under the reader (hotplug, PMU reassignment).
    p.stale_fd_prob = 0.02;
    p.rdpmc_unavailable = true;
    return p;
  }
  if (name == "mixed") {
    // Everything at once, each at a rate a long soak will hit often.
    p.open_fail_prob = 0.10;
    p.open_enoent_weight = 1.0;
    p.open_eacces_weight = 1.0;
    p.open_emfile_weight = 1.0;
    p.max_open_fds = 24;
    p.read_transient_prob = 0.10;
    p.ioctl_transient_prob = 0.05;
    p.transient_burst = 2;
    p.stale_fd_prob = 0.005;
    p.rdpmc_unavailable = true;
    return p;
  }
  if (name == "sampling-chaos") {
    // The sampling fault mix: wakeups vanish, drains stall in bursts
    // the retry budget can ride out, counters still die occasionally.
    // Ring mmaps stay up — the denied-mmap degradation path has its own
    // deterministic switch (ring_mmap_denied) because it is a
    // capability, not a rate.
    p.wakeup_drop_prob = 0.30;
    p.poll_stall_prob = 0.20;
    p.transient_burst = 2;
    p.read_transient_prob = 0.10;
    p.stale_fd_prob = 0.002;
    return p;
  }
  return make_error(StatusCode::kInvalidArgument,
                    "unknown fault profile \"" + std::string(name) + "\"");
}

std::vector<std::string> FaultProfile::profile_names() {
  return {"none",      "flaky-open", "fd-pressure",
          "transient-read", "stale-fd",   "mixed", "sampling-chaos"};
}

Expected<int> FaultInjectingBackend::perf_event_open(const PerfEventAttr& attr,
                                                     Tid tid, int cpu,
                                                     int group_fd,
                                                     std::uint64_t flags) {
  ++stats_.opens_attempted;
  if (profile_.max_open_fds >= 0 &&
      static_cast<int>(live_fds_.size()) >= profile_.max_open_fds) {
    ++stats_.opens_injected_failed;
    return make_error(StatusCode::kNoMemory,
                      "injected EMFILE: fd limit (" +
                          std::to_string(profile_.max_open_fds) +
                          ") reached");
  }
  if (profile_.open_fail_prob > 0.0 &&
      rng_.uniform() < profile_.open_fail_prob) {
    ++stats_.opens_injected_failed;
    const double total = profile_.open_enoent_weight +
                         profile_.open_eacces_weight +
                         profile_.open_emfile_weight;
    const double pick = rng_.uniform() * (total > 0.0 ? total : 1.0);
    if (pick < profile_.open_enoent_weight) {
      return make_error(StatusCode::kNotFound,
                        "injected ENOENT: event not present on this PMU");
    }
    if (pick < profile_.open_enoent_weight + profile_.open_eacces_weight) {
      return make_error(StatusCode::kPermission,
                        "injected EACCES: perf_event_paranoid refuses");
    }
    return make_error(StatusCode::kNoMemory, "injected EMFILE");
  }
  auto fd = inner_->perf_event_open(attr, tid, cpu, group_fd, flags);
  if (fd) live_fds_.insert(*fd);
  return fd;
}

Status FaultInjectingBackend::read_fault(int fd) {
  if (stale_fds_.count(fd) != 0) {
    ++stats_.stale_fd_hits;
    return make_error(StatusCode::kSystem,
                      "injected stale fd: counter died under the reader");
  }
  if (auto it = pending_transients_.find(fd);
      it != pending_transients_.end()) {
    if (--it->second <= 0) pending_transients_.erase(it);
    ++stats_.reads_injected_transient;
    return make_error(StatusCode::kInterrupted, "injected EINTR (burst)");
  }
  if (profile_.stale_fd_prob > 0.0 &&
      rng_.uniform() < profile_.stale_fd_prob) {
    stale_fds_.insert(fd);
    ++stats_.fds_gone_stale;
    ++stats_.stale_fd_hits;
    return make_error(StatusCode::kSystem,
                      "injected stale fd: counter died under the reader");
  }
  if (profile_.read_transient_prob > 0.0 &&
      rng_.uniform() < profile_.read_transient_prob) {
    if (profile_.transient_burst > 1) {
      pending_transients_[fd] = profile_.transient_burst - 1;
    }
    ++stats_.reads_injected_transient;
    return make_error(StatusCode::kInterrupted, "injected EINTR");
  }
  return Status::ok();
}

Status FaultInjectingBackend::perf_ioctl(int fd, PerfIoctl op,
                                         std::uint32_t flags) {
  if (stale_fds_.count(fd) != 0) {
    ++stats_.stale_fd_hits;
    return make_error(StatusCode::kSystem, "injected stale fd");
  }
  if (profile_.ioctl_transient_prob > 0.0 &&
      rng_.uniform() < profile_.ioctl_transient_prob) {
    ++stats_.ioctls_injected_transient;
    return make_error(StatusCode::kInterrupted, "injected EINTR (ioctl)");
  }
  return inner_->perf_ioctl(fd, op, flags);
}

Expected<PerfValue> FaultInjectingBackend::perf_read(int fd) {
  ++stats_.reads_attempted;
  HETPAPI_RETURN_IF_ERROR(read_fault(fd));
  return inner_->perf_read(fd);
}

Expected<std::vector<PerfValue>> FaultInjectingBackend::perf_read_group(
    int fd) {
  ++stats_.reads_attempted;
  HETPAPI_RETURN_IF_ERROR(read_fault(fd));
  return inner_->perf_read_group(fd);
}

Expected<std::uint64_t> FaultInjectingBackend::perf_rdpmc(int fd) {
  if (profile_.rdpmc_unavailable) {
    return make_error(StatusCode::kNotSupported, "injected: rdpmc disabled");
  }
  if (stale_fds_.count(fd) != 0) {
    ++stats_.stale_fd_hits;
    return make_error(StatusCode::kSystem, "injected stale fd");
  }
  return inner_->perf_rdpmc(fd);
}

Expected<const simkernel::PerfUserPage*>
FaultInjectingBackend::perf_mmap_user_page(int fd) {
  // Same availability model as perf_rdpmc: an rdpmc-less host refuses
  // the mapping outright (echoing a kernel with /sys/devices/cpu/rdpmc
  // = 0), and a stale fd can no longer be mapped.
  if (profile_.rdpmc_unavailable) {
    ++stats_.mmaps_denied;
    return make_error(StatusCode::kNotSupported, "injected: rdpmc disabled");
  }
  if (stale_fds_.count(fd) != 0) {
    ++stats_.stale_fd_hits;
    return make_error(StatusCode::kSystem, "injected stale fd");
  }
  return inner_->perf_mmap_user_page(fd);
}

Expected<simkernel::PerfRingView> FaultInjectingBackend::perf_mmap_ring(
    int fd) {
  if (profile_.ring_mmap_denied) {
    ++stats_.ring_mmaps_denied;
    return make_error(StatusCode::kNotSupported,
                      "injected: sample-ring mmap denied");
  }
  if (stale_fds_.count(fd) != 0) {
    ++stats_.stale_fd_hits;
    return make_error(StatusCode::kSystem, "injected stale fd");
  }
  return inner_->perf_mmap_ring(fd);
}

Expected<bool> FaultInjectingBackend::perf_ring_poll(int fd) {
  if (stale_fds_.count(fd) != 0) {
    ++stats_.stale_fd_hits;
    return make_error(StatusCode::kSystem, "injected stale fd");
  }
  if (auto it = pending_poll_stalls_.find(fd);
      it != pending_poll_stalls_.end()) {
    if (--it->second <= 0) pending_poll_stalls_.erase(it);
    ++stats_.polls_stalled;
    return make_error(StatusCode::kInterrupted, "injected EINTR (poll burst)");
  }
  if (profile_.poll_stall_prob > 0.0 &&
      rng_.uniform() < profile_.poll_stall_prob) {
    if (profile_.transient_burst > 1) {
      pending_poll_stalls_[fd] = profile_.transient_burst - 1;
    }
    ++stats_.polls_stalled;
    return make_error(StatusCode::kInterrupted, "injected EINTR (poll)");
  }
  auto fired = inner_->perf_ring_poll(fd);
  if (fired && *fired && profile_.wakeup_drop_prob > 0.0 &&
      rng_.uniform() < profile_.wakeup_drop_prob) {
    // The wakeup is eaten after the kernel consumed it — the ring still
    // carries every record, the reader just is not told. Only a drain
    // that trusts poll over head/tail can lose data here.
    ++stats_.wakeups_dropped;
    return false;
  }
  return fired;
}

Status FaultInjectingBackend::perf_close(int fd) {
  // Closes always reach the inner backend — a ledger that "loses" fds
  // on injected close failures would fabricate leaks.
  live_fds_.erase(fd);
  stale_fds_.erase(fd);
  pending_transients_.erase(fd);
  pending_poll_stalls_.erase(fd);
  return inner_->perf_close(fd);
}

}  // namespace hetpapi::papi
