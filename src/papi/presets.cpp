#include "papi/presets.hpp"

#include "base/strings.hpp"

namespace hetpapi::papi {

using simkernel::CountKind;

const std::vector<PresetDef>& preset_table() {
  static const std::vector<PresetDef> presets = {
      {"PAPI_TOT_INS", CountKind::kInstructions, "Total instructions retired"},
      {"PAPI_TOT_CYC", CountKind::kCycles, "Total core cycles"},
      {"PAPI_REF_CYC", CountKind::kRefCycles, "Reference clock cycles"},
      {"PAPI_L3_TCA", CountKind::kLlcReferences, "L3 total cache accesses"},
      {"PAPI_L3_TCM", CountKind::kLlcMisses, "L3 total cache misses"},
      {"PAPI_BR_INS", CountKind::kBranches, "Branch instructions retired"},
      {"PAPI_BR_MSP", CountKind::kBranchMisses, "Mispredicted branches"},
      {"PAPI_RES_STL", CountKind::kStalledCycles, "Cycles stalled on resources"},
      {"PAPI_DP_OPS", CountKind::kFlopsDp, "Double-precision operations"},
  };
  return presets;
}

const PresetDef* find_preset(std::string_view name) {
  for (const PresetDef& preset : preset_table()) {
    if (iequals(preset.name, name)) return &preset;
  }
  return nullptr;
}

std::optional<std::string> native_for_kind(const pfm::PmuTable& table,
                                           CountKind kind) {
  for (const pfm::EventDesc& event : table.events) {
    if (event.umasks.empty()) {
      if (event.default_kind == kind) return event.name;
      continue;
    }
    for (const pfm::UmaskDesc& umask : event.umasks) {
      if (umask.kind == kind) return event.name + ":" + umask.name;
    }
    if (!event.requires_umask && event.default_kind == kind) return event.name;
  }
  return std::nullopt;
}

}  // namespace hetpapi::papi
