// The legacy separate uncore component. Registered only when
// unified_uncore is off: the historical mode where uncore events cannot
// join ordinary EventSets and the whole uncore is one package-global
// exclusive resource. With unified_uncore on, this component simply is
// not registered and PerfCoreComponent absorbs the uncore PMUs — the
// `if (config.unified_uncore)` fork became a registration decision.
#pragma once

#include "papi/components/perf_backed.hpp"

namespace hetpapi::papi {

class UncoreComponent final : public PerfBackedComponent {
 public:
  using PerfBackedComponent::PerfBackedComponent;

  std::string_view name() const override { return "perf_event_uncore"; }
  ComponentScope scope() const override { return ComponentScope::kPackage; }
  ComponentCaps caps() const override { return {false, false, true}; }
  bool serves(const pfm::ActivePmu& pmu) const override {
    return pmu.table->component == "uncore";
  }

 protected:
  Expected<Binding> bind(const pfm::ActivePmu& pmu,
                         const MeasureTarget& target) const override {
    (void)target;
    return Binding{simkernel::kInvalidTid,
                   pmu.cpus.empty() ? 0 : pmu.cpus.front()};
  }
};

}  // namespace hetpapi::papi
