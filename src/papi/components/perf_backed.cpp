#include "papi/components/perf_backed.hpp"

#include "papi/retry.hpp"
#include "papi/user_page_read.hpp"

namespace hetpapi::papi {

using simkernel::kIocFlagGroup;

std::unique_ptr<ComponentState> PerfBackedComponent::create_state() const {
  return std::make_unique<PerfState>();
}

Status PerfBackedComponent::install_handler(const Slot& slot) const {
  if (slot.request.sample_period == 0 || slot.request.overflow == nullptr) {
    return Status::ok();
  }
  // Capture what the callback needs; the EventSet (which owns the
  // callback the pointer refers to) outlives the fd.
  const int set_id = slot.request.eventset_id;
  const int user_index = slot.request.user_event_index;
  const std::string native_name = slot.request.enc.canonical_name;
  const OverflowCallback* callback = slot.request.overflow;
  return env_.backend->perf_set_overflow_handler(
      slot.fd, [set_id, user_index, native_name, callback](
                   int, std::uint64_t value, std::uint64_t periods) {
        OverflowEvent event;
        event.eventset = set_id;
        event.user_event_index = user_index;
        event.native_name = native_name;
        event.value = value;
        event.periods = periods;
        (*callback)(event);
      });
}

void PerfBackedComponent::map_ring(Slot& slot) const {
  if (slot.request.sample_period == 0) return;
  auto ring = env_.backend->perf_mmap_ring(slot.fd);
  if (ring) {
    slot.ring = *ring;
    slot.ring_mapped = true;
  } else {
    slot.ring_denied = true;
  }
}

Status PerfBackedComponent::open_slot(ComponentState& state,
                                      const SlotRequest& request,
                                      const MeasureTarget& target) {
  PerfState& ps = perf_state(state);
  ps.read_plan_valid = false;
  const pfm::ActivePmu* pmu = env_.pfm->find_pmu(request.enc.pmu_name);
  if (pmu == nullptr) {
    return make_error(StatusCode::kBug, "unknown PMU at open time");
  }
  auto binding = bind(*pmu, target);
  if (!binding) return binding.status();

  // Find or create the group for this PMU type. Multiplexed sets make
  // every event its own leader so the kernel can rotate them freely.
  Group* group = nullptr;
  if (!target.multiplexed) {
    for (Group& g : ps.groups) {
      if (g.perf_type == request.enc.perf_type) {
        group = &g;
        break;
      }
    }
  }

  PerfEventAttr attr;
  attr.type = request.enc.perf_type;
  attr.config = request.enc.config;
  attr.sample_period = request.sample_period;
  attr.read_format = simkernel::kFormatGroup |
                     simkernel::kFormatTotalTimeEnabled |
                     simkernel::kFormatTotalTimeRunning;

  const int retries = env_.config->transient_retry_attempts;
  if (group == nullptr) {
    if (ps.groups.full() ||
        (!target.multiplexed && ps.groups.size() >= kMaxPmuGroups)) {
      return make_error(StatusCode::kNoMemory,
                        "EventSet exceeds the static group array (" +
                            std::to_string(kMaxPmuGroups) + " PMU groups)");
    }
    attr.disabled = true;  // leaders start disabled; PAPI_start enables
    auto fd = open_with_retry(*env_.backend, attr, binding->tid, binding->cpu,
                              -1, 0, retries);
    if (!fd) return fd.status();
    Group new_group;
    new_group.perf_type = request.enc.perf_type;
    new_group.leader_fd = *fd;
    new_group.members.push_back(static_cast<int>(ps.slots.size()));
    ps.groups.push_back(new_group);
    ps.slots.push_back(Slot{request, *fd});
    const Status installed = install_handler(ps.slots.back());
    if (!installed.is_ok()) {
      // Undo the half-opened leader: a failed open_slot must leave the
      // state exactly as it was, fd included.
      (void)env_.backend->perf_close(*fd);
      ps.slots.pop_back();
      ps.groups.pop_back();
      return installed;
    }
    map_ring(ps.slots.back());
    return installed;
  }

  attr.disabled = false;  // siblings gate on their leader
  auto fd = open_with_retry(*env_.backend, attr, binding->tid, binding->cpu,
                            group->leader_fd, 0, retries);
  if (!fd) return fd.status();
  if (group->members.full()) {
    (void)env_.backend->perf_close(*fd);
    return make_error(StatusCode::kNoMemory, "group member array full");
  }
  group->members.push_back(static_cast<int>(ps.slots.size()));
  ps.slots.push_back(Slot{request, *fd});
  const Status installed = install_handler(ps.slots.back());
  if (!installed.is_ok()) {
    (void)env_.backend->perf_close(*fd);
    ps.slots.pop_back();
    group->members.pop_back();
    return installed;
  }
  map_ring(ps.slots.back());
  return installed;
}

Status PerfBackedComponent::close_all(ComponentState& state) {
  PerfState& ps = perf_state(state);
  ps.read_plan_valid = false;
  Status first_error = Status::ok();
  // Close siblings before leaders to avoid the kernel's sibling
  // promotion path.
  for (Group& group : ps.groups) {
    for (std::size_t i = group.members.size(); i-- > 1;) {
      Slot& slot = ps.slots[static_cast<std::size_t>(group.members[i])];
      if (slot.fd >= 0) {
        const Status s = env_.backend->perf_close(slot.fd);
        if (!s.is_ok() && first_error.is_ok()) first_error = s;
        slot.fd = -1;
      }
    }
    if (!group.members.empty()) {
      Slot& leader = ps.slots[static_cast<std::size_t>(group.members[0])];
      if (leader.fd >= 0) {
        const Status s = env_.backend->perf_close(leader.fd);
        if (!s.is_ok() && first_error.is_ok()) first_error = s;
        leader.fd = -1;
      }
    }
  }
  // Slots not reachable through a group (defensive; rollback paths close
  // through here too).
  for (Slot& slot : ps.slots) {
    if (slot.fd >= 0) {
      const Status s = env_.backend->perf_close(slot.fd);
      if (!s.is_ok() && first_error.is_ok()) first_error = s;
      slot.fd = -1;
    }
  }
  ps.groups.clear();
  ps.slots.clear();
  return first_error;
}

Status PerfBackedComponent::start(ComponentState& state) {
  // The multi-group fan-out at the heart of §IV-E: reset + enable every
  // PMU group belonging to this EventSet. A failure enabling group k
  // disables groups 0..k-1 again (best effort) so a failed start never
  // leaves counters silently running.
  PerfState& ps = perf_state(state);
  const int retries = env_.config->transient_retry_attempts;
  for (std::size_t g = 0; g < ps.groups.size(); ++g) {
    Status s = ioctl_with_retry(*env_.backend, ps.groups[g].leader_fd,
                                PerfIoctl::kReset, kIocFlagGroup, retries);
    if (s.is_ok()) {
      s = ioctl_with_retry(*env_.backend, ps.groups[g].leader_fd,
                           PerfIoctl::kEnable, kIocFlagGroup, retries);
    }
    if (!s.is_ok()) {
      for (std::size_t k = g; k-- > 0;) {
        (void)ioctl_with_retry(*env_.backend, ps.groups[k].leader_fd,
                               PerfIoctl::kDisable, kIocFlagGroup, retries);
      }
      return s;
    }
  }
  return Status::ok();
}

Status PerfBackedComponent::stop(ComponentState& state) {
  // Keep disabling the remaining groups after a failure — stop must
  // quiesce as much as it can; the first error is still reported.
  PerfState& ps = perf_state(state);
  const int retries = env_.config->transient_retry_attempts;
  Status first_error = Status::ok();
  for (const Group& group : ps.groups) {
    const Status s = ioctl_with_retry(*env_.backend, group.leader_fd,
                                      PerfIoctl::kDisable, kIocFlagGroup,
                                      retries);
    if (!s.is_ok() && first_error.is_ok()) first_error = s;
  }
  return first_error;
}

Status PerfBackedComponent::reset(ComponentState& state) {
  PerfState& ps = perf_state(state);
  const int retries = env_.config->transient_retry_attempts;
  for (const Group& group : ps.groups) {
    HETPAPI_RETURN_IF_ERROR(ioctl_with_retry(*env_.backend, group.leader_fd,
                                             PerfIoctl::kReset, kIocFlagGroup,
                                             retries));
  }
  return Status::ok();
}

void PerfBackedComponent::build_read_plan(const PerfState& ps) const {
  ps.read_plan.clear();
  ps.plan_members.clear();
  ps.plan_pages.clear();
  ps.read_plan.reserve(ps.groups.size());
  for (const Group& group : ps.groups) {
    ReadPlanEntry entry;
    entry.leader_fd = group.leader_fd;
    entry.member_begin = ps.plan_members.size();
    entry.member_count = group.members.size();
    // Classify every member — not just singletons — as rdpmc-servable:
    // the group goes to the page path iff each member's user page mapped
    // and advertises cap_user_rdpmc. Residency is NOT checked here; it
    // changes per tick and the per-read seqlock loop handles it.
    bool all_pages = env_.config->use_rdpmc && !group.members.empty();
    for (int member : group.members) {
      const Slot& slot = ps.slots[static_cast<std::size_t>(member)];
      ps.plan_members.push_back(slot.request.global_index);
      const simkernel::PerfUserPage* page = nullptr;
      if (env_.config->use_rdpmc) {
        if (auto mapped = env_.backend->perf_mmap_user_page(slot.fd)) {
          if (((*mapped)->capabilities & simkernel::kCapUserRdpmc) != 0) {
            page = *mapped;
          }
        }
      }
      ps.plan_pages.push_back(page);
      all_pages = all_pages && page != nullptr;
    }
    entry.rdpmc_group = all_pages;
    ps.read_plan.push_back(entry);
  }
}

Status PerfBackedComponent::read(const ComponentState& state, bool scale,
                                 std::vector<double>& values,
                                 std::vector<std::uint8_t>* valid) const {
  // Gather per-slot raw/scaled values across all groups. The fan-out
  // (which leader fds to read, where each returned value lands) is
  // pre-resolved into a read plan; with cache_read_plan off it is
  // rebuilt on every call, the historical behaviour the overhead bench
  // compares against.
  const PerfState& ps = perf_state(state);
  if (!ps.read_plan_valid) {
    build_read_plan(ps);
    ps.read_plan_valid = env_.config->cache_read_plan;
  }

  const int retries = env_.config->transient_retry_attempts;
  const int page_retries = env_.config->rdpmc_max_retries;
  for (const ReadPlanEntry& entry : ps.read_plan) {
    // Fast path first (§V-5): every member served from its mmap'd user
    // page with the seqlock retry loop — no syscall, and scaled reads
    // take time_enabled/time_running from the page so a multiplexed
    // event returns the same scaled estimate as the fd path. Any member
    // that cannot be served (not resident: disabled, multiplexed out,
    // or migrated core types; rdpmc revoked; retries exhausted) sends
    // the WHOLE group to the fd path so group values stay mutually
    // consistent.
    if (entry.rdpmc_group) {
      bool served = true;
      for (std::size_t i = 0; i < entry.member_count; ++i) {
        const simkernel::PerfUserPage* page =
            ps.plan_pages[entry.member_begin + i];
        UserPageSample sample;
        if (read_user_page(*page, sample, page_retries) !=
            UserPageReadResult::kOk) {
          served = false;
          break;
        }
        double value = static_cast<double>(sample.value);
        if (scale) {
          PerfValue pv;
          pv.value = sample.value;
          pv.time_enabled_ns = sample.time_enabled_ns;
          pv.time_running_ns = sample.time_running_ns;
          value = pv.scaled();
        }
        values[ps.plan_members[entry.member_begin + i]] = value;
      }
      if (served) continue;  // partial writes are overwritten below
    }
    auto group_values =
        read_group_with_retry(*env_.backend, entry.leader_fd, retries);
    if (group_values && group_values->size() != entry.member_count) {
      group_values = make_error(StatusCode::kBug, "group read size mismatch");
    }
    if (!group_values) {
      // Strict callers abort the collection; tolerant callers degrade
      // this group's slots (value 0, validity cleared) and keep reading
      // the other groups — one dead counter costs one group, not the
      // whole EventSet.
      if (valid == nullptr) return group_values.status();
      for (std::size_t i = 0; i < entry.member_count; ++i) {
        const std::size_t slot = ps.plan_members[entry.member_begin + i];
        values[slot] = 0.0;
        (*valid)[slot] = 0;
      }
      continue;
    }
    for (std::size_t i = 0; i < entry.member_count; ++i) {
      const PerfValue& pv = (*group_values)[i];
      double value = static_cast<double>(pv.value);
      if (scale) value = pv.scaled();
      values[ps.plan_members[entry.member_begin + i]] = value;
    }
  }
  return Status::ok();
}

int PerfBackedComponent::group_count(const ComponentState& state) const {
  return static_cast<int>(perf_state(state).groups.size());
}

Status PerfBackedComponent::drain_samples(ComponentState& state,
                                          SampleBatch& batch) {
  PerfState& ps = perf_state(state);
  const int retries = env_.config->transient_retry_attempts;
  for (Slot& slot : ps.slots) {
    if (slot.request.sample_period == 0 || slot.fd < 0) continue;
    if (slot.ring_denied || !slot.ring_mapped) {
      // Counting-mode degradation: overflow callbacks still fire, but
      // there is no ring to drain.
      ++batch.rings_denied;
      continue;
    }

    // The wakeup surface is an advisory hint, never ground truth: the
    // drain trusts the ring's head/tail cursors. A transiently failing
    // poll retries within the budget; a persistent stall skips the slot
    // for this pass only — its records stay queued in the ring.
    bool wakeup = false;
    bool poll_answered = false;
    bool stalled = false;
    for (int attempt = 0; attempt < retries; ++attempt) {
      auto fired = env_.backend->perf_ring_poll(slot.fd);
      if (fired) {
        wakeup = *fired;
        poll_answered = true;
        break;
      }
      if (fired.status().code() != StatusCode::kInterrupted) {
        // Hard poll failure (e.g. a backend without a poll surface):
        // proceed straight to the ring, which is the source of truth.
        break;
      }
      stalled = true;
    }
    if (stalled && !poll_answered) {
      ++batch.drains_stalled;
      continue;
    }

    const std::uint64_t queued =
        slot.ring.page->data_head - slot.ring.page->data_tail;
    if (queued == 0) continue;
    if (poll_answered && !wakeup) {
      // Dropped wakeup: the hint said "nothing", the ring disagrees.
      // Drain anyway — only a reader that trusts poll over head/tail
      // can lose data here.
      ++batch.wakeups_missed;
    }

    simkernel::PerfRingCursor cursor(slot.ring);
    simkernel::PerfEventHeader header;
    std::uint8_t body[64];
    while (cursor.next(&header, body, sizeof body)) {
      const std::size_t body_size = header.size - sizeof(header);
      if (header.type == simkernel::kPerfRecordSample) {
        simkernel::PerfSampleParsed parsed;
        if (!simkernel::perf_parse_sample(slot.ring.sample_type, body,
                                          body_size, &parsed)) {
          ++batch.malformed;
          continue;
        }
        Sample sample;
        sample.eventset = slot.request.eventset_id;
        sample.user_event_index = slot.request.user_event_index;
        sample.native_name = slot.request.enc.canonical_name;
        sample.pmu_name = slot.request.enc.pmu_name;
        sample.ip = parsed.ip;
        sample.tid = parsed.tid;
        sample.time_ns = parsed.time;
        sample.cpu = static_cast<int>(parsed.cpu);
        sample.period = parsed.period;
        batch.samples.push_back(std::move(sample));
      } else if (header.type == simkernel::kPerfRecordLost) {
        simkernel::PerfLostParsed lost;
        if (simkernel::perf_parse_lost(body, body_size, &lost)) {
          batch.lost += lost.lost;
        } else {
          ++batch.malformed;
        }
      }
      // Unknown record types are skipped: forward ABI compatibility.
    }
    if (cursor.malformed()) ++batch.malformed;
    cursor.commit();
  }
  return Status::ok();
}

}  // namespace hetpapi::papi
