#include "papi/components/sysinfo.hpp"

#include "base/strings.hpp"
#include "pfm/host.hpp"

namespace hetpapi::papi {

namespace {

/// Sum of the busy jiffies (user + nice + system) on the aggregate
/// "cpu " line, converted to milliseconds at the canonical USER_HZ=100.
Expected<double> parse_cpu_time_ms(std::string_view stat) {
  for (const auto line : split(stat, '\n')) {
    auto fields = split(line, ' ');
    std::erase_if(fields, [](std::string_view f) { return f.empty(); });
    if (fields.size() < 4 || fields[0] != "cpu") continue;
    double jiffies = 0.0;
    for (std::size_t i = 1; i <= 3; ++i) {
      const auto value = parse_int(fields[i]);
      if (!value) {
        return make_error(StatusCode::kSystem,
                          "malformed cpu line in /proc/stat");
      }
      jiffies += static_cast<double>(*value);
    }
    return jiffies * 10.0;
  }
  return make_error(StatusCode::kSystem, "no cpu line in /proc/stat");
}

Expected<double> parse_ctxt(std::string_view stat) {
  for (const auto line : split(stat, '\n')) {
    auto fields = split(line, ' ');
    std::erase_if(fields, [](std::string_view f) { return f.empty(); });
    if (fields.size() < 2 || fields[0] != "ctxt") continue;
    const auto value = parse_int(fields[1]);
    if (!value) {
      return make_error(StatusCode::kSystem,
                        "malformed ctxt line in /proc/stat");
    }
    return static_cast<double>(*value);
  }
  return make_error(StatusCode::kSystem, "no ctxt line in /proc/stat");
}

}  // namespace

std::unique_ptr<ComponentState> SysinfoComponent::create_state() const {
  return std::make_unique<SysinfoState>();
}

Expected<std::string> SysinfoComponent::find_thermal_zone() const {
  const pfm::Host& host = env_.backend->host();
  for (int zone = 0; zone < 32; ++zone) {
    const std::string base =
        str_format("/sys/class/thermal/thermal_zone%d", zone);
    auto type = host.read_value(base + "/type");
    if (!type.has_value()) continue;
    // The package sensor is x86_pkg_temp on Intel and the SoC zone on
    // the ARM boards the paper measures; other zones (acpitz, cores,
    // battery...) are not the package.
    if (*type == "x86_pkg_temp" || *type == "soc-thermal") {
      return base + "/temp";
    }
  }
  return make_error(StatusCode::kNotSupported,
                    "no package thermal zone on this system");
}

Expected<double> SysinfoComponent::read_raw(const Slot& slot) const {
  const pfm::Host& host = env_.backend->host();
  switch (slot.reading) {
    case Reading::kContextSwitches: {
      auto stat = host.read_file("/proc/stat");
      if (!stat.has_value()) return stat.status();
      return parse_ctxt(*stat);
    }
    case Reading::kCpuTimeMs: {
      auto stat = host.read_file("/proc/stat");
      if (!stat.has_value()) return stat.status();
      return parse_cpu_time_ms(*stat);
    }
    case Reading::kPackageTempMc: {
      auto value = host.read_int(slot.path);
      if (!value.has_value()) return value.status();
      return static_cast<double>(*value);
    }
  }
  return make_error(StatusCode::kBug, "unknown sysinfo reading");
}

Status SysinfoComponent::open_slot(ComponentState& state,
                                   const SlotRequest& request,
                                   const MeasureTarget& target) {
  (void)target;  // system-wide readings; the EventSet target is moot.
  auto& st = static_cast<SysinfoState&>(state);
  Slot slot;
  slot.request = request;

  // The reading is keyed on the event name within the sysinfo PMU; the
  // encoding's config code is free-form for software tables. Canonical
  // names look like "sysinfo::SYS_CTX_SWITCHES".
  std::string_view name = request.enc.canonical_name;
  if (const auto sep = name.rfind("::"); sep != std::string_view::npos) {
    name = name.substr(sep + 2);
  }
  if (const auto colon = name.find(':'); colon != std::string_view::npos) {
    name = name.substr(0, colon);
  }
  if (name == "SYS_CTX_SWITCHES") {
    slot.reading = Reading::kContextSwitches;
  } else if (name == "SYS_CPU_TIME_MS") {
    slot.reading = Reading::kCpuTimeMs;
  } else if (name == "PKG_TEMP_MC") {
    slot.reading = Reading::kPackageTempMc;
    auto path = find_thermal_zone();
    if (!path.has_value()) return path.status();
    slot.path = *path;
  } else {
    return make_error(StatusCode::kNotFound,
                      str_format("sysinfo component has no event named %.*s",
                                 static_cast<int>(name.size()), name.data()));
  }

  // Probe once at open so add_event fails eagerly (and rolls back)
  // instead of poisoning a later start().
  auto probe = read_raw(slot);
  if (!probe.has_value()) return probe.status();

  st.slots.push_back(std::move(slot));
  return Status::ok();
}

Status SysinfoComponent::close_all(ComponentState& state) {
  auto& st = static_cast<SysinfoState&>(state);
  st.slots.clear();
  st.running = false;
  return Status::ok();
}

Status SysinfoComponent::start(ComponentState& state) {
  auto& st = static_cast<SysinfoState&>(state);
  for (auto& slot : st.slots) {
    auto value = read_raw(slot);
    if (!value.has_value()) return value.status();
    slot.baseline = *value;
    slot.frozen = 0.0;
  }
  st.running = true;
  return Status::ok();
}

Status SysinfoComponent::stop(ComponentState& state) {
  auto& st = static_cast<SysinfoState&>(state);
  for (auto& slot : st.slots) {
    auto value = read_raw(slot);
    if (!value.has_value()) return value.status();
    slot.frozen = slot.reading == Reading::kPackageTempMc
                      ? *value
                      : *value - slot.baseline;
  }
  st.running = false;
  return Status::ok();
}

Status SysinfoComponent::reset(ComponentState& state) {
  auto& st = static_cast<SysinfoState&>(state);
  for (auto& slot : st.slots) {
    auto value = read_raw(slot);
    if (!value.has_value()) return value.status();
    slot.baseline = *value;
    slot.frozen = 0.0;
  }
  return Status::ok();
}

Status SysinfoComponent::read(const ComponentState& state, bool scale,
                              std::vector<double>& values,
                              std::vector<std::uint8_t>* valid) const {
  (void)scale;  // software readings are never multiplexed.
  const auto& st = static_cast<const SysinfoState&>(state);
  for (const auto& slot : st.slots) {
    const auto index = static_cast<std::size_t>(slot.request.global_index);
    double out = slot.frozen;
    if (st.running) {
      auto value = read_raw(slot);
      if (!value.has_value()) {
        // Tolerant callers degrade the slot (a vanished procfs/sysfs
        // file costs one reading, not the collection); strict callers
        // get the error.
        if (valid == nullptr) return value.status();
        values[index] = 0.0;
        (*valid)[index] = 0;
        continue;
      }
      out = slot.reading == Reading::kPackageTempMc ? *value
                                                    : *value - slot.baseline;
    }
    values[index] = out;
  }
  return Status::ok();
}

}  // namespace hetpapi::papi
