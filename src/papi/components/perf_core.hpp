// The perf_event component: core and software PMU events following the
// EventSet's target thread (or attached cpu), with the multi-PMU group
// fan-out. In unified-uncore mode (§V-3) it also absorbs uncore PMUs,
// which still bind to their designated package cpu.
#pragma once

#include "papi/components/perf_backed.hpp"

namespace hetpapi::papi {

class PerfCoreComponent final : public PerfBackedComponent {
 public:
  using PerfBackedComponent::PerfBackedComponent;

  std::string_view name() const override { return "perf_event"; }
  ComponentScope scope() const override { return ComponentScope::kThread; }
  ComponentCaps caps() const override { return {true, true, true}; }
  bool serves(const pfm::ActivePmu& pmu) const override;

 protected:
  Expected<Binding> bind(const pfm::ActivePmu& pmu,
                         const MeasureTarget& target) const override;
};

}  // namespace hetpapi::papi
