// Shared machinery for components whose counters live behind the
// kernel's perf_event syscalls: group bookkeeping (one group per PMU
// type, or one per event when multiplexed), leader-disabled open
// protocol, overflow-handler installation, the cached read-plan fan-out
// and the rdpmc singleton fast path (§IV-E, §V-5).
//
// Concrete subclasses only decide *where* an event binds — to the
// EventSet's target thread/cpu (perf_core) or to the PMU's designated
// package cpu (rapl, uncore).
#pragma once

#include "base/fixed_vector.hpp"
#include "papi/component.hpp"

namespace hetpapi::papi {

class PerfBackedComponent : public Component {
 public:
  explicit PerfBackedComponent(ComponentEnv env) : env_(env) {}

  std::unique_ptr<ComponentState> create_state() const override;
  Status open_slot(ComponentState& state, const SlotRequest& request,
                   const MeasureTarget& target) override;
  Status close_all(ComponentState& state) override;
  Status start(ComponentState& state) override;
  Status stop(ComponentState& state) override;
  Status reset(ComponentState& state) override;
  Status read(const ComponentState& state, bool scale,
              std::vector<double>& values,
              std::vector<std::uint8_t>* valid = nullptr) const override;
  int group_count(const ComponentState& state) const override;
  /// The safe drain loop: for every sampling slot, consult the wakeup
  /// surface (advisory; transient stalls retry within the budget, a
  /// persistent stall skips the slot for this pass), then decode the
  /// mmap ring through the shared PerfRingCursor and advance data_tail.
  /// Slots whose ring mmap was denied at open count as rings_denied —
  /// counting-mode degradation, not an error.
  Status drain_samples(ComponentState& state, SampleBatch& batch) override;

 protected:
  /// Where the slot's kernel event attaches.
  struct Binding {
    Tid tid = simkernel::kInvalidTid;
    int cpu = -1;
  };
  virtual Expected<Binding> bind(const pfm::ActivePmu& pmu,
                                 const MeasureTarget& target) const = 0;

  ComponentEnv env_;

 private:
  struct Slot {
    SlotRequest request;
    int fd = -1;
    /// Sample-ring mapping for sampling slots (sample_period > 0). A
    /// denied mmap is survivable: the slot degrades to counting mode
    /// (overflow callbacks still fire, no sample records).
    simkernel::PerfRingView ring{};
    bool ring_mapped = false;
    bool ring_denied = false;
  };

  struct Group {
    std::uint32_t perf_type = 0;
    int leader_fd = -1;
    /// Indices into PerfState::slots, in sibling order (leader first).
    FixedVector<int, kMaxEventSetEvents> members;
  };

  /// One pre-resolved group read in the collect fan-out. Value
  /// destinations are resolved to global (EventSet-wide) indices at plan
  /// build time so the read loop does no slot-table chasing.
  struct ReadPlanEntry {
    int leader_fd = -1;
    /// Every member of this group has a mapped user page advertising
    /// cap_user_rdpmc: the whole group is served by seqlock page reads
    /// (§V-5), with the fd path as the per-read fallback when any member
    /// is not resident or the retry budget exhausts.
    bool rdpmc_group = false;
    /// Members' global value indices in sibling order, flattened into
    /// PerfState::plan_members.
    std::size_t member_begin = 0;
    std::size_t member_count = 0;
  };

  struct PerfState final : ComponentState {
    std::vector<Slot> slots;
    /// One entry per PMU type normally; one per event when multiplexed,
    /// hence sized for the worst case.
    FixedVector<Group, kMaxEventSetEvents> groups;
    /// Cached read fan-out (mutable: read() is logically const).
    /// Invalidated by any group-layout change (open_slot / close_all).
    mutable bool read_plan_valid = false;
    mutable std::vector<ReadPlanEntry> read_plan;
    mutable std::vector<std::size_t> plan_members;
    /// Per plan-member mmap'd user page (nullptr when unmapped), in
    /// plan_members order; populated at plan build, pointers live until
    /// the fds close (which also invalidates the plan).
    mutable std::vector<const simkernel::PerfUserPage*> plan_pages;
  };

  static PerfState& perf_state(ComponentState& state) {
    return static_cast<PerfState&>(state);
  }
  static const PerfState& perf_state(const ComponentState& state) {
    return static_cast<const PerfState&>(state);
  }

  Status install_handler(const Slot& slot) const;
  /// Map the sample ring of a freshly opened sampling slot. Denial is
  /// absorbed (ring_denied), never surfaced: ISSUE-10 graceful
  /// degradation to counting mode.
  void map_ring(Slot& slot) const;
  void build_read_plan(const PerfState& state) const;
};

}  // namespace hetpapi::papi
