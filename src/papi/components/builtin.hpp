// Registration of the built-in components. Adding a component to the
// library is exactly: write the component under src/papi/components/
// and add one register_component line here — the EventSet core and the
// Library facade never change.
#pragma once

#include "papi/component.hpp"

namespace hetpapi::papi {

/// Register every built-in component the backend can host. Gated on
/// Backend::supports_component so a real-Linux build without RAPL
/// permissions simply lacks the component, mirroring how real PAPI
/// disables components at init.
Status register_builtin_components(ComponentRegistry& registry,
                                   const ComponentEnv& env);

}  // namespace hetpapi::papi
