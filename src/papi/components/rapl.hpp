// The RAPL component: package-scope energy counters. Events bind to the
// PMU's designated cpu regardless of the EventSet's target, and the
// component lock is package-global — one running RAPL EventSet at a
// time, whatever thread holds it.
#pragma once

#include "papi/components/perf_backed.hpp"

namespace hetpapi::papi {

class RaplComponent final : public PerfBackedComponent {
 public:
  using PerfBackedComponent::PerfBackedComponent;

  std::string_view name() const override { return "rapl"; }
  ComponentScope scope() const override { return ComponentScope::kPackage; }
  ComponentCaps caps() const override { return {false, false, true}; }
  bool serves(const pfm::ActivePmu& pmu) const override {
    return pmu.table->component == "rapl";
  }

 protected:
  Expected<Binding> bind(const pfm::ActivePmu& pmu,
                         const MeasureTarget& target) const override {
    (void)target;
    return Binding{simkernel::kInvalidTid,
                   pmu.cpus.empty() ? 0 : pmu.cpus.front()};
  }
};

}  // namespace hetpapi::papi
