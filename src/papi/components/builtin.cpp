#include "papi/components/builtin.hpp"

#include "papi/backend.hpp"
#include "papi/components/perf_core.hpp"
#include "papi/components/rapl.hpp"
#include "papi/components/sysinfo.hpp"

namespace hetpapi::papi {

Status register_builtin_components(ComponentRegistry& registry,
                                   const ComponentEnv& env) {
  const Backend& backend = *env.backend;
  if (backend.supports_component("perf_event")) {
    HETPAPI_RETURN_IF_ERROR(
        registry.register_component(std::make_unique<PerfCoreComponent>(env)));
  }
  if (backend.supports_component("rapl")) {
    HETPAPI_RETURN_IF_ERROR(
        registry.register_component(std::make_unique<RaplComponent>(env)));
  }
  // §V-3, completed: uncore PMUs are served by perf_event outright, so
  // uncore events fold into ordinary mixed EventSets. The historical
  // exclusive perf_event_uncore component is retired.
  if (backend.supports_component("sysinfo")) {
    HETPAPI_RETURN_IF_ERROR(
        registry.register_component(std::make_unique<SysinfoComponent>(env)));
  }
  return Status::ok();
}

}  // namespace hetpapi::papi
