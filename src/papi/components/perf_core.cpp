#include "papi/components/perf_core.hpp"

namespace hetpapi::papi {

bool PerfCoreComponent::serves(const pfm::ActivePmu& pmu) const {
  if (pmu.table->component == "perf_event") return true;
  // §V-3: the separate uncore component is retired; uncore PMUs join
  // ordinary EventSets through this component.
  return pmu.table->component == "uncore";
}

Expected<PerfCoreComponent::Binding> PerfCoreComponent::bind(
    const pfm::ActivePmu& pmu, const MeasureTarget& target) const {
  // Uncore PMUs are package-scope even when folded into this component:
  // they bind to their designated cpu, not the measured thread.
  if (pmu.table->component == "uncore") {
    return Binding{simkernel::kInvalidTid,
                   pmu.cpus.empty() ? 0 : pmu.cpus.front()};
  }
  if (target.cpu >= 0) {
    // cpu-attached EventSet: count everything executing on that cpu.
    return Binding{simkernel::kInvalidTid, target.cpu};
  }
  if (target.tid == simkernel::kInvalidTid) {
    return make_error(StatusCode::kInvalidArgument,
                      "EventSet has no target thread; call attach() first");
  }
  return Binding{target.tid, -1};
}

}  // namespace hetpapi::papi
