// The sysinfo software component: system-wide readings served straight
// from the procfs/sysfs surface through the backend's Host — no
// perf_event syscall anywhere. It exists as proof that the component
// registry absorbs a new measurement domain with zero edits to the
// EventSet core or the Library facade (the paper's §IV-E argument for
// the framework/components split; real PAPI ships the same idea as its
// "sysinfo"-style software components).
//
// Events (PMU "sysinfo" in the pfm tables):
//   SYS_CTX_SWITCHES  system-wide context switches (/proc/stat "ctxt")
//   SYS_CPU_TIME_MS   aggregate busy cpu time (/proc/stat "cpu" line)
//   PKG_TEMP_MC       package/SoC temperature in millidegrees C
//                     (the x86_pkg_temp / soc-thermal zone)
//
// Counter events report deltas from the start() baseline and freeze at
// stop(), like disabled perf counters; PKG_TEMP_MC is a gauge and
// always reports the instantaneous reading. Works identically on the
// simulated kernel (deterministic) and the real-Linux backend.
#pragma once

#include "papi/component.hpp"

namespace hetpapi::papi {

class SysinfoComponent final : public Component {
 public:
  explicit SysinfoComponent(ComponentEnv env) : env_(env) {}

  std::string_view name() const override { return "sysinfo"; }
  ComponentScope scope() const override { return ComponentScope::kPackage; }
  ComponentCaps caps() const override { return {false, false, false}; }
  bool serves(const pfm::ActivePmu& pmu) const override {
    return pmu.table->component == "sysinfo";
  }

  std::unique_ptr<ComponentState> create_state() const override;
  Status open_slot(ComponentState& state, const SlotRequest& request,
                   const MeasureTarget& target) override;
  Status close_all(ComponentState& state) override;
  Status start(ComponentState& state) override;
  Status stop(ComponentState& state) override;
  Status reset(ComponentState& state) override;
  Status read(const ComponentState& state, bool scale,
              std::vector<double>& values,
              std::vector<std::uint8_t>* valid = nullptr) const override;
  /// Software reads hold no kernel groups: they add nothing to the
  /// per-call overhead model and never perturb the measured thread.
  int group_count(const ComponentState& state) const override {
    (void)state;
    return 0;
  }

 private:
  enum class Reading { kContextSwitches, kCpuTimeMs, kPackageTempMc };

  struct Slot {
    SlotRequest request;
    Reading reading = Reading::kContextSwitches;
    /// Resolved thermal-zone temp path (PKG_TEMP_MC only).
    std::string path;
    double baseline = 0.0;
    double frozen = 0.0;
  };

  struct SysinfoState final : ComponentState {
    std::vector<Slot> slots;
    bool running = false;
  };

  Expected<double> read_raw(const Slot& slot) const;
  Expected<std::string> find_thermal_zone() const;

  ComponentEnv env_;
};

}  // namespace hetpapi::papi
