// sysdetect component: enumerates the measurement-relevant devices of
// the machine (core types, PMUs, RAPL domains) for tools that want a
// structured inventory — the reporting surface the paper lists among
// the places PAPI must expose heterogeneity (§IV-B).
#pragma once

#include <string>
#include <vector>

#include "papi/component.hpp"
#include "papi/detect.hpp"
#include "pfm/pfmlib.hpp"

namespace hetpapi::papi {

struct PmuDeviceInfo {
  std::string pfm_name;
  std::string sysfs_name;
  std::uint32_t perf_type = 0;
  bool is_core = false;
  /// Detected core-type label this PMU serves ("" for non-core PMUs) —
  /// the PMU -> core-type join §V-2's per-core-type reporting rests on.
  std::string core_type;
  std::vector<int> cpus;
  int num_events = 0;
};

/// One row of the papi_component_avail-style listing.
struct ComponentAvailInfo {
  std::string name;
  ComponentScope scope = ComponentScope::kThread;
  ComponentCaps caps;
  /// Active PMUs served by this component.
  std::vector<std::string> pmus;
};

struct SysdetectReport {
  HardwareInfo hardware;
  std::vector<PmuDeviceInfo> pmus;
  /// Registered components (empty when the report was built without a
  /// registry).
  std::vector<ComponentAvailInfo> components;

  /// Render as the papi_sysdetect-style text report.
  std::string to_text() const;
};

SysdetectReport build_sysdetect_report(const pfm::Host& host,
                                       const pfm::PfmLibrary& pfm);

/// Overload that also walks a component registry, filling the
/// `components` section the way papi_component_avail reports them.
SysdetectReport build_sysdetect_report(const pfm::Host& host,
                                       const pfm::PfmLibrary& pfm,
                                       const ComponentRegistry& registry);

}  // namespace hetpapi::papi
