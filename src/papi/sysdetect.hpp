// sysdetect component: enumerates the measurement-relevant devices of
// the machine (core types, PMUs, RAPL domains) for tools that want a
// structured inventory — the reporting surface the paper lists among
// the places PAPI must expose heterogeneity (§IV-B).
#pragma once

#include <string>
#include <vector>

#include "papi/detect.hpp"
#include "pfm/pfmlib.hpp"

namespace hetpapi::papi {

struct PmuDeviceInfo {
  std::string pfm_name;
  std::string sysfs_name;
  std::uint32_t perf_type = 0;
  bool is_core = false;
  std::vector<int> cpus;
  int num_events = 0;
};

struct SysdetectReport {
  HardwareInfo hardware;
  std::vector<PmuDeviceInfo> pmus;

  /// Render as the papi_sysdetect-style text report.
  std::string to_text() const;
};

SysdetectReport build_sysdetect_report(const pfm::Host& host,
                                       const pfm::PfmLibrary& pfm);

}  // namespace hetpapi::papi
