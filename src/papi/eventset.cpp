#include "papi/eventset.hpp"

#include <algorithm>

#include "base/strings.hpp"

namespace hetpapi::papi {

Status EventSetCore::attach(Tid tid) {
  if (running()) {
    return make_error(StatusCode::kAlreadyRunning, "EventSet is running");
  }
  target_ = tid;
  target_cpu_ = -1;
  if (!natives_.empty()) return reopen_all();
  return Status::ok();
}

Status EventSetCore::attach_cpu(int cpu) {
  if (running()) {
    return make_error(StatusCode::kAlreadyRunning, "EventSet is running");
  }
  target_cpu_ = cpu;
  target_ = simkernel::kInvalidTid;
  if (!natives_.empty()) return reopen_all();
  return Status::ok();
}

EventSetCore::ComponentUse& EventSetCore::use_for(Component* component) {
  for (ComponentUse& use : uses_) {
    if (use.component == component) return use;
  }
  uses_.push_back(ComponentUse{component, component->create_state()});
  return uses_.back();
}

Status EventSetCore::open_slot(std::size_t native_idx) {
  NativeSlot& slot = natives_[native_idx];
  SlotRequest request;
  request.enc = slot.enc;
  request.global_index = native_idx;
  request.sample_period = slot.sample_period;
  request.eventset_id = id_;
  request.user_event_index = slot.user_event_index;
  request.overflow = overflow_callback_ ? &overflow_callback_ : nullptr;
  ComponentUse& use = use_for(slot.component);
  return slot.component->open_slot(*use.state, request, target());
}

Status EventSetCore::add_native(const pfm::Encoding& enc, int sign,
                                UserEvent& user) {
  if (natives_.full()) {
    return make_error(StatusCode::kNoMemory, "EventSet is full");
  }
  const pfm::ActivePmu* pmu = pfm_->find_pmu(enc.pmu_name);
  if (pmu == nullptr) {
    return make_error(StatusCode::kBug, "encoding references unknown PMU");
  }
  Component* component = registry_->component_for(*pmu);
  if (component == nullptr) {
    return make_error(StatusCode::kNotSupported,
                      "no registered component serves PMU " + enc.pmu_name);
  }

  // Legacy single-PMU constraint: without hybrid support an EventSet is
  // pinned to the PMU of its first event — "you cannot have P- and
  // E-core events in the same EventSet, nor can you have things like
  // CPU and RAPL power events in the same EventSet" (PAPI_ECNFLCT).
  if (!config_->hybrid_support) {
    for (const NativeSlot& slot : natives_) {
      if (slot.enc.perf_type != enc.perf_type) {
        return make_error(
            StatusCode::kConflict,
            "EventSet already contains " + slot.enc.pmu_name +
                " events; adding " + enc.pmu_name +
                " requires heterogeneous support (PAPI_ECNFLCT)");
      }
    }
  }

  NativeSlot slot;
  slot.enc = enc;
  slot.component = component;
  slot.user_event_index = static_cast<int>(user_events_.size());
  natives_.push_back(slot);
  const auto native_idx = static_cast<int>(natives_.size() - 1);

  const Status opened = open_slot(static_cast<std::size_t>(native_idx));
  if (!opened.is_ok()) {
    natives_.pop_back();
    return opened;
  }
  user.native_indices.push_back(native_idx);
  user.native_signs.push_back(sign);
  return Status::ok();
}

Status EventSetCore::add_user_event(
    std::string_view display_name, bool is_preset,
    const std::vector<std::pair<pfm::Encoding, int>>& constituents) {
  UserEvent user;
  user.display_name = std::string(display_name);
  user.is_preset = is_preset;

  // All-or-nothing by default: remember how much to roll back on
  // failure. With degrade_partial_presets a multi-constituent (derived
  // hybrid) event instead keeps whatever constituents opened — one
  // refusing core-type PMU narrows the event rather than rejecting it —
  // as long as at least one opened. kConflict stays fatal either way:
  // a PMU-mix violation is a caller error, not a flaky kernel.
  const bool may_degrade =
      config_->degrade_partial_presets && constituents.size() > 1;
  const std::size_t natives_before = natives_.size();
  Status first_failure = Status::ok();
  for (const auto& [enc, sign] : constituents) {
    const Status added = add_native(enc, sign, user);
    if (!added.is_ok()) {
      if (may_degrade && added.code() != StatusCode::kConflict) {
        if (first_failure.is_ok()) first_failure = added;
        user.missing.push_back(
            MissingConstituent{enc, sign, added.to_string()});
        continue;
      }
      (void)rollback_natives(natives_before);
      return added;
    }
  }
  if (user.native_indices.empty()) {
    // Every constituent refused — nothing to degrade to.
    (void)rollback_natives(natives_before);
    return first_failure;
  }
  user_events_.push_back(std::move(user));
  return Status::ok();
}

Status EventSetCore::remove_event(std::string_view name) {
  std::size_t user_idx = user_events_.size();
  for (std::size_t i = 0; i < user_events_.size(); ++i) {
    if (iequals(user_events_[i].display_name, name)) {
      user_idx = i;
      break;
    }
  }
  if (user_idx == user_events_.size()) {
    return make_error(StatusCode::kNotFound,
                      std::string(name) + " is not in the EventSet");
  }

  // Tear down every component's slots first: they reference native
  // slots by index, and those indices are about to shift.
  HETPAPI_RETURN_IF_ERROR(close_everything());

  // Drop the removed event's native slots, highest index first so the
  // lower ones stay valid while erasing.
  const UserEvent removed = std::move(user_events_[user_idx]);
  std::vector<int> dropped(removed.native_indices.begin(),
                           removed.native_indices.end());
  std::sort(dropped.begin(), dropped.end());
  for (std::size_t i = dropped.size(); i-- > 0;) {
    natives_.erase_at(static_cast<std::size_t>(dropped[i]));
  }
  user_events_.erase(user_events_.begin() +
                     static_cast<std::ptrdiff_t>(user_idx));

  // Remap the survivors: each native slot's owning user event shifts
  // down past the removed one; each user event's native indices shift
  // down past every dropped slot below them.
  for (NativeSlot& slot : natives_) {
    if (slot.user_event_index > static_cast<int>(user_idx)) {
      --slot.user_event_index;
    }
  }
  for (UserEvent& user : user_events_) {
    for (std::size_t i = 0; i < user.native_indices.size(); ++i) {
      const int idx = user.native_indices[i];
      int shift = 0;
      for (const int d : dropped) {
        if (d < idx) ++shift;
      }
      user.native_indices[i] = idx - shift;
    }
  }

  // Re-open the survivors in order, rebuilding the groups.
  return reopen_slots_or_empty();
}

Status EventSetCore::close_everything() {
  Status first_error = Status::ok();
  for (ComponentUse& use : uses_) {
    const Status s = use.component->close_all(*use.state);
    if (!s.is_ok() && first_error.is_ok()) first_error = s;
  }
  uses_.clear();
  return first_error;
}

Status EventSetCore::reopen_all() {
  HETPAPI_RETURN_IF_ERROR(close_everything());
  return reopen_slots_or_empty();
}

Status EventSetCore::try_open_slots() {
  for (std::size_t i = 0; i < natives_.size(); ++i) {
    const Status opened = open_slot(i);
    if (!opened.is_ok()) {
      // Leak-free but layout-preserving: the caller decides whether to
      // amend the layout and retry (transactional set_overflow) or give
      // up (reopen_slots_or_empty).
      (void)close_everything();
      return opened;
    }
  }
  return Status::ok();
}

Status EventSetCore::reopen_slots_or_empty() {
  const Status opened = try_open_slots();
  if (!opened.is_ok()) {
    // The prior layout cannot be restored (e.g. the backend now
    // refuses an open that used to succeed). A half-open set would
    // serve stale values for the unopened slots, so fall back to the
    // one state that is always consistent and leak-free: empty.
    natives_.clear();
    user_events_.clear();
    return make_error(StatusCode::kComponent,
                      "could not restore the EventSet layout (" +
                          opened.to_string() +
                          "); the set was emptied, no fds leaked");
  }
  return Status::ok();
}

Status EventSetCore::rollback_natives(std::size_t natives_before) {
  // The components' group bookkeeping may reference the slots being
  // dropped, so tear everything down and rebuild from the survivors.
  (void)close_everything();
  while (natives_.size() > natives_before) natives_.pop_back();
  return reopen_slots_or_empty();
}

Status EventSetCore::set_multiplex() {
  if (running()) {
    return make_error(StatusCode::kAlreadyRunning, "EventSet is running");
  }
  if (multiplexed_) return Status::ok();
  for (const NativeSlot& slot : natives_) {
    if (!slot.component->caps().multiplex) {
      return make_error(StatusCode::kNotSupported,
                        "component " + std::string(slot.component->name()) +
                            " does not support multiplexing");
    }
  }
  multiplexed_ = true;
  return reopen_all();
}

Status EventSetCore::set_overflow(int user_event_index,
                                  std::uint64_t threshold,
                                  OverflowCallback callback) {
  if (running()) {
    return make_error(StatusCode::kAlreadyRunning, "EventSet is running");
  }
  if (user_event_index < 0 ||
      user_event_index >= static_cast<int>(user_events_.size())) {
    return make_error(StatusCode::kInvalidArgument, "no such event index");
  }
  if (threshold == 0) {
    return make_error(StatusCode::kInvalidArgument,
                      "overflow threshold must be positive");
  }
  const UserEvent& user =
      user_events_[static_cast<std::size_t>(user_event_index)];
  for (int idx : user.native_indices) {
    const Component* c = natives_[static_cast<std::size_t>(idx)].component;
    if (!c->caps().overflow) {
      return make_error(StatusCode::kNotSupported,
                        "component " + std::string(c->name()) +
                            " does not support overflow sampling");
    }
  }
  // Snapshot for rollback: arming is transactional. If the sampling
  // layout cannot be opened (a constituent refuses sample_period, the
  // handler install fails mid-set), the previous counting configuration
  // is restored instead of emptying a working set.
  FixedVector<std::uint64_t, kMaxEventSetEvents> old_periods;
  for (const NativeSlot& slot : natives_) {
    old_periods.push_back(slot.sample_period);
  }
  OverflowCallback old_callback = overflow_callback_;

  overflow_callback_ = std::move(callback);
  for (int idx : user.native_indices) {
    natives_[static_cast<std::size_t>(idx)].sample_period = threshold;
  }
  // Re-open so the kernel sees the sampling configuration.
  HETPAPI_RETURN_IF_ERROR(close_everything());
  const Status armed = try_open_slots();
  if (armed.is_ok()) return Status::ok();

  // Roll back to the counting layout. Only a failure of the restoration
  // itself (the backend now refuses opens that used to succeed) falls
  // through to the empty state.
  for (std::size_t i = 0; i < natives_.size(); ++i) {
    natives_[i].sample_period = old_periods[i];
  }
  overflow_callback_ = std::move(old_callback);
  HETPAPI_RETURN_IF_ERROR(reopen_slots_or_empty());
  return armed;
}

Status EventSetCore::drain_samples(SampleBatch& batch) {
  bool sampling = false;
  for (const NativeSlot& slot : natives_) {
    if (slot.sample_period > 0) {
      sampling = true;
      break;
    }
  }
  if (!sampling) {
    return make_error(StatusCode::kInvalidArgument,
                      "EventSet has no sampling events; call set_overflow "
                      "first");
  }
  for (ComponentUse& use : uses_) {
    if (!use.component->caps().overflow) continue;
    const Status drained = use.component->drain_samples(*use.state, batch);
    if (!drained.is_ok() && drained.code() != StatusCode::kNotSupported) {
      return drained;
    }
  }
  return Status::ok();
}

Status EventSetCore::start() {
  if (running()) {
    return make_error(StatusCode::kAlreadyRunning, "already started");
  }
  if (natives_.empty()) {
    return make_error(StatusCode::kInvalidArgument, "EventSet is empty");
  }

  // One running EventSet per component per measured thread (package
  // scope components hold a genuinely global lock). Check every lock
  // before enabling anything so a conflict leaves the set untouched.
  const MeasureTarget tgt = target();
  for (const ComponentUse& use : uses_) {
    HETPAPI_RETURN_IF_ERROR(locks_->check(*use.component, tgt, id_));
  }

  // Transactional enable: a component that refuses to start rolls the
  // already-started ones back, so a failed start() leaves no counter
  // silently running and the set cleanly stopped.
  for (std::size_t j = 0; j < uses_.size(); ++j) {
    const Status started = uses_[j].component->start(*uses_[j].state);
    if (!started.is_ok()) {
      for (std::size_t k = j; k-- > 0;) {
        (void)uses_[k].component->stop(*uses_[k].state);
      }
      return started;
    }
  }
  for (const ComponentUse& use : uses_) {
    locks_->acquire(*use.component, tgt, id_);
  }
  state_ = SetState::kRunning;
  // The group layout cannot change while running; every per-call
  // overhead charge until stop() uses this cached count.
  running_group_count_ = static_cast<std::uint64_t>(group_count());

  if (target_ != simkernel::kInvalidTid) {
    backend_->charge_call_overhead(
        target_,
        config_->call_overhead_instructions * running_group_count_);
  }
  return Status::ok();
}

Expected<std::vector<long long>> EventSetCore::stop() {
  if (!running()) {
    return make_error(StatusCode::kNotRunning, "EventSet is not running");
  }
  auto values = collect();
  if (!values) return values.status();

  const MeasureTarget tgt = target();
  for (ComponentUse& use : uses_) {
    HETPAPI_RETURN_IF_ERROR(use.component->stop(*use.state));
    locks_->release(*use.component, tgt);
  }
  state_ = SetState::kStopped;

  if (target_ != simkernel::kInvalidTid) {
    backend_->charge_call_overhead(
        target_,
        config_->call_overhead_instructions * running_group_count_);
  }
  return values;
}

void EventSetCore::charge_read_overhead() const {
  // Skip the virtual-call round trip entirely when the overhead model
  // is off (the benches set call_overhead_instructions = 0): measuring,
  // not modelling.
  if (config_->call_overhead_instructions == 0) return;
  if (target_ == simkernel::kInvalidTid || !running()) return;
  backend_->charge_call_overhead(
      target_, config_->call_overhead_instructions * running_group_count_);
}

Expected<std::vector<long long>> EventSetCore::read() const {
  auto values = collect();
  if (values) charge_read_overhead();
  return values;
}

Status EventSetCore::read_into(std::vector<long long>& out) const {
  HETPAPI_RETURN_IF_ERROR(collect_natives());
  charge_read_overhead();
  fold_user_events(out);
  return Status::ok();
}

Expected<std::vector<QualifiedReading>> EventSetCore::read_qualified() const {
  std::vector<QualifiedReading> out;
  HETPAPI_RETURN_IF_ERROR(read_qualified_into(out));
  return out;
}

Status EventSetCore::read_qualified_into(
    std::vector<QualifiedReading>& out) const {
  // One kernel collection — the same fan-out and per-call charge as
  // read() — then keep the per-native values instead of folding them
  // away, so the breakdown and the total come from the same instant.
  // Collection is tolerant: a constituent that cannot deliver comes
  // back as an invalid part (value 0, excluded from the total) rather
  // than failing the whole reading, and constituents that never opened
  // (degraded add) are reported the same way.
  //
  // `out` is updated in place: the reading/part structure is fixed for
  // the lifetime of the set's layout, so a reused buffer only has its
  // values rewritten — the string labels are verified (cheap equality on
  // match) and repaired only when the layout actually changed under the
  // buffer. This is what takes the qualified read from ~700 ns of
  // per-call allocations down to the plain-read cost.
  HETPAPI_RETURN_IF_ERROR(collect_checked());
  charge_read_overhead();

  if (out.size() != user_events_.size()) out.resize(user_events_.size());
  for (std::size_t u = 0; u < user_events_.size(); ++u) {
    const UserEvent& user = user_events_[u];
    QualifiedReading& reading = out[u];
    const std::size_t parts_needed =
        user.native_indices.size() + user.missing.size();
    if (reading.parts.size() != parts_needed) {
      reading.parts.clear();
      reading.parts.resize(parts_needed);
    }
    if (reading.display_name != user.display_name) {
      reading.display_name = user.display_name;
    }
    reading.is_preset = user.is_preset;
    reading.degraded = !user.missing.empty();
    double sum = 0.0;
    for (std::size_t i = 0; i < user.native_indices.size(); ++i) {
      const auto native_idx =
          static_cast<std::size_t>(user.native_indices[i]);
      const NativeSlot& slot = natives_[native_idx];
      QualifiedValue& part = reading.parts[i];
      if (part.native_name != slot.enc.canonical_name) {
        part.native_name = slot.enc.canonical_name;
        part.pmu_name = slot.enc.pmu_name;
        part.core_type = core_type_resolver_
                             ? core_type_resolver_(slot.enc.pmu_name)
                             : std::string();
      }
      part.sign = user.native_signs[i];
      part.valid = valid_scratch_[native_idx] != 0;
      if (part.valid) {
        part.value = static_cast<long long>(native_scratch_[native_idx]);
        sum += user.native_signs[i] * native_scratch_[native_idx];
      } else {
        part.value = 0;
        reading.degraded = true;
      }
    }
    for (std::size_t m = 0; m < user.missing.size(); ++m) {
      const MissingConstituent& missing = user.missing[m];
      QualifiedValue& part =
          reading.parts[user.native_indices.size() + m];
      if (part.native_name != missing.enc.canonical_name) {
        part.native_name = missing.enc.canonical_name;
        part.pmu_name = missing.enc.pmu_name;
        part.core_type = core_type_resolver_
                             ? core_type_resolver_(missing.enc.pmu_name)
                             : std::string();
      }
      part.sign = missing.sign;
      part.valid = false;
      part.value = 0;
    }
    reading.total = static_cast<long long>(sum);
  }
  return Status::ok();
}

Status EventSetCore::accum(std::vector<long long>& values) {
  if (!running()) {
    return make_error(StatusCode::kNotRunning, "EventSet is not running");
  }
  if (values.size() != user_events_.size()) {
    return make_error(StatusCode::kInvalidArgument,
                      "values array must have one slot per event");
  }
  auto current = collect();
  if (!current) return current.status();
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] += (*current)[i];
  }
  return reset();
}

Status EventSetCore::reset() {
  for (ComponentUse& use : uses_) {
    HETPAPI_RETURN_IF_ERROR(use.component->reset(*use.state));
  }
  return Status::ok();
}

bool EventSetCore::degraded() const {
  for (const UserEvent& user : user_events_) {
    if (!user.missing.empty()) return true;
  }
  return false;
}

Status EventSetCore::collect_checked() const {
  if (native_scratch_.size() != natives_.size()) {
    native_scratch_.assign(natives_.size(), 0.0);
  }
  valid_scratch_.assign(natives_.size(), 1);
  const bool scale = multiplexed_ && config_->scale_multiplexed;
  for (const ComponentUse& use : uses_) {
    HETPAPI_RETURN_IF_ERROR(use.component->read(
        *use.state, scale, native_scratch_, &valid_scratch_));
  }
  return Status::ok();
}

Expected<Reading> EventSetCore::read_checked() const {
  HETPAPI_RETURN_IF_ERROR(collect_checked());
  charge_read_overhead();

  Reading out;
  out.values.reserve(user_events_.size());
  out.value_degraded.reserve(user_events_.size());
  for (const UserEvent& user : user_events_) {
    double sum = 0.0;
    bool slot_degraded = !user.missing.empty();
    for (std::size_t i = 0; i < user.native_indices.size(); ++i) {
      const auto native_idx =
          static_cast<std::size_t>(user.native_indices[i]);
      if (valid_scratch_[native_idx] != 0) {
        sum += user.native_signs[i] * native_scratch_[native_idx];
      } else {
        slot_degraded = true;
      }
    }
    out.values.push_back(static_cast<long long>(sum));
    out.value_degraded.push_back(slot_degraded ? 1 : 0);
    out.degraded = out.degraded || slot_degraded;
  }
  return out;
}

Status EventSetCore::collect_natives() const {
  // Gather per-native raw/scaled values across every component in use.
  // Every native belongs to exactly one component which writes its slot
  // on success, so the scratch needs sizing but not zero-filling on
  // this hot path.
  if (native_scratch_.size() != natives_.size()) {
    native_scratch_.assign(natives_.size(), 0.0);
  }
  const bool scale = multiplexed_ && config_->scale_multiplexed;
  for (const ComponentUse& use : uses_) {
    HETPAPI_RETURN_IF_ERROR(
        use.component->read(*use.state, scale, native_scratch_));
  }
  return Status::ok();
}

void EventSetCore::fold_user_events(std::vector<long long>& out) const {
  out.resize(user_events_.size());  // no-op (no allocation) once sized
  for (std::size_t u = 0; u < user_events_.size(); ++u) {
    const UserEvent& user = user_events_[u];
    double sum = 0.0;
    for (std::size_t i = 0; i < user.native_indices.size(); ++i) {
      sum += user.native_signs[i] *
             native_scratch_[static_cast<std::size_t>(user.native_indices[i])];
    }
    out[u] = static_cast<long long>(sum);
  }
}

Expected<std::vector<long long>> EventSetCore::collect() const {
  std::vector<long long> out;
  HETPAPI_RETURN_IF_ERROR(collect_natives());
  fold_user_events(out);
  return out;
}

Expected<std::vector<EventInfo>> EventSetCore::info() const {
  std::vector<EventInfo> out;
  for (const UserEvent& user : user_events_) {
    EventInfo info;
    info.display_name = user.display_name;
    info.is_preset = user.is_preset;
    for (int idx : user.native_indices) {
      info.native_names.push_back(
          natives_[static_cast<std::size_t>(idx)].enc.canonical_name);
    }
    info.degraded = !user.missing.empty();
    for (const MissingConstituent& missing : user.missing) {
      info.missing_names.push_back(missing.enc.canonical_name);
    }
    out.push_back(std::move(info));
  }
  return out;
}

int EventSetCore::group_count() const {
  int total = 0;
  for (const ComponentUse& use : uses_) {
    total += use.component->group_count(*use.state);
  }
  return total;
}

}  // namespace hetpapi::papi
