#include "papi/sysdetect.hpp"

#include "base/strings.hpp"

namespace hetpapi::papi {

SysdetectReport build_sysdetect_report(const pfm::Host& host,
                                       const pfm::PfmLibrary& pfm) {
  SysdetectReport report;
  if (auto hw = get_hardware_info(host)) report.hardware = std::move(*hw);

  for (const pfm::ActivePmu& pmu : pfm.pmus()) {
    PmuDeviceInfo info;
    info.pfm_name = pmu.table->pfm_name;
    info.sysfs_name = pmu.sysfs_name;
    info.perf_type = pmu.perf_type;
    info.is_core = pmu.is_core;
    if (pmu.is_core) {
      info.core_type = core_type_label(report.hardware.detection, pmu.cpus);
    }
    info.cpus = pmu.cpus;
    info.num_events = static_cast<int>(pfm.event_names(pmu).size());
    report.pmus.push_back(std::move(info));
  }
  return report;
}

SysdetectReport build_sysdetect_report(const pfm::Host& host,
                                       const pfm::PfmLibrary& pfm,
                                       const ComponentRegistry& registry) {
  SysdetectReport report = build_sysdetect_report(host, pfm);
  for (const auto& component : registry.components()) {
    ComponentAvailInfo info;
    info.name = std::string(component->name());
    info.scope = component->scope();
    info.caps = component->caps();
    for (const pfm::ActivePmu& pmu : pfm.pmus()) {
      if (registry.component_for(pmu) == component.get()) {
        info.pmus.push_back(pmu.table->pfm_name);
      }
    }
    report.components.push_back(std::move(info));
  }
  return report;
}

std::string SysdetectReport::to_text() const {
  std::string out;
  out += "=== sysdetect report ===\n";
  out += str_format("model        : %s\n", hardware.model_string.c_str());
  out += str_format("logical cpus : %d\n", hardware.total_cpus);
  out += str_format("hybrid       : %s\n", hardware.hybrid ? "yes" : "no");
  out += str_format(
      "detected via : %s\n",
      std::string(to_string(hardware.detection.method)).c_str());
  for (const DetectedCoreType& type : hardware.detection.core_types) {
    out += str_format("  core type %-16s cpus %s\n", type.label.c_str(),
                      format_cpulist(type.cpus).c_str());
  }
  out += "PMUs:\n";
  for (const PmuDeviceInfo& pmu : pmus) {
    std::string role;
    if (pmu.is_core) {
      role = pmu.core_type.empty() ? "core PMU, "
                                   : "core PMU [" + pmu.core_type + "], ";
    }
    out += str_format("  %-10s (sysfs %-16s type %2u) %s%d events, cpus %s\n",
                      pmu.pfm_name.c_str(), pmu.sysfs_name.c_str(),
                      pmu.perf_type, role.c_str(),
                      pmu.num_events,
                      pmu.cpus.empty() ? "all" : format_cpulist(pmu.cpus).c_str());
  }
  if (!components.empty()) {
    out += "Components:\n";
    for (const ComponentAvailInfo& comp : components) {
      std::string pmu_list;
      for (const std::string& pmu : comp.pmus) {
        if (!pmu_list.empty()) pmu_list += ",";
        pmu_list += pmu;
      }
      out += str_format("  %-18s scope %-8s caps [%s%s%s] pmus: %s\n",
                        comp.name.c_str(),
                        std::string(to_string(comp.scope)).c_str(),
                        comp.caps.rdpmc ? " rdpmc" : "",
                        comp.caps.overflow ? " overflow" : "",
                        comp.caps.multiplex ? " multiplex" : "",
                        pmu_list.empty() ? "(none)" : pmu_list.c_str());
    }
  }
  return out;
}

}  // namespace hetpapi::papi
