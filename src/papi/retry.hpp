// Bounded retry of transient backend failures.
//
// Real perf_event syscalls fail with EINTR/EAGAIN under signal delivery
// and scheduler pressure; the backend layer maps those onto
// StatusCode::kInterrupted. Every library call site goes through these
// helpers so a transient blip never surfaces to the user, while a
// persistent failure (more than `max_attempts` consecutive transients)
// still does — an unbounded loop would hang on a counter that keeps
// getting interrupted.
#pragma once

#include "papi/backend.hpp"

namespace hetpapi::papi {

inline Expected<int> open_with_retry(Backend& backend,
                                     const PerfEventAttr& attr, Tid tid,
                                     int cpu, int group_fd,
                                     std::uint64_t flags, int max_attempts) {
  for (int attempt = 1;; ++attempt) {
    auto fd = backend.perf_event_open(attr, tid, cpu, group_fd, flags);
    if (fd || fd.status().code() != StatusCode::kInterrupted ||
        attempt >= max_attempts) {
      return fd;
    }
  }
}

inline Status ioctl_with_retry(Backend& backend, int fd, PerfIoctl op,
                               std::uint32_t flags, int max_attempts) {
  for (int attempt = 1;; ++attempt) {
    const Status s = backend.perf_ioctl(fd, op, flags);
    if (s.is_ok() || s.code() != StatusCode::kInterrupted ||
        attempt >= max_attempts) {
      return s;
    }
  }
}

inline Expected<PerfValue> read_with_retry(Backend& backend, int fd,
                                           int max_attempts) {
  for (int attempt = 1;; ++attempt) {
    auto value = backend.perf_read(fd);
    if (value || value.status().code() != StatusCode::kInterrupted ||
        attempt >= max_attempts) {
      return value;
    }
  }
}

inline Expected<std::vector<PerfValue>> read_group_with_retry(
    Backend& backend, int fd, int max_attempts) {
  for (int attempt = 1;; ++attempt) {
    auto values = backend.perf_read_group(fd);
    if (values || values.status().code() != StatusCode::kInterrupted ||
        attempt >= max_attempts) {
      return values;
    }
  }
}

}  // namespace hetpapi::papi
