// Backend seam between the measurement library and a kernel.
//
// The library's logic (EventSet bookkeeping, multi-PMU group splitting,
// preset derivation, detection) is identical whether it talks to the
// simulated hybrid kernel or to a real Linux perf_event via syscalls;
// only this interface changes. That mirrors the paper's claim that the
// PAPI-side work is a client-protocol change over unchanged kernel
// semantics.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "base/status.hpp"
#include "pfm/host.hpp"
#include "simkernel/perf_abi.hpp"
#include "simkernel/thread.hpp"

namespace hetpapi::papi {

using simkernel::PerfEventAttr;
using simkernel::PerfIoctl;
using simkernel::PerfValue;
using simkernel::Tid;

class Backend {
 public:
  virtual ~Backend() = default;

  virtual Expected<int> perf_event_open(const PerfEventAttr& attr, Tid tid,
                                        int cpu, int group_fd,
                                        std::uint64_t flags) = 0;
  virtual Status perf_ioctl(int fd, PerfIoctl op, std::uint32_t flags) = 0;
  virtual Expected<PerfValue> perf_read(int fd) = 0;
  virtual Expected<std::vector<PerfValue>> perf_read_group(int fd) = 0;
  virtual Expected<std::uint64_t> perf_rdpmc(int fd) = 0;
  virtual Status perf_close(int fd) = 0;

  /// mmap(2) the event's perf_event_mmap_page for userspace rdpmc read
  /// plans (§V-5). The returned pointer must stay valid until
  /// perf_close(fd); backends without a page report kNotSupported and
  /// the read planner keeps the fd path. Default: no page.
  virtual Expected<const simkernel::PerfUserPage*> perf_mmap_user_page(
      int fd) {
    (void)fd;
    return make_error(StatusCode::kNotSupported,
                      "backend has no user-page mapping");
  }

  /// Overflow (sampling) delivery. Backends without a notification path
  /// report kNotSupported.
  using OverflowHandler =
      std::function<void(int fd, std::uint64_t value, std::uint64_t periods)>;
  virtual Status perf_set_overflow_handler(int fd, OverflowHandler handler) {
    (void)fd;
    (void)handler;
    return make_error(StatusCode::kNotSupported,
                      "backend has no overflow delivery");
  }

  /// mmap(2) the event's sample ring (control page + data area) for a
  /// sampling-mode event. The view must stay valid until perf_close(fd).
  /// A denied or unsupported ring is survivable: the PAPI drain loop
  /// degrades that slot to counting mode (overflow callbacks still fire
  /// through perf_set_overflow_handler). Default: no ring.
  virtual Expected<simkernel::PerfRingView> perf_mmap_ring(int fd) {
    (void)fd;
    return make_error(StatusCode::kNotSupported,
                      "backend has no sample-ring mapping");
  }

  /// poll(2) with a zero timeout on a sampling event fd: true when a
  /// ring wakeup is pending. A hint, not ground truth — drains read the
  /// ring's head/tail words regardless, so a dropped wakeup delays a
  /// drain but never loses records. Default: no wakeup surface.
  virtual Expected<bool> perf_ring_poll(int fd) {
    (void)fd;
    return make_error(StatusCode::kNotSupported,
                      "backend has no ring poll surface");
  }

  /// Host introspection for detection and pfm activation.
  virtual const pfm::Host& host() const = 0;

  /// Whether this backend can host the named measurement component
  /// (papi/components/). Library::init skips registration of components
  /// the backend disclaims — e.g. real Linux without RAPL permissions.
  virtual bool supports_component(std::string_view name) const {
    (void)name;
    return true;
  }

  /// The "calling thread" measurement calls bind to by default.
  virtual Tid default_target() const = 0;

  /// Hook for accounting the user-space cost of a measurement call to
  /// the measured thread (the simulator executes these instructions as
  /// part of the thread; a real backend genuinely pays them).
  virtual void charge_call_overhead(Tid tid, std::uint64_t instructions) {
    (void)tid;
    (void)instructions;
  }
};

}  // namespace hetpapi::papi
