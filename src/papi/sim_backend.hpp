// Backend over the simulated kernel.
#pragma once

#include "papi/backend.hpp"
#include "pfm/sim_host.hpp"
#include "simkernel/kernel.hpp"

namespace hetpapi::papi {

class SimBackend final : public Backend {
 public:
  explicit SimBackend(simkernel::SimKernel* kernel)
      : kernel_(kernel), host_(kernel) {}

  Expected<int> perf_event_open(const PerfEventAttr& attr, Tid tid, int cpu,
                                int group_fd, std::uint64_t flags) override {
    return kernel_->perf_event_open(attr, tid, cpu, group_fd, flags);
  }
  Status perf_ioctl(int fd, PerfIoctl op, std::uint32_t flags) override {
    return kernel_->perf_ioctl(fd, op, flags);
  }
  Expected<PerfValue> perf_read(int fd) override {
    return kernel_->perf_read(fd);
  }
  Expected<std::vector<PerfValue>> perf_read_group(int fd) override {
    return kernel_->perf_read_group(fd);
  }
  Expected<std::uint64_t> perf_rdpmc(int fd) override {
    return kernel_->perf_rdpmc(fd);
  }
  Expected<const simkernel::PerfUserPage*> perf_mmap_user_page(
      int fd) override {
    return kernel_->perf_mmap_user_page(fd);
  }
  Status perf_close(int fd) override { return kernel_->perf_close(fd); }

  Status perf_set_overflow_handler(int fd, OverflowHandler handler) override {
    return kernel_->perf_set_overflow_handler(
        fd, [handler = std::move(handler)](
                const simkernel::PerfSubsystem::OverflowInfo& info) {
          handler(info.fd, info.value, info.overflows);
        });
  }

  Expected<simkernel::PerfRingView> perf_mmap_ring(int fd) override {
    return kernel_->perf_mmap_ring(fd);
  }
  Expected<bool> perf_ring_poll(int fd) override {
    return kernel_->perf_ring_poll(fd);
  }

  const pfm::Host& host() const override { return host_; }

  /// Sim processes are spawned explicitly; callers set the target.
  Tid default_target() const override { return default_target_; }
  void set_default_target(Tid tid) { default_target_ = tid; }

  void charge_call_overhead(Tid tid, std::uint64_t instructions) override {
    kernel_->inject_instructions(tid, instructions);
  }

  simkernel::SimKernel* kernel() { return kernel_; }

  /// Live perf events in the simulated kernel — the fd-leak invariant
  /// tests assert zero at teardown.
  std::size_t open_fd_count() const { return kernel_->perf().open_event_count(); }

 private:
  simkernel::SimKernel* kernel_;
  pfm::SimHost host_;
  Tid default_target_ = simkernel::kInvalidTid;
};

}  // namespace hetpapi::papi
