#include "papi/marker.hpp"

#include <atomic>
#include <chrono>

#include "papi/library.hpp"

namespace hetpapi::papi {

namespace {

std::uint64_t default_time(void*) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t next_manager_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

/// Per-region accumulator local to one thread: no locking on the hot
/// path, merged under the manager mutex only in report().
struct RegionAccum {
  std::string name;
  std::uint64_t entries = 0;
  std::uint64_t time = 0;
  std::vector<long long> totals;
};

struct MarkerManager::ThreadState {
  const Library* lib = nullptr;
  int eventset = -1;

  struct Frame {
    int region = -1;            // index into regions
    std::uint64_t t0 = 0;       // time at begin
    std::vector<long long> snap;  // counter snapshot at begin
  };
  Frame frames[kMaxMarkerDepth];
  int depth = 0;

  std::vector<RegionAccum> regions;  // first-begin order
  std::vector<long long> scratch;    // read_into destination

  /// Region index for `name`, created on first sight (the only
  /// allocating path; steady-state begin/end never allocates).
  int region_index(std::string_view name) {
    for (std::size_t i = 0; i < regions.size(); ++i) {
      if (regions[i].name == name) return static_cast<int>(i);
    }
    RegionAccum accum;
    accum.name.assign(name.data(), name.size());
    regions.push_back(std::move(accum));
    return static_cast<int>(regions.size() - 1);
  }
};

namespace {

/// The tls cache: valid only while `manager_id` matches the live
/// manager's generation — a destroyed manager's id never recurs, so a
/// stale pointer is never dereferenced. Stored as void* because the
/// pointee type is private to MarkerManager.
struct TlsSlot {
  std::uint64_t manager_id = 0;
  void* state = nullptr;
};
thread_local TlsSlot tls_slot;

}  // namespace

MarkerManager::MarkerManager()
    : id_(next_manager_id()), time_fn_(&default_time) {}

MarkerManager::~MarkerManager() = default;

void MarkerManager::set_time_source(TimeFn fn, void* ctx) {
  time_fn_ = fn != nullptr ? fn : &default_time;
  time_ctx_ = ctx;
}

MarkerManager::ThreadState* MarkerManager::tls_state() const {
  if (tls_slot.manager_id != id_) return nullptr;
  return static_cast<ThreadState*>(tls_slot.state);
}

Status MarkerManager::attach_thread(const Library* lib, int eventset) {
  if (lib == nullptr) {
    return make_error(StatusCode::kInvalidArgument,
                      "marker attach: null library");
  }
  ThreadState* state = tls_state();
  if (state == nullptr) {
    auto owned = std::make_unique<ThreadState>();
    state = owned.get();
    {
      std::lock_guard<std::mutex> lock(mu_);
      threads_.push_back(std::move(owned));
    }
    tls_slot = {id_, state};
  }
  state->lib = lib;
  state->eventset = eventset;
  state->depth = 0;  // re-attach drops open frames
  return Status::ok();
}

Status MarkerManager::detach_thread() {
  ThreadState* state = tls_state();
  if (state == nullptr) {
    return make_error(StatusCode::kInvalidArgument,
                      "marker detach: thread not attached");
  }
  state->depth = 0;
  state->lib = nullptr;
  state->eventset = -1;
  tls_slot = {};
  return Status::ok();
}

Status MarkerManager::region_begin(std::string_view name) {
  ThreadState* state = tls_state();
  if (state == nullptr || state->lib == nullptr) {
    return make_error(StatusCode::kInvalidArgument,
                      "region_begin: thread not attached to a marker manager");
  }
  if (state->depth >= kMaxMarkerDepth) {
    return make_error(StatusCode::kOutOfRange,
                      "region_begin: marker nesting deeper than "
                      "kMaxMarkerDepth");
  }
  const int region = state->region_index(name);
  HETPAPI_RETURN_IF_ERROR(
      state->lib->read_into(state->eventset, state->scratch));
  ThreadState::Frame& frame = state->frames[state->depth];
  frame.region = region;
  frame.snap = state->scratch;  // capacity reuse: no alloc steady-state
  frame.t0 = time_fn_(time_ctx_);
  ++state->depth;
  return Status::ok();
}

Status MarkerManager::region_end(std::string_view name) {
  ThreadState* state = tls_state();
  if (state == nullptr || state->lib == nullptr) {
    return make_error(StatusCode::kInvalidArgument,
                      "region_end: thread not attached to a marker manager");
  }
  int match = -1;
  for (int i = state->depth - 1; i >= 0; --i) {
    if (state->regions[static_cast<std::size_t>(state->frames[i].region)]
            .name == name) {
      match = i;
      break;
    }
  }
  if (match < 0) {
    return make_error(StatusCode::kInvalidArgument,
                      "region_end: no open region with this name");
  }
  const std::uint64_t t1 = time_fn_(time_ctx_);
  HETPAPI_RETURN_IF_ERROR(
      state->lib->read_into(state->eventset, state->scratch));
  // Close everything above the match too (LIFO): a region ended from
  // outside an open inner region subsumes it, keeping the books
  // balanced without requiring strict pairing of every path.
  for (int i = state->depth - 1; i >= match; --i) {
    const ThreadState::Frame& frame = state->frames[i];
    RegionAccum& accum =
        state->regions[static_cast<std::size_t>(frame.region)];
    ++accum.entries;
    accum.time += t1 - frame.t0;
    if (accum.totals.size() != state->scratch.size()) {
      accum.totals.resize(state->scratch.size(), 0);
    }
    for (std::size_t v = 0; v < state->scratch.size(); ++v) {
      const long long begin_value = v < frame.snap.size() ? frame.snap[v] : 0;
      accum.totals[v] += state->scratch[v] - begin_value;
    }
  }
  state->depth = match;
  return Status::ok();
}

std::vector<RegionStats> MarkerManager::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RegionStats> out;
  for (const auto& thread : threads_) {
    for (const RegionAccum& accum : thread->regions) {
      RegionStats* stats = nullptr;
      for (RegionStats& existing : out) {
        if (existing.name == accum.name) {
          stats = &existing;
          break;
        }
      }
      if (stats == nullptr) {
        out.push_back(RegionStats{accum.name, 0, 0, {}});
        stats = &out.back();
      }
      stats->entries += accum.entries;
      stats->time += accum.time;
      if (stats->totals.size() < accum.totals.size()) {
        stats->totals.resize(accum.totals.size(), 0);
      }
      for (std::size_t v = 0; v < accum.totals.size(); ++v) {
        stats->totals[v] += accum.totals[v];
      }
    }
  }
  return out;
}

void MarkerManager::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& thread : threads_) {
    for (RegionAccum& accum : thread->regions) {
      accum.entries = 0;
      accum.time = 0;
      accum.totals.assign(accum.totals.size(), 0);
    }
  }
}

}  // namespace hetpapi::papi
