// Seqlock-correct reader for the perf_event user page (§V-5).
//
// The canonical kernel-documented protocol: capture `lock`, read the
// published fields — and issue the rdpmc instruction — strictly inside
// the window, re-read `lock`, and retry if it moved (the writer updated
// the page mid-read; any value assembled from those fields could mix
// epochs). The loads go through volatile references so the compiler
// cannot cache or reorder them across the signal fences; real
// concurrent writers (the kernel updates the page from NMI context) and
// the simulated kernel's publish both look identical to this reader.
//
// Against the simulated backend the page carries kSimUserPageMagic in
// the kernel-reserved region and publishes the would-be rdpmc value in
// `sim_pmc`; against a real mmap'd page that region reads zero and the
// reader executes the actual rdpmc instruction with the page's
// pmc_width sign-extension. Either way the caller gets the same
// `offset + pmc` counter the fd path would return, without a syscall.
#pragma once

#include <atomic>
#include <cstdint>

#include "simkernel/perf_abi.hpp"

namespace hetpapi::papi {

enum class UserPageReadResult {
  kOk,
  /// index == 0: disabled, multiplexed out, or the thread migrated to a
  /// core type the PMU does not serve. Fall back to read(2).
  kNotResident,
  /// cap_user_rdpmc is off (locked-down host / sim config), or this
  /// build cannot execute rdpmc against a real page.
  kNoRdpmc,
  /// The writer kept invalidating the window for the whole retry
  /// budget. Fall back to read(2).
  kRetriesExhausted,
};

struct UserPageSample {
  std::uint64_t value = 0;
  std::uint64_t time_enabled_ns = 0;
  std::uint64_t time_running_ns = 0;
};

/// Test seam: invoked with 2*attempt after the seq capture and
/// 2*attempt+1 after the field reads, so a test can mutate the page at
/// either point and prove the retry loop never returns a torn value.
struct UserPageNoHook {
  void operator()(int) const {}
};

template <typename Hook = UserPageNoHook>
inline UserPageReadResult read_user_page(const simkernel::PerfUserPage& page,
                                         UserPageSample& out,
                                         int max_retries = 16,
                                         Hook&& hook = Hook{}) {
  const auto load_u32 = [](const std::uint32_t& field) {
    return *static_cast<const volatile std::uint32_t*>(&field);
  };
  const auto load_u64 = [](const std::uint64_t& field) {
    return *static_cast<const volatile std::uint64_t*>(&field);
  };
  const auto load_i64 = [](const std::int64_t& field) {
    return *static_cast<const volatile std::int64_t*>(&field);
  };
  for (int attempt = 0; attempt < max_retries; ++attempt) {
    const std::uint32_t seq = load_u32(page.lock);
    std::atomic_signal_fence(std::memory_order_seq_cst);
    hook(2 * attempt);
    if ((seq & 1u) != 0) continue;  // writer mid-update
    const std::uint32_t index = load_u32(page.index);
    const std::uint64_t caps = load_u64(page.capabilities);
    const std::int64_t offset = load_i64(page.offset);
    const std::uint64_t time_enabled = load_u64(page.time_enabled);
    const std::uint64_t time_running = load_u64(page.time_running);
    const bool simulated =
        load_u32(page.sim_magic) == simkernel::kSimUserPageMagic;
    const bool resident =
        (caps & simkernel::kCapUserRdpmc) != 0 && index != 0;
    std::uint64_t pmc = 0;
    bool no_hardware = false;
    if (resident) {
      if (simulated) {
        pmc = load_u64(page.sim_pmc);
      } else {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
        std::uint64_t raw =
            __builtin_ia32_rdpmc(static_cast<int>(index - 1));
        const std::uint16_t width =
            *static_cast<const volatile std::uint16_t*>(&page.pmc_width);
        if (width != 0 && width < 64) {
          // Sign-extend from pmc_width bits, as the kernel documents:
          // offset already carries the high part, modular addition below
          // reconstructs the full count.
          raw <<= 64 - width;
          pmc = static_cast<std::uint64_t>(static_cast<std::int64_t>(raw) >>
                                           (64 - width));
        } else {
          pmc = raw;
        }
#else
        no_hardware = true;
#endif
      }
    }
    hook(2 * attempt + 1);
    std::atomic_signal_fence(std::memory_order_seq_cst);
    if (load_u32(page.lock) != seq) continue;  // torn window: retry
    // The window was consistent; now the captured fields may be acted on.
    if ((caps & simkernel::kCapUserRdpmc) == 0) {
      return UserPageReadResult::kNoRdpmc;
    }
    if (index == 0) return UserPageReadResult::kNotResident;
    if (no_hardware) return UserPageReadResult::kNoRdpmc;
    out.value = static_cast<std::uint64_t>(offset) + pmc;
    out.time_enabled_ns = time_enabled;
    out.time_running_ns = time_running;
    return UserPageReadResult::kOk;
  }
  return UserPageReadResult::kRetriesExhausted;
}

}  // namespace hetpapi::papi
