#include "papi/library.hpp"

#include <algorithm>

#include "base/log.hpp"
#include "base/strings.hpp"

namespace hetpapi::papi {

using simkernel::kIocFlagGroup;

std::string_view to_string(Component component) {
  switch (component) {
    case Component::kPerfEvent: return "perf_event";
    case Component::kRapl: return "rapl";
    case Component::kUncore: return "perf_event_uncore";
  }
  return "unknown";
}

Library::Library(Backend* backend, LibraryConfig config)
    : backend_(backend), config_(config) {}

Library::~Library() {
  for (const auto& set : sets_) {
    if (set) (void)close_all(*set);
  }
}

Expected<std::unique_ptr<Library>> Library::init(Backend* backend,
                                                 LibraryConfig config) {
  auto lib = std::unique_ptr<Library>(new Library(backend, config));
  const Status pfm_status = lib->pfm_.initialize(backend->host(), config.pfm);
  if (!pfm_status.is_ok()) {
    return make_error(StatusCode::kComponent,
                      "pfm initialization failed: " + pfm_status.to_string());
  }
  auto hwinfo = get_hardware_info(backend->host());
  if (!hwinfo) return hwinfo.status();
  lib->hwinfo_ = std::move(*hwinfo);

  if (lib->hwinfo_.hybrid && !config.hybrid_support) {
    HETPAPI_WARN << "hybrid machine detected but hybrid support is disabled; "
                    "EventSets are limited to a single PMU";
  }
  return lib;
}

// --- information ------------------------------------------------------------

std::vector<std::string> Library::native_event_names() const {
  std::vector<std::string> names;
  for (const pfm::ActivePmu& pmu : pfm_.pmus()) {
    const std::vector<std::string> pmu_names = pfm_.event_names(pmu);
    names.insert(names.end(), pmu_names.begin(), pmu_names.end());
  }
  return names;
}

std::vector<std::string> Library::available_presets() const {
  std::vector<std::string> out;
  const auto defaults = pfm_.default_pmus();
  for (const PresetDef& preset : preset_table()) {
    bool available = false;
    switch (config_.preset_policy) {
      case PresetPolicy::kErrorOnHybrid:
        available = defaults.size() == 1 &&
                    native_for_kind(*defaults.front()->table, preset.kind)
                        .has_value();
        break;
      case PresetPolicy::kDefaultPmuOnly:
        available = !defaults.empty() &&
                    native_for_kind(*defaults.front()->table, preset.kind)
                        .has_value();
        break;
      case PresetPolicy::kDerivedSum:
        // Available when *every* core PMU can provide the quantity; a
        // partial sum would silently undercount.
        available = !defaults.empty();
        for (const pfm::ActivePmu* pmu : defaults) {
          if (!native_for_kind(*pmu->table, preset.kind)) available = false;
        }
        break;
    }
    if (available) out.push_back(preset.name);
  }
  return out;
}

// --- EventSet plumbing ---------------------------------------------------------

Library::EventSet* Library::find_set(int eventset) {
  for (const auto& set : sets_) {
    if (set && set->id == eventset) return set.get();
  }
  return nullptr;
}

const Library::EventSet* Library::find_set(int eventset) const {
  for (const auto& set : sets_) {
    if (set && set->id == eventset) return set.get();
  }
  return nullptr;
}

Expected<int> Library::create_eventset() {
  auto set = std::make_unique<EventSet>();
  set->id = next_set_id_++;
  set->target = backend_->default_target();
  const int id = set->id;
  sets_.push_back(std::move(set));
  return id;
}

Status Library::destroy_eventset(int eventset) {
  EventSet* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  if (set->state == SetState::kRunning) {
    return make_error(StatusCode::kAlreadyRunning,
                      "stop the EventSet before destroying it");
  }
  HETPAPI_RETURN_IF_ERROR(close_all(*set));
  std::erase_if(sets_, [&](const auto& s) { return s.get() == set; });
  return Status::ok();
}

Component Library::component_for(const pfm::ActivePmu& pmu) const {
  const std::string& name = pmu.table->pfm_name;
  if (name == "rapl") return Component::kRapl;
  if (starts_with(name, "unc_")) {
    return config_.unified_uncore ? Component::kPerfEvent : Component::kUncore;
  }
  return Component::kPerfEvent;
}

Status Library::attach(int eventset, Tid tid) {
  EventSet* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  if (set->state == SetState::kRunning) {
    return make_error(StatusCode::kAlreadyRunning, "EventSet is running");
  }
  set->target = tid;
  set->target_cpu = -1;
  if (!set->natives.empty()) return reopen_all(*set);
  return Status::ok();
}

Status Library::attach_cpu(int eventset, int cpu) {
  EventSet* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  if (set->state == SetState::kRunning) {
    return make_error(StatusCode::kAlreadyRunning, "EventSet is running");
  }
  if (cpu < 0 || cpu >= hwinfo_.total_cpus) {
    return make_error(StatusCode::kInvalidArgument, "no such cpu");
  }
  set->target_cpu = cpu;
  set->target = simkernel::kInvalidTid;
  if (!set->natives.empty()) return reopen_all(*set);
  return Status::ok();
}

Status Library::load_preset_definitions(std::string_view text) {
  auto parsed = parse_preset_definitions(text);
  if (!parsed) return parsed.status();
  // Validate every referenced event against the active tables so bad
  // files fail at load time, not at add_event time.
  for (const auto& [pmu_name, defs] : parsed->sections) {
    const pfm::ActivePmu* pmu = pfm_.find_pmu(pmu_name);
    if (pmu == nullptr) continue;  // sections for absent PMUs are inert
    for (const CustomPresetDef& def : defs) {
      for (const std::string& event : def.events) {
        auto enc = pfm_.encode(pmu_name + "::" + event);
        if (!enc) {
          return make_error(StatusCode::kInvalidArgument,
                            def.name + ": " + enc.status().to_string());
        }
      }
    }
  }
  custom_presets_ = std::move(*parsed);
  return Status::ok();
}

Status Library::add_custom_preset(EventSet& set,
                                  const CustomPresetDef& first_def,
                                  std::string_view name) {
  (void)first_def;
  const auto defaults = pfm_.default_pmus();
  if (defaults.empty()) {
    return make_error(StatusCode::kComponent, "no core PMU active");
  }
  UserEvent user;
  user.display_name = std::string(name);
  user.is_preset = true;

  // Gather (encoding, sign) pairs across every core PMU first so a
  // missing definition aborts before any fd is opened.
  std::vector<std::pair<pfm::Encoding, int>> plan;
  for (const pfm::ActivePmu* pmu : defaults) {
    const CustomPresetDef* def =
        custom_presets_.find(pmu->table->pfm_name, name);
    if (def == nullptr) {
      return make_error(StatusCode::kNotPreset,
                        std::string(name) + " is not defined for " +
                            pmu->table->pfm_name +
                            "; a partial sum would undercount");
    }
    for (std::size_t i = 0; i < def->events.size(); ++i) {
      auto enc = pfm_.encode(pmu->table->pfm_name + "::" + def->events[i]);
      if (!enc) return enc.status();
      const int sign =
          def->op == CustomPresetDef::Op::kDerivedSub && i > 0 ? -1 : 1;
      plan.emplace_back(std::move(*enc), sign);
    }
  }

  const std::size_t natives_before = set.natives.size();
  for (const auto& [enc, sign] : plan) {
    const Status added = add_native(set, enc, user, sign);
    if (!added.is_ok()) {
      (void)rollback_natives(set, natives_before);
      return added;
    }
  }
  set.user_events.push_back(std::move(user));
  return Status::ok();
}

Status Library::add_event(int eventset, std::string_view name) {
  EventSet* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  if (set->state == SetState::kRunning) {
    return make_error(StatusCode::kAlreadyRunning,
                      "cannot add events while running");
  }

  // Custom (file-defined) presets take precedence over built-ins.
  if (starts_with(name, "PAPI_") || starts_with(name, "papi_")) {
    for (const auto& [pmu_name, defs] : custom_presets_.sections) {
      for (const CustomPresetDef& def : defs) {
        if (iequals(def.name, name)) {
          return add_custom_preset(*set, def, name);
        }
      }
    }
  }

  // Preset path.
  if (const PresetDef* preset = find_preset(name)) {
    const auto defaults = pfm_.default_pmus();
    if (defaults.empty()) {
      return make_error(StatusCode::kComponent, "no core PMU active");
    }
    UserEvent user;
    user.display_name = preset->name;
    user.is_preset = true;

    std::vector<pfm::Encoding> encodings;
    switch (config_.preset_policy) {
      case PresetPolicy::kErrorOnHybrid:
        if (defaults.size() > 1) {
          return make_error(
              StatusCode::kNotPreset,
              "presets are ambiguous on heterogeneous machines (legacy "
              "preset policy)");
        }
        [[fallthrough]];
      case PresetPolicy::kDefaultPmuOnly: {
        const pfm::ActivePmu* pmu = defaults.front();
        const auto native = native_for_kind(*pmu->table, preset->kind);
        if (!native) {
          return make_error(StatusCode::kNotPreset,
                            preset->name + " not measurable on " +
                                pmu->table->pfm_name);
        }
        auto enc = pfm_.encode(pmu->table->pfm_name + "::" + *native);
        if (!enc) return enc.status();
        encodings.push_back(std::move(*enc));
        break;
      }
      case PresetPolicy::kDerivedSum:
        for (const pfm::ActivePmu* pmu : defaults) {
          const auto native = native_for_kind(*pmu->table, preset->kind);
          if (!native) {
            return make_error(StatusCode::kNotPreset,
                              preset->name + " not measurable on " +
                                  pmu->table->pfm_name +
                                  "; derived sum would undercount");
          }
          auto enc = pfm_.encode(pmu->table->pfm_name + "::" + *native);
          if (!enc) return enc.status();
          encodings.push_back(std::move(*enc));
        }
        break;
    }

    // All-or-nothing: remember how much to roll back on failure.
    const std::size_t natives_before = set->natives.size();
    for (const pfm::Encoding& enc : encodings) {
      const Status added = add_native(*set, enc, user);
      if (!added.is_ok()) {
        (void)rollback_natives(*set, natives_before);
        return added;
      }
    }
    set->user_events.push_back(std::move(user));
    return Status::ok();
  }

  // Native path.
  auto enc = pfm_.encode(name);
  if (!enc) return enc.status();
  UserEvent user;
  user.display_name = std::string(name);
  user.is_preset = false;
  HETPAPI_RETURN_IF_ERROR(add_native(*set, *enc, user));
  set->user_events.push_back(std::move(user));
  return Status::ok();
}

Status Library::remove_event(int eventset, std::string_view name) {
  EventSet* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  if (set->state == SetState::kRunning) {
    return make_error(StatusCode::kAlreadyRunning,
                      "cannot remove events while running");
  }
  std::size_t user_idx = set->user_events.size();
  for (std::size_t i = 0; i < set->user_events.size(); ++i) {
    if (iequals(set->user_events[i].display_name, name)) {
      user_idx = i;
      break;
    }
  }
  if (user_idx == set->user_events.size()) {
    return make_error(StatusCode::kNotFound,
                      std::string(name) + " is not in the EventSet");
  }

  // Tear down every fd first: the group member lists reference native
  // slots by index, and those indices are about to shift.
  HETPAPI_RETURN_IF_ERROR(close_all(*set));

  // Drop the removed event's native slots, highest index first so the
  // lower ones stay valid while erasing.
  const UserEvent removed = std::move(set->user_events[user_idx]);
  std::vector<int> dropped(removed.native_indices.begin(),
                           removed.native_indices.end());
  std::sort(dropped.begin(), dropped.end());
  for (std::size_t i = dropped.size(); i-- > 0;) {
    set->natives.erase_at(static_cast<std::size_t>(dropped[i]));
  }
  set->user_events.erase(set->user_events.begin() +
                         static_cast<std::ptrdiff_t>(user_idx));

  // Remap the survivors: each native slot's owning user event shifts
  // down past the removed one; each user event's native indices shift
  // down past every dropped slot below them.
  for (NativeSlot& slot : set->natives) {
    if (slot.user_event_index > static_cast<int>(user_idx)) {
      --slot.user_event_index;
    }
  }
  for (UserEvent& user : set->user_events) {
    for (std::size_t i = 0; i < user.native_indices.size(); ++i) {
      const int idx = user.native_indices[i];
      int shift = 0;
      for (const int d : dropped) {
        if (d < idx) ++shift;
      }
      user.native_indices[i] = idx - shift;
    }
  }

  // Re-open the survivors in order, rebuilding the groups.
  for (std::size_t i = 0; i < set->natives.size(); ++i) {
    HETPAPI_RETURN_IF_ERROR(open_slot(*set, i));
  }
  return Status::ok();
}

Status Library::add_native(EventSet& set, const pfm::Encoding& enc,
                           UserEvent& user, int sign) {
  if (set.natives.full()) {
    return make_error(StatusCode::kNoMemory, "EventSet is full");
  }
  const pfm::ActivePmu* pmu = pfm_.find_pmu(enc.pmu_name);
  if (pmu == nullptr) {
    return make_error(StatusCode::kBug, "encoding references unknown PMU");
  }
  const Component component = component_for(*pmu);

  // Legacy single-PMU constraint: without hybrid support an EventSet is
  // pinned to the PMU of its first event — "you cannot have P- and
  // E-core events in the same EventSet, nor can you have things like
  // CPU and RAPL power events in the same EventSet" (PAPI_ECNFLCT).
  if (!config_.hybrid_support) {
    for (const NativeSlot& slot : set.natives) {
      if (slot.enc.perf_type != enc.perf_type) {
        return make_error(
            StatusCode::kConflict,
            "EventSet already contains " + slot.enc.pmu_name +
                " events; adding " + enc.pmu_name +
                " requires heterogeneous support (PAPI_ECNFLCT)");
      }
    }
  }

  NativeSlot slot;
  slot.enc = enc;
  slot.component = component;
  slot.user_event_index = static_cast<int>(set.user_events.size());
  set.natives.push_back(slot);
  const auto native_idx = static_cast<int>(set.natives.size() - 1);

  const Status opened = open_slot(set, static_cast<std::size_t>(native_idx));
  if (!opened.is_ok()) {
    set.natives.pop_back();
    return opened;
  }
  user.native_indices.push_back(native_idx);
  user.native_signs.push_back(sign);
  return Status::ok();
}

Status Library::open_slot(EventSet& set, std::size_t native_idx) {
  set.read_plan_valid = false;
  NativeSlot& slot = set.natives[native_idx];
  const pfm::ActivePmu* pmu = pfm_.find_pmu(slot.enc.pmu_name);
  if (pmu == nullptr) {
    return make_error(StatusCode::kBug, "unknown PMU at open time");
  }

  // Scope: core/software events follow the target thread (or, for a
  // cpu-attached EventSet, count everything on the target cpu);
  // package-scope PMUs (RAPL, uncore) bind to their designated cpu.
  Tid tid = set.target;
  int cpu = -1;
  const bool package_scope =
      slot.component == Component::kRapl ||
      starts_with(slot.enc.pmu_name, "unc_");
  if (package_scope) {
    tid = simkernel::kInvalidTid;
    cpu = pmu->cpus.empty() ? 0 : pmu->cpus.front();
  } else if (set.target_cpu >= 0) {
    tid = simkernel::kInvalidTid;
    cpu = set.target_cpu;
  } else if (tid == simkernel::kInvalidTid) {
    return make_error(StatusCode::kInvalidArgument,
                      "EventSet has no target thread; call attach() first");
  }

  // Find or create the group for this PMU type. Multiplexed sets make
  // every event its own leader so the kernel can rotate them freely.
  PmuGroup* group = nullptr;
  if (!set.multiplexed) {
    for (PmuGroup& g : set.groups) {
      if (g.perf_type == slot.enc.perf_type && g.component == slot.component) {
        group = &g;
        break;
      }
    }
  }

  PerfEventAttr attr;
  attr.type = slot.enc.perf_type;
  attr.config = slot.enc.config;
  attr.sample_period = slot.sample_period;
  attr.read_format = simkernel::kFormatGroup |
                     simkernel::kFormatTotalTimeEnabled |
                     simkernel::kFormatTotalTimeRunning;

  const auto install_handler = [&](int fd) -> Status {
    if (slot.sample_period == 0 || !set.overflow_callback) {
      return Status::ok();
    }
    // Capture what the callback needs; the EventSet outlives the fd.
    const int set_id = set.id;
    const int user_index = slot.user_event_index;
    const std::string native_name = slot.enc.canonical_name;
    const OverflowCallback& callback = set.overflow_callback;
    return backend_->perf_set_overflow_handler(
        fd, [set_id, user_index, native_name, &callback](
                int, std::uint64_t value, std::uint64_t periods) {
          OverflowEvent event;
          event.eventset = set_id;
          event.user_event_index = user_index;
          event.native_name = native_name;
          event.value = value;
          event.periods = periods;
          callback(event);
        });
  };

  if (group == nullptr) {
    if (set.groups.full() ||
        (!set.multiplexed && set.groups.size() >= kMaxPmuGroups)) {
      return make_error(StatusCode::kNoMemory,
                        "EventSet exceeds the static group array (" +
                            std::to_string(kMaxPmuGroups) + " PMU groups)");
    }
    attr.disabled = true;  // leaders start disabled; PAPI_start enables
    auto fd = backend_->perf_event_open(attr, tid, cpu, -1, 0);
    if (!fd) return fd.status();
    PmuGroup new_group;
    new_group.perf_type = slot.enc.perf_type;
    new_group.component = slot.component;
    new_group.leader_fd = *fd;
    new_group.members.push_back(static_cast<int>(native_idx));
    set.groups.push_back(new_group);
    slot.fd = *fd;
    return install_handler(*fd);
  }

  attr.disabled = false;  // siblings gate on their leader
  auto fd = backend_->perf_event_open(attr, tid, cpu, group->leader_fd, 0);
  if (!fd) return fd.status();
  if (group->members.full()) {
    (void)backend_->perf_close(*fd);
    return make_error(StatusCode::kNoMemory, "group member array full");
  }
  group->members.push_back(static_cast<int>(native_idx));
  slot.fd = *fd;
  return install_handler(*fd);
}

Status Library::close_all(EventSet& set) {
  set.read_plan_valid = false;
  Status first_error = Status::ok();
  // Close siblings before leaders to avoid the kernel's sibling
  // promotion path.
  for (PmuGroup& group : set.groups) {
    for (std::size_t i = group.members.size(); i-- > 1;) {
      NativeSlot& slot =
          set.natives[static_cast<std::size_t>(group.members[i])];
      if (slot.fd >= 0) {
        const Status s = backend_->perf_close(slot.fd);
        if (!s.is_ok() && first_error.is_ok()) first_error = s;
        slot.fd = -1;
      }
    }
    if (!group.members.empty()) {
      NativeSlot& leader =
          set.natives[static_cast<std::size_t>(group.members[0])];
      if (leader.fd >= 0) {
        const Status s = backend_->perf_close(leader.fd);
        if (!s.is_ok() && first_error.is_ok()) first_error = s;
        leader.fd = -1;
      }
    }
  }
  set.groups.clear();
  return first_error;
}

Status Library::reopen_all(EventSet& set) {
  HETPAPI_RETURN_IF_ERROR(close_all(set));
  for (std::size_t i = 0; i < set.natives.size(); ++i) {
    HETPAPI_RETURN_IF_ERROR(open_slot(set, i));
  }
  return Status::ok();
}

Status Library::rollback_natives(EventSet& set, std::size_t natives_before) {
  // The group member lists may reference the slots being dropped, so
  // close every fd directly off the native table, wipe the groups, and
  // rebuild from the surviving slots.
  while (set.natives.size() > natives_before) {
    NativeSlot& slot = set.natives.back();
    if (slot.fd >= 0) (void)backend_->perf_close(slot.fd);
    set.natives.pop_back();
  }
  for (NativeSlot& slot : set.natives) {
    if (slot.fd >= 0) (void)backend_->perf_close(slot.fd);
    slot.fd = -1;
  }
  set.groups.clear();
  for (std::size_t i = 0; i < set.natives.size(); ++i) {
    HETPAPI_RETURN_IF_ERROR(open_slot(set, i));
  }
  return Status::ok();
}

Status Library::set_multiplex(int eventset) {
  EventSet* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  if (set->state == SetState::kRunning) {
    return make_error(StatusCode::kAlreadyRunning, "EventSet is running");
  }
  if (set->multiplexed) return Status::ok();
  set->multiplexed = true;
  return reopen_all(*set);
}

Status Library::set_overflow(int eventset, int user_event_index,
                             std::uint64_t threshold,
                             OverflowCallback callback) {
  EventSet* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  if (set->state == SetState::kRunning) {
    return make_error(StatusCode::kAlreadyRunning, "EventSet is running");
  }
  if (user_event_index < 0 ||
      user_event_index >= static_cast<int>(set->user_events.size())) {
    return make_error(StatusCode::kInvalidArgument, "no such event index");
  }
  if (threshold == 0) {
    return make_error(StatusCode::kInvalidArgument,
                      "overflow threshold must be positive");
  }
  set->overflow_callback = std::move(callback);
  const UserEvent& user =
      set->user_events[static_cast<std::size_t>(user_event_index)];
  for (int idx : user.native_indices) {
    set->natives[static_cast<std::size_t>(idx)].sample_period = threshold;
  }
  // Re-open so the kernel sees the sampling configuration.
  return reopen_all(*set);
}

// --- run control -----------------------------------------------------------------

Status Library::start(int eventset) {
  EventSet* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  if (set->state == SetState::kRunning) {
    return make_error(StatusCode::kAlreadyRunning, "already started");
  }
  if (set->natives.empty()) {
    return make_error(StatusCode::kInvalidArgument, "EventSet is empty");
  }

  // One running EventSet per component per measured thread (RAPL and
  // the legacy uncore component are package-wide, so their lock is
  // global).
  for (const PmuGroup& group : set->groups) {
    const auto key = component_key(group.component, *set);
    const auto it = running_sets_.find(key);
    if (it != running_sets_.end() && it->second != set->id) {
      return make_error(StatusCode::kConflict,
                        std::string("component ") +
                            std::string(to_string(group.component)) +
                            " already has a running EventSet (" +
                            std::to_string(it->second) + ")");
    }
  }

  // The multi-group fan-out at the heart of §IV-E: reset + enable every
  // PMU group belonging to this EventSet.
  for (const PmuGroup& group : set->groups) {
    HETPAPI_RETURN_IF_ERROR(backend_->perf_ioctl(
        group.leader_fd, PerfIoctl::kReset, kIocFlagGroup));
    HETPAPI_RETURN_IF_ERROR(backend_->perf_ioctl(
        group.leader_fd, PerfIoctl::kEnable, kIocFlagGroup));
  }
  for (const PmuGroup& group : set->groups) {
    running_sets_[component_key(group.component, *set)] = set->id;
  }
  set->state = SetState::kRunning;

  if (set->target != simkernel::kInvalidTid) {
    backend_->charge_call_overhead(
        set->target,
        config_.call_overhead_instructions * set->groups.size());
  }
  return Status::ok();
}

Expected<std::vector<long long>> Library::stop(int eventset) {
  EventSet* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  if (set->state != SetState::kRunning) {
    return make_error(StatusCode::kNotRunning, "EventSet is not running");
  }
  auto values = collect(*set);
  if (!values) return values.status();

  for (const PmuGroup& group : set->groups) {
    HETPAPI_RETURN_IF_ERROR(backend_->perf_ioctl(
        group.leader_fd, PerfIoctl::kDisable, kIocFlagGroup));
    running_sets_.erase(component_key(group.component, *set));
  }
  set->state = SetState::kStopped;

  if (set->target != simkernel::kInvalidTid) {
    backend_->charge_call_overhead(
        set->target,
        config_.call_overhead_instructions * set->groups.size());
  }
  return values;
}

Expected<std::vector<long long>> Library::read(int eventset) const {
  const EventSet* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  auto values = collect(*set);
  if (values && set->target != simkernel::kInvalidTid &&
      set->state == SetState::kRunning) {
    backend_->charge_call_overhead(
        set->target,
        config_.call_overhead_instructions * set->groups.size());
  }
  return values;
}

Status Library::accum(int eventset, std::vector<long long>& values) {
  EventSet* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  if (set->state != SetState::kRunning) {
    return make_error(StatusCode::kNotRunning, "EventSet is not running");
  }
  if (values.size() != set->user_events.size()) {
    return make_error(StatusCode::kInvalidArgument,
                      "values array must have one slot per event");
  }
  auto current = collect(*set);
  if (!current) return current.status();
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] += (*current)[i];
  }
  return reset(eventset);
}

Expected<Library::SetStatePublic> Library::state(int eventset) const {
  const EventSet* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  return set->state == SetState::kRunning ? SetStatePublic::kRunning
                                          : SetStatePublic::kStopped;
}

Status Library::reset(int eventset) {
  EventSet* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  for (const PmuGroup& group : set->groups) {
    HETPAPI_RETURN_IF_ERROR(backend_->perf_ioctl(
        group.leader_fd, PerfIoctl::kReset, kIocFlagGroup));
  }
  return Status::ok();
}

void Library::build_read_plan(const EventSet& set) const {
  set.read_plan.clear();
  set.plan_members.clear();
  set.read_plan.reserve(set.groups.size());
  for (const PmuGroup& group : set.groups) {
    ReadPlanEntry entry;
    entry.leader_fd = group.leader_fd;
    entry.member_begin = set.plan_members.size();
    entry.member_count = group.members.size();
    for (int member : group.members) {
      set.plan_members.push_back(static_cast<std::size_t>(member));
    }
    if (config_.use_rdpmc && group.members.size() == 1) {
      const std::size_t native = static_cast<std::size_t>(group.members[0]);
      entry.rdpmc_single = true;
      entry.single_fd = set.natives[native].fd;
      entry.single_native = native;
    }
    set.read_plan.push_back(entry);
  }
  set.native_scratch.resize(set.natives.size());
}

Expected<std::vector<long long>> Library::collect(const EventSet& set) const {
  // Gather per-native raw/scaled values across all groups, then fold
  // derived user events. The fan-out (which leader fds to read, where
  // each returned value lands) is pre-resolved into a read plan; with
  // cache_read_plan off it is rebuilt on every call, the historical
  // behaviour the overhead bench compares against.
  if (!set.read_plan_valid) {
    build_read_plan(set);
    set.read_plan_valid = config_.cache_read_plan;
  }
  std::vector<double>& native_values = set.native_scratch;
  native_values.assign(set.natives.size(), 0.0);
  const bool scale = set.multiplexed && config_.scale_multiplexed;

  for (const ReadPlanEntry& entry : set.read_plan) {
    // Fast path first (§V-5): a singleton group whose event is resident
    // can be served by rdpmc without a read syscall.
    if (entry.rdpmc_single) {
      auto fast = backend_->perf_rdpmc(entry.single_fd);
      if (fast) {
        native_values[entry.single_native] = static_cast<double>(*fast);
        continue;
      }
    }
    auto group_values = backend_->perf_read_group(entry.leader_fd);
    if (!group_values) return group_values.status();
    if (group_values->size() != entry.member_count) {
      return make_error(StatusCode::kBug, "group read size mismatch");
    }
    for (std::size_t i = 0; i < entry.member_count; ++i) {
      const PerfValue& pv = (*group_values)[i];
      double value = static_cast<double>(pv.value);
      if (scale) value = pv.scaled();
      native_values[set.plan_members[entry.member_begin + i]] = value;
    }
  }

  std::vector<long long> out;
  out.reserve(set.user_events.size());
  for (const UserEvent& user : set.user_events) {
    double sum = 0.0;
    for (std::size_t i = 0; i < user.native_indices.size(); ++i) {
      sum += user.native_signs[i] *
             native_values[static_cast<std::size_t>(user.native_indices[i])];
    }
    out.push_back(static_cast<long long>(sum));
  }
  return out;
}

Expected<std::vector<EventInfo>> Library::eventset_info(int eventset) const {
  const EventSet* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  std::vector<EventInfo> out;
  for (const UserEvent& user : set->user_events) {
    EventInfo info;
    info.display_name = user.display_name;
    info.is_preset = user.is_preset;
    for (int idx : user.native_indices) {
      info.native_names.push_back(
          set->natives[static_cast<std::size_t>(idx)].enc.canonical_name);
    }
    out.push_back(std::move(info));
  }
  return out;
}

Expected<int> Library::eventset_group_count(int eventset) const {
  const EventSet* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  return static_cast<int>(set->groups.size());
}

bool Library::eventset_running(int eventset) const {
  const EventSet* set = find_set(eventset);
  return set != nullptr && set->state == SetState::kRunning;
}

}  // namespace hetpapi::papi
