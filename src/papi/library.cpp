#include "papi/library.hpp"

#include "base/log.hpp"
#include "base/strings.hpp"
#include "papi/components/builtin.hpp"

namespace hetpapi::papi {

Library::Library(Backend* backend, LibraryConfig config)
    : backend_(backend), config_(config) {}

Library::~Library() {
  for (const auto& set : sets_) {
    if (set) (void)set->close_everything();
  }
}

Expected<std::unique_ptr<Library>> Library::init(Backend* backend,
                                                 LibraryConfig config) {
  auto lib = std::unique_ptr<Library>(new Library(backend, config));
  const Status pfm_status = lib->pfm_.initialize(backend->host(), config.pfm);
  if (!pfm_status.is_ok()) {
    return make_error(StatusCode::kComponent,
                      "pfm initialization failed: " + pfm_status.to_string());
  }
  auto hwinfo = get_hardware_info(backend->host());
  if (!hwinfo) return hwinfo.status();
  lib->hwinfo_ = std::move(*hwinfo);

  // Build the component table. The env pointers refer to the Library's
  // own members, which outlive the registry.
  const ComponentEnv env{backend, &lib->pfm_, &lib->config_};
  const Status registered = register_builtin_components(lib->registry_, env);
  if (!registered.is_ok()) {
    return make_error(StatusCode::kComponent,
                      "component registration failed: " +
                          registered.to_string());
  }

  if (lib->hwinfo_.hybrid && !config.hybrid_support) {
    HETPAPI_WARN << "hybrid machine detected but hybrid support is disabled; "
                    "EventSets are limited to a single PMU";
  }
  return lib;
}

// --- information ------------------------------------------------------------

std::vector<std::string> Library::native_event_names() const {
  std::vector<std::string> names;
  for (const pfm::ActivePmu& pmu : pfm_.pmus()) {
    const std::vector<std::string> pmu_names = pfm_.event_names(pmu);
    names.insert(names.end(), pmu_names.begin(), pmu_names.end());
  }
  return names;
}

std::vector<std::string> Library::available_presets() const {
  std::vector<std::string> out;
  const auto defaults = pfm_.default_pmus();
  for (const PresetDef& preset : preset_table()) {
    bool available = false;
    switch (config_.preset_policy) {
      case PresetPolicy::kErrorOnHybrid:
        available = defaults.size() == 1 &&
                    native_for_kind(*defaults.front()->table, preset.kind)
                        .has_value();
        break;
      case PresetPolicy::kDefaultPmuOnly:
        available = !defaults.empty() &&
                    native_for_kind(*defaults.front()->table, preset.kind)
                        .has_value();
        break;
      case PresetPolicy::kDerivedSum:
        // Available when *every* core PMU can provide the quantity; a
        // partial sum would silently undercount.
        available = !defaults.empty();
        for (const pfm::ActivePmu* pmu : defaults) {
          if (!native_for_kind(*pmu->table, preset.kind)) available = false;
        }
        break;
    }
    if (available) out.push_back(preset.name);
  }
  return out;
}

// --- EventSet plumbing -------------------------------------------------------

EventSetCore* Library::find_set(int eventset) {
  for (const auto& set : sets_) {
    if (set && set->id() == eventset) return set.get();
  }
  return nullptr;
}

const EventSetCore* Library::find_set(int eventset) const {
  for (const auto& set : sets_) {
    if (set && set->id() == eventset) return set.get();
  }
  return nullptr;
}

Expected<int> Library::create_eventset() {
  const int id = next_set_id_++;
  auto set = std::make_unique<EventSetCore>(id, backend_, &pfm_, &config_,
                                            &registry_, &locks_);
  set->set_core_type_resolver(
      [this](std::string_view pmu) { return core_type_for_pmu(pmu); });
  sets_.push_back(std::move(set));
  return id;
}

Status Library::destroy_eventset(int eventset) {
  EventSetCore* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  if (set->running()) {
    return make_error(StatusCode::kAlreadyRunning,
                      "stop the EventSet before destroying it");
  }
  HETPAPI_RETURN_IF_ERROR(set->close_everything());
  std::erase_if(sets_, [&](const auto& s) { return s.get() == set; });
  return Status::ok();
}

Status Library::force_destroy_eventset(int eventset) {
  EventSetCore* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  // Teardown-grade: a backend that faults during stop must not pin the
  // set (and its fds) forever. Stop is best-effort, every component
  // close runs regardless, and the set is always erased; the first
  // close error is reported but nothing survives it.
  if (set->running()) (void)set->stop();
  const Status closed = set->close_everything();
  std::erase_if(sets_, [&](const auto& s) { return s.get() == set; });
  return closed;
}

Status Library::attach(int eventset, Tid tid) {
  EventSetCore* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  return set->attach(tid);
}

Status Library::attach_cpu(int eventset, int cpu) {
  EventSetCore* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  if (set->running()) {
    return make_error(StatusCode::kAlreadyRunning, "EventSet is running");
  }
  if (cpu < 0 || cpu >= hwinfo_.total_cpus) {
    return make_error(StatusCode::kInvalidArgument, "no such cpu");
  }
  return set->attach_cpu(cpu);
}

// --- name resolution ---------------------------------------------------------

Status Library::load_preset_definitions(std::string_view text) {
  auto parsed = parse_preset_definitions(text);
  if (!parsed) return parsed.status();
  // Validate every referenced event against the active tables so bad
  // files fail at load time, not at add_event time.
  for (const auto& [pmu_name, defs] : parsed->sections) {
    const pfm::ActivePmu* pmu = pfm_.find_pmu(pmu_name);
    if (pmu == nullptr) continue;  // sections for absent PMUs are inert
    for (const CustomPresetDef& def : defs) {
      for (const std::string& event : def.events) {
        auto enc = pfm_.encode(pmu_name + "::" + event);
        if (!enc) {
          return make_error(StatusCode::kInvalidArgument,
                            def.name + ": " + enc.status().to_string());
        }
      }
    }
  }
  custom_presets_ = std::move(*parsed);
  return Status::ok();
}

Status Library::add_custom_preset(EventSetCore& set, std::string_view name) {
  const auto defaults = pfm_.default_pmus();
  if (defaults.empty()) {
    return make_error(StatusCode::kComponent, "no core PMU active");
  }
  // Gather (encoding, sign) pairs across every core PMU first so a
  // missing definition aborts before any slot is opened.
  std::vector<std::pair<pfm::Encoding, int>> plan;
  for (const pfm::ActivePmu* pmu : defaults) {
    const CustomPresetDef* def =
        custom_presets_.find(pmu->table->pfm_name, name);
    if (def == nullptr) {
      return make_error(StatusCode::kNotPreset,
                        std::string(name) + " is not defined for " +
                            pmu->table->pfm_name +
                            "; a partial sum would undercount");
    }
    for (std::size_t i = 0; i < def->events.size(); ++i) {
      auto enc = pfm_.encode(pmu->table->pfm_name + "::" + def->events[i]);
      if (!enc) return enc.status();
      const int sign =
          def->op == CustomPresetDef::Op::kDerivedSub && i > 0 ? -1 : 1;
      plan.emplace_back(std::move(*enc), sign);
    }
  }
  return set.add_user_event(name, /*is_preset=*/true, plan);
}

Expected<std::string> Library::canonical_event_name(
    std::string_view name) const {
  // Mirrors add_event's resolution order: custom presets, built-in
  // presets, then the pfm native path — without touching any set.
  if (starts_with(name, "PAPI_") || starts_with(name, "papi_")) {
    for (const auto& [pmu_name, defs] : custom_presets_.sections) {
      for (const CustomPresetDef& def : defs) {
        if (iequals(def.name, name)) return def.name;
      }
    }
  }
  if (const PresetDef* preset = find_preset(name)) return preset->name;
  auto enc = pfm_.encode(name);
  if (!enc) return enc.status();
  return enc->canonical_name;
}

Status Library::add_event(int eventset, std::string_view name) {
  EventSetCore* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  if (set->running()) {
    return make_error(StatusCode::kAlreadyRunning,
                      "cannot add events while running");
  }

  // Custom (file-defined) presets take precedence over built-ins.
  if (starts_with(name, "PAPI_") || starts_with(name, "papi_")) {
    for (const auto& [pmu_name, defs] : custom_presets_.sections) {
      for (const CustomPresetDef& def : defs) {
        if (iequals(def.name, name)) {
          return add_custom_preset(*set, name);
        }
      }
    }
  }

  // Preset path: resolve per core PMU under the configured policy.
  if (const PresetDef* preset = find_preset(name)) {
    const auto defaults = pfm_.default_pmus();
    if (defaults.empty()) {
      return make_error(StatusCode::kComponent, "no core PMU active");
    }
    std::vector<std::pair<pfm::Encoding, int>> plan;
    switch (config_.preset_policy) {
      case PresetPolicy::kErrorOnHybrid:
        if (defaults.size() > 1) {
          return make_error(
              StatusCode::kNotPreset,
              "presets are ambiguous on heterogeneous machines (legacy "
              "preset policy)");
        }
        [[fallthrough]];
      case PresetPolicy::kDefaultPmuOnly: {
        const pfm::ActivePmu* pmu = defaults.front();
        const auto native = native_for_kind(*pmu->table, preset->kind);
        if (!native) {
          return make_error(StatusCode::kNotPreset,
                            preset->name + " not measurable on " +
                                pmu->table->pfm_name);
        }
        auto enc = pfm_.encode(pmu->table->pfm_name + "::" + *native);
        if (!enc) return enc.status();
        plan.emplace_back(std::move(*enc), 1);
        break;
      }
      case PresetPolicy::kDerivedSum:
        for (const pfm::ActivePmu* pmu : defaults) {
          const auto native = native_for_kind(*pmu->table, preset->kind);
          if (!native) {
            return make_error(StatusCode::kNotPreset,
                              preset->name + " not measurable on " +
                                  pmu->table->pfm_name +
                                  "; derived sum would undercount");
          }
          auto enc = pfm_.encode(pmu->table->pfm_name + "::" + *native);
          if (!enc) return enc.status();
          plan.emplace_back(std::move(*enc), 1);
        }
        break;
    }
    return set->add_user_event(preset->name, /*is_preset=*/true, plan);
  }

  // Native path.
  auto enc = pfm_.encode(name);
  if (!enc) return enc.status();
  return set->add_user_event(name, /*is_preset=*/false,
                             {{std::move(*enc), 1}});
}

Status Library::remove_event(int eventset, std::string_view name) {
  EventSetCore* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  if (set->running()) {
    return make_error(StatusCode::kAlreadyRunning,
                      "cannot remove events while running");
  }
  return set->remove_event(name);
}

Status Library::set_multiplex(int eventset) {
  EventSetCore* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  return set->set_multiplex();
}

Status Library::set_overflow(int eventset, int user_event_index,
                             std::uint64_t threshold,
                             OverflowCallback callback) {
  EventSetCore* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  return set->set_overflow(user_event_index, threshold, std::move(callback));
}

Expected<SampleBatch> Library::read_samples(int eventset) {
  EventSetCore* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  SampleBatch batch;
  HETPAPI_RETURN_IF_ERROR(set->drain_samples(batch));
  // The component layer labels samples by PMU; the facade owns the
  // core-type detection, so attribution happens here — the same ladder
  // read_qualified uses (§V-2).
  for (Sample& sample : batch.samples) {
    sample.core_type = core_type_for_pmu(sample.pmu_name);
  }
  return batch;
}

// --- run control -------------------------------------------------------------

Status Library::start(int eventset) {
  EventSetCore* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  return set->start();
}

Expected<std::vector<long long>> Library::stop(int eventset) {
  EventSetCore* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  return set->stop();
}

Expected<std::vector<long long>> Library::read(int eventset) const {
  const EventSetCore* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  return set->read();
}

Status Library::read_into(int eventset, std::vector<long long>& out) const {
  const EventSetCore* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  return set->read_into(out);
}

Status Library::read_qualified_into(int eventset,
                                    std::vector<QualifiedReading>& out) const {
  const EventSetCore* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  return set->read_qualified_into(out);
}

Expected<Reading> Library::read_checked(int eventset) const {
  const EventSetCore* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  return set->read_checked();
}

Expected<bool> Library::eventset_degraded(int eventset) const {
  const EventSetCore* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  return set->degraded();
}

std::string Library::core_type_for_pmu(std::string_view pmu_name) const {
  const pfm::ActivePmu* pmu = pfm_.find_pmu(pmu_name);
  if (pmu == nullptr || !pmu->is_core) return "";
  return core_type_label(hwinfo_.detection, pmu->cpus);
}

Expected<std::vector<QualifiedReading>> Library::read_qualified(
    int eventset) const {
  const EventSetCore* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  // Core-type labels are filled by the set's resolver (installed at
  // create_eventset), so the in-place path and this one agree.
  return set->read_qualified();
}

Status Library::accum(int eventset, std::vector<long long>& values) {
  EventSetCore* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  return set->accum(values);
}

Expected<Library::SetStatePublic> Library::state(int eventset) const {
  const EventSetCore* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  return set->running() ? SetStatePublic::kRunning : SetStatePublic::kStopped;
}

Status Library::reset(int eventset) {
  EventSetCore* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  return set->reset();
}

Expected<std::vector<EventInfo>> Library::eventset_info(int eventset) const {
  const EventSetCore* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  return set->info();
}

Expected<int> Library::eventset_group_count(int eventset) const {
  const EventSetCore* set = find_set(eventset);
  if (set == nullptr) {
    return make_error(StatusCode::kNoEventSet, "no such EventSet");
  }
  return set->group_count();
}

bool Library::eventset_running(int eventset) const {
  const EventSetCore* set = find_set(eventset);
  return set != nullptr && set->running();
}

}  // namespace hetpapi::papi
