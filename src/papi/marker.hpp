// LIKWID-style marker / region API on top of the measurement library
// (§V-5): bracket named code regions with region_begin()/region_end()
// and get per-region counter deltas, entry counts and wall time, merged
// across threads at report time.
//
// The hot path is two allocation-free reads (Library::read_into through
// the rdpmc read plan when enabled) plus a time-source call: region
// enter/exit lands in the low tens of ns on the sim backend, which is
// what makes bracketing inner loops (HPL panel factor / update phases)
// viable.
//
// Threading model: each measuring thread attaches once
// (attach_thread), carrying its own EventSet whose counters the caller
// has started. Regions nest (kMaxMarkerDepth deep); ending a region
// that is not the innermost implicitly ends the regions opened inside
// it, LIFO, so accounting stays consistent. Per-thread accumulators
// are merged under a mutex only in report(), never on the hot path.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.hpp"

namespace hetpapi::papi {

class Library;

/// Nesting depth limit per thread: a fixed frame stack keeps the hot
/// path free of allocation and of failure modes beyond "too deep".
inline constexpr int kMaxMarkerDepth = 16;

/// Aggregated measurements for one named region (merged across threads
/// in report()).
struct RegionStats {
  std::string name;
  /// Completed begin/end pairs.
  std::uint64_t entries = 0;
  /// Total time spent inside the region, in time-source units
  /// (nanoseconds for the default and the sim-kernel sources).
  std::uint64_t time = 0;
  /// Summed per-event counter deltas, one slot per EventSet event in
  /// add order.
  std::vector<long long> totals;
};

class MarkerManager {
 public:
  /// Time source: a captureless function of an opaque context, so the
  /// hot path pays a plain indirect call (no std::function). Units are
  /// the caller's; the default source reads std::chrono::steady_clock
  /// in nanoseconds. The sim-backed harnesses install the kernel clock
  /// for determinism.
  using TimeFn = std::uint64_t (*)(void*);

  MarkerManager();
  ~MarkerManager();
  MarkerManager(const MarkerManager&) = delete;
  MarkerManager& operator=(const MarkerManager&) = delete;

  /// Replace the time source. Affects regions begun after the call;
  /// install before attaching threads.
  void set_time_source(TimeFn fn, void* ctx);

  /// Bind the calling thread to `eventset` of `lib`. The caller owns
  /// the set's lifecycle (add events, start) — the markers only read
  /// it. A thread attaches to one manager at a time; re-attaching
  /// replaces the binding and drops any open frames.
  Status attach_thread(const Library* lib, int eventset);

  /// Unbind the calling thread. Open frames are discarded (their
  /// partial deltas are not accumulated); accumulated stats survive
  /// for report().
  Status detach_thread();

  /// Open the named region on the calling thread. Snapshots counters
  /// and the clock; allocation-free once the region has been seen.
  Status region_begin(std::string_view name);

  /// Close the named region: accumulate counter deltas and elapsed
  /// time. If inner regions are still open they are ended first
  /// (LIFO). Ending a region that was never begun is an error.
  Status region_end(std::string_view name);

  /// Merge per-thread accumulators into one table, regions in
  /// first-begin order (per thread, threads in attach order). Open
  /// frames are not included.
  std::vector<RegionStats> report() const;

  /// Zero all accumulated stats (entries, time, totals) on every
  /// thread. Open frames stay open; their eventual end() accumulates
  /// into the cleared table.
  void reset();

 private:
  struct ThreadState;

  ThreadState* tls_state() const;

  const std::uint64_t id_;  // generation id guarding the tls cache
  TimeFn time_fn_;
  void* time_ctx_ = nullptr;

  mutable std::mutex mu_;
  /// Owned per-thread states, attach order. Stable addresses (unique_ptr)
  /// because threads hold raw pointers in tls.
  std::vector<std::unique_ptr<ThreadState>> threads_;
};

}  // namespace hetpapi::papi
