// Deterministic, seed-driven fault injection over the Backend seam.
//
// FaultInjectingBackend decorates any Backend (sim or Linux) and
// injects the failure mix real Linux hits constantly but tests never
// exercise: perf_event_open refusing with ENOENT/EACCES/EMFILE,
// RLIMIT_NOFILE-style fd exhaustion after N opens, EINTR/EAGAIN bursts
// on reads and ioctls, rdpmc unavailability, and the stale-fd death of
// a running counter. Every decision is drawn from a seeded xoshiro
// stream, so the same seed against the same call sequence reproduces
// the same faults bit-for-bit — a chaos run is a deterministic test.
//
// The injector doubles as an accounting oracle: it keeps a ledger of
// every fd opened through it and not yet closed, so a test can assert
// "zero leaked fds" at teardown no matter which faults fired.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "papi/backend.hpp"

namespace hetpapi::papi {

/// The failure model: per-call probabilities plus structural limits.
/// All probabilities are in [0, 1] and evaluated independently per
/// backend call in a fixed order.
struct FaultProfile {
  std::string name = "none";

  /// perf_event_open refuses with this probability...
  double open_fail_prob = 0.0;
  /// ...picking the failure flavour by these relative weights.
  double open_enoent_weight = 1.0;  // -> kNotFound  (no such event/PMU)
  double open_eacces_weight = 0.0;  // -> kPermission (paranoid/seccomp)
  double open_emfile_weight = 0.0;  // -> kNoMemory   (fd table full)

  /// RLIMIT_NOFILE stand-in: opens beyond this many live fds fail with
  /// EMFILE (-1 = unlimited).
  int max_open_fds = -1;

  /// Transient EINTR/EAGAIN (-> kInterrupted) on perf_read /
  /// perf_read_group, delivered in bursts of `transient_burst`
  /// consecutive failures per trigger so a bounded retry either rides
  /// it out (burst < budget) or genuinely exhausts (burst >= budget).
  double read_transient_prob = 0.0;
  /// Transient failures on perf_ioctl (enable/disable/reset).
  double ioctl_transient_prob = 0.0;
  int transient_burst = 2;

  /// Permanent death of a live counter: each read rolls this chance of
  /// the fd going stale; every later operation on it fails (kSystem).
  double stale_fd_prob = 0.0;

  /// rdpmc reports kNotSupported (forces the read(2) fallback path).
  bool rdpmc_unavailable = false;

  /// Sampling faults. Denying the sample-ring mmap models a kernel
  /// refusing the buffer pages (mlock limit, EPERM): the PAPI drain
  /// loop must degrade that slot to counting mode, not fail the set.
  bool ring_mmap_denied = false;
  /// Ring wakeups get eaten: poll reports "nothing" though records are
  /// waiting. A drop delays the drain; the head/tail words still carry
  /// every record, so nothing may be lost.
  double wakeup_drop_prob = 0.0;
  /// Drains stall: perf_ring_poll fails with EINTR in
  /// `transient_burst`-long bursts, exercising the drain's retry path.
  double poll_stall_prob = 0.0;

  /// A named profile ("none", "flaky-open", "fd-pressure",
  /// "transient-read", "stale-fd", "mixed", "sampling-chaos");
  /// kInvalidArgument for unknown names.
  static Expected<FaultProfile> named(std::string_view name);
  /// All names accepted by named(), for CLI help text.
  static std::vector<std::string> profile_names();
};

class FaultInjectingBackend final : public Backend {
 public:
  /// What the injector did and saw — consistency oracles for tests.
  struct Stats {
    std::uint64_t opens_attempted = 0;
    std::uint64_t opens_injected_failed = 0;
    std::uint64_t reads_attempted = 0;
    std::uint64_t reads_injected_transient = 0;
    std::uint64_t ioctls_injected_transient = 0;
    std::uint64_t fds_gone_stale = 0;
    std::uint64_t stale_fd_hits = 0;
    /// User-page mmaps refused (rdpmc_unavailable profiles): forces the
    /// read planner onto the fd path. Tracked separately from
    /// total_injected() — a denied mmap is a capability report, not a
    /// failed operation the retry machinery must survive.
    std::uint64_t mmaps_denied = 0;
    /// Sample-ring mmaps refused (ring_mmap_denied profiles): the slot
    /// must degrade to counting mode. A capability report like
    /// mmaps_denied, not part of total_injected().
    std::uint64_t ring_mmaps_denied = 0;
    /// Ring wakeups eaten before the caller saw them (wakeup_drop_prob).
    std::uint64_t wakeups_dropped = 0;
    /// perf_ring_poll calls failed with injected EINTR (poll_stall_prob).
    std::uint64_t polls_stalled = 0;

    std::uint64_t total_injected() const {
      return opens_injected_failed + reads_injected_transient +
             ioctls_injected_transient + fds_gone_stale + stale_fd_hits;
    }
  };

  FaultInjectingBackend(Backend* inner, FaultProfile profile,
                        std::uint64_t seed)
      : inner_(inner), profile_(std::move(profile)), rng_(seed) {}

  Expected<int> perf_event_open(const PerfEventAttr& attr, Tid tid, int cpu,
                                int group_fd, std::uint64_t flags) override;
  Status perf_ioctl(int fd, PerfIoctl op, std::uint32_t flags) override;
  Expected<PerfValue> perf_read(int fd) override;
  Expected<std::vector<PerfValue>> perf_read_group(int fd) override;
  Expected<std::uint64_t> perf_rdpmc(int fd) override;
  Expected<const simkernel::PerfUserPage*> perf_mmap_user_page(
      int fd) override;
  Status perf_close(int fd) override;
  Status perf_set_overflow_handler(int fd, OverflowHandler handler) override {
    return inner_->perf_set_overflow_handler(fd, std::move(handler));
  }
  Expected<simkernel::PerfRingView> perf_mmap_ring(int fd) override;
  Expected<bool> perf_ring_poll(int fd) override;

  const pfm::Host& host() const override { return inner_->host(); }
  bool supports_component(std::string_view name) const override {
    return inner_->supports_component(name);
  }
  Tid default_target() const override { return inner_->default_target(); }
  void charge_call_overhead(Tid tid, std::uint64_t instructions) override {
    inner_->charge_call_overhead(tid, instructions);
  }

  /// The open-fd ledger: fds opened through this backend and not yet
  /// closed. Empty at teardown == nothing leaked, whatever faults fired.
  std::size_t open_fd_count() const { return live_fds_.size(); }
  std::vector<int> leaked_fds() const {
    return {live_fds_.begin(), live_fds_.end()};
  }

  const Stats& stats() const { return stats_; }
  const FaultProfile& profile() const { return profile_; }

 private:
  /// Shared fault ladder for read-shaped calls; kOk means "forward".
  Status read_fault(int fd);

  Backend* inner_;
  FaultProfile profile_;
  Rng rng_;
  std::set<int> live_fds_;
  std::set<int> stale_fds_;
  /// Remaining consecutive transient failures owed per fd.
  std::map<int, int> pending_transients_;
  /// Remaining consecutive poll stalls owed per fd (sampling drains).
  std::map<int, int> pending_poll_stalls_;
  Stats stats_;
};

}  // namespace hetpapi::papi
