// Shared public types of the measurement library: configuration,
// capacities, and the value-slot / overflow descriptions.
//
// These used to live in library.hpp; they moved here so the component
// and EventSet layers can consume them without depending on the facade
// (library.hpp re-exports everything, so user code is unaffected).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "papi/presets.hpp"
#include "pfm/pfmlib.hpp"

namespace hetpapi::papi {

/// Compile-time capacities for the static bookkeeping arrays.
inline constexpr std::size_t kMaxEventSetEvents = 64;
inline constexpr std::size_t kMaxPmuGroups = 8;

struct LibraryConfig {
  /// The paper's contribution on/off switch.
  bool hybrid_support = true;
  PresetPolicy preset_policy = PresetPolicy::kDerivedSum;
  pfm::PfmLibrary::Config pfm{};
  /// Instructions charged to the measured thread per start/stop/read
  /// call, per perf group touched (models caliper overhead; §V-5).
  std::uint64_t call_overhead_instructions = 900;
  /// Return multiplex-scaled estimates instead of raw values when an
  /// EventSet is multiplexed.
  bool scale_multiplexed = true;
  /// Serve reads through the userspace rdpmc read plan: mmap each
  /// resident event's perf user page and read counters with the seqlock
  /// protocol, falling back to read(2) when a page reports rdpmc off,
  /// the event is not resident (multiplexed out / migrated core types),
  /// or retries exhaust (§V-5).
  bool use_rdpmc = false;
  /// Seqlock retry budget per page read before falling back to the fd
  /// path; generous, since a stuck-odd page means a dead writer.
  int rdpmc_max_retries = 16;
  /// Cache the per-EventSet group read fan-out (which leader fds to
  /// read, which native slot each returned value lands in) instead of
  /// re-deriving it on every read/stop/accum. Off reproduces the
  /// per-call recomputation cost the overhead bench quantifies.
  bool cache_read_plan = true;
  /// Attempt budget for transient (EINTR/EAGAIN -> kInterrupted)
  /// syscall failures: every backend call site retries up to this many
  /// total attempts before surfacing the error.
  int transient_retry_attempts = 4;
  /// Graceful degradation for multi-constituent (derived hybrid)
  /// events: when one core-type PMU refuses to open its constituent,
  /// keep the constituents that did open instead of failing the whole
  /// add. The event is flagged degraded, read() returns the partial sum
  /// and read_qualified() reports the missing constituents with their
  /// validity bit cleared. Off (the default) preserves the historical
  /// all-or-nothing behaviour — a partial sum must be asked for.
  bool degrade_partial_presets = false;
};

/// Describes one value slot of an EventSet read.
struct EventInfo {
  std::string display_name;       // what the user added
  bool is_preset = false;
  std::vector<std::string> native_names;  // canonical constituent events
  /// True when the event opened on only a subset of its constituent
  /// PMUs (LibraryConfig::degrade_partial_presets); reads of this slot
  /// are partial sums.
  bool degraded = false;
  /// Canonical names of constituents that failed to open (empty unless
  /// degraded).
  std::vector<std::string> missing_names;
};

/// A tagged read: the values read() would return plus the degradation
/// state of each slot, so callers can tell a full count from a partial
/// one. A slot is degraded when its event opened on only a subset of
/// its PMUs, or when a live counter failed to deliver this collection
/// (stale fd, retry budget exhausted) — the value is then the sum of
/// the constituents that did report.
struct Reading {
  std::vector<long long> values;            // one per user event, add order
  std::vector<std::uint8_t> value_degraded; // 1 = values[i] is partial
  bool degraded = false;                    // any slot degraded
};

/// One constituent of a qualified (per-PMU) read: the raw value the
/// native event counted on its PMU, before derived summation.
struct QualifiedValue {
  std::string native_name;  // canonical, e.g. "adl_glc::INST_RETIRED:ANY"
  std::string pmu_name;     // pfm table name, e.g. "adl_glc"
  /// Detected core-type label serving this PMU ("intel_core",
  /// "capacity-1024", ...); empty for non-core PMUs (rapl, uncore,
  /// software).
  std::string core_type;
  /// +1 / -1 weight this constituent contributes to the derived total.
  int sign = 1;
  long long value = 0;
  /// False when this constituent delivered no count: it never opened
  /// (degraded add) or its counter died / kept failing at read time.
  /// Invalid parts carry value 0 and are excluded from the total.
  bool valid = true;
};

/// PAPI_read_qualified-style result for one user event: the transparent
/// derived total (identical to what read() returns for the slot) plus
/// the per-PMU breakdown it was summed from (§V-2).
struct QualifiedReading {
  std::string display_name;
  bool is_preset = false;
  long long total = 0;
  std::vector<QualifiedValue> parts;
  /// True when any part is invalid: the total is a partial sum over the
  /// valid constituents only.
  bool degraded = false;
};

/// PAPI_overflow delivery: which user event of which EventSet crossed
/// its threshold, attributed to the constituent native event that fired
/// (so hybrid callers can split samples per core type).
struct OverflowEvent {
  int eventset = -1;
  int user_event_index = -1;
  std::string native_name;  // constituent that crossed the threshold
  std::uint64_t value = 0;
  std::uint64_t periods = 1;
};
using OverflowCallback = std::function<void(const OverflowEvent&)>;

/// One decoded PERF_RECORD_SAMPLE, attributed back to the user event
/// whose constituent native event wrote it — what the drain loop
/// (Library::read_samples) returns after walking each slot's mmap ring.
struct Sample {
  int eventset = -1;
  int user_event_index = -1;
  std::string native_name;  // constituent whose ring carried the record
  std::string pmu_name;     // pfm table name, e.g. "adl_glc"
  /// Detected core-type label serving the PMU ("intel_core",
  /// "capacity-1024", ...) via the core_type_for_pmu ladder; empty for
  /// non-core PMUs.
  std::string core_type;
  std::uint64_t ip = 0;       // sampled instruction pointer
  std::uint32_t tid = 0;      // sampled thread
  std::uint64_t time_ns = 0;  // sample timestamp
  int cpu = -1;               // cpu the period crossing landed on
  std::uint64_t period = 0;   // counts this sample represents
};

/// The result of one drain pass over an EventSet's sample rings.
struct SampleBatch {
  std::vector<Sample> samples;
  /// Records dropped ring-side (decoded PERF_RECORD_LOST sums).
  std::uint64_t lost = 0;
  /// Records the cursor resynchronized past after a malformed header.
  std::uint64_t malformed = 0;
  /// Slots running in counting-mode degradation: their ring mmap was
  /// denied, so they deliver overflow callbacks but no samples.
  int rings_denied = 0;
  /// Slots skipped this pass because the poll/wakeup surface kept
  /// failing transiently (stalled drain); their records stay queued for
  /// the next pass.
  int drains_stalled = 0;
  /// Slots whose ring held records although the wakeup surface reported
  /// none (dropped wakeups) — drained anyway, counted for diagnostics.
  int wakeups_missed = 0;
};

}  // namespace hetpapi::papi
