#include "simkernel/trace.hpp"

#include "base/strings.hpp"

namespace hetpapi::simkernel {

void TraceRecorder::begin_segment(int cpu, Tid tid, SimTime start) {
  const auto it = open_.find(cpu);
  if (it != open_.end()) {
    // Implicit end of the previous occupant.
    Segment finished = it->second;
    finished.end = start;
    if (finished.end > finished.start) segments_.push_back(finished);
    open_.erase(it);
  }
  Segment segment;
  segment.cpu = cpu;
  segment.tid = tid;
  segment.start = start;
  open_[cpu] = segment;
}

void TraceRecorder::end_segment(int cpu, SimTime end) {
  const auto it = open_.find(cpu);
  if (it == open_.end()) return;
  Segment finished = it->second;
  finished.end = end;
  if (finished.end > finished.start) segments_.push_back(finished);
  open_.erase(it);
}

void TraceRecorder::set_thread_name(Tid tid, std::string name) {
  thread_names_[tid] = std::move(name);
}

std::string TraceRecorder::to_chrome_json(
    const std::map<int, std::string>& cpu_labels) const {
  std::string out = "[\n";
  bool first = true;
  const auto label_of = [&](int cpu) {
    const auto it = cpu_labels.find(cpu);
    return it != cpu_labels.end() ? it->second : "cpu" + std::to_string(cpu);
  };
  const auto name_of = [&](Tid tid) {
    const auto it = thread_names_.find(tid);
    return it != thread_names_.end() ? it->second
                                     : "tid " + std::to_string(tid);
  };
  // Row metadata: one "thread" per cpu under process 0.
  std::map<int, bool> seen_cpu;
  for (const Segment& segment : segments_) {
    if (seen_cpu[segment.cpu]) continue;
    seen_cpu[segment.cpu] = true;
    if (!first) out += ",\n";
    first = false;
    out += str_format(
        "  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,"
        "\"args\":{\"name\":\"%s\"}}",
        segment.cpu, label_of(segment.cpu).c_str());
  }
  for (const Segment& segment : segments_) {
    if (!first) out += ",\n";
    first = false;
    const double ts_us =
        static_cast<double>(segment.start.since_epoch.count()) / 1000.0;
    const double dur_us =
        static_cast<double>((segment.end - segment.start).count()) / 1000.0;
    out += str_format(
        "  {\"name\":\"%s\",\"cat\":\"sched\",\"ph\":\"X\",\"pid\":0,"
        "\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}",
        name_of(segment.tid).c_str(), segment.cpu, ts_us, dur_us);
  }
  out += "\n]\n";
  return out;
}

}  // namespace hetpapi::simkernel
