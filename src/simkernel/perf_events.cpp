#include "simkernel/perf_events.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

namespace hetpapi::simkernel {

void PerfSubsystem::publish_user_page(EventObj& ev) {
  PerfUserPage* page = ev.user_page.get();
  if (page == nullptr) return;
  const bool resident = ev.enabled && ev.scheduled && ev.core_match;
  ++page->lock;  // odd: update in progress
  std::atomic_signal_fence(std::memory_order_seq_cst);
  if (resident) {
    if (page->index == 0 || ev.value < ev.pmc_base) {
      // Residency (re)gained, or the counter was RESET below its base:
      // re-anchor so offset + pmc always reconstructs `value`.
      ev.pmc_base = ev.value;
    }
    page->index = static_cast<std::uint32_t>(ev.counter_slot) + 1;
    page->offset = static_cast<std::int64_t>(ev.pmc_base);
    page->sim_pmc = ev.value - ev.pmc_base;
  } else {
    page->index = 0;
    page->offset = 0;
    page->sim_pmc = 0;
  }
  page->time_enabled = static_cast<std::uint64_t>(ev.time_enabled.count());
  page->time_running = static_cast<std::uint64_t>(ev.time_running.count());
  std::atomic_signal_fence(std::memory_order_seq_cst);
  ++page->lock;  // even: consistent again
}

PerfSubsystem::PerfSubsystem(const PmuRegistry* pmus, Config config)
    : pmus_(pmus), config_(config) {}

PerfSubsystem::EventObj* PerfSubsystem::find(int fd) {
  const auto it = events_.find(fd);
  return it == events_.end() ? nullptr : &it->second;
}

const PerfSubsystem::EventObj* PerfSubsystem::find(int fd) const {
  const auto it = events_.find(fd);
  return it == events_.end() ? nullptr : &it->second;
}

PerfSubsystem::Context& PerfSubsystem::context_of(const EventObj& ev) {
  return contexts_[{scope_key(ev.tid, ev.cpu), ev.pmu->type_id}];
}

void PerfSubsystem::index_event(EventObj& ev) {
  if (ev.tid >= 0) {
    tid_index_[ev.tid].push_back(&ev);
  } else {
    cpu_index_[ev.cpu].push_back(&ev);
  }
}

void PerfSubsystem::unindex_event(EventObj& ev) {
  if (ev.tid >= 0) {
    const auto it = tid_index_.find(ev.tid);
    if (it != tid_index_.end()) std::erase(it->second, &ev);
  } else {
    const auto it = cpu_index_.find(ev.cpu);
    if (it != cpu_index_.end()) std::erase(it->second, &ev);
  }
}

int PerfSubsystem::gp_counters_needed(const EventObj& leader) const {
  const auto needs_gp = [&](const EventObj& ev) {
    if (ev.pmu->pmu_class == PmuClass::kSoftware) return false;
    return !ev.pmu->is_fixed(ev.kind);
  };
  int needed = needs_gp(leader) ? 1 : 0;
  for (const EventObj* sib : leader.sibling_ptrs) {
    if (needs_gp(*sib)) ++needed;
  }
  return needed;
}

Expected<int> PerfSubsystem::open(const PerfEventAttr& attr, Tid tid, int cpu,
                                  int group_fd, std::uint64_t flags,
                                  const PackageCounters& pkg, SimTime now) {
  (void)flags;  // only FD_CLOEXEC is defined and it is a no-op here
  if (static_cast<int>(events_.size()) >= config_.max_open_fds) {
    return make_error(StatusCode::kNoMemory, "fd table full");
  }
  const PmuDesc* pmu = pmus_->find_by_type(attr.type);
  if (pmu == nullptr) {
    // ENOENT: no PMU with this type id (e.g. asking for cpu_atom on a
    // traditional machine).
    return make_error(StatusCode::kNotFound,
                      "no PMU with type " + std::to_string(attr.type));
  }
  if (attr.config >= kNumCountKinds) {
    return make_error(StatusCode::kInvalidArgument, "config out of range");
  }
  const auto kind = static_cast<CountKind>(attr.config);
  if (!pmu->supports(kind)) {
    // The "event does not exist on this core type" case (§IV-A), e.g.
    // topdown slots on the E-core PMU.
    return make_error(StatusCode::kNotFound,
                      pmu->sysfs_name + " does not implement this event");
  }

  // Scope validation.
  if (tid < 0 && cpu < 0) {
    return make_error(StatusCode::kInvalidArgument, "need a tid or a cpu");
  }
  switch (pmu->pmu_class) {
    case PmuClass::kRapl:
    case PmuClass::kUncore:
      // Package-scope PMUs reject task binding (EINVAL on real kernels).
      if (tid >= 0) {
        return make_error(StatusCode::kInvalidArgument,
                          pmu->sysfs_name + " events are cpu-scoped only");
      }
      [[fallthrough]];
    case PmuClass::kCore:
      if (cpu >= 0 &&
          std::find(pmu->cpus.begin(), pmu->cpus.end(), cpu) ==
              pmu->cpus.end()) {
        // Binding a cpu_atom event to a P-core cpu: ENXIO-equivalent.
        return make_error(StatusCode::kInvalidArgument,
                          "cpu " + std::to_string(cpu) + " not served by " +
                              pmu->sysfs_name);
      }
      break;
    case PmuClass::kSoftware:
      break;
  }

  EventObj ev;
  ev.attr = attr;
  ev.pmu = pmu;
  ev.kind = kind;
  ev.tid = tid;
  ev.cpu = cpu;

  if (group_fd >= 0) {
    EventObj* leader = find(group_fd);
    if (leader == nullptr) {
      return make_error(StatusCode::kInvalidArgument, "group_fd not open");
    }
    if (!leader->is_leader()) {
      return make_error(StatusCode::kInvalidArgument,
                        "group_fd is not a group leader");
    }
    if (leader->tid != tid || leader->cpu != cpu) {
      return make_error(StatusCode::kInvalidArgument,
                        "group members must share the leader's scope");
    }
    // The restriction at the heart of the paper: one group, one PMU.
    // Software events are the kernel's sanctioned exception.
    const bool sibling_is_software = pmu->pmu_class == PmuClass::kSoftware;
    if (leader->pmu->type_id != pmu->type_id && !sibling_is_software) {
      return make_error(
          StatusCode::kInvalidArgument,
          "cannot group " + pmu->sysfs_name + " event under " +
              leader->pmu->sysfs_name + " leader: groups cannot span PMUs");
    }
    ev.leader_fd = group_fd;
  }

  const int fd = next_fd_++;
  ev.fd = fd;
  if (ev.leader_fd < 0) ev.leader_fd = fd;

  ev.enabled = !attr.disabled;
  if (ev.enabled) {
    ev.enabled_at = now;
    if (ev.is_readthrough()) ev.base = pkg.get(ev.kind);
  }
  if (attr.sample_period > 0) {
    if ((attr.sample_type &
         ~static_cast<std::uint64_t>(kSampleTypeDefault)) != 0) {
      // EINVAL, the way the kernel rejects sample_type bits it does not
      // implement.
      return make_error(StatusCode::kInvalidArgument,
                        "unsupported sample_type bits");
    }
    ev.next_overflow_at = attr.sample_period;
    if (ev.attr.sample_type == 0) ev.attr.sample_type = kSampleTypeDefault;
  }

  if (pmu->pmu_class == PmuClass::kCore) {
    // Mint the event's perf_event_mmap_page; reschedule() below
    // publishes the initial residency state through it.
    ev.user_page = std::make_unique<PerfUserPage>();
    ev.user_page->version = 1;
    ev.user_page->size = sizeof(PerfUserPage);
    ev.user_page->pmc_width = 48;
    ev.user_page->sim_magic = kSimUserPageMagic;
    if (config_.user_rdpmc) ev.user_page->capabilities |= kCapUserRdpmc;
    if (attr.sample_period > 0) {
      // The sample ring: capacity counts records of this event's layout
      // (the sim relaxes the kernel's power-of-two page constraint; the
      // cursor's modulo walk handles any size).
      const std::uint64_t record = sizeof(PerfEventHeader) +
                                   perf_sample_body_size(ev.attr.sample_type);
      ev.ring_data.assign(config_.sample_ring_capacity * record, 0);
      ev.user_page->data_offset = 4096;  // ABI shape: data follows the page
      ev.user_page->data_size = ev.ring_data.size();
    }
  }

  auto [it, inserted] = events_.emplace(fd, std::move(ev));
  EventObj& stored = it->second;
  if (stored.leader_fd != fd) {
    EventObj* leader = find(stored.leader_fd);
    leader->siblings.push_back(fd);
    leader->sibling_ptrs.push_back(&stored);
  } else {
    Context& ctx = context_of(stored);
    ctx.group_leaders.push_back(fd);
  }
  index_event(stored);
  reschedule(context_of(stored));
  return fd;
}

void PerfSubsystem::reschedule(Context& ctx) {
  if (ctx.group_leaders.empty()) {
    ctx.needs_rotation = false;
    return;
  }
  // All groups in one context share a PMU by construction.
  const EventObj* first = find(ctx.group_leaders.front());
  if (first == nullptr) return;
  const int total_gp = first->pmu->num_gp_counters;
  int remaining = total_gp;
  bool overflow = false;

  // Pinned groups first, then rotation order.
  std::vector<int> order;
  order.reserve(ctx.group_leaders.size());
  for (int fd : ctx.group_leaders) {
    const EventObj* leader = find(fd);
    if (leader != nullptr && leader->attr.pinned) order.push_back(fd);
  }
  for (int fd : ctx.group_leaders) {
    const EventObj* leader = find(fd);
    if (leader != nullptr && !leader->attr.pinned) order.push_back(fd);
  }

  int next_slot = 0;
  for (int fd : order) {
    EventObj* leader = find(fd);
    if (leader == nullptr) continue;
    const bool active = leader->enabled;
    bool placed = false;
    if (active) {
      const int need = gp_counters_needed(*leader);
      if (need <= remaining) {
        remaining -= need;
        placed = true;
      } else {
        overflow = true;
      }
    }
    leader->scheduled = placed && leader->enabled;
    if (leader->scheduled) leader->counter_slot = next_slot++;
    publish_user_page(*leader);
    for (EventObj* sib : leader->sibling_ptrs) {
      sib->scheduled = placed && sib->enabled;
      if (sib->scheduled) sib->counter_slot = next_slot++;
      publish_user_page(*sib);
    }
  }
  ctx.needs_rotation = overflow;
}

void PerfSubsystem::rotate(SimTime now) {
  for (auto& [key, ctx] : contexts_) {
    if (!ctx.needs_rotation || ctx.group_leaders.size() < 2) continue;
    if (now - ctx.last_rotation < config_.rotation_period) continue;
    ctx.last_rotation = now;
    // Skip pinned leaders: they never rotate out. Rotate the rest.
    std::vector<int> pinned;
    std::vector<int> flexible;
    for (int fd : ctx.group_leaders) {
      const EventObj* leader = find(fd);
      if (leader != nullptr && leader->attr.pinned) {
        pinned.push_back(fd);
      } else {
        flexible.push_back(fd);
      }
    }
    if (flexible.size() >= 2) {
      std::rotate(flexible.begin(), flexible.begin() + 1, flexible.end());
    }
    ctx.group_leaders = std::move(pinned);
    ctx.group_leaders.insert(ctx.group_leaders.end(), flexible.begin(),
                             flexible.end());
    reschedule(ctx);
  }
}

Status PerfSubsystem::do_ioctl_one(EventObj& ev, PerfIoctl op,
                                   const PackageCounters& pkg, SimTime now) {
  switch (op) {
    case PerfIoctl::kEnable:
      if (!ev.enabled) {
        ev.enabled = true;
        ev.enabled_at = now;
        if (ev.is_readthrough()) ev.base = pkg.get(ev.kind);
      }
      break;
    case PerfIoctl::kDisable:
      if (ev.enabled) {
        if (ev.is_readthrough()) {
          ev.value += pkg.get(ev.kind) - ev.base;
          const SimDuration window = now - ev.enabled_at;
          ev.time_enabled += window;
          ev.time_running += window;
        }
        ev.enabled = false;
      }
      break;
    case PerfIoctl::kReset:
      // Kernel semantics: RESET zeroes the count, not the times.
      ev.value = 0;
      if (ev.attr.sample_period > 0) {
        ev.next_overflow_at = ev.attr.sample_period;  // re-arm sampling
      }
      if (ev.is_readthrough() && ev.enabled) ev.base = pkg.get(ev.kind);
      break;
    default:
      return make_error(StatusCode::kInvalidArgument, "bad ioctl");
  }
  // RESET never runs through reschedule(), so the page must be
  // republished here; for enable/disable the reschedule republish makes
  // this redundant but harmless.
  publish_user_page(ev);
  return Status::ok();
}

Status PerfSubsystem::ioctl(int fd, PerfIoctl op, std::uint32_t flags,
                            const PackageCounters& pkg, SimTime now) {
  EventObj* ev = find(fd);
  if (ev == nullptr) {
    return make_error(StatusCode::kInvalidArgument, "bad fd");
  }
  HETPAPI_RETURN_IF_ERROR(do_ioctl_one(*ev, op, pkg, now));
  if ((flags & kIocFlagGroup) != 0 && ev->is_leader()) {
    for (int sib_fd : ev->siblings) {
      EventObj* sib = find(sib_fd);
      if (sib != nullptr) {
        HETPAPI_RETURN_IF_ERROR(do_ioctl_one(*sib, op, pkg, now));
      }
    }
  }
  if (op == PerfIoctl::kEnable || op == PerfIoctl::kDisable) {
    reschedule(context_of(*ev));
  }
  return Status::ok();
}

PerfValue PerfSubsystem::snapshot(const EventObj& ev,
                                  const PackageCounters& pkg,
                                  SimTime now) const {
  PerfValue out;
  out.value = ev.value;
  out.time_enabled_ns =
      static_cast<std::uint64_t>(ev.time_enabled.count());
  out.time_running_ns =
      static_cast<std::uint64_t>(ev.time_running.count());
  if (ev.is_readthrough() && ev.enabled) {
    out.value += pkg.get(ev.kind) - ev.base;
    const auto window =
        static_cast<std::uint64_t>((now - ev.enabled_at).count());
    out.time_enabled_ns += window;
    out.time_running_ns += window;
  }
  return out;
}

Expected<PerfValue> PerfSubsystem::read(int fd, const PackageCounters& pkg,
                                        SimTime now) const {
  const EventObj* ev = find(fd);
  if (ev == nullptr) {
    return make_error(StatusCode::kInvalidArgument, "bad fd");
  }
  return snapshot(*ev, pkg, now);
}

Expected<std::vector<PerfValue>> PerfSubsystem::read_group(
    int fd, const PackageCounters& pkg, SimTime now) const {
  const EventObj* leader = find(fd);
  if (leader == nullptr) {
    return make_error(StatusCode::kInvalidArgument, "bad fd");
  }
  if (!leader->is_leader()) {
    return make_error(StatusCode::kInvalidArgument,
                      "group read requires the leader fd");
  }
  // The sibling fan-out uses the cached pointers: no per-sibling fd
  // lookup on this per-sample hot path.
  std::vector<PerfValue> out;
  out.reserve(1 + leader->sibling_ptrs.size());
  out.push_back(snapshot(*leader, pkg, now));
  for (const EventObj* sib : leader->sibling_ptrs) {
    out.push_back(snapshot(*sib, pkg, now));
  }
  return out;
}

Expected<std::uint64_t> PerfSubsystem::rdpmc(int fd) const {
  const EventObj* ev = find(fd);
  if (ev == nullptr) {
    return make_error(StatusCode::kInvalidArgument, "bad fd");
  }
  if (ev->is_readthrough() ||
      ev->pmu->pmu_class == PmuClass::kSoftware) {
    return make_error(StatusCode::kNotSupported,
                      "rdpmc only serves core PMU counters");
  }
  if (!ev->enabled || !ev->scheduled) {
    // The mmap page publishes index 0 when the event is not resident;
    // userspace must fall back to read(2).
    return make_error(StatusCode::kNotRunning,
                      "event not resident on a counter");
  }
  return ev->value;
}

Expected<const PerfUserPage*> PerfSubsystem::mmap_user_page(int fd) const {
  const EventObj* ev = find(fd);
  if (ev == nullptr) {
    return make_error(StatusCode::kInvalidArgument, "bad fd");
  }
  if (ev->user_page == nullptr) {
    return make_error(StatusCode::kNotSupported,
                      "only core PMU events carry a user page");
  }
  return const_cast<const PerfUserPage*>(ev->user_page.get());
}

Status PerfSubsystem::close(int fd) {
  EventObj* ev = find(fd);
  if (ev == nullptr) {
    return make_error(StatusCode::kInvalidArgument, "bad fd");
  }
  unindex_event(*ev);
  if (ev->is_leader()) {
    // Kernel behaviour: closing a leader promotes each sibling to a
    // singleton group in the same context.
    Context& ctx = context_of(*ev);
    std::erase(ctx.group_leaders, fd);
    for (EventObj* sib : ev->sibling_ptrs) {
      sib->leader_fd = sib->fd;
      ctx.group_leaders.push_back(sib->fd);
    }
    events_.erase(fd);
    reschedule(ctx);
    return Status::ok();
  }
  // Detach from leader.
  EventObj* leader = find(ev->leader_fd);
  if (leader != nullptr) {
    std::erase(leader->siblings, fd);
    std::erase(leader->sibling_ptrs, ev);
  }
  Context& ctx = context_of(*ev);
  events_.erase(fd);
  reschedule(ctx);
  return Status::ok();
}

void PerfSubsystem::on_execution(Tid tid, Tid leader, int cpu,
                                 cpumodel::CoreTypeId core_type,
                                 const ExecCounts& counts, SimDuration dt,
                                 SimTime now, std::uint64_t ip) {
  // The slice touches events bound to the thread itself plus events
  // opened with attr.inherit on the process-group leader. Both index
  // lists are fd-sorted; merge them so events are visited in fd order,
  // exactly as the old full-table scan did (overflow handlers observe
  // that order).
  static const std::vector<EventObj*> kEmpty;
  const auto direct_it = tid_index_.find(tid);
  const std::vector<EventObj*>& direct =
      direct_it != tid_index_.end() ? direct_it->second : kEmpty;
  const auto leader_it =
      leader != tid ? tid_index_.find(leader) : tid_index_.end();
  const std::vector<EventObj*>& inherited =
      leader_it != tid_index_.end() ? leader_it->second : kEmpty;

  std::size_t di = 0;
  std::size_t li = 0;
  while (di < direct.size() || li < inherited.size()) {
    EventObj* ev = nullptr;
    if (li >= inherited.size() ||
        (di < direct.size() && direct[di]->fd < inherited[li]->fd)) {
      ev = direct[di++];
    } else {
      ev = inherited[li++];
      if (!ev->attr.inherit) continue;
    }
    if (!ev->enabled) continue;
    if (ev->cpu >= 0 && ev->cpu != cpu) continue;
    if (ev->pmu->pmu_class == PmuClass::kSoftware) {
      ev->time_enabled += dt;
      ev->time_running += dt;
      if (ev->kind == CountKind::kTaskClockNs) {
        ev->value += static_cast<std::uint64_t>(dt.count());
      }
      continue;
    }
    if (ev->pmu->pmu_class != PmuClass::kCore) continue;
    if (ev->pmu->core_type != core_type) {
      // The thread migrated to a core type this event's PMU does not
      // serve: flip the user page to non-resident (index 0) so the
      // userspace fast path falls back to the fd read.
      if (ev->core_match) {
        ev->core_match = false;
        publish_user_page(*ev);
      }
      continue;
    }
    ev->core_match = true;
    apply_counts(*ev, counts, dt, dt, cpu, core_type, tid, now, ip);
  }
}

void PerfSubsystem::on_cpu_execution(int cpu, cpumodel::CoreTypeId core_type,
                                     const ExecCounts& counts,
                                     SimDuration dt, Tid tid, SimTime now,
                                     std::uint64_t ip) {
  const auto it = cpu_index_.find(cpu);
  if (it == cpu_index_.end()) return;
  for (EventObj* ev : it->second) {
    if (!ev->enabled) continue;
    if (ev->pmu->pmu_class != PmuClass::kCore) continue;
    if (ev->pmu->core_type != core_type) continue;
    apply_counts(*ev, counts, dt, dt, cpu, core_type, tid, now, ip);
  }
}

PerfRingView PerfSubsystem::ring_view(EventObj& ev) {
  PerfRingView view;
  view.page = ev.user_page.get();
  view.data = ev.ring_data.data();
  view.size = ev.ring_data.size();
  view.sample_type = ev.attr.sample_type;
  return view;
}

bool PerfSubsystem::ring_write(EventObj& ev, const void* bytes,
                               std::size_t size) {
  PerfUserPage* page = ev.user_page.get();
  const std::uint64_t ring = ev.ring_data.size();
  if (page == nullptr || ring == 0) return false;
  // data_head/data_tail are free-running; unread span is their
  // difference (unsigned wrap math, kernel-style).
  if (page->data_head - page->data_tail + size > ring) return false;
  const auto* src = static_cast<const std::uint8_t*>(bytes);
  for (std::size_t i = 0; i < size; ++i) {
    ev.ring_data[(page->data_head + i) % ring] = src[i];
  }
  // Publish the head only after the record bytes — the release half of
  // the head/tail protocol (signal fences suffice in the deterministic
  // sim, mirroring publish_user_page's seqlock writer).
  std::atomic_signal_fence(std::memory_order_seq_cst);
  page->data_head += size;
  return true;
}

bool PerfSubsystem::ring_flush_lost(EventObj& ev) {
  if (ev.pending_lost == 0) return true;
  struct {
    PerfEventHeader hdr;
    std::uint64_t id;
    std::uint64_t lost;
  } lost_rec{};
  lost_rec.hdr.type = kPerfRecordLost;
  lost_rec.hdr.misc = kPerfRecordMiscUser;
  lost_rec.hdr.size = sizeof(lost_rec);
  lost_rec.id = static_cast<std::uint64_t>(ev.fd);
  lost_rec.lost = ev.pending_lost;
  if (!ring_write(ev, &lost_rec, sizeof(lost_rec))) return false;
  ev.pending_lost = 0;
  return true;
}

void PerfSubsystem::ring_emit_sample(EventObj& ev, std::uint64_t ip, Tid tid,
                                     int cpu, SimTime now) {
  // A deferred LOST record goes in front of any newer sample so the
  // stream stays ordered; until it fits, new samples keep dropping.
  if (!ring_flush_lost(ev)) {
    ++ev.samples_lost;
    ++ev.pending_lost;
    return;
  }

  const std::uint64_t sample_type = ev.attr.sample_type;
  std::uint8_t buf[sizeof(PerfEventHeader) + 5 * 8];
  PerfEventHeader hdr;
  hdr.type = kPerfRecordSample;
  hdr.misc = kPerfRecordMiscUser;
  hdr.size = static_cast<std::uint16_t>(sizeof(hdr) +
                                        perf_sample_body_size(sample_type));
  std::memcpy(buf, &hdr, sizeof(hdr));
  std::size_t at = sizeof(hdr);
  const auto put64 = [&](std::uint64_t v) {
    std::memcpy(buf + at, &v, sizeof(v));
    at += sizeof(v);
  };
  if (sample_type & kSampleIp) put64(ip);
  if (sample_type & kSampleTid) {
    // u32 pid | u32 tid; the sim's threads are their own pids.
    const auto t = static_cast<std::uint32_t>(tid);
    put64(static_cast<std::uint64_t>(t) | (static_cast<std::uint64_t>(t) << 32));
  }
  if (sample_type & kSampleTime) {
    put64(static_cast<std::uint64_t>(now.since_epoch.count()));
  }
  if (sample_type & kSampleCpu) {
    put64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(cpu)));
  }
  if (sample_type & kSamplePeriod) put64(ev.attr.sample_period);

  if (!ring_write(ev, buf, at)) {
    ++ev.samples_lost;
    ++ev.pending_lost;
    return;
  }
  if (ev.attr.wakeup_events == 0) {
    ++ev.wakeups_pending;
  } else if (++ev.samples_since_wakeup >= ev.attr.wakeup_events) {
    ev.samples_since_wakeup = 0;
    ++ev.wakeups_pending;
  }
}

void PerfSubsystem::apply_counts(EventObj& ev, const ExecCounts& counts,
                                 SimDuration wall, SimDuration running,
                                 int cpu, cpumodel::CoreTypeId core_type,
                                 Tid tid, SimTime now, std::uint64_t ip) {
  ev.time_enabled += wall;
  if (!ev.scheduled) {
    publish_user_page(ev);  // keep the page's time_enabled moving
    return;
  }
  ev.time_running += running;
  ev.value += counts.get(ev.kind);
  publish_user_page(ev);

  // Sampling: deliver one notification per slice that crosses period
  // boundaries (coalesced, as an interrupt storm would be), advancing
  // the threshold past the current value.
  if (ev.attr.sample_period > 0 && ev.value >= ev.next_overflow_at) {
    const std::uint64_t periods =
        (ev.value - ev.next_overflow_at) / ev.attr.sample_period + 1;
    ev.total_overflows += periods;
    ev.next_overflow_at += periods * ev.attr.sample_period;
    // Ring-buffer records: one per period, coalesced at the slice end
    // (interrupt storms coalesce the same way on hardware).
    for (std::uint64_t i = 0; i < periods; ++i) {
      ring_emit_sample(ev, ip, tid, cpu, now);
    }
    if (ev.overflow_handler) {
      OverflowInfo info;
      info.fd = ev.fd;
      info.value = ev.value;
      info.overflows = periods;
      info.cpu = cpu;
      info.core_type = core_type;
      ev.overflow_handler(info);
    }
  }
}

Status PerfSubsystem::set_overflow_handler(int fd, OverflowHandler handler) {
  EventObj* ev = find(fd);
  if (ev == nullptr) {
    return make_error(StatusCode::kInvalidArgument, "bad fd");
  }
  if (ev->attr.sample_period == 0) {
    return make_error(StatusCode::kInvalidArgument,
                      "event was opened in counting mode (no sample_period)");
  }
  ev->overflow_handler = std::move(handler);
  return Status::ok();
}

Expected<std::uint64_t> PerfSubsystem::overflow_count(int fd) const {
  const EventObj* ev = find(fd);
  if (ev == nullptr) {
    return make_error(StatusCode::kInvalidArgument, "bad fd");
  }
  return ev->total_overflows;
}

Expected<std::vector<PerfSubsystem::SampleRecord>> PerfSubsystem::read_samples(
    int fd) {
  EventObj* ev = find(fd);
  if (ev == nullptr) {
    return make_error(StatusCode::kInvalidArgument, "bad fd");
  }
  if (ev->attr.sample_period == 0) {
    return make_error(StatusCode::kInvalidArgument,
                      "event is in counting mode: no sample ring");
  }
  std::vector<SampleRecord> out;
  if (ev->user_page == nullptr || ev->ring_data.empty()) return out;
  PerfRingCursor cursor(ring_view(*ev));
  PerfEventHeader hdr;
  std::uint8_t body[sizeof(PerfEventHeader) + 5 * 8];
  while (cursor.next(&hdr, body, sizeof(body))) {
    if (hdr.type != kPerfRecordSample) continue;  // LOST is in samples_lost
    PerfSampleParsed parsed;
    if (!perf_parse_sample(ev->attr.sample_type, body,
                           hdr.size - sizeof(PerfEventHeader), &parsed)) {
      continue;
    }
    SampleRecord rec;
    rec.ip = parsed.ip;
    rec.time_ns = parsed.time;
    rec.cpu = static_cast<int>(parsed.cpu);
    rec.tid = static_cast<Tid>(parsed.tid);
    // SAMPLE records carry no core type on real kernels either; the
    // event's PMU implies it — apply_counts only fires on a matching
    // core type.
    rec.core_type = ev->pmu->core_type;
    rec.period = parsed.period;
    out.push_back(rec);
  }
  cursor.commit();
  ev->wakeups_pending = 0;
  ev->samples_since_wakeup = 0;
  return out;
}

Expected<PerfRingView> PerfSubsystem::mmap_ring(int fd) {
  EventObj* ev = find(fd);
  if (ev == nullptr) {
    return make_error(StatusCode::kInvalidArgument, "bad fd");
  }
  if (ev->attr.sample_period == 0) {
    return make_error(StatusCode::kInvalidArgument,
                      "event is in counting mode: no sample ring");
  }
  if (ev->user_page == nullptr || ev->ring_data.empty()) {
    return make_error(StatusCode::kNotSupported,
                      "only core PMU sampling events carry a ring");
  }
  return ring_view(*ev);
}

Expected<bool> PerfSubsystem::ring_poll(int fd) {
  EventObj* ev = find(fd);
  if (ev == nullptr) {
    return make_error(StatusCode::kInvalidArgument, "bad fd");
  }
  if (ev->attr.sample_period == 0) {
    return make_error(StatusCode::kInvalidArgument,
                      "event is in counting mode: nothing to poll");
  }
  // A poll is the reader's trip into the kernel: if a drain freed ring
  // space since the last write, publish the deferred LOST record now —
  // otherwise drops after the final sample of a finished thread would
  // stay invisible to a ring-only reader.
  if (ev->user_page != nullptr && !ev->ring_data.empty()) {
    (void)ring_flush_lost(*ev);
  }
  // Consume the pending wakeups: poll answers "did the counter wake you
  // since you last asked" — a hint; the ring head/tail words are the
  // ground truth a drain must consult regardless.
  const bool fired = ev->wakeups_pending > 0;
  ev->wakeups_pending = 0;
  return fired;
}

Expected<std::uint64_t> PerfSubsystem::lost_samples(int fd) const {
  const EventObj* ev = find(fd);
  if (ev == nullptr) {
    return make_error(StatusCode::kInvalidArgument, "bad fd");
  }
  return ev->samples_lost;
}

void PerfSubsystem::on_software(Tid tid, CountKind kind, std::uint64_t delta) {
  const auto it = tid_index_.find(tid);
  if (it == tid_index_.end()) return;
  for (EventObj* ev : it->second) {
    if (!ev->enabled) continue;
    if (ev->pmu->pmu_class != PmuClass::kSoftware) continue;
    if (ev->kind != kind) continue;
    ev->value += delta;
  }
}

bool PerfSubsystem::is_scheduled(int fd) const {
  const EventObj* ev = find(fd);
  return ev != nullptr && ev->scheduled;
}

int PerfSubsystem::multiplexing_contexts() const {
  int count = 0;
  for (const auto& [key, ctx] : contexts_) {
    if (ctx.needs_rotation) ++count;
  }
  return count;
}

}  // namespace hetpapi::simkernel
