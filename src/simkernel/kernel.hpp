// SimKernel: the simulated operating system the library runs against.
//
// Owns the machine model, the scheduler, the perf_event subsystem, the
// sysfs/procfs tree and simulated time. Advancing time executes the
// spawned programs on the modeled cores, drives DVFS/RAPL/thermal
// dynamics, and feeds microarchitectural counts to whichever perf events
// are live — giving the PAPI layer above it the same world a real hybrid
// Linux kernel presents.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/status.hpp"
#include "base/units.hpp"
#include "cpumodel/dvfs.hpp"
#include "cpumodel/machine.hpp"
#include "simkernel/perf_events.hpp"
#include "simkernel/pmu.hpp"
#include "simkernel/program.hpp"
#include "simkernel/scheduler.hpp"
#include "simkernel/thread.hpp"
#include "simkernel/trace.hpp"
#include "vfs/vfs.hpp"

namespace hetpapi::simkernel {

class SimKernel {
 public:
  struct Config {
    /// Simulation timestep. 500 us resolves scheduler churn and RAPL
    /// dynamics; long HPL runs use 1 ms for speed.
    SimDuration tick{std::chrono::microseconds(500)};
    std::uint64_t seed = 42;
    Scheduler::Config sched{};
    PerfSubsystem::Config perf{};
  };

  SimKernel(cpumodel::MachineSpec machine, Config config);
  explicit SimKernel(cpumodel::MachineSpec machine)
      : SimKernel(std::move(machine), Config{}) {}

  // --- process management ------------------------------------------------

  /// Spawn a thread running `program`. Default affinity: every cpu.
  Tid spawn(std::shared_ptr<Program> program);
  Tid spawn(std::shared_ptr<Program> program, const CpuSet& affinity);

  /// Spawn a thread into an existing thread's process group (fork/clone):
  /// inherit-mode events on the group leader count it too.
  Expected<Tid> spawn_in_group(std::shared_ptr<Program> program,
                               const CpuSet& affinity, Tid leader);

  /// sched_setaffinity equivalent (taskset).
  Status set_affinity(Tid tid, const CpuSet& affinity);

  bool thread_alive(Tid tid) const;
  /// Ground truth: what the thread actually executed, per core type.
  const ThreadGroundTruth* ground_truth(Tid tid) const;

  /// Inject extra retired instructions into a thread's next slice —
  /// models the user-space cost of measurement calls (the "minor
  /// overhead inherent in using PAPI" visible in the paper's validation
  /// numbers).
  void inject_instructions(Tid tid, std::uint64_t count);

  // --- time --------------------------------------------------------------

  SimTime now() const { return now_; }

  /// Advance exactly `duration` (rounded up to whole ticks).
  void run_for(SimDuration duration);

  /// Advance until every thread exits or `max` elapses; returns the
  /// time actually advanced.
  SimDuration run_until_idle(SimDuration max);

  bool any_thread_alive() const { return alive_count_ > 0; }

  // --- perf_event syscall surface ----------------------------------------

  Expected<int> perf_event_open(const PerfEventAttr& attr, Tid tid, int cpu,
                                int group_fd, std::uint64_t flags = 0);
  Status perf_ioctl(int fd, PerfIoctl op, std::uint32_t flags = 0);
  Expected<PerfValue> perf_read(int fd) const;
  Expected<std::vector<PerfValue>> perf_read_group(int fd) const;
  Expected<std::uint64_t> perf_rdpmc(int fd) const;
  Expected<const PerfUserPage*> perf_mmap_user_page(int fd) const {
    return perf_.mmap_user_page(fd);
  }
  Status perf_close(int fd);
  Status perf_set_overflow_handler(int fd,
                                   PerfSubsystem::OverflowHandler handler) {
    return perf_.set_overflow_handler(fd, std::move(handler));
  }
  Expected<std::uint64_t> perf_overflow_count(int fd) const {
    return perf_.overflow_count(fd);
  }
  Expected<std::vector<PerfSubsystem::SampleRecord>> perf_read_samples(
      int fd) {
    return perf_.read_samples(fd);
  }
  Expected<std::uint64_t> perf_lost_samples(int fd) const {
    return perf_.lost_samples(fd);
  }
  Expected<PerfRingView> perf_mmap_ring(int fd) {
    return perf_.mmap_ring(fd);
  }
  Expected<bool> perf_ring_poll(int fd) { return perf_.ring_poll(fd); }
  const PerfSubsystem& perf() const { return perf_; }

  // --- introspection surfaces the detection code uses ---------------------

  /// Read a sysfs/procfs path. Dynamic attributes (scaling_cur_freq,
  /// thermal temps, RAPL energy_uj) are generated on demand, like sysfs
  /// show() callbacks; everything else is the static boot-time tree.
  Expected<std::string> sysfs_read(std::string_view path) const;

  /// List a sysfs directory.
  Expected<std::vector<std::string>> sysfs_list(std::string_view path) const;

  /// CPUID leaf 0x1A emulation: hybrid core kind of a cpu (Intel only;
  /// kNotSupported elsewhere, like executing CPUID on ARM).
  Expected<cpumodel::IntelCoreKind> cpuid_core_kind(int cpu) const;

  const cpumodel::MachineSpec& machine() const { return machine_; }
  const PmuRegistry& pmus() const { return pmus_; }
  cpumodel::PackageGovernor& governor() { return governor_; }
  const cpumodel::PackageGovernor& governor() const { return governor_; }

  PackageCounters package_counters() const;

  /// Total threads ever spawned (tests).
  int spawned_count() const { return next_tid_; }

  /// Attach a scheduler-timeline recorder (nullptr detaches). The
  /// recorder must outlive its attachment.
  void attach_tracer(TraceRecorder* tracer) { tracer_ = tracer; }

 private:
  void tick_once();
  void build_static_sysfs();

  cpumodel::MachineSpec machine_;
  Config config_;
  PmuRegistry pmus_;
  cpumodel::PackageGovernor governor_;
  Scheduler scheduler_;
  PerfSubsystem perf_;
  vfs::Vfs sysfs_;
  Rng rng_;
  SimTime now_{};

  std::map<Tid, SimThread> threads_;
  /// tid -> thread, O(1): tids are dense and never reused, and std::map
  /// nodes are pointer-stable.
  std::vector<SimThread*> by_tid_;
  /// Threads not yet exited. Zero enables the idle fast-path tick: with
  /// no runnable thread, scheduling, placement accounting and execution
  /// consume no RNG and change no state, so they can be skipped
  /// bit-exactly while power/thermal/rotation still advance.
  std::size_t alive_count_ = 0;
  Tid next_tid_ = 0;
  std::map<Tid, std::uint64_t> pending_injections_;
  /// Per-tick scratch, reused to keep the hot loop allocation-free.
  std::vector<SimThread*> runnable_;
  std::vector<Tid> assignment_;
  std::vector<cpumodel::CpuLoad> loads_;
  /// tid-indexed cpu placement for the current tick (-1 = waiting);
  /// reset only for runnable tids each tick.
  std::vector<int> placed_;
  /// Previous tick's cpu assignment, for switch/migration accounting.
  std::vector<Tid> last_assignment_;
  /// Memory-bandwidth contention factor applied to the next tick.
  double memory_contention_ = 1.0;
  /// Free-running IMC counters.
  std::uint64_t imc_reads_ = 0;
  std::uint64_t imc_writes_ = 0;
  /// DRAM-domain energy (J): idle refresh floor plus per-byte access
  /// cost, integrated per tick.
  double dram_energy_j_ = 0.0;
  TraceRecorder* tracer_ = nullptr;
};

}  // namespace hetpapi::simkernel
