// The interface between the simulated kernel and the code a simulated
// thread "runs".
//
// Programs are timing models, not instruction interpreters: when the
// scheduler gives a thread a slice on some core, the kernel asks the
// program to consume up to `budget` of core time and report the
// microarchitectural activity (instructions, cache traffic, flops, ...)
// that execution produced at the core's current frequency. Those counts
// are the ground truth the perf_event layer attributes to whichever
// events are live on that core — the same position hardware counters
// occupy on a real machine.
#pragma once

#include <cstdint>

#include "base/rng.hpp"
#include "base/units.hpp"
#include "cpumodel/types.hpp"
#include "simkernel/perf_abi.hpp"

namespace hetpapi::simkernel {

/// What the kernel tells a program about where it is running.
struct ExecContext {
  const cpumodel::CoreTypeSpec* core_type = nullptr;
  cpumodel::CoreTypeId core_type_id = 0;
  int cpu = 0;
  MegaHertz frequency{0};
  SimTime now{};
  /// Effective LLC miss latency multiplier from memory-bandwidth
  /// contention this tick (1.0 = uncontended).
  double memory_contention = 1.0;
  Rng* rng = nullptr;
};

/// Microarchitectural activity produced by one execution slice.
struct ExecCounts {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::uint64_t ref_cycles = 0;
  std::uint64_t llc_references = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t branches = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t stalled_cycles = 0;
  std::uint64_t flops_dp = 0;

  ExecCounts& operator+=(const ExecCounts& o) {
    instructions += o.instructions;
    cycles += o.cycles;
    ref_cycles += o.ref_cycles;
    llc_references += o.llc_references;
    llc_misses += o.llc_misses;
    branches += o.branches;
    branch_misses += o.branch_misses;
    stalled_cycles += o.stalled_cycles;
    flops_dp += o.flops_dp;
    return *this;
  }

  std::uint64_t get(CountKind kind) const;
};

/// Result of asking a program to run for up to `budget`.
struct ExecSlice {
  /// Core time actually consumed (<= budget). A program that has work
  /// consumes the whole budget unless it finishes mid-slice.
  SimDuration consumed{0};
  ExecCounts counts;
  /// Switching-activity factor of this slice for the power model
  /// (SIMD-dense ~1.0, spin-wait ~0.1).
  double activity = 0.8;
  /// Synthetic instruction pointer for the slice: the "address" the
  /// program was executing, stamped into PERF_RECORD_SAMPLE records
  /// whose period crossing lands in this slice. Programs with phases
  /// publish one IP per phase so a profiler can attribute samples to
  /// hot spots; 0 means "unknown" (plain workloads).
  std::uint64_t sample_ip = 0;
  /// True if the program is out of work *for now* (e.g. waiting at a
  /// barrier for other threads); it stays schedulable and will be polled
  /// again. Waiting slices should still consume budget and may retire
  /// spin-loop instructions.
  bool waiting = false;
  /// True if the program has finished; the thread exits.
  bool finished = false;
};

class Program {
 public:
  virtual ~Program() = default;

  /// Consume up to `budget` of core time. Must set slice.consumed > 0
  /// unless finished; returning consumed == 0 with finished == false is
  /// a contract violation the kernel turns into a thread abort.
  virtual ExecSlice run(const ExecContext& ctx, SimDuration budget) = 0;
};

inline std::uint64_t ExecCounts::get(CountKind kind) const {
  switch (kind) {
    case CountKind::kInstructions: return instructions;
    case CountKind::kCycles: return cycles;
    case CountKind::kRefCycles: return ref_cycles;
    case CountKind::kLlcReferences: return llc_references;
    case CountKind::kLlcMisses: return llc_misses;
    case CountKind::kBranches: return branches;
    case CountKind::kBranchMisses: return branch_misses;
    case CountKind::kStalledCycles: return stalled_cycles;
    case CountKind::kFlopsDp: return flops_dp;
    // Topdown slots ~ issue-width * cycles; retiring ~ instructions.
    case CountKind::kTopdownSlots: return cycles * 6;
    case CountKind::kTopdownRetiring: return instructions;
    case CountKind::kTopdownBadSpec: return branch_misses * 20;
    default: return 0;
  }
}

}  // namespace hetpapi::simkernel
