// Simulated perf_event subsystem.
//
// Implements the kernel semantics the paper's PAPI changes are written
// against (§IV-A):
//  * perf_event_open(attr, tid, cpu, group_fd) with attr.type selecting
//    a PMU; on hybrid machines each core type is its own PMU.
//  * A thread-bound event follows its thread across context switches and
//    migrations, but *only counts while the thread runs on a core whose
//    type matches the event's PMU* — counting retired instructions
//    across all core types therefore requires one event per core PMU.
//  * Event groups schedule atomically on one PMU; a sibling whose PMU
//    differs from the leader's is rejected (software events are the
//    kernel-sanctioned exception and may join any group).
//  * When the groups on a context need more counters than the PMU has,
//    they are multiplexed by rotation; reads report time_enabled and
//    time_running so users can scale estimates.
//  * RAPL / uncore PMUs are package-scoped: events bind to a cpu, not a
//    thread, and read free-running hardware registers.
//  * An mmap'd rdpmc fast path serves userspace reads without a syscall
//    while the event is resident on a counter.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "base/status.hpp"
#include "base/units.hpp"
#include "simkernel/perf_abi.hpp"
#include "simkernel/pmu.hpp"
#include "simkernel/program.hpp"
#include "simkernel/thread.hpp"

namespace hetpapi::simkernel {

/// Free-running package counters the perf layer reads through (RAPL
/// energy, IMC traffic). Provided by the kernel each time it is needed.
struct PackageCounters {
  std::uint64_t energy_pkg_uj = 0;
  std::uint64_t energy_cores_uj = 0;
  std::uint64_t energy_dram_uj = 0;
  std::uint64_t imc_cas_reads = 0;
  std::uint64_t imc_cas_writes = 0;

  std::uint64_t get(CountKind kind) const {
    switch (kind) {
      case CountKind::kEnergyPkgUj: return energy_pkg_uj;
      case CountKind::kEnergyCoresUj: return energy_cores_uj;
      case CountKind::kEnergyDramUj: return energy_dram_uj;
      case CountKind::kUncoreCasReads: return imc_cas_reads;
      case CountKind::kUncoreCasWrites: return imc_cas_writes;
      default: return 0;
    }
  }
};

class PerfSubsystem {
 public:
  struct Config {
    /// Multiplex rotation period (kernel uses the scheduler tick).
    SimDuration rotation_period{std::chrono::milliseconds(1)};
    int max_open_fds = 4096;
    /// Per-event sample ring capacity (the mmap buffer size, in
    /// records). When full, further samples are dropped and counted as
    /// lost — perf's overwrite-less semantics.
    std::size_t sample_ring_capacity = 4096;
    /// Advertise cap_user_rdpmc on the user pages of core-PMU events
    /// (/sys/devices/cpu/rdpmc on). Off models a locked-down host: pages
    /// still exist but readers must take the fd path.
    bool user_rdpmc = true;
  };

  PerfSubsystem(const PmuRegistry* pmus, Config config);
  explicit PerfSubsystem(const PmuRegistry* pmus)
      : PerfSubsystem(pmus, Config{}) {}

  /// perf_event_open(2). `tid` >= 0 binds to a thread (cpu must be -1 or
  /// restricts to one cpu); tid == -1 with cpu >= 0 is a cpu-scoped
  /// event (needed for RAPL/uncore). Returns the new fd.
  Expected<int> open(const PerfEventAttr& attr, Tid tid, int cpu,
                     int group_fd, std::uint64_t flags,
                     const PackageCounters& pkg, SimTime now);

  Status ioctl(int fd, PerfIoctl op, std::uint32_t flags,
               const PackageCounters& pkg, SimTime now);

  /// read(2) on a single event fd.
  Expected<PerfValue> read(int fd, const PackageCounters& pkg,
                           SimTime now) const;

  /// read(2) with PERF_FORMAT_GROUP on the leader: leader first, then
  /// siblings in creation order.
  Expected<std::vector<PerfValue>> read_group(int fd,
                                              const PackageCounters& pkg,
                                              SimTime now) const;

  Status close(int fd);

  /// rdpmc-style userspace read: succeeds only while the event is
  /// resident on a hardware counter of the core its thread is currently
  /// on; callers must fall back to read(2) otherwise — the exact contract
  /// PAPI's fast-read path navigates (§V-5).
  Expected<std::uint64_t> rdpmc(int fd) const;

  /// mmap(2) of the event's first perf page: the seqlock-published
  /// perf_event_mmap_page userspace read plans are built on (§V-5).
  /// Only core-PMU events carry one — software and read-through package
  /// events return kNotSupported, as the real fast path serves only
  /// hardware counters. The pointer stays valid until close(fd).
  Expected<const PerfUserPage*> mmap_user_page(int fd) const;

  // --- Kernel-side hooks -------------------------------------------------

  /// Attribute one execution slice of `tid` on a core of `core_type`.
  /// time_enabled advances only while the thread runs on a matching core
  /// type, so unscaled hybrid counts sum correctly (the convention the
  /// paper's summed P+E validation relies on).
  /// `leader` is the executing thread's process-group leader: events
  /// opened with attr.inherit on the leader match every group member.
  /// `ip` is the slice's synthetic instruction pointer (ExecSlice::
  /// sample_ip), stamped into SAMPLE records whose period crossing lands
  /// in the slice.
  void on_execution(Tid tid, Tid leader, int cpu,
                    cpumodel::CoreTypeId core_type, const ExecCounts& counts,
                    SimDuration dt, SimTime now, std::uint64_t ip = 0);

  /// Attribute cpu-scope execution (for cpu-bound core events).
  void on_cpu_execution(int cpu, cpumodel::CoreTypeId core_type,
                        const ExecCounts& counts, SimDuration dt, Tid tid,
                        SimTime now, std::uint64_t ip = 0);

  /// Advance software-event values for a slice of `tid`.
  void on_software(Tid tid, CountKind kind, std::uint64_t delta);

  /// Rotate multiplexed contexts whose period elapsed.
  void rotate(SimTime now);

  /// Number of live events (tests / leak checks).
  std::size_t open_event_count() const { return events_.size(); }

  /// True if the event is currently scheduled on a counter.
  bool is_scheduled(int fd) const;

  /// Count of groups currently multiplexing (diagnostics).
  int multiplexing_contexts() const;

  /// Overflow delivery for sampling events (attr.sample_period > 0): the
  /// handler runs synchronously when the counter crosses a period
  /// boundary — the simulator's stand-in for the SIGIO the kernel sends.
  struct OverflowInfo {
    int fd = -1;
    std::uint64_t value = 0;      // counter value at delivery
    std::uint64_t overflows = 1;  // periods crossed in this slice
    int cpu = -1;                 // where the thread was running
    cpumodel::CoreTypeId core_type = 0;
  };
  using OverflowHandler = std::function<void(const OverflowInfo&)>;
  Status set_overflow_handler(int fd, OverflowHandler handler);

  /// Total overflows recorded for an event.
  Expected<std::uint64_t> overflow_count(int fd) const;

  /// One PERF_RECORD_SAMPLE record, decoded from the event's ring
  /// buffer. The ring itself stores ABI bytes (PerfEventHeader + body
  /// per attr.sample_type); this is the convenience view read_samples
  /// hands back after running the shared PerfRingCursor drain.
  struct SampleRecord {
    std::uint64_t ip = 0;      // ExecSlice::sample_ip of the slice
    std::uint64_t time_ns = 0;
    int cpu = -1;
    Tid tid = kInvalidTid;
    cpumodel::CoreTypeId core_type = 0;
    std::uint64_t period = 0;  // counts represented by this sample
  };

  /// Drain the event's sample ring (the mmap-buffer read): decode the
  /// ABI records between data_tail and data_head and advance data_tail.
  /// Only sampling-mode events have a ring.
  Expected<std::vector<SampleRecord>> read_samples(int fd);

  /// Samples dropped because the ring was full (PERF_RECORD_LOST).
  Expected<std::uint64_t> lost_samples(int fd) const;

  /// mmap(2) of the event's full perf region: the control page plus the
  /// sample ring data area. Only sampling-mode core events carry a ring;
  /// counting-mode events serve just the user page via mmap_user_page.
  /// The view stays valid until close(fd).
  Expected<PerfRingView> mmap_ring(int fd);

  /// poll(2) on the event fd with a zero timeout: true when a sampling
  /// wakeup is pending — every ring write with wakeup_events == 0, every
  /// wakeup_events-th sample otherwise. Readers treat this as a hint;
  /// the ring's data_head/data_tail words are the ground truth.
  Expected<bool> ring_poll(int fd);

 private:
  struct EventObj {
    int fd = -1;
    PerfEventAttr attr;
    const PmuDesc* pmu = nullptr;
    CountKind kind = CountKind::kInstructions;
    Tid tid = kInvalidTid;  // -1 for cpu scope
    int cpu = -1;           // -1 for any cpu
    int leader_fd = -1;     // == fd for leaders
    std::vector<int> siblings;  // leader only, creation order
    /// Cached pointers to the sibling EventObjs (same order as
    /// `siblings`): std::map nodes are pointer-stable, so group reads
    /// can fan out without one map lookup per sibling per read.
    std::vector<EventObj*> sibling_ptrs;
    bool enabled = false;
    bool scheduled = false;  // resident on a counter right now
    /// False while the event's thread last executed on a core type the
    /// event's PMU does not serve — the migration case whose page must
    /// report index == 0 so userspace falls back to the fd path.
    bool core_match = true;
    /// Hardware counter slot while scheduled (page index = slot + 1).
    int counter_slot = 0;
    /// Counter value at the moment the event last became resident; the
    /// user page publishes offset = pmc_base, sim_pmc = value - pmc_base.
    std::uint64_t pmc_base = 0;
    /// The event's perf_event_mmap_page (core-PMU events only). Heap
    /// allocated so mmap_user_page can hand out a stable pointer.
    std::unique_ptr<PerfUserPage> user_page;
    std::uint64_t value = 0;
    SimDuration time_enabled{0};
    SimDuration time_running{0};
    /// Snapshot base for read-through package counters.
    std::uint64_t base = 0;
    SimTime enabled_at{};
    /// Sampling state.
    std::uint64_t next_overflow_at = 0;  // value threshold
    std::uint64_t total_overflows = 0;
    OverflowHandler overflow_handler;
    /// The mmap ring data area (ABI record bytes; sampling core events
    /// only). data_head/data_tail live in the user page, exactly as the
    /// kernel keeps them in the mmap control page.
    std::vector<std::uint8_t> ring_data;
    std::uint64_t samples_lost = 0;   // cumulative, lost_samples()
    /// Drops not yet surfaced as an in-band PERF_RECORD_LOST record
    /// (written the next time ring space frees up, kernel-style).
    std::uint64_t pending_lost = 0;
    /// Wakeup accounting for ring_poll: samples written since the last
    /// wakeup fired, and wakeups not yet consumed by a poll.
    std::uint32_t samples_since_wakeup = 0;
    std::uint64_t wakeups_pending = 0;

    bool is_leader() const { return leader_fd == fd; }
    bool is_readthrough() const {
      return pmu->pmu_class == PmuClass::kRapl ||
             pmu->pmu_class == PmuClass::kUncore;
    }
  };

  /// Multiplexing context: all groups of one (scope, pmu) pair.
  struct Context {
    std::vector<int> group_leaders;  // rotation order
    bool needs_rotation = false;
    SimTime last_rotation{};
  };
  using ContextKey = std::pair<std::int64_t, std::uint32_t>;  // scope, pmu

  static std::int64_t scope_key(Tid tid, int cpu) {
    // Thread scopes are positive, cpu scopes negative (offset to keep
    // cpu 0 distinct).
    return tid >= 0 ? static_cast<std::int64_t>(tid)
                    : -1000 - static_cast<std::int64_t>(cpu);
  }

  EventObj* find(int fd);
  const EventObj* find(int fd) const;
  Context& context_of(const EventObj& ev);

  /// Re-run counter scheduling for a context: greedily place groups in
  /// rotation order, pinned leaders first; sets `scheduled` flags.
  void reschedule(Context& ctx);

  int gp_counters_needed(const EventObj& leader) const;

  PerfValue snapshot(const EventObj& ev, const PackageCounters& pkg,
                     SimTime now) const;

  void apply_counts(EventObj& ev, const ExecCounts& counts,
                    SimDuration wall, SimDuration running, int cpu,
                    cpumodel::CoreTypeId core_type, Tid tid, SimTime now,
                    std::uint64_t ip);

  /// A PerfRingView over the event's own ring (writer side).
  static PerfRingView ring_view(EventObj& ev);

  /// Copy `size` ring bytes in at data_head (wrapping) and publish the
  /// new head with the release ordering readers pair with. Returns false
  /// (and touches nothing) when the unread span leaves no room.
  bool ring_write(EventObj& ev, const void* bytes, std::size_t size);

  /// Write one SAMPLE record (per attr.sample_type) for a period
  /// crossing; emits the deferred LOST record first when space allows,
  /// and does the wakeup accounting.
  void ring_emit_sample(EventObj& ev, std::uint64_t ip, Tid tid, int cpu,
                        SimTime now);

  /// Publish the deferred LOST record if one is pending and the ring
  /// has room. Called before every new SAMPLE (drops stay ordered ahead
  /// of newer data) and from ring_poll — the reader's kernel entry —
  /// so drops after the final sample write still surface in-band once a
  /// drain frees space. Returns false while the record does not fit.
  bool ring_flush_lost(EventObj& ev);

  Status do_ioctl_one(EventObj& ev, PerfIoctl op, const PackageCounters& pkg,
                      SimTime now);

  /// Seqlock-publish the event's current state to its user page (no-op
  /// for events without one): bump lock to odd, update the fields, bump
  /// back to even — the writer half of the protocol readers retry on.
  static void publish_user_page(EventObj& ev);

  /// Register a newly opened event in the scope index; drop on close.
  void index_event(EventObj& ev);
  void unindex_event(EventObj& ev);

  const PmuRegistry* pmus_;
  Config config_;
  std::map<int, EventObj> events_;
  std::map<ContextKey, Context> contexts_;
  /// Scope indexes for the per-tick attribution hooks: thread-bound
  /// events keyed by tid, cpu-bound (tid < 0) events keyed by cpu, each
  /// list in ascending-fd order (fds are never reused, so appends keep
  /// the order sorted). The hooks previously scanned every open event
  /// per executing slice — O(#events x #running threads) per tick.
  std::map<Tid, std::vector<EventObj*>> tid_index_;
  std::map<int, std::vector<EventObj*>> cpu_index_;
  int next_fd_ = 3;
};

}  // namespace hetpapi::simkernel
