// Scheduler timeline recording with chrome://tracing (Perfetto) export.
//
// Records which thread occupied which cpu over time — the visual
// counterpart of the migration behaviour the paper's validation test
// depends on. Load the JSON in chrome://tracing or ui.perfetto.dev; one
// row per cpu, one slice per scheduling segment, colored by thread.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/units.hpp"
#include "simkernel/thread.hpp"

namespace hetpapi::simkernel {

class TraceRecorder {
 public:
  /// Called by the kernel when `tid` starts running on `cpu`.
  void begin_segment(int cpu, Tid tid, SimTime start);

  /// Called when the cpu's current segment ends (switch-out or idle).
  void end_segment(int cpu, SimTime end);

  /// Give a thread a human-readable name for the export.
  void set_thread_name(Tid tid, std::string name);

  /// Number of completed segments (tests).
  std::size_t segment_count() const { return segments_.size(); }

  struct Segment {
    int cpu = -1;
    Tid tid = kInvalidTid;
    SimTime start{};
    SimTime end{};
  };
  const std::vector<Segment>& segments() const { return segments_; }

  /// Serialize to the Trace Event Format (JSON array of duration
  /// events; ts/dur in microseconds as the format requires). `labels`
  /// maps cpu -> row label; unnamed cpus get "cpuN".
  std::string to_chrome_json(
      const std::map<int, std::string>& cpu_labels = {}) const;

 private:
  std::map<int, Segment> open_;  // per-cpu in-flight segment
  std::vector<Segment> segments_;
  std::map<Tid, std::string> thread_names_;
};

}  // namespace hetpapi::simkernel
