#include "simkernel/scheduler.hpp"

#include <algorithm>
#include <cmath>

namespace hetpapi::simkernel {

namespace {

double compute_cpu_weight(const cpumodel::MachineSpec& machine, int cpu,
                          const Scheduler::Config& config) {
  const cpumodel::CoreTypeSpec& type = machine.type_of(cpu);
  switch (config.policy) {
    case PlacementPolicy::kUniform:
      return 1.0;
    case PlacementPolicy::kLittleFirst:
      return 1.0 / std::pow(static_cast<double>(type.cpu_capacity),
                            config.capacity_bias_exponent);
    case PlacementPolicy::kCapacityBiased:
      break;
  }
  return std::pow(static_cast<double>(type.cpu_capacity),
                  config.capacity_bias_exponent);
}

}  // namespace

Scheduler::Scheduler(const cpumodel::MachineSpec* machine, Config config,
                     std::uint64_t seed)
    : machine_(machine), config_(config), rng_(seed) {
  weights_.reserve(static_cast<std::size_t>(machine_->num_cpus()));
  for (int cpu = 0; cpu < machine_->num_cpus(); ++cpu) {
    weights_.push_back(compute_cpu_weight(*machine_, cpu, config_));
  }
}

int Scheduler::pick_cpu(const SimThread& thread,
                        const std::vector<bool>& cpu_taken, bool force_move) {
  // Cache affinity: stay put when allowed and not forced to move.
  if (!force_move && thread.last_cpu >= 0 &&
      thread.affinity.contains(thread.last_cpu) &&
      !cpu_taken[static_cast<std::size_t>(thread.last_cpu)]) {
    return thread.last_cpu;
  }
  // Weighted choice among free allowed cpus, biased toward capacity.
  double total = 0.0;
  for (int cpu = 0; cpu < machine_->num_cpus(); ++cpu) {
    if (!thread.affinity.contains(cpu) ||
        cpu_taken[static_cast<std::size_t>(cpu)]) {
      continue;
    }
    total += cpu_weight(cpu);
  }
  if (total <= 0.0) return -1;
  double roll = rng_.uniform() * total;
  for (int cpu = 0; cpu < machine_->num_cpus(); ++cpu) {
    if (!thread.affinity.contains(cpu) ||
        cpu_taken[static_cast<std::size_t>(cpu)]) {
      continue;
    }
    roll -= cpu_weight(cpu);
    if (roll <= 0.0) return cpu;
  }
  return -1;  // unreachable given total > 0
}

void Scheduler::assign(const std::vector<SimThread*>& runnable,
                       SimDuration dt, std::vector<Tid>& assignment) {
  const auto num_cpus = static_cast<std::size_t>(machine_->num_cpus());
  assignment.assign(num_cpus, kInvalidTid);
  cpu_taken_.assign(num_cpus, false);

  // Virtual-runtime order; stable sort keeps ties deterministic.
  order_.assign(runnable.begin(), runnable.end());
  std::stable_sort(order_.begin(), order_.end(),
                   [](const SimThread* a, const SimThread* b) {
                     return a->vruntime_ns < b->vruntime_ns;
                   });

  const double move_probability =
      config_.migration_rate_hz * std::chrono::duration<double>(dt).count();
  for (SimThread* thread : order_) {
    if (thread->state == ThreadState::kExited) continue;
    const bool force_move = rng_.uniform() < move_probability;
    const int cpu = pick_cpu(*thread, cpu_taken_, force_move);
    if (cpu < 0) continue;  // time-share: waits for a later tick
    cpu_taken_[static_cast<std::size_t>(cpu)] = true;
    assignment[static_cast<std::size_t>(cpu)] = thread->tid;
  }
}

void Scheduler::charge(SimThread& thread, int cpu,
                       SimDuration consumed) const {
  const cpumodel::CoreTypeSpec& type = machine_->type_of(cpu);
  const double scale = 1024.0 / static_cast<double>(type.cpu_capacity);
  thread.vruntime_ns +=
      static_cast<double>(consumed.count()) * scale;
}

}  // namespace hetpapi::simkernel
