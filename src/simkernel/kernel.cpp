#include "simkernel/kernel.hpp"

#include <algorithm>
#include <cassert>

#include "base/log.hpp"
#include "base/strings.hpp"

namespace hetpapi::simkernel {

SimKernel::SimKernel(cpumodel::MachineSpec machine, Config config)
    : machine_(std::move(machine)),
      config_(config),
      pmus_(PmuRegistry::build(machine_)),
      governor_(machine_, config.seed ^ 0x9d2c5680ULL),
      scheduler_(&machine_, config.sched, config.seed ^ 0x5bd1e995ULL),
      perf_(&pmus_, config.perf),
      rng_(config.seed) {
  const Status valid = machine_.validate();
  if (!valid.is_ok()) {
    HETPAPI_ERROR << "invalid machine spec: " << valid.to_string();
  }
  last_assignment_.assign(static_cast<std::size_t>(machine_.num_cpus()),
                          kInvalidTid);
  build_static_sysfs();
}

// --- process management ----------------------------------------------------

Tid SimKernel::spawn(std::shared_ptr<Program> program) {
  return spawn(std::move(program), CpuSet::all(machine_.num_cpus()));
}

Tid SimKernel::spawn(std::shared_ptr<Program> program, const CpuSet& affinity) {
  SimThread thread;
  thread.tid = next_tid_++;
  thread.group_leader = thread.tid;
  thread.program = std::move(program);
  thread.affinity = affinity;
  thread.truth.per_type.resize(machine_.core_types.size());
  thread.truth.time_per_type.resize(machine_.core_types.size(),
                                    SimDuration{0});
  const Tid tid = thread.tid;
  const auto it = threads_.emplace(tid, std::move(thread)).first;
  by_tid_.push_back(&it->second);
  placed_.push_back(-1);
  ++alive_count_;
  return tid;
}

Expected<Tid> SimKernel::spawn_in_group(std::shared_ptr<Program> program,
                                        const CpuSet& affinity, Tid leader) {
  const auto it = threads_.find(leader);
  if (it == threads_.end()) {
    return make_error(StatusCode::kNotFound, "no such group leader");
  }
  const Tid tid = spawn(std::move(program), affinity);
  // Join the leader's group (transitively flattened, like thread-group
  // ids on Linux).
  threads_.at(tid).group_leader = it->second.group_leader;
  return tid;
}

Status SimKernel::set_affinity(Tid tid, const CpuSet& affinity) {
  const auto it = threads_.find(tid);
  if (it == threads_.end()) {
    return make_error(StatusCode::kNotFound, "no such thread");
  }
  if (affinity.empty()) {
    return make_error(StatusCode::kInvalidArgument, "empty affinity mask");
  }
  for (int cpu : affinity.to_list()) {
    if (cpu >= machine_.num_cpus()) {
      return make_error(StatusCode::kInvalidArgument,
                        "cpu " + std::to_string(cpu) + " does not exist");
    }
  }
  it->second.affinity = affinity;
  return Status::ok();
}

bool SimKernel::thread_alive(Tid tid) const {
  const auto it = threads_.find(tid);
  return it != threads_.end() && it->second.state != ThreadState::kExited;
}

const ThreadGroundTruth* SimKernel::ground_truth(Tid tid) const {
  const auto it = threads_.find(tid);
  return it == threads_.end() ? nullptr : &it->second.truth;
}

void SimKernel::inject_instructions(Tid tid, std::uint64_t count) {
  pending_injections_[tid] += count;
}

// --- time loop ---------------------------------------------------------------

void SimKernel::run_for(SimDuration duration) {
  const SimTime deadline = now_ + duration;
  while (now_ < deadline) tick_once();
}

SimDuration SimKernel::run_until_idle(SimDuration max) {
  const SimTime start = now_;
  const SimTime deadline = now_ + max;
  while (any_thread_alive() && now_ < deadline) tick_once();
  return now_ - start;
}

void SimKernel::tick_once() {
  const SimDuration dt = config_.tick;
  const auto num_cpus = static_cast<std::size_t>(machine_.num_cpus());
  const double dt_seconds = std::chrono::duration<double>(dt).count();

  if (alive_count_ == 0) {
    // Idle fast path. With zero runnable threads the scheduler draws no
    // RNG (it only rolls per runnable thread) and the execution loop is
    // a no-op, so this tick is bit-identical to the full path — only
    // power/thermal decay, multiplex rotation and the DRAM idle floor
    // still advance. The first idle tick also closes any open tracer
    // segments, exactly as the full path's assignment diff would.
    for (std::size_t cpu = 0; cpu < num_cpus; ++cpu) {
      if (last_assignment_[cpu] == kInvalidTid) continue;
      if (tracer_ != nullptr) {
        tracer_->end_segment(static_cast<int>(cpu), now_);
      }
      last_assignment_[cpu] = kInvalidTid;
    }
    loads_.assign(num_cpus, cpumodel::CpuLoad{});
    dram_energy_j_ += 2.0 * dt_seconds;
    governor_.step(dt, loads_);
    perf_.rotate(now_);
    memory_contention_ = 1.0;
    now_ += dt;
    return;
  }

  // 1. Schedule.
  runnable_.clear();
  runnable_.reserve(threads_.size());
  for (auto& [tid, thread] : threads_) {
    if (thread.state != ThreadState::kExited) runnable_.push_back(&thread);
  }
  scheduler_.assign(runnable_, dt, assignment_);

  // 2. Context-switch / migration accounting.
  for (const SimThread* thread : runnable_) {
    placed_[static_cast<std::size_t>(thread->tid)] = -1;
  }
  for (std::size_t cpu = 0; cpu < num_cpus; ++cpu) {
    if (assignment_[cpu] != kInvalidTid) {
      placed_[static_cast<std::size_t>(assignment_[cpu])] =
          static_cast<int>(cpu);
    }
  }
  for (SimThread* thread : runnable_) {
    const int new_cpu = placed_[static_cast<std::size_t>(thread->tid)];
    if (thread->current_cpu >= 0 && new_cpu != thread->current_cpu) {
      ++thread->truth.context_switches;
      perf_.on_software(thread->tid, CountKind::kContextSwitches, 1);
    }
    if (new_cpu >= 0 && thread->last_cpu >= 0 && new_cpu != thread->last_cpu) {
      ++thread->truth.migrations;
      perf_.on_software(thread->tid, CountKind::kMigrations, 1);
    }
    thread->current_cpu = new_cpu;
    if (new_cpu >= 0) thread->last_cpu = new_cpu;
  }
  if (tracer_ != nullptr) {
    for (std::size_t cpu = 0; cpu < num_cpus; ++cpu) {
      if (assignment_[cpu] == last_assignment_[cpu]) continue;
      if (last_assignment_[cpu] != kInvalidTid) {
        tracer_->end_segment(static_cast<int>(cpu), now_);
      }
      if (assignment_[cpu] != kInvalidTid) {
        tracer_->begin_segment(static_cast<int>(cpu), assignment_[cpu], now_);
      }
    }
  }

  // 3. Execute slices at the frequencies chosen last tick.
  loads_.assign(num_cpus, cpumodel::CpuLoad{});
  std::uint64_t tick_miss_bytes = 0;
  for (std::size_t cpu = 0; cpu < num_cpus; ++cpu) {
    const Tid tid = assignment_[cpu];
    if (tid == kInvalidTid) continue;
    SimThread& thread = *by_tid_[static_cast<std::size_t>(tid)];

    ExecContext ctx;
    const cpumodel::CoreTypeId type_id = machine_.cpus[cpu].type;
    ctx.core_type = &machine_.core_types[static_cast<std::size_t>(type_id)];
    ctx.core_type_id = type_id;
    ctx.cpu = static_cast<int>(cpu);
    ctx.frequency = governor_.frequency(static_cast<int>(cpu));
    ctx.now = now_;
    ctx.memory_contention = memory_contention_;
    ctx.rng = &rng_;

    ExecSlice slice = thread.program->run(ctx, dt);
    if (slice.consumed > dt) slice.consumed = dt;
    if (slice.consumed <= SimDuration{0} && !slice.finished) {
      HETPAPI_ERROR << "program for tid " << tid
                    << " consumed no time without finishing; aborting thread";
      thread.state = ThreadState::kExited;
      thread.current_cpu = -1;
      --alive_count_;
      continue;
    }

    // Fold in measurement-overhead instructions injected by the library
    // layer (they execute as part of the thread on whatever core it is
    // currently on, exactly like the real PAPI calipers).
    const auto inj = pending_injections_.find(tid);
    if (inj != pending_injections_.end() && inj->second > 0) {
      const std::uint64_t extra = inj->second;
      slice.counts.instructions += extra;
      slice.counts.cycles += extra / 2;
      slice.counts.branches += extra / 8;
      pending_injections_.erase(inj);
    }

    // Ground truth + perf attribution.
    auto& truth = thread.truth;
    truth.per_type[static_cast<std::size_t>(type_id)] += slice.counts;
    truth.time_per_type[static_cast<std::size_t>(type_id)] += slice.consumed;
    truth.total_cpu_time += slice.consumed;
    scheduler_.charge(thread, static_cast<int>(cpu), slice.consumed);
    // Task clock accrues inside on_execution's software-event handling.
    perf_.on_execution(tid, thread.group_leader, static_cast<int>(cpu),
                       type_id, slice.counts, slice.consumed, now_,
                       slice.sample_ip);
    perf_.on_cpu_execution(static_cast<int>(cpu), type_id, slice.counts,
                           slice.consumed, tid, now_, slice.sample_ip);

    const double util =
        std::chrono::duration<double>(slice.consumed).count() / dt_seconds;
    loads_[cpu].util = util;
    loads_[cpu].activity = slice.activity;

    tick_miss_bytes += slice.counts.llc_misses * 64;

    if (slice.finished) {
      thread.state = ThreadState::kExited;
      thread.current_cpu = -1;
      --alive_count_;
      if (tracer_ != nullptr) {
        tracer_->end_segment(static_cast<int>(cpu), now_ + slice.consumed);
      }
    }
  }

  // 4. IMC traffic: LLC miss lines plus an approximate writeback share.
  imc_reads_ += tick_miss_bytes / 64;
  imc_writes_ += tick_miss_bytes / 64 / 4;
  // DRAM energy: ~2 W refresh/idle floor plus ~60 pJ/byte transferred.
  dram_energy_j_ +=
      2.0 * dt_seconds + static_cast<double>(tick_miss_bytes) * 60e-12;

  // 5. Power/thermal/DVFS for the next tick.
  governor_.step(dt, loads_);

  // 6. Multiplex rotation.
  perf_.rotate(now_);

  // 7. Memory contention for the next tick: demand above the sustained
  //    bandwidth cap inflates everyone's effective miss latency.
  const double demand_gbs =
      static_cast<double>(tick_miss_bytes) / dt_seconds / 1e9;
  memory_contention_ =
      std::max(1.0, demand_gbs / machine_.memory.bandwidth_gbs);

  now_ += dt;
  last_assignment_.swap(assignment_);
}

// --- perf syscalls -----------------------------------------------------------

PackageCounters SimKernel::package_counters() const {
  PackageCounters pkg;
  const double pkg_uj = governor_.rapl().total_energy().value * 1e6;
  pkg.energy_pkg_uj = static_cast<std::uint64_t>(pkg_uj);
  // Core-domain energy: package minus the roughly constant uncore share.
  pkg.energy_cores_uj = static_cast<std::uint64_t>(pkg_uj * 0.82);
  pkg.energy_dram_uj = static_cast<std::uint64_t>(dram_energy_j_ * 1e6);
  pkg.imc_cas_reads = imc_reads_;
  pkg.imc_cas_writes = imc_writes_;
  return pkg;
}

Expected<int> SimKernel::perf_event_open(const PerfEventAttr& attr, Tid tid,
                                         int cpu, int group_fd,
                                         std::uint64_t flags) {
  if (tid >= 0 && !threads_.contains(tid)) {
    return make_error(StatusCode::kNotFound, "no such thread (ESRCH)");
  }
  if (cpu >= machine_.num_cpus()) {
    return make_error(StatusCode::kInvalidArgument, "no such cpu");
  }
  return perf_.open(attr, tid, cpu, group_fd, flags, package_counters(),
                    now_);
}

Status SimKernel::perf_ioctl(int fd, PerfIoctl op, std::uint32_t flags) {
  return perf_.ioctl(fd, op, flags, package_counters(), now_);
}

Expected<PerfValue> SimKernel::perf_read(int fd) const {
  return perf_.read(fd, package_counters(), now_);
}

Expected<std::vector<PerfValue>> SimKernel::perf_read_group(int fd) const {
  return perf_.read_group(fd, package_counters(), now_);
}

Expected<std::uint64_t> SimKernel::perf_rdpmc(int fd) const {
  return perf_.rdpmc(fd);
}

Status SimKernel::perf_close(int fd) { return perf_.close(fd); }

// --- CPUID -------------------------------------------------------------------

Expected<cpumodel::IntelCoreKind> SimKernel::cpuid_core_kind(int cpu) const {
  if (machine_.vendor != cpumodel::Vendor::kIntel) {
    return make_error(StatusCode::kNotSupported, "CPUID is x86-only");
  }
  if (cpu < 0 || cpu >= machine_.num_cpus()) {
    return make_error(StatusCode::kInvalidArgument, "no such cpu");
  }
  if (!machine_.exposes_cpuid_hybrid) {
    // Leaf 0x1A reads as zero on non-hybrid parts.
    return cpumodel::IntelCoreKind::kNone;
  }
  return machine_.type_of(cpu).ident.intel_kind;
}

}  // namespace hetpapi::simkernel
