// Boot-time population of the simulated /sys and /proc trees, plus the
// dynamic attribute router. The layout reproduces what the paper's
// detection section (§IV-B) enumerates, including the quirks:
//  * hybrid core PMUs expose a "cpus" file; uncore PMUs use "cpumask";
//    the traditional homogeneous "cpu" PMU has neither;
//  * cpu_capacity exists only on ARM;
//  * Intel P/E cores share family/model/stepping in /proc/cpuinfo;
//  * the Raptor Lake package temperature is thermal_zone9
//    ("x86_pkg_temp"), matching the paper's mon_hpl.py parameters.
#include <string>

#include "base/strings.hpp"
#include "simkernel/kernel.hpp"

namespace hetpapi::simkernel {

namespace {
constexpr std::string_view kCpuRoot = "/sys/devices/system/cpu";
}

void SimKernel::build_static_sysfs() {
  const int n = machine_.num_cpus();

  // --- PMU devices ----------------------------------------------------------
  for (const PmuDesc& pmu : pmus_.all()) {
    const std::string dir = "/sys/devices/" + pmu.sysfs_name;
    (void)sysfs_.write_file(dir + "/type", std::to_string(pmu.type_id) + "\n");
    switch (pmu.pmu_class) {
      case PmuClass::kCore:
        // Only hybrid machines grow the "cpus" mapping file.
        if (machine_.is_hybrid()) {
          (void)sysfs_.write_file(dir + "/cpus",
                                  format_cpulist(pmu.cpus) + "\n");
        }
        break;
      case PmuClass::kRapl:
      case PmuClass::kUncore:
        (void)sysfs_.write_file(dir + "/cpumask",
                                format_cpulist(pmu.cpus) + "\n");
        break;
      case PmuClass::kSoftware:
        break;
    }
  }

  // --- cpu topology -----------------------------------------------------------
  const std::string all_cpus = format_cpulist([&] {
    std::vector<int> v;
    for (int c = 0; c < n; ++c) v.push_back(c);
    return v;
  }());
  (void)sysfs_.write_file(std::string(kCpuRoot) + "/online", all_cpus + "\n");
  (void)sysfs_.write_file(std::string(kCpuRoot) + "/possible", all_cpus + "\n");
  (void)sysfs_.write_file(std::string(kCpuRoot) + "/present", all_cpus + "\n");

  for (int cpu = 0; cpu < n; ++cpu) {
    const cpumodel::CpuSlot& slot = machine_.cpus[static_cast<std::size_t>(cpu)];
    const cpumodel::CoreTypeSpec& type = machine_.type_of(cpu);
    const std::string base =
        std::string(kCpuRoot) + "/cpu" + std::to_string(cpu);

    (void)sysfs_.write_file(base + "/topology/core_id",
                            std::to_string(slot.core_id) + "\n");
    (void)sysfs_.write_file(base + "/topology/physical_package_id", "0\n");
    (void)sysfs_.write_file(base + "/topology/cluster_id",
                            std::to_string(slot.cluster_id) + "\n");
    std::vector<int> siblings;
    for (const cpumodel::CpuSlot& other : machine_.cpus) {
      if (other.core_id == slot.core_id) siblings.push_back(other.cpu);
    }
    (void)sysfs_.write_file(base + "/topology/thread_siblings_list",
                            format_cpulist(siblings) + "\n");

    // cpufreq limits in kHz (scaling_cur_freq is dynamic, below).
    (void)sysfs_.write_file(
        base + "/cpufreq/cpuinfo_max_freq",
        std::to_string(type.dvfs.freq_max.kilohertz()) + "\n");
    (void)sysfs_.write_file(
        base + "/cpufreq/cpuinfo_min_freq",
        std::to_string(type.dvfs.freq_min.kilohertz()) + "\n");

    // Caches: index0 = L1d, index2 = L2, index3 = LLC.
    const auto cache_kb = [](std::int64_t bytes) {
      return std::to_string(bytes / 1024) + "K\n";
    };
    (void)sysfs_.write_file(base + "/cache/index0/level", "1\n");
    (void)sysfs_.write_file(base + "/cache/index0/size",
                            cache_kb(type.cache.l1d_bytes));
    (void)sysfs_.write_file(base + "/cache/index2/level", "2\n");
    (void)sysfs_.write_file(base + "/cache/index2/size",
                            cache_kb(type.cache.l2_bytes));
    (void)sysfs_.write_file(base + "/cache/index3/level", "3\n");
    (void)sysfs_.write_file(base + "/cache/index3/size",
                            cache_kb(type.cache.llc_bytes));

    if (machine_.exposes_cpu_capacity) {
      (void)sysfs_.write_file(base + "/cpu_capacity",
                              std::to_string(type.cpu_capacity) + "\n");
    }
    if (machine_.vendor == cpumodel::Vendor::kArm) {
      // MIDR_EL1: implementer[31:24] variant[23:20] arch[19:16]
      // part[15:4] revision[3:0].
      const std::uint32_t midr =
          (static_cast<std::uint32_t>(type.ident.arm_implementer) << 24) |
          (static_cast<std::uint32_t>(type.ident.arm_variant) << 20) |
          (0xFu << 16) |
          (static_cast<std::uint32_t>(type.ident.arm_part) << 4) |
          static_cast<std::uint32_t>(type.ident.arm_revision);
      (void)sysfs_.write_file(base + "/regs/identification/midr_el1",
                              str_format("0x%08x\n", midr));
    }
  }

  // --- /proc/cpuinfo -----------------------------------------------------------
  std::string cpuinfo;
  for (int cpu = 0; cpu < n; ++cpu) {
    const cpumodel::CoreTypeSpec& type = machine_.type_of(cpu);
    if (machine_.vendor == cpumodel::Vendor::kIntel) {
      cpuinfo += str_format(
          "processor\t: %d\n"
          "vendor_id\t: GenuineIntel\n"
          "cpu family\t: %d\n"
          "model\t\t: %d\n"
          "model name\t: %s\n"
          "stepping\t: %d\n\n",
          cpu, type.ident.family, type.ident.model,
          machine_.cpu_model_string.c_str(), type.ident.stepping);
    } else {
      cpuinfo += str_format(
          "processor\t: %d\n"
          "BogoMIPS\t: 48.00\n"
          "CPU implementer\t: 0x%02x\n"
          "CPU architecture: 8\n"
          "CPU variant\t: 0x%x\n"
          "CPU part\t: 0x%03x\n"
          "CPU revision\t: %d\n\n",
          cpu, type.ident.arm_implementer, type.ident.arm_variant,
          type.ident.arm_part, type.ident.arm_revision);
    }
  }
  (void)sysfs_.write_file("/proc/cpuinfo", cpuinfo);

  // --- thermal zones -------------------------------------------------------------
  if (machine_.vendor == cpumodel::Vendor::kIntel) {
    // Zones 0-8 are assorted ACPI sensors; zone 9 is the package sensor
    // (the paper passes "thermal_zone9:35000" to mon_hpl.py).
    for (int z = 0; z < 9; ++z) {
      const std::string dir = "/sys/class/thermal/thermal_zone" + std::to_string(z);
      (void)sysfs_.write_file(dir + "/type", "acpitz\n");
      (void)sysfs_.write_file(dir + "/temp", "27000\n");
    }
    (void)sysfs_.write_file("/sys/class/thermal/thermal_zone9/type",
                            "x86_pkg_temp\n");
  } else {
    (void)sysfs_.write_file("/sys/class/thermal/thermal_zone0/type",
                            "soc-thermal\n");
    (void)sysfs_.write_file("/sys/class/thermal/thermal_zone1/type",
                            "gpu-thermal\n");
  }

  // --- RAPL powercap ---------------------------------------------------------------
  if (machine_.rapl.present) {
    const std::string dir = "/sys/class/powercap/intel-rapl:0";
    (void)sysfs_.write_file(dir + "/name", "package-0\n");
    (void)sysfs_.write_file(dir + "/max_energy_range_uj", "4294967295\n");
    (void)sysfs_.write_file(
        dir + "/constraint_0_name", "long_term\n");
    (void)sysfs_.write_file(
        dir + "/constraint_0_power_limit_uw",
        std::to_string(static_cast<std::int64_t>(machine_.rapl.pl1.value * 1e6)) +
            "\n");
    (void)sysfs_.write_file(
        dir + "/constraint_1_name", "short_term\n");
    (void)sysfs_.write_file(
        dir + "/constraint_1_power_limit_uw",
        std::to_string(static_cast<std::int64_t>(machine_.rapl.pl2.value * 1e6)) +
            "\n");
  }
}

Expected<std::string> SimKernel::sysfs_read(std::string_view path) const {
  const auto canon = vfs::canonicalize(path);
  if (!canon) return canon.status();
  const std::string& p = *canon;

  // Dynamic attributes, evaluated like sysfs show() callbacks.
  if (starts_with(p, kCpuRoot)) {
    // /sys/devices/system/cpu/cpuN/cpufreq/scaling_cur_freq
    const std::string_view rest = std::string_view(p).substr(kCpuRoot.size());
    if (starts_with(rest, "/cpu")) {
      const std::size_t slash = rest.find('/', 1);
      if (slash != std::string_view::npos &&
          rest.substr(slash) == "/cpufreq/scaling_cur_freq") {
        const auto cpu = parse_int(rest.substr(4, slash - 4));
        if (cpu && *cpu >= 0 && *cpu < machine_.num_cpus()) {
          return std::to_string(
                     governor_.frequency(static_cast<int>(*cpu)).kilohertz()) +
                 "\n";
        }
      }
    }
  }
  if (starts_with(p, "/sys/class/thermal/thermal_zone") &&
      p.ends_with("/temp")) {
    const std::string_view zone_str =
        std::string_view(p).substr(std::string_view("/sys/class/thermal/thermal_zone").size());
    const auto zone = parse_int(zone_str.substr(0, zone_str.find('/')));
    if (zone) {
      if (machine_.vendor == cpumodel::Vendor::kIntel && *zone == 9) {
        return std::to_string(governor_.package_temperature().millidegrees()) +
               "\n";
      }
      if (machine_.vendor == cpumodel::Vendor::kArm && *zone == 0) {
        // soc-thermal reports the hottest cluster.
        double hottest = governor_.package_temperature().value;
        for (std::size_t c = 0; c < machine_.cluster_thermal.size(); ++c) {
          hottest = std::max(
              hottest,
              governor_.cluster_temperature(static_cast<int>(c)).value);
        }
        return std::to_string(Celsius{hottest}.millidegrees()) + "\n";
      }
    }
  }
  if (p == "/proc/stat") {
    // Minimal /proc/stat: the aggregate "cpu" jiffies line (USER_HZ=100)
    // and the system-wide context-switch count, both derived from the
    // scheduler's ground truth — what the sysinfo component consumes.
    std::uint64_t busy_ns = 0;
    std::uint64_t ctxt = 0;
    for (const auto& [tid, thread] : threads_) {
      busy_ns +=
          static_cast<std::uint64_t>(thread.truth.total_cpu_time.count());
      ctxt += thread.truth.context_switches;
    }
    const std::uint64_t busy_jiffies = busy_ns / std::uint64_t{10'000'000};
    const std::uint64_t wall_jiffies =
        static_cast<std::uint64_t>(now_.since_epoch.count()) /
        std::uint64_t{10'000'000} *
        static_cast<std::uint64_t>(machine_.num_cpus());
    const std::uint64_t idle_jiffies =
        wall_jiffies > busy_jiffies ? wall_jiffies - busy_jiffies : 0;
    return str_format(
        "cpu  %llu 0 0 %llu 0 0 0 0 0 0\nctxt %llu\n",
        static_cast<unsigned long long>(busy_jiffies),
        static_cast<unsigned long long>(idle_jiffies),
        static_cast<unsigned long long>(ctxt));
  }
  if (p == "/sys/class/powercap/intel-rapl:0/energy_uj" &&
      machine_.rapl.present) {
    // Wraps at max_energy_range_uj = 2^32-1, like the hardware register;
    // telemetry consumers must unwrap (mon_hpl.py does).
    const std::uint64_t uj = static_cast<std::uint64_t>(
        governor_.rapl().total_energy().value * 1e6);
    return std::to_string(uj & 0xFFFFFFFFULL) + "\n";
  }

  return sysfs_.read_file(p);
}

Expected<std::vector<std::string>> SimKernel::sysfs_list(
    std::string_view path) const {
  return sysfs_.list_dir(path);
}

}  // namespace hetpapi::simkernel
