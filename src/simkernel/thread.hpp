// Simulated thread control block.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "base/units.hpp"
#include "simkernel/program.hpp"

namespace hetpapi::simkernel {

using Tid = std::int32_t;
inline constexpr Tid kInvalidTid = -1;

enum class ThreadState {
  kRunnable,
  kRunning,
  kExited,
};

/// CPU affinity mask (taskset equivalent). Empty set = error; default
/// allows every cpu.
class CpuSet {
 public:
  static CpuSet all(int num_cpus) {
    CpuSet s;
    for (int c = 0; c < num_cpus; ++c) s.add(c);
    return s;
  }
  static CpuSet of(const std::vector<int>& cpus) {
    CpuSet s;
    for (int c : cpus) s.add(c);
    return s;
  }

  void add(int cpu) { bits_ |= (1ULL << cpu); }
  void remove(int cpu) { bits_ &= ~(1ULL << cpu); }
  bool contains(int cpu) const { return (bits_ >> cpu) & 1ULL; }
  bool empty() const { return bits_ == 0; }
  int count() const { return __builtin_popcountll(bits_); }
  std::uint64_t raw() const { return bits_; }

  std::vector<int> to_list() const {
    std::vector<int> out;
    for (int c = 0; c < 64; ++c) {
      if (contains(c)) out.push_back(c);
    }
    return out;
  }

 private:
  std::uint64_t bits_ = 0;
};

/// Ground-truth statistics the simulator keeps per thread, per core
/// type. Property tests compare perf_event readings against these.
struct ThreadGroundTruth {
  /// Indexed by core type id; resized at spawn.
  std::vector<ExecCounts> per_type;
  std::vector<SimDuration> time_per_type;
  std::uint64_t context_switches = 0;
  std::uint64_t migrations = 0;  // cpu-to-cpu moves
  SimDuration total_cpu_time{0};

  ExecCounts total() const {
    ExecCounts sum;
    for (const ExecCounts& c : per_type) sum += c;
    return sum;
  }
};

struct SimThread {
  Tid tid = kInvalidTid;
  /// Process-group leader (== tid for standalone threads). Events opened
  /// with attr.inherit on the leader also count the whole group — how
  /// `perf stat ./hpl` measures every worker thread of a run.
  Tid group_leader = kInvalidTid;
  ThreadState state = ThreadState::kRunnable;
  std::shared_ptr<Program> program;
  CpuSet affinity;
  /// CFS bookkeeping: capacity-weighted virtual runtime.
  double vruntime_ns = 0.0;
  /// Where the thread currently runs (-1 when not running).
  int current_cpu = -1;
  /// Last cpu it ran on (for migration counting & cache-affinity nudge).
  int last_cpu = -1;
  ThreadGroundTruth truth;
};

}  // namespace hetpapi::simkernel
