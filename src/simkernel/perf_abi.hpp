// Mirror of the perf_event kernel ABI subset the library uses.
//
// We define our own structures rather than including <linux/perf_event.h>
// so the simulated backend and the real-syscall backend share one
// vocabulary; the linuxkernel module translates these to the native ABI.
// Semantics follow the kernel documentation the paper builds on:
//  * attr.type selects a PMU; heterogeneous systems export one dynamic
//    PMU type per core type (§IV-A).
//  * an event follows its target thread, but the kernel only lets it
//    count while the thread runs on a core whose type matches the
//    event's PMU.
//  * event groups are scheduled atomically and cannot span PMUs.
//  * when a group set exceeds the PMU's counters, groups are multiplexed
//    by rotation and reads report time_enabled/time_running for scaling.
#pragma once

#include <cstddef>
#include <cstdint>

#include "base/units.hpp"

namespace hetpapi::simkernel {

/// Built-in PMU type ids (match the Linux values for the static types;
/// dynamic PMU ids are allocated above these at boot, as on real
/// systems).
enum PerfType : std::uint32_t {
  kPerfTypeHardware = 0,
  kPerfTypeSoftware = 1,
  kPerfTypeTracepoint = 2,
  kPerfTypeHwCache = 3,
  kPerfTypeRaw = 4,
  kPerfTypeBreakpoint = 5,
  kPerfTypeFirstDynamic = 6,
};

/// What a counter counts. The simulated cores produce these quantities
/// directly; per-PMU event tables (pfm module) map event names/configs
/// onto them with per-core-type availability (e.g. topdown slots exist
/// only on the P-core PMU, as the paper notes).
enum class CountKind : std::uint64_t {
  kInstructions = 0,
  kCycles,
  kRefCycles,        // cycles at base frequency (TSC-like)
  kLlcReferences,
  kLlcMisses,
  kBranches,
  kBranchMisses,
  kStalledCycles,
  kFlopsDp,          // scalar+vector double-precision flops
  kTopdownSlots,     // P-core only
  kTopdownRetiring,  // P-core only
  kTopdownBadSpec,   // P-core only
  kContextSwitches,  // software event
  kMigrations,       // software event
  kTaskClockNs,      // software event
  kEnergyPkgUj,      // RAPL package energy, microjoules
  kEnergyCoresUj,    // RAPL core-domain energy
  kEnergyDramUj,     // RAPL DRAM-domain energy
  kUncoreCasReads,   // IMC read CAS commands
  kUncoreCasWrites,  // IMC write CAS commands
  kCount,
};

inline constexpr std::uint64_t kNumCountKinds =
    static_cast<std::uint64_t>(CountKind::kCount);

/// attr.read_format bits (subset).
enum ReadFormat : std::uint64_t {
  kFormatTotalTimeEnabled = 1u << 0,
  kFormatTotalTimeRunning = 1u << 1,
  kFormatId = 1u << 2,
  kFormatGroup = 1u << 3,
};

/// perf_event_attr equivalent.
struct PerfEventAttr {
  std::uint32_t type = 0;    // PMU type id
  std::uint64_t config = 0;  // PMU-specific event encoding
  std::uint64_t read_format = 0;
  /// Sampling: an overflow notification fires every `sample_period`
  /// counts (0 = pure counting mode). The PAPI layer builds its
  /// PAPI_overflow support on this, period, like the real library does
  /// with the kernel's signal delivery.
  std::uint64_t sample_period = 0;
  bool disabled = false;     // start disabled (enable via ioctl)
  bool inherit = false;
  bool pinned = false;       // must always be on the PMU or error out
  bool exclude_kernel = false;
  bool exclude_idle = false;
};

/// One event's read value.
struct PerfValue {
  std::uint64_t value = 0;
  std::uint64_t time_enabled_ns = 0;
  std::uint64_t time_running_ns = 0;

  /// Multiplex-scaled estimate, as PAPI and perf compute it.
  double scaled() const {
    if (time_running_ns == 0) return 0.0;
    return static_cast<double>(value) *
           (static_cast<double>(time_enabled_ns) /
            static_cast<double>(time_running_ns));
  }
};

/// perf_event_mmap_page capability bit: userspace may read this counter
/// with rdpmc while the page's `index` is non-zero.
inline constexpr std::uint64_t kCapUserRdpmc = 1ull << 2;

/// Marks a simulated user page: the kernel zeroes the reserved region at
/// byte 96, so a real mmap'd page can never carry this value and readers
/// can distinguish "execute the rdpmc instruction" from "take the
/// simulated counter the page itself publishes".
inline constexpr std::uint32_t kSimUserPageMagic = 0x53494d70;  // "SIMp"

/// First page of the perf_event mmap region (struct perf_event_mmap_page).
///
/// The field layout up to byte 96 matches the kernel ABI bit-for-bit
/// (static_asserts below), so LinuxBackend can hand out a pointer into a
/// real mmap'd page and the same reader code works against both
/// backends. The seqlock contract is the kernel's: `lock` is bumped to
/// odd before an update and back to even after; readers capture `lock`,
/// read the fields (and issue rdpmc *inside* the window), then re-read
/// `lock` and retry on any change. `index` is zero while the event is
/// not resident on a hardware counter (disabled, multiplexed out, or the
/// thread migrated to a core type the PMU does not serve); otherwise the
/// counter value is `offset` + rdpmc(`index` - 1) sign-extended to
/// `pmc_width` bits. time_enabled/time_running let page-served reads
/// apply the same multiplex scaling as the fd path.
struct PerfUserPage {
  std::uint32_t version = 0;
  std::uint32_t compat_version = 0;
  std::uint32_t lock = 0;
  std::uint32_t index = 0;
  std::int64_t offset = 0;
  std::uint64_t time_enabled = 0;  // ns
  std::uint64_t time_running = 0;  // ns
  std::uint64_t capabilities = 0;
  std::uint16_t pmc_width = 0;
  std::uint16_t time_shift = 0;
  std::uint32_t time_mult = 0;
  std::uint64_t time_offset = 0;
  std::uint64_t time_zero = 0;
  std::uint32_t size = 0;
  std::uint32_t reserved1 = 0;
  std::uint64_t time_cycles = 0;
  std::uint64_t time_mask = 0;
  // --- kernel-reserved region (zero on real pages) ----------------------
  /// kSimUserPageMagic on pages minted by the simulated kernel.
  std::uint32_t sim_magic = 0;
  std::uint32_t sim_pad = 0;
  /// The simulated hardware counter: what the rdpmc instruction would
  /// return for `index` - 1, i.e. counts accumulated since the event
  /// last became resident (the page's `offset` carries the rest).
  std::uint64_t sim_pmc = 0;
};

static_assert(offsetof(PerfUserPage, lock) == 8);
static_assert(offsetof(PerfUserPage, index) == 12);
static_assert(offsetof(PerfUserPage, offset) == 16);
static_assert(offsetof(PerfUserPage, time_enabled) == 24);
static_assert(offsetof(PerfUserPage, time_running) == 32);
static_assert(offsetof(PerfUserPage, capabilities) == 40);
static_assert(offsetof(PerfUserPage, pmc_width) == 48);
static_assert(offsetof(PerfUserPage, time_cycles) == 80);
static_assert(offsetof(PerfUserPage, sim_magic) == 96,
              "sim extension must sit in the kernel's reserved region");

/// ioctl requests (names follow the kernel's).
enum class PerfIoctl {
  kEnable,
  kDisable,
  kReset,
};

/// ioctl flags.
enum PerfIoctlFlags : std::uint32_t {
  kIocFlagNone = 0,
  kIocFlagGroup = 1,  // apply to the whole group
};

/// perf_event_open flags (subset; we accept and ignore CLOEXEC).
enum PerfOpenFlags : std::uint64_t {
  kOpenFlagNone = 0,
  kOpenFlagFdCloexec = 1u << 3,
};

}  // namespace hetpapi::simkernel
