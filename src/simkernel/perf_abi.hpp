// Mirror of the perf_event kernel ABI subset the library uses.
//
// We define our own structures rather than including <linux/perf_event.h>
// so the simulated backend and the real-syscall backend share one
// vocabulary; the linuxkernel module translates these to the native ABI.
// Semantics follow the kernel documentation the paper builds on:
//  * attr.type selects a PMU; heterogeneous systems export one dynamic
//    PMU type per core type (§IV-A).
//  * an event follows its target thread, but the kernel only lets it
//    count while the thread runs on a core whose type matches the
//    event's PMU.
//  * event groups are scheduled atomically and cannot span PMUs.
//  * when a group set exceeds the PMU's counters, groups are multiplexed
//    by rotation and reads report time_enabled/time_running for scaling.
#pragma once

#include <cstddef>
#include <cstdint>

#include "base/units.hpp"

namespace hetpapi::simkernel {

/// Built-in PMU type ids (match the Linux values for the static types;
/// dynamic PMU ids are allocated above these at boot, as on real
/// systems).
enum PerfType : std::uint32_t {
  kPerfTypeHardware = 0,
  kPerfTypeSoftware = 1,
  kPerfTypeTracepoint = 2,
  kPerfTypeHwCache = 3,
  kPerfTypeRaw = 4,
  kPerfTypeBreakpoint = 5,
  kPerfTypeFirstDynamic = 6,
};

/// What a counter counts. The simulated cores produce these quantities
/// directly; per-PMU event tables (pfm module) map event names/configs
/// onto them with per-core-type availability (e.g. topdown slots exist
/// only on the P-core PMU, as the paper notes).
enum class CountKind : std::uint64_t {
  kInstructions = 0,
  kCycles,
  kRefCycles,        // cycles at base frequency (TSC-like)
  kLlcReferences,
  kLlcMisses,
  kBranches,
  kBranchMisses,
  kStalledCycles,
  kFlopsDp,          // scalar+vector double-precision flops
  kTopdownSlots,     // P-core only
  kTopdownRetiring,  // P-core only
  kTopdownBadSpec,   // P-core only
  kContextSwitches,  // software event
  kMigrations,       // software event
  kTaskClockNs,      // software event
  kEnergyPkgUj,      // RAPL package energy, microjoules
  kEnergyCoresUj,    // RAPL core-domain energy
  kEnergyDramUj,     // RAPL DRAM-domain energy
  kUncoreCasReads,   // IMC read CAS commands
  kUncoreCasWrites,  // IMC write CAS commands
  kCount,
};

inline constexpr std::uint64_t kNumCountKinds =
    static_cast<std::uint64_t>(CountKind::kCount);

/// attr.read_format bits (subset).
enum ReadFormat : std::uint64_t {
  kFormatTotalTimeEnabled = 1u << 0,
  kFormatTotalTimeRunning = 1u << 1,
  kFormatId = 1u << 2,
  kFormatGroup = 1u << 3,
};

/// attr.sample_type bits (PERF_SAMPLE_*, kernel values). Selects which
/// fields each PERF_RECORD_SAMPLE carries, in this fixed order.
enum SampleType : std::uint64_t {
  kSampleIp = 1u << 0,
  kSampleTid = 1u << 1,
  kSampleTime = 1u << 2,
  kSampleCpu = 1u << 7,
  kSamplePeriod = 1u << 8,
};

/// The sample layout the simulated kernel writes when a sampling event
/// leaves attr.sample_type at 0 (and the only bits it implements).
inline constexpr std::uint64_t kSampleTypeDefault =
    kSampleIp | kSampleTid | kSampleTime | kSampleCpu | kSamplePeriod;

/// perf_event_attr equivalent.
struct PerfEventAttr {
  std::uint32_t type = 0;    // PMU type id
  std::uint64_t config = 0;  // PMU-specific event encoding
  std::uint64_t read_format = 0;
  /// Sampling: an overflow notification fires every `sample_period`
  /// counts (0 = pure counting mode). The PAPI layer builds its
  /// PAPI_overflow support on this, period, like the real library does
  /// with the kernel's signal delivery.
  std::uint64_t sample_period = 0;
  /// PERF_SAMPLE_* bits for the ring records (0 = kSampleTypeDefault
  /// when sampling). Bits outside kSampleTypeDefault are rejected at
  /// open, the way the kernel EINVALs unknown sample_type bits.
  std::uint64_t sample_type = 0;
  /// Wake the poll(2) side up every `wakeup_events` samples (0 = every
  /// ring write makes the fd readable, the mmap-watermark default).
  std::uint32_t wakeup_events = 0;
  bool disabled = false;     // start disabled (enable via ioctl)
  bool inherit = false;
  bool pinned = false;       // must always be on the PMU or error out
  bool exclude_kernel = false;
  bool exclude_idle = false;
};

/// One event's read value.
struct PerfValue {
  std::uint64_t value = 0;
  std::uint64_t time_enabled_ns = 0;
  std::uint64_t time_running_ns = 0;

  /// Multiplex-scaled estimate, as PAPI and perf compute it.
  double scaled() const {
    if (time_running_ns == 0) return 0.0;
    return static_cast<double>(value) *
           (static_cast<double>(time_enabled_ns) /
            static_cast<double>(time_running_ns));
  }
};

/// perf_event_mmap_page capability bit: userspace may read this counter
/// with rdpmc while the page's `index` is non-zero.
inline constexpr std::uint64_t kCapUserRdpmc = 1ull << 2;

/// Marks a simulated user page: the kernel zeroes the reserved region at
/// byte 96, so a real mmap'd page can never carry this value and readers
/// can distinguish "execute the rdpmc instruction" from "take the
/// simulated counter the page itself publishes".
inline constexpr std::uint32_t kSimUserPageMagic = 0x53494d70;  // "SIMp"

/// First page of the perf_event mmap region (struct perf_event_mmap_page).
///
/// The field layout up to byte 96 matches the kernel ABI bit-for-bit
/// (static_asserts below), so LinuxBackend can hand out a pointer into a
/// real mmap'd page and the same reader code works against both
/// backends. The seqlock contract is the kernel's: `lock` is bumped to
/// odd before an update and back to even after; readers capture `lock`,
/// read the fields (and issue rdpmc *inside* the window), then re-read
/// `lock` and retry on any change. `index` is zero while the event is
/// not resident on a hardware counter (disabled, multiplexed out, or the
/// thread migrated to a core type the PMU does not serve); otherwise the
/// counter value is `offset` + rdpmc(`index` - 1) sign-extended to
/// `pmc_width` bits. time_enabled/time_running let page-served reads
/// apply the same multiplex scaling as the fd path.
struct PerfUserPage {
  std::uint32_t version = 0;
  std::uint32_t compat_version = 0;
  std::uint32_t lock = 0;
  std::uint32_t index = 0;
  std::int64_t offset = 0;
  std::uint64_t time_enabled = 0;  // ns
  std::uint64_t time_running = 0;  // ns
  std::uint64_t capabilities = 0;
  std::uint16_t pmc_width = 0;
  std::uint16_t time_shift = 0;
  std::uint32_t time_mult = 0;
  std::uint64_t time_offset = 0;
  std::uint64_t time_zero = 0;
  std::uint32_t size = 0;
  std::uint32_t reserved1 = 0;
  std::uint64_t time_cycles = 0;
  std::uint64_t time_mask = 0;
  // --- kernel-reserved region (zero on real pages) ----------------------
  /// kSimUserPageMagic on pages minted by the simulated kernel.
  std::uint32_t sim_magic = 0;
  std::uint32_t sim_pad = 0;
  /// The simulated hardware counter: what the rdpmc instruction would
  /// return for `index` - 1, i.e. counts accumulated since the event
  /// last became resident (the page's `offset` carries the rest).
  std::uint64_t sim_pmc = 0;
  /// Pad out the rest of the kernel's reserved region so the ring
  /// control words land at their real ABI offsets below.
  std::uint8_t sim_reserved[912] = {};
  // --- sample ring control (kernel offsets 1024..1055) -------------------
  /// Writer cursor: byte position (free-running, mod data_size) one past
  /// the last record the kernel published. The write is release-ordered;
  /// readers consume [data_tail, data_head) and then store data_tail.
  std::uint64_t data_head = 0;
  /// Reader cursor: written by userspace after consuming records, so the
  /// kernel knows how much of the ring it may overwrite.
  std::uint64_t data_tail = 0;
  /// Byte offset of the ring data area from the start of the mmap (one
  /// page on real kernels; the sim ring is a separate allocation and
  /// keeps the field for ABI shape).
  std::uint64_t data_offset = 0;
  std::uint64_t data_size = 0;  // ring data area size, bytes
};

static_assert(offsetof(PerfUserPage, lock) == 8);
static_assert(offsetof(PerfUserPage, index) == 12);
static_assert(offsetof(PerfUserPage, offset) == 16);
static_assert(offsetof(PerfUserPage, time_enabled) == 24);
static_assert(offsetof(PerfUserPage, time_running) == 32);
static_assert(offsetof(PerfUserPage, capabilities) == 40);
static_assert(offsetof(PerfUserPage, pmc_width) == 48);
static_assert(offsetof(PerfUserPage, time_cycles) == 80);
static_assert(offsetof(PerfUserPage, sim_magic) == 96,
              "sim extension must sit in the kernel's reserved region");
static_assert(offsetof(PerfUserPage, data_head) == 1024,
              "ring control words must sit at the kernel ABI offsets");
static_assert(offsetof(PerfUserPage, data_tail) == 1032);
static_assert(offsetof(PerfUserPage, data_offset) == 1040);
static_assert(offsetof(PerfUserPage, data_size) == 1048);

/// perf_event_header: leads every record in the sample ring.
struct PerfEventHeader {
  std::uint32_t type = 0;  // PerfRecordType
  std::uint16_t misc = 0;
  std::uint16_t size = 0;  // total record size including this header
};
static_assert(sizeof(PerfEventHeader) == 8);

/// Record types (kernel values, subset).
enum PerfRecordType : std::uint32_t {
  kPerfRecordLost = 2,
  kPerfRecordSample = 9,
};

/// header.misc bits (subset).
inline constexpr std::uint16_t kPerfRecordMiscUser = 2;

/// Decoded PERF_RECORD_SAMPLE body (fields present per sample_type).
struct PerfSampleParsed {
  std::uint64_t ip = 0;       // kSampleIp
  std::uint32_t pid = 0;      // kSampleTid
  std::uint32_t tid = 0;      // kSampleTid
  std::uint64_t time = 0;     // kSampleTime, ns
  std::uint32_t cpu = 0;      // kSampleCpu
  std::uint64_t period = 0;   // kSamplePeriod
};

/// Decoded PERF_RECORD_LOST body.
struct PerfLostParsed {
  std::uint64_t id = 0;    // perturbed stream (the sim stores the fd)
  std::uint64_t lost = 0;  // records dropped while the ring was full
};

/// Bytes a SAMPLE record body occupies for a given sample_type mask
/// (every implemented field is 8 bytes or a packed pair of u32s).
inline constexpr std::uint64_t perf_sample_body_size(
    std::uint64_t sample_type) {
  std::uint64_t size = 0;
  if (sample_type & kSampleIp) size += 8;
  if (sample_type & kSampleTid) size += 8;    // u32 pid + u32 tid
  if (sample_type & kSampleTime) size += 8;
  if (sample_type & kSampleCpu) size += 8;    // u32 cpu + u32 res
  if (sample_type & kSamplePeriod) size += 8;
  return size;
}

/// A mapped sample ring: the control page plus the data area. On the
/// simulated backend `data` points at the kernel-owned ring allocation;
/// on LinuxBackend it is `page + data_offset` inside one mmap.
struct PerfRingView {
  PerfUserPage* page = nullptr;
  const std::uint8_t* data = nullptr;
  std::uint64_t size = 0;  // bytes (== page->data_size)
  /// The sample_type the ring's SAMPLE records were written with —
  /// recorded at mmap time so decoders need no fd round-trip.
  std::uint64_t sample_type = kSampleTypeDefault;
};

/// The safe drain loop over a PerfRingView, shared by every reader (the
/// sim kernel's own read_samples, the PAPI drain, tools): walks
/// [data_tail, data_head), handles wrap-around, bounds-checks every
/// header before trusting header.size, and only advances data_tail on
/// commit() — the reader half of the ring protocol.
class PerfRingCursor {
 public:
  explicit PerfRingCursor(const PerfRingView& view)
      : view_(view),
        head_(view.page != nullptr ? view.page->data_head : 0),
        pos_(view.page != nullptr ? view.page->data_tail : 0) {}

  /// Copy the next record (header + body) into `header`/`body`; returns
  /// false at the end of the ring. A header that is malformed (size
  /// smaller than the header itself, or larger than the unread span)
  /// stops the walk and marks the cursor malformed; commit() then
  /// resynchronizes the reader to data_head so one corrupt record
  /// cannot wedge the ring forever.
  bool next(PerfEventHeader* header, std::uint8_t* body,
            std::size_t body_capacity) {
    if (view_.page == nullptr || view_.data == nullptr || view_.size == 0) {
      return false;
    }
    if (malformed_ || head_ - pos_ < sizeof(PerfEventHeader)) return false;
    PerfEventHeader hdr;
    copy_wrapped(pos_, reinterpret_cast<std::uint8_t*>(&hdr), sizeof(hdr));
    if (hdr.size < sizeof(PerfEventHeader) || hdr.size > head_ - pos_ ||
        hdr.size > view_.size) {
      malformed_ = true;
      return false;
    }
    const std::size_t body_size = hdr.size - sizeof(PerfEventHeader);
    if (body_size > body_capacity) {
      malformed_ = true;
      return false;
    }
    copy_wrapped(pos_ + sizeof(PerfEventHeader), body, body_size);
    pos_ += hdr.size;
    *header = hdr;
    return true;
  }

  bool malformed() const { return malformed_; }

  /// Publish the reader position: everything consumed (or, after a
  /// malformed header, the whole ring) is handed back to the writer.
  void commit() {
    if (view_.page == nullptr) return;
    view_.page->data_tail = malformed_ ? head_ : pos_;
  }

 private:
  void copy_wrapped(std::uint64_t from, std::uint8_t* out,
                    std::size_t n) const {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = view_.data[(from + i) % view_.size];
    }
  }

  PerfRingView view_;
  std::uint64_t head_ = 0;
  std::uint64_t pos_ = 0;
  bool malformed_ = false;
};

/// Decode a SAMPLE body laid out per `sample_type`. Returns false when
/// the body is shorter than the mask requires.
inline bool perf_parse_sample(std::uint64_t sample_type,
                              const std::uint8_t* body, std::size_t size,
                              PerfSampleParsed* out) {
  if (size < perf_sample_body_size(sample_type)) return false;
  std::size_t at = 0;
  const auto take64 = [&] {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(body[at + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    at += 8;
    return v;
  };
  if (sample_type & kSampleIp) out->ip = take64();
  if (sample_type & kSampleTid) {
    const std::uint64_t packed = take64();
    out->pid = static_cast<std::uint32_t>(packed & 0xffffffffu);
    out->tid = static_cast<std::uint32_t>(packed >> 32);
  }
  if (sample_type & kSampleTime) out->time = take64();
  if (sample_type & kSampleCpu) {
    out->cpu = static_cast<std::uint32_t>(take64() & 0xffffffffu);
  }
  if (sample_type & kSamplePeriod) out->period = take64();
  return true;
}

/// Decode a LOST body (u64 id, u64 lost).
inline bool perf_parse_lost(const std::uint8_t* body, std::size_t size,
                            PerfLostParsed* out) {
  if (size < 16) return false;
  std::uint64_t v[2] = {0, 0};
  for (int w = 0; w < 2; ++w) {
    for (int i = 0; i < 8; ++i) {
      v[w] |= static_cast<std::uint64_t>(
                  body[static_cast<std::size_t>(w * 8 + i)])
              << (8 * i);
    }
  }
  out->id = v[0];
  out->lost = v[1];
  return true;
}

/// ioctl requests (names follow the kernel's).
enum class PerfIoctl {
  kEnable,
  kDisable,
  kReset,
};

/// ioctl flags.
enum PerfIoctlFlags : std::uint32_t {
  kIocFlagNone = 0,
  kIocFlagGroup = 1,  // apply to the whole group
};

/// perf_event_open flags (subset; we accept and ignore CLOEXEC).
enum PerfOpenFlags : std::uint64_t {
  kOpenFlagNone = 0,
  kOpenFlagFdCloexec = 1u << 3,
};

}  // namespace hetpapi::simkernel
