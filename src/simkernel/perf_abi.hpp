// Mirror of the perf_event kernel ABI subset the library uses.
//
// We define our own structures rather than including <linux/perf_event.h>
// so the simulated backend and the real-syscall backend share one
// vocabulary; the linuxkernel module translates these to the native ABI.
// Semantics follow the kernel documentation the paper builds on:
//  * attr.type selects a PMU; heterogeneous systems export one dynamic
//    PMU type per core type (§IV-A).
//  * an event follows its target thread, but the kernel only lets it
//    count while the thread runs on a core whose type matches the
//    event's PMU.
//  * event groups are scheduled atomically and cannot span PMUs.
//  * when a group set exceeds the PMU's counters, groups are multiplexed
//    by rotation and reads report time_enabled/time_running for scaling.
#pragma once

#include <cstdint>

#include "base/units.hpp"

namespace hetpapi::simkernel {

/// Built-in PMU type ids (match the Linux values for the static types;
/// dynamic PMU ids are allocated above these at boot, as on real
/// systems).
enum PerfType : std::uint32_t {
  kPerfTypeHardware = 0,
  kPerfTypeSoftware = 1,
  kPerfTypeTracepoint = 2,
  kPerfTypeHwCache = 3,
  kPerfTypeRaw = 4,
  kPerfTypeBreakpoint = 5,
  kPerfTypeFirstDynamic = 6,
};

/// What a counter counts. The simulated cores produce these quantities
/// directly; per-PMU event tables (pfm module) map event names/configs
/// onto them with per-core-type availability (e.g. topdown slots exist
/// only on the P-core PMU, as the paper notes).
enum class CountKind : std::uint64_t {
  kInstructions = 0,
  kCycles,
  kRefCycles,        // cycles at base frequency (TSC-like)
  kLlcReferences,
  kLlcMisses,
  kBranches,
  kBranchMisses,
  kStalledCycles,
  kFlopsDp,          // scalar+vector double-precision flops
  kTopdownSlots,     // P-core only
  kTopdownRetiring,  // P-core only
  kTopdownBadSpec,   // P-core only
  kContextSwitches,  // software event
  kMigrations,       // software event
  kTaskClockNs,      // software event
  kEnergyPkgUj,      // RAPL package energy, microjoules
  kEnergyCoresUj,    // RAPL core-domain energy
  kEnergyDramUj,     // RAPL DRAM-domain energy
  kUncoreCasReads,   // IMC read CAS commands
  kUncoreCasWrites,  // IMC write CAS commands
  kCount,
};

inline constexpr std::uint64_t kNumCountKinds =
    static_cast<std::uint64_t>(CountKind::kCount);

/// attr.read_format bits (subset).
enum ReadFormat : std::uint64_t {
  kFormatTotalTimeEnabled = 1u << 0,
  kFormatTotalTimeRunning = 1u << 1,
  kFormatId = 1u << 2,
  kFormatGroup = 1u << 3,
};

/// perf_event_attr equivalent.
struct PerfEventAttr {
  std::uint32_t type = 0;    // PMU type id
  std::uint64_t config = 0;  // PMU-specific event encoding
  std::uint64_t read_format = 0;
  /// Sampling: an overflow notification fires every `sample_period`
  /// counts (0 = pure counting mode). The PAPI layer builds its
  /// PAPI_overflow support on this, period, like the real library does
  /// with the kernel's signal delivery.
  std::uint64_t sample_period = 0;
  bool disabled = false;     // start disabled (enable via ioctl)
  bool inherit = false;
  bool pinned = false;       // must always be on the PMU or error out
  bool exclude_kernel = false;
  bool exclude_idle = false;
};

/// One event's read value.
struct PerfValue {
  std::uint64_t value = 0;
  std::uint64_t time_enabled_ns = 0;
  std::uint64_t time_running_ns = 0;

  /// Multiplex-scaled estimate, as PAPI and perf compute it.
  double scaled() const {
    if (time_running_ns == 0) return 0.0;
    return static_cast<double>(value) *
           (static_cast<double>(time_enabled_ns) /
            static_cast<double>(time_running_ns));
  }
};

/// ioctl requests (names follow the kernel's).
enum class PerfIoctl {
  kEnable,
  kDisable,
  kReset,
};

/// ioctl flags.
enum PerfIoctlFlags : std::uint32_t {
  kIocFlagNone = 0,
  kIocFlagGroup = 1,  // apply to the whole group
};

/// perf_event_open flags (subset; we accept and ignore CLOEXEC).
enum PerfOpenFlags : std::uint64_t {
  kOpenFlagNone = 0,
  kOpenFlagFdCloexec = 1u << 3,
};

}  // namespace hetpapi::simkernel
