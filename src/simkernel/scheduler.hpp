// Capacity-aware time-sharing scheduler.
//
// A deliberately simplified CFS/EAS blend: threads are picked in
// virtual-runtime order, vruntime advances inversely to the capacity of
// the core that ran them, and a low-rate load-balance perturbation
// re-places threads across allowed cpus with a bias toward
// higher-capacity cores (the Thread-Director-flavoured placement real
// hybrid kernels exhibit). That perturbation is what makes an unpinned
// thread visit both core types over a run — the behaviour the paper's
// papi_hybrid_100m_one_eventset validation depends on ("some
// instructions were on the P core, some on the E core").
#pragma once

#include <vector>

#include "base/rng.hpp"
#include "cpumodel/machine.hpp"
#include "simkernel/thread.hpp"

namespace hetpapi::simkernel {

/// Placement policies — ablations over the capacity bias the hybrid
/// kernels apply (Thread Director / EAS flavours vs a naive balancer).
enum class PlacementPolicy {
  /// Weight idle-cpu choice by capacity^bias (the default; reproduces
  /// the paper's §IV-F residency split).
  kCapacityBiased,
  /// Uniform random choice among allowed idle cpus (a scheduler with no
  /// idea that core types differ).
  kUniform,
  /// Prefer the *smallest* capacity first (battery-saver placement).
  kLittleFirst,
};

class Scheduler {
 public:
  struct Config {
    /// Mean frequency of forced re-placements per thread (Hz).
    double migration_rate_hz = 3.0;
    /// Placement weight = capacity^bias. 1.5 reproduces the ~5:1
    /// P-vs-E residency split measured in the paper's §IV-F run.
    double capacity_bias_exponent = 1.5;
    PlacementPolicy policy = PlacementPolicy::kCapacityBiased;
  };

  Scheduler(const cpumodel::MachineSpec* machine, Config config,
            std::uint64_t seed);

  /// Decide which thread runs on each cpu for the next `dt`.
  /// `runnable` holds every alive thread; `assignment` is resized to
  /// num_cpus and filled with tids (kInvalidTid = idle).
  void assign(const std::vector<SimThread*>& runnable, SimDuration dt,
              std::vector<Tid>& assignment);

  /// Advance a thread's fairness clock after it consumed cpu time.
  void charge(SimThread& thread, int cpu, SimDuration consumed) const;

 private:
  int pick_cpu(const SimThread& thread, const std::vector<bool>& cpu_taken,
               bool force_move);
  double cpu_weight(int cpu) const {
    return weights_[static_cast<std::size_t>(cpu)];
  }

  const cpumodel::MachineSpec* machine_;
  Config config_;
  Rng rng_;
  /// Per-cpu placement weights (capacity^bias), precomputed once: the
  /// policy and machine are fixed for the scheduler's lifetime and the
  /// std::pow in the hot pick_cpu loop dominated its cost.
  std::vector<double> weights_;
  /// Scratch for assign(): reused across ticks to avoid reallocation.
  std::vector<bool> cpu_taken_;
  std::vector<SimThread*> order_;
};

}  // namespace hetpapi::simkernel
