#include "simkernel/pmu.hpp"

namespace hetpapi::simkernel {

std::vector<CountKind> baseline_core_kinds() {
  return {
      CountKind::kInstructions, CountKind::kCycles,
      CountKind::kRefCycles,    CountKind::kLlcReferences,
      CountKind::kLlcMisses,    CountKind::kBranches,
      CountKind::kBranchMisses, CountKind::kStalledCycles,
      CountKind::kFlopsDp,
  };
}

PmuRegistry PmuRegistry::build(const cpumodel::MachineSpec& machine) {
  PmuRegistry reg;
  // The software PMU keeps its static type id.
  PmuDesc sw;
  sw.type_id = kPerfTypeSoftware;
  sw.pmu_class = PmuClass::kSoftware;
  sw.sysfs_name = "software";
  sw.num_gp_counters = 64;  // software events never multiplex
  sw.num_fixed_counters = 0;
  sw.supported = {CountKind::kContextSwitches, CountKind::kMigrations,
                  CountKind::kTaskClockNs};
  for (const cpumodel::CpuSlot& slot : machine.cpus) sw.cpus.push_back(slot.cpu);
  reg.pmus_.push_back(sw);

  // Dynamic ids: the kernel hands these out in registration order; the
  // values below match what hybrid x86 systems typically show
  // (cpu_core=4 is grandfathered onto the old PERF_TYPE_RAW slot).
  std::uint32_t next_dynamic = kPerfTypeFirstDynamic + 2;  // 8
  for (std::size_t t = 0; t < machine.core_types.size(); ++t) {
    const cpumodel::CoreTypeSpec& type = machine.core_types[t];
    PmuDesc core;
    core.pmu_class = PmuClass::kCore;
    core.sysfs_name = type.pmu_sysfs_name;
    core.core_type = static_cast<cpumodel::CoreTypeId>(t);
    core.num_gp_counters = type.num_gp_counters;
    core.num_fixed_counters = type.num_fixed_counters;
    core.supported = baseline_core_kinds();
    // Intel topdown events live only on the P-core PMU (§I-C of the
    // paper gives exactly this example).
    if (machine.vendor == cpumodel::Vendor::kIntel &&
        type.num_fixed_counters >= 4) {
      core.supported.push_back(CountKind::kTopdownSlots);
      core.supported.push_back(CountKind::kTopdownRetiring);
      core.supported.push_back(CountKind::kTopdownBadSpec);
    }
    core.cpus = machine.cpus_of_type(static_cast<cpumodel::CoreTypeId>(t));
    if (!machine.is_hybrid() && machine.vendor == cpumodel::Vendor::kIntel) {
      core.type_id = kPerfTypeRaw;  // the traditional single "cpu" PMU slot
    } else if (machine.is_hybrid() &&
               machine.vendor == cpumodel::Vendor::kIntel && t == 0) {
      core.type_id = kPerfTypeRaw;  // cpu_core inherits type 4 on hybrid x86
    } else {
      core.type_id = next_dynamic++;
    }
    reg.pmus_.push_back(core);
  }

  if (machine.rapl.present) {
    PmuDesc rapl;
    rapl.pmu_class = PmuClass::kRapl;
    rapl.sysfs_name = "power";
    rapl.type_id = next_dynamic++;
    rapl.num_gp_counters = 8;
    rapl.num_fixed_counters = 0;
    rapl.supported = {CountKind::kEnergyPkgUj, CountKind::kEnergyCoresUj,
                      CountKind::kEnergyDramUj};
    rapl.cpus = {0};  // package scope: counts on one cpu per package
    reg.pmus_.push_back(rapl);

    PmuDesc imc;
    imc.pmu_class = PmuClass::kUncore;
    imc.sysfs_name = "uncore_imc_0";
    imc.type_id = next_dynamic++;
    imc.num_gp_counters = 5;
    imc.num_fixed_counters = 0;
    imc.supported = {CountKind::kUncoreCasReads, CountKind::kUncoreCasWrites};
    imc.cpus = {0};
    reg.pmus_.push_back(imc);
  }
  return reg;
}

const PmuDesc* PmuRegistry::find_by_type(std::uint32_t type_id) const {
  for (const PmuDesc& pmu : pmus_) {
    if (pmu.type_id == type_id) return &pmu;
  }
  return nullptr;
}

const PmuDesc* PmuRegistry::find_by_name(std::string_view sysfs_name) const {
  for (const PmuDesc& pmu : pmus_) {
    if (pmu.sysfs_name == sysfs_name) return &pmu;
  }
  return nullptr;
}

const PmuDesc* PmuRegistry::core_pmu_for_cpu(int cpu) const {
  for (const PmuDesc& pmu : pmus_) {
    if (pmu.pmu_class != PmuClass::kCore) continue;
    for (int c : pmu.cpus) {
      if (c == cpu) return &pmu;
    }
  }
  return nullptr;
}

std::vector<const PmuDesc*> PmuRegistry::core_pmus() const {
  std::vector<const PmuDesc*> out;
  for (const PmuDesc& pmu : pmus_) {
    if (pmu.pmu_class == PmuClass::kCore) out.push_back(&pmu);
  }
  return out;
}

}  // namespace hetpapi::simkernel
