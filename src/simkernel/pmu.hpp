// PMU registry: the set of performance-monitoring units the simulated
// kernel exports, with their dynamic type ids and sysfs names.
//
// On a hybrid machine the kernel registers one core PMU per core type
// ("cpu_core"/"cpu_atom" on Intel, per-cluster armv8 PMUs on ARM), plus
// the usual software, RAPL and uncore PMUs. Each gets a dynamic type id
// and a /sys/devices/<name>/ directory with "type" and "cpus" files —
// precisely the discovery surface the paper's detection section works
// through.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "base/status.hpp"
#include "cpumodel/machine.hpp"
#include "simkernel/perf_abi.hpp"

namespace hetpapi::simkernel {

enum class PmuClass {
  kCore,      // per-core-type hardware PMU
  kSoftware,  // kernel software events (always-on, any cpu)
  kRapl,      // energy counters, package scope, cpu-bound not thread-bound
  kUncore,    // memory-controller counters, package scope
};

struct PmuDesc {
  std::uint32_t type_id = 0;
  PmuClass pmu_class = PmuClass::kCore;
  std::string sysfs_name;  // /sys/devices/<sysfs_name>
  /// For core PMUs: which core type this PMU belongs to.
  cpumodel::CoreTypeId core_type = -1;
  /// Logical CPUs this PMU can count on (contents of the "cpus" file).
  std::vector<int> cpus;
  /// General-purpose counters available for scheduling (multiplexing
  /// kicks in beyond this); fixed counters handled separately.
  int num_gp_counters = 8;
  int num_fixed_counters = 3;
  /// CountKinds this PMU implements. An open() with a config outside
  /// this list fails with EINVAL-equivalent, which is how "the event
  /// might not exist at all there" (§IV-A) manifests.
  std::vector<CountKind> supported;

  bool supports(CountKind kind) const {
    for (CountKind k : supported) {
      if (k == kind) return true;
    }
    return false;
  }

  /// Fixed-counter kinds don't consume GP slots (cycles, instructions,
  /// ref-cycles and — on P-cores — topdown slots).
  bool is_fixed(CountKind kind) const {
    switch (kind) {
      case CountKind::kInstructions:
      case CountKind::kCycles:
      case CountKind::kRefCycles:
        return num_fixed_counters >= 3;
      case CountKind::kTopdownSlots:
        return num_fixed_counters >= 4;
      default:
        return false;
    }
  }
};

/// Built at kernel boot from the machine spec.
class PmuRegistry {
 public:
  static PmuRegistry build(const cpumodel::MachineSpec& machine);

  const std::vector<PmuDesc>& all() const { return pmus_; }

  const PmuDesc* find_by_type(std::uint32_t type_id) const;
  const PmuDesc* find_by_name(std::string_view sysfs_name) const;
  /// The core PMU covering a given logical CPU.
  const PmuDesc* core_pmu_for_cpu(int cpu) const;
  /// All core-class PMUs (one on homogeneous machines, 2+ on hybrid).
  std::vector<const PmuDesc*> core_pmus() const;

 private:
  std::vector<PmuDesc> pmus_;
};

/// CountKinds every core PMU supports.
std::vector<CountKind> baseline_core_kinds();

}  // namespace hetpapi::simkernel
