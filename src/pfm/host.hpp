// Backend-neutral host introspection.
//
// Everything the event library and the PAPI detection code learn about
// the machine flows through this interface: sysfs/procfs reads and the
// CPUID hybrid leaf. The simulated kernel implements it over its
// in-memory tree; the real-Linux backend implements it over the actual
// filesystem. Keeping detection logic behind this seam is what makes it
// the "same code a real port would run".
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "base/status.hpp"
#include "cpumodel/types.hpp"

namespace hetpapi::pfm {

class Host {
 public:
  virtual ~Host() = default;

  /// Read a /sys or /proc path (trailing newline preserved).
  virtual Expected<std::string> read_file(std::string_view path) const = 0;

  /// List directory entries (names only).
  virtual Expected<std::vector<std::string>> list_dir(
      std::string_view path) const = 0;

  /// CPUID leaf 0x1A hybrid core kind for a cpu. kNotSupported on
  /// non-x86 hosts.
  virtual Expected<cpumodel::IntelCoreKind> cpuid_core_kind(int cpu) const = 0;

  /// Number of online logical CPUs.
  virtual int num_cpus() const = 0;

  // Convenience wrappers -----------------------------------------------------

  Expected<std::string> read_value(std::string_view path) const;
  Expected<std::int64_t> read_int(std::string_view path) const;
  bool exists(std::string_view path) const {
    return read_file(path).has_value() || list_dir(path).has_value();
  }
};

}  // namespace hetpapi::pfm
