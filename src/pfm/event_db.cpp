#include "pfm/event_db.hpp"

#include "base/strings.hpp"

namespace hetpapi::pfm {

using simkernel::CountKind;

const UmaskDesc* EventDesc::find_umask(std::string_view umask) const {
  for (const UmaskDesc& u : umasks) {
    if (iequals(u.name, umask)) return &u;
  }
  return nullptr;
}

const EventDesc* PmuTable::find_event(std::string_view name) const {
  for (const EventDesc& e : events) {
    if (iequals(e.name, name)) return &e;
  }
  return nullptr;
}

namespace {

EventDesc simple(std::string name, CountKind kind, std::string desc) {
  EventDesc e;
  e.name = std::move(name);
  e.description = std::move(desc);
  e.default_kind = kind;
  return e;
}

/// Events shared by every modern Intel core PMU table.
std::vector<EventDesc> intel_common_events() {
  std::vector<EventDesc> events;

  EventDesc inst;
  inst.name = "INST_RETIRED";
  inst.description = "Number of instructions retired";
  inst.default_kind = CountKind::kInstructions;
  inst.umasks = {
      {"ANY", CountKind::kInstructions, "All retired instructions"},
      {"ANY_P", CountKind::kInstructions,
       "All retired instructions (programmable counter)"},
  };
  events.push_back(inst);

  EventDesc clk;
  clk.name = "CPU_CLK_UNHALTED";
  clk.description = "Core cycles when the thread is not halted";
  clk.default_kind = CountKind::kCycles;
  clk.umasks = {
      {"THREAD", CountKind::kCycles, "Cycles while the thread runs"},
      {"THREAD_P", CountKind::kCycles, "Cycles (programmable counter)"},
      {"REF_TSC", CountKind::kRefCycles, "Reference cycles at TSC rate"},
  };
  events.push_back(clk);

  EventDesc llc;
  llc.name = "LONGEST_LAT_CACHE";
  llc.description = "Last-level cache activity";
  llc.requires_umask = true;
  llc.umasks = {
      {"REFERENCE", CountKind::kLlcReferences, "LLC references"},
      {"MISS", CountKind::kLlcMisses, "LLC misses"},
  };
  events.push_back(llc);

  EventDesc br;
  br.name = "BR_INST_RETIRED";
  br.description = "Retired branch instructions";
  br.default_kind = CountKind::kBranches;
  br.umasks = {
      {"ALL_BRANCHES", CountKind::kBranches, "All retired branches"},
  };
  events.push_back(br);

  EventDesc brm;
  brm.name = "BR_MISP_RETIRED";
  brm.description = "Mispredicted branch instructions";
  brm.default_kind = CountKind::kBranchMisses;
  brm.umasks = {
      {"ALL_BRANCHES", CountKind::kBranchMisses, "All mispredicted branches"},
  };
  events.push_back(brm);

  events.push_back(simple("RESOURCE_STALLS", CountKind::kStalledCycles,
                          "Cycles stalled on any resource"));

  EventDesc fp;
  fp.name = "FP_ARITH_INST_RETIRED";
  fp.description = "Floating-point operations retired";
  fp.requires_umask = true;
  fp.umasks = {
      {"SCALAR_DOUBLE", CountKind::kFlopsDp, "Scalar DP flops"},
      {"256B_PACKED_DOUBLE", CountKind::kFlopsDp, "256-bit packed DP flops"},
  };
  events.push_back(fp);

  return events;
}

/// The topdown event block shared by Intel P-core tables.
EventDesc intel_topdown_event() {
  EventDesc td;
  td.name = "TOPDOWN";
  td.description = "Topdown micro-architecture analysis slots";
  td.requires_umask = true;
  td.umasks = {
      {"SLOTS", CountKind::kTopdownSlots, "Available pipeline slots"},
      {"RETIRING", CountKind::kTopdownRetiring, "Slots that retired uops"},
      {"BAD_SPEC", CountKind::kTopdownBadSpec, "Slots wasted on bad speculation"},
  };
  return td;
}

PmuTable make_adl_glc() {
  PmuTable t;
  t.pfm_name = "adl_glc";
  t.description = "Intel Alder/Raptor Lake GoldenCove (P-core)";
  t.match = MatchKind::kSysfsName;
  t.sysfs_names = {"cpu_core"};
  // Hybrid PMU sysfs names repeat across generations ("cpu_core" on ADL,
  // RPL and MTL alike), so hybrid tables key on family/model too.
  t.intel_models = {0x97, 0x9A, 0xB7, 0xBA, 0xBF};
  t.is_core = true;
  t.events = intel_common_events();
  // Topdown events: only on the P-core, the paper's canonical example of
  // per-core-type availability.
  t.events.push_back(intel_topdown_event());
  return t;
}

PmuTable make_adl_grt() {
  PmuTable t;
  t.pfm_name = "adl_grt";
  t.description = "Intel Alder/Raptor Lake Gracemont (E-core)";
  t.match = MatchKind::kSysfsName;
  t.sysfs_names = {"cpu_atom"};
  t.intel_models = {0x97, 0x9A, 0xB7, 0xBA, 0xBF};
  t.is_core = true;
  t.events = intel_common_events();
  // Gracemont uses a distinct topdown-free, MEM_BOUND_STALLS-flavoured
  // stall event name.
  t.events.push_back(simple("MEM_BOUND_STALLS", CountKind::kStalledCycles,
                            "Cycles stalled on memory (E-core encoding)"));
  return t;
}

PmuTable make_mtl_rwc() {
  PmuTable t;
  t.pfm_name = "mtl_rwc";
  t.description = "Intel Meteor Lake RedwoodCove (P-core)";
  t.match = MatchKind::kSysfsName;
  t.sysfs_names = {"cpu_core"};
  t.intel_models = {0xAA};
  t.is_core = true;
  t.events = intel_common_events();
  t.events.push_back(intel_topdown_event());
  return t;
}

PmuTable make_mtl_cmt() {
  PmuTable t;
  t.pfm_name = "mtl_cmt";
  t.description = "Intel Meteor Lake Crestmont (E-core)";
  t.match = MatchKind::kSysfsName;
  t.sysfs_names = {"cpu_atom"};
  t.intel_models = {0xAA};
  t.is_core = true;
  t.events = intel_common_events();
  t.events.push_back(simple("MEM_BOUND_STALLS", CountKind::kStalledCycles,
                            "Cycles stalled on memory (Crestmont)"));
  return t;
}

PmuTable make_mtl_lpe() {
  // The low-power island exposes a third core PMU. Architecturally it is
  // Crestmont like the E-cores — same event list — but the kernel
  // registers it separately as "cpu_lowpower", so event encoding,
  // scheduling and derived-preset expansion all see a third PMU type.
  PmuTable t;
  t.pfm_name = "mtl_lpe";
  t.description = "Intel Meteor Lake Crestmont-LP (low-power island E-core)";
  t.match = MatchKind::kSysfsName;
  t.sysfs_names = {"cpu_lowpower"};
  t.intel_models = {0xAA};
  t.is_core = true;
  t.events = intel_common_events();
  t.events.push_back(simple("MEM_BOUND_STALLS", CountKind::kStalledCycles,
                            "Cycles stalled on memory (Crestmont)"));
  return t;
}

PmuTable make_skx() {
  PmuTable t;
  t.pfm_name = "skx";
  t.description = "Intel Skylake-SP (homogeneous server core)";
  t.match = MatchKind::kSysfsName;
  t.sysfs_names = {"cpu"};
  t.intel_models = {0x55};
  t.is_core = true;
  t.events = intel_common_events();
  return t;
}

PmuTable make_srf() {
  PmuTable t;
  t.pfm_name = "srf";
  t.description = "Intel Sierra Forest (E-core-only server)";
  t.match = MatchKind::kSysfsName;
  t.sysfs_names = {"cpu"};
  t.intel_models = {0xAF};
  t.is_core = true;
  t.events = intel_common_events();
  t.events.push_back(simple("MEM_BOUND_STALLS", CountKind::kStalledCycles,
                            "Cycles stalled on memory (Crestmont)"));
  return t;
}

PmuTable make_gnr() {
  PmuTable t;
  t.pfm_name = "gnr";
  t.description = "Intel Granite Rapids (P-core-only server)";
  t.match = MatchKind::kSysfsName;
  t.sysfs_names = {"cpu"};
  t.intel_models = {0xAD};
  t.is_core = true;
  t.events = intel_common_events();
  EventDesc td;
  td.name = "TOPDOWN";
  td.description = "Topdown micro-architecture analysis slots";
  td.requires_umask = true;
  td.umasks = {
      {"SLOTS", CountKind::kTopdownSlots, "Available pipeline slots"},
      {"RETIRING", CountKind::kTopdownRetiring, "Slots that retired uops"},
      {"BAD_SPEC", CountKind::kTopdownBadSpec,
       "Slots wasted on bad speculation"},
  };
  t.events.push_back(td);
  return t;
}

/// ARM architectural events shared by ARMv8 cores.
std::vector<EventDesc> armv8_common_events() {
  std::vector<EventDesc> events;
  events.push_back(simple("INST_RETIRED", CountKind::kInstructions,
                          "Architecturally executed instructions"));
  events.push_back(
      simple("CPU_CYCLES", CountKind::kCycles, "Processor cycles"));
  events.push_back(simple("LL_CACHE", CountKind::kLlcReferences,
                          "Last-level cache accesses"));
  events.push_back(simple("LL_CACHE_MISS", CountKind::kLlcMisses,
                          "Last-level cache misses"));
  events.push_back(simple("BR_RETIRED", CountKind::kBranches,
                          "Architecturally executed branches"));
  events.push_back(simple("BR_MIS_PRED_RETIRED", CountKind::kBranchMisses,
                          "Mispredicted branches"));
  events.push_back(simple("STALL_BACKEND", CountKind::kStalledCycles,
                          "Cycles with no dispatch due to backend"));
  events.push_back(simple("VFP_SPEC", CountKind::kFlopsDp,
                          "Speculatively executed FP operations"));
  return events;
}

PmuTable make_arm_a72() {
  PmuTable t;
  t.pfm_name = "arm_a72";
  t.description = "ARM Cortex-A72 (big)";
  t.match = MatchKind::kArmMidr;
  t.arm_parts = {{0x41, 0xd08}};
  t.is_core = true;
  t.events = armv8_common_events();
  return t;
}

PmuTable make_arm_a53() {
  PmuTable t;
  t.pfm_name = "arm_a53";
  t.description = "ARM Cortex-A53 (LITTLE)";
  t.match = MatchKind::kArmMidr;
  t.arm_parts = {{0x41, 0xd03}};
  t.is_core = true;
  t.events = armv8_common_events();
  return t;
}

PmuTable make_arm_x1() {
  PmuTable t;
  t.pfm_name = "arm_x1";
  t.description = "ARM Cortex-X1 (prime)";
  t.match = MatchKind::kArmMidr;
  t.arm_parts = {{0x41, 0xd44}};
  t.is_core = true;
  t.events = armv8_common_events();
  return t;
}

PmuTable make_arm_a78() {
  PmuTable t;
  t.pfm_name = "arm_a78";
  t.description = "ARM Cortex-A78 (big)";
  t.match = MatchKind::kArmMidr;
  t.arm_parts = {{0x41, 0xd41}};
  t.is_core = true;
  t.events = armv8_common_events();
  return t;
}

PmuTable make_arm_a55() {
  PmuTable t;
  t.pfm_name = "arm_a55";
  t.description = "ARM Cortex-A55 (little)";
  t.match = MatchKind::kArmMidr;
  t.arm_parts = {{0x41, 0xd05}};
  t.is_core = true;
  t.events = armv8_common_events();
  return t;
}

PmuTable make_arm_x2() {
  PmuTable t;
  t.pfm_name = "arm_x2";
  t.description = "ARM Cortex-X2 (big)";
  t.match = MatchKind::kArmMidr;
  t.arm_parts = {{0x41, 0xd48}};
  t.is_core = true;
  t.events = armv8_common_events();
  return t;
}

PmuTable make_arm_a710() {
  PmuTable t;
  t.pfm_name = "arm_a710";
  t.description = "ARM Cortex-A710 (mid)";
  t.match = MatchKind::kArmMidr;
  t.arm_parts = {{0x41, 0xd47}};
  t.is_core = true;
  t.events = armv8_common_events();
  return t;
}

PmuTable make_arm_a510() {
  PmuTable t;
  t.pfm_name = "arm_a510";
  t.description = "ARM Cortex-A510 (little)";
  t.match = MatchKind::kArmMidr;
  t.arm_parts = {{0x41, 0xd46}};
  t.is_core = true;
  t.events = armv8_common_events();
  return t;
}

PmuTable make_rapl() {
  PmuTable t;
  t.pfm_name = "rapl";
  t.description = "Intel RAPL energy counters";
  t.match = MatchKind::kSysfsName;
  t.sysfs_names = {"power"};
  t.component = "rapl";
  t.events.push_back(simple("RAPL_ENERGY_PKG", CountKind::kEnergyPkgUj,
                            "Package domain energy (uJ)"));
  t.events.push_back(simple("RAPL_ENERGY_CORES", CountKind::kEnergyCoresUj,
                            "Core domain energy (uJ)"));
  t.events.push_back(simple("RAPL_ENERGY_DRAM", CountKind::kEnergyDramUj,
                            "DRAM domain energy (uJ)"));
  return t;
}

PmuTable make_unc_imc() {
  PmuTable t;
  t.pfm_name = "unc_imc_0";
  t.description = "Integrated memory controller uncore";
  t.match = MatchKind::kSysfsName;
  t.sysfs_names = {"uncore_imc_0"};
  t.component = "uncore";
  EventDesc cas;
  cas.name = "UNC_M_CAS_COUNT";
  cas.description = "DRAM CAS commands";
  cas.requires_umask = true;
  cas.umasks = {
      {"RD", CountKind::kUncoreCasReads, "Read CAS commands"},
      {"WR", CountKind::kUncoreCasWrites, "Write CAS commands"},
  };
  t.events.push_back(cas);
  return t;
}

PmuTable make_perf_sw() {
  PmuTable t;
  t.pfm_name = "perf";
  t.description = "Kernel software events";
  t.match = MatchKind::kSysfsName;
  t.sysfs_names = {"software"};
  t.events.push_back(simple("CONTEXT_SWITCHES", CountKind::kContextSwitches,
                            "Context switches"));
  t.events.push_back(simple("CPU_MIGRATIONS", CountKind::kMigrations,
                            "CPU migrations"));
  t.events.push_back(
      simple("TASK_CLOCK", CountKind::kTaskClockNs, "Task clock (ns)"));
  return t;
}

PmuTable make_sysinfo() {
  // Software table for the sysinfo component: readings served from
  // procfs/sysfs, no kernel PMU behind them — so it binds
  // unconditionally instead of matching a /sys/devices entry. The
  // CountKinds are nominal; the component keys its readers on the event
  // names and never opens a perf event.
  PmuTable t;
  t.pfm_name = "sysinfo";
  t.description = "System information readings (procfs/sysfs)";
  t.match = MatchKind::kAlways;
  t.component = "sysinfo";
  t.events.push_back(simple("SYS_CTX_SWITCHES", CountKind::kContextSwitches,
                            "System-wide context switches (/proc/stat)"));
  t.events.push_back(simple("SYS_CPU_TIME_MS", CountKind::kTaskClockNs,
                            "Aggregate busy cpu time in ms (/proc/stat)"));
  t.events.push_back(simple("PKG_TEMP_MC", CountKind::kCycles,
                            "Package temperature in millidegrees C"));
  return t;
}

}  // namespace

const std::vector<PmuTable>& all_tables() {
  static const std::vector<PmuTable> tables = {
      make_adl_glc(),  make_adl_grt(), make_mtl_rwc(), make_mtl_cmt(),
      make_mtl_lpe(),  make_skx(),     make_srf(),     make_gnr(),
      make_arm_a72(),  make_arm_a53(), make_arm_x1(),  make_arm_a78(),
      make_arm_a55(),  make_arm_x2(),  make_arm_a710(), make_arm_a510(),
      make_rapl(),     make_unc_imc(), make_perf_sw(), make_sysinfo(),
  };
  return tables;
}

const PmuTable* table_by_name(std::string_view pfm_name) {
  for (const PmuTable& t : all_tables()) {
    if (iequals(t.pfm_name, pfm_name)) return &t;
  }
  return nullptr;
}

}  // namespace hetpapi::pfm
