#include "pfm/host.hpp"

#include "base/strings.hpp"

namespace hetpapi::pfm {

Expected<std::string> Host::read_value(std::string_view path) const {
  auto contents = read_file(path);
  if (!contents) return contents.status();
  return std::string(trim(*contents));
}

Expected<std::int64_t> Host::read_int(std::string_view path) const {
  auto value = read_value(path);
  if (!value) return value.status();
  const auto parsed = parse_int(*value);
  if (!parsed) {
    return make_error(StatusCode::kInvalidArgument,
                      "not an integer: " + *value);
  }
  return *parsed;
}

}  // namespace hetpapi::pfm
