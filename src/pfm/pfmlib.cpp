#include "pfm/pfmlib.hpp"

#include <algorithm>
#include <optional>

#include "base/log.hpp"
#include "base/strings.hpp"

namespace hetpapi::pfm {

namespace {

/// Hard-coded default-PMU ranking (§IV-D: "for now it has to be
/// hard-coded for each known heterogeneous CPU type"). Lower = searched
/// first. P/big cores come before E/LITTLE so unprefixed names resolve
/// on the performance cores.
int default_rank(std::string_view pfm_name) {
  static constexpr std::pair<std::string_view, int> kRanks[] = {
      {"adl_glc", 0},  {"adl_grt", 1},  {"skx", 0},      {"arm_x1", 0},
      {"arm_a78", 1},  {"arm_a72", 0},  {"arm_a53", 1},  {"arm_a55", 2},
      {"mtl_rwc", 0},  {"mtl_cmt", 1},  {"mtl_lpe", 2},  {"arm_x2", 0},
      {"arm_a710", 1}, {"arm_a510", 2},
  };
  for (const auto& [name, rank] : kRanks) {
    if (iequals(name, pfm_name)) return rank;
  }
  return 99;
}

/// Parse a midr_el1 value into (implementer, part).
std::pair<int, int> decode_midr(std::int64_t midr) {
  const int implementer = static_cast<int>((midr >> 24) & 0xFF);
  const int part = static_cast<int>((midr >> 4) & 0xFFF);
  return {implementer, part};
}

/// First "model :" value from /proc/cpuinfo (x86).
std::optional<int> read_intel_model(const Host& host) {
  const auto cpuinfo = host.read_file("/proc/cpuinfo");
  if (!cpuinfo) return std::nullopt;
  for (std::string_view line : split(*cpuinfo, '\n')) {
    const std::string_view trimmed = trim(line);
    if (!starts_with(trimmed, "model")) continue;
    if (starts_with(trimmed, "model name")) continue;
    const std::size_t colon = trimmed.find(':');
    if (colon == std::string_view::npos) continue;
    const auto value = parse_int(trim(trimmed.substr(colon + 1)));
    if (value) return static_cast<int>(*value);
  }
  return std::nullopt;
}

}  // namespace

Status PfmLibrary::initialize(const Host& host, Config config) {
  active_.clear();
  encode_cache_.clear();
  config_ = config;

  auto devices = host.list_dir("/sys/devices");
  if (!devices) {
    return make_error(StatusCode::kSystem,
                      "cannot scan /sys/devices: " + devices.status().to_string());
  }
  std::sort(devices->begin(), devices->end());

  bool saw_arm_pmu = false;
  for (const std::string& name : *devices) {
    // A PMU directory is one with a "type" attribute.
    if (!host.read_int("/sys/devices/" + name + "/type").has_value()) continue;
    const bool is_arm_core = starts_with(name, "armv8");
    if (is_arm_core && saw_arm_pmu && !config_.arm_multi_pmu_patch) {
      // Legacy libpfm4 ARM scan: only the first core PMU is bound, so
      // the other cluster's events are simply absent (§IV-C).
      HETPAPI_WARN << "legacy ARM scan: ignoring additional PMU " << name;
      continue;
    }
    const Status bound = bind_pmu(host, name);
    if (bound.is_ok() && is_arm_core) saw_arm_pmu = true;
  }

  if (active_.empty()) {
    return make_error(StatusCode::kNotFound, "no recognizable PMU found");
  }

  // Bind the software tables (MatchKind::kAlways): they have no kernel
  // device, so they activate unconditionally once a real PMU proved the
  // sysfs surface is alive. Their perf_type is synthetic — software
  // components never pass it to perf_event_open.
  std::uint32_t software_type = 0xFFFF0000u;
  for (const PmuTable& table : all_tables()) {
    if (table.match != MatchKind::kAlways) continue;
    ActivePmu active;
    active.table = &table;
    active.perf_type = software_type++;
    active.sysfs_name = "(software)";
    active.is_core = table.is_core;
    active_.push_back(std::move(active));
  }

  initialized_ = true;
  return Status::ok();
}

Status PfmLibrary::bind_pmu(const Host& host, const std::string& sysfs_name) {
  const std::string dir = "/sys/devices/" + sysfs_name;
  const auto type_id = host.read_int(dir + "/type");
  if (!type_id) return type_id.status();

  // Read the covered-cpu list if the PMU exports one ("cpus" on hybrid
  // core PMUs, "cpumask" on uncore-style PMUs).
  std::vector<int> cpus;
  for (const char* attr : {"/cpus", "/cpumask"}) {
    const auto contents = host.read_value(dir + attr);
    if (contents) {
      if (auto parsed = parse_cpulist(*contents)) cpus = std::move(*parsed);
      break;
    }
  }

  const PmuTable* matched = nullptr;
  for (const PmuTable& table : all_tables()) {
    switch (table.match) {
      case MatchKind::kSysfsName: {
        bool name_hit = false;
        for (const std::string& candidate : table.sysfs_names) {
          if (candidate == sysfs_name) name_hit = true;
        }
        if (!name_hit) break;
        if (!table.intel_models.empty()) {
          // Homogeneous Intel parts all expose the same "cpu" PMU name;
          // the table binds via cpuinfo family/model — the very keying
          // that cannot disambiguate hybrid P/E cores (§IV-B).
          const auto model = read_intel_model(host);
          if (!model || std::find(table.intel_models.begin(),
                                  table.intel_models.end(),
                                  *model) == table.intel_models.end()) {
            break;
          }
        }
        matched = &table;
        break;
      }
      case MatchKind::kArmMidr: {
        // Devicetree firmware may name every cluster "armv8_pmuv3_N", so
        // names are useless (§IV-B); identify via the MIDR of a covered
        // cpu instead.
        if (!starts_with(sysfs_name, "armv8")) break;
        if (cpus.empty()) break;
        const auto midr = host.read_int(
            "/sys/devices/system/cpu/cpu" + std::to_string(cpus.front()) +
            "/regs/identification/midr_el1");
        if (!midr) break;
        const auto [implementer, part] = decode_midr(*midr);
        for (const auto& [want_impl, want_part] : table.arm_parts) {
          if (want_impl == implementer && want_part == part) matched = &table;
        }
        break;
      }
      case MatchKind::kAlways:
        // Software tables bind after the device scan, not to a device.
        break;
    }
    if (matched != nullptr) break;
  }
  if (matched == nullptr) {
    return make_error(StatusCode::kNotFound,
                      "no table for PMU " + sysfs_name);
  }

  ActivePmu active;
  active.table = matched;
  active.perf_type = static_cast<std::uint32_t>(*type_id);
  active.sysfs_name = sysfs_name;
  active.cpus = std::move(cpus);
  active.is_core = matched->is_core;
  active_.push_back(std::move(active));
  return Status::ok();
}

const ActivePmu* PfmLibrary::find_pmu(std::string_view pfm_name) const {
  for (const ActivePmu& pmu : active_) {
    if (iequals(pmu.table->pfm_name, pfm_name)) return &pmu;
  }
  return nullptr;
}

std::vector<const ActivePmu*> PfmLibrary::default_pmus() const {
  std::vector<const ActivePmu*> core;
  for (const ActivePmu& pmu : active_) {
    if (pmu.is_core) core.push_back(&pmu);
  }
  std::stable_sort(core.begin(), core.end(),
                   [](const ActivePmu* a, const ActivePmu* b) {
                     return default_rank(a->table->pfm_name) <
                            default_rank(b->table->pfm_name);
                   });
  return core;
}

Expected<Encoding> PfmLibrary::encode_on(
    const ActivePmu& pmu, std::string_view event_and_umask) const {
  std::string_view event_name = event_and_umask;
  std::string_view umask;
  const std::size_t colon = event_and_umask.find(':');
  if (colon != std::string_view::npos) {
    event_name = event_and_umask.substr(0, colon);
    umask = event_and_umask.substr(colon + 1);
  }

  const EventDesc* event = pmu.table->find_event(event_name);
  if (event == nullptr) {
    return make_error(StatusCode::kNotFound,
                      pmu.table->pfm_name + " has no event " +
                          std::string(event_name));
  }

  Encoding enc;
  enc.perf_type = pmu.perf_type;
  enc.pmu_name = pmu.table->pfm_name;
  if (umask.empty()) {
    if (event->requires_umask) {
      return make_error(StatusCode::kInvalidArgument,
                        event->name + " requires a unit mask");
    }
    enc.kind = event->default_kind;
    enc.canonical_name = enc.pmu_name + "::" + event->name;
  } else {
    const UmaskDesc* u = event->find_umask(umask);
    if (u == nullptr) {
      return make_error(StatusCode::kNotFound,
                        event->name + " has no unit mask " +
                            std::string(umask));
    }
    enc.kind = u->kind;
    enc.canonical_name = enc.pmu_name + "::" + event->name + ":" + u->name;
  }
  enc.config = static_cast<std::uint64_t>(enc.kind);
  return enc;
}

Expected<Encoding> PfmLibrary::encode(std::string_view name) const {
  if (!initialized_) {
    return make_error(StatusCode::kComponent, "pfm library not initialized");
  }
  if (const auto hit = encode_cache_.find(name); hit != encode_cache_.end()) {
    return hit->second;
  }
  auto resolved = encode_uncached(name);
  if (resolved) encode_cache_.emplace(std::string(name), *resolved);
  return resolved;
}

Expected<Encoding> PfmLibrary::encode_uncached(std::string_view name) const {
  const std::size_t sep = name.find("::");
  if (sep != std::string_view::npos) {
    const std::string_view pmu_name = name.substr(0, sep);
    const ActivePmu* pmu = find_pmu(pmu_name);
    if (pmu == nullptr) {
      return make_error(StatusCode::kNotFound,
                        "no active PMU named " + std::string(pmu_name));
    }
    return encode_on(*pmu, name.substr(sep + 2));
  }

  // Unprefixed: search the default PMUs.
  const std::vector<const ActivePmu*> defaults = default_pmus();
  if (defaults.empty()) {
    return make_error(StatusCode::kNotFound, "no core PMU active");
  }
  if (defaults.size() > 1 && !config_.multiple_default_pmus) {
    // Legacy PAPI/libpfm4 behaviour on hybrid machines (§IV-D): the
    // single-default assumption breaks outright.
    return make_error(StatusCode::kConflict,
                      "multiple default PMUs but multi-default support "
                      "is disabled");
  }
  Status last = make_error(StatusCode::kNotFound, "event not found");
  for (const ActivePmu* pmu : defaults) {
    auto enc = encode_on(*pmu, name);
    if (enc) return enc;
    last = enc.status();
  }
  return last;
}

std::vector<std::string> PfmLibrary::event_names(const ActivePmu& pmu) const {
  std::vector<std::string> names;
  for (const EventDesc& event : pmu.table->events) {
    if (event.umasks.empty()) {
      names.push_back(pmu.table->pfm_name + "::" + event.name);
      continue;
    }
    for (const UmaskDesc& umask : event.umasks) {
      names.push_back(pmu.table->pfm_name + "::" + event.name + ":" +
                      umask.name);
    }
  }
  return names;
}

}  // namespace hetpapi::pfm
