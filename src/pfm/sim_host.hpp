// Host implementation backed by the simulated kernel.
#pragma once

#include "pfm/host.hpp"
#include "simkernel/kernel.hpp"

namespace hetpapi::pfm {

class SimHost final : public Host {
 public:
  explicit SimHost(const simkernel::SimKernel* kernel) : kernel_(kernel) {}

  Expected<std::string> read_file(std::string_view path) const override {
    return kernel_->sysfs_read(path);
  }

  Expected<std::vector<std::string>> list_dir(
      std::string_view path) const override {
    return kernel_->sysfs_list(path);
  }

  Expected<cpumodel::IntelCoreKind> cpuid_core_kind(int cpu) const override {
    return kernel_->cpuid_core_kind(cpu);
  }

  int num_cpus() const override { return kernel_->machine().num_cpus(); }

 private:
  const simkernel::SimKernel* kernel_;
};

}  // namespace hetpapi::pfm
