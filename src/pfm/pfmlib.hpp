// The event-encoding library (libpfm4's role): discovers which PMUs the
// kernel exports, binds each to an event table, resolves event-name
// strings to perf_event_attr encodings, and maintains the *default PMU*
// search list used for names with no pmu:: prefix.
//
// Two configuration flags reproduce the historical limitations the
// paper worked through, so tests and ablations can demonstrate the
// before/after behaviour:
//  * arm_multi_pmu_patch (§IV-C) — without the patch, the ARM scan stops
//    after the first armv8 PMU, so one big.LITTLE cluster is invisible;
//  * multiple_default_pmus (§IV-D) — without the fix, a machine that
//    reports more than one core PMU makes unprefixed event lookups fail.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.hpp"
#include "pfm/event_db.hpp"
#include "pfm/host.hpp"

namespace hetpapi::pfm {

/// A PMU table successfully bound to a kernel PMU on this machine.
struct ActivePmu {
  const PmuTable* table = nullptr;
  std::uint32_t perf_type = 0;  // kernel dynamic type id
  std::string sysfs_name;
  std::vector<int> cpus;  // from the cpus/cpumask file; empty = all cpus
  bool is_core = false;
};

/// A fully resolved event ready for perf_event_open.
struct Encoding {
  std::uint32_t perf_type = 0;
  std::uint64_t config = 0;
  simkernel::CountKind kind = simkernel::CountKind::kInstructions;
  std::string pmu_name;         // pfm table name, e.g. "adl_glc"
  std::string canonical_name;   // "adl_glc::INST_RETIRED:ANY"
};

class PfmLibrary {
 public:
  struct Config {
    bool multiple_default_pmus = true;
    bool arm_multi_pmu_patch = true;
  };

  /// Scan /sys/devices via `host`, bind tables, build the default list.
  Status initialize(const Host& host, Config config);
  Status initialize(const Host& host) { return initialize(host, Config{}); }

  bool initialized() const { return initialized_; }

  const std::vector<ActivePmu>& pmus() const { return active_; }
  const ActivePmu* find_pmu(std::string_view pfm_name) const;

  /// Core PMUs in default-search order (P before E: hard-coded ranking,
  /// as the paper says there is no generic rule).
  std::vector<const ActivePmu*> default_pmus() const;

  /// Resolve "pmu::EVENT:UMASK" or "EVENT:UMASK" (searched across the
  /// default PMUs) to an encoding. Successful resolutions are memoized
  /// (the name -> attr parse is pure for a given PMU scan), so the hot
  /// add_event paths pay the string parsing once per distinct name.
  Expected<Encoding> encode(std::string_view name) const;

  /// Distinct names resolved since the last initialize() (tests).
  std::size_t encode_cache_size() const { return encode_cache_.size(); }

  /// All full event names one PMU offers (for papi_native_avail-style
  /// listings).
  std::vector<std::string> event_names(const ActivePmu& pmu) const;

 private:
  Status bind_pmu(const Host& host, const std::string& sysfs_name);
  Expected<Encoding> encode_uncached(std::string_view name) const;
  Expected<Encoding> encode_on(const ActivePmu& pmu,
                               std::string_view event_and_umask) const;

  std::vector<ActivePmu> active_;
  Config config_{};
  bool initialized_ = false;
  /// Memoized successful name -> encoding resolutions; cleared whenever
  /// the PMU scan reruns (encodings embed dynamic perf type ids).
  mutable std::map<std::string, Encoding, std::less<>> encode_cache_;
};

}  // namespace hetpapi::pfm
