// Per-PMU event tables — the role libpfm4 plays for PAPI.
//
// Each table lists the native events one PMU flavour exposes, with
// their unit masks and the CountKind the simulated hardware maps them
// to. The tables reproduce the availability asymmetries the paper calls
// out: topdown events exist only in the GoldenCove (P-core) table, the
// Gracemont (E-core) table carries its own INST_RETIRED encoding (the
// one that was initially buggy in libpfm4), and the two ARM tables
// mirror the Cortex-A72/A53 architectural events.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "simkernel/perf_abi.hpp"

namespace hetpapi::pfm {

struct UmaskDesc {
  std::string name;
  simkernel::CountKind kind;
  std::string description;
};

struct EventDesc {
  std::string name;
  std::string description;
  /// Kind used when no umask is given (events with mandatory umasks set
  /// `requires_umask`).
  simkernel::CountKind default_kind = simkernel::CountKind::kInstructions;
  bool requires_umask = false;
  std::vector<UmaskDesc> umasks;

  const UmaskDesc* find_umask(std::string_view umask) const;
};

/// How a table binds to a kernel PMU at activation time.
enum class MatchKind {
  kSysfsName,  // match /sys/devices/<name> directly (x86)
  kArmMidr,    // match the MIDR part number of the PMU's cpus (ARM)
  kAlways,     // software table, no kernel device — always binds
};

struct PmuTable {
  std::string pfm_name;  // e.g. "adl_glc"
  std::string description;
  MatchKind match = MatchKind::kSysfsName;
  /// For kSysfsName: acceptable sysfs device names.
  std::vector<std::string> sysfs_names;
  /// For kSysfsName on Intel core PMUs: acceptable cpuinfo model
  /// numbers (empty = any). This is how homogeneous parts sharing the
  /// traditional "cpu" PMU name are told apart — exactly the
  /// family/model keying that *breaks* on hybrid parts (§IV-B), which
  /// is why the hybrid tables key on the cpu_core/cpu_atom names
  /// instead.
  std::vector<int> intel_models;
  /// For kArmMidr: (implementer, part) pairs.
  std::vector<std::pair<int, int>> arm_parts;
  /// Core PMUs are eligible to be *default* PMUs (searched when an event
  /// name has no pmu:: prefix) — §IV-D.
  bool is_core = false;
  /// Which measurement component serves this PMU's events (the
  /// framework/components split; see papi/component.hpp). Core,
  /// software and cache PMUs belong to "perf_event"; others name their
  /// own component.
  std::string component = "perf_event";
  std::vector<EventDesc> events;

  const EventDesc* find_event(std::string_view name) const;
};

/// All tables known to the library (the "pfmlib_pmus" array).
const std::vector<PmuTable>& all_tables();

/// Find a table by pfm name ("adl_glc"); nullptr if unknown.
const PmuTable* table_by_name(std::string_view pfm_name);

}  // namespace hetpapi::pfm
