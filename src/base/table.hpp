// ASCII table renderer for the bench binaries that regenerate the
// paper's tables. Column widths auto-size; numeric cells right-align.
#pragma once

#include <string>
#include <vector>

namespace hetpapi {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Insert a horizontal rule before the next row.
  void add_rule();

  std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace hetpapi
