#include "base/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace hetpapi {

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!text.empty() && is_space(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && is_space(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  return std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
    return std::tolower(static_cast<unsigned char>(x)) ==
           std::tolower(static_cast<unsigned char>(y));
  });
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::optional<std::int64_t> parse_int(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  int base = 10;
  bool negative = false;
  if (text.front() == '-') {
    negative = true;
    text.remove_prefix(1);
  }
  if (starts_with(text, "0x") || starts_with(text, "0X")) {
    base = 16;
    text.remove_prefix(2);
  }
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value, base);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return negative ? -value : value;
}

std::optional<double> parse_double(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::optional<std::vector<int>> parse_cpulist(std::string_view text) {
  std::vector<int> cpus;
  text = trim(text);
  if (text.empty()) return cpus;  // empty list is valid (no cpus)
  for (std::string_view field : split(text, ',')) {
    field = trim(field);
    const std::size_t dash = field.find('-');
    if (dash == std::string_view::npos) {
      const auto value = parse_int(field);
      if (!value || *value < 0) return std::nullopt;
      cpus.push_back(static_cast<int>(*value));
      continue;
    }
    const auto lo = parse_int(field.substr(0, dash));
    const auto hi = parse_int(field.substr(dash + 1));
    if (!lo || !hi || *lo < 0 || *hi < *lo) return std::nullopt;
    for (std::int64_t cpu = *lo; cpu <= *hi; ++cpu) {
      cpus.push_back(static_cast<int>(cpu));
    }
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

std::string format_cpulist(const std::vector<int>& cpus) {
  std::vector<int> sorted = cpus;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::string out;
  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i;
    while (j + 1 < sorted.size() && sorted[j + 1] == sorted[j] + 1) ++j;
    if (!out.empty()) out += ',';
    if (j == i) {
      out += std::to_string(sorted[i]);
    } else {
      out += std::to_string(sorted[i]);
      out += '-';
      out += std::to_string(sorted[j]);
    }
    i = j + 1;
  }
  return out;
}

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace hetpapi
