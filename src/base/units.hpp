// Strong unit types for the physical quantities the models exchange.
//
// Frequencies, powers, energies, temperatures and simulated time flow
// between the DVFS governor, the RAPL model, the thermal model and the
// telemetry pollers; strong types keep W from being added to J.
#pragma once

#include <chrono>
#include <compare>
#include <cstdint>

namespace hetpapi {

/// Simulated time. Nanosecond resolution, 64-bit: covers ~292 years.
using SimDuration = std::chrono::nanoseconds;

struct SimTime {
  SimDuration since_epoch{0};

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimDuration d) const { return SimTime{since_epoch + d}; }
  constexpr SimDuration operator-(SimTime other) const {
    return since_epoch - other.since_epoch;
  }
  constexpr SimTime& operator+=(SimDuration d) {
    since_epoch += d;
    return *this;
  }

  constexpr double seconds() const {
    return std::chrono::duration<double>(since_epoch).count();
  }
  static constexpr SimTime from_seconds(double s) {
    return SimTime{std::chrono::duration_cast<SimDuration>(
        std::chrono::duration<double>(s))};
  }
};

/// CRTP base for double-valued strong unit types.
template <typename Derived>
struct UnitBase {
  double value = 0.0;

  constexpr auto operator<=>(const UnitBase&) const = default;

  friend constexpr Derived operator+(Derived a, Derived b) { return Derived{a.value + b.value}; }
  friend constexpr Derived operator-(Derived a, Derived b) { return Derived{a.value - b.value}; }
  friend constexpr Derived operator*(Derived a, double k) { return Derived{a.value * k}; }
  friend constexpr Derived operator*(double k, Derived a) { return Derived{a.value * k}; }
  friend constexpr Derived operator/(Derived a, double k) { return Derived{a.value / k}; }
  friend constexpr double operator/(Derived a, Derived b) { return a.value / b.value; }
  constexpr Derived& operator+=(Derived other) {
    value += other.value;
    return static_cast<Derived&>(*this);
  }
  constexpr Derived& operator-=(Derived other) {
    value -= other.value;
    return static_cast<Derived&>(*this);
  }
};

/// Clock frequency in MHz (the native unit of cpufreq sysfs files is kHz;
/// conversion helpers below).
struct MegaHertz : UnitBase<MegaHertz> {
  constexpr double hertz() const { return value * 1e6; }
  constexpr double gigahertz() const { return value / 1e3; }
  constexpr std::int64_t kilohertz() const {
    return static_cast<std::int64_t>(value * 1e3);
  }
  static constexpr MegaHertz from_ghz(double ghz) { return MegaHertz{ghz * 1e3}; }
  static constexpr MegaHertz from_khz(std::int64_t khz) {
    return MegaHertz{static_cast<double>(khz) / 1e3};
  }
};

struct Watts : UnitBase<Watts> {};

struct Joules : UnitBase<Joules> {
  constexpr Watts over(SimDuration dt) const {
    return Watts{value / std::chrono::duration<double>(dt).count()};
  }
};

constexpr Joules operator*(Watts p, SimDuration dt) {
  return Joules{p.value * std::chrono::duration<double>(dt).count()};
}

struct Celsius : UnitBase<Celsius> {
  /// Linux thermal zones report millidegrees.
  constexpr std::int64_t millidegrees() const {
    return static_cast<std::int64_t>(value * 1000.0);
  }
};

/// Giga floating-point operations per second (HPL's reporting unit).
struct GigaFlops : UnitBase<GigaFlops> {};

}  // namespace hetpapi
