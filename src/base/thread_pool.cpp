#include "base/thread_pool.hpp"

#include <atomic>
#include <limits>
#include <utility>

namespace hetpapi {

ThreadPool::ThreadPool(std::size_t threads) : threads_(threads) {
  if (threads_ <= 1) return;  // inline mode: no workers
  workers_.reserve(threads_);
  for (std::size_t i = 0; i < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  if (inline_mode()) {
    task();
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::parallel_for_each(
    std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (inline_mode()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Shared batch state: workers (and this thread) claim indexes from a
  // counter; the lowest-index exception wins and is rethrown at the end.
  struct Batch {
    std::atomic<std::size_t> next{0};
    std::mutex m;
    std::condition_variable done;
    std::size_t helpers_active = 0;
    std::size_t error_index = std::numeric_limits<std::size_t>::max();
    std::exception_ptr error;
  };
  auto batch = std::make_shared<Batch>();

  const auto drain = [count, &fn, batch] {
    for (std::size_t i = batch->next.fetch_add(1); i < count;
         i = batch->next.fetch_add(1)) {
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(batch->m);
        if (i < batch->error_index) {
          batch->error_index = i;
          batch->error = std::current_exception();
        }
      }
    }
  };

  const std::size_t helpers = std::min(threads_, count) - 1;
  {
    const std::lock_guard<std::mutex> lock(batch->m);
    batch->helpers_active = helpers;
  }
  for (std::size_t h = 0; h < helpers; ++h) {
    // `fn` outlives the batch: this function blocks until every helper
    // finished, so capturing it by reference through `drain` is safe.
    submit([batch, drain] {
      drain();
      {
        const std::lock_guard<std::mutex> lock(batch->m);
        --batch->helpers_active;
      }
      batch->done.notify_one();
    });
  }
  drain();  // the calling thread participates
  std::unique_lock<std::mutex> lock(batch->m);
  batch->done.wait(lock, [&] { return batch->helpers_active == 0; });
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace hetpapi
