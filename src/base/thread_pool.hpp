// Fixed-size worker pool with a single mutex-protected FIFO queue.
//
// Deliberately work-stealing-free: the tasks this repo fans out are
// whole simulation runs (seconds of work each), so a simple shared
// queue is contention-free in practice and keeps the scheduling order
// easy to reason about. A pool constructed with `threads <= 1` spawns
// no workers at all and executes everything inline on the calling
// thread — the true serial path the determinism tests compare against.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hetpapi {

class ThreadPool {
 public:
  /// `threads` is the total worker count. 0 and 1 both mean "no worker
  /// threads": tasks run inline on the submitting thread.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Effective parallelism (>= 1 even in inline mode).
  std::size_t thread_count() const { return threads_ == 0 ? 1 : threads_; }

  /// True when tasks execute inline on the calling thread.
  bool inline_mode() const { return workers_.empty(); }

  /// Enqueue one fire-and-forget task (runs inline in inline mode).
  /// Tasks must not throw; use parallel_for_each for work that can fail.
  void submit(std::function<void()> task);

  /// Invoke fn(0), fn(1), ..., fn(count - 1), blocking until every call
  /// has completed. Indexes are claimed from a shared counter, so the
  /// execution order across workers is unspecified — callers must write
  /// results into per-index slots. If any calls throw, the exception of
  /// the lowest failing index is rethrown (after all indexes ran). In
  /// inline mode the calls run in index order on the calling thread and
  /// the first exception propagates immediately — identical observable
  /// behaviour for order-independent bodies.
  void parallel_for_each(std::size_t count,
                         const std::function<void(std::size_t)>& fn);

  /// std::thread::hardware_concurrency with a floor of 1.
  static std::size_t default_thread_count();

 private:
  void worker_loop();

  std::size_t threads_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace hetpapi
