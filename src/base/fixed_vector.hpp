// Fixed-capacity inline vector.
//
// The paper notes that the patched PAPI perf_event component "currently
// uses statically allocated arrays to hold the group/PMU-type info"; we
// follow that choice with a bounds-checked fixed-capacity container so
// hot paths (EventSet start/stop/read) never allocate.
#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <new>
#include <type_traits>
#include <utility>

#include "base/status.hpp"

namespace hetpapi {

template <typename T, std::size_t Capacity>
class FixedVector {
  static_assert(Capacity > 0, "FixedVector requires nonzero capacity");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  FixedVector() = default;

  FixedVector(std::initializer_list<T> init) {
    assert(init.size() <= Capacity);
    for (const T& v : init) push_back(v);
  }

  FixedVector(const FixedVector& other) { copy_from(other); }
  FixedVector& operator=(const FixedVector& other) {
    if (this != &other) {
      clear();
      copy_from(other);
    }
    return *this;
  }
  FixedVector(FixedVector&& other) noexcept { move_from(std::move(other)); }
  FixedVector& operator=(FixedVector&& other) noexcept {
    if (this != &other) {
      clear();
      move_from(std::move(other));
    }
    return *this;
  }
  ~FixedVector() { clear(); }

  bool empty() const noexcept { return size_ == 0; }
  bool full() const noexcept { return size_ == Capacity; }
  std::size_t size() const noexcept { return size_; }
  static constexpr std::size_t capacity() noexcept { return Capacity; }

  T* data() noexcept { return std::launder(reinterpret_cast<T*>(storage_.data())); }
  const T* data() const noexcept {
    return std::launder(reinterpret_cast<const T*>(storage_.data()));
  }

  iterator begin() noexcept { return data(); }
  iterator end() noexcept { return data() + size_; }
  const_iterator begin() const noexcept { return data(); }
  const_iterator end() const noexcept { return data() + size_; }

  T& operator[](std::size_t i) {
    assert(i < size_);
    return data()[i];
  }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data()[i];
  }

  T& front() { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& front() const { return (*this)[0]; }
  const T& back() const { return (*this)[size_ - 1]; }

  /// Append a copy; returns kOutOfRange when the vector is full instead of
  /// asserting, so callers can surface PAPI_ENOMEM-style errors.
  Status try_push_back(const T& value) {
    if (full()) return make_error(StatusCode::kOutOfRange, "FixedVector full");
    new (storage_.data() + size_ * sizeof(T)) T(value);
    ++size_;
    return Status::ok();
  }

  void push_back(const T& value) {
    [[maybe_unused]] Status s = try_push_back(value);
    assert(s.is_ok());
  }

  void push_back(T&& value) {
    assert(!full());
    new (storage_.data() + size_ * sizeof(T)) T(std::move(value));
    ++size_;
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    assert(!full());
    T* slot = new (storage_.data() + size_ * sizeof(T)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    assert(!empty());
    data()[size_ - 1].~T();
    --size_;
  }

  /// Remove the element at `i`, preserving order of the remainder.
  void erase_at(std::size_t i) {
    assert(i < size_);
    for (std::size_t j = i; j + 1 < size_; ++j) {
      data()[j] = std::move(data()[j + 1]);
    }
    pop_back();
  }

  void clear() noexcept {
    for (std::size_t i = 0; i < size_; ++i) data()[i].~T();
    size_ = 0;
  }

 private:
  void copy_from(const FixedVector& other) {
    for (const T& v : other) push_back(v);
  }
  void move_from(FixedVector&& other) noexcept {
    for (T& v : other) push_back(std::move(v));
    other.clear();
  }

  alignas(T) std::array<std::byte, Capacity * sizeof(T)> storage_;
  std::size_t size_ = 0;
};

}  // namespace hetpapi
