// Status codes and Expected<T> result type used across the library.
//
// The code values intentionally mirror the PAPI error-code vocabulary
// (PAPI_EINVAL, PAPI_ECNFLCT, ...) because the public API layer reports
// the same failure classes the paper discusses (e.g. adding events from
// two PMUs to a legacy EventSet fails with kConflict).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace hetpapi {

enum class StatusCode : int32_t {
  kOk = 0,
  kInvalidArgument,   // PAPI_EINVAL
  kNoMemory,          // PAPI_ENOMEM
  kSystem,            // PAPI_ESYS: underlying (simulated) syscall failed
  kComponent,         // PAPI_ECMP: component-level failure
  kNotSupported,      // PAPI_ENOSUPP
  kNotFound,          // PAPI_ENOEVNT: no such event / file / object
  kConflict,          // PAPI_ECNFLCT: resource conflict (PMU mismatch, ...)
  kNotRunning,        // PAPI_ENOTRUN
  kAlreadyRunning,    // PAPI_EISRUN
  kNoEventSet,        // PAPI_ENOEVST
  kNotPreset,         // PAPI_ENOTPRESET
  kNoHardwareCounter, // PAPI_ENOCNTR
  kBug,               // PAPI_EBUG: internal invariant violated
  kPermission,        // EACCES/EPERM from the kernel layer
  kBusy,              // EBUSY: counters taken
  kOutOfRange,        // index outside container
  kInterrupted,       // EINTR/EAGAIN: transient, retry-able syscall failure
  kOverloaded,        // admission control: daemon is shedding load
};

/// Human-readable name for a status code (stable, test-visible).
constexpr std::string_view to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNoMemory: return "NO_MEMORY";
    case StatusCode::kSystem: return "SYSTEM";
    case StatusCode::kComponent: return "COMPONENT";
    case StatusCode::kNotSupported: return "NOT_SUPPORTED";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kConflict: return "CONFLICT";
    case StatusCode::kNotRunning: return "NOT_RUNNING";
    case StatusCode::kAlreadyRunning: return "ALREADY_RUNNING";
    case StatusCode::kNoEventSet: return "NO_EVENTSET";
    case StatusCode::kNotPreset: return "NOT_PRESET";
    case StatusCode::kNoHardwareCounter: return "NO_HW_COUNTER";
    case StatusCode::kBug: return "BUG";
    case StatusCode::kPermission: return "PERMISSION";
    case StatusCode::kBusy: return "BUSY";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kInterrupted: return "INTERRUPTED";
    case StatusCode::kOverloaded: return "OVERLOADED";
  }
  return "UNKNOWN";
}

/// A status: code plus an optional context message.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}
  explicit Status(StatusCode code) : code_(code) {}

  static Status ok() { return Status{}; }

  bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  explicit operator bool() const noexcept { return is_ok(); }

  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  std::string to_string() const {
    std::string out{hetpapi::to_string(code_)};
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status make_error(StatusCode code, std::string message = {}) {
  return Status{code, std::move(message)};
}

/// Minimal expected-or-status type. We target C++20 so std::expected is
/// unavailable; this covers the subset the library needs.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : data_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Expected(Status status) : data_(std::move(status)) {}   // NOLINT(google-explicit-constructor)

  bool has_value() const noexcept { return std::holds_alternative<T>(data_); }
  explicit operator bool() const noexcept { return has_value(); }

  T& value() & { return std::get<T>(data_); }
  const T& value() const& { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Status when in the error state; StatusCode::kOk otherwise.
  Status status() const {
    if (has_value()) return Status::ok();
    return std::get<Status>(data_);
  }

  T value_or(T fallback) const& {
    return has_value() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> data_;
};

/// Propagate errors: evaluates `expr` (a Status) and returns it from the
/// calling function on failure. Used sparingly; most code handles errors
/// explicitly.
#define HETPAPI_RETURN_IF_ERROR(expr)                  \
  do {                                                 \
    ::hetpapi::Status _hetpapi_status = (expr);        \
    if (!_hetpapi_status.is_ok()) return _hetpapi_status; \
  } while (false)

}  // namespace hetpapi
