// Deterministic PRNG (xoshiro256**) used for every stochastic choice in
// the simulator, so identical seeds reproduce identical runs bit-for-bit.
#pragma once

#include <cstdint>

namespace hetpapi {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless method would be overkill; modulo bias is
    // negligible for simulation noise with n << 2^64.
    return n == 0 ? 0 : next() % n;
  }

  /// Zero-mean gaussian via Box-Muller (one value per call; simple and
  /// deterministic, throughput is irrelevant here).
  double gaussian(double stddev);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

inline double Rng::gaussian(double stddev) {
  // Rejection-free polar-less form: u1 in (0,1], u2 in [0,1).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  // std::sqrt/log/cos are constexpr-unfriendly pre-C++26; fine at runtime.
  return stddev * __builtin_sqrt(-2.0 * __builtin_log(u1)) *
         __builtin_cos(kTwoPi * u2);
}

}  // namespace hetpapi
