#include "base/table.hpp"

#include <algorithm>
#include <cctype>

namespace hetpapi {

namespace {
bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  std::size_t digits = 0;
  for (char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) ++digits;
  }
  return digits * 2 >= cell.size();
}
}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(Row{std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TextTable::add_rule() { pending_rule_ = true; }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto rule = [&] {
    std::string line = "+";
    for (std::size_t w : widths) {
      line.append(w + 2, '-');
      line += '+';
    }
    line += '\n';
    return line;
  }();

  const auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::string& cell = cells[c];
      const std::size_t pad = widths[c] - cell.size();
      line += ' ';
      if (looks_numeric(cell)) {
        line.append(pad, ' ');
        line += cell;
      } else {
        line += cell;
        line.append(pad, ' ');
      }
      line += " |";
    }
    line += '\n';
    return line;
  };

  std::string out = rule;
  out += render_row(header_);
  out += rule;
  for (const Row& row : rows_) {
    if (row.rule_before) out += rule;
    out += render_row(row.cells);
  }
  out += rule;
  return out;
}

}  // namespace hetpapi
