// Checked CLI argument parsing for the tools and examples.
//
// `*parse_int(value)` on user input is a crash waiting for a typo:
// parse_int returns nullopt on garbage and dereferencing that is UB.
// Every tool flag goes through these helpers instead — malformed input
// prints one uniform usage error to stderr and exits with status 2 (the
// conventional usage-error code), never a crash.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "base/strings.hpp"

namespace hetpapi::cli {

[[noreturn]] inline void usage_error(std::string_view flag,
                                     std::string_view value,
                                     std::string_view expected) {
  std::fprintf(stderr, "error: invalid value \"%.*s\" for %.*s (expected %.*s)\n",
               static_cast<int>(value.size()), value.data(),
               static_cast<int>(flag.size()), flag.data(),
               static_cast<int>(expected.size()), expected.data());
  std::exit(2);
}

/// Parse `value` as an integer or die with a usage error naming `flag`.
inline std::int64_t require_int(std::string_view flag, std::string_view value) {
  const auto parsed = parse_int(value);
  if (!parsed) usage_error(flag, value, "an integer");
  return *parsed;
}

/// require_int constrained to >= 1 (sizes, counts, periods).
inline std::int64_t require_positive_int(std::string_view flag,
                                         std::string_view value) {
  const auto parsed = parse_int(value);
  if (!parsed || *parsed < 1) usage_error(flag, value, "a positive integer");
  return *parsed;
}

inline double require_double(std::string_view flag, std::string_view value) {
  const auto parsed = parse_double(value);
  if (!parsed) usage_error(flag, value, "a number");
  return *parsed;
}

}  // namespace hetpapi::cli
