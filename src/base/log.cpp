#include "base/log.hpp"

#include <cstdio>

namespace hetpapi {

namespace {
LogLevel g_level = LogLevel::kWarn;

constexpr std::string_view level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

namespace detail {
void log_line(LogLevel level, std::string_view message) {
  const std::string_view tag = level_tag(level);
  std::fprintf(stderr, "[hetpapi %.*s] %.*s\n", static_cast<int>(tag.size()),
               tag.data(), static_cast<int>(message.size()), message.data());
}
}  // namespace detail

}  // namespace hetpapi
