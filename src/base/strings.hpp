// Small string utilities shared by the VFS, the pfm event parser and the
// report formatters.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hetpapi {

/// Split on a single character; empty fields are preserved.
std::vector<std::string_view> split(std::string_view text, char sep);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

bool starts_with(std::string_view text, std::string_view prefix);

/// Parse a decimal (or 0x-prefixed hex) integer; nullopt on any junk.
std::optional<std::int64_t> parse_int(std::string_view text);

std::optional<double> parse_double(std::string_view text);

/// Parse a Linux cpulist string ("0,2,4-7,16-23") into cpu indices.
/// Returns nullopt on malformed input. Used both by the sysfs "cpus"
/// files and by the taskset-style affinity options on the benches.
std::optional<std::vector<int>> parse_cpulist(std::string_view text);

/// Format cpu indices back into canonical cpulist form ("0-3,8").
std::string format_cpulist(const std::vector<int>& cpus);

/// printf-style formatting into std::string.
std::string str_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace hetpapi
