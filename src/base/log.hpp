// Minimal leveled logger. Defaults to warnings-and-up on stderr so tests
// and benches stay quiet; examples raise the level for narration.
#pragma once

#include <sstream>
#include <string_view>

namespace hetpapi {

enum class LogLevel : int { kDebug = 0, kInfo, kWarn, kError, kOff };

/// Process-wide minimum level. Not thread-synchronized by design: the
/// simulator is single-threaded and level changes happen at startup.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, std::string_view message);

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define HETPAPI_LOG(level)                                   \
  if (static_cast<int>(::hetpapi::LogLevel::level) <         \
      static_cast<int>(::hetpapi::log_level())) {            \
  } else                                                     \
    ::hetpapi::detail::LogStream(::hetpapi::LogLevel::level)

#define HETPAPI_DEBUG HETPAPI_LOG(kDebug)
#define HETPAPI_INFO HETPAPI_LOG(kInfo)
#define HETPAPI_WARN HETPAPI_LOG(kWarn)
#define HETPAPI_ERROR HETPAPI_LOG(kError)

}  // namespace hetpapi
