#include "vfs/vfs.hpp"

#include <algorithm>

#include "base/strings.hpp"

namespace hetpapi::vfs {

Expected<std::string> canonicalize(std::string_view path) {
  if (path.empty() || path.front() != '/') {
    return make_error(StatusCode::kInvalidArgument,
                      "path must be absolute: " + std::string(path));
  }
  std::string out = "/";
  for (std::string_view seg : split(path, '/')) {
    if (seg.empty() || seg == ".") continue;
    if (seg == "..") {
      return make_error(StatusCode::kInvalidArgument,
                        "'..' not supported: " + std::string(path));
    }
    if (out.back() != '/') out += '/';
    out += seg;
  }
  return out;
}

void Vfs::index_child(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos || path == "/") return;
  const std::string parent = slash == 0 ? "/" : path.substr(0, slash);
  children_[parent].insert(path.substr(slash + 1));
}

void Vfs::unindex_child(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos || path == "/") return;
  const std::string parent = slash == 0 ? "/" : path.substr(0, slash);
  const auto it = children_.find(parent);
  if (it != children_.end()) it->second.erase(path.substr(slash + 1));
}

void Vfs::ensure_parents(const std::string& path) {
  std::size_t pos = 0;
  while ((pos = path.find('/', pos + 1)) != std::string::npos) {
    std::string dir = path.substr(0, pos);
    if (dirs_.emplace(dir, true).second) index_child(dir);
  }
  dirs_["/"] = true;
}

Status Vfs::write_file(std::string_view path, std::string contents) {
  auto canon = canonicalize(path);
  if (!canon) return canon.status();
  if (dirs_.contains(*canon)) {
    return make_error(StatusCode::kInvalidArgument,
                      "is a directory: " + *canon);
  }
  ensure_parents(*canon);
  if (files_.emplace(*canon, std::string()).second) index_child(*canon);
  files_[*canon] = std::move(contents);
  return Status::ok();
}

Status Vfs::append_file(std::string_view path, std::string_view contents) {
  auto canon = canonicalize(path);
  if (!canon) return canon.status();
  if (dirs_.contains(*canon)) {
    return make_error(StatusCode::kInvalidArgument,
                      "is a directory: " + *canon);
  }
  ensure_parents(*canon);
  if (files_.emplace(*canon, std::string()).second) index_child(*canon);
  files_[*canon] += contents;
  return Status::ok();
}

Expected<std::string> Vfs::read_file(std::string_view path) const {
  auto canon = canonicalize(path);
  if (!canon) return canon.status();
  const auto it = files_.find(*canon);
  if (it == files_.end()) {
    return make_error(StatusCode::kNotFound, "no such file: " + *canon);
  }
  return it->second;
}

Expected<std::string> Vfs::read_value(std::string_view path) const {
  auto contents = read_file(path);
  if (!contents) return contents.status();
  return std::string(trim(*contents));
}

Expected<std::int64_t> Vfs::read_int(std::string_view path) const {
  auto value = read_value(path);
  if (!value) return value.status();
  const auto parsed = parse_int(*value);
  if (!parsed) {
    return make_error(StatusCode::kInvalidArgument,
                      "not an integer: '" + *value + "' in " + std::string(path));
  }
  return *parsed;
}

bool Vfs::exists(std::string_view path) const {
  auto canon = canonicalize(path);
  if (!canon) return false;
  return files_.contains(*canon) || dirs_.contains(*canon);
}

bool Vfs::is_dir(std::string_view path) const {
  auto canon = canonicalize(path);
  return canon && dirs_.contains(*canon);
}

Expected<std::vector<std::string>> Vfs::list_dir(std::string_view path) const {
  auto canon = canonicalize(path);
  if (!canon) return canon.status();
  if (!dirs_.contains(*canon)) {
    return make_error(StatusCode::kNotFound, "no such directory: " + *canon);
  }
  const auto it = children_.find(*canon);
  if (it == children_.end()) return std::vector<std::string>{};
  return std::vector<std::string>(it->second.begin(), it->second.end());
}

Status Vfs::remove(std::string_view path) {
  auto canon = canonicalize(path);
  if (!canon) return canon.status();
  if (files_.erase(*canon) > 0) {
    unindex_child(*canon);
    return Status::ok();
  }
  if (dirs_.contains(*canon)) {
    // Remove the directory and everything under it (rm -r semantics keep
    // test fixtures terse).
    const std::string prefix = *canon + "/";
    std::erase_if(files_, [&](const auto& kv) {
      return starts_with(kv.first, prefix);
    });
    std::erase_if(dirs_, [&](const auto& kv) {
      return kv.first == *canon || starts_with(kv.first, prefix);
    });
    std::erase_if(children_, [&](const auto& kv) {
      return kv.first == *canon || starts_with(kv.first, prefix);
    });
    unindex_child(*canon);
    return Status::ok();
  }
  return make_error(StatusCode::kNotFound, "no such path: " + *canon);
}

}  // namespace hetpapi::vfs
