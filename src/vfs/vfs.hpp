// In-memory virtual filesystem simulating the /sys and /proc trees a
// hybrid Linux system exposes.
//
// The paper's §IV-B catalogs the detection sources PAPI must read:
//   /sys/devices/cpu_atom/type, /sys/devices/cpu_core/type
//   /sys/devices/<pmu>/cpus
//   /sys/devices/system/cpu/cpuX/cpu_capacity
//   /sys/devices/system/cpu/cpuX/cpufreq/cpuinfo_max_freq
//   /sys/devices/system/cpu/cpuX/cache/...
//   /proc/cpuinfo
// The simulated kernel populates exactly these files (same formats, same
// quirks), and the PAPI detection code consumes them through this VFS so
// the detection logic is byte-for-byte the logic a real port would use.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.hpp"

namespace hetpapi::vfs {

/// Canonicalize a path: collapse duplicate '/', resolve '.' segments,
/// drop trailing '/'. ".." is rejected (sysfs consumers never need it).
Expected<std::string> canonicalize(std::string_view path);

class Vfs {
 public:
  /// Create or overwrite a regular file; parent directories are created
  /// implicitly (mkdir -p semantics, matching how kernels populate sysfs).
  Status write_file(std::string_view path, std::string contents);

  /// Append to an existing file, creating it if absent.
  Status append_file(std::string_view path, std::string_view contents);

  Expected<std::string> read_file(std::string_view path) const;

  /// read_file + trim — sysfs values carry a trailing newline.
  Expected<std::string> read_value(std::string_view path) const;

  /// Parse helpers for the two sysfs value shapes detection code needs.
  Expected<std::int64_t> read_int(std::string_view path) const;

  bool exists(std::string_view path) const;
  bool is_dir(std::string_view path) const;

  /// Immediate children of a directory (names only, sorted).
  Expected<std::vector<std::string>> list_dir(std::string_view path) const;

  Status remove(std::string_view path);

  /// Number of regular files (for tests).
  std::size_t file_count() const { return files_.size(); }

 private:
  // Path -> contents for regular files; directory set derived from both
  // explicit mkdirs and file parents.
  std::map<std::string, std::string> files_;
  std::map<std::string, bool> dirs_;
  // Directory -> immediate child names (files and subdirectories),
  // maintained on every write/remove so list_dir is O(children) instead
  // of a full-tree scan. std::set keeps the names sorted and unique.
  std::map<std::string, std::set<std::string>> children_;

  void ensure_parents(const std::string& path);
  /// Record `path` (a canonical file or directory) in its parent's
  /// child index.
  void index_child(const std::string& path);
  /// Drop `path` from its parent's child index.
  void unindex_child(const std::string& path);
};

}  // namespace hetpapi::vfs
