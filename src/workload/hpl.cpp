#include "workload/hpl.hpp"

#include <algorithm>
#include <cassert>
#include <optional>

#include "workload/programs.hpp"

namespace hetpapi::workload {

HplConfig HplConfig::openblas(int n, int nb) {
  HplConfig cfg;
  cfg.n = n;
  cfg.nb = nb;
  cfg.variant = HplVariant::kReferenceStatic;
  // One block size for every core: spills the P-core L2 (high LLC miss
  // rate) while fitting comfortably in the E-cluster's shared L2 (the
  // paper measures 86% vs 0.05%, Table III).
  cfg.big_profile = HplCacheProfile{3.0, 0.86, 0.95};
  cfg.little_profile = HplCacheProfile{1.6, 0.0005, 0.88};
  return cfg;
}

HplConfig HplConfig::intel(int n, int nb) {
  HplConfig cfg;
  cfg.n = n;
  cfg.nb = nb;
  cfg.variant = HplVariant::kVendorDynamic;
  // Per-class blocking: less LLC traffic, lower miss rates, better
  // kernel efficiency on both classes (64% / 0.03% in Table III).
  cfg.big_profile = HplCacheProfile{2.2, 0.64, 0.99};
  cfg.little_profile = HplCacheProfile{1.2, 0.0003, 0.90};
  return cfg;
}

namespace {
constexpr double kFactorFlopsPerInstr = 2.5;  // partially vectorized dgetf2
}

HplSimulation::HplSimulation(HplConfig config, int num_workers)
    : config_(config),
      num_workers_(num_workers),
      num_panels_(config.n / config.nb) {
  assert(num_workers_ > 0);
  big_dgemm_ =
      phases::dgemm(config_.big_profile.simd_efficiency,
                    config_.big_profile.llc_refs_per_kinstr,
                    config_.big_profile.llc_miss_ratio);
  little_dgemm_ =
      phases::dgemm(config_.little_profile.simd_efficiency,
                    config_.little_profile.llc_refs_per_kinstr,
                    config_.little_profile.llc_miss_ratio);
  factor_phase_ = phases::scalar_serial();
  factor_phase_.ipc_fraction = 0.70;
  factor_phase_.flops_per_instr = kFactorFlopsPerInstr;
  open_panel(0);
}

void HplSimulation::open_panel(int k) {
  panel_ = PanelState{};
  if (k >= num_panels_) return;
  const int m = rows_at(k);
  // dgetf2 on the m x NB panel: ~ m * NB^2 flops.
  panel_.factor_flops = static_cast<std::uint64_t>(m) *
                        static_cast<std::uint64_t>(config_.nb) *
                        static_cast<std::uint64_t>(config_.nb);
  // In the dynamic variant the factorization is parallel/overlapped
  // enough that we fold it into the update work items instead of
  // serializing on the master.
  if (config_.variant == HplVariant::kVendorDynamic) {
    panel_.factor_done = true;
    panel_.factor_claimed = true;
  }
  // Trailing update: (m - NB) rows x (n - (k+1) NB) columns, split into
  // NB-column items.
  const std::int64_t trailing_rows = m - config_.nb;
  const std::int64_t trailing_cols =
      config_.n - static_cast<std::int64_t>(k + 1) * config_.nb;
  const std::int64_t items =
      std::max<std::int64_t>(0, trailing_cols / config_.nb);
  std::uint64_t item_flops =
      items > 0 ? static_cast<std::uint64_t>(
                      2 * trailing_rows * static_cast<std::int64_t>(config_.nb) *
                      static_cast<std::int64_t>(config_.nb))
                : 0;
  if (config_.variant == HplVariant::kVendorDynamic && items > 0) {
    // Spread the (parallelized) factor flops across this panel's items.
    item_flops += panel_.factor_flops / static_cast<std::uint64_t>(items);
  }
  panel_.items.assign(static_cast<std::size_t>(items),
                      Item{item_flops, false});
  if (config_.variant == HplVariant::kReferenceStatic) {
    panel_.static_assignment.assign(static_cast<std::size_t>(num_workers_),
                                    {});
    panel_.static_cursor.assign(static_cast<std::size_t>(num_workers_), 0);
    for (std::size_t i = 0; i < panel_.items.size(); ++i) {
      panel_.static_assignment[i % static_cast<std::size_t>(num_workers_)]
          .push_back(i);
    }
  }
  if (panel_.items.empty() && panel_.factor_done) {
    // Degenerate last panels: nothing to update; advance immediately.
    current_panel_ = k + 1;
    if (current_panel_ < num_panels_) open_panel(current_panel_);
  }
}

bool HplSimulation::complete() const { return current_panel_ >= num_panels_; }

std::uint64_t HplSimulation::total_flops() const {
  const double n = static_cast<double>(config_.n);
  return static_cast<std::uint64_t>(2.0 / 3.0 * n * n * n + 2.0 * n * n);
}

GigaFlops HplSimulation::gflops(SimDuration elapsed) const {
  const double seconds = std::chrono::duration<double>(elapsed).count();
  if (seconds <= 0.0) return GigaFlops{0.0};
  return GigaFlops{static_cast<double>(total_flops()) / seconds / 1e9};
}

std::optional<HplSimulation::Item> HplSimulation::claim(int worker) {
  if (complete()) return std::nullopt;
  PanelState& p = panel_;
  if (!p.factor_done) {
    // Static variant: master thread factors, everyone else waits.
    if (worker == 0 && !p.factor_claimed) {
      p.factor_claimed = true;
      if (phase_listener_) phase_listener_(worker, true, true);
      return Item{p.factor_flops, true};
    }
    return std::nullopt;
  }
  if (config_.variant == HplVariant::kVendorDynamic) {
    if (p.next_item < p.items.size()) {
      if (phase_listener_) phase_listener_(worker, false, true);
      return p.items[p.next_item++];
    }
    return std::nullopt;
  }
  auto& mine = p.static_assignment[static_cast<std::size_t>(worker)];
  auto& cursor = p.static_cursor[static_cast<std::size_t>(worker)];
  if (cursor < mine.size()) {
    if (phase_listener_) phase_listener_(worker, false, true);
    return p.items[mine[cursor++]];
  }
  return std::nullopt;
}

void HplSimulation::complete_item(int worker, const Item& item) {
  PanelState& p = panel_;
  if (phase_listener_) phase_listener_(worker, item.is_factor, false);
  if (item.is_factor) {
    p.factor_done = true;
  } else {
    ++p.items_completed;
  }
  // A trailing panel can have zero update items, so the factor
  // completion itself may be what finishes the panel.
  if (p.items_completed == p.items.size() && p.factor_done) {
    ++current_panel_;
    if (!complete()) open_panel(current_panel_);
  }
}

const PhaseSpec& HplSimulation::phase_for(const cpumodel::CoreTypeSpec& core,
                                          bool factor) const {
  if (factor) return factor_phase_;
  return core.cpu_capacity >= 1024 ? big_dgemm_ : little_dgemm_;
}

namespace {

class HplWorker final : public simkernel::Program {
 public:
  HplWorker(HplSimulation* sim, int index) : sim_(sim), index_(index) {}

  simkernel::ExecSlice run(const simkernel::ExecContext& ctx,
                           SimDuration budget) override;

 private:
  HplSimulation* sim_;
  int index_;
  std::optional<HplSimulation::Item> current_;
  std::uint64_t remaining_flops_ = 0;
};

simkernel::ExecSlice HplWorker::run(const simkernel::ExecContext& ctx,
                                    SimDuration budget) {
  simkernel::ExecSlice total;
  total.activity = 0.0;
  SimDuration left = budget;

  while (left > SimDuration{0}) {
    if (sim_->complete()) {
      total.finished = true;
      break;
    }
    if (!current_) {
      current_ = sim_->claim(index_);
      if (current_) remaining_flops_ = current_->flops;
    }
    if (!current_) {
      // Barrier spin: burn the rest of the budget in the wait loop.
      const PhaseSpec spin = phases::spin_wait();
      simkernel::ExecSlice slice = run_phase_slice(
          ctx, spin, left, std::numeric_limits<std::uint64_t>::max());
      sim_->on_spin(slice.counts.instructions);
      total.counts += slice.counts;
      total.consumed += slice.consumed;
      total.activity = std::max(total.activity, slice.activity);
      total.waiting = true;
      break;
    }

    const PhaseSpec& phase = sim_->phase_for(*ctx.core_type,
                                             current_->is_factor);
    const std::uint64_t max_instr = static_cast<std::uint64_t>(
        static_cast<double>(remaining_flops_) / phase.flops_per_instr) + 1;
    simkernel::ExecSlice slice = run_phase_slice(ctx, phase, left, max_instr);
    sim_->on_work(slice.counts.instructions);
    total.counts += slice.counts;
    total.consumed += slice.consumed;
    total.activity = std::max(total.activity, slice.activity);
    left -= slice.consumed;

    const std::uint64_t done_flops = slice.counts.flops_dp;
    if (done_flops >= remaining_flops_) {
      sim_->complete_item(index_, *current_);
      current_.reset();
      remaining_flops_ = 0;
    } else {
      remaining_flops_ -= done_flops;
    }
    if (slice.consumed <= SimDuration{0}) break;  // safety
  }

  if (total.consumed <= SimDuration{0} && !total.finished) {
    // Nothing executed (e.g. first call right at completion boundary):
    // report an idle wait so the kernel keeps time flowing.
    total.consumed = budget;
    total.waiting = true;
    total.activity = 0.05;
  }
  return total;
}

}  // namespace

std::shared_ptr<simkernel::Program> HplSimulation::make_worker(
    int worker_index) {
  return std::make_shared<HplWorker>(this, worker_index);
}

}  // namespace hetpapi::workload
