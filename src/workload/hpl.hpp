// High-Performance Linpack performance model.
//
// Blocked right-looking LU: for each panel k of width NB, factor the
// panel (m_k x NB), then update the trailing submatrix — 2·NB·(m_k-NB)
// flops per trailing column. Two partitioning strategies reproduce the
// benchmarks the paper compares on Raptor Lake (Table II/III):
//
//  * kReferenceStatic ("OpenBLAS HPL"): trailing-update work is split
//    into equal column-block items pre-assigned round-robin across all
//    worker threads, with a barrier per panel, and the panel
//    factorization runs serially on the master thread. On asymmetric
//    cores the fast threads finish early and spin at the barrier —
//    wasted instructions, wasted power budget, and an all-core run that
//    can lose to P-cores alone.
//
//  * kVendorDynamic ("Intel MKL HPL"): items are claimed dynamically
//    from a shared queue (no stragglers), factorization is parallel,
//    and per-core-class cache blocking is tuned — so every core
//    contributes its actual throughput.
//
// Cache behaviour per (variant, core class) is phenomenological, set so
// the measured LLC miss rates land near Table III; see DESIGN.md.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "base/units.hpp"
#include "simkernel/program.hpp"
#include "workload/exec_model.hpp"

namespace hetpapi::workload {

enum class HplVariant {
  kReferenceStatic,  // hybrid-unaware (OpenBLAS-like)
  kVendorDynamic,    // hybrid-aware (Intel-like)
};

struct HplCacheProfile {
  double llc_refs_per_kinstr = 2.0;
  double llc_miss_ratio = 0.5;
  double simd_efficiency = 0.9;
};

struct HplConfig {
  int n = 57024;
  int nb = 192;
  HplVariant variant = HplVariant::kReferenceStatic;
  /// Cache/efficiency profile per core class (big = capacity >= 1024).
  HplCacheProfile big_profile{8.0, 0.86, 0.81};
  HplCacheProfile little_profile{1.6, 0.0005, 0.84};

  static HplConfig openblas(int n = 57024, int nb = 192);
  static HplConfig intel(int n = 57024, int nb = 192);
};

/// Shared state of one HPL run; create the per-thread worker programs
/// with make_worker() and spawn each on the simulated kernel.
class HplSimulation {
 public:
  HplSimulation(HplConfig config, int num_workers);

  /// Worker 0 is the master (factors panels in the static variant).
  std::shared_ptr<simkernel::Program> make_worker(int worker_index);

  int num_workers() const { return num_workers_; }
  bool complete() const;

  /// The standard HPL flop count: 2/3 n^3 + 2 n^2.
  std::uint64_t total_flops() const;
  GigaFlops gflops(SimDuration elapsed) const;

  /// Diagnostics.
  std::uint64_t spin_instructions() const { return spin_instructions_; }
  std::uint64_t work_instructions() const { return work_instructions_; }

  /// Phase notifications for marker instrumentation: fired when a
  /// worker claims an item (begin = true) and when it completes one
  /// (begin = false), with `factor` distinguishing panel factorization
  /// from trailing update. Runs on the simulation driver thread, so
  /// listeners may call into per-worker marker state without locking.
  using PhaseListener = std::function<void(int worker, bool factor,
                                           bool begin)>;
  void set_phase_listener(PhaseListener listener) {
    phase_listener_ = std::move(listener);
  }

  // --- worker-facing interface (used by the worker programs; not part
  // of the public API) ------------------------------------------------------

  struct Item {
    std::uint64_t flops = 0;
    bool is_factor = false;
  };

  /// Claim the next piece of work for `worker`; nullopt = spin.
  std::optional<Item> claim(int worker);
  void complete_item(int worker, const Item& item);
  void on_spin(std::uint64_t instructions) { spin_instructions_ += instructions; }
  void on_work(std::uint64_t instructions) { work_instructions_ += instructions; }
  const PhaseSpec& phase_for(const cpumodel::CoreTypeSpec& core,
                             bool factor) const;

 private:

  struct PanelState {
    bool factor_done = false;
    bool factor_claimed = false;
    std::uint64_t factor_flops = 0;
    /// Update items for this panel, generated when the factor completes.
    std::vector<Item> items;
    std::size_t next_item = 0;       // dynamic claim cursor
    std::size_t items_completed = 0;
    std::vector<std::vector<std::size_t>> static_assignment;  // per worker
    std::vector<std::size_t> static_cursor;                   // per worker
  };

  void open_panel(int k);
  int rows_at(int k) const { return config_.n - k * config_.nb; }

  HplConfig config_;
  int num_workers_;
  int num_panels_;
  int current_panel_ = 0;
  PanelState panel_;
  std::uint64_t spin_instructions_ = 0;
  std::uint64_t work_instructions_ = 0;
  PhaseListener phase_listener_;

  PhaseSpec big_dgemm_;
  PhaseSpec little_dgemm_;
  PhaseSpec factor_phase_;
};

}  // namespace hetpapi::workload
