#include "workload/programs.hpp"

#include <algorithm>

namespace hetpapi::workload {

simkernel::ExecSlice run_phase_slice(const simkernel::ExecContext& ctx,
                                     const PhaseSpec& phase,
                                     SimDuration budget,
                                     std::uint64_t max_instructions) {
  simkernel::ExecSlice slice;
  const double cpi = cycles_per_instruction(*ctx.core_type, phase,
                                            ctx.frequency,
                                            ctx.memory_contention);
  std::uint64_t instructions =
      instructions_in(budget, ctx.frequency, cpi);
  SimDuration consumed = budget;
  if (instructions >= max_instructions) {
    instructions = max_instructions;
    consumed = std::min(budget,
                        duration_of(instructions, ctx.frequency, cpi));
  }
  if (instructions == 0 && max_instructions > 0) {
    // Budget too small for even one instruction at this CPI; consume the
    // budget to keep time moving.
    instructions = 1;
    consumed = budget;
  }
  slice.consumed = consumed;
  slice.counts =
      make_counts(*ctx.core_type, phase, instructions, cpi, ctx.frequency);
  slice.activity = phase.activity;
  return slice;
}

simkernel::ExecSlice FixedWorkProgram::run(const simkernel::ExecContext& ctx,
                                           SimDuration budget) {
  simkernel::ExecSlice slice = run_phase_slice(ctx, phase_, budget, remaining_);
  remaining_ -= std::min(remaining_, slice.counts.instructions);
  slice.finished = remaining_ == 0;
  return slice;
}

simkernel::ExecSlice WorkQueueProgram::run(const simkernel::ExecContext& ctx,
                                           SimDuration budget) {
  if (queue_.empty()) {
    simkernel::ExecSlice slice;
    slice.consumed = budget;
    slice.waiting = true;
    slice.activity = 0.03;  // blocked in futex wait, core near-idle
    slice.finished = finish_requested_;
    return slice;
  }
  Chunk& chunk = queue_.front();
  simkernel::ExecSlice slice =
      run_phase_slice(ctx, chunk.phase, budget, chunk.remaining);
  chunk.remaining -= std::min(chunk.remaining, slice.counts.instructions);
  if (chunk.remaining == 0) queue_.pop_front();
  return slice;
}

simkernel::ExecSlice SpinProgram::run(const simkernel::ExecContext& ctx,
                                      SimDuration budget) {
  const SimDuration slice_budget =
      bounded_ ? std::min(budget, remaining_) : budget;
  simkernel::ExecSlice slice = run_phase_slice(
      ctx, phases::spin_wait(), slice_budget,
      std::numeric_limits<std::uint64_t>::max());
  if (bounded_) {
    remaining_ -= std::min(remaining_, slice.consumed);
    slice.finished = remaining_ <= SimDuration{0};
  }
  return slice;
}

}  // namespace hetpapi::workload
