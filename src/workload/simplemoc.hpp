// SimpleMOC-kernel-style workload: the attenuation inner kernel of the
// Method-of-Characteristics transport mini-app, reduced to its three
// compute phases per track segment:
//
//   1. xs_lookup   — cross-section table lookups (pointer-heavy,
//                    cache-hostile reads),
//   2. attenuate   — exponential attenuation of the angular fluxes
//                    (FP-dense, vectorizable),
//   3. tally       — scalar-flux accumulation into the source regions
//                    (scatter stores, branchy).
//
// Each phase publishes a distinct synthetic instruction pointer, so a
// sampling profiler attributes its records to a recognizable "symbol" —
// the flat hot-spot table hetpapi_profile prints. The harness shape
// (numbered event-set selection) follows SimpleMOC-kernel's PAPI
// counter_init.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simkernel/program.hpp"
#include "workload/exec_model.hpp"

namespace hetpapi::workload {

/// One compute phase of the MOC segment loop, with the synthetic code
/// address its samples land on. Phases occupy disjoint 4 KiB "function"
/// buckets so an IP maps back to exactly one symbol.
struct SimpleMocPhase {
  const char* symbol;
  std::uint64_t ip;
  /// Instructions this phase retires per track segment.
  std::uint64_t instructions_per_segment;
  PhaseSpec spec;
};

/// The phases in per-segment execution order.
const std::vector<SimpleMocPhase>& simplemoc_phases();

/// The phase whose 4 KiB bucket contains `ip`; nullptr for foreign IPs.
const SimpleMocPhase* simplemoc_phase_for_ip(std::uint64_t ip);

struct SimpleMocConfig {
  /// Track segments to attenuate (the outer loop trip count).
  std::uint64_t segments = 64;
};

/// Exact instructions one SimpleMocProgram retires:
/// segments x sum(phase instructions).
std::uint64_t simplemoc_total_instructions(const SimpleMocConfig& config);

/// Runs the segment loop: for each segment, the three phases in order,
/// each slice stamped with its phase's IP. Exits when all segments are
/// attenuated.
class SimpleMocProgram final : public simkernel::Program {
 public:
  explicit SimpleMocProgram(SimpleMocConfig config = {});

  simkernel::ExecSlice run(const simkernel::ExecContext& ctx,
                           SimDuration budget) override;

 private:
  SimpleMocConfig config_;
  std::uint64_t segment_ = 0;
  std::size_t phase_index_ = 0;
  std::uint64_t remaining_in_phase_ = 0;
};

/// SimpleMOC-kernel's counter_init shape: numbered event sets selecting
/// what the instrumented run measures. Unknown ids fall back to set -1.
///
///   -1  instructions   {PAPI_TOT_INS, PAPI_TOT_CYC}
///    0  flops          {PAPI_DP_OPS, PAPI_TOT_CYC}
///    1  bandwidth      {PAPI_L3_TCM, PAPI_TOT_CYC}
///    2  stalls         {PAPI_RES_STL, PAPI_TOT_CYC}
///    3  branches       {PAPI_BR_MSP, PAPI_BR_INS}
std::vector<std::string> simplemoc_event_set(int id);

}  // namespace hetpapi::workload
