#include "workload/exec_model.hpp"

#include <algorithm>
#include <cmath>

namespace hetpapi::workload {

double cycles_per_instruction(const cpumodel::CoreTypeSpec& core,
                              const PhaseSpec& phase, MegaHertz f,
                              double memory_contention) {
  double eff_ipc = core.perf.base_ipc * phase.ipc_fraction;
  if (phase.flops_per_instr > 0.0) {
    const double flops_limit = phase.simd_efficiency *
                               core.perf.flops_per_cycle_dp /
                               phase.flops_per_instr;
    eff_ipc = std::min(eff_ipc, flops_limit);
  }
  eff_ipc = std::max(eff_ipc, 0.05);
  double cpi = 1.0 / eff_ipc;

  const double overlap = phase.mlp_overlap_override >= 0.0
                             ? phase.mlp_overlap_override
                             : core.perf.mlp_overlap;
  const double miss_per_instr =
      phase.llc_refs_per_kinstr / 1000.0 * phase.llc_miss_ratio;
  cpi += miss_per_instr * (1.0 - overlap) * core.perf.llc_miss_latency_ns *
         memory_contention * f.gigahertz();

  cpi += phase.branches_per_kinstr / 1000.0 * phase.branch_miss_ratio *
         core.perf.branch_miss_penalty_cycles;
  return cpi;
}

std::uint64_t instructions_in(SimDuration duration, MegaHertz f, double cpi) {
  const double cycles =
      f.gigahertz() * static_cast<double>(duration.count());
  return static_cast<std::uint64_t>(cycles / cpi);
}

SimDuration duration_of(std::uint64_t instructions, MegaHertz f, double cpi) {
  const double cycles = static_cast<double>(instructions) * cpi;
  const double ns = cycles / std::max(f.gigahertz(), 1e-6);
  return SimDuration{static_cast<std::int64_t>(std::ceil(ns))};
}

simkernel::ExecCounts make_counts(const cpumodel::CoreTypeSpec& core,
                                  const PhaseSpec& phase,
                                  std::uint64_t instructions, double cpi,
                                  MegaHertz f) {
  simkernel::ExecCounts counts;
  const double instr = static_cast<double>(instructions);
  counts.instructions = instructions;
  counts.cycles = static_cast<std::uint64_t>(instr * cpi);
  // Reference cycles tick at the base frequency regardless of the
  // current P-state.
  counts.ref_cycles = static_cast<std::uint64_t>(
      instr * cpi * core.dvfs.freq_base.value / std::max(f.value, 1.0));
  counts.llc_references =
      static_cast<std::uint64_t>(instr * phase.llc_refs_per_kinstr / 1000.0);
  counts.llc_misses = static_cast<std::uint64_t>(
      instr * phase.llc_refs_per_kinstr / 1000.0 * phase.llc_miss_ratio);
  counts.branches =
      static_cast<std::uint64_t>(instr * phase.branches_per_kinstr / 1000.0);
  counts.branch_misses = static_cast<std::uint64_t>(
      instr * phase.branches_per_kinstr / 1000.0 * phase.branch_miss_ratio);
  // Stall cycles: everything beyond the issue-limited baseline.
  const double base_cpi = 1.0 / std::max(core.perf.base_ipc * phase.ipc_fraction, 0.05);
  counts.stalled_cycles = static_cast<std::uint64_t>(
      instr * std::max(0.0, cpi - base_cpi));
  counts.flops_dp =
      static_cast<std::uint64_t>(instr * phase.flops_per_instr);
  return counts;
}

namespace phases {

PhaseSpec dgemm(double simd_efficiency, double llc_refs_per_kinstr,
                double llc_miss_ratio) {
  PhaseSpec p;
  p.ipc_fraction = 0.92;
  p.flops_per_instr = 5.3;  // ~2/3 FMA(8 flop) + loads/address arithmetic
  p.simd_efficiency = simd_efficiency;
  p.llc_refs_per_kinstr = llc_refs_per_kinstr;
  p.llc_miss_ratio = llc_miss_ratio;
  p.mlp_overlap_override = 0.94;  // software-prefetched streaming
  p.branches_per_kinstr = 12.0;
  p.branch_miss_ratio = 0.002;
  p.activity = 1.0;
  return p;
}

PhaseSpec spin_wait() {
  PhaseSpec p;
  p.ipc_fraction = 1.0;   // tight L1-resident loop retires near peak IPC
  p.flops_per_instr = 0.0;
  p.llc_refs_per_kinstr = 0.02;
  p.llc_miss_ratio = 0.01;
  p.branches_per_kinstr = 330.0;  // one branch per 3 instructions
  p.branch_miss_ratio = 0.0002;
  p.activity = 0.45;  // busy-wait keeps fetch/issue partly active
  return p;
}

PhaseSpec scalar_serial() {
  PhaseSpec p;
  p.ipc_fraction = 0.45;
  p.flops_per_instr = 0.1;
  p.llc_refs_per_kinstr = 4.0;
  p.llc_miss_ratio = 0.15;
  p.branches_per_kinstr = 180.0;
  p.branch_miss_ratio = 0.04;
  p.activity = 0.55;
  return p;
}

PhaseSpec memory_bound() {
  PhaseSpec p;
  p.ipc_fraction = 0.6;
  p.llc_refs_per_kinstr = 40.0;
  p.llc_miss_ratio = 0.7;
  p.mlp_overlap_override = 0.1;  // dependent loads: nothing overlaps
  p.branches_per_kinstr = 60.0;
  p.branch_miss_ratio = 0.02;
  p.activity = 0.5;
  return p;
}

}  // namespace phases

}  // namespace hetpapi::workload
