// Reusable simulated programs.
#pragma once

#include <cstdint>
#include <deque>

#include "simkernel/program.hpp"
#include "workload/exec_model.hpp"

namespace hetpapi::workload {

/// Runs `instructions` of one phase, then exits.
class FixedWorkProgram final : public simkernel::Program {
 public:
  FixedWorkProgram(PhaseSpec phase, std::uint64_t instructions)
      : phase_(phase), remaining_(instructions) {}

  simkernel::ExecSlice run(const simkernel::ExecContext& ctx,
                           SimDuration budget) override;

  std::uint64_t remaining() const { return remaining_; }

 private:
  PhaseSpec phase_;
  std::uint64_t remaining_;
};

/// A thread that accepts work in chunks: the harness enqueues a batch of
/// instructions, runs the kernel until the program drains, and measures
/// around it — the structure of the paper's papi_hybrid_100m test
/// ("runs 1 million instructions 100 times").
///
/// While the queue is empty the thread blocks (waiting slices, zero
/// instructions) until either more work arrives or finish() is called.
class WorkQueueProgram final : public simkernel::Program {
 public:
  void enqueue(PhaseSpec phase, std::uint64_t instructions) {
    queue_.push_back(Chunk{phase, instructions});
  }
  void finish() { finish_requested_ = true; }
  bool idle() const { return queue_.empty(); }

  simkernel::ExecSlice run(const simkernel::ExecContext& ctx,
                           SimDuration budget) override;

 private:
  struct Chunk {
    PhaseSpec phase;
    std::uint64_t remaining;
  };
  std::deque<Chunk> queue_;
  bool finish_requested_ = false;
};

/// Spins forever (or for a fixed duration): used to model background
/// load and to exercise scheduler/power paths.
class SpinProgram final : public simkernel::Program {
 public:
  /// duration <= 0 spins until the simulation stops looking at it.
  explicit SpinProgram(SimDuration duration = SimDuration{0})
      : remaining_(duration), bounded_(duration > SimDuration{0}) {}

  simkernel::ExecSlice run(const simkernel::ExecContext& ctx,
                           SimDuration budget) override;

 private:
  SimDuration remaining_;
  bool bounded_;
};

/// Execute up to `budget` of `phase`, bounded by `max_instructions`;
/// shared helper for program implementations.
simkernel::ExecSlice run_phase_slice(const simkernel::ExecContext& ctx,
                                     const PhaseSpec& phase,
                                     SimDuration budget,
                                     std::uint64_t max_instructions);

}  // namespace hetpapi::workload
