#include "workload/simplemoc.hpp"

#include <algorithm>

#include "workload/programs.hpp"

namespace hetpapi::workload {

namespace {

constexpr std::uint64_t kBucket = 0x1000;

PhaseSpec xs_lookup_spec() {
  PhaseSpec spec;
  spec.ipc_fraction = 0.45;  // dependent loads serialize the lookup
  spec.llc_refs_per_kinstr = 90.0;
  spec.llc_miss_ratio = 0.35;
  spec.branches_per_kinstr = 60.0;
  spec.branch_miss_ratio = 0.02;
  spec.activity = 0.7;
  return spec;
}

PhaseSpec attenuate_spec() {
  PhaseSpec spec;
  spec.ipc_fraction = 0.85;
  spec.flops_per_instr = 0.45;  // exp evaluation + flux FMA chain
  spec.simd_efficiency = 0.7;
  spec.llc_refs_per_kinstr = 8.0;
  spec.llc_miss_ratio = 0.05;
  spec.branches_per_kinstr = 20.0;
  spec.branch_miss_ratio = 0.004;
  spec.activity = 0.95;
  return spec;
}

PhaseSpec tally_spec() {
  PhaseSpec spec;
  spec.ipc_fraction = 0.6;
  spec.llc_refs_per_kinstr = 45.0;
  spec.llc_miss_ratio = 0.12;  // scatter into the source regions
  spec.branches_per_kinstr = 70.0;
  spec.branch_miss_ratio = 0.015;
  spec.activity = 0.8;
  return spec;
}

}  // namespace

const std::vector<SimpleMocPhase>& simplemoc_phases() {
  static const std::vector<SimpleMocPhase> kPhases = {
      {"simplemoc_xs_lookup", 0x401000, 30'000, xs_lookup_spec()},
      {"simplemoc_attenuate_fluxes", 0x402000, 120'000, attenuate_spec()},
      {"simplemoc_tally_scalar_flux", 0x403000, 50'000, tally_spec()},
  };
  return kPhases;
}

const SimpleMocPhase* simplemoc_phase_for_ip(std::uint64_t ip) {
  for (const SimpleMocPhase& phase : simplemoc_phases()) {
    if (ip >= phase.ip && ip < phase.ip + kBucket) return &phase;
  }
  return nullptr;
}

std::uint64_t simplemoc_total_instructions(const SimpleMocConfig& config) {
  std::uint64_t per_segment = 0;
  for (const SimpleMocPhase& phase : simplemoc_phases()) {
    per_segment += phase.instructions_per_segment;
  }
  return config.segments * per_segment;
}

SimpleMocProgram::SimpleMocProgram(SimpleMocConfig config) : config_(config) {
  remaining_in_phase_ =
      config_.segments > 0 ? simplemoc_phases()[0].instructions_per_segment : 0;
}

simkernel::ExecSlice SimpleMocProgram::run(const simkernel::ExecContext& ctx,
                                           SimDuration budget) {
  if (segment_ >= config_.segments) {
    simkernel::ExecSlice slice;
    slice.consumed = budget;
    slice.finished = true;
    return slice;
  }
  const SimpleMocPhase& phase = simplemoc_phases()[phase_index_];
  simkernel::ExecSlice slice =
      run_phase_slice(ctx, phase.spec, budget, remaining_in_phase_);
  slice.sample_ip = phase.ip;
  remaining_in_phase_ -=
      std::min(remaining_in_phase_, slice.counts.instructions);
  if (remaining_in_phase_ == 0) {
    phase_index_ = (phase_index_ + 1) % simplemoc_phases().size();
    if (phase_index_ == 0) ++segment_;
    remaining_in_phase_ =
        simplemoc_phases()[phase_index_].instructions_per_segment;
    slice.finished = segment_ >= config_.segments;
  }
  return slice;
}

std::vector<std::string> simplemoc_event_set(int id) {
  switch (id) {
    case 0:
      return {"PAPI_DP_OPS", "PAPI_TOT_CYC"};
    case 1:
      return {"PAPI_L3_TCM", "PAPI_TOT_CYC"};
    case 2:
      return {"PAPI_RES_STL", "PAPI_TOT_CYC"};
    case 3:
      return {"PAPI_BR_MSP", "PAPI_BR_INS"};
    default:
      return {"PAPI_TOT_INS", "PAPI_TOT_CYC"};
  }
}

}  // namespace hetpapi::workload
