// Analytic execution model: how many instructions (and cache misses,
// branches, flops) a phase of code retires on a given core at a given
// frequency.
//
//   CPI = 1 / min(base_ipc * ipc_fraction,
//                 simd_efficiency * flops_per_cycle / flops_per_instr)
//       + miss_per_instr * (1 - overlap) * miss_latency_ns * f_GHz
//       + branch_miss_per_instr * penalty
//
// The memory-stall term is expressed in wall-clock latency, so its cycle
// cost grows with frequency (the memory wall); `overlap` models how much
// of the miss latency out-of-order execution and prefetching hide.
#pragma once

#include "base/units.hpp"
#include "cpumodel/types.hpp"
#include "simkernel/program.hpp"

namespace hetpapi::workload {

/// Code-property description of an execution phase. The same phase runs
/// on any core type; per-core behaviour differences come from the core's
/// UarchPerf (and the optional per-phase overrides below).
struct PhaseSpec {
  /// Fraction of the core's peak IPC this code sustains.
  double ipc_fraction = 0.8;
  /// DP flops per retired instruction (0 = non-FP code). A property of
  /// the instruction mix, identical across core types for one binary.
  double flops_per_instr = 0.0;
  /// Fraction of the core's peak flops/cycle this kernel reaches when
  /// not stalled (vectorization/blocking quality).
  double simd_efficiency = 1.0;
  /// LLC traffic: references per thousand instructions and the fraction
  /// of those references that miss.
  double llc_refs_per_kinstr = 0.0;
  double llc_miss_ratio = 0.0;
  /// Override of the core's MLP overlap for this access pattern
  /// (negative = use the core's value). Streaming, prefetch-friendly
  /// kernels hide nearly all miss latency.
  double mlp_overlap_override = -1.0;
  double branches_per_kinstr = 40.0;
  double branch_miss_ratio = 0.01;
  /// Switching-activity factor for the power model.
  double activity = 0.9;
};

/// Cycles per instruction of `phase` on `core` at frequency `f`.
double cycles_per_instruction(const cpumodel::CoreTypeSpec& core,
                              const PhaseSpec& phase, MegaHertz f,
                              double memory_contention);

/// Instructions retired in `duration` at frequency `f` with the given CPI.
std::uint64_t instructions_in(SimDuration duration, MegaHertz f, double cpi);

/// Time needed to retire `instructions` at frequency `f` with CPI `cpi`.
SimDuration duration_of(std::uint64_t instructions, MegaHertz f, double cpi);

/// Full counter bundle for `instructions` of `phase` on `core`.
simkernel::ExecCounts make_counts(const cpumodel::CoreTypeSpec& core,
                                  const PhaseSpec& phase,
                                  std::uint64_t instructions, double cpi,
                                  MegaHertz f);

/// Common phase shapes.
namespace phases {

/// Blocked DGEMM inner kernel: FMA-dense, streaming, prefetch-friendly.
PhaseSpec dgemm(double simd_efficiency, double llc_refs_per_kinstr,
                double llc_miss_ratio);

/// Busy-wait loop (load + compare + predicted branch): high IPC, no
/// flops, low switching activity.
PhaseSpec spin_wait();

/// Scalar integer bookkeeping (pivoting, row swaps, driver logic).
PhaseSpec scalar_serial();

/// Pointer-chasing, cache-hostile traffic (tests and examples).
PhaseSpec memory_bound();

}  // namespace phases

}  // namespace hetpapi::workload
