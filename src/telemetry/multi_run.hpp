// Parallel executor for independent, deterministic simulation runs.
//
// Every bench that regenerates a paper table re-runs the full HPL
// simulation once per {core set x variant x repetition} cell. The cells
// are embarrassingly parallel — each owns its SimKernel / Vfs / Machine
// and is seeded explicitly — so fanning them across a thread pool
// changes nothing about the science: the closures write their results
// into per-cell slots, and callers aggregate/print in the fixed cell
// order afterwards. Aggregated output is therefore bit-identical
// whether the executor runs with 1 worker or N.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "base/thread_pool.hpp"

namespace hetpapi::telemetry {

/// One independent unit of work. The closure must own (or create) all
/// mutable state it touches and store its result into a pre-allocated
/// per-cell slot; the executor provides no synchronization between
/// cells beyond completion of the whole batch.
struct RunCell {
  std::string label;
  std::function<void()> run;
};

/// Wall-clock timing of one executed cell, in cell order.
struct CellTiming {
  std::string label;
  double wall_s = 0.0;
};

class MultiRunExecutor {
 public:
  /// `threads` <= 1 executes cells inline, in order — the serial path.
  explicit MultiRunExecutor(std::size_t threads);

  /// Execute every cell across the pool, blocking until all complete.
  /// Execution order across workers is unspecified; the returned
  /// timings are in cell order. The first cell exception (lowest cell
  /// index) is rethrown after the batch drains.
  std::vector<CellTiming> execute(const std::vector<RunCell>& cells);

  std::size_t thread_count() const { return pool_.thread_count(); }

 private:
  ThreadPool pool_;
};

}  // namespace hetpapi::telemetry
