// Monitored benchmark runs: spawn an HPL simulation on a set of cores,
// sample telemetry at 1 Hz while it runs, wait for thermal settle
// between repetitions, and aggregate repeated runs — the workflow of the
// paper's mon_hpl.py (T1) and process_runs.py (T2).
#pragma once

#include <vector>

#include "simkernel/kernel.hpp"
#include "telemetry/sampler.hpp"
#include "workload/hpl.hpp"

namespace hetpapi::telemetry {

/// Health summary of a monitored run's counter path (aggregated from the
/// sampler's per-tick accounting, plus the fault injector's ledger when
/// chaos is enabled).
struct RunHealth {
  std::uint64_t ticks_attempted = 0;
  std::uint64_t ticks_failed = 0;
  std::uint64_t ticks_degraded = 0;
  /// Counters individually dropped after repeated consecutive failures.
  std::size_t counters_dropped = 0;
  std::vector<std::string> dropped_counters;
  /// Counter sampling was abandoned mid-run (telemetry continued).
  bool sampling_abandoned = false;
  /// Events requested in MonitorConfig::sample_events that could not be
  /// added to the EventSet (the rest were still sampled).
  std::vector<std::string> events_not_added;
  /// Fault-injection accounting (zero when no fault profile is active).
  std::uint64_t faults_injected = 0;
  /// Fds still open in the injector's ledger after the measurement
  /// library was torn down — must be zero.
  std::size_t leaked_fds = 0;
};

/// Per-region marker aggregation over one run (MonitorConfig::
/// mark_hpl_phases): counter deltas, entries and time spent inside each
/// instrumented region, merged across threads by the marker manager.
struct RegionReport {
  std::string name;
  std::uint64_t entries = 0;
  double time_s = 0.0;
  /// Summed per-event counter deltas, aligned with
  /// RunResult::counter_names.
  std::vector<long long> totals;
};

struct RunResult {
  std::vector<Sample> samples;
  /// Display names of the per-sample PAPI counters (one per
  /// Sample::counters slot); empty when no events were sampled.
  std::vector<std::string> counter_names;
  /// Labels of the per-PMU constituents behind each counters slot
  /// ("adl_glc::INST_RETIRED:ANY[intel_core]", ...), aligned with
  /// Sample::counter_parts. Filled only with
  /// MonitorConfig::per_core_type_counters.
  std::vector<std::vector<std::string>> counter_part_names;
  SimDuration elapsed{0};
  double gflops = 0.0;
  std::uint64_t spin_instructions = 0;
  std::uint64_t work_instructions = 0;
  /// Ground-truth counters per core type (what perf would report),
  /// summed over all worker threads.
  std::vector<simkernel::ExecCounts> counts_per_type;
  /// Counter-path health over the run (all zeros without sample_events).
  RunHealth health;
  /// Per-region marker tables ("hpl", "factor", "update"), filled only
  /// with MonitorConfig::mark_hpl_phases.
  std::vector<RegionReport> regions;
};

struct MonitorConfig {
  double sample_period_s = 1.0;
  /// Wait for the package to cool to this temperature before starting
  /// (the paper settles at 35 C so thermal history is identical).
  double settle_temp_c = 35.0;
  double settle_timeout_s = 600.0;
  /// Abandon a run that exceeds this much simulated time.
  double run_timeout_s = 3600.0;
  /// PAPI events to read at every sample (presets, natives or sysinfo
  /// events — anything the component registry serves). When non-empty
  /// the monitor builds a measurement Library over the kernel, attaches
  /// an EventSet to the master worker and fills Sample::counters.
  /// Default empty: telemetry output is byte-identical to before.
  std::vector<std::string> sample_events;
  /// Sample through the qualified read path: every Sample additionally
  /// carries the per-PMU sub-counts of each event (derived hybrid
  /// presets split per core type — §V-2), and the run labels them in
  /// RunResult::counter_part_names. Default off: samples are
  /// byte-identical to the plain read path.
  bool per_core_type_counters = false;
  /// Consecutive failed ticks after which a counter is dropped (and
  /// after which whole-set read failures abandon counter sampling).
  int max_consecutive_counter_failures = 3;
  /// Serve the monitor's counter reads through the userspace rdpmc
  /// read plan (LibraryConfig::use_rdpmc): mmap'd user pages + seqlock
  /// reads with per-read fd fallback. Off preserves the pure
  /// syscall-path behaviour (and its overhead numbers).
  bool use_rdpmc = false;
  /// Instrument the HPL run with LIKWID-style markers: a "hpl" region
  /// around the whole run plus "factor"/"update" regions bracketing the
  /// master worker's work items, reported in RunResult::regions.
  /// Requires sample_events (the regions accumulate those counters).
  bool mark_hpl_phases = false;
  /// Chaos mode: wrap the monitor's measurement backend in a
  /// FaultInjectingBackend with this named profile (see
  /// papi::FaultProfile::named; "none" disables injection) and seed.
  /// The run itself must survive any profile — failures degrade
  /// sampling, never abort the workload.
  std::string fault_profile = "none";
  std::uint64_t fault_seed = 0;
};

/// Run one monitored HPL execution: one worker thread pinned to each cpu
/// in `cpus` (worker 0 on cpus[0] is the master).
RunResult run_monitored_hpl(simkernel::SimKernel& kernel,
                            const workload::HplConfig& hpl_config,
                            const std::vector<int>& cpus,
                            const MonitorConfig& monitor_config);

/// Let the machine idle until the package/hottest-cluster temperature
/// drops to `settle_temp_c` (bounded by the timeout).
void wait_for_thermal_settle(simkernel::SimKernel& kernel,
                             double settle_temp_c, double timeout_s);

/// Element-wise average of repeated runs (samples aligned by index,
/// truncated to the shortest run) — process_runs.py's job.
RunResult average_runs(const std::vector<RunResult>& runs);

}  // namespace hetpapi::telemetry
