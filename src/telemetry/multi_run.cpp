#include "telemetry/multi_run.hpp"

#include <chrono>

namespace hetpapi::telemetry {

MultiRunExecutor::MultiRunExecutor(std::size_t threads) : pool_(threads) {}

std::vector<CellTiming> MultiRunExecutor::execute(
    const std::vector<RunCell>& cells) {
  std::vector<CellTiming> timings(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    timings[i].label = cells[i].label;
  }
  pool_.parallel_for_each(cells.size(), [&](std::size_t i) {
    const auto start = std::chrono::steady_clock::now();
    cells[i].run();
    timings[i].wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  });
  return timings;
}

}  // namespace hetpapi::telemetry
