#include "telemetry/monitor.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "base/log.hpp"
#include "papi/fault_injection.hpp"
#include "papi/marker.hpp"
#include "papi/sim_backend.hpp"

namespace hetpapi::telemetry {

void wait_for_thermal_settle(simkernel::SimKernel& kernel,
                             double settle_temp_c, double timeout_s) {
  const SimTime deadline =
      kernel.now() + SimTime::from_seconds(timeout_s).since_epoch;
  const auto hottest = [&] {
    double t = kernel.governor().package_temperature().value;
    for (std::size_t c = 0; c < kernel.machine().cluster_thermal.size(); ++c) {
      t = std::max(t,
                   kernel.governor().cluster_temperature(static_cast<int>(c))
                       .value);
    }
    return t;
  };
  while (hottest() > settle_temp_c && kernel.now() < deadline) {
    kernel.run_for(std::chrono::seconds(1));
  }
}

RunResult run_monitored_hpl(simkernel::SimKernel& kernel,
                            const workload::HplConfig& hpl_config,
                            const std::vector<int>& cpus,
                            const MonitorConfig& monitor_config) {
  RunResult result;
  wait_for_thermal_settle(kernel, monitor_config.settle_temp_c,
                          monitor_config.settle_timeout_s);

  workload::HplSimulation hpl(hpl_config, static_cast<int>(cpus.size()));
  std::vector<simkernel::Tid> tids;
  tids.reserve(cpus.size());
  for (std::size_t i = 0; i < cpus.size(); ++i) {
    const simkernel::Tid tid =
        kernel.spawn(hpl.make_worker(static_cast<int>(i)),
                     simkernel::CpuSet::of({cpus[i]}));
    tids.push_back(tid);
  }

  // Optional per-sample PAPI counters: a measurement Library (and with
  // it the whole component registry) over the same kernel, attached to
  // the master worker. Reads genuinely perturb the measured thread via
  // the call-overhead model, exactly like a caliper would.
  papi::SimBackend papi_backend(&kernel);
  // Chaos mode interposes the deterministic fault injector between the
  // library and the kernel; its ledger doubles as the leak oracle
  // reported in RunResult::health.
  std::unique_ptr<papi::FaultInjectingBackend> injector;
  papi::Backend* measurement_backend = &papi_backend;
  if (monitor_config.fault_profile != "none" &&
      !monitor_config.fault_profile.empty()) {
    if (auto profile = papi::FaultProfile::named(monitor_config.fault_profile)) {
      injector = std::make_unique<papi::FaultInjectingBackend>(
          &papi_backend, *profile, monitor_config.fault_seed);
      measurement_backend = injector.get();
    } else {
      HETPAPI_WARN << "monitor: unknown fault profile '"
                   << monitor_config.fault_profile
                   << "', running without injection";
    }
  }
  std::unique_ptr<papi::Library> papi_lib;
  int papi_set = -1;
  if (!monitor_config.sample_events.empty()) {
    papi::LibraryConfig lib_config;
    // A monitored run prefers a partial counter over no counter: one
    // refused core-type PMU must not black out the whole preset.
    lib_config.degrade_partial_presets = true;
    lib_config.use_rdpmc = monitor_config.use_rdpmc;
    if (auto lib = papi::Library::init(measurement_backend, lib_config)) {
      papi_lib = std::move(*lib);
      bool ok = false;
      if (auto set = papi_lib->create_eventset()) {
        papi_set = *set;
        ok = papi_lib->attach(papi_set, tids.front()).is_ok();
        // Per-event degradation: an event that cannot be added is
        // skipped (and reported in health), the rest still sample.
        for (const std::string& event : monitor_config.sample_events) {
          if (!ok) break;
          const Status added = papi_lib->add_event(papi_set, event);
          if (!added.is_ok()) {
            HETPAPI_WARN << "monitor: cannot sample " << event << ": "
                         << added.to_string();
            result.health.events_not_added.push_back(event);
          } else {
            result.counter_names.push_back(event);
          }
        }
        if (result.counter_names.empty()) ok = false;
        if (ok) ok = papi_lib->start(papi_set).is_ok();
      }
      if (!ok) {
        papi_lib.reset();
        result.counter_names.clear();
      }
    }
  }

  Sampler sampler(&kernel);
  sampler.reset();
  if (papi_lib) {
    sampler.attach_counters(papi_lib.get(), papi_set,
                            monitor_config.per_core_type_counters,
                            monitor_config.max_consecutive_counter_failures);
    if (monitor_config.per_core_type_counters) {
      // Label the constituents once — the breakdown structure is fixed
      // for the lifetime of the set, only the values change per sample.
      if (const auto readings = papi_lib->read_qualified(papi_set)) {
        for (const papi::QualifiedReading& reading : *readings) {
          std::vector<std::string> names;
          names.reserve(reading.parts.size());
          for (const papi::QualifiedValue& part : reading.parts) {
            names.push_back(part.core_type.empty()
                                ? part.native_name
                                : part.native_name + "[" + part.core_type +
                                      "]");
          }
          result.counter_part_names.push_back(std::move(names));
        }
      }
    }
  }
  // LIKWID-style phase markers: a "hpl" region around the whole run,
  // "factor"/"update" regions bracketing the master worker's items.
  // The listener fires synchronously from the simulation driver (this
  // thread), so the markers' thread-local state is the monitor's own.
  papi::MarkerManager markers;
  const bool mark_phases = monitor_config.mark_hpl_phases && papi_lib;
  if (mark_phases) {
    markers.set_time_source(
        +[](void* k) {
          return static_cast<std::uint64_t>(
              static_cast<simkernel::SimKernel*>(k)
                  ->now()
                  .since_epoch.count());
        },
        &kernel);
    (void)markers.attach_thread(papi_lib.get(), papi_set);
    (void)markers.region_begin("hpl");
    hpl.set_phase_listener([&markers](int worker, bool factor, bool begin) {
      if (worker != 0) return;  // the EventSet measures the master worker
      const std::string_view region = factor ? "factor" : "update";
      if (begin) {
        (void)markers.region_begin(region);
      } else {
        (void)markers.region_end(region);
      }
    });
  }

  const SimTime start = kernel.now();
  result.samples.push_back(sampler.sample());  // t=0 baseline

  const auto period = SimTime::from_seconds(monitor_config.sample_period_s)
                          .since_epoch;
  // Sub-step within each sample period so the measured completion time
  // is not quantized to the sampling rate.
  const SimDuration step = std::min<SimDuration>(
      period, std::chrono::milliseconds(10));
  const SimTime deadline =
      start + SimTime::from_seconds(monitor_config.run_timeout_s).since_epoch;
  SimTime next_sample = kernel.now() + period;
  while (kernel.any_thread_alive() && kernel.now() < deadline) {
    kernel.run_for(step);
    if (kernel.now() >= next_sample) {
      result.samples.push_back(sampler.sample());
      next_sample += period;
    }
  }

  if (mark_phases) {
    hpl.set_phase_listener(nullptr);
    // Ending "hpl" subsumes any item region left open at the deadline.
    (void)markers.region_end("hpl");
    for (const papi::RegionStats& stats : markers.report()) {
      RegionReport report;
      report.name = stats.name;
      report.entries = stats.entries;
      report.time_s = static_cast<double>(stats.time) * 1e-9;
      report.totals = stats.totals;
      result.regions.push_back(std::move(report));
    }
  }
  if (papi_lib) {
    (void)papi_lib->stop(papi_set);
    const CounterHealth& health = sampler.counter_health();
    result.health.ticks_attempted = health.ticks_attempted;
    result.health.ticks_failed = health.ticks_failed;
    result.health.ticks_degraded = health.ticks_degraded;
    result.health.sampling_abandoned = health.abandoned;
    result.health.counters_dropped = health.dropped_count();
    for (std::size_t i = 0;
         i < health.dropped.size() && i < result.counter_names.size(); ++i) {
      if (health.dropped[i] != 0) {
        result.health.dropped_counters.push_back(result.counter_names[i]);
      }
    }
  }
  // Tear the measurement library down before consulting the injector's
  // ledger, so the leak check sees the post-destruction fd population.
  papi_lib.reset();
  if (injector) {
    result.health.faults_injected = injector->stats().total_injected();
    result.health.leaked_fds = injector->open_fd_count();
    if (result.health.leaked_fds != 0) {
      HETPAPI_WARN << "monitor: " << result.health.leaked_fds
                   << " perf fds leaked under fault profile '"
                   << injector->profile().name << "'";
    }
  }

  result.elapsed = kernel.now() - start;
  result.gflops = hpl.gflops(result.elapsed).value;
  result.spin_instructions = hpl.spin_instructions();
  result.work_instructions = hpl.work_instructions();

  result.counts_per_type.assign(kernel.machine().core_types.size(),
                                simkernel::ExecCounts{});
  for (simkernel::Tid tid : tids) {
    const simkernel::ThreadGroundTruth* truth = kernel.ground_truth(tid);
    if (truth == nullptr) continue;
    for (std::size_t t = 0; t < truth->per_type.size(); ++t) {
      result.counts_per_type[t] += truth->per_type[t];
    }
  }
  return result;
}

RunResult average_runs(const std::vector<RunResult>& runs) {
  RunResult avg;
  if (runs.empty()) return avg;
  avg.counter_names = runs.front().counter_names;
  avg.counter_part_names = runs.front().counter_part_names;
  // Region tables: average by name over the runs that report the
  // region, aligned to the first run's table order.
  for (const RegionReport& first : runs.front().regions) {
    RegionReport merged;
    merged.name = first.name;
    std::uint64_t present = 0;
    for (const RunResult& run : runs) {
      for (const RegionReport& region : run.regions) {
        if (region.name != merged.name) continue;
        ++present;
        merged.entries += region.entries;
        merged.time_s += region.time_s;
        if (merged.totals.size() < region.totals.size()) {
          merged.totals.resize(region.totals.size(), 0);
        }
        for (std::size_t v = 0; v < region.totals.size(); ++v) {
          merged.totals[v] += region.totals[v];
        }
        break;
      }
    }
    if (present > 0) {
      merged.entries /= present;
      merged.time_s /= static_cast<double>(present);
      for (long long& total : merged.totals) {
        total /= static_cast<long long>(present);
      }
    }
    avg.regions.push_back(std::move(merged));
  }
  std::size_t min_samples = runs.front().samples.size();
  for (const RunResult& run : runs) {
    min_samples = std::min(min_samples, run.samples.size());
  }
  const double inv_n = 1.0 / static_cast<double>(runs.size());

  avg.samples.resize(min_samples);
  for (std::size_t i = 0; i < min_samples; ++i) {
    Sample& out = avg.samples[i];
    out = runs.front().samples[i];
    const std::size_t num_cpus = out.core_freq_mhz.size();
    out.core_freq_mhz.assign(num_cpus, 0.0);
    out.package_temp_c = 0.0;
    out.package_power_w = 0.0;
    out.board_power_w = 0.0;
    const std::size_t num_counters = out.counters.size();
    out.counters.assign(num_counters, 0.0);
    for (std::vector<double>& parts : out.counter_parts) {
      parts.assign(parts.size(), 0.0);
    }
    out.t_seconds = runs.front().samples[i].t_seconds -
                    runs.front().samples.front().t_seconds;
    int power_count = 0;
    for (const RunResult& run : runs) {
      const Sample& s = run.samples[i];
      for (std::size_t c = 0; c < num_cpus && c < s.core_freq_mhz.size(); ++c) {
        out.core_freq_mhz[c] += s.core_freq_mhz[c] * inv_n;
      }
      out.package_temp_c += s.package_temp_c * inv_n;
      out.board_power_w += s.board_power_w * inv_n;
      for (std::size_t c = 0; c < num_counters && c < s.counters.size(); ++c) {
        out.counters[c] += s.counters[c] * inv_n;
      }
      for (std::size_t c = 0;
           c < out.counter_parts.size() && c < s.counter_parts.size(); ++c) {
        for (std::size_t p = 0; p < out.counter_parts[c].size() &&
                                p < s.counter_parts[c].size();
             ++p) {
          out.counter_parts[c][p] += s.counter_parts[c][p] * inv_n;
        }
      }
      if (!std::isnan(s.package_power_w)) {
        out.package_power_w += s.package_power_w;
        ++power_count;
      }
    }
    out.package_power_w = power_count > 0
                              ? out.package_power_w / power_count
                              : std::nan("");
  }

  SimDuration elapsed_sum{0};
  for (const RunResult& run : runs) {
    avg.gflops += run.gflops * inv_n;
    elapsed_sum += run.elapsed;
    avg.spin_instructions += run.spin_instructions / runs.size();
    avg.work_instructions += run.work_instructions / runs.size();
    if (avg.counts_per_type.size() < run.counts_per_type.size()) {
      avg.counts_per_type.resize(run.counts_per_type.size());
    }
    for (std::size_t t = 0; t < run.counts_per_type.size(); ++t) {
      avg.counts_per_type[t] += run.counts_per_type[t];
    }
  }
  avg.elapsed = elapsed_sum / static_cast<std::int64_t>(runs.size());
  return avg;
}

}  // namespace hetpapi::telemetry
