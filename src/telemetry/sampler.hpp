// 1 Hz system telemetry, the C++ equivalent of the paper's mon_hpl.py:
// polls per-core frequency (cpufreq), package temperature (the
// x86_pkg_temp thermal zone on Intel, soc-thermal on ARM), and RAPL
// energy (powercap, with wraparound handling) — all through the sysfs
// surface, exactly as the Python scripts do on real hardware.
#pragma once

#include <optional>
#include <vector>

#include "base/status.hpp"
#include "base/units.hpp"
#include "papi/library.hpp"
#include "simkernel/kernel.hpp"

namespace hetpapi::telemetry {

struct Sample {
  double t_seconds = 0.0;
  std::vector<double> core_freq_mhz;  // indexed by logical cpu
  double package_temp_c = 0.0;
  /// Average package power over the interval since the previous sample,
  /// derived from the RAPL energy counter delta (NaN when RAPL absent).
  double package_power_w = 0.0;
  /// Wall-meter reading (board power; ARM path, Figure 3).
  double board_power_w = 0.0;
  /// PAPI counter readings (one per sampled event, in add order) when a
  /// running EventSet is attached via attach_counters; empty otherwise.
  std::vector<double> counters;
  /// Per-PMU sub-counts behind each counters slot (derived hybrid
  /// presets split per core PMU; single-constituent events carry one
  /// entry). Filled only when the sampler reads qualified — empty by
  /// default so existing consumers see identical samples.
  std::vector<std::vector<double>> counter_parts;
};

class Sampler {
 public:
  explicit Sampler(const simkernel::SimKernel* kernel);

  /// Also read `eventset` (already created and started on `library`) at
  /// every sample — the monitor's path from telemetry into the
  /// component registry. Pass nullptr to detach. With `qualified` the
  /// sampler reads through read_qualified and additionally fills
  /// Sample::counter_parts with the per-PMU breakdown of every slot.
  void attach_counters(const papi::Library* library, int eventset,
                       bool qualified = false);

  /// Take one sample at the kernel's current time.
  Sample sample();

  /// Reset inter-sample state (energy baseline) for a new run.
  void reset();

 private:
  std::optional<double> read_energy_uj();

  const simkernel::SimKernel* kernel_;
  const papi::Library* library_ = nullptr;
  int eventset_ = -1;
  bool qualified_ = false;
  std::string temp_path_;
  bool has_rapl_ = false;
  /// Wrap handling for the 32-bit microjoule register.
  std::uint64_t last_energy_raw_ = 0;
  double unwrapped_energy_uj_ = 0.0;
  bool have_baseline_ = false;
  double last_sample_t_ = 0.0;
  double last_sample_energy_uj_ = 0.0;
};

}  // namespace hetpapi::telemetry
