// 1 Hz system telemetry, the C++ equivalent of the paper's mon_hpl.py:
// polls per-core frequency (cpufreq), package temperature (the
// x86_pkg_temp thermal zone on Intel, soc-thermal on ARM), and RAPL
// energy (powercap, with wraparound handling) — all through the sysfs
// surface, exactly as the Python scripts do on real hardware.
#pragma once

#include <optional>
#include <vector>

#include "base/status.hpp"
#include "base/units.hpp"
#include "papi/library.hpp"
#include "simkernel/kernel.hpp"

namespace hetpapi::telemetry {

struct Sample {
  double t_seconds = 0.0;
  std::vector<double> core_freq_mhz;  // indexed by logical cpu
  double package_temp_c = 0.0;
  /// Average package power over the interval since the previous sample,
  /// derived from the RAPL energy counter delta (NaN when RAPL absent).
  double package_power_w = 0.0;
  /// Wall-meter reading (board power; ARM path, Figure 3).
  double board_power_w = 0.0;
  /// PAPI counter readings (one per sampled event, in add order) when a
  /// running EventSet is attached via attach_counters; empty otherwise.
  /// Slots that could not deliver this tick (dropped counter, degraded
  /// read) carry NaN.
  std::vector<double> counters;
  /// Per-PMU sub-counts behind each counters slot (derived hybrid
  /// presets split per core PMU; single-constituent events carry one
  /// entry). Filled only when the sampler reads qualified — empty by
  /// default so existing consumers see identical samples.
  std::vector<std::vector<double>> counter_parts;
  /// False when the counter read failed outright this tick: counters
  /// holds NaNs (or is empty if no read ever succeeded). Telemetry
  /// fields above are valid regardless — a failed caliper does not
  /// invalidate the thermals.
  bool counters_ok = true;
};

/// Health of the counter-sampling path over a run: every tick is
/// attempted, failures are counted instead of aborting, and counters
/// that keep failing are dropped individually.
struct CounterHealth {
  std::uint64_t ticks_attempted = 0;
  /// Ticks where the set-wide read failed (no counter values at all).
  std::uint64_t ticks_failed = 0;
  /// Ticks that delivered values but with at least one degraded slot.
  std::uint64_t ticks_degraded = 0;
  /// Per-slot drop flags (sized once the slot count is known): 1 after
  /// a counter crossed the consecutive-failure threshold and was
  /// removed from reporting.
  std::vector<std::uint8_t> dropped;
  /// Whole-set reads crossed the threshold: counter sampling was
  /// abandoned for the rest of the run (telemetry continues).
  bool abandoned = false;

  std::size_t dropped_count() const {
    std::size_t n = 0;
    for (const std::uint8_t d : dropped) n += d;
    return n;
  }
};

class Sampler {
 public:
  explicit Sampler(const simkernel::SimKernel* kernel);

  /// Also read `eventset` (already created and started on `library`) at
  /// every sample — the monitor's path from telemetry into the
  /// component registry. Pass nullptr to detach. With `qualified` the
  /// sampler reads through read_qualified and additionally fills
  /// Sample::counter_parts with the per-PMU breakdown of every slot.
  /// A slot that fails `max_consecutive_failures` ticks in a row is
  /// dropped (reported NaN from then on); the same threshold on
  /// whole-set read failures abandons counter sampling entirely. The
  /// run itself is never aborted by a failing counter.
  void attach_counters(const papi::Library* library, int eventset,
                       bool qualified = false,
                       int max_consecutive_failures = 3);

  /// Take one sample at the kernel's current time.
  Sample sample();

  /// Reset inter-sample state (energy baseline, counter health) for a
  /// new run.
  void reset();

  /// Health of the counter path so far (all zeros when no counters are
  /// attached).
  const CounterHealth& counter_health() const { return health_; }

 private:
  std::optional<double> read_energy_uj();
  /// The counter-reading part of sample(); failures degrade, never throw.
  void sample_counters(Sample& s);

  const simkernel::SimKernel* kernel_;
  const papi::Library* library_ = nullptr;
  int eventset_ = -1;
  bool qualified_ = false;
  int max_consecutive_failures_ = 3;
  CounterHealth health_;
  /// Consecutive failed/degraded ticks per slot (drop bookkeeping).
  std::vector<int> consecutive_invalid_;
  /// Per-tick scratch, persistent for capacity reuse: the qualified
  /// in-place read target and the shared (value, validity) staging.
  std::vector<papi::QualifiedReading> qualified_scratch_;
  std::vector<double> values_scratch_;
  std::vector<std::uint8_t> valid_tick_scratch_;
  int consecutive_set_failures_ = 0;
  std::string temp_path_;
  bool has_rapl_ = false;
  /// Wrap handling for the 32-bit microjoule register.
  std::uint64_t last_energy_raw_ = 0;
  double unwrapped_energy_uj_ = 0.0;
  bool have_baseline_ = false;
  double last_sample_t_ = 0.0;
  double last_sample_energy_uj_ = 0.0;
};

}  // namespace hetpapi::telemetry
