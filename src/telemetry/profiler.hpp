// The per-core-type hybrid sampling profiler: instruments a
// SimpleMOC-kernel-style workload with PAPI_overflow-style sampling,
// drains the sample rings through Library::read_samples, and renders a
// flat hot-spot table with one column per detected core type — the §V
// observation that a hybrid profile is only meaningful when samples are
// attributed to the core type that produced them.
//
// Everything the profiler prints is deterministic (simulated time,
// exact-truth counters), so the rendered report is golden-testable
// byte-for-byte and must be identical at any executor thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.hpp"
#include "workload/simplemoc.hpp"

namespace hetpapi::telemetry {

struct ProfileOptions {
  /// Machine preset alias ("raptorlake", "dynamiq", ...).
  std::string machine = "raptorlake";
  /// Event to sample — a preset or native name; on hybrid machines a
  /// derived preset samples on every constituent PMU.
  std::string event = "PAPI_TOT_INS";
  /// SimpleMOC-kernel-style numbered event set; >= 0 overrides `event`
  /// with the set's first event (the others ride along counting).
  int event_set = -1;
  /// Sampling period (counts per sample). Deliberately off-round: a
  /// period that divides the workload's per-segment instruction count
  /// would alias every sample onto the same phase (classic profiler
  /// lockstep), so the default is coprime with the segment period.
  std::uint64_t period = 1'111'111;
  /// Simulated worker threads, round-robin pinned across the machine's
  /// core types — pinning makes per-core-type attribution exactly
  /// checkable (a worker pinned to E cores must produce zero P samples).
  int workers = 4;
  workload::SimpleMocConfig moc{};
};

/// Per-worker validation numbers: the sample count reconciled against
/// the stopped counter value and the kernel's exact ground truth.
struct ProfileWorkerStats {
  int worker = -1;
  std::string core_type;  // label of the pinned core type
  std::uint64_t samples = 0;
  std::uint64_t lost = 0;
  /// Final value of the sampled event at stop().
  std::uint64_t counter = 0;
  /// Ground-truth instructions the worker retired on its pinned type.
  std::uint64_t truth_instructions = 0;
  /// Samples from a core type other than the pinned one (must be 0).
  std::uint64_t foreign_samples = 0;
  bool ok = false;
};

struct ProfileReport {
  /// The rendered flat profile (header, per-symbol rows split per core
  /// type, totals, drain counters, validation lines).
  std::string table;
  std::vector<std::string> core_type_labels;  // column order
  std::vector<ProfileWorkerStats> workers;
  std::uint64_t total_samples = 0;
  std::uint64_t lost = 0;
  std::uint64_t malformed = 0;
  int rings_denied = 0;
  int drains_stalled = 0;
  int wakeups_missed = 0;
  /// Every worker reconciled: delivered + lost == floor(counter/period)
  /// exactly, |samples x period - counter| <= period, zero foreign
  /// samples.
  bool validated = false;
};

/// Run the instrumented workload on `options.machine` and profile it.
Expected<ProfileReport> run_simplemoc_profile(const ProfileOptions& options);

}  // namespace hetpapi::telemetry
