#include "telemetry/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <memory>

#include "cpumodel/machine.hpp"
#include "papi/library.hpp"
#include "papi/sim_backend.hpp"
#include "simkernel/kernel.hpp"

namespace hetpapi::telemetry {

namespace {

void append_line(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
  out += '\n';
}

struct Row {
  std::string symbol;
  std::string ip;  // rendered bucket address ("-" for the unknown row)
  std::vector<std::uint64_t> per_type;
  std::uint64_t total = 0;
};

}  // namespace

Expected<ProfileReport> run_simplemoc_profile(const ProfileOptions& options) {
  if (options.workers <= 0) {
    return make_error(StatusCode::kInvalidArgument,
                      "profiler needs at least one worker");
  }
  if (options.period == 0) {
    return make_error(StatusCode::kInvalidArgument,
                      "sampling period must be positive");
  }
  const auto spec = cpumodel::machine_preset_by_name(options.machine);
  if (!spec.has_value()) {
    return make_error(StatusCode::kNotFound,
                      "unknown machine preset: " + options.machine);
  }

  simkernel::SimKernel kernel(*spec);
  papi::SimBackend backend(&kernel);

  // Round-robin pin workers across core types: pinning is what makes
  // per-core-type attribution exactly checkable (a worker pinned to E
  // cores must produce zero P-core samples).
  const int num_types = static_cast<int>(spec->core_types.size());
  std::vector<simkernel::Tid> tids;
  std::vector<int> worker_type;
  for (int w = 0; w < options.workers; ++w) {
    const int type = w % num_types;
    tids.push_back(kernel.spawn(
        std::make_shared<workload::SimpleMocProgram>(options.moc),
        simkernel::CpuSet::of(
            spec->cpus_of_type(static_cast<cpumodel::CoreTypeId>(type)))));
    worker_type.push_back(type);
  }

  auto lib = papi::Library::init(&backend);
  if (!lib) return lib.status();

  const std::vector<std::string> events =
      options.event_set >= 0 ? workload::simplemoc_event_set(options.event_set)
                             : std::vector<std::string>{options.event};
  const std::string& sampled_event = events.front();

  std::vector<int> sets;
  for (int w = 0; w < options.workers; ++w) {
    auto set = (*lib)->create_eventset();
    if (!set) return set.status();
    HETPAPI_RETURN_IF_ERROR((*lib)->attach(*set, tids[static_cast<std::size_t>(w)]));
    for (const std::string& name : events) {
      HETPAPI_RETURN_IF_ERROR((*lib)->add_event(*set, name));
    }
    // The callback side of PAPI_overflow still fires on every period
    // crossing; the profiler itself consumes the ring records.
    HETPAPI_RETURN_IF_ERROR((*lib)->set_overflow(
        *set, 0, options.period, [](const papi::Library::OverflowEvent&) {}));
    HETPAPI_RETURN_IF_ERROR((*lib)->start(*set));
    sets.push_back(*set);
  }

  kernel.run_until_idle(std::chrono::seconds(600));

  // Column order: core PMUs by core-type id, labelled by the detection
  // ladder — the same labels read_samples stamps on each record.
  // core_type_for_pmu keys on the pfm table name, so join the kernel's
  // PMU descriptors to the library's scan through the sysfs name.
  std::vector<std::string> label_by_type(
      static_cast<std::size_t>(num_types));
  for (const simkernel::PmuDesc* pmu : kernel.pmus().core_pmus()) {
    std::string label;
    for (const pfm::ActivePmu& active : (*lib)->pfm().pmus()) {
      if (active.sysfs_name == pmu->sysfs_name && active.table != nullptr) {
        label = (*lib)->core_type_for_pmu(active.table->pfm_name);
        break;
      }
    }
    if (label.empty()) label = pmu->sysfs_name;
    label_by_type[static_cast<std::size_t>(pmu->core_type)] = label;
  }
  std::map<std::string, int> column_of;
  for (int t = 0; t < num_types; ++t) {
    column_of[label_by_type[static_cast<std::size_t>(t)]] = t;
  }

  ProfileReport report;
  report.core_type_labels = label_by_type;

  std::map<std::string, Row> rows;
  for (int w = 0; w < options.workers; ++w) {
    auto values = (*lib)->stop(sets[static_cast<std::size_t>(w)]);
    if (!values) return values.status();
    auto batch = (*lib)->read_samples(sets[static_cast<std::size_t>(w)]);
    if (!batch) return batch.status();

    ProfileWorkerStats stats;
    stats.worker = w;
    const int pinned = worker_type[static_cast<std::size_t>(w)];
    stats.core_type = label_by_type[static_cast<std::size_t>(pinned)];
    stats.samples = batch->samples.size();
    stats.lost = batch->lost;
    stats.counter = static_cast<std::uint64_t>(
        std::max<long long>(0, (*values)[0]));
    const simkernel::ThreadGroundTruth* truth =
        kernel.ground_truth(tids[static_cast<std::size_t>(w)]);
    if (truth != nullptr) {
      stats.truth_instructions =
          truth->per_type[static_cast<std::size_t>(pinned)].instructions;
    }

    for (const papi::Sample& sample : batch->samples) {
      if (sample.core_type != stats.core_type) ++stats.foreign_samples;
      const auto column = column_of.find(sample.core_type);
      const workload::SimpleMocPhase* phase =
          workload::simplemoc_phase_for_ip(sample.ip);
      const std::string symbol = phase != nullptr ? phase->symbol : "[unknown]";
      Row& row = rows[symbol];
      if (row.per_type.empty()) {
        row.symbol = symbol;
        char ip_buf[24];
        if (phase != nullptr) {
          std::snprintf(ip_buf, sizeof ip_buf, "0x%" PRIx64, phase->ip);
        } else {
          std::snprintf(ip_buf, sizeof ip_buf, "-");
        }
        row.ip = ip_buf;
        row.per_type.assign(static_cast<std::size_t>(num_types), 0);
      }
      if (column != column_of.end()) {
        ++row.per_type[static_cast<std::size_t>(column->second)];
      }
      ++row.total;
    }

    report.total_samples += stats.samples;
    report.lost += batch->lost;
    report.malformed += batch->malformed;
    report.rings_denied += batch->rings_denied;
    report.drains_stalled += batch->drains_stalled;
    report.wakeups_missed += batch->wakeups_missed;

    // Reconcile: every period crossing became exactly one delivered or
    // lost record, and the delivered count tracks the exact-truth
    // instruction count within one period.
    const std::uint64_t crossings = stats.counter / options.period;
    bool ok = stats.foreign_samples == 0 &&
              stats.samples + stats.lost == crossings;
    if (sampled_event == "PAPI_TOT_INS") {
      const long long drift =
          static_cast<long long>(stats.samples * options.period) -
          static_cast<long long>(stats.truth_instructions);
      ok = ok && drift <= 0 &&
           -drift <= static_cast<long long>(options.period);
    }
    stats.ok = ok;
    report.workers.push_back(std::move(stats));
  }

  // Flat hot-spot table, hottest first (ties alphabetical).
  std::vector<Row> ordered;
  for (auto& [symbol, row] : rows) ordered.push_back(std::move(row));
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Row& a, const Row& b) {
                     if (a.total != b.total) return a.total > b.total;
                     return a.symbol < b.symbol;
                   });

  std::string& out = report.table;
  append_line(out,
              "hetpapi_profile machine=%s event=%s period=%" PRIu64
              " workers=%d segments=%" PRIu64,
              options.machine.c_str(), sampled_event.c_str(), options.period,
              options.workers, options.moc.segments);
  out += '\n';
  {
    char buf[512];
    int n = std::snprintf(buf, sizeof buf, "%-30s %-10s", "function", "ip");
    for (int t = 0; t < num_types; ++t) {
      n += std::snprintf(buf + n, sizeof buf - static_cast<std::size_t>(n),
                         " %14s",
                         label_by_type[static_cast<std::size_t>(t)].c_str());
    }
    std::snprintf(buf + n, sizeof buf - static_cast<std::size_t>(n), " %14s",
                  "total");
    out += buf;
    out += '\n';
  }
  std::vector<std::uint64_t> column_totals(
      static_cast<std::size_t>(num_types), 0);
  for (const Row& row : ordered) {
    char buf[512];
    int n = std::snprintf(buf, sizeof buf, "%-30s %-10s", row.symbol.c_str(),
                          row.ip.c_str());
    for (int t = 0; t < num_types; ++t) {
      column_totals[static_cast<std::size_t>(t)] +=
          row.per_type[static_cast<std::size_t>(t)];
      n += std::snprintf(buf + n, sizeof buf - static_cast<std::size_t>(n),
                         " %14" PRIu64,
                         row.per_type[static_cast<std::size_t>(t)]);
    }
    std::snprintf(buf + n, sizeof buf - static_cast<std::size_t>(n),
                  " %14" PRIu64, row.total);
    out += buf;
    out += '\n';
  }
  {
    char buf[512];
    int n = std::snprintf(buf, sizeof buf, "%-30s %-10s", "total", "-");
    for (int t = 0; t < num_types; ++t) {
      n += std::snprintf(buf + n, sizeof buf - static_cast<std::size_t>(n),
                         " %14" PRIu64,
                         column_totals[static_cast<std::size_t>(t)]);
    }
    std::snprintf(buf + n, sizeof buf - static_cast<std::size_t>(n),
                  " %14" PRIu64, report.total_samples);
    out += buf;
    out += '\n';
  }
  out += '\n';
  append_line(out,
              "samples=%" PRIu64 " lost=%" PRIu64 " malformed=%" PRIu64
              " rings_denied=%d drains_stalled=%d wakeups_missed=%d",
              report.total_samples, report.lost, report.malformed,
              report.rings_denied, report.drains_stalled,
              report.wakeups_missed);
  report.validated = true;
  for (const ProfileWorkerStats& stats : report.workers) {
    append_line(out,
                "worker %d core_type=%s samples=%" PRIu64 " lost=%" PRIu64
                " counter=%" PRIu64 " truth=%" PRIu64 " foreign=%" PRIu64
                " %s",
                stats.worker, stats.core_type.c_str(), stats.samples,
                stats.lost, stats.counter, stats.truth_instructions,
                stats.foreign_samples, stats.ok ? "ok" : "FAIL");
    report.validated = report.validated && stats.ok;
  }
  append_line(out, "validation: %s", report.validated ? "PASS" : "FAIL");
  return report;
}

}  // namespace hetpapi::telemetry
