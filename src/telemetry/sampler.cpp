#include "telemetry/sampler.hpp"

#include <cmath>

#include "base/strings.hpp"
#include "cpumodel/power.hpp"

namespace hetpapi::telemetry {

namespace {
constexpr std::uint64_t kEnergyWrap = 1ULL << 32;  // max_energy_range_uj + 1
}

Sampler::Sampler(const simkernel::SimKernel* kernel) : kernel_(kernel) {
  const auto& machine = kernel_->machine();
  temp_path_ = machine.vendor == cpumodel::Vendor::kIntel
                   ? "/sys/class/thermal/thermal_zone9/temp"
                   : "/sys/class/thermal/thermal_zone0/temp";
  has_rapl_ = machine.rapl.present;
}

void Sampler::attach_counters(const papi::Library* library, int eventset,
                              bool qualified, int max_consecutive_failures) {
  library_ = library;
  eventset_ = eventset;
  qualified_ = qualified;
  max_consecutive_failures_ =
      max_consecutive_failures > 0 ? max_consecutive_failures : 1;
  health_ = CounterHealth{};
  consecutive_invalid_.clear();
  consecutive_set_failures_ = 0;
}

void Sampler::reset() {
  have_baseline_ = false;
  last_energy_raw_ = 0;
  unwrapped_energy_uj_ = 0.0;
  last_sample_t_ = 0.0;
  last_sample_energy_uj_ = 0.0;
  health_ = CounterHealth{};
  consecutive_invalid_.clear();
  consecutive_set_failures_ = 0;
}

std::optional<double> Sampler::read_energy_uj() {
  if (!has_rapl_) return std::nullopt;
  const auto raw_str =
      kernel_->sysfs_read("/sys/class/powercap/intel-rapl:0/energy_uj");
  if (!raw_str) return std::nullopt;
  const auto raw = parse_int(trim(*raw_str));
  if (!raw) return std::nullopt;
  const auto value = static_cast<std::uint64_t>(*raw);
  if (!have_baseline_) {
    last_energy_raw_ = value;
    return unwrapped_energy_uj_;
  }
  // Unwrap: the register is monotonically increasing modulo 2^32.
  std::uint64_t delta = value >= last_energy_raw_
                            ? value - last_energy_raw_
                            : value + kEnergyWrap - last_energy_raw_;
  last_energy_raw_ = value;
  unwrapped_energy_uj_ += static_cast<double>(delta);
  return unwrapped_energy_uj_;
}

Sample Sampler::sample() {
  Sample s;
  s.t_seconds = kernel_->now().seconds();

  const int n = kernel_->machine().num_cpus();
  s.core_freq_mhz.reserve(static_cast<std::size_t>(n));
  for (int cpu = 0; cpu < n; ++cpu) {
    const auto khz = kernel_->sysfs_read(
        "/sys/devices/system/cpu/cpu" + std::to_string(cpu) +
        "/cpufreq/scaling_cur_freq");
    double mhz = 0.0;
    if (khz) {
      if (const auto parsed = parse_int(trim(*khz))) {
        mhz = static_cast<double>(*parsed) / 1000.0;
      }
    }
    s.core_freq_mhz.push_back(mhz);
  }

  if (const auto temp = kernel_->sysfs_read(temp_path_)) {
    if (const auto parsed = parse_int(trim(*temp))) {
      s.package_temp_c = static_cast<double>(*parsed) / 1000.0;
    }
  }

  const auto energy = read_energy_uj();
  if (energy && have_baseline_) {
    const double dt = s.t_seconds - last_sample_t_;
    if (dt > 0.0) {
      s.package_power_w = (*energy - last_sample_energy_uj_) / 1e6 / dt;
    }
  } else {
    s.package_power_w = std::nan("");
  }
  if (energy) {
    last_sample_energy_uj_ = *energy;
  }
  have_baseline_ = true;
  last_sample_t_ = s.t_seconds;

  // Board power (WattsUpPro stand-in): PSU losses plus board idle draw
  // over the SoC power. Sampled directly from the model because a wall
  // meter is outside the DUT.
  const cpumodel::BoardPowerMeter meter(Watts{2.6}, 0.82);
  s.board_power_w =
      meter.reading(kernel_->governor().package_power()).value;

  if (library_ != nullptr) sample_counters(s);
  return s;
}

void Sampler::sample_counters(Sample& s) {
  ++health_.ticks_attempted;
  const std::size_t known_slots = health_.dropped.size();

  const auto fail_tick = [&] {
    s.counters_ok = false;
    s.counters.assign(known_slots, std::nan(""));
    ++health_.ticks_failed;
    if (!health_.abandoned &&
        ++consecutive_set_failures_ >= max_consecutive_failures_) {
      health_.abandoned = true;
    }
  };
  if (health_.abandoned) {
    fail_tick();
    return;
  }

  // Collect this tick's per-slot (value, validity) pairs — same shape
  // for the plain and qualified paths, so the drop bookkeeping below is
  // shared. The scratch buffers persist across ticks (capacity reuse),
  // and the qualified path reads in place through read_qualified_into,
  // so a steady-state tick allocates only the Sample's own vectors.
  std::vector<double>& values = values_scratch_;
  std::vector<std::uint8_t>& valid = valid_tick_scratch_;
  values.clear();
  valid.clear();
  if (qualified_) {
    const Status read = library_->read_qualified_into(eventset_,
                                                      qualified_scratch_);
    if (!read.is_ok()) {
      fail_tick();
      return;
    }
    const std::vector<papi::QualifiedReading>& readings = qualified_scratch_;
    values.reserve(readings.size());
    valid.reserve(readings.size());
    s.counter_parts.reserve(readings.size());
    for (const papi::QualifiedReading& reading : readings) {
      values.push_back(static_cast<double>(reading.total));
      valid.push_back(reading.degraded ? 0 : 1);
      std::vector<double> parts;
      parts.reserve(reading.parts.size());
      for (const papi::QualifiedValue& part : reading.parts) {
        parts.push_back(part.valid
                            ? static_cast<double>(part.sign * part.value)
                            : std::nan(""));
      }
      s.counter_parts.push_back(std::move(parts));
    }
  } else {
    const auto reading = library_->read_checked(eventset_);
    if (!reading) {
      fail_tick();
      return;
    }
    values.reserve(reading->values.size());
    valid.reserve(reading->values.size());
    for (std::size_t i = 0; i < reading->values.size(); ++i) {
      values.push_back(static_cast<double>(reading->values[i]));
      valid.push_back(i < reading->value_degraded.size() &&
                              reading->value_degraded[i] != 0
                          ? 0
                          : 1);
    }
  }
  consecutive_set_failures_ = 0;

  if (health_.dropped.size() != values.size()) {
    health_.dropped.assign(values.size(), 0);
    consecutive_invalid_.assign(values.size(), 0);
  }
  bool any_degraded = false;
  s.counters.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (health_.dropped[i] != 0) {
      s.counters.push_back(std::nan(""));
      continue;
    }
    if (valid[i] != 0) {
      consecutive_invalid_[i] = 0;
      s.counters.push_back(values[i]);
      continue;
    }
    any_degraded = true;
    s.counters.push_back(std::nan(""));
    if (++consecutive_invalid_[i] >= max_consecutive_failures_) {
      health_.dropped[i] = 1;
    }
  }
  if (any_degraded) ++health_.ticks_degraded;
}

}  // namespace hetpapi::telemetry
