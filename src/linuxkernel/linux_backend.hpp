// Real-Linux backend: the same Backend/Host seams served by actual
// perf_event_open(2) syscalls and the live /sys//proc trees.
//
// This is the "straightforward port" direction: the library layer is
// unchanged; event kinds translate onto the kernel's generalized
// hardware events, using the extended config encoding
// (config = pmu_type << 32 | generic_id) that hybrid kernels accept so
// a per-core-type PMU can be addressed through PERF_TYPE_HARDWARE.
// Software events work everywhere (including PMU-less VMs, which is
// what the gated tests exercise); rdpmc and RAPL translation are out of
// scope and report kNotSupported.
#pragma once

#include <map>
#include <string>

#include "papi/backend.hpp"

namespace hetpapi::linuxkernel {

/// pfm::Host over the live filesystem and CPUID.
class LinuxHost final : public pfm::Host {
 public:
  LinuxHost();

  Expected<std::string> read_file(std::string_view path) const override;
  Expected<std::vector<std::string>> list_dir(
      std::string_view path) const override;
  Expected<cpumodel::IntelCoreKind> cpuid_core_kind(int cpu) const override;
  int num_cpus() const override { return num_cpus_; }

 private:
  int num_cpus_ = 1;
};

/// True when perf_event_open is usable at all (false in seccomp'd or
/// locked-down containers); tests gate on this.
bool perf_event_available();

class LinuxBackend final : public papi::Backend {
 public:
  Expected<int> perf_event_open(const papi::PerfEventAttr& attr,
                                papi::Tid tid, int cpu, int group_fd,
                                std::uint64_t flags) override;
  Status perf_ioctl(int fd, papi::PerfIoctl op, std::uint32_t flags) override;
  Expected<papi::PerfValue> perf_read(int fd) override;
  Expected<std::vector<papi::PerfValue>> perf_read_group(int fd) override;
  Expected<std::uint64_t> perf_rdpmc(int fd) override;
  /// mmap the event's real perf_event_mmap_page (read-only, one page).
  /// simkernel::PerfUserPage mirrors the kernel struct bit-for-bit up
  /// to the reserved region, and the kernel zeroes that region, so the
  /// reader's sim-magic probe cleanly selects the hardware rdpmc leg.
  /// Unmapped automatically at perf_close.
  Expected<const simkernel::PerfUserPage*> perf_mmap_user_page(
      int fd) override;
  /// mmap the event's real sample ring: the control page plus a
  /// power-of-two data area, mapped read-write (the reader publishes
  /// data_tail). Unmapped automatically at perf_close.
  Expected<simkernel::PerfRingView> perf_mmap_ring(int fd) override;
  /// poll(2) with a zero timeout: POLLIN on the event fd.
  Expected<bool> perf_ring_poll(int fd) override;
  Status perf_close(int fd) override;

  ~LinuxBackend() override;

  const pfm::Host& host() const override { return host_; }

  /// RAPL translation is out of scope for the port (it needs root and
  /// machine-specific MSRs); sysinfo reads plain procfs and works
  /// anywhere.
  bool supports_component(std::string_view name) const override {
    return name != "rapl";
  }

  /// 0 = "calling thread" in the real syscall ABI.
  papi::Tid default_target() const override { return 0; }

 private:
  struct RingMap {
    void* base = nullptr;
    std::size_t length = 0;            // page + data area
    std::uint64_t sample_type = 0;     // recorded at open for decoders
  };

  LinuxHost host_;
  /// fd -> live mmap'd first perf page (munmap'd at perf_close).
  std::map<int, void*> user_pages_;
  /// fd -> live sample-ring mapping (munmap'd at perf_close).
  std::map<int, RingMap> rings_;
  /// attr.sample_type of sampling-mode fds, as resolved at open.
  std::map<int, std::uint64_t> sample_types_;
};

}  // namespace hetpapi::linuxkernel
