#include "linuxkernel/linux_backend.hpp"

#include <fcntl.h>
#include <linux/perf_event.h>
#include <poll.h>
#include <sys/ioctl.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

#include "base/strings.hpp"

namespace hetpapi::linuxkernel {

namespace {

using simkernel::CountKind;

Status errno_status(std::string_view what) {
  const int err = errno;
  StatusCode code = StatusCode::kSystem;
  switch (err) {
    case EINVAL: code = StatusCode::kInvalidArgument; break;
    case ENOENT: case ENODEV: case ENXIO: code = StatusCode::kNotFound; break;
    case EACCES: case EPERM: code = StatusCode::kPermission; break;
    case EBUSY: code = StatusCode::kBusy; break;
    case ENOMEM: case EMFILE: code = StatusCode::kNoMemory; break;
    case EINTR: case EAGAIN: code = StatusCode::kInterrupted; break;
    default: break;
  }
  return make_error(code, std::string(what) + ": " + std::strerror(err));
}

/// Syscall-level EINTR bound: a signal storm should not surface as a
/// failed read, but an unbounded loop must not hang either. The library
/// layer retries kInterrupted again on top of this.
constexpr int kSyscallEintrRetries = 8;

/// Translate our backend-neutral (type, CountKind) pair onto the real
/// ABI. Core-PMU kinds go through the generalized hardware ids with the
/// extended config encoding hybrid kernels accept; software kinds map
/// onto PERF_COUNT_SW_*.
Expected<std::pair<std::uint32_t, std::uint64_t>> translate(
    const papi::PerfEventAttr& attr) {
  const auto kind = static_cast<CountKind>(attr.config);
  if (attr.type == PERF_TYPE_SOFTWARE) {
    switch (kind) {
      case CountKind::kContextSwitches:
        return std::pair<std::uint32_t, std::uint64_t>{
            PERF_TYPE_SOFTWARE, PERF_COUNT_SW_CONTEXT_SWITCHES};
      case CountKind::kMigrations:
        return std::pair<std::uint32_t, std::uint64_t>{
            PERF_TYPE_SOFTWARE, PERF_COUNT_SW_CPU_MIGRATIONS};
      case CountKind::kTaskClockNs:
        return std::pair<std::uint32_t, std::uint64_t>{
            PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK};
      default:
        return make_error(StatusCode::kNotSupported,
                          "no software mapping for this event kind");
    }
  }
  std::uint64_t hw_id = 0;
  switch (kind) {
    case CountKind::kInstructions: hw_id = PERF_COUNT_HW_INSTRUCTIONS; break;
    case CountKind::kCycles: hw_id = PERF_COUNT_HW_CPU_CYCLES; break;
    case CountKind::kRefCycles: hw_id = PERF_COUNT_HW_REF_CPU_CYCLES; break;
    case CountKind::kLlcReferences:
      hw_id = PERF_COUNT_HW_CACHE_REFERENCES;
      break;
    case CountKind::kLlcMisses: hw_id = PERF_COUNT_HW_CACHE_MISSES; break;
    case CountKind::kBranches:
      hw_id = PERF_COUNT_HW_BRANCH_INSTRUCTIONS;
      break;
    case CountKind::kBranchMisses: hw_id = PERF_COUNT_HW_BRANCH_MISSES; break;
    default:
      return make_error(StatusCode::kNotSupported,
                        "no generalized hardware mapping for this kind");
  }
  // Extended hardware type: select a specific (hybrid) PMU through the
  // generic event interface. A plain PERF_TYPE_HARDWARE open keeps
  // config as-is.
  const std::uint64_t config =
      attr.type >= simkernel::kPerfTypeFirstDynamic || attr.type == PERF_TYPE_RAW
          ? (static_cast<std::uint64_t>(attr.type) << 32) | hw_id
          : hw_id;
  return std::pair<std::uint32_t, std::uint64_t>{PERF_TYPE_HARDWARE, config};
}

struct GroupReadBuffer {
  std::uint64_t nr;
  std::uint64_t time_enabled;
  std::uint64_t time_running;
  std::uint64_t values[64];
};

}  // namespace

bool perf_event_available() {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_SOFTWARE;
  attr.size = sizeof(attr);
  attr.config = PERF_COUNT_SW_TASK_CLOCK;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  const long fd = syscall(__NR_perf_event_open, &attr, 0, -1, -1, 0);
  if (fd < 0) return false;
  ::close(static_cast<int>(fd));
  return true;
}

LinuxHost::LinuxHost() {
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  num_cpus_ = n > 0 ? static_cast<int>(n) : 1;
}

Expected<std::string> LinuxHost::read_file(std::string_view path) const {
  std::ifstream in{std::string(path)};
  if (!in) {
    return make_error(StatusCode::kNotFound,
                      "cannot open " + std::string(path));
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

Expected<std::vector<std::string>> LinuxHost::list_dir(
    std::string_view path) const {
  std::error_code ec;
  std::filesystem::directory_iterator it{std::string(path), ec};
  if (ec) {
    return make_error(StatusCode::kNotFound,
                      "cannot list " + std::string(path));
  }
  std::vector<std::string> names;
  for (const auto& entry : it) {
    names.push_back(entry.path().filename().string());
  }
  return names;
}

Expected<cpumodel::IntelCoreKind> LinuxHost::cpuid_core_kind(int cpu) const {
#if defined(__x86_64__) || defined(__i386__)
  // CPUID executes on the calling cpu; a faithful implementation pins
  // itself to `cpu` first. In this library the result only matters on
  // hybrid parts, where leaf 0x1A is present.
  (void)cpu;
  unsigned eax = 0;
  unsigned ebx = 0;
  unsigned ecx = 0;
  unsigned edx = 0;
  if (__get_cpuid_count(0x1A, 0, &eax, &ebx, &ecx, &edx) == 0 || eax == 0) {
    return cpumodel::IntelCoreKind::kNone;
  }
  return static_cast<cpumodel::IntelCoreKind>((eax >> 24) & 0xFF);
#else
  (void)cpu;
  return make_error(StatusCode::kNotSupported, "CPUID is x86-only");
#endif
}

Expected<int> LinuxBackend::perf_event_open(const papi::PerfEventAttr& attr,
                                            papi::Tid tid, int cpu,
                                            int group_fd,
                                            std::uint64_t flags) {
  auto translated = translate(attr);
  if (!translated) return translated.status();

  perf_event_attr native;
  std::memset(&native, 0, sizeof(native));
  native.size = sizeof(native);
  native.type = translated->first;
  native.config = translated->second;
  native.disabled = attr.disabled ? 1 : 0;
  native.inherit = attr.inherit ? 1 : 0;
  native.pinned = attr.pinned ? 1 : 0;
  native.exclude_kernel = 1;  // run unprivileged
  native.exclude_hv = 1;
  native.read_format = 0;
  if (attr.read_format & simkernel::kFormatGroup) {
    native.read_format |= PERF_FORMAT_GROUP;
  }
  if (attr.read_format & simkernel::kFormatTotalTimeEnabled) {
    native.read_format |= PERF_FORMAT_TOTAL_TIME_ENABLED;
  }
  if (attr.read_format & simkernel::kFormatTotalTimeRunning) {
    native.read_format |= PERF_FORMAT_TOTAL_TIME_RUNNING;
  }
  std::uint64_t sample_type = 0;
  if (attr.sample_period > 0) {
    native.sample_period = attr.sample_period;
    native.wakeup_events = attr.wakeup_events;
    sample_type =
        attr.sample_type != 0 ? attr.sample_type : simkernel::kSampleTypeDefault;
    // Our SampleType constants are the kernel's PERF_SAMPLE_* values;
    // map bit by bit anyway so a divergence is a compile-visible edit.
    if (sample_type & simkernel::kSampleIp) native.sample_type |= PERF_SAMPLE_IP;
    if (sample_type & simkernel::kSampleTid) {
      native.sample_type |= PERF_SAMPLE_TID;
    }
    if (sample_type & simkernel::kSampleTime) {
      native.sample_type |= PERF_SAMPLE_TIME;
    }
    if (sample_type & simkernel::kSampleCpu) {
      native.sample_type |= PERF_SAMPLE_CPU;
    }
    if (sample_type & simkernel::kSamplePeriod) {
      native.sample_type |= PERF_SAMPLE_PERIOD;
    }
  }

  const long fd = syscall(__NR_perf_event_open, &native,
                          static_cast<pid_t>(tid), cpu, group_fd,
                          flags | PERF_FLAG_FD_CLOEXEC);
  if (fd < 0) return errno_status("perf_event_open");
  if (attr.sample_period > 0) {
    sample_types_[static_cast<int>(fd)] = sample_type;
  }
  return static_cast<int>(fd);
}

Status LinuxBackend::perf_ioctl(int fd, papi::PerfIoctl op,
                                std::uint32_t flags) {
  unsigned long request = 0;
  switch (op) {
    case papi::PerfIoctl::kEnable: request = PERF_EVENT_IOC_ENABLE; break;
    case papi::PerfIoctl::kDisable: request = PERF_EVENT_IOC_DISABLE; break;
    case papi::PerfIoctl::kReset: request = PERF_EVENT_IOC_RESET; break;
  }
  const unsigned long arg =
      (flags & simkernel::kIocFlagGroup) != 0 ? PERF_IOC_FLAG_GROUP : 0;
  int rc = -1;
  for (int attempt = 0; attempt < kSyscallEintrRetries; ++attempt) {
    rc = ::ioctl(fd, request, arg);
    if (rc == 0 || errno != EINTR) break;
  }
  if (rc != 0) return errno_status("perf ioctl");
  return Status::ok();
}

Expected<papi::PerfValue> LinuxBackend::perf_read(int fd) {
  // Non-group read with both time fields.
  std::uint64_t buffer[3] = {0, 0, 0};
  ssize_t n = -1;
  for (int attempt = 0; attempt < kSyscallEintrRetries; ++attempt) {
    n = ::read(fd, buffer, sizeof(buffer));
    if (n >= 0 || errno != EINTR) break;
  }
  if (n < 0) return errno_status("perf read");
  papi::PerfValue value;
  value.value = buffer[0];
  if (n >= static_cast<ssize_t>(2 * sizeof(std::uint64_t))) {
    value.time_enabled_ns = buffer[1];
  }
  if (n >= static_cast<ssize_t>(3 * sizeof(std::uint64_t))) {
    value.time_running_ns = buffer[2];
  }
  return value;
}

Expected<std::vector<papi::PerfValue>> LinuxBackend::perf_read_group(int fd) {
  GroupReadBuffer buffer;
  std::memset(&buffer, 0, sizeof(buffer));
  ssize_t n = -1;
  for (int attempt = 0; attempt < kSyscallEintrRetries; ++attempt) {
    n = ::read(fd, &buffer, sizeof(buffer));
    if (n >= 0 || errno != EINTR) break;
  }
  if (n < 0) return errno_status("perf group read");
  std::vector<papi::PerfValue> out;
  for (std::uint64_t i = 0; i < buffer.nr && i < 64; ++i) {
    papi::PerfValue value;
    value.value = buffer.values[i];
    value.time_enabled_ns = buffer.time_enabled;
    value.time_running_ns = buffer.time_running;
    out.push_back(value);
  }
  return out;
}

Expected<std::uint64_t> LinuxBackend::perf_rdpmc(int fd) {
  (void)fd;
  return make_error(StatusCode::kNotSupported,
                    "rdpmc fast path not wired on the real backend");
}

// Our mirror struct must line up with the live kernel header, not just
// the documented offsets.
static_assert(offsetof(simkernel::PerfUserPage, lock) ==
              offsetof(perf_event_mmap_page, lock));
static_assert(offsetof(simkernel::PerfUserPage, index) ==
              offsetof(perf_event_mmap_page, index));
static_assert(offsetof(simkernel::PerfUserPage, offset) ==
              offsetof(perf_event_mmap_page, offset));
static_assert(offsetof(simkernel::PerfUserPage, time_enabled) ==
              offsetof(perf_event_mmap_page, time_enabled));
static_assert(offsetof(simkernel::PerfUserPage, time_running) ==
              offsetof(perf_event_mmap_page, time_running));

Expected<const simkernel::PerfUserPage*> LinuxBackend::perf_mmap_user_page(
    int fd) {
  const auto it = user_pages_.find(fd);
  if (it != user_pages_.end()) {
    return static_cast<const simkernel::PerfUserPage*>(it->second);
  }
  const long page_size = ::sysconf(_SC_PAGESIZE);
  void* mapped = ::mmap(nullptr, static_cast<std::size_t>(page_size),
                        PROT_READ, MAP_SHARED, fd, 0);
  if (mapped == MAP_FAILED) return errno_status("perf mmap");
  user_pages_[fd] = mapped;
  return static_cast<const simkernel::PerfUserPage*>(mapped);
}

// The ring control words must line up with the live kernel header too.
static_assert(offsetof(simkernel::PerfUserPage, data_head) ==
              offsetof(perf_event_mmap_page, data_head));
static_assert(offsetof(simkernel::PerfUserPage, data_tail) ==
              offsetof(perf_event_mmap_page, data_tail));

Expected<simkernel::PerfRingView> LinuxBackend::perf_mmap_ring(int fd) {
  const auto make_view = [this](int key, const RingMap& ring) {
    const long page_size = ::sysconf(_SC_PAGESIZE);
    simkernel::PerfRingView view;
    view.page = static_cast<simkernel::PerfUserPage*>(ring.base);
    view.data = static_cast<const std::uint8_t*>(ring.base) + page_size;
    view.size = ring.length - static_cast<std::size_t>(page_size);
    view.sample_type = ring.sample_type;
    (void)key;
    return view;
  };
  if (const auto it = rings_.find(fd); it != rings_.end()) {
    return make_view(fd, it->second);
  }
  const auto type_it = sample_types_.find(fd);
  if (type_it == sample_types_.end()) {
    return make_error(StatusCode::kInvalidArgument,
                      "event is in counting mode: no sample ring");
  }
  const long page_size = ::sysconf(_SC_PAGESIZE);
  // 1 control page + 2^n data pages, the shape the kernel requires.
  constexpr std::size_t kRingPages = 8;
  const std::size_t length =
      static_cast<std::size_t>(page_size) * (1 + kRingPages);
  void* mapped = ::mmap(nullptr, length, PROT_READ | PROT_WRITE, MAP_SHARED,
                        fd, 0);
  if (mapped == MAP_FAILED) return errno_status("perf ring mmap");
  RingMap ring;
  ring.base = mapped;
  ring.length = length;
  ring.sample_type = type_it->second;
  rings_[fd] = ring;
  return make_view(fd, ring);
}

Expected<bool> LinuxBackend::perf_ring_poll(int fd) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  int rc = -1;
  for (int attempt = 0; attempt < kSyscallEintrRetries; ++attempt) {
    rc = ::poll(&pfd, 1, 0);
    if (rc >= 0 || errno != EINTR) break;
  }
  if (rc < 0) return errno_status("perf poll");
  return rc > 0 && (pfd.revents & POLLIN) != 0;
}

Status LinuxBackend::perf_close(int fd) {
  const auto it = user_pages_.find(fd);
  if (it != user_pages_.end()) {
    ::munmap(it->second, static_cast<std::size_t>(::sysconf(_SC_PAGESIZE)));
    user_pages_.erase(it);
  }
  if (const auto ring_it = rings_.find(fd); ring_it != rings_.end()) {
    ::munmap(ring_it->second.base, ring_it->second.length);
    rings_.erase(ring_it);
  }
  sample_types_.erase(fd);
  // Never retry close: on Linux the fd is released even when close
  // reports EINTR, and a retry could close an unrelated fd reused in
  // the meantime. EINTR therefore counts as success here.
  if (::close(fd) != 0 && errno != EINTR) return errno_status("close");
  return Status::ok();
}

LinuxBackend::~LinuxBackend() {
  for (const auto& [fd, mapped] : user_pages_) {
    ::munmap(mapped, static_cast<std::size_t>(::sysconf(_SC_PAGESIZE)));
  }
  for (const auto& [fd, ring] : rings_) {
    ::munmap(ring.base, ring.length);
  }
}

}  // namespace hetpapi::linuxkernel
