// Exact-truth counter validation (§IV-F, generalized to N core types).
//
// The simulated kernel computes every thread's ground-truth activity
// per core type as it executes, so the library's answers can be checked
// *exactly* — not "within tolerance". The harness runs microbenchmark
// workloads pinned to each core type of a machine model, measures every
// qualified native event of every core PMU plus every available derived
// preset, and asserts each count equals the ground truth:
//   * a qualified native on the pinned type's PMU counts the whole run,
//   * a qualified native on any other core type's PMU counts zero,
//   * a derived preset sums to the per-type truth.
// A violation names the event, machine model, and core type — the
// debugging handle the paper's validation runs lacked.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cpumodel/machine.hpp"
#include "papi/presets.hpp"
#include "workload/exec_model.hpp"

namespace hetpapi::validation {

/// One microbenchmark the harness pins and measures.
struct WorkloadSpec {
  std::string name;          // "compute" | "memory" | "branchy"
  workload::PhaseSpec phase;
  std::uint64_t instructions = 5'000'000;
};

/// The built-in workload set: FP-dense, LLC-miss-heavy, and
/// branch-mispredict-heavy mixes, so every count kind is exercised by
/// at least one workload with a nonzero expectation.
const std::vector<WorkloadSpec>& default_workloads();

/// One (machine, workload, event, core type) measurement vs its truth.
struct CaseResult {
  std::string machine;    // MachineSpec::name
  std::string workload;   // WorkloadSpec::name
  std::string event;      // "PAPI_TOT_INS", "mtl_lpe::LLC_MISSES", ...
  std::string core_type;  // pinned core type's cpumodel name
  std::uint64_t expected = 0;
  std::uint64_t actual = 0;
  bool pass = false;
};

struct Options {
  /// Restrict to these workload names (empty = all built-ins).
  std::vector<std::string> workloads;
  /// Event definitions measured per simulation run. Small enough that
  /// no PMU runs out of counters (no multiplexing — exactness needs
  /// every event resident for the whole run).
  std::size_t events_per_run = 4;
  /// Per-call instruction overhead charged by the library. Exactness
  /// holds for any value: the simulated calipers execute as thread
  /// work, so both the counters and the ground truth include them
  /// (overhead conservation, §V-5).
  std::uint64_t call_overhead_instructions = 0;
  /// Preset resolution policy under test. The default is the paper's
  /// derived-sum design; the legacy kDefaultPmuOnly policy genuinely
  /// miscounts work on non-default core types, which tests use to
  /// prove the harness detects violations.
  papi::PresetPolicy preset_policy = papi::PresetPolicy::kDerivedSum;
};

struct Report {
  std::vector<CaseResult> cases;

  std::size_t failures() const {
    std::size_t n = 0;
    for (const CaseResult& c : cases) n += c.pass ? 0 : 1;
    return n;
  }
};

/// Run the full sweep on one machine model: every core type x every
/// workload x every event definition (qualified natives of all core
/// PMUs + available derived presets).
Report validate_machine(const cpumodel::MachineSpec& machine,
                        const Options& opts = {});

/// Human-readable per-machine summary; failure lines name the event,
/// model, and core type.
std::string render_summary(std::string_view machine_name,
                           const Report& report);

/// JUnit XML for CI upload: one <testsuite> per machine, one <testcase>
/// per harness case.
std::string render_junit(
    const std::vector<std::pair<std::string, Report>>& reports);

}  // namespace hetpapi::validation
