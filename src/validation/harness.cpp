#include "validation/harness.hpp"

#include <algorithm>
#include <chrono>
#include <memory>

#include "base/strings.hpp"
#include "papi/library.hpp"
#include "papi/sim_backend.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

namespace hetpapi::validation {

namespace {

using papi::Library;
using papi::LibraryConfig;
using papi::SimBackend;
using simkernel::CountKind;
using simkernel::CpuSet;
using simkernel::SimKernel;
using simkernel::Tid;
using workload::FixedWorkProgram;

/// One event definition the harness measures: a derived preset or a
/// PMU-qualified native.
struct EventDef {
  std::string name;      // what add_event() receives
  CountKind kind = CountKind::kInstructions;
  std::string pmu_name;  // pfm name of the serving core PMU ("" = preset)
};

/// The machine core type a core PMU serves, via its first covered cpu
/// (an empty cpu list is the homogeneous single-PMU layout — cpu 0).
std::size_t pmu_core_type(const cpumodel::MachineSpec& machine,
                          const pfm::ActivePmu& pmu) {
  const int first_cpu = pmu.cpus.empty() ? 0 : pmu.cpus.front();
  return static_cast<std::size_t>(
      machine.cpus[static_cast<std::size_t>(first_cpu)].type);
}

/// Enumerate every definition to validate on this machine: all
/// qualified natives of all core PMUs, then all available presets.
/// Requires an initialized Library (a throwaway probe instance works).
std::vector<EventDef> enumerate_definitions(const Library& lib) {
  std::vector<EventDef> defs;
  for (const pfm::ActivePmu* pmu : lib.pfm().default_pmus()) {
    for (const std::string& name : lib.pfm().event_names(*pmu)) {
      const auto enc = lib.pfm().encode(name);
      if (!enc) continue;  // unencodable names are a pfm-layer bug
      defs.push_back({name, enc->kind, pmu->table->pfm_name});
    }
  }
  for (const std::string& preset : lib.available_presets()) {
    const papi::PresetDef* def = papi::find_preset(preset);
    if (def == nullptr) continue;
    defs.push_back({preset, def->kind, ""});
  }
  return defs;
}

void xml_escape_into(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
}

std::string failure_message(const CaseResult& c) {
  return str_format(
      "event %s on model %s core type %s (workload %s): expected %llu, "
      "got %llu",
      c.event.c_str(), c.machine.c_str(), c.core_type.c_str(),
      c.workload.c_str(), static_cast<unsigned long long>(c.expected),
      static_cast<unsigned long long>(c.actual));
}

}  // namespace

const std::vector<WorkloadSpec>& default_workloads() {
  static const std::vector<WorkloadSpec>* kWorkloads = [] {
    auto* w = new std::vector<WorkloadSpec>;
    WorkloadSpec compute;
    compute.name = "compute";
    compute.phase.flops_per_instr = 0.5;
    compute.phase.llc_refs_per_kinstr = 2.0;
    compute.phase.llc_miss_ratio = 0.1;
    w->push_back(compute);
    WorkloadSpec memory;
    memory.name = "memory";
    memory.phase.llc_refs_per_kinstr = 60.0;
    memory.phase.llc_miss_ratio = 0.5;
    memory.phase.ipc_fraction = 0.4;
    w->push_back(memory);
    WorkloadSpec branchy;
    branchy.name = "branchy";
    branchy.phase.branches_per_kinstr = 200.0;
    branchy.phase.branch_miss_ratio = 0.05;
    w->push_back(branchy);
    return w;
  }();
  return *kWorkloads;
}

Report validate_machine(const cpumodel::MachineSpec& machine,
                        const Options& opts) {
  Report report;

  LibraryConfig lib_config;
  lib_config.call_overhead_instructions = opts.call_overhead_instructions;
  lib_config.preset_policy = opts.preset_policy;

  // Probe instance: enumerate the definitions and the PMU -> core type
  // join once; measurement runs get fresh kernels below.
  std::vector<EventDef> defs;
  std::vector<std::size_t> def_pmu_type;  // parallel to defs, natives only
  {
    SimKernel kernel(machine);
    SimBackend backend(&kernel);
    auto lib = Library::init(&backend, lib_config);
    if (!lib.has_value()) return report;
    defs = enumerate_definitions(**lib);
    for (const EventDef& def : defs) {
      if (def.pmu_name.empty()) {
        def_pmu_type.push_back(0);  // unused for presets
        continue;
      }
      const pfm::ActivePmu* pmu = (*lib)->pfm().find_pmu(def.pmu_name);
      def_pmu_type.push_back(pmu != nullptr ? pmu_core_type(machine, *pmu)
                                            : 0);
    }
  }

  const std::size_t batch_size = opts.events_per_run > 0
                                     ? opts.events_per_run
                                     : std::size_t{1};

  for (std::size_t t = 0; t < machine.core_types.size(); ++t) {
    const std::vector<int> cpus = machine.cpus_of_type(
        static_cast<cpumodel::CoreTypeId>(t));
    if (cpus.empty()) continue;
    const std::string& type_name = machine.core_types[t].name;

    for (const WorkloadSpec& workload : default_workloads()) {
      if (!opts.workloads.empty() &&
          std::find(opts.workloads.begin(), opts.workloads.end(),
                    workload.name) == opts.workloads.end()) {
        continue;
      }

      for (std::size_t begin = 0; begin < defs.size(); begin += batch_size) {
        const std::size_t end = std::min(begin + batch_size, defs.size());

        // Fresh simulation per batch: each run measures from a clean
        // ground truth, so expectations are exact, not incremental.
        SimKernel kernel(machine);
        SimBackend backend(&kernel);
        const Tid tid = kernel.spawn(
            std::make_shared<FixedWorkProgram>(workload.phase,
                                               workload.instructions),
            CpuSet::of({cpus.front()}));
        backend.set_default_target(tid);

        auto lib = Library::init(&backend, lib_config);
        std::vector<std::size_t> added;  // def indices, in value order
        int eventset = -1;
        if (lib.has_value()) {
          if (auto set = (*lib)->create_eventset(); set.has_value()) {
            eventset = *set;
            for (std::size_t i = begin; i < end; ++i) {
              if ((*lib)->add_event(eventset, defs[i].name).is_ok()) {
                added.push_back(i);
              } else {
                CaseResult fail;
                fail.machine = machine.name;
                fail.workload = workload.name;
                fail.event = defs[i].name;
                fail.core_type = type_name;
                fail.pass = false;
                report.cases.push_back(std::move(fail));
              }
            }
          }
        }

        std::vector<long long> values;
        bool measured = false;
        if (lib.has_value() && eventset >= 0 && !added.empty() &&
            (*lib)->start(eventset).is_ok()) {
          kernel.run_until_idle(std::chrono::seconds(120));
          if (auto read = (*lib)->stop(eventset); read.has_value()) {
            values = std::move(*read);
            measured = values.size() == added.size();
          }
        }

        const auto* truth = kernel.ground_truth(tid);
        for (std::size_t slot = 0; slot < added.size(); ++slot) {
          const std::size_t i = added[slot];
          CaseResult result;
          result.machine = machine.name;
          result.workload = workload.name;
          result.event = defs[i].name;
          result.core_type = type_name;
          if (truth != nullptr) {
            if (defs[i].pmu_name.empty()) {
              // Derived preset: the cross-core-type sum.
              for (const auto& per_type : truth->per_type) {
                result.expected += per_type.get(defs[i].kind);
              }
            } else {
              // Qualified native: exactly the serving core type's
              // share — zero when the pin kept work off that type.
              const std::size_t pmu_type = def_pmu_type[i];
              if (pmu_type < truth->per_type.size()) {
                result.expected = truth->per_type[pmu_type].get(defs[i].kind);
              }
            }
          }
          result.actual = measured
                              ? static_cast<std::uint64_t>(values[slot])
                              : 0;
          result.pass = measured && result.actual == result.expected;
          report.cases.push_back(std::move(result));
        }
      }
    }
  }
  return report;
}

std::string render_summary(std::string_view machine_name,
                           const Report& report) {
  std::string out = str_format(
      "%s: %zu cases, %zu failures\n", std::string(machine_name).c_str(),
      report.cases.size(), report.failures());
  for (const CaseResult& c : report.cases) {
    if (c.pass) continue;
    out += "  FAIL ";
    out += failure_message(c);
    out += "\n";
  }
  return out;
}

std::string render_junit(
    const std::vector<std::pair<std::string, Report>>& reports) {
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  std::size_t total = 0;
  std::size_t failed = 0;
  for (const auto& [name, report] : reports) {
    total += report.cases.size();
    failed += report.failures();
  }
  out += str_format("<testsuites tests=\"%zu\" failures=\"%zu\">\n", total,
                    failed);
  for (const auto& [name, report] : reports) {
    out += "  <testsuite name=\"validate_events.";
    xml_escape_into(out, name);
    out += str_format("\" tests=\"%zu\" failures=\"%zu\">\n",
                      report.cases.size(), report.failures());
    for (const CaseResult& c : report.cases) {
      out += "    <testcase classname=\"validate_events.";
      xml_escape_into(out, c.machine);
      out += "\" name=\"";
      xml_escape_into(out, c.workload + "/" + c.event + "@" + c.core_type);
      out += "\"";
      if (c.pass) {
        out += "/>\n";
        continue;
      }
      out += ">\n      <failure message=\"";
      xml_escape_into(out, failure_message(c));
      out += "\"/>\n    </testcase>\n";
    }
    out += "  </testsuite>\n";
  }
  out += "</testsuites>\n";
  return out;
}

}  // namespace hetpapi::validation
