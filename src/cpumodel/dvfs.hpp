// Package DVFS governor: picks per-cluster frequencies each tick,
// subject to the RAPL power budget and per-cluster thermal throttles.
//
// The emergent behaviours this produces are exactly the paper's
// motivation section:
//  * Figure 1 - frequencies spike while the RAPL long window is cold,
//    then settle to whatever the 65 W budget affords; idle E-cores
//    (OpenBLAS barrier stragglers finish early) leave more budget for
//    the P-cores, so the hybrid-unaware run shows *higher* P frequency
//    yet lower throughput.
//  * Figure 2 - package power spikes toward PL2 then rides PL1.
//  * Figure 3 - the OrangePi big cluster trips its thermal throttle in
//    seconds and oscillates, so LITTLE cores end up doing most work.
#pragma once

#include <span>
#include <vector>

#include "base/rng.hpp"
#include "base/units.hpp"
#include "cpumodel/machine.hpp"
#include "cpumodel/power.hpp"
#include "cpumodel/thermal.hpp"

namespace hetpapi::cpumodel {

/// Per-logical-CPU load for one tick.
struct CpuLoad {
  double util = 0.0;      // busy fraction of the tick, 0..1
  double activity = 0.0;  // switching activity of the running code, 0..1
};

class PackageGovernor {
 public:
  explicit PackageGovernor(const MachineSpec& spec, std::uint64_t seed = 1);

  /// Advance one tick. `loads` is indexed by logical CPU.
  void step(SimDuration dt, std::span<const CpuLoad> loads);

  /// Current operating frequency of a logical CPU.
  MegaHertz frequency(int cpu) const {
    return freq_[static_cast<std::size_t>(cpu)];
  }

  /// Package power over the last tick (SoC power on ARM).
  Watts package_power() const { return last_power_; }

  Celsius package_temperature() const { return package_node_.temperature(); }
  Celsius cluster_temperature(int cluster) const;
  bool cluster_throttling(int cluster) const;

  RaplModel& rapl() { return rapl_; }
  const RaplModel& rapl() const { return rapl_; }

  /// Reset all dynamic state to settled-idle (between telemetry runs).
  void reset();

  const MachineSpec& spec() const { return spec_; }

 private:
  /// Per-physical-core load aggregated from its SMT threads, rebuilt
  /// once per tick so the bisection loop below stays allocation-free.
  struct CoreLoad {
    const CoreTypeSpec* type = nullptr;
    int type_id = 0;
    int cluster = 0;
    double util = 0.0;      // clamped sum of thread utils
    double activity = 0.0;  // max across threads
  };

  /// Package power if every busy core ran at performance level `s`.
  Watts power_at_level(double s, std::span<const double> thermal_cap) const;
  MegaHertz freq_at_level(const CoreTypeSpec& type, bool multi_active,
                          double s, double thermal_cap) const;
  void aggregate_core_loads(std::span<const CpuLoad> loads);
  bool type_multi_active(int type_id) const {
    // Turbo tables bin down once several cores of a type are active.
    return busy_per_type_[static_cast<std::size_t>(type_id)] > 2;
  }

  MachineSpec spec_;
  RaplModel rapl_;
  ThermalNode package_node_;
  std::vector<ThermalNode> cluster_nodes_;
  std::vector<ThermalThrottle> cluster_throttles_;
  ThermalThrottle package_throttle_;
  std::vector<MegaHertz> freq_;  // per logical cpu
  std::vector<CoreLoad> core_loads_;   // per physical core, reused
  std::vector<int> cpu_to_core_slot_;  // logical cpu -> core_loads_ index
  std::vector<int> busy_per_type_;     // busy core count per core type
  Watts last_power_{0.0};
  Rng rng_;
};

}  // namespace hetpapi::cpumodel
