#include "cpumodel/machine.hpp"

#include <map>
#include <set>

namespace hetpapi::cpumodel {

std::vector<int> MachineSpec::cpus_of_type(CoreTypeId type) const {
  std::vector<int> out;
  for (const CpuSlot& slot : cpus) {
    if (slot.type == type) out.push_back(slot.cpu);
  }
  return out;
}

std::vector<int> MachineSpec::primary_threads_of_type(CoreTypeId type) const {
  std::vector<int> out;
  std::set<int> seen_cores;
  for (const CpuSlot& slot : cpus) {
    if (slot.type != type) continue;
    if (seen_cores.insert(slot.core_id).second) out.push_back(slot.cpu);
  }
  return out;
}

Status MachineSpec::validate() const {
  if (core_types.empty()) {
    return make_error(StatusCode::kInvalidArgument, "no core types");
  }
  if (cpus.empty()) {
    return make_error(StatusCode::kInvalidArgument, "no cpus");
  }
  std::set<int> cpu_ids;
  for (const CpuSlot& slot : cpus) {
    if (slot.type < 0 ||
        slot.type >= static_cast<CoreTypeId>(core_types.size())) {
      return make_error(StatusCode::kInvalidArgument,
                        "cpu " + std::to_string(slot.cpu) +
                            " has out-of-range core type");
    }
    if (!cpu_ids.insert(slot.cpu).second) {
      return make_error(StatusCode::kInvalidArgument,
                        "duplicate cpu id " + std::to_string(slot.cpu));
    }
  }
  // cpu ids must be dense 0..N-1: sysfs layout and affinity masks assume it.
  if (*cpu_ids.begin() != 0 || *cpu_ids.rbegin() != num_cpus() - 1) {
    return make_error(StatusCode::kInvalidArgument, "cpu ids not dense");
  }
  // SMT siblings must agree on core type.
  std::map<int, CoreTypeId> core_to_type;
  for (const CpuSlot& slot : cpus) {
    const auto [it, inserted] = core_to_type.emplace(slot.core_id, slot.type);
    if (!inserted && it->second != slot.type) {
      return make_error(StatusCode::kInvalidArgument,
                        "core " + std::to_string(slot.core_id) +
                            " spans two core types");
    }
  }
  for (const CoreTypeSpec& type : core_types) {
    if (type.dvfs.freq_min.value <= 0 ||
        type.dvfs.freq_max < type.dvfs.freq_min) {
      return make_error(StatusCode::kInvalidArgument,
                        type.name + ": bad DVFS range");
    }
    if (type.num_gp_counters <= 0) {
      return make_error(StatusCode::kInvalidArgument,
                        type.name + ": PMU needs at least one counter");
    }
  }
  if (!cluster_thermal.empty()) {
    for (const CpuSlot& slot : cpus) {
      if (slot.cluster_id < 0 ||
          slot.cluster_id >= static_cast<int>(cluster_thermal.size())) {
        return make_error(StatusCode::kInvalidArgument,
                          "cpu cluster id out of range");
      }
    }
  }
  return Status::ok();
}

MachineSpec raptor_lake_i7_13700() {
  MachineSpec m;
  m.name = "raptor_lake_i7_13700";
  m.cpu_model_string = "13th Gen Intel(R) Core(TM) i7-13700";
  m.vendor = Vendor::kIntel;
  m.exposes_cpuid_hybrid = true;
  m.exposes_cpu_capacity = false;
  m.firmware = FirmwareNaming::kAcpi;

  CoreTypeSpec p;
  p.name = "P-core";
  p.uarch_name = "GoldenCove";         // Raptor Cove shares the ADL PMU
  p.pmu_sysfs_name = "cpu_core";
  p.pfm_pmu_name = "adl_glc";
  p.cpu_capacity = 1024;
  p.smt_per_core = 2;
  p.num_gp_counters = 8;
  p.num_fixed_counters = 4;            // incl. the topdown slots counter
  p.ident.vendor = Vendor::kIntel;
  p.ident.family = 6;
  p.ident.model = 0xB7;                // Raptor Lake-S
  p.ident.stepping = 1;
  p.ident.intel_kind = IntelCoreKind::kCore;
  p.perf.base_ipc = 4.6;
  p.perf.flops_per_cycle_dp = 16.0;    // AVX2: 2 FMA ports x 4 DP x 2
  p.perf.llc_miss_latency_ns = 72.0;
  p.perf.mlp_overlap = 0.72;
  p.perf.branch_miss_penalty_cycles = 17.0;
  p.cache = CacheSpec{48 * 1024, 2 * 1024 * 1024, 30 * 1024 * 1024};
  p.dvfs = DvfsSpec{.freq_min = MegaHertz{800},
                    .freq_base = MegaHertz{2100},
                    .freq_max = MegaHertz{5100},
                    .freq_max_multi = MegaHertz{4800},
                    .volt_min = 0.68,
                    .volt_slope_per_ghz = 0.16};
  p.power = PowerSpec{/*c_dyn=*/1.59, /*leakage_w=*/0.55};

  CoreTypeSpec e;
  e.name = "E-core";
  e.uarch_name = "Gracemont";
  e.pmu_sysfs_name = "cpu_atom";
  e.pfm_pmu_name = "adl_grt";
  e.cpu_capacity = 580;
  e.smt_per_core = 1;
  e.num_gp_counters = 6;
  e.num_fixed_counters = 3;
  e.ident = p.ident;                   // same family/model/stepping (§IV-B)
  e.ident.intel_kind = IntelCoreKind::kAtom;
  e.perf.base_ipc = 3.2;
  e.perf.flops_per_cycle_dp = 8.0;     // 128-bit datapath effective
  e.perf.llc_miss_latency_ns = 82.0;
  e.perf.mlp_overlap = 0.45;
  e.perf.branch_miss_penalty_cycles = 13.0;
  e.cache = CacheSpec{32 * 1024, 4 * 1024 * 1024 / 4, 30 * 1024 * 1024};
  e.dvfs = DvfsSpec{.freq_min = MegaHertz{800},
                    .freq_base = MegaHertz{1500},
                    .freq_max = MegaHertz{4100},
                    .freq_max_multi = MegaHertz{3500},
                    .volt_min = 0.66,
                    .volt_slope_per_ghz = 0.14};
  e.power = PowerSpec{/*c_dyn=*/1.28, /*leakage_w=*/0.22};

  m.core_types = {p, e};

  // Logical CPUs: 0-15 = 8 P-cores x 2 threads (0/1 on core 0, ...),
  // 16-23 = 8 E-cores. Matches Linux enumeration on this part and the
  // paper's taskset list.
  int cpu = 0;
  for (int core = 0; core < 8; ++core) {
    for (int thread = 0; thread < 2; ++thread) {
      m.cpus.push_back(CpuSlot{cpu++, /*type=*/0, core, /*cluster=*/0});
    }
  }
  for (int core = 8; core < 16; ++core) {
    m.cpus.push_back(CpuSlot{cpu++, /*type=*/1, core, /*cluster=*/1});
  }

  m.rapl = RaplSpec{true, Watts{65.0}, Watts{219.0}, 28.0, 2.5, Watts{7.5}};
  m.thermal = ThermalSpec{Celsius{25.0}, Celsius{35.0}, Celsius{100.0},
                          0.38, 220.0, 3.0};
  m.memory = MemorySpec{32LL * 1024 * 1024 * 1024, "32GB DDR5, 4.4G T/s", 68.0};
  return m;
}

MachineSpec orangepi800_rk3399() {
  MachineSpec m;
  m.name = "orangepi800_rk3399";
  m.cpu_model_string = "Rockchip RK3399 SoC";
  m.vendor = Vendor::kArm;
  m.exposes_cpuid_hybrid = false;
  m.exposes_cpu_capacity = true;
  m.firmware = FirmwareNaming::kDevicetree;

  CoreTypeSpec big;
  big.name = "big";
  big.uarch_name = "Cortex-A72";
  big.pmu_sysfs_name = "armv8_pmuv3_1";  // devicetree ambiguity (§IV-B)
  big.pfm_pmu_name = "arm_a72";
  big.cpu_capacity = 1024;
  big.smt_per_core = 1;
  big.num_gp_counters = 6;
  big.num_fixed_counters = 1;  // cycle counter
  big.ident.vendor = Vendor::kArm;
  big.ident.arm_implementer = 0x41;
  big.ident.arm_part = 0xd08;  // Cortex-A72
  big.ident.arm_variant = 0;
  big.ident.arm_revision = 2;
  big.perf.base_ipc = 2.2;
  big.perf.flops_per_cycle_dp = 4.0;  // NEON 128-bit FMA
  big.perf.llc_miss_latency_ns = 130.0;
  big.perf.mlp_overlap = 0.45;
  big.perf.branch_miss_penalty_cycles = 15.0;
  big.cache = CacheSpec{32 * 1024, 1024 * 1024, 1024 * 1024};
  big.dvfs = DvfsSpec{.freq_min = MegaHertz{408},
                    .freq_base = MegaHertz{1200},
                    .freq_max = MegaHertz{1800},
                    .volt_min = 0.80,
                    .volt_slope_per_ghz = 0.28};
  big.power = PowerSpec{/*c_dyn=*/1.9, /*leakage_w=*/0.12};

  CoreTypeSpec little;
  little.name = "LITTLE";
  little.uarch_name = "Cortex-A53";
  little.pmu_sysfs_name = "armv8_pmuv3_0";
  little.pfm_pmu_name = "arm_a53";
  little.cpu_capacity = 485;
  little.smt_per_core = 1;
  little.num_gp_counters = 6;
  little.num_fixed_counters = 1;
  little.ident.vendor = Vendor::kArm;
  little.ident.arm_implementer = 0x41;
  little.ident.arm_part = 0xd03;  // Cortex-A53
  little.ident.arm_variant = 0;
  little.ident.arm_revision = 4;
  little.perf.base_ipc = 1.2;   // in-order dual issue
  little.perf.flops_per_cycle_dp = 2.0;
  little.perf.llc_miss_latency_ns = 140.0;
  little.perf.mlp_overlap = 0.15;
  little.perf.branch_miss_penalty_cycles = 8.0;
  little.cache = CacheSpec{32 * 1024, 512 * 1024, 512 * 1024};
  little.dvfs = DvfsSpec{.freq_min = MegaHertz{408},
                    .freq_base = MegaHertz{1000},
                    .freq_max = MegaHertz{1400},
                    .volt_min = 0.82,
                    .volt_slope_per_ghz = 0.24};
  little.power = PowerSpec{/*c_dyn=*/0.55, /*leakage_w=*/0.05};

  m.core_types = {big, little};

  // RK3399 enumerates the LITTLE cluster first: cpus 0-3 = A53, 4-5 = A72.
  for (int core = 0; core < 4; ++core) {
    m.cpus.push_back(CpuSlot{core, /*type=*/1, core, /*cluster=*/0});
  }
  for (int core = 4; core < 6; ++core) {
    m.cpus.push_back(CpuSlot{core, /*type=*/0, core, /*cluster=*/1});
  }

  m.rapl.present = false;  // no RAPL on ARM; board meter only
  // Passively cooled SoC in a keyboard case: low capacitance, high
  // resistance — big cores at 1.8 GHz trip the 85 C throttle within
  // seconds (Figure 3).
  m.thermal = ThermalSpec{Celsius{25.0}, Celsius{35.0}, Celsius{85.0},
                          9.0, 5.5, 5.0};
  m.cluster_thermal = {
      // cluster 0 = LITTLE: lower power density, same heatsink
      ThermalSpec{Celsius{25.0}, Celsius{35.0}, Celsius{85.0}, 9.0, 5.5, 5.0},
      // cluster 1 = big: high power density under a tiny passive sink —
      // trips within seconds at 1.8 GHz and settles far down (Figure 3)
      ThermalSpec{Celsius{25.0}, Celsius{35.0}, Celsius{85.0}, 20.0, 4.0, 5.0},
  };
  m.memory = MemorySpec{4LL * 1024 * 1024 * 1024, "4GB LPDDR4", 9.5};
  return m;
}

MachineSpec homogeneous_xeon(int cores) {
  MachineSpec m;
  m.name = "homogeneous_xeon";
  m.cpu_model_string = "Intel(R) Xeon(R) Processor @ 2.10GHz";
  m.vendor = Vendor::kIntel;
  m.exposes_cpuid_hybrid = false;

  CoreTypeSpec c;
  c.name = "core";
  c.uarch_name = "SkylakeSP";
  c.pmu_sysfs_name = "cpu";  // traditional single-PMU name
  c.pfm_pmu_name = "skx";
  c.cpu_capacity = 1024;
  c.smt_per_core = 1;
  c.num_gp_counters = 4;
  c.num_fixed_counters = 3;
  c.ident.vendor = Vendor::kIntel;
  c.ident.family = 6;
  c.ident.model = 0x55;
  c.ident.stepping = 4;
  c.perf.base_ipc = 3.4;
  c.perf.flops_per_cycle_dp = 16.0;
  c.perf.llc_miss_latency_ns = 85.0;
  c.perf.mlp_overlap = 0.6;
  c.cache = CacheSpec{32 * 1024, 1024 * 1024, 24 * 1024 * 1024};
  c.dvfs = DvfsSpec{.freq_min = MegaHertz{1000},
                    .freq_base = MegaHertz{2100},
                    .freq_max = MegaHertz{3000},
                    .volt_min = 0.70,
                    .volt_slope_per_ghz = 0.12};
  c.power = PowerSpec{2.6, 0.8};
  m.core_types = {c};

  for (int core = 0; core < cores; ++core) {
    m.cpus.push_back(CpuSlot{core, 0, core, 0});
  }
  m.rapl = RaplSpec{true, Watts{120.0}, Watts{180.0}, 28.0, 2.5, Watts{15.0}};
  m.thermal = ThermalSpec{Celsius{25.0}, Celsius{35.0}, Celsius{95.0},
                          0.30, 300.0, 3.0};
  m.memory = MemorySpec{64LL * 1024 * 1024 * 1024, "64GB DDR4", 90.0};
  return m;
}

MachineSpec alder_lake_i9_12900k() {
  // Start from the Raptor Lake preset: same microarchitectures and PMU
  // tables, different bins and power limits.
  MachineSpec m = raptor_lake_i7_13700();
  m.name = "alder_lake_i9_12900k";
  m.cpu_model_string = "12th Gen Intel(R) Core(TM) i9-12900K";
  CoreTypeSpec& p = m.core_types[0];
  p.ident.model = 0x97;  // Alder Lake-S
  p.dvfs.freq_base = MegaHertz{3200};
  p.dvfs.freq_max = MegaHertz{5200};
  p.dvfs.freq_max_multi = MegaHertz{4900};
  CoreTypeSpec& e = m.core_types[1];
  e.ident.model = 0x97;
  e.dvfs.freq_base = MegaHertz{2400};
  e.dvfs.freq_max = MegaHertz{3900};
  e.dvfs.freq_max_multi = MegaHertz{3700};
  // The K-part runs unlocked: PL1 = PL2 = 241 W on typical boards.
  m.rapl = RaplSpec{true, Watts{125.0}, Watts{241.0}, 28.0, 2.5, Watts{9.0}};
  m.thermal = ThermalSpec{Celsius{25.0}, Celsius{35.0}, Celsius{100.0},
                          0.28, 260.0, 3.0};
  return m;
}

MachineSpec sierra_forest_e_only(int cores) {
  MachineSpec m;
  m.name = "sierra_forest_e_only";
  m.cpu_model_string = "Intel(R) Xeon(R) 6E (Sierra Forest)";
  m.vendor = Vendor::kIntel;
  m.exposes_cpuid_hybrid = false;  // homogeneous: leaf 0x1A is moot

  CoreTypeSpec e;
  e.name = "E-core";
  e.uarch_name = "Crestmont";
  e.pmu_sysfs_name = "cpu";  // single PMU keeps the traditional name
  e.pfm_pmu_name = "srf";
  e.cpu_capacity = 1024;  // nothing to be relative to
  e.smt_per_core = 1;
  e.num_gp_counters = 8;
  e.num_fixed_counters = 3;
  e.ident.vendor = Vendor::kIntel;
  e.ident.family = 6;
  e.ident.model = 0xAF;
  e.ident.intel_kind = IntelCoreKind::kAtom;
  e.perf.base_ipc = 3.4;
  e.perf.flops_per_cycle_dp = 8.0;
  e.perf.llc_miss_latency_ns = 95.0;
  e.perf.mlp_overlap = 0.5;
  e.cache = CacheSpec{32 * 1024, 4 * 1024 * 1024, 96 * 1024 * 1024};
  e.dvfs = DvfsSpec{.freq_min = MegaHertz{800},
                    .freq_base = MegaHertz{2200},
                    .freq_max = MegaHertz{3200},
                    .freq_max_multi = MegaHertz{3000},
                    .volt_min = 0.65,
                    .volt_slope_per_ghz = 0.12};
  e.power = PowerSpec{1.2, 0.3};
  m.core_types = {e};
  for (int core = 0; core < cores; ++core) {
    m.cpus.push_back(CpuSlot{core, 0, core, 0});
  }
  m.rapl = RaplSpec{true, Watts{205.0}, Watts{250.0}, 28.0, 2.5, Watts{22.0}};
  m.thermal = ThermalSpec{Celsius{25.0}, Celsius{35.0}, Celsius{95.0},
                          0.20, 400.0, 3.0};
  m.memory = MemorySpec{256LL * 1024 * 1024 * 1024, "256GB DDR5", 250.0};
  return m;
}

MachineSpec granite_rapids_p_only(int cores) {
  MachineSpec m;
  m.name = "granite_rapids_p_only";
  m.cpu_model_string = "Intel(R) Xeon(R) 6P (Granite Rapids)";
  m.vendor = Vendor::kIntel;
  m.exposes_cpuid_hybrid = false;

  CoreTypeSpec p;
  p.name = "P-core";
  p.uarch_name = "RedwoodCove";
  p.pmu_sysfs_name = "cpu";
  p.pfm_pmu_name = "gnr";
  p.cpu_capacity = 1024;
  p.smt_per_core = 2;
  p.num_gp_counters = 8;
  p.num_fixed_counters = 4;
  p.ident.vendor = Vendor::kIntel;
  p.ident.family = 6;
  p.ident.model = 0xAD;
  p.ident.intel_kind = IntelCoreKind::kCore;
  p.perf.base_ipc = 5.0;
  p.perf.flops_per_cycle_dp = 32.0;  // AVX-512, 2 FMA ports
  p.perf.llc_miss_latency_ns = 90.0;
  p.perf.mlp_overlap = 0.75;
  p.cache = CacheSpec{48 * 1024, 2 * 1024 * 1024, 288 * 1024 * 1024};
  p.dvfs = DvfsSpec{.freq_min = MegaHertz{800},
                    .freq_base = MegaHertz{2300},
                    .freq_max = MegaHertz{3900},
                    .freq_max_multi = MegaHertz{3400},
                    .volt_min = 0.68,
                    .volt_slope_per_ghz = 0.15};
  p.power = PowerSpec{2.4, 0.6};
  m.core_types = {p};
  int cpu = 0;
  for (int core = 0; core < cores; ++core) {
    for (int thread = 0; thread < 2; ++thread) {
      m.cpus.push_back(CpuSlot{cpu++, 0, core, 0});
    }
  }
  m.rapl = RaplSpec{true, Watts{350.0}, Watts{420.0}, 28.0, 2.5, Watts{35.0}};
  m.thermal = ThermalSpec{Celsius{25.0}, Celsius{35.0}, Celsius{95.0},
                          0.12, 500.0, 3.0};
  m.memory = MemorySpec{512LL * 1024 * 1024 * 1024, "512GB DDR5", 350.0};
  return m;
}

MachineSpec arm_three_type() {
  // Modeled loosely on a phone SoC: 1 prime + 3 big + 4 little, with the
  // 250/512/1024 capacity split the paper mentions seeing in the wild.
  MachineSpec m;
  m.name = "arm_three_type";
  m.cpu_model_string = "Synthetic Tri-Cluster SoC";
  m.vendor = Vendor::kArm;
  m.exposes_cpu_capacity = true;
  m.firmware = FirmwareNaming::kAcpi;

  CoreTypeSpec prime;
  prime.name = "prime";
  prime.uarch_name = "Cortex-X1";
  prime.pmu_sysfs_name = "armv8_cortex_x1";
  prime.pfm_pmu_name = "arm_x1";
  prime.cpu_capacity = 1024;
  prime.num_gp_counters = 6;
  prime.num_fixed_counters = 1;
  prime.ident.vendor = Vendor::kArm;
  prime.ident.arm_part = 0xd44;
  prime.perf = UarchPerf{3.6, 8.0, 100.0, 16.0, 0.6};
  prime.dvfs = DvfsSpec{.freq_min = MegaHertz{500},
                    .freq_base = MegaHertz{1600},
                    .freq_max = MegaHertz{2800},
                    .volt_min = 0.75,
                    .volt_slope_per_ghz = 0.25};
  prime.power = PowerSpec{2.2, 0.15};

  CoreTypeSpec big = prime;
  big.name = "big";
  big.uarch_name = "Cortex-A78";
  big.pmu_sysfs_name = "armv8_cortex_a78";
  big.pfm_pmu_name = "arm_a78";
  big.cpu_capacity = 512;
  big.ident.arm_part = 0xd41;
  big.perf = UarchPerf{2.8, 8.0, 110.0, 14.0, 0.5};
  big.dvfs = DvfsSpec{.freq_min = MegaHertz{500},
                    .freq_base = MegaHertz{1400},
                    .freq_max = MegaHertz{2400},
                    .volt_min = 0.75,
                    .volt_slope_per_ghz = 0.22};
  big.power = PowerSpec{1.4, 0.10};

  CoreTypeSpec little = prime;
  little.name = "little";
  little.uarch_name = "Cortex-A55";
  little.pmu_sysfs_name = "armv8_cortex_a55";
  little.pfm_pmu_name = "arm_a55";
  little.cpu_capacity = 250;
  little.ident.arm_part = 0xd05;
  little.perf = UarchPerf{1.3, 2.0, 140.0, 8.0, 0.15};
  little.dvfs = DvfsSpec{.freq_min = MegaHertz{300},
                    .freq_base = MegaHertz{1000},
                    .freq_max = MegaHertz{1800},
                    .volt_min = 0.80,
                    .volt_slope_per_ghz = 0.20};
  little.power = PowerSpec{0.45, 0.04};

  m.core_types = {prime, big, little};
  int cpu = 0;
  for (int i = 0; i < 4; ++i) m.cpus.push_back(CpuSlot{cpu++, 2, i, 0});
  for (int i = 4; i < 7; ++i) m.cpus.push_back(CpuSlot{cpu++, 1, i, 1});
  m.cpus.push_back(CpuSlot{cpu++, 0, 7, 2});

  m.rapl.present = false;
  m.thermal = ThermalSpec{Celsius{25.0}, Celsius{35.0}, Celsius{90.0},
                          10.0, 4.5, 5.0};
  m.memory = MemorySpec{8LL * 1024 * 1024 * 1024, "8GB LPDDR5", 25.0};
  return m;
}

MachineSpec meteor_lake_like() {
  MachineSpec m;
  m.name = "meteor_lake_like";
  m.cpu_model_string = "Intel(R) Core(TM) Ultra 7 (Meteor Lake-like)";
  m.vendor = Vendor::kIntel;
  m.exposes_cpuid_hybrid = true;
  m.exposes_cpu_capacity = false;
  m.firmware = FirmwareNaming::kAcpi;

  CoreTypeSpec p;
  p.name = "P-core";
  p.uarch_name = "RedwoodCove";
  p.pmu_sysfs_name = "cpu_core";
  p.pfm_pmu_name = "mtl_rwc";
  p.cpu_capacity = 1024;
  p.smt_per_core = 2;
  p.num_gp_counters = 8;
  p.num_fixed_counters = 4;            // incl. the topdown slots counter
  p.ident.vendor = Vendor::kIntel;
  p.ident.family = 6;
  p.ident.model = 0xAA;                // Meteor Lake
  p.ident.stepping = 4;
  p.ident.intel_kind = IntelCoreKind::kCore;
  p.perf.base_ipc = 4.8;
  p.perf.flops_per_cycle_dp = 16.0;
  p.perf.llc_miss_latency_ns = 78.0;
  p.perf.mlp_overlap = 0.74;
  p.perf.branch_miss_penalty_cycles = 17.0;
  p.cache = CacheSpec{48 * 1024, 2 * 1024 * 1024, 24 * 1024 * 1024};
  p.dvfs = DvfsSpec{.freq_min = MegaHertz{700},
                    .freq_base = MegaHertz{1400},
                    .freq_max = MegaHertz{4800},
                    .freq_max_multi = MegaHertz{4500},
                    .volt_min = 0.66,
                    .volt_slope_per_ghz = 0.16};
  p.power = PowerSpec{/*c_dyn=*/1.45, /*leakage_w=*/0.45};

  CoreTypeSpec e;
  e.name = "E-core";
  e.uarch_name = "Crestmont";
  e.pmu_sysfs_name = "cpu_atom";
  e.pfm_pmu_name = "mtl_cmt";
  e.cpu_capacity = 590;
  e.smt_per_core = 1;
  e.num_gp_counters = 6;
  e.num_fixed_counters = 3;
  e.ident = p.ident;                   // same family/model/stepping (§IV-B)
  e.ident.intel_kind = IntelCoreKind::kAtom;
  e.perf.base_ipc = 3.3;
  e.perf.flops_per_cycle_dp = 8.0;
  e.perf.llc_miss_latency_ns = 88.0;
  e.perf.mlp_overlap = 0.46;
  e.perf.branch_miss_penalty_cycles = 13.0;
  e.cache = CacheSpec{32 * 1024, 2 * 1024 * 1024, 24 * 1024 * 1024};
  e.dvfs = DvfsSpec{.freq_min = MegaHertz{700},
                    .freq_base = MegaHertz{900},
                    .freq_max = MegaHertz{3800},
                    .freq_max_multi = MegaHertz{3500},
                    .volt_min = 0.64,
                    .volt_slope_per_ghz = 0.14};
  e.power = PowerSpec{/*c_dyn=*/1.18, /*leakage_w=*/0.20};

  // The low-power island: architecturally Crestmont like the E-cores —
  // CPUID leaf 0x1A reports the same kAtom kind — but on its own PMU
  // ("cpu_lowpower"), its own low-frequency bins, and off the ring bus.
  CoreTypeSpec lpe = e;
  lpe.name = "LP-E-core";
  lpe.uarch_name = "Crestmont-LP";
  lpe.pmu_sysfs_name = "cpu_lowpower";
  lpe.pfm_pmu_name = "mtl_lpe";
  lpe.cpu_capacity = 310;
  lpe.perf.base_ipc = 3.0;
  lpe.perf.llc_miss_latency_ns = 110.0;  // SoC-tile memory path
  lpe.perf.mlp_overlap = 0.40;
  lpe.cache = CacheSpec{32 * 1024, 2 * 1024 * 1024, 2 * 1024 * 1024};
  lpe.dvfs = DvfsSpec{.freq_min = MegaHertz{400},
                      .freq_base = MegaHertz{700},
                      .freq_max = MegaHertz{2500},
                      .freq_max_multi = MegaHertz{2100},
                      .volt_min = 0.60,
                      .volt_slope_per_ghz = 0.13};
  lpe.power = PowerSpec{/*c_dyn=*/0.75, /*leakage_w=*/0.08};

  m.core_types = {p, e, lpe};

  // Logical CPUs: 0-11 = 6 P-cores x 2 threads, 12-19 = 8 E-cores,
  // 20-21 = 2 LP-E cores — matching Linux enumeration on MTL-H parts.
  int cpu = 0;
  for (int core = 0; core < 6; ++core) {
    for (int thread = 0; thread < 2; ++thread) {
      m.cpus.push_back(CpuSlot{cpu++, /*type=*/0, core, /*cluster=*/0});
    }
  }
  for (int core = 6; core < 14; ++core) {
    m.cpus.push_back(CpuSlot{cpu++, /*type=*/1, core, /*cluster=*/1});
  }
  for (int core = 14; core < 16; ++core) {
    m.cpus.push_back(CpuSlot{cpu++, /*type=*/2, core, /*cluster=*/2});
  }

  m.rapl = RaplSpec{true, Watts{28.0}, Watts{115.0}, 28.0, 2.5, Watts{6.0}};
  m.thermal = ThermalSpec{Celsius{25.0}, Celsius{35.0}, Celsius{100.0},
                          0.60, 90.0, 3.0};
  m.memory = MemorySpec{32LL * 1024 * 1024 * 1024, "32GB LPDDR5x", 55.0};
  return m;
}

MachineSpec arm_dynamiq() {
  // A DynamIQ phone SoC: 1 Cortex-X2 + 3 Cortex-A710 + 4 Cortex-A510,
  // little cluster enumerated first (like the RK3399), every PMU hiding
  // behind an ambiguous devicetree "armv8_pmuv3_N" name so only MIDR
  // and cpu_capacity can tell the three clusters apart.
  MachineSpec m;
  m.name = "arm_dynamiq";
  m.cpu_model_string = "DynamIQ Tri-Cluster SoC";
  m.vendor = Vendor::kArm;
  m.exposes_cpu_capacity = true;
  m.firmware = FirmwareNaming::kDevicetree;

  CoreTypeSpec big;
  big.name = "big";
  big.uarch_name = "Cortex-X2";
  big.pmu_sysfs_name = "armv8_pmuv3_2";  // devicetree ambiguity (§IV-B)
  big.pfm_pmu_name = "arm_x2";
  big.cpu_capacity = 1024;
  big.num_gp_counters = 6;
  big.num_fixed_counters = 1;
  big.ident.vendor = Vendor::kArm;
  big.ident.arm_implementer = 0x41;
  big.ident.arm_part = 0xd48;  // Cortex-X2
  big.ident.arm_variant = 0;
  big.ident.arm_revision = 1;
  big.perf = UarchPerf{3.8, 8.0, 95.0, 16.0, 0.62};
  big.cache = CacheSpec{64 * 1024, 1024 * 1024, 6 * 1024 * 1024};
  big.dvfs = DvfsSpec{.freq_min = MegaHertz{500},
                      .freq_base = MegaHertz{1700},
                      .freq_max = MegaHertz{3000},
                      .volt_min = 0.75,
                      .volt_slope_per_ghz = 0.25};
  big.power = PowerSpec{2.4, 0.16};

  CoreTypeSpec mid = big;
  mid.name = "mid";
  mid.uarch_name = "Cortex-A710";
  mid.pmu_sysfs_name = "armv8_pmuv3_1";
  mid.pfm_pmu_name = "arm_a710";
  mid.cpu_capacity = 744;
  mid.ident.arm_part = 0xd47;  // Cortex-A710
  mid.perf = UarchPerf{3.0, 8.0, 105.0, 14.0, 0.52};
  mid.cache = CacheSpec{32 * 1024, 512 * 1024, 6 * 1024 * 1024};
  mid.dvfs = DvfsSpec{.freq_min = MegaHertz{500},
                      .freq_base = MegaHertz{1500},
                      .freq_max = MegaHertz{2500},
                      .volt_min = 0.75,
                      .volt_slope_per_ghz = 0.22};
  mid.power = PowerSpec{1.5, 0.11};

  CoreTypeSpec little = big;
  little.name = "little";
  little.uarch_name = "Cortex-A510";
  little.pmu_sysfs_name = "armv8_pmuv3_0";
  little.pfm_pmu_name = "arm_a510";
  little.cpu_capacity = 286;
  little.ident.arm_part = 0xd46;  // Cortex-A510
  little.ident.arm_revision = 2;
  little.perf = UarchPerf{1.4, 2.0, 135.0, 8.0, 0.18};
  little.cache = CacheSpec{32 * 1024, 256 * 1024, 6 * 1024 * 1024};
  little.dvfs = DvfsSpec{.freq_min = MegaHertz{300},
                         .freq_base = MegaHertz{900},
                         .freq_max = MegaHertz{2000},
                         .volt_min = 0.78,
                         .volt_slope_per_ghz = 0.20};
  little.power = PowerSpec{0.5, 0.04};

  m.core_types = {big, mid, little};
  int cpu = 0;
  for (int i = 0; i < 4; ++i) m.cpus.push_back(CpuSlot{cpu++, 2, i, 0});
  for (int i = 4; i < 7; ++i) m.cpus.push_back(CpuSlot{cpu++, 1, i, 1});
  m.cpus.push_back(CpuSlot{cpu++, 0, 7, 2});

  m.rapl.present = false;
  m.thermal = ThermalSpec{Celsius{25.0}, Celsius{35.0}, Celsius{95.0},
                          8.0, 5.0, 5.0};
  m.cluster_thermal = {
      ThermalSpec{Celsius{25.0}, Celsius{35.0}, Celsius{95.0}, 8.0, 5.0, 5.0},
      ThermalSpec{Celsius{25.0}, Celsius{35.0}, Celsius{95.0}, 12.0, 4.5, 5.0},
      ThermalSpec{Celsius{25.0}, Celsius{35.0}, Celsius{95.0}, 18.0, 4.0, 5.0},
  };
  m.memory = MemorySpec{12LL * 1024 * 1024 * 1024, "12GB LPDDR5", 30.0};
  return m;
}

std::optional<MachineSpec> machine_preset_by_name(std::string_view name) {
  struct Entry {
    std::string_view alias;
    MachineSpec (*make)();
  };
  // Catalog order is also the order machine_preset_names() reports and
  // the order the validation tool sweeps.
  static constexpr Entry kCatalog[] = {
      {"raptorlake", [] { return raptor_lake_i7_13700(); }},
      {"orangepi", [] { return orangepi800_rk3399(); }},
      {"xeon", [] { return homogeneous_xeon(); }},
      {"tritype", [] { return arm_three_type(); }},
      {"alderlake", [] { return alder_lake_i9_12900k(); }},
      {"sierraforest", [] { return sierra_forest_e_only(); }},
      {"graniterapids", [] { return granite_rapids_p_only(); }},
      {"meteorlake", [] { return meteor_lake_like(); }},
      {"dynamiq", [] { return arm_dynamiq(); }},
  };
  for (const Entry& entry : kCatalog) {
    if (name == entry.alias) return entry.make();
  }
  // Full MachineSpec::name spellings resolve too.
  for (const Entry& entry : kCatalog) {
    MachineSpec m = entry.make();
    if (name == m.name) return m;
  }
  return std::nullopt;
}

std::vector<std::string> machine_preset_names() {
  return {"raptorlake",    "orangepi",      "xeon",
          "tritype",       "alderlake",     "sierraforest",
          "graniterapids", "meteorlake",    "dynamiq"};
}

}  // namespace hetpapi::cpumodel
