// Lumped-RC thermal model plus the throttling state machine.
//
// dT/dt = (P - (T - T_ambient) / R) / C
//
// The Raptor Lake box has a big cooler (high C, low R): at 65 W it
// settles far below the 100 C limit and never throttles (Figure 2). The
// OrangePi's passive case (low C, high R per cluster) pushes the big
// cluster past its 85 C trip within seconds of running HPL at 1.8 GHz,
// producing the sawtooth of Figure 3.
#pragma once

#include "base/units.hpp"
#include "cpumodel/machine.hpp"

namespace hetpapi::cpumodel {

class ThermalNode {
 public:
  explicit ThermalNode(const ThermalSpec& spec)
      : spec_(spec), temp_(spec.idle_settle) {}

  /// Integrate one timestep with `power` flowing into the node.
  void step(SimDuration dt, Watts power);

  Celsius temperature() const { return temp_; }
  const ThermalSpec& spec() const { return spec_; }

  /// Equilibrium temperature at constant power (for tests/calibration).
  Celsius equilibrium(Watts power) const {
    return Celsius{spec_.ambient.value + power.value * spec_.r_thermal_c_per_w};
  }

  /// Reset to the settled pre-run temperature (the paper waits for the
  /// package to settle at 35 C before each run).
  void reset() { temp_ = spec_.idle_settle; }
  void set_temperature(Celsius t) { temp_ = t; }

 private:
  ThermalSpec spec_;
  Celsius temp_;
};

/// Step-wise thermal throttle, modelling the kernel's cpufreq cooling
/// device: above the trip point the allowed frequency ratio ramps down;
/// once the node cools below (trip - hysteresis) it ramps back up.
class ThermalThrottle {
 public:
  explicit ThermalThrottle(const ThermalSpec& spec) : spec_(spec) {}

  /// Update throttle level from the node's temperature. Returns the
  /// allowed fraction of f_max in (0, 1].
  double update(SimDuration dt, Celsius temperature);

  double level() const { return level_; }
  bool throttling() const { return level_ < 1.0; }
  /// Total time spent with the throttle engaged (reported by telemetry).
  SimDuration throttled_time() const { return throttled_time_; }

 private:
  ThermalSpec spec_;
  double level_ = 1.0;
  SimDuration throttled_time_{0};
};

}  // namespace hetpapi::cpumodel
