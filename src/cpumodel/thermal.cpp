#include "cpumodel/thermal.hpp"

#include <algorithm>
#include <chrono>

namespace hetpapi::cpumodel {

void ThermalNode::step(SimDuration dt, Watts power) {
  const double dt_s = std::chrono::duration<double>(dt).count();
  if (dt_s <= 0.0) return;
  const double leak =
      (temp_.value - spec_.ambient.value) / spec_.r_thermal_c_per_w;
  temp_.value += (power.value - leak) * dt_s / spec_.c_thermal_j_per_c;
  temp_.value = std::max(temp_.value, spec_.ambient.value);
}

double ThermalThrottle::update(SimDuration dt, Celsius temperature) {
  const double dt_s = std::chrono::duration<double>(dt).count();
  const double trip = spec_.t_junction_max.value;
  // Ramp rates chosen to match observed cooling-device behaviour: fast
  // back-off (full range in ~1.5 s), slow recovery (~6 s) — this is what
  // shapes the big-cluster sawtooth in Figure 3.
  constexpr double kDownPerSecond = 0.65;
  constexpr double kUpPerSecond = 0.16;
  if (temperature.value > trip) {
    level_ -= kDownPerSecond * dt_s;
  } else if (temperature.value < trip - spec_.hysteresis_c) {
    level_ += kUpPerSecond * dt_s;
  }
  level_ = std::clamp(level_, 0.25, 1.0);
  if (level_ < 1.0) {
    throttled_time_ += dt;
  }
  return level_;
}

}  // namespace hetpapi::cpumodel
