// Descriptors for heterogeneous core types.
//
// A "core type" bundles everything that differs between the cores of a
// hybrid processor: the microarchitecture performance profile, the PMU
// the kernel exports for it, the identification data the various
// detection strategies (§IV-B of the paper) look at, and the scheduler
// capacity value.
#pragma once

#include <cstdint>
#include <string>

#include "base/units.hpp"

namespace hetpapi::cpumodel {

/// Index into MachineSpec::core_types. A machine usually has 2 types
/// (P/E, big/LITTLE) but ARM systems with 3 exist and the kernel design
/// allows more, so nothing below assumes 2.
using CoreTypeId = std::int32_t;

enum class Vendor { kIntel, kArm };

/// Intel CPUID leaf 0x1A core-type values (EAX[31:24]).
enum class IntelCoreKind : std::uint8_t {
  kNone = 0x00,
  kAtom = 0x20,  // E-core
  kCore = 0x40,  // P-core
};

/// Identification data exposed through /proc/cpuinfo and CPUID/MIDR.
/// The paper stresses the asymmetry: ARM big/little cores have distinct
/// part numbers, while Intel P/E cores share family/model/stepping and
/// are only distinguishable via CPUID leaf 0x1A.
struct CoreIdent {
  Vendor vendor = Vendor::kIntel;
  // x86: family/model/stepping (shared across hybrid core types).
  int family = 6;
  int model = 0;
  int stepping = 0;
  IntelCoreKind intel_kind = IntelCoreKind::kNone;
  // ARM: MIDR fields (differ per core type).
  int arm_implementer = 0x41;  // 'A' = ARM Ltd
  int arm_part = 0;            // e.g. 0xd08 = Cortex-A72, 0xd03 = Cortex-A53
  int arm_variant = 0;
  int arm_revision = 0;
};

/// Performance profile of a microarchitecture, reduced to the handful of
/// parameters the timing model integrates per tick.
struct UarchPerf {
  /// Peak sustained instructions/cycle for compute-bound SIMD code.
  double base_ipc = 2.0;
  /// Peak double-precision flops/cycle (SIMD width x FMA ports x 2).
  double flops_per_cycle_dp = 8.0;
  /// Average LLC miss service latency (constant in wall-clock time, so
  /// its cycle cost grows with frequency: the memory wall).
  double llc_miss_latency_ns = 70.0;
  /// Branch misprediction penalty in cycles.
  double branch_miss_penalty_cycles = 15.0;
  /// Fraction of LLC misses whose latency is hidden by out-of-order
  /// overlap (big cores hide more).
  double mlp_overlap = 0.6;
};

/// Per-core-type cache description (drives LLC behaviour differences and
/// the /sys/.../cache detection heuristic).
struct CacheSpec {
  std::int64_t l1d_bytes = 48 * 1024;
  std::int64_t l2_bytes = 2 * 1024 * 1024;
  /// Share of the package LLC reachable from this core type.
  std::int64_t llc_bytes = 30 * 1024 * 1024;
};

/// DVFS operating range. Voltage model: V(f) = volt_min + volt_slope *
/// (f - freq_min), clamped at freq_min.
struct DvfsSpec {
  MegaHertz freq_min{800};
  MegaHertz freq_base{2100};
  /// Single-core max turbo (what the spec sheet advertises).
  MegaHertz freq_max{5100};
  /// Multi-core turbo ceiling: the frequency the turbo tables allow when
  /// most cores of this type are active. Defaults to freq_max; hybrid
  /// parts bin it well below the headline single-core turbo.
  MegaHertz freq_max_multi{0};
  double volt_min = 0.70;        // volts at freq_min
  double volt_slope_per_ghz = 0.22;

  MegaHertz max_for(bool multi_core_active) const {
    if (multi_core_active && freq_max_multi.value > 0) return freq_max_multi;
    return freq_max;
  }

  double voltage_at(MegaHertz f) const {
    const double dv = volt_slope_per_ghz * (f.gigahertz() - freq_min.gigahertz());
    return volt_min + (dv > 0.0 ? dv : 0.0);
  }
};

/// Dynamic/static power coefficients for one core.
/// P_dyn = activity * c_dyn * f_GHz * V^2 ; P_static = leakage_w.
struct PowerSpec {
  double c_dyn = 2.2;       // W per GHz at V=1 and activity=1
  double leakage_w = 0.35;  // per-core static power while online
};

/// Everything that characterizes one core type of a hybrid processor.
struct CoreTypeSpec {
  std::string name;        // "P-core", "E-core", "big", "LITTLE"
  std::string uarch_name;  // "GoldenCove", "Gracemont", "Cortex-A72", ...
  /// Kernel PMU name as it appears under /sys/devices/ ("cpu_core",
  /// "cpu_atom", "armv8_cortex_a72", or the ambiguous devicetree
  /// "armv8_pmuv3_N" the paper warns about).
  std::string pmu_sysfs_name;
  /// libpfm4-style PMU name used in event strings ("adl_glc", "adl_grt",
  /// "arm_a72", "arm_a53").
  std::string pfm_pmu_name;
  /// Scheduler capacity 0..1024 (exposed via cpu_capacity on ARM only).
  int cpu_capacity = 1024;
  /// Hardware threads per core (P-cores have 2; E and ARM cores 1).
  int smt_per_core = 1;
  /// Number of general-purpose hardware counters on this PMU; exceeding
  /// this forces multiplexing.
  int num_gp_counters = 8;
  /// Fixed counters (cycles/instructions/refcycles style).
  int num_fixed_counters = 3;

  CoreIdent ident;
  UarchPerf perf;
  CacheSpec cache;
  DvfsSpec dvfs;
  PowerSpec power;
};

}  // namespace hetpapi::cpumodel
