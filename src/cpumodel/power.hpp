// Package power model and RAPL (Running Average Power Limit) emulation.
//
// RAPL enforces two limits (Figure 2 of the paper): a short-term cap
// (PL2, 219 W on the studied system) averaged over a small window, and a
// long-term cap (PL1, 65 W) averaged over a large window. From idle the
// long-window average is low, so the package may burn up to PL2 for a
// few seconds (the "initial spike" in Figures 1-2) before the long
// average saturates and sustained power falls to PL1.
#pragma once

#include "base/units.hpp"
#include "cpumodel/machine.hpp"
#include "cpumodel/types.hpp"

namespace hetpapi::cpumodel {

/// Instantaneous power of one logical CPU.
/// `util` is the busy fraction of the interval (0..1); `activity` is the
/// switching-activity factor of the running code (SIMD-dense HPL ~1.0,
/// scalar ~0.6, idle 0). SMT threads of one core share the core's
/// dynamic power, handled by the caller dividing util across threads.
Watts cpu_power(const CoreTypeSpec& type, MegaHertz freq, double util,
                double activity);

/// Running-average power limiter with microjoule energy accounting
/// (RAPL's native unit) and the standard MSR-style wraparound.
class RaplModel {
 public:
  explicit RaplModel(const RaplSpec& spec);

  /// Power the package is currently allowed to draw, considering both
  /// sliding windows. Infinite when RAPL is absent.
  Watts allowed_power() const;

  /// Integrate `power` over `dt`: advances energy counters and both
  /// window averages.
  void step(SimDuration dt, Watts power);

  /// Cumulative package energy counter in microjoules, wrapping at 2^32
  /// like the real MSR_PKG_ENERGY_STATUS register. The telemetry module
  /// must handle the wrap, exactly as the paper's mon_hpl.py does.
  std::uint32_t energy_status_uj() const;

  /// Unwrapped total for verification (sim-only backdoor).
  Joules total_energy() const { return total_energy_; }

  Watts long_window_average() const { return Watts{avg_long_}; }
  Watts short_window_average() const { return Watts{avg_short_}; }
  const RaplSpec& spec() const { return spec_; }

 private:
  RaplSpec spec_;
  double avg_long_ = 0.0;   // EWMA over tau_long
  double avg_short_ = 0.0;  // EWMA over tau_short
  Joules total_energy_{0.0};
};

/// Wall-socket power meter (WattsUpPro stand-in for the OrangePi board,
/// Figure 3): board idle draw plus SoC power through PSU efficiency.
class BoardPowerMeter {
 public:
  BoardPowerMeter(Watts board_idle, double psu_efficiency)
      : board_idle_(board_idle), psu_efficiency_(psu_efficiency) {}

  Watts reading(Watts soc_power) const {
    return Watts{(board_idle_.value + soc_power.value) / psu_efficiency_};
  }

 private:
  Watts board_idle_;
  double psu_efficiency_;
};

}  // namespace hetpapi::cpumodel
