// Machine topology: which logical CPUs exist, what core type each one
// is, and the package-level power/thermal envelope. Presets model the
// two systems the paper evaluates (Tables I and IV) plus a homogeneous
// control machine.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.hpp"
#include "base/units.hpp"
#include "cpumodel/types.hpp"

namespace hetpapi::cpumodel {

/// One logical CPU (a hardware thread).
struct CpuSlot {
  int cpu = 0;           // logical index, as in /sys/devices/system/cpu/cpuN
  CoreTypeId type = 0;   // index into MachineSpec::core_types
  int core_id = 0;       // physical core (SMT siblings share this)
  int cluster_id = 0;    // ARM cluster / Intel module grouping
};

/// Package power-limit (RAPL) configuration. The Raptor Lake system in
/// the paper enforces PL1 = 65 W (long term) and PL2 = 219 W (short
/// term); the OrangePi has no RAPL and is purely thermally limited.
struct RaplSpec {
  bool present = true;
  Watts pl1{65.0};
  Watts pl2{219.0};
  /// Time constants of the two sliding windows (seconds).
  double tau_long_s = 28.0;
  double tau_short_s = 2.5;
  /// Non-core package power (memory controller, fabric, idle uncore).
  Watts uncore_base{8.0};
};

/// Lumped RC thermal node for the package (plus per-cluster nodes on the
/// ARM preset, whose tiny heatsink is the whole story of Figure 3).
struct ThermalSpec {
  Celsius ambient{25.0};
  Celsius idle_settle{35.0};      // paper waits for 35 C before each run
  Celsius t_junction_max{100.0};  // trip point for throttling
  double r_thermal_c_per_w = 0.55;  // junction-to-ambient resistance
  double c_thermal_j_per_c = 120.0; // thermal capacitance
  /// Throttle hysteresis: once tripped, throttle until T < trip - hyst.
  double hysteresis_c = 3.0;
};

struct MemorySpec {
  std::int64_t bytes = 32LL * 1024 * 1024 * 1024;
  std::string description = "32GB DDR5, 4.4G T/s";
  /// Sustained bandwidth cap shared by all cores (GB/s); contention above
  /// this inflates effective LLC miss latency.
  double bandwidth_gbs = 70.0;
};

/// How the firmware names ARM PMUs in sysfs. The paper notes devicetree
/// systems often expose ambiguous names ("armv8_pmuv3_0"), while ACPI
/// servers use descriptive ones; detection code must survive both.
enum class FirmwareNaming { kAcpi, kDevicetree };

struct MachineSpec {
  std::string name;
  std::string cpu_model_string;  // /proc/cpuinfo "model name"
  Vendor vendor = Vendor::kIntel;
  std::vector<CoreTypeSpec> core_types;
  std::vector<CpuSlot> cpus;
  RaplSpec rapl;
  ThermalSpec thermal;
  /// Per-cluster thermal nodes (empty = package-level only).
  std::vector<ThermalSpec> cluster_thermal;
  MemorySpec memory;
  FirmwareNaming firmware = FirmwareNaming::kAcpi;
  /// Whether the kernel exposes /sys/devices/system/cpu/cpuX/cpu_capacity
  /// (ARM arch_topology does; x86 does not — §IV-B).
  bool exposes_cpu_capacity = false;
  /// Whether CPUID leaf 0x1A hybrid information exists (Intel only).
  bool exposes_cpuid_hybrid = false;

  bool is_hybrid() const { return core_types.size() > 1; }
  int num_cpus() const { return static_cast<int>(cpus.size()); }

  const CoreTypeSpec& type_of(int cpu) const {
    return core_types[static_cast<std::size_t>(cpus[static_cast<std::size_t>(cpu)].type)];
  }

  /// Logical CPUs belonging to a core type.
  std::vector<int> cpus_of_type(CoreTypeId type) const;

  /// First hardware thread of each physical core of a type ("one thread
  /// per core", as all the paper's HPL runs are configured).
  std::vector<int> primary_threads_of_type(CoreTypeId type) const;

  /// Validate internal consistency (indices in range, no duplicate cpu
  /// ids, SMT grouping sane). All presets pass; fuzzed specs in tests
  /// exercise the failure paths.
  Status validate() const;
};

/// Table I: 13th Gen Intel Core i7-13700 — 8 P-cores (16 threads)
/// 2.1-5.1 GHz + 8 E-cores 1.5-4.1 GHz, 32 GB DDR5, PL1 65 W / PL2 219 W.
/// Logical CPUs 0-15 are P threads (even = first thread of a core),
/// 16-23 are E-cores, matching the paper's taskset list "0,2,...,14,16-24".
MachineSpec raptor_lake_i7_13700();

/// Table IV: OrangePi 800 (Rockchip RK3399) — 2x Cortex-A72 @1.8 GHz +
/// 4x Cortex-A53 @1.4 GHz, 4 GB LPDDR4, passively cooled (throttles).
MachineSpec orangepi800_rk3399();

/// Homogeneous control machine (a plain Xeon-like part): used by tests
/// to confirm the hybrid machinery degrades gracefully to the
/// traditional single-PMU world.
MachineSpec homogeneous_xeon(int cores = 8);

/// Hypothetical three-type ARM system (the paper notes ARM CPUs with
/// three core types exist and more are plausible); stresses that nothing
/// hard-codes "two".
MachineSpec arm_three_type();

/// Alder Lake i9-12900K: 8 P + 8 E like Raptor Lake but with the
/// original ADL bins and a 125/241 W power envelope. Shares the adl_glc
/// / adl_grt PMU tables (the paper: "Raptor Lake systems have the same
/// underlying PMU as Alder Lake").
MachineSpec alder_lake_i9_12900k();

/// The paper's §I-A server outlook: Sierra Forest is E-core-only. A
/// homogeneous machine whose single core PMU is nevertheless `cpu_atom`
/// flavoured — detection must not call it hybrid.
MachineSpec sierra_forest_e_only(int cores = 16);

/// Granite Rapids: P-core-only server, the other half of the outlook.
MachineSpec granite_rapids_p_only(int cores = 16);

/// Meteor-Lake-like three-PMU Intel hybrid: P (RedwoodCove, cpu_core) +
/// E (Crestmont, cpu_atom) + low-power-island E (Crestmont-LP,
/// cpu_lowpower). The LP-E cores report the same CPUID leaf 0x1A core
/// kind (0x20, kAtom) as the E-cores — only the PMU topology tells the
/// two apart, the detection scenario the §IV-B ladder must be extended
/// to disambiguate.
MachineSpec meteor_lake_like();

/// ARM DynamIQ big/mid/little triple (Cortex-X2 / A710 / A510) with
/// three distinct MIDR part numbers and capacity values, behind
/// ambiguous devicetree PMU names ("armv8_pmuv3_N") — the worst-case
/// naming the paper warns about, now with three clusters.
MachineSpec arm_dynamiq();

/// Preset catalog: resolve a machine by its short alias (the names the
/// tools accept: "raptorlake", "orangepi", "xeon", "tritype",
/// "alderlake", "sierraforest", "graniterapids", "meteorlake",
/// "dynamiq") or by its full MachineSpec::name. Returns std::nullopt
/// for unknown names.
std::optional<MachineSpec> machine_preset_by_name(std::string_view name);

/// Short aliases of every machine preset, in catalog order.
std::vector<std::string> machine_preset_names();

}  // namespace hetpapi::cpumodel
