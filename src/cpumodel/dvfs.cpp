#include "cpumodel/dvfs.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

namespace hetpapi::cpumodel {

PackageGovernor::PackageGovernor(const MachineSpec& spec, std::uint64_t seed)
    : spec_(spec),
      rapl_(spec.rapl),
      package_node_(spec.thermal),
      package_throttle_(spec.thermal),
      rng_(seed) {
  for (const ThermalSpec& ts : spec_.cluster_thermal) {
    cluster_nodes_.emplace_back(ts);
    cluster_throttles_.emplace_back(ts);
  }
  freq_.resize(static_cast<std::size_t>(spec_.num_cpus()));
  for (int cpu = 0; cpu < spec_.num_cpus(); ++cpu) {
    freq_[static_cast<std::size_t>(cpu)] = spec_.type_of(cpu).dvfs.freq_min;
  }
  busy_per_type_.assign(spec_.core_types.size(), 0);
  // Map logical cpus onto physical-core slots once.
  std::map<int, int> core_slot;
  cpu_to_core_slot_.resize(static_cast<std::size_t>(spec_.num_cpus()));
  for (const CpuSlot& slot : spec_.cpus) {
    const auto [it, inserted] =
        core_slot.emplace(slot.core_id, static_cast<int>(core_loads_.size()));
    if (inserted) {
      CoreLoad load;
      load.type = &spec_.core_types[static_cast<std::size_t>(slot.type)];
      load.type_id = slot.type;
      load.cluster = slot.cluster_id;
      core_loads_.push_back(load);
    }
    cpu_to_core_slot_[static_cast<std::size_t>(slot.cpu)] = it->second;
  }
}

void PackageGovernor::reset() {
  rapl_ = RaplModel(spec_.rapl);
  package_node_.reset();
  package_throttle_ = ThermalThrottle(spec_.thermal);
  for (std::size_t i = 0; i < cluster_nodes_.size(); ++i) {
    cluster_nodes_[i].reset();
    cluster_throttles_[i] = ThermalThrottle(spec_.cluster_thermal[i]);
  }
  for (int cpu = 0; cpu < spec_.num_cpus(); ++cpu) {
    freq_[static_cast<std::size_t>(cpu)] = spec_.type_of(cpu).dvfs.freq_min;
  }
  last_power_ = Watts{0.0};
}

Celsius PackageGovernor::cluster_temperature(int cluster) const {
  if (cluster_nodes_.empty()) return package_node_.temperature();
  return cluster_nodes_[static_cast<std::size_t>(cluster)].temperature();
}

bool PackageGovernor::cluster_throttling(int cluster) const {
  if (cluster_throttles_.empty()) return package_throttle_.throttling();
  return cluster_throttles_[static_cast<std::size_t>(cluster)].throttling();
}

MegaHertz PackageGovernor::freq_at_level(const CoreTypeSpec& type,
                                         bool multi_active, double s,
                                         double thermal_cap) const {
  const MegaHertz lo = type.dvfs.freq_min;
  const MegaHertz hi = type.dvfs.max_for(multi_active) * thermal_cap;
  const MegaHertz ceiling = hi.value > lo.value ? hi : lo;
  return MegaHertz{lo.value + s * (ceiling.value - lo.value)};
}

void PackageGovernor::aggregate_core_loads(std::span<const CpuLoad> loads) {
  for (CoreLoad& core : core_loads_) {
    core.util = 0.0;
    core.activity = 0.0;
  }
  for (std::size_t cpu = 0; cpu < loads.size(); ++cpu) {
    CoreLoad& core =
        core_loads_[static_cast<std::size_t>(cpu_to_core_slot_[cpu])];
    core.util = std::min(1.0, core.util + loads[cpu].util);
    core.activity = std::max(core.activity, loads[cpu].activity);
  }
  std::fill(busy_per_type_.begin(), busy_per_type_.end(), 0);
  for (const CoreLoad& core : core_loads_) {
    if (core.util > 0.01) {
      ++busy_per_type_[static_cast<std::size_t>(core.type_id)];
    }
  }
}

Watts PackageGovernor::power_at_level(
    double s, std::span<const double> thermal_cap) const {
  double total = spec_.rapl.present ? spec_.rapl.uncore_base.value : 0.6;
  for (const CoreLoad& core : core_loads_) {
    const double cap = thermal_cap[static_cast<std::size_t>(core.cluster)];
    const MegaHertz f =
        core.util > 0.01
            ? freq_at_level(*core.type, type_multi_active(core.type_id), s,
                            cap)
            : core.type->dvfs.freq_min;
    total += cpu_power(*core.type, f, core.util, core.activity).value;
  }
  return Watts{total};
}

void PackageGovernor::step(SimDuration dt, std::span<const CpuLoad> loads) {
  assert(loads.size() == freq_.size());

  // 1. Thermal throttle levels per cluster (or package-wide).
  std::array<double, 16> caps_storage;
  std::span<double> caps;
  if (cluster_throttles_.empty()) {
    const double level =
        package_throttle_.update(dt, package_node_.temperature());
    caps_storage.fill(level);
    caps = std::span<double>(caps_storage.data(), caps_storage.size());
  } else {
    for (std::size_t i = 0; i < cluster_throttles_.size(); ++i) {
      caps_storage[i] =
          cluster_throttles_[i].update(dt, cluster_nodes_[i].temperature());
    }
    caps = std::span<double>(caps_storage.data(), cluster_throttles_.size());
  }

  // 2. Highest performance level the RAPL budget allows (bisection; the
  //    power curve is monotone in the level).
  aggregate_core_loads(loads);
  const Watts budget = rapl_.allowed_power();
  double level = 1.0;
  if (power_at_level(1.0, caps).value > budget.value) {
    double lo = 0.0;
    double hi = 1.0;
    for (int iter = 0; iter < 20; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (power_at_level(mid, caps).value > budget.value) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    level = lo;
  }

  // 3. Per-cpu frequencies with a touch of governor jitter; real
  //    P-state selection hunts around the target (the noise band in
  //    Figure 1).
  for (const CpuSlot& slot : spec_.cpus) {
    const CoreTypeSpec& type =
        spec_.core_types[static_cast<std::size_t>(slot.type)];
    const CpuLoad& load = loads[static_cast<std::size_t>(slot.cpu)];
    const double cap = caps[static_cast<std::size_t>(slot.cluster_id)];
    MegaHertz f = load.util > 0.01
                      ? freq_at_level(type, type_multi_active(slot.type),
                                      level, cap)
                      : type.dvfs.freq_min;
    if (load.util > 0.01) {
      f.value += rng_.gaussian(f.value * 0.012);
      f.value = std::clamp(f.value, type.dvfs.freq_min.value,
                           type.dvfs.freq_max.value);
    }
    freq_[static_cast<std::size_t>(slot.cpu)] = f;
  }

  // 4. Account the power actually drawn; integrate thermals.
  last_power_ = power_at_level(level, caps);
  rapl_.step(dt, last_power_);
  package_node_.step(dt, last_power_);
  if (!cluster_nodes_.empty()) {
    // Per-cluster dissipation: own cores' power plus a coupling share of
    // the rest of the SoC (shared silicon and case), which is what lets
    // a busy LITTLE cluster push the big cluster over its trip point.
    constexpr double kClusterCoupling = 0.7;
    std::array<double, 16> cluster_power{};
    double core_total = 0.0;
    for (const CoreLoad& core : core_loads_) {
      const double cap = caps[static_cast<std::size_t>(core.cluster)];
      const MegaHertz f =
          core.util > 0.01
              ? freq_at_level(*core.type, type_multi_active(core.type_id),
                              level, cap)
              : core.type->dvfs.freq_min;
      const double p = cpu_power(*core.type, f, core.util, core.activity).value;
      cluster_power[static_cast<std::size_t>(core.cluster)] += p;
      core_total += p;
    }
    for (std::size_t i = 0; i < cluster_nodes_.size(); ++i) {
      const double own = cluster_power[i];
      const double coupled = kClusterCoupling * (core_total - own);
      cluster_nodes_[i].step(dt, Watts{own + coupled});
    }
  }
}

}  // namespace hetpapi::cpumodel
