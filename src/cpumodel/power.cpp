#include "cpumodel/power.hpp"

#include <cmath>
#include <limits>

namespace hetpapi::cpumodel {

Watts cpu_power(const CoreTypeSpec& type, MegaHertz freq, double util,
                double activity) {
  const double v = type.dvfs.voltage_at(freq);
  const double dyn =
      util * activity * type.power.c_dyn * freq.gigahertz() * v * v;
  return Watts{dyn + type.power.leakage_w};
}

RaplModel::RaplModel(const RaplSpec& spec) : spec_(spec) {}

Watts RaplModel::allowed_power() const {
  if (!spec_.present) return Watts{std::numeric_limits<double>::infinity()};
  // An EWMA-constrained limiter: pick the instantaneous power p such that
  // the window average never exceeds its limit. With avg' = avg +
  // (p - avg) * dt/tau the headroom is (limit - avg) * tau/dt; rather than
  // expose a dt-dependent bound we use the steady-state form: while the
  // average is below the limit, the hard ceiling is the other window's
  // limit; once the average reaches the limit, power is clamped to it.
  const double head_long = spec_.pl1.value - avg_long_;
  const double head_short = spec_.pl2.value - avg_short_;
  // Proportional controller: full PL2 headroom while the long window is
  // cold; approach PL1 smoothly as it warms up. The 6x gain keeps the
  // transition sharp (a few hundred ms) like real firmware.
  double allowed = spec_.pl1.value + head_long * 6.0;
  if (allowed > spec_.pl2.value) allowed = spec_.pl2.value;
  const double short_cap = spec_.pl2.value + head_short * 6.0;
  if (allowed > short_cap) allowed = short_cap;
  if (allowed < spec_.pl1.value * 0.5) allowed = spec_.pl1.value * 0.5;
  return Watts{allowed};
}

void RaplModel::step(SimDuration dt, Watts power) {
  const double dt_s = std::chrono::duration<double>(dt).count();
  if (dt_s <= 0.0) return;
  total_energy_ += power * dt;
  const double a_long = 1.0 - std::exp(-dt_s / spec_.tau_long_s);
  const double a_short = 1.0 - std::exp(-dt_s / spec_.tau_short_s);
  avg_long_ += (power.value - avg_long_) * a_long;
  avg_short_ += (power.value - avg_short_) * a_short;
}

std::uint32_t RaplModel::energy_status_uj() const {
  const double uj = total_energy_.value * 1e6;
  // Wrap modulo 2^32 as the hardware register does.
  return static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(uj) & 0xFFFFFFFFULL);
}

}  // namespace hetpapi::cpumodel
