// Client side of the counter service: synchronous RPC over any
// Connection, with streamed Samples collected out-of-band.
//
// The client is transport-agnostic: over a unix socket receive() blocks
// until the daemon answers; over the loopback transport receive() pumps
// the daemon, so the same synchronous code works single-threaded in
// tests and benches. Sample frames that arrive while an RPC waits for
// its reply are stashed and handed out via take_samples() — a stream
// never desynchronizes the request/reply protocol.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "service/proto.hpp"
#include "service/transport.hpp"

namespace hetpapi::service {

class Client {
 public:
  explicit Client(std::unique_ptr<Connection> conn)
      : conn_(std::move(conn)) {}

  /// Handshake; must be the first call.
  Status hello(const std::string& client_name);

  /// One private session == one daemon-side EventSet.
  Expected<std::uint32_t> open_session(TargetKind kind, std::int64_t target);
  Expected<AddEventsAck> add_events(std::uint32_t session_id,
                                    const std::vector<std::string>& events);
  Status start(std::uint32_t session_id);
  Expected<ReadReply> read(std::uint32_t session_id);

  /// Join (or create) a shared subscription; the ack's shared_key_id
  /// tells you whether you coalesced onto an existing one.
  Expected<SubscribeAck> subscribe(const Subscribe& spec);
  /// v2: join (or create) an aggregated stream — a merged per-core-type
  /// rendition with min/max/avg/σ statistics across the daemon's
  /// downstream tree (or the single local reading on a leaf daemon).
  Expected<AggSubscribeAck> subscribe_aggregate(const AggSubscribe& spec);
  Status unsubscribe(std::uint32_t subscription_id);

  Expected<StatsReply> stats();

  /// Polite teardown: Close, wait for CloseAck, close the connection.
  Status close();

  /// Sweep the transport once for pending bytes, then hand out every
  /// Sample frame collected so far (including ones stashed while an RPC
  /// waited for its reply). Over the unix transport the sweep blocks
  /// until at least one byte arrives, so call it when a sample is due.
  std::vector<WireSample> take_samples();

  /// The aggregate-stream counterpart of take_samples(): sweep once,
  /// then hand out every stashed AggSample.
  std::vector<AggSample> take_agg_samples();

  /// Pull bytes off the transport once and stash any completed frames
  /// (samples into the sample queue). Returns true only when bytes
  /// actually arrived — false on an idle transport or a dead
  /// connection — so callers can drain with `while (pump_once())`.
  bool pump_once();

  /// Non-empty once the daemon said Goodbye (drain, idle, slow-drop).
  const std::string& goodbye_reason() const { return goodbye_reason_; }
  bool connected() const { return conn_ != nullptr && conn_->is_open(); }

  /// Version to offer in Hello (defaults to kProtocolVersion; the
  /// compat tests dial it down to speak v1 at a v2 daemon).
  void set_hello_version(std::uint32_t version) { hello_version_ = version; }
  /// What HelloAck negotiated — min(offered, daemon's version).
  std::uint32_t negotiated_version() const { return negotiated_version_; }

  /// Raw received-byte log for the determinism tests (every byte the
  /// daemon sent us, in order), captured before frame reassembly.
  void set_capture_bytes(bool capture) { capture_bytes_ = capture; }
  const std::vector<std::uint8_t>& captured_bytes() const {
    return captured_bytes_;
  }

 private:
  /// Send `frame_bytes` fully, then wait for a frame of type `expect`
  /// (or kError, which becomes the returned status).
  Expected<Frame> rpc(MsgType expect, const std::vector<std::uint8_t>& frame);
  Status send_all(const std::vector<std::uint8_t>& bytes);
  /// Receive once into the reader; false = nothing arrived.
  Expected<bool> receive_some();

  std::unique_ptr<Connection> conn_;
  FrameReader reader_;
  std::deque<WireSample> samples_;
  std::deque<AggSample> agg_samples_;
  std::string goodbye_reason_;
  std::uint32_t hello_version_ = kProtocolVersion;
  std::uint32_t negotiated_version_ = kProtocolVersion;
  bool capture_bytes_ = false;
  std::vector<std::uint8_t> captured_bytes_;
};

}  // namespace hetpapi::service
