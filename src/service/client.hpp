// Client side of the counter service: synchronous RPC over any
// Connection, with streamed Samples collected out-of-band.
//
// The client is transport-agnostic: over a unix socket receive() blocks
// until the daemon answers; over the loopback transport receive() pumps
// the daemon, so the same synchronous code works single-threaded in
// tests and benches. Sample frames that arrive while an RPC waits for
// its reply are stashed and handed out via take_samples() — a stream
// never desynchronizes the request/reply protocol.
//
// Self-healing (opt in via enable_reconnect): when the transport dies
// the client re-dials through a caller-supplied connection factory
// under bounded exponential backoff with deterministic jitter,
// re-handshakes, and re-subscribes its recorded subscription set. The
// v3 session epoch plus the per-subscription sequence/tick tail lets
// the resumed client account for the outage exactly: same epoch ->
// the precise number of missed samples; changed epoch (daemon
// restarted) -> an explicit unknown gap. An RPC interrupted by a
// reconnect fails with kInterrupted rather than silently re-running —
// the caller decides whether to retry a non-idempotent request.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "service/proto.hpp"
#include "service/transport.hpp"

namespace hetpapi::service {

/// Dials a replacement connection after a transport failure.
using ConnectionFactory =
    std::function<Expected<std::unique_ptr<Connection>>()>;

/// Reconnect policy. All delays are computed deterministically from the
/// seed; the optional sleep hook receives each computed delay (tests
/// capture it, tools pass a real sleep, the loopback default is none —
/// the next dial happens immediately).
struct ReconnectConfig {
  /// Dial attempts per outage before the failure is surfaced.
  int max_attempts = 8;
  std::uint64_t initial_backoff_ms = 10;
  std::uint64_t max_backoff_ms = 1000;
  /// Jitter: each delay is scaled by a factor drawn uniformly from
  /// [1 - jitter_frac, 1 + jitter_frac] off the seeded stream.
  double jitter_frac = 0.2;
  std::uint64_t seed = 1;
  /// Handshake/RPC deadline: consecutive empty receive passes an RPC
  /// tolerates before failing with kInterrupted (a dead-silent daemon
  /// must not hang the client forever). 0 = unlimited.
  int rpc_deadline_pumps = 4096;
  std::function<void(std::uint64_t)> sleep_ms;
};

/// What the reconnect machinery did and measured, surfaced to callers.
struct ResumeStats {
  std::uint64_t reconnects = 0;           // successful resumes
  std::uint64_t attempts = 0;             // dials tried, failures included
  std::uint64_t epoch_changes = 0;        // daemon restarted across a resume
  std::uint64_t resubscribe_failures = 0; // subs the daemon refused on resume
  std::uint64_t gaps = 0;                 // subscriptions that saw a gap
  std::uint64_t unknown_gaps = 0;         // gap unquantifiable (epoch change)
  std::uint64_t samples_missed = 0;       // exact missed count (same epoch)
};

class Client {
 public:
  explicit Client(std::unique_ptr<Connection> conn)
      : conn_(std::move(conn)) {}

  /// Handshake; must be the first call.
  Status hello(const std::string& client_name);

  /// One private session == one daemon-side EventSet.
  Expected<std::uint32_t> open_session(TargetKind kind, std::int64_t target);
  Expected<AddEventsAck> add_events(std::uint32_t session_id,
                                    const std::vector<std::string>& events);
  Status start(std::uint32_t session_id);
  Expected<ReadReply> read(std::uint32_t session_id);

  /// Join (or create) a shared subscription; the ack's shared_key_id
  /// tells you whether you coalesced onto an existing one.
  Expected<SubscribeAck> subscribe(const Subscribe& spec);
  /// v2: join (or create) an aggregated stream — a merged per-core-type
  /// rendition with min/max/avg/σ statistics across the daemon's
  /// downstream tree (or the single local reading on a leaf daemon).
  Expected<AggSubscribeAck> subscribe_aggregate(const AggSubscribe& spec);
  Status unsubscribe(std::uint32_t subscription_id);

  Expected<StatsReply> stats();

  /// Polite teardown: Close, wait for CloseAck, close the connection.
  Status close();

  /// Sweep the transport once for pending bytes, then hand out every
  /// Sample frame collected so far (including ones stashed while an RPC
  /// waited for its reply). Over the unix transport the sweep blocks
  /// until at least one byte arrives, so call it when a sample is due.
  std::vector<WireSample> take_samples();

  /// The aggregate-stream counterpart of take_samples(): sweep once,
  /// then hand out every stashed AggSample.
  std::vector<AggSample> take_agg_samples();

  /// Pull bytes off the transport once and stash any completed frames
  /// (samples into the sample queue). Returns true only when bytes
  /// actually arrived — false on an idle transport or a dead
  /// connection — so callers can drain with `while (pump_once())`.
  bool pump_once();

  /// Non-empty once the daemon said Goodbye (drain, idle, slow-drop).
  const std::string& goodbye_reason() const { return goodbye_reason_; }
  bool connected() const { return conn_ != nullptr && conn_->is_open(); }

  /// Arm auto-reconnect: on a terminal transport error the client dials
  /// `factory` under the config's backoff policy, re-handshakes, and
  /// re-subscribes every recorded subscription. Call before hello().
  void enable_reconnect(ConnectionFactory factory,
                        ReconnectConfig config = {});
  /// Reconnect/gap accounting (all zeros when reconnect is off).
  const ResumeStats& resume_stats() const { return resume_stats_; }
  /// The daemon's session epoch from HelloAck (0 from a v1/v2 daemon).
  std::uint64_t epoch() const { return epoch_; }
  /// Current subscription id of the recorded subscription originally
  /// acked with `original_sub_id` (it changes on resume); 0 when the
  /// subscription is gone or unknown.
  std::uint32_t current_subscription_id(std::uint32_t original_sub_id) const;

  /// Version to offer in Hello (defaults to kProtocolVersion; the
  /// compat tests dial it down to speak v1 at a v2 daemon).
  void set_hello_version(std::uint32_t version) { hello_version_ = version; }
  /// What HelloAck negotiated — min(offered, daemon's version).
  std::uint32_t negotiated_version() const { return negotiated_version_; }

  /// Raw received-byte log for the determinism tests (every byte the
  /// daemon sent us, in order), captured before frame reassembly.
  void set_capture_bytes(bool capture) { capture_bytes_ = capture; }
  const std::vector<std::uint8_t>& captured_bytes() const {
    return captured_bytes_;
  }

 private:
  /// One entry of the recorded subscription set the reconnect machinery
  /// replays on resume.
  struct RecordedSub {
    bool aggregate = false;
    std::uint32_t original_sub_id = 0;  // first ack, stable caller handle
    Subscribe spec;        // when !aggregate
    AggSubscribe agg_spec; // when aggregate
    std::uint32_t sub_id = 0;  // current id; 0 = dead (resume refused)
    std::uint32_t period_ticks = 1;
    bool saw_sample = false;
    std::uint64_t last_tick = 0;
    std::uint64_t last_seq = 0;
    /// Set after a resume until the first post-resume sample lands and
    /// the gap is accounted; gap_unknown marks an epoch change.
    bool check_gap = false;
    bool gap_unknown = false;
  };

  /// Send `frame_bytes` fully, then wait for a frame of type `expect`
  /// (or kError, which becomes the returned status).
  Expected<Frame> rpc(MsgType expect, const std::vector<std::uint8_t>& frame);
  Status send_all(const std::vector<std::uint8_t>& bytes);
  /// Receive once into the reader; false = nothing arrived.
  Expected<bool> receive_some();
  /// Decode-and-stash shared by pump_once and the rpc wait loop.
  void stash_frame(const Frame& frame);
  /// Gap/sequence accounting for one delivered (agg)sample.
  void note_sample(std::uint32_t sub_id, std::uint64_t tick,
                   std::uint64_t seq);
  /// Echo a Ping (v3 liveness; best effort, errors ignored).
  void answer_ping(const Frame& frame);
  /// The reconnect state machine; returns ok when a resume succeeded.
  Status try_reconnect(const Status& cause);
  /// rpc-only subscribe paths that do NOT touch the recorded set (the
  /// public ones record; the resume replay must not re-record).
  Expected<SubscribeAck> do_subscribe(const Subscribe& spec);
  Expected<AggSubscribeAck> do_subscribe_aggregate(const AggSubscribe& spec);

  std::unique_ptr<Connection> conn_;
  FrameReader reader_;
  std::deque<WireSample> samples_;
  std::deque<AggSample> agg_samples_;
  std::string goodbye_reason_;
  std::uint32_t hello_version_ = kProtocolVersion;
  std::uint32_t negotiated_version_ = kProtocolVersion;
  bool capture_bytes_ = false;
  std::vector<std::uint8_t> captured_bytes_;

  // Reconnect state.
  ConnectionFactory factory_;
  ReconnectConfig reconnect_config_;
  bool reconnect_enabled_ = false;
  bool reconnecting_ = false;   // guards against nested resume attempts
  std::uint64_t generation_ = 0;  // bumped per adopted connection
  Rng backoff_rng_{1};
  std::string client_name_;
  std::uint64_t epoch_ = 0;
  ResumeStats resume_stats_;
  std::vector<RecordedSub> recorded_subs_;
};

}  // namespace hetpapi::service
