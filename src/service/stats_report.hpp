// Render and convert aggregated counter streams.
//
// The aggregator's AggSample carries ShellPM-style gather statistics
// (sum/min/max/avg/σ across the downstream tree) plus additive
// per-core-type totals. This header turns one such sample into the
// `hetpapi_client --stats` report (a pure string, so the golden test
// pins it byte-for-byte) and into a telemetry::Sample so the monitor
// layer consumes aggregated streams exactly like local ones.
#pragma once

#include <string>
#include <vector>

#include "service/proto.hpp"
#include "telemetry/sampler.hpp"

namespace hetpapi::service {

/// The --stats table: one row per event with the merged statistics,
/// followed by the per-core-type breakdown rows. `events` names the
/// slots in subscribe order.
std::string render_agg_stats_report(const std::vector<std::string>& events,
                                    const AggSample& sample);

/// Bridge into the telemetry layer: counters = merged sums,
/// counter_parts = the per-core-type values (label order), counters_ok
/// = the merge's completeness.
telemetry::Sample to_telemetry_sample(const AggSample& sample);

}  // namespace hetpapi::service
