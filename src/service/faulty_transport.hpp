// Deterministic, seed-driven fault injection over the Transport seam —
// the wire-side sibling of papi::FaultInjectingBackend.
//
// FaultyTransport decorates Connection and Listener objects from any
// real transport (loopback in tests, unix sockets in principle) and
// injects the failure mix a production daemon's links actually see:
// short and zero-progress writes, EAGAIN bursts on receive, mid-frame
// disconnects, one-way half-closes (the peer that can hear you but not
// answer), multi-op send/receive stalls, and deferred accepts. Every
// decision is drawn from a per-link seeded xoshiro stream in a fixed
// order, so the same seed against the same op sequence reproduces the
// same faults bit-for-bit — wire chaos is a deterministic test.
//
// Like the backend injector, the decorator doubles as an accounting
// oracle: every wrapped link keeps an op ledger (sends, receives,
// bytes, faults by kind, open/closed), and open_connection_count() is
// the transport-side leak check — zero at teardown means every wrapped
// endpoint was closed no matter which faults fired.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/rng.hpp"
#include "base/status.hpp"
#include "service/transport.hpp"

namespace hetpapi::service {

/// The wire failure model: per-op probabilities plus burst lengths.
/// All probabilities are in [0, 1] and evaluated independently per
/// send/receive/accept in a fixed order (stall replay, disconnect,
/// half-close, stall trigger, zero write, short write).
struct TransportFaultProfile {
  std::string name = "none";

  /// send() forwards only part of the submitted bytes (at least one,
  /// strictly fewer than asked) — the classic partial write.
  double short_write_prob = 0.0;
  /// send() accepts nothing this op (would-block), one op at a time.
  double zero_write_prob = 0.0;

  /// receive() reports "nothing pending" even when bytes are queued,
  /// in bursts of `eagain_burst` consecutive ops per trigger.
  double recv_eagain_prob = 0.0;
  int eagain_burst = 2;

  /// The link dies mid-op, both directions, permanently: every later
  /// send/receive fails with kNotRunning. Healing means dialing a new
  /// connection — exactly what the reconnect machinery must do.
  double disconnect_prob = 0.0;

  /// One-way death: sends fail permanently but receives keep working,
  /// so the peer's frames still arrive while ours never leave.
  double half_close_prob = 0.0;

  /// Sustained zero-progress runs: a trigger forces the next
  /// `stall_ops` sends (or receives) to report no progress.
  double send_stall_prob = 0.0;
  double recv_stall_prob = 0.0;
  int stall_ops = 4;

  /// accept() defers a pending connection with kNotFound instead of
  /// handing it over (the connection is delayed one poll, never lost).
  double accept_fail_prob = 0.0;

  /// A named profile ("none", "short-write", "eagain-burst",
  /// "mid-frame-disconnect", "half-close", "stall", "accept-flaky",
  /// "trickle", "mixed"); kInvalidArgument for unknown names.
  static Expected<TransportFaultProfile> named(std::string_view name);
  /// All names accepted by named(), for CLI help text.
  static std::vector<std::string> profile_names();
};

class FaultyTransport {
 public:
  /// Per-link op ledger: what the link did and what was injected.
  struct LinkStats {
    std::uint64_t sends = 0;
    std::uint64_t receives = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t short_writes = 0;
    std::uint64_t zero_writes = 0;
    std::uint64_t recv_eagains = 0;
    std::uint64_t stall_ops_served = 0;
    std::uint64_t severs = 0;
    std::uint64_t half_closes = 0;
    bool open = true;

    std::uint64_t total_injected() const {
      return short_writes + zero_writes + recv_eagains + stall_ops_served +
             severs + half_closes;
    }
  };

  FaultyTransport(TransportFaultProfile profile, std::uint64_t seed)
      : profile_(std::move(profile)), seed_(seed) {}

  /// Decorate one endpoint. Links are indexed in wrap order (accepted
  /// connections wrap through the listener and count too); each link
  /// gets its own rng stream seeded from (seed, index) so fault
  /// schedules stay stable however ops interleave across links.
  std::unique_ptr<Connection> wrap(std::unique_ptr<Connection> inner);

  /// Decorate a listener. The wrapper is owned by this transport and
  /// returned non-owning (Daemon::add_listener style); `inner` must
  /// outlive the transport. Accepted connections come back pre-wrapped.
  Listener* wrap_listener(Listener* inner);

  /// Kill link `index` now, both directions — the scripted mid-frame
  /// disconnect. The underlying connection is closed, so a loopback
  /// peer observes a real writer-closed pipe. Healing requires a new
  /// connection; the severed link never recovers.
  void sever(std::size_t index);
  void sever_all();

  std::size_t link_count() const { return links_.size(); }
  const LinkStats& link_stats(std::size_t index) const {
    return links_[index]->stats;
  }
  /// Wrapped endpoints not yet closed — the transport-side leak oracle.
  std::size_t open_connection_count() const;
  /// Injected faults across every link plus deferred accepts.
  std::uint64_t total_injected() const;
  std::uint64_t accept_deferrals() const { return accept_deferrals_; }

  const TransportFaultProfile& profile() const { return profile_; }

 private:
  /// Shared between the transport (for sever()/ledger access) and the
  /// wrapped endpoint; outlives the endpoint so post-close stats reads
  /// are safe.
  struct LinkCtl {
    explicit LinkCtl(std::uint64_t seed) : rng(seed) {}
    Rng rng;
    LinkStats stats;
    bool severed = false;
    bool half_closed = false;
    int send_stall_remaining = 0;
    int recv_stall_remaining = 0;
    /// Raw view of the wrapped endpoint's inner connection while the
    /// endpoint is alive; cleared on close so sever() never dangles.
    Connection* inner_raw = nullptr;
  };

  class FaultyConnection final : public Connection {
   public:
    FaultyConnection(TransportFaultProfile profile,
                     std::shared_ptr<LinkCtl> ctl,
                     std::unique_ptr<Connection> inner)
        : profile_(std::move(profile)),
          ctl_(std::move(ctl)),
          inner_(std::move(inner)) {
      ctl_->inner_raw = inner_.get();
    }
    ~FaultyConnection() override { close(); }

    Expected<std::size_t> send(const std::uint8_t* data,
                               std::size_t size) override;
    Expected<std::size_t> receive(std::vector<std::uint8_t>& out) override;
    void close() override;
    bool is_open() const override {
      return ctl_->stats.open && !ctl_->severed;
    }

   private:
    TransportFaultProfile profile_;
    std::shared_ptr<LinkCtl> ctl_;
    std::unique_ptr<Connection> inner_;
  };

  class FaultyListener final : public Listener {
   public:
    FaultyListener(FaultyTransport* transport, Listener* inner)
        : transport_(transport), inner_(inner) {}
    Expected<std::unique_ptr<Connection>> accept() override;

   private:
    FaultyTransport* transport_;
    Listener* inner_;
    /// Connections a triggered accept fault deferred; handed out (in
    /// order, no re-roll) before the inner listener is polled again.
    std::deque<std::unique_ptr<Connection>> delayed_;
  };

  std::shared_ptr<LinkCtl> new_link();

  TransportFaultProfile profile_;
  std::uint64_t seed_;
  /// Accept-fault decisions draw from their own stream so adding a
  /// link never perturbs the accept schedule.
  Rng accept_rng_{0};
  bool accept_rng_seeded_ = false;
  std::vector<std::shared_ptr<LinkCtl>> links_;  // in wrap order
  std::vector<std::unique_ptr<FaultyListener>> listeners_;
  std::uint64_t accept_deferrals_ = 0;
};

}  // namespace hetpapi::service
