#include "service/transport.hpp"

#include <algorithm>

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace hetpapi::service {

// --- loopback --------------------------------------------------------------

std::unique_ptr<Connection> LoopbackTransport::connect() {
  auto link = std::make_shared<Link>();
  links_.push_back(link);
  pending_accepts_.push_back(
      std::make_unique<Endpoint>(this, link, /*is_client=*/false));
  return std::make_unique<Endpoint>(this, std::move(link), /*is_client=*/true);
}

void LoopbackTransport::set_client_paused(std::size_t index, bool paused) {
  if (index < links_.size()) links_[index]->to_client.paused = paused;
}

Expected<std::unique_ptr<Connection>> LoopbackTransport::LoopbackListener::
    accept() {
  if (transport_->pending_accepts_.empty()) {
    return make_error(StatusCode::kNotFound, "no pending connection");
  }
  std::unique_ptr<Connection> conn =
      std::move(transport_->pending_accepts_.front());
  transport_->pending_accepts_.pop_front();
  return conn;
}

Expected<std::size_t> LoopbackTransport::Endpoint::send(
    const std::uint8_t* data, std::size_t size) {
  if (!open_) return make_error(StatusCode::kNotRunning, "connection closed");
  Pipe& pipe = outgoing();
  if (pipe.paused) return std::size_t{0};
  std::size_t accept_bytes = size;
  if (transport_->config_.pipe_capacity_bytes > 0) {
    const std::size_t room =
        pipe.bytes.size() >= transport_->config_.pipe_capacity_bytes
            ? 0
            : transport_->config_.pipe_capacity_bytes - pipe.bytes.size();
    accept_bytes = std::min(accept_bytes, room);
  }
  pipe.bytes.insert(pipe.bytes.end(), data, data + accept_bytes);
  return accept_bytes;
}

Expected<std::size_t> LoopbackTransport::Endpoint::receive(
    std::vector<std::uint8_t>& out) {
  if (!open_) return make_error(StatusCode::kNotRunning, "connection closed");
  Pipe& pipe = incoming();
  // The client side may legitimately wait on a reply the daemon has not
  // produced yet — pump the daemon once before reporting "nothing".
  if (pipe.bytes.empty() && is_client_ && transport_->pump_) {
    transport_->pump_();
  }
  if (pipe.bytes.empty()) {
    if (pipe.writer_closed) {
      return make_error(StatusCode::kNotRunning, "peer closed");
    }
    return std::size_t{0};
  }
  std::size_t n = pipe.bytes.size();
  if (transport_->config_.max_chunk_bytes > 0) {
    n = std::min(n, transport_->config_.max_chunk_bytes);
  }
  out.insert(out.end(), pipe.bytes.begin(),
             pipe.bytes.begin() + static_cast<std::ptrdiff_t>(n));
  pipe.bytes.erase(pipe.bytes.begin(),
                   pipe.bytes.begin() + static_cast<std::ptrdiff_t>(n));
  return n;
}

void LoopbackTransport::Endpoint::close() {
  if (!open_) return;
  open_ = false;
  outgoing().writer_closed = true;
}

// --- unix domain sockets ---------------------------------------------------

namespace {

/// fd-backed connection; `blocking` distinguishes the client (blocking
/// reads: a synchronous RPC waits) from daemon-side endpoints
/// (nonblocking: poll() must never stall on one client).
class FdConnection final : public Connection {
 public:
  FdConnection(int fd, bool blocking) : fd_(fd), blocking_(blocking) {}
  ~FdConnection() override { close(); }

  Expected<std::size_t> send(const std::uint8_t* data,
                             std::size_t size) override {
    if (fd_ < 0) return make_error(StatusCode::kNotRunning, "closed");
    // EINTR-safe, partial-write-tolerant: hand back what the kernel
    // accepted and let the caller queue the rest.
    for (;;) {
      const ssize_t n = ::send(fd_, data, size, MSG_NOSIGNAL);
      if (n >= 0) return static_cast<std::size_t>(n);
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return std::size_t{0};
      return make_error(StatusCode::kSystem,
                        std::string("send: ") + std::strerror(errno));
    }
  }

  Expected<std::size_t> receive(std::vector<std::uint8_t>& out) override {
    if (fd_ < 0) return make_error(StatusCode::kNotRunning, "closed");
    std::uint8_t buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n > 0) {
        out.insert(out.end(), buf, buf + n);
        return static_cast<std::size_t>(n);
      }
      if (n == 0) return make_error(StatusCode::kNotRunning, "peer closed");
      if (errno == EINTR) continue;
      if (!blocking_ && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return std::size_t{0};
      }
      if (blocking_ && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
      return make_error(StatusCode::kSystem,
                        std::string("recv: ") + std::strerror(errno));
    }
  }

  void close() override {
    if (fd_ >= 0) {
      // close(2) is deliberately not retried on EINTR: the fd is gone
      // either way and a retry could close a recycled descriptor.
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool is_open() const override { return fd_ >= 0; }

 private:
  int fd_;
  bool blocking_;
};

class UnixListener final : public Listener {
 public:
  UnixListener(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~UnixListener() override {
    if (fd_ >= 0) ::close(fd_);
    if (!path_.empty()) ::unlink(path_.c_str());
  }

  Expected<std::unique_ptr<Connection>> accept() override {
    for (;;) {
      const int client = ::accept(fd_, nullptr, nullptr);
      if (client >= 0) {
        const int flags = ::fcntl(client, F_GETFL, 0);
        ::fcntl(client, F_SETFL, flags | O_NONBLOCK);
        return std::unique_ptr<Connection>(
            std::make_unique<FdConnection>(client, /*blocking=*/false));
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return make_error(StatusCode::kNotFound, "no pending connection");
      }
      return make_error(StatusCode::kSystem,
                        std::string("accept: ") + std::strerror(errno));
    }
  }

 private:
  int fd_;
  std::string path_;
};

Expected<int> make_unix_socket() {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return make_error(StatusCode::kSystem,
                      std::string("socket: ") + std::strerror(errno));
  }
  return fd;
}

Status fill_addr(const std::string& path, sockaddr_un& addr) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return make_error(StatusCode::kInvalidArgument, "socket path too long");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return Status::ok();
}

}  // namespace

Expected<std::unique_ptr<Connection>> unix_connect(const std::string& path) {
  auto fd = make_unix_socket();
  if (!fd) return fd.status();
  sockaddr_un addr;
  if (const Status s = fill_addr(path, addr); !s.is_ok()) {
    ::close(*fd);
    return s;
  }
  for (;;) {
    if (::connect(*fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    const Status s = make_error(StatusCode::kSystem,
                                std::string("connect: ") + std::strerror(errno));
    ::close(*fd);
    return s;
  }
  return std::unique_ptr<Connection>(
      std::make_unique<FdConnection>(*fd, /*blocking=*/true));
}

Expected<std::unique_ptr<Listener>> unix_listen(const std::string& path) {
  auto fd = make_unix_socket();
  if (!fd) return fd.status();
  sockaddr_un addr;
  if (const Status s = fill_addr(path, addr); !s.is_ok()) {
    ::close(*fd);
    return s;
  }
  ::unlink(path.c_str());
  if (::bind(*fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status s = make_error(StatusCode::kSystem,
                                std::string("bind: ") + std::strerror(errno));
    ::close(*fd);
    return s;
  }
  if (::listen(*fd, 64) != 0) {
    const Status s = make_error(StatusCode::kSystem,
                                std::string("listen: ") + std::strerror(errno));
    ::close(*fd);
    return s;
  }
  const int flags = ::fcntl(*fd, F_GETFL, 0);
  ::fcntl(*fd, F_SETFL, flags | O_NONBLOCK);
  return std::unique_ptr<Listener>(std::make_unique<UnixListener>(*fd, path));
}

}  // namespace hetpapi::service
