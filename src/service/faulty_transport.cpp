#include "service/faulty_transport.hpp"

#include <utility>

namespace hetpapi::service {

namespace {

Status link_severed() {
  return Status(StatusCode::kNotRunning, "link severed (injected fault)");
}

}  // namespace

// --- profiles --------------------------------------------------------------

Expected<TransportFaultProfile> TransportFaultProfile::named(
    std::string_view name) {
  TransportFaultProfile p;
  p.name = std::string(name);
  if (name == "none") return p;
  if (name == "short-write") {
    p.short_write_prob = 0.35;
    p.zero_write_prob = 0.10;
    return p;
  }
  if (name == "eagain-burst") {
    p.recv_eagain_prob = 0.20;
    p.eagain_burst = 3;
    return p;
  }
  if (name == "mid-frame-disconnect") {
    p.disconnect_prob = 0.02;
    p.short_write_prob = 0.25;  // frames split, then the link dies mid-split
    return p;
  }
  if (name == "half-close") {
    p.half_close_prob = 0.02;
    return p;
  }
  if (name == "stall") {
    p.send_stall_prob = 0.05;
    p.recv_stall_prob = 0.05;
    p.stall_ops = 4;
    return p;
  }
  if (name == "accept-flaky") {
    p.accept_fail_prob = 0.5;
    return p;
  }
  if (name == "trickle") {
    // Every write is maximally short and receives hiccup: the hardest
    // legal wire for frame reassembly, with no permanent failures.
    p.short_write_prob = 1.0;
    p.recv_eagain_prob = 0.15;
    p.eagain_burst = 2;
    return p;
  }
  if (name == "mixed") {
    p.short_write_prob = 0.20;
    p.zero_write_prob = 0.05;
    p.recv_eagain_prob = 0.10;
    p.eagain_burst = 2;
    p.disconnect_prob = 0.005;
    p.half_close_prob = 0.003;
    p.send_stall_prob = 0.02;
    p.recv_stall_prob = 0.02;
    p.stall_ops = 3;
    p.accept_fail_prob = 0.25;
    return p;
  }
  return make_error(StatusCode::kInvalidArgument,
                    "unknown transport fault profile: " + std::string(name));
}

std::vector<std::string> TransportFaultProfile::profile_names() {
  return {"none",       "short-write", "eagain-burst",
          "mid-frame-disconnect",      "half-close",
          "stall",      "accept-flaky", "trickle", "mixed"};
}

// --- wrapped endpoint ------------------------------------------------------

Expected<std::size_t> FaultyTransport::FaultyConnection::send(
    const std::uint8_t* data, std::size_t size) {
  LinkCtl& ctl = *ctl_;
  if (!ctl.stats.open || ctl.severed) return link_severed();
  if (ctl.half_closed) {
    return Status(StatusCode::kNotRunning,
                  "send direction half-closed (injected fault)");
  }
  if (ctl.send_stall_remaining > 0) {
    --ctl.send_stall_remaining;
    ++ctl.stats.stall_ops_served;
    return std::size_t{0};
  }
  if (profile_.disconnect_prob > 0.0 &&
      ctl.rng.uniform() < profile_.disconnect_prob) {
    ctl.severed = true;
    ++ctl.stats.severs;
    inner_->close();
    return link_severed();
  }
  if (profile_.half_close_prob > 0.0 &&
      ctl.rng.uniform() < profile_.half_close_prob) {
    ctl.half_closed = true;
    ++ctl.stats.half_closes;
    return Status(StatusCode::kNotRunning,
                  "send direction half-closed (injected fault)");
  }
  if (profile_.send_stall_prob > 0.0 &&
      ctl.rng.uniform() < profile_.send_stall_prob) {
    ctl.send_stall_remaining = profile_.stall_ops;
    ++ctl.stats.stall_ops_served;
    return std::size_t{0};
  }
  if (profile_.zero_write_prob > 0.0 &&
      ctl.rng.uniform() < profile_.zero_write_prob) {
    ++ctl.stats.zero_writes;
    return std::size_t{0};
  }
  std::size_t forward = size;
  if (size > 1 && profile_.short_write_prob > 0.0 &&
      ctl.rng.uniform() < profile_.short_write_prob) {
    forward = 1 + static_cast<std::size_t>(ctl.rng.below(size - 1));
    ++ctl.stats.short_writes;
  }
  auto n = inner_->send(data, forward);
  if (!n) return n.status();
  ++ctl.stats.sends;
  ctl.stats.bytes_sent += *n;
  return n;
}

Expected<std::size_t> FaultyTransport::FaultyConnection::receive(
    std::vector<std::uint8_t>& out) {
  LinkCtl& ctl = *ctl_;
  if (!ctl.stats.open || ctl.severed) return link_severed();
  if (ctl.recv_stall_remaining > 0) {
    --ctl.recv_stall_remaining;
    ++ctl.stats.stall_ops_served;
    return std::size_t{0};
  }
  if (profile_.disconnect_prob > 0.0 &&
      ctl.rng.uniform() < profile_.disconnect_prob) {
    ctl.severed = true;
    ++ctl.stats.severs;
    inner_->close();
    return link_severed();
  }
  if (profile_.recv_stall_prob > 0.0 &&
      ctl.rng.uniform() < profile_.recv_stall_prob) {
    ctl.recv_stall_remaining = profile_.stall_ops;
    ++ctl.stats.stall_ops_served;
    return std::size_t{0};
  }
  if (profile_.recv_eagain_prob > 0.0 &&
      ctl.rng.uniform() < profile_.recv_eagain_prob) {
    ctl.recv_stall_remaining =
        profile_.eagain_burst > 1 ? profile_.eagain_burst - 1 : 0;
    ++ctl.stats.recv_eagains;
    return std::size_t{0};
  }
  auto n = inner_->receive(out);
  if (!n) return n.status();
  ++ctl.stats.receives;
  ctl.stats.bytes_received += *n;
  return n;
}

void FaultyTransport::FaultyConnection::close() {
  if (!ctl_->stats.open) return;
  ctl_->stats.open = false;
  ctl_->inner_raw = nullptr;
  inner_->close();
}

// --- wrapped listener ------------------------------------------------------

Expected<std::unique_ptr<Connection>> FaultyTransport::FaultyListener::accept() {
  if (!delayed_.empty()) {
    auto conn = std::move(delayed_.front());
    delayed_.pop_front();
    return transport_->wrap(std::move(conn));
  }
  auto conn = inner_->accept();
  if (!conn) return conn.status();
  if (transport_->profile_.accept_fail_prob > 0.0 &&
      transport_->accept_rng_.uniform() <
          transport_->profile_.accept_fail_prob) {
    // Defer, don't drop: the connection is handed out next poll with no
    // second roll, so a flaky accept path delays admission but never
    // loses a dial.
    delayed_.push_back(std::move(*conn));
    ++transport_->accept_deferrals_;
    return make_error(StatusCode::kNotFound, "accept deferred (fault)");
  }
  return transport_->wrap(std::move(*conn));
}

// --- transport -------------------------------------------------------------

std::shared_ptr<FaultyTransport::LinkCtl> FaultyTransport::new_link() {
  // Per-link stream keyed on (seed, index): a link's fault schedule
  // depends only on its own op sequence, not on sibling traffic.
  const std::uint64_t link_seed =
      seed_ + 0x9e3779b97f4a7c15ULL * (links_.size() + 1);
  auto ctl = std::make_shared<LinkCtl>(link_seed);
  links_.push_back(ctl);
  return ctl;
}

std::unique_ptr<Connection> FaultyTransport::wrap(
    std::unique_ptr<Connection> inner) {
  return std::make_unique<FaultyConnection>(profile_, new_link(),
                                            std::move(inner));
}

Listener* FaultyTransport::wrap_listener(Listener* inner) {
  if (!accept_rng_seeded_) {
    accept_rng_ = Rng(seed_ ^ 0xa5a5a5a5a5a5a5a5ULL);
    accept_rng_seeded_ = true;
  }
  listeners_.push_back(std::make_unique<FaultyListener>(this, inner));
  return listeners_.back().get();
}

void FaultyTransport::sever(std::size_t index) {
  if (index >= links_.size()) return;
  LinkCtl& ctl = *links_[index];
  if (ctl.severed) return;
  ctl.severed = true;
  ++ctl.stats.severs;
  if (ctl.inner_raw != nullptr) ctl.inner_raw->close();
}

void FaultyTransport::sever_all() {
  for (std::size_t i = 0; i < links_.size(); ++i) sever(i);
}

std::size_t FaultyTransport::open_connection_count() const {
  std::size_t open = 0;
  for (const auto& link : links_) {
    if (link->stats.open) ++open;
  }
  return open;
}

std::uint64_t FaultyTransport::total_injected() const {
  std::uint64_t total = accept_deferrals_;
  for (const auto& link : links_) total += link->stats.total_injected();
  return total;
}

}  // namespace hetpapi::service
