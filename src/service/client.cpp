#include "service/client.hpp"

#include <utility>

namespace hetpapi::service {
namespace {

Status connection_gone() {
  return Status(StatusCode::kNotRunning, "connection closed");
}

}  // namespace

Status Client::send_all(const std::vector<std::uint8_t>& bytes) {
  if (!connected()) return connection_gone();
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    auto n = conn_->send(bytes.data() + sent, bytes.size() - sent);
    if (!n) return n.status();
    if (*n == 0) {
      // Would-block: give the peer a chance to drain (on the loopback
      // transport receive() pumps the daemon; on a socket the kernel
      // buffer empties on its own) and retry.
      auto progressed = receive_some();
      if (!progressed) return progressed.status();
      continue;
    }
    sent += *n;
  }
  return Status::ok();
}

Expected<bool> Client::receive_some() {
  if (!connected()) return connection_gone();
  std::vector<std::uint8_t> chunk;
  auto n = conn_->receive(chunk);
  if (!n) {
    // A receive error is terminal (would-block is reported as 0 bytes,
    // not an error): drop the connection so connected() tells the truth
    // and pollers stop treating this peer as live.
    conn_->close();
    return n.status();
  }
  if (*n == 0) return false;
  if (capture_bytes_)
    captured_bytes_.insert(captured_bytes_.end(), chunk.begin(), chunk.end());
  reader_.feed(chunk);
  return true;
}

bool Client::pump_once() {
  auto got = receive_some();
  if (!got || !*got) return false;
  // Drain any complete frames into the stash so samples never pile up
  // unobserved inside the reader.
  while (true) {
    auto frame = reader_.next();
    if (!frame) break;
    if (frame->type == MsgType::kSample) {
      if (auto s = WireSample::decode(*frame)) samples_.push_back(*std::move(s));
    } else if (frame->type == MsgType::kAggSample) {
      if (auto s = AggSample::decode(*frame))
        agg_samples_.push_back(*std::move(s));
    } else if (frame->type == MsgType::kGoodbye) {
      if (auto g = Goodbye::decode(*frame)) goodbye_reason_ = g->reason;
    }
    // Other frame types arriving outside an rpc() are stale replies
    // (e.g. a CloseAck racing a drop) — drop them.
  }
  return true;
}

Expected<Frame> Client::rpc(MsgType expect,
                            const std::vector<std::uint8_t>& frame_bytes) {
  if (Status s = send_all(frame_bytes); !s.ok()) return s;
  while (true) {
    // Pop buffered frames first — bytes from a previous receive may
    // already hold the reply.
    auto frame = reader_.next();
    if (frame) {
      if (frame->type == expect) return *std::move(frame);
      if (frame->type == MsgType::kSample) {
        if (auto s = WireSample::decode(*frame))
          samples_.push_back(*std::move(s));
        continue;
      }
      if (frame->type == MsgType::kAggSample) {
        if (auto s = AggSample::decode(*frame))
          agg_samples_.push_back(*std::move(s));
        continue;
      }
      if (frame->type == MsgType::kError) {
        auto err = WireError::decode(*frame);
        if (!err) return err.status();
        return err->to_status();
      }
      if (frame->type == MsgType::kGoodbye) {
        auto bye = Goodbye::decode(*frame);
        goodbye_reason_ = bye ? bye->reason : "goodbye";
        return Status(StatusCode::kNotRunning,
                      "daemon said goodbye: " + goodbye_reason_);
      }
      // Unexpected interleaved reply — protocol confusion.
      return Status(StatusCode::kBug,
                    "unexpected frame " + std::string(to_string(frame->type)) +
                        " while waiting for " + std::string(to_string(expect)));
    }
    if (frame.status().code() == StatusCode::kInvalidArgument)
      return frame.status();  // corrupt stream
    auto got = receive_some();
    if (!got) return got.status();
    // got == false just means no bytes this pass; on the loopback
    // transport the pump already ran inside receive(), so loop again.
  }
}

Status Client::hello(const std::string& client_name) {
  Hello msg;
  msg.version = hello_version_;
  msg.client_name = client_name;
  auto reply = rpc(MsgType::kHelloAck,
                   encode_frame(MsgType::kHello, msg.encode()));
  if (!reply) return reply.status();
  auto ack = HelloAck::decode(*reply);
  if (!ack) return ack.status();
  // The daemon answers with min(our offer, its version); anything
  // outside [kMinProtocolVersion, offer] is a server we can't speak to.
  if (ack->version < kMinProtocolVersion || ack->version > hello_version_)
    return Status(StatusCode::kNotSupported,
                  "server speaks protocol v" + std::to_string(ack->version));
  negotiated_version_ = ack->version;
  return Status::ok();
}

Expected<std::uint32_t> Client::open_session(TargetKind kind,
                                             std::int64_t target) {
  OpenSession msg;
  msg.target_kind = kind;
  msg.target = target;
  auto reply = rpc(MsgType::kOpenSessionAck,
                   encode_frame(MsgType::kOpenSession, msg.encode()));
  if (!reply) return reply.status();
  auto ack = OpenSessionAck::decode(*reply);
  if (!ack) return ack.status();
  return ack->session_id;
}

Expected<AddEventsAck> Client::add_events(
    std::uint32_t session_id, const std::vector<std::string>& events) {
  AddEvents msg;
  msg.session_id = session_id;
  msg.events = events;
  auto reply = rpc(MsgType::kAddEventsAck,
                   encode_frame(MsgType::kAddEvents, msg.encode()));
  if (!reply) return reply.status();
  return AddEventsAck::decode(*reply);
}

Status Client::start(std::uint32_t session_id) {
  Start msg;
  msg.session_id = session_id;
  auto reply =
      rpc(MsgType::kStartAck, encode_frame(MsgType::kStart, msg.encode()));
  if (!reply) return reply.status();
  return Status::ok();
}

Expected<ReadReply> Client::read(std::uint32_t session_id) {
  Read msg;
  msg.session_id = session_id;
  auto reply =
      rpc(MsgType::kReadReply, encode_frame(MsgType::kRead, msg.encode()));
  if (!reply) return reply.status();
  return ReadReply::decode(*reply);
}

Expected<SubscribeAck> Client::subscribe(const Subscribe& spec) {
  auto reply = rpc(MsgType::kSubscribeAck,
                   encode_frame(MsgType::kSubscribe, spec.encode()));
  if (!reply) return reply.status();
  return SubscribeAck::decode(*reply);
}

Expected<AggSubscribeAck> Client::subscribe_aggregate(
    const AggSubscribe& spec) {
  if (negotiated_version_ < 2) {
    return make_error(StatusCode::kNotSupported,
                      "aggregate streams need protocol v2");
  }
  auto reply = rpc(MsgType::kSubscribeAggregateAck,
                   encode_frame(MsgType::kSubscribeAggregate, spec.encode()));
  if (!reply) return reply.status();
  return AggSubscribeAck::decode(*reply);
}

Status Client::unsubscribe(std::uint32_t subscription_id) {
  Unsubscribe msg;
  msg.subscription_id = subscription_id;
  auto reply = rpc(MsgType::kUnsubscribeAck,
                   encode_frame(MsgType::kUnsubscribe, msg.encode()));
  if (!reply) return reply.status();
  return Status::ok();
}

Expected<StatsReply> Client::stats() {
  auto reply = rpc(MsgType::kStatsReply,
                   encode_frame(MsgType::kGetStats, GetStats{}.encode()));
  if (!reply) return reply.status();
  return StatsReply::decode(*reply);
}

Status Client::close() {
  if (!connected()) return Status::ok();
  auto reply =
      rpc(MsgType::kCloseAck, encode_frame(MsgType::kClose, Close{}.encode()));
  conn_->close();
  if (!reply) return reply.status();
  return Status::ok();
}

std::vector<WireSample> Client::take_samples() {
  // Sweep the transport once so freshly flushed samples are included.
  if (connected()) pump_once();
  std::vector<WireSample> out(samples_.begin(), samples_.end());
  samples_.clear();
  return out;
}

std::vector<AggSample> Client::take_agg_samples() {
  if (connected()) pump_once();
  std::vector<AggSample> out(agg_samples_.begin(), agg_samples_.end());
  agg_samples_.clear();
  return out;
}

}  // namespace hetpapi::service
