#include "service/client.hpp"

#include <algorithm>
#include <utility>

namespace hetpapi::service {
namespace {

Status connection_gone() {
  return Status(StatusCode::kNotRunning, "connection closed");
}

Status reconnected_midway() {
  return Status(StatusCode::kInterrupted,
                "connection re-established mid-request; retry");
}

/// A status that means the wire died (retry the whole attempt), as
/// opposed to a daemon-side refusal of one request.
bool is_transport_death(const Status& s) {
  return s.code() == StatusCode::kNotRunning ||
         s.code() == StatusCode::kInterrupted;
}

}  // namespace

void Client::enable_reconnect(ConnectionFactory factory,
                              ReconnectConfig config) {
  factory_ = std::move(factory);
  reconnect_config_ = std::move(config);
  reconnect_enabled_ = static_cast<bool>(factory_);
  backoff_rng_ = Rng(reconnect_config_.seed);
}

std::uint32_t Client::current_subscription_id(
    std::uint32_t original_sub_id) const {
  for (const RecordedSub& sub : recorded_subs_) {
    if (sub.original_sub_id == original_sub_id) return sub.sub_id;
  }
  return 0;
}

Status Client::send_all(const std::vector<std::uint8_t>& bytes) {
  if (!connected()) {
    // Nothing of this request is on the wire yet: a successful resume
    // lets the send proceed on the fresh connection.
    if (Status healed = try_reconnect(connection_gone()); !healed.is_ok())
      return healed;
    if (!connected()) return connection_gone();
  }
  const std::uint64_t gen = generation_;
  std::size_t sent = 0;
  int idle_passes = 0;
  const int idle_limit =
      reconnect_enabled_ ? reconnect_config_.rpc_deadline_pumps : 0;
  while (sent < bytes.size()) {
    auto n = conn_->send(bytes.data() + sent, bytes.size() - sent);
    if (!n) {
      conn_->close();
      Status healed = try_reconnect(n.status());
      if (!healed.is_ok()) return healed;
      // Resumed, but a prefix of this frame may be lost with the old
      // connection — the caller must resend from the top.
      return reconnected_midway();
    }
    if (*n == 0) {
      // Would-block: give the peer a chance to drain (on the loopback
      // transport receive() pumps the daemon; on a socket the kernel
      // buffer empties on its own) and retry.
      auto progressed = receive_some();
      if (!progressed) return progressed.status();
      if (generation_ != gen) return reconnected_midway();
      if (!*progressed && idle_limit > 0 && ++idle_passes >= idle_limit) {
        return Status(StatusCode::kInterrupted,
                      "send made no progress within the deadline");
      }
      if (*progressed) idle_passes = 0;
      continue;
    }
    idle_passes = 0;
    sent += *n;
  }
  return Status::ok();
}

Expected<bool> Client::receive_some() {
  if (!connected()) return connection_gone();
  std::vector<std::uint8_t> chunk;
  auto n = conn_->receive(chunk);
  if (!n) {
    // A receive error is terminal (would-block is reported as 0 bytes,
    // not an error): drop the connection so connected() tells the truth
    // and pollers stop treating this peer as live — then, if armed, try
    // to heal. A successful resume reports "no bytes this pass"; the
    // resubscribed stream flows on the next sweep.
    conn_->close();
    Status healed = try_reconnect(n.status());
    if (!healed.is_ok()) return healed;
    return false;
  }
  if (*n == 0) return false;
  if (capture_bytes_)
    captured_bytes_.insert(captured_bytes_.end(), chunk.begin(), chunk.end());
  reader_.feed(chunk);
  return true;
}

void Client::note_sample(std::uint32_t sub_id, std::uint64_t tick,
                         std::uint64_t seq) {
  if (!reconnect_enabled_) return;
  for (RecordedSub& sub : recorded_subs_) {
    if (sub.sub_id != sub_id || sub_id == 0) continue;
    if (sub.check_gap) {
      if (sub.gap_unknown) {
        ++resume_stats_.unknown_gaps;
      } else if (sub.saw_sample && tick > sub.last_tick &&
                 sub.period_ticks > 0) {
        // Deliveries land on tick % period == 0 of the daemon's global
        // tick counter, which survived the outage (same epoch), so the
        // missed count is exact: due ticks strictly between the last
        // pre-outage delivery and this one.
        const std::uint64_t due_steps = (tick - sub.last_tick) / sub.period_ticks;
        if (due_steps > 1) {
          ++resume_stats_.gaps;
          resume_stats_.samples_missed += due_steps - 1;
        }
      }
      sub.check_gap = false;
      sub.gap_unknown = false;
    } else if (seq != 0 && sub.last_seq != 0 && seq != sub.last_seq + 1) {
      // In-connection sequence break: the daemon skipped us without a
      // reconnect. Should not happen; account it rather than hide it.
      ++resume_stats_.gaps;
      if (seq > sub.last_seq) resume_stats_.samples_missed += seq - sub.last_seq - 1;
    }
    sub.saw_sample = true;
    sub.last_tick = tick;
    sub.last_seq = seq;
    return;
  }
}

void Client::answer_ping(const Frame& frame) {
  auto ping = Ping::decode(frame);
  if (!ping) return;
  Pong pong;
  pong.token = ping->token;
  // Best effort: a liveness echo that fails to send will surface as a
  // transport error on the next real operation.
  (void)send_all(encode_frame(MsgType::kPong, pong.encode()));
}

void Client::stash_frame(const Frame& frame) {
  if (frame.type == MsgType::kSample) {
    if (auto s = WireSample::decode(frame)) {
      note_sample(s->subscription_id, s->tick, s->seq);
      samples_.push_back(*std::move(s));
    }
  } else if (frame.type == MsgType::kAggSample) {
    if (auto s = AggSample::decode(frame)) {
      note_sample(s->subscription_id, s->tick, s->seq);
      agg_samples_.push_back(*std::move(s));
    }
  } else if (frame.type == MsgType::kGoodbye) {
    if (auto g = Goodbye::decode(frame)) goodbye_reason_ = g->reason;
  } else if (frame.type == MsgType::kPing) {
    answer_ping(frame);
  }
}

bool Client::pump_once() {
  // Frames already reassembled but not yet handed out (e.g. a Goodbye
  // that rode in the same receive as an Error reply) are drained even
  // when the transport is dead — a buffered farewell must not be lost.
  bool progressed = false;
  while (true) {
    auto frame = reader_.next();
    if (!frame) break;
    stash_frame(*frame);
    progressed = true;
  }
  auto got = receive_some();
  if (!got || !*got) return progressed;
  // Drain any complete frames into the stash so samples never pile up
  // unobserved inside the reader.
  while (true) {
    auto frame = reader_.next();
    if (!frame) break;
    stash_frame(*frame);
    // Other frame types arriving outside an rpc() are stale replies
    // (e.g. a CloseAck racing a drop) — stash_frame drops them.
  }
  return true;
}

Expected<Frame> Client::rpc(MsgType expect,
                            const std::vector<std::uint8_t>& frame_bytes) {
  if (Status s = send_all(frame_bytes); !s.is_ok()) return s;
  // The request is fully on the wire for THIS connection; if a resume
  // swaps the connection while we wait, the reply died with it.
  const std::uint64_t gen = generation_;
  int idle_passes = 0;
  const int idle_limit =
      reconnect_enabled_ ? reconnect_config_.rpc_deadline_pumps : 0;
  while (true) {
    // Pop buffered frames first — bytes from a previous receive may
    // already hold the reply.
    auto frame = reader_.next();
    if (frame) {
      idle_passes = 0;
      if (frame->type == expect) return *std::move(frame);
      if (frame->type == MsgType::kSample ||
          frame->type == MsgType::kAggSample ||
          frame->type == MsgType::kPing) {
        stash_frame(*frame);
        continue;
      }
      if (frame->type == MsgType::kError) {
        auto err = WireError::decode(*frame);
        if (!err) return err.status();
        return err->to_status();
      }
      if (frame->type == MsgType::kGoodbye) {
        auto bye = Goodbye::decode(*frame);
        goodbye_reason_ = bye ? bye->reason : "goodbye";
        return Status(StatusCode::kNotRunning,
                      "daemon said goodbye: " + goodbye_reason_);
      }
      // Unexpected interleaved reply — protocol confusion.
      return Status(StatusCode::kBug,
                    "unexpected frame " + std::string(to_string(frame->type)) +
                        " while waiting for " + std::string(to_string(expect)));
    }
    if (frame.status().code() == StatusCode::kInvalidArgument)
      return frame.status();  // corrupt stream
    auto got = receive_some();
    if (!got) return got.status();
    if (generation_ != gen) return reconnected_midway();
    // got == false just means no bytes this pass; on the loopback
    // transport the pump already ran inside receive(), so loop again —
    // bounded by the rpc deadline when reconnect is armed, so a
    // dead-silent daemon cannot hang the handshake forever.
    if (!*got && idle_limit > 0 && ++idle_passes >= idle_limit) {
      return Status(StatusCode::kInterrupted,
                    "no reply within the rpc deadline");
    }
    if (*got) idle_passes = 0;
  }
}

Status Client::hello(const std::string& client_name) {
  client_name_ = client_name;
  Hello msg;
  msg.version = hello_version_;
  msg.client_name = client_name;
  auto reply = rpc(MsgType::kHelloAck,
                   encode_frame(MsgType::kHello, msg.encode()));
  if (!reply) return reply.status();
  auto ack = HelloAck::decode(*reply);
  if (!ack) return ack.status();
  // The daemon answers with min(our offer, its version); anything
  // outside [kMinProtocolVersion, offer] is a server we can't speak to.
  if (ack->version < kMinProtocolVersion || ack->version > hello_version_)
    return Status(StatusCode::kNotSupported,
                  "server speaks protocol v" + std::to_string(ack->version));
  negotiated_version_ = ack->version;
  epoch_ = ack->epoch;
  return Status::ok();
}

Status Client::try_reconnect(const Status& cause) {
  if (!reconnect_enabled_ || reconnecting_) return cause;
  reconnecting_ = true;
  Status last = cause;
  std::uint64_t delay_ms = reconnect_config_.initial_backoff_ms;
  for (int attempt = 1; attempt <= reconnect_config_.max_attempts; ++attempt) {
    if (attempt > 1) {
      // Deterministic jitter: the factor is drawn from the seeded
      // stream whether or not a sleep hook is installed, so the
      // attempt trace is identical across environments.
      const double jf = reconnect_config_.jitter_frac;
      const double factor = 1.0 - jf + 2.0 * jf * backoff_rng_.uniform();
      const auto jittered = static_cast<std::uint64_t>(
          static_cast<double>(delay_ms) * factor);
      if (reconnect_config_.sleep_ms) reconnect_config_.sleep_ms(jittered);
      delay_ms = std::min(delay_ms * 2, reconnect_config_.max_backoff_ms);
    }
    ++resume_stats_.attempts;
    auto dialed = factory_();
    if (!dialed) {
      last = dialed.status();
      continue;
    }
    conn_ = std::move(*dialed);
    reader_ = FrameReader();  // old half-frames died with the old wire
    goodbye_reason_.clear();
    ++generation_;
    const std::uint64_t prev_epoch = epoch_;
    if (Status h = hello(client_name_); !h.is_ok()) {
      last = h;
      if (conn_) conn_->close();
      continue;
    }
    const bool epoch_changed = prev_epoch != 0 && epoch_ != prev_epoch;
    if (epoch_changed) ++resume_stats_.epoch_changes;
    // Tick-based gap math needs proof it's the same daemon process; a
    // pre-v3 daemon (epoch 0) can't give it, so its gaps are unknown.
    const bool gap_quantifiable = !epoch_changed && prev_epoch != 0;
    bool wire_died = false;
    for (RecordedSub& sub : recorded_subs_) {
      Status sub_status = Status::ok();
      if (sub.aggregate) {
        auto ack = do_subscribe_aggregate(sub.agg_spec);
        if (ack) {
          sub.sub_id = ack->subscription_id;
        } else {
          sub_status = ack.status();
        }
      } else {
        auto ack = do_subscribe(sub.spec);
        if (ack) {
          sub.sub_id = ack->subscription_id;
        } else {
          sub_status = ack.status();
        }
      }
      if (sub_status.is_ok()) {
        sub.last_seq = 0;
        sub.check_gap = sub.saw_sample;
        sub.gap_unknown = sub.check_gap && !gap_quantifiable;
        continue;
      }
      if (is_transport_death(sub_status)) {
        last = sub_status;
        wire_died = true;
        break;
      }
      // The daemon refused this one (conflict, overload, ...): the
      // subscription is gone, but the session resumed.
      sub.sub_id = 0;
      ++resume_stats_.resubscribe_failures;
    }
    if (wire_died) {
      if (conn_) conn_->close();
      continue;
    }
    ++resume_stats_.reconnects;
    reconnecting_ = false;
    return Status::ok();
  }
  reconnecting_ = false;
  return Status(last.code(),
                "reconnect exhausted after " +
                    std::to_string(reconnect_config_.max_attempts) +
                    " attempts: " + last.to_string());
}

Expected<std::uint32_t> Client::open_session(TargetKind kind,
                                             std::int64_t target) {
  OpenSession msg;
  msg.target_kind = kind;
  msg.target = target;
  auto reply = rpc(MsgType::kOpenSessionAck,
                   encode_frame(MsgType::kOpenSession, msg.encode()));
  if (!reply) return reply.status();
  auto ack = OpenSessionAck::decode(*reply);
  if (!ack) return ack.status();
  return ack->session_id;
}

Expected<AddEventsAck> Client::add_events(
    std::uint32_t session_id, const std::vector<std::string>& events) {
  AddEvents msg;
  msg.session_id = session_id;
  msg.events = events;
  auto reply = rpc(MsgType::kAddEventsAck,
                   encode_frame(MsgType::kAddEvents, msg.encode()));
  if (!reply) return reply.status();
  return AddEventsAck::decode(*reply);
}

Status Client::start(std::uint32_t session_id) {
  Start msg;
  msg.session_id = session_id;
  auto reply =
      rpc(MsgType::kStartAck, encode_frame(MsgType::kStart, msg.encode()));
  if (!reply) return reply.status();
  return Status::ok();
}

Expected<ReadReply> Client::read(std::uint32_t session_id) {
  Read msg;
  msg.session_id = session_id;
  auto reply =
      rpc(MsgType::kReadReply, encode_frame(MsgType::kRead, msg.encode()));
  if (!reply) return reply.status();
  return ReadReply::decode(*reply);
}

Expected<SubscribeAck> Client::do_subscribe(const Subscribe& spec) {
  auto reply = rpc(MsgType::kSubscribeAck,
                   encode_frame(MsgType::kSubscribe, spec.encode()));
  if (!reply) return reply.status();
  return SubscribeAck::decode(*reply);
}

Expected<SubscribeAck> Client::subscribe(const Subscribe& spec) {
  auto ack = do_subscribe(spec);
  if (ack && reconnect_enabled_) {
    RecordedSub record;
    record.aggregate = false;
    record.spec = spec;
    record.original_sub_id = ack->subscription_id;
    record.sub_id = ack->subscription_id;
    record.period_ticks = spec.period_ticks == 0 ? 1 : spec.period_ticks;
    recorded_subs_.push_back(std::move(record));
  }
  return ack;
}

Expected<AggSubscribeAck> Client::do_subscribe_aggregate(
    const AggSubscribe& spec) {
  if (negotiated_version_ < 2) {
    return make_error(StatusCode::kNotSupported,
                      "aggregate streams need protocol v2");
  }
  auto reply = rpc(MsgType::kSubscribeAggregateAck,
                   encode_frame(MsgType::kSubscribeAggregate, spec.encode()));
  if (!reply) return reply.status();
  return AggSubscribeAck::decode(*reply);
}

Expected<AggSubscribeAck> Client::subscribe_aggregate(
    const AggSubscribe& spec) {
  auto ack = do_subscribe_aggregate(spec);
  if (ack && reconnect_enabled_) {
    RecordedSub record;
    record.aggregate = true;
    record.agg_spec = spec;
    record.original_sub_id = ack->subscription_id;
    record.sub_id = ack->subscription_id;
    record.period_ticks = spec.period_ticks == 0 ? 1 : spec.period_ticks;
    recorded_subs_.push_back(std::move(record));
  }
  return ack;
}

Status Client::unsubscribe(std::uint32_t subscription_id) {
  Unsubscribe msg;
  msg.subscription_id = subscription_id;
  auto reply = rpc(MsgType::kUnsubscribeAck,
                   encode_frame(MsgType::kUnsubscribe, msg.encode()));
  if (!reply) return reply.status();
  recorded_subs_.erase(
      std::remove_if(recorded_subs_.begin(), recorded_subs_.end(),
                     [&](const RecordedSub& sub) {
                       return sub.sub_id == subscription_id;
                     }),
      recorded_subs_.end());
  return Status::ok();
}

Expected<StatsReply> Client::stats() {
  auto reply = rpc(MsgType::kStatsReply,
                   encode_frame(MsgType::kGetStats, GetStats{}.encode()));
  if (!reply) return reply.status();
  return StatsReply::decode(*reply);
}

Status Client::close() {
  // Intentional teardown: a connection we close on purpose must not be
  // healed behind the caller's back.
  reconnect_enabled_ = false;
  if (!connected()) return Status::ok();
  auto reply =
      rpc(MsgType::kCloseAck, encode_frame(MsgType::kClose, Close{}.encode()));
  conn_->close();
  if (!reply) return reply.status();
  return Status::ok();
}

std::vector<WireSample> Client::take_samples() {
  // Sweep the transport once so freshly flushed samples are included.
  if (connected() || reconnect_enabled_) pump_once();
  std::vector<WireSample> out(samples_.begin(), samples_.end());
  samples_.clear();
  return out;
}

std::vector<AggSample> Client::take_agg_samples() {
  if (connected() || reconnect_enabled_) pump_once();
  std::vector<AggSample> out(agg_samples_.begin(), agg_samples_.end());
  agg_samples_.clear();
  return out;
}

}  // namespace hetpapi::service
