// Pluggable byte-stream transport under the hetpapid wire protocol.
//
// A Connection is an ordered, unframed byte pipe — framing lives in
// proto::FrameReader on top, so both transports exercise the same
// length-prefix reassembly logic. Two implementations:
//
//  * LoopbackTransport — in-process, threadless, deterministic. Bytes
//    move through paired queues; the client side can pump the daemon
//    (via a registered hook) while waiting for a reply, so synchronous
//    RPC works single-threaded. Delivery can be chunked to a fixed size
//    to exercise partial-frame reassembly, and a peer can be paused to
//    simulate a slow client (send() then reports would-block, letting
//    the daemon's backpressure machinery build a queue).
//
//  * UnixSocketTransport — AF_UNIX SOCK_STREAM for real multi-process
//    use, with EINTR-safe accept/read/write loops and nonblocking
//    server-side endpoints (the daemon must never block on one client).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/status.hpp"

namespace hetpapi::service {

class Connection {
 public:
  virtual ~Connection() = default;

  /// Queue up to `size` bytes for the peer; returns how many were
  /// accepted (0 = would block — retry after the peer drains). Partial
  /// writes are normal; callers must resubmit the tail.
  virtual Expected<std::size_t> send(const std::uint8_t* data,
                                     std::size_t size) = 0;

  /// Append whatever bytes are available onto `out`; returns the count
  /// (0 = nothing pending right now). A closed peer is an error
  /// (kNotRunning) once the in-flight bytes are drained.
  virtual Expected<std::size_t> receive(std::vector<std::uint8_t>& out) = 0;

  virtual void close() = 0;
  virtual bool is_open() const = 0;
};

class Listener {
 public:
  virtual ~Listener() = default;

  /// The next pending connection, or kNotFound when none is waiting
  /// (never blocks — the daemon polls).
  virtual Expected<std::unique_ptr<Connection>> accept() = 0;
};

// --- loopback --------------------------------------------------------------

class LoopbackTransport {
 public:
  struct Config {
    /// Deliver at most this many bytes per receive() call (0 = all
    /// available) — forces the frame reader to reassemble split frames.
    std::size_t max_chunk_bytes = 0;
    /// Cap on bytes a peer may buffer before send() reports would-block
    /// (0 = unlimited). Models a socket send buffer.
    std::size_t pipe_capacity_bytes = 0;
  };

  LoopbackTransport() = default;
  explicit LoopbackTransport(Config config) : config_(config) {}

  /// Client side: open a connection whose peer shows up at the
  /// listener. Returns the client endpoint.
  std::unique_ptr<Connection> connect();

  /// Server side: hand to the daemon.
  Listener* listener() { return &listener_; }

  /// Invoked by a client endpoint when it waits for bytes that are not
  /// there yet — the daemon registers `[d]{ d->poll(); }` here so
  /// synchronous client RPC works without threads.
  void set_pump(std::function<void()> pump) { pump_ = std::move(pump); }

  /// Pause/resume delivery *into* the client endpoint of connection
  /// `index` (in connect() order): while paused the daemon's writes
  /// report would-block — the slow-client simulation.
  void set_client_paused(std::size_t index, bool paused);

 private:
  /// One direction of a connection: a byte queue plus lifecycle flags.
  struct Pipe {
    std::deque<std::uint8_t> bytes;
    bool writer_closed = false;
    bool paused = false;
  };
  struct Link {
    Pipe to_server;  // client writes, server reads
    Pipe to_client;  // server writes, client reads
  };

  class Endpoint final : public Connection {
   public:
    Endpoint(LoopbackTransport* transport, std::shared_ptr<Link> link,
             bool is_client)
        : transport_(transport), link_(std::move(link)), is_client_(is_client) {}
    ~Endpoint() override { close(); }

    Expected<std::size_t> send(const std::uint8_t* data,
                               std::size_t size) override;
    Expected<std::size_t> receive(std::vector<std::uint8_t>& out) override;
    void close() override;
    bool is_open() const override { return open_; }

   private:
    Pipe& outgoing() { return is_client_ ? link_->to_server : link_->to_client; }
    Pipe& incoming() { return is_client_ ? link_->to_client : link_->to_server; }

    LoopbackTransport* transport_;
    std::shared_ptr<Link> link_;
    bool is_client_;
    bool open_ = true;
  };

  class LoopbackListener final : public Listener {
   public:
    explicit LoopbackListener(LoopbackTransport* transport)
        : transport_(transport) {}
    Expected<std::unique_ptr<Connection>> accept() override;

   private:
    LoopbackTransport* transport_;
  };

  Config config_;
  std::function<void()> pump_;
  LoopbackListener listener_{this};
  std::deque<std::unique_ptr<Endpoint>> pending_accepts_;
  std::vector<std::shared_ptr<Link>> links_;  // in connect() order
};

// --- unix domain sockets ---------------------------------------------------

/// Client side: connect to a daemon at `path`. The returned connection
/// blocks in receive() until bytes arrive (EINTR-safe), which is what a
/// synchronous RPC client wants.
Expected<std::unique_ptr<Connection>> unix_connect(const std::string& path);

/// Server side: bind + listen on `path` (unlinking any stale socket
/// first). Accepted connections are nonblocking.
Expected<std::unique_ptr<Listener>> unix_listen(const std::string& path);

}  // namespace hetpapi::service
