// hetpapid wire protocol: versioned, length-prefixed binary frames.
//
// Every message on the wire is one frame:
//
//   u32 LE payload length  |  u8 message type  |  payload bytes
//
// The length covers the type byte plus the payload, so a reader can
// resynchronize on frame boundaries without understanding any message.
// Payload fields are fixed-width little-endian scalars and
// u32-length-prefixed strings/arrays — no padding, no host-order leaks,
// so the same byte stream is valid across the loopback and unix-socket
// transports and across builds (the determinism tests compare raw
// bytes). Version negotiation happens in Hello/HelloAck: the daemon
// serves every version in [kMinProtocolVersion, kProtocolVersion] at
// the client's offered version (a v1 client keeps the exact v1 message
// shapes) and refuses anything outside that range — a client from the
// future downgrades by offering a lower version.
//
// Message catalogue (see DESIGN.md §9 for the full table):
//   client -> daemon: Hello, OpenSession, AddEvents, Start, Read,
//                     Subscribe, Unsubscribe, SubscribeAggregate (v2),
//                     GetStats, Close, Ping (v3)
//   daemon -> client: HelloAck, OpenSessionAck, AddEventsAck, StartAck,
//                     ReadReply, SubscribeAck, UnsubscribeAck, Sample
//                     (streamed), SubscribeAggregateAck (v2), AggSample
//                     (streamed, v2), StatsReply, CloseAck, Error,
//                     Goodbye, Ping/Pong (v3 liveness, either direction)
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "base/status.hpp"

namespace hetpapi::service {

/// Bumped on any wire change. v2 adds the aggregation verbs
/// (SubscribeAggregate / SubscribeAggregateAck / AggSample) and the
/// StatsReply sharding/aggregation tail; v3 adds the self-healing
/// machinery — Ping/Pong liveness, the HelloAck session epoch, and a
/// per-subscription sequence tail on Sample/AggSample so a resumed
/// client measures its gap exactly. Everything a v1/v2 client speaks
/// is unchanged on the wire.
inline constexpr std::uint32_t kProtocolVersion = 3;

/// Oldest version the daemon still serves. A v1 client negotiates down
/// in HelloAck and sees exactly the v1 message shapes.
inline constexpr std::uint32_t kMinProtocolVersion = 1;

/// Upper bound on one frame's payload (type byte included); a length
/// prefix beyond this is a protocol error, not an allocation request.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

enum class MsgType : std::uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kOpenSession = 3,
  kOpenSessionAck = 4,
  kAddEvents = 5,
  kAddEventsAck = 6,
  kStart = 7,
  kStartAck = 8,
  kRead = 9,
  kReadReply = 10,
  kSubscribe = 11,
  kSubscribeAck = 12,
  kUnsubscribe = 13,
  kUnsubscribeAck = 14,
  kSample = 15,
  kGetStats = 16,
  kStatsReply = 17,
  kClose = 18,
  kCloseAck = 19,
  kError = 20,
  kGoodbye = 21,
  // v2 aggregation verbs.
  kSubscribeAggregate = 22,
  kSubscribeAggregateAck = 23,
  kAggSample = 24,
  // v3 liveness verbs (either direction; the peer echoes the token).
  kPing = 25,
  kPong = 26,
};

/// Stable, test-visible name for a message type ("?" when unknown).
std::string_view to_string(MsgType type) noexcept;

/// What an EventSet binds to, on the wire.
enum class TargetKind : std::uint8_t {
  kDefault = 0,  // the backend's default target
  kThread = 1,   // target = tid
  kCpu = 2,      // target = logical cpu
};

// --- payload serialization ------------------------------------------------

/// Appends fixed-width LE scalars and length-prefixed strings to a byte
/// buffer. All encode() functions below are built from this.
class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_.push_back((v >> (8 * i)) & 0xffu);
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes_.push_back((v >> (8 * i)) & 0xffu);
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(std::string_view s) {
    // Reserve before the length prefix: GCC 12's -Wstringop-overflow
    // misfires on the insert when the push_backs above get inlined and
    // the analyzer loses track of the grown capacity.
    bytes_.reserve(bytes_.size() + 4 + s.size());
    u32(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  void str_list(const std::vector<std::string>& list) {
    u32(static_cast<std::uint32_t>(list.size()));
    for (const std::string& s : list) str(s);
  }
  void i64_list(const std::vector<long long>& list) {
    u32(static_cast<std::uint32_t>(list.size()));
    for (const long long v : list) i64(v);
  }
  void u8_list(const std::vector<std::uint8_t>& list) {
    u32(static_cast<std::uint32_t>(list.size()));
    for (const std::uint8_t v : list) u8(v);
  }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// The mirror of Writer: consumes a payload, turning truncation or
/// over-long lengths into kInvalidArgument instead of UB. After a
/// failed read the reader is poisoned — further reads keep failing.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::uint8_t>& bytes)
      : Reader(bytes.data(), bytes.size()) {}

  Expected<std::uint8_t> u8();
  Expected<std::uint32_t> u32();
  Expected<std::uint64_t> u64();
  Expected<std::int64_t> i64();
  Expected<double> f64();
  Expected<std::string> str();
  Expected<std::vector<std::string>> str_list();
  Expected<std::vector<long long>> i64_list();
  Expected<std::vector<std::uint8_t>> u8_list();

  std::size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ >= size_ && !failed_; }

 private:
  bool take(std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

// --- framing ---------------------------------------------------------------

/// One decoded frame: the message type plus its raw payload.
struct Frame {
  MsgType type{};
  std::vector<std::uint8_t> payload;

  Reader reader() const { return Reader(payload); }
};

/// Serialize a frame: length prefix + type byte + payload.
std::vector<std::uint8_t> encode_frame(MsgType type,
                                       const std::vector<std::uint8_t>& payload);
inline std::vector<std::uint8_t> encode_frame(MsgType type, Writer writer) {
  return encode_frame(type, writer.take());
}

/// Incremental frame reassembly over an arbitrary byte stream: feed()
/// whatever the transport delivered (any chunking, including mid-prefix
/// splits), pop complete frames with next(). A malformed length prefix
/// poisons the stream permanently — the connection must be dropped.
class FrameReader {
 public:
  void feed(const std::uint8_t* data, std::size_t size) {
    buffer_.insert(buffer_.end(), data, data + size);
  }
  void feed(const std::vector<std::uint8_t>& bytes) {
    feed(bytes.data(), bytes.size());
  }

  /// kOk with a frame, kNotFound when no complete frame is buffered,
  /// kInvalidArgument when the stream is corrupt (oversized or empty
  /// length prefix).
  Expected<Frame> next();

  bool corrupt() const { return corrupt_; }
  std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  // bytes of buffer_ already handed out
  bool corrupt_ = false;
};

// --- messages --------------------------------------------------------------

struct Hello {
  std::uint32_t version = kProtocolVersion;
  std::string client_name;

  std::vector<std::uint8_t> encode() const;
  static Expected<Hello> decode(const Frame& frame);
};

struct HelloAck {
  std::uint32_t version = kProtocolVersion;
  std::uint32_t client_id = 0;
  std::string server_name;
  /// v3 tail: the daemon's session epoch. A reconnecting client
  /// compares epochs — same epoch means the same daemon process, so
  /// tick-based gap accounting across the reconnect is exact; a changed
  /// epoch means the daemon restarted and the gap is unknowable.
  /// encode(<=2) omits the field; decode accepts both lengths.
  std::uint64_t epoch = 0;

  std::vector<std::uint8_t> encode(
      std::uint32_t version_out = kProtocolVersion) const;
  static Expected<HelloAck> decode(const Frame& frame);
};

struct OpenSession {
  TargetKind target_kind = TargetKind::kDefault;
  std::int64_t target = 0;

  std::vector<std::uint8_t> encode() const;
  static Expected<OpenSession> decode(const Frame& frame);
};

struct OpenSessionAck {
  std::uint32_t session_id = 0;

  std::vector<std::uint8_t> encode() const;
  static Expected<OpenSessionAck> decode(const Frame& frame);
};

struct AddEvents {
  std::uint32_t session_id = 0;
  std::vector<std::string> events;

  std::vector<std::uint8_t> encode() const;
  static Expected<AddEvents> decode(const Frame& frame);
};

struct AddEventsAck {
  /// Canonical (coalescing-key) names, one per added event.
  std::vector<std::string> canonical_names;

  std::vector<std::uint8_t> encode() const;
  static Expected<AddEventsAck> decode(const Frame& frame);
};

struct Start {
  std::uint32_t session_id = 0;

  std::vector<std::uint8_t> encode() const;
  static Expected<Start> decode(const Frame& frame);
};

struct Read {
  std::uint32_t session_id = 0;

  std::vector<std::uint8_t> encode() const;
  static Expected<Read> decode(const Frame& frame);
};

struct ReadReply {
  std::vector<long long> values;          // one per added event
  std::vector<std::uint8_t> degraded;     // 1 = partial sum (see Reading)

  std::vector<std::uint8_t> encode() const;
  static Expected<ReadReply> decode(const Frame& frame);
};

struct Subscribe {
  TargetKind target_kind = TargetKind::kDefault;
  std::int64_t target = 0;
  std::vector<std::string> events;
  /// Deliver one Sample every this many daemon ticks (>= 1).
  std::uint32_t period_ticks = 1;
  /// Stream per-PMU constituent values alongside the totals.
  std::uint8_t qualified = 0;

  std::vector<std::uint8_t> encode() const;
  static Expected<Subscribe> decode(const Frame& frame);
};

struct SubscribeAck {
  std::uint32_t subscription_id = 0;
  /// Identity of the server-side shared subscription this rider joined;
  /// equal ids == one coalesced EventSet (the coalescing oracle).
  std::uint32_t shared_key_id = 0;

  std::vector<std::uint8_t> encode() const;
  static Expected<SubscribeAck> decode(const Frame& frame);
};

struct Unsubscribe {
  std::uint32_t subscription_id = 0;

  std::vector<std::uint8_t> encode() const;
  static Expected<Unsubscribe> decode(const Frame& frame);
};

/// The streamed measurement record — the wire rendition of a
/// telemetry::Sample restricted to what the daemon serves: counter
/// values (plus the qualified per-PMU breakdown on request) and the
/// package telemetry the daemon's sampler attaches when enabled.
struct WireSample {
  std::uint32_t subscription_id = 0;
  std::uint64_t tick = 0;
  double t_seconds = 0.0;
  std::vector<long long> values;
  std::vector<std::uint8_t> degraded;
  std::uint8_t counters_ok = 1;
  /// NaN when the daemon does not attach telemetry.
  double package_temp_c = 0.0;
  double package_power_w = 0.0;
  /// Per-slot constituent breakdown, flattened as (name, value) pairs
  /// per slot; empty unless the subscription asked for qualified reads.
  std::vector<std::vector<std::pair<std::string, long long>>> parts;
  /// v3 tail: per-subscription delivery sequence number, starting at 1
  /// and incremented per delivered sample. Encoded LAST so the daemon's
  /// template fan-out can patch it at frame end (like subscription_id
  /// at bytes [5,9)) and so the v2 shape is a strict prefix. encode(<=2)
  /// omits it; decode accepts both lengths.
  std::uint64_t seq = 0;

  std::vector<std::uint8_t> encode(
      std::uint32_t version = kProtocolVersion) const;
  static Expected<WireSample> decode(const Frame& frame);
};

/// v2: join (or create) an aggregated stream for one event spec. On a
/// leaf daemon this rides the same coalesced shared subscription as a
/// qualified Subscribe; on a daemon with downstreams it fans the spec
/// out to every downstream and re-exports the merged stream. Aggregate
/// reads are always qualified — the per-core-type breakdown is the
/// point of the merge.
struct AggSubscribe {
  TargetKind target_kind = TargetKind::kDefault;
  std::int64_t target = 0;
  std::vector<std::string> events;
  std::uint32_t period_ticks = 1;

  std::vector<std::uint8_t> encode() const;
  static Expected<AggSubscribe> decode(const Frame& frame);
};

struct AggSubscribeAck {
  std::uint32_t subscription_id = 0;
  /// Identity of the server-side aggregate this rider joined (same
  /// oracle role as SubscribeAck::shared_key_id).
  std::uint32_t shared_key_id = 0;
  /// Number of merge contributors: 1 on a leaf daemon, the downstream
  /// count on an aggregator node.
  std::uint32_t fanin = 0;

  std::vector<std::uint8_t> encode() const;
  static Expected<AggSubscribeAck> decode(const Frame& frame);
};

/// Per-event-slot statistics over the aggregate's contributors
/// (ShellPM's PerfWatch gather shape: min/max/avg/σ across ranks; here
/// the "ranks" are downstream daemons, or the single local reading on
/// a leaf).
struct SlotStats {
  long long sum = 0;
  long long min = 0;
  long long max = 0;
  double avg = 0.0;
  double stddev = 0.0;  // population σ across contributors
  std::uint32_t count = 0;  // contributors folded into this slot
  /// Additive per-core-type totals, merged by label across
  /// contributors and sorted by label for byte determinism.
  std::vector<std::pair<std::string, long long>> per_core_type;
};

/// v2 streamed aggregate record. subscription_id is deliberately the
/// first payload field: the daemon encodes one template frame per
/// aggregate per due tick and patches bytes [5,9) per subscriber.
struct AggSample {
  std::uint32_t subscription_id = 0;
  std::uint64_t tick = 0;
  double t_seconds = 0.0;
  /// 1 when every live contributor reported this tick; 0 when the
  /// merge proceeded with a subset (a downstream was stale or dead).
  std::uint8_t complete = 1;
  std::vector<SlotStats> slots;  // one per subscribed event
  /// v3 tail: per-subscription delivery sequence (see WireSample::seq).
  std::uint64_t seq = 0;

  std::vector<std::uint8_t> encode(
      std::uint32_t version = kProtocolVersion) const;
  static Expected<AggSample> decode(const Frame& frame);
};

struct GetStats {
  std::vector<std::uint8_t> encode() const;
  static Expected<GetStats> decode(const Frame& frame);
};

/// Daemon-side accounting, queryable over the wire so load generators
/// can compute the coalescing ratio without a side channel.
struct StatsReply {
  std::uint64_t ticks = 0;
  std::uint64_t backend_reads = 0;       // one per shared subscription per due tick
  std::uint64_t samples_delivered = 0;   // one per subscriber per due tick
  std::uint64_t frames_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint32_t active_clients = 0;
  std::uint32_t active_sessions = 0;
  std::uint32_t distinct_subscriptions = 0;
  std::uint32_t total_subscribers = 0;
  std::uint32_t clients_dropped_slow = 0;
  std::uint32_t clients_closed_idle = 0;
  // v2 tail: sharding + aggregation accounting. encode(1) omits these
  // four fields so v1 clients keep decoding the exact v1 shape; decode
  // accepts both lengths.
  std::uint32_t shards = 0;
  std::uint32_t downstreams = 0;
  std::uint32_t agg_subscriptions = 0;
  std::uint64_t agg_samples_delivered = 0;

  std::vector<std::uint8_t> encode(
      std::uint32_t version = kProtocolVersion) const;
  static Expected<StatsReply> decode(const Frame& frame);
};

struct Close {
  std::vector<std::uint8_t> encode() const;
  static Expected<Close> decode(const Frame& frame);
};

struct CloseAck {
  std::vector<std::uint8_t> encode() const;
  static Expected<CloseAck> decode(const Frame& frame);
};

/// RPC failure: the StatusCode (numeric, stable) plus the daemon's
/// message and which request type it answers.
struct WireError {
  std::int32_t code = 0;
  std::uint8_t in_reply_to = 0;  // MsgType of the failed request
  std::string message;

  Status to_status() const {
    return Status(static_cast<StatusCode>(code), message);
  }

  std::vector<std::uint8_t> encode() const;
  static Expected<WireError> decode(const Frame& frame);
};

/// Server-initiated farewell (drain, idle timeout, slow-client drop).
struct Goodbye {
  std::string reason;

  std::vector<std::uint8_t> encode() const;
  static Expected<Goodbye> decode(const Frame& frame);
};

/// v3 liveness probe. Either side may ping; the peer echoes the token
/// in a Pong. The daemon drops a client that leaves N pings unanswered
/// (the half-dead peer with live subscriptions the idle timeout never
/// catches).
struct Ping {
  std::uint64_t token = 0;

  std::vector<std::uint8_t> encode() const;
  static Expected<Ping> decode(const Frame& frame);
};

struct Pong {
  std::uint64_t token = 0;

  std::vector<std::uint8_t> encode() const;
  static Expected<Pong> decode(const Frame& frame);
};

}  // namespace hetpapi::service
