#include "service/daemon.hpp"

#include <algorithm>
#include <climits>
#include <cmath>

#include "base/log.hpp"
#include "base/strings.hpp"

namespace hetpapi::service {

namespace {

/// One coalescing key: target kind/id, period, qualified flag, then the
/// ordered canonical event names. Order-sensitive by design — the
/// streamed value vector must match each subscriber's requested slot
/// order, so differently-ordered lists are distinct subscriptions.
std::string make_key(TargetKind kind, std::int64_t target,
                     std::uint32_t period_ticks, bool qualified,
                     const std::vector<std::string>& canonical_events) {
  std::string key = str_format("k%d|t%lld|p%u|q%d|",
                               static_cast<int>(kind),
                               static_cast<long long>(target), period_ticks,
                               qualified ? 1 : 0);
  for (const std::string& event : canonical_events) {
    key += event;
    key += '\x1f';
  }
  return key;
}

/// Overwrite the leading u32 subscription_id of an encoded frame
/// (4-byte length prefix + type byte, then the payload whose first
/// field every streamed sample type puts the subscription id in).
void patch_subscription_id(std::vector<std::uint8_t>& frame,
                           std::uint32_t subscription_id) {
  for (int i = 0; i < 4; ++i) {
    frame[5 + static_cast<std::size_t>(i)] =
        (subscription_id >> (8 * i)) & 0xffu;
  }
}

/// Overwrite the trailing u64 sequence number of a v3 sample frame
/// (both v3 sample shapes encode seq LAST for exactly this reason).
void patch_sequence_tail(std::vector<std::uint8_t>& frame, std::uint64_t seq) {
  const std::size_t base = frame.size() - 8;
  for (int i = 0; i < 8; ++i) {
    frame[base + static_cast<std::size_t>(i)] = (seq >> (8 * i)) & 0xffu;
  }
}

}  // namespace

Daemon::Daemon(simkernel::SimKernel* kernel, papi::Backend* backend,
               DaemonConfig config)
    : kernel_(kernel), backend_(backend), config_(std::move(config)) {}

Daemon::~Daemon() { shutdown(); }

Status Daemon::init() {
  auto lib = papi::Library::init(backend_, config_.library);
  if (!lib) return lib.status();
  library_ = std::move(*lib);
  if (config_.include_telemetry && kernel_ != nullptr) {
    sampler_ = std::make_unique<telemetry::Sampler>(kernel_);
    sampler_->reset();
  }
  if (config_.encode_threads > 1) {
    encode_pool_ = std::make_unique<ThreadPool>(config_.encode_threads);
  }
  shard_count_ = std::max<std::size_t>(1, config_.shards);
  return Status::ok();
}

void Daemon::add_listener(Listener* listener) {
  listeners_.push_back(listener);
}

void Daemon::add_downstream(std::unique_ptr<Client> client,
                            ConnectionFactory factory) {
  Downstream link;
  link.client = std::move(client);
  link.factory = std::move(factory);
  const Status s = link.client->hello(config_.name + "/downstream");
  link.alive = s.is_ok();
  if (!link.alive) {
    HETPAPI_WARN << "downstream handshake failed: " << s.message();
  }
  downstreams_.push_back(std::move(link));
}

std::size_t Daemon::session_count() const {
  std::size_t n = 0;
  for (const auto& client : clients_) n += client->sessions.size();
  return n;
}

std::size_t Daemon::total_subscriber_count() const {
  std::size_t n = 0;
  for (const auto& [key_id, sub] : shared_subs_) n += sub.subscribers.size();
  for (const auto& [key_id, agg] : agg_subs_) n += agg.subscribers.size();
  return n;
}

std::size_t Daemon::live_downstream_count() const {
  std::size_t n = 0;
  for (const Downstream& link : downstreams_) {
    if (link.alive && link.client->connected()) ++n;
  }
  return n;
}

// --- wire plumbing ---------------------------------------------------------

void Daemon::accept_pending() {
  for (Listener* listener : listeners_) {
    for (;;) {
      auto conn = listener->accept();
      if (!conn) break;
      if (config_.max_clients > 0 && clients_.size() >= config_.max_clients) {
        // Admission control: refuse at the door. The peer gets an
        // explicit kOverloaded plus a Goodbye (best effort — it may be
        // gone already) and no ClientState is ever created, so a
        // connection storm cannot grow daemon memory.
        ++stats_.overload_rejections;
        WireError err;
        err.code = static_cast<std::int32_t>(StatusCode::kOverloaded);
        err.in_reply_to = static_cast<std::uint8_t>(MsgType::kHello);
        err.message = "daemon at max_clients";
        const auto err_frame = encode_frame(MsgType::kError, err.encode());
        (void)(*conn)->send(err_frame.data(), err_frame.size());
        Goodbye bye;
        bye.reason = "refused: overloaded";
        const auto bye_frame = encode_frame(MsgType::kGoodbye, bye.encode());
        (void)(*conn)->send(bye_frame.data(), bye_frame.size());
        stats_.frames_sent += 2;
        (*conn)->close();
        continue;
      }
      auto client = std::make_unique<ClientState>();
      client->id = next_client_id_++;
      client->shard = client->id % shard_count_;
      client->conn = std::move(*conn);
      client->last_activity_tick = stats_.ticks;
      clients_by_id_.emplace(client->id, client.get());
      clients_.push_back(std::move(client));
    }
  }
}

void Daemon::enqueue(ClientState& client, MsgType type,
                     const std::vector<std::uint8_t>& payload) {
  client.out.push_back({encode_frame(type, payload), 0});
  ++stats_.frames_sent;
}

void Daemon::enqueue_error(ClientState& client, MsgType in_reply_to,
                           const Status& s) {
  WireError err;
  err.code = static_cast<std::int32_t>(s.code());
  err.in_reply_to = static_cast<std::uint8_t>(in_reply_to);
  err.message = s.message();
  enqueue(client, MsgType::kError, err.encode());
}

void Daemon::flush_client(ClientState& client, std::size_t max_ops) {
  if (!client.conn->is_open()) {
    client.out.clear();
    return;
  }
  std::size_t ops = 0;
  while (!client.out.empty()) {
    if (max_ops > 0 && ops >= max_ops) return;  // deadline; caller moves on
    PendingBytes& front = client.out.front();
    auto sent = client.conn->send(front.bytes.data() + front.offset,
                                  front.bytes.size() - front.offset);
    if (!sent) {  // peer gone
      teardown_client(client);
      client.conn->close();
      return;
    }
    if (*sent == 0) return;  // would block; retry next poll/tick
    ++ops;
    front.offset += *sent;
    if (front.offset >= front.bytes.size()) client.out.pop_front();
  }
  if (client.closing) client.conn->close();
}

void Daemon::enforce_queue_cap(ClientState& client) {
  if (client.closing || client.out.size() <= config_.max_client_queue_frames) {
    return;
  }
  // Slow-client drop: releasing its subscriptions keeps one wedged
  // consumer from growing daemon memory without bound or stalling the
  // shared tick. One best-effort Goodbye, then the connection dies.
  ++stats_.clients_dropped_slow;
  teardown_client(client);
  client.out.clear();
  Goodbye bye;
  bye.reason = "dropped: send queue overflow (slow client)";
  const auto frame = encode_frame(MsgType::kGoodbye, bye.encode());
  (void)client.conn->send(frame.data(), frame.size());
  ++stats_.frames_sent;
  client.conn->close();
}

void Daemon::reap_closed() {
  std::erase_if(clients_, [&](const std::unique_ptr<ClientState>& client) {
    if (client->conn->is_open()) return false;
    teardown_client(*client);
    clients_by_id_.erase(client->id);
    return true;
  });
}

void Daemon::drain_client(ClientState& client) {
  std::vector<std::uint8_t> bytes;
  for (;;) {
    auto n = client.conn->receive(bytes);
    if (!n) {  // peer closed or transport error
      teardown_client(client);
      client.conn->close();
      return;
    }
    if (*n == 0) break;
  }
  if (!bytes.empty()) {
    client.reader.feed(bytes);
    client.last_activity_tick = stats_.ticks;
    // Inbound traffic is proof of life: cancel any outstanding ping.
    client.ping_outstanding = false;
    client.pings_missed = 0;
  }
  for (;;) {
    auto frame = client.reader.next();
    if (!frame) {
      if (client.reader.corrupt()) {
        ++stats_.protocol_errors;
        teardown_client(client);
        client.conn->close();
      }
      return;
    }
    dispatch(client, *frame);
    if (!client.conn->is_open()) return;
  }
}

void Daemon::dispatch(ClientState& client, const Frame& frame) {
  ++stats_.frames_received;
  if (!client.hello_done && frame.type != MsgType::kHello) {
    ++stats_.protocol_errors;
    enqueue_error(client, frame.type,
                  make_error(StatusCode::kPermission,
                             "handshake required before " +
                                 std::string(to_string(frame.type))));
    client.closing = true;
    return;
  }
  switch (frame.type) {
    case MsgType::kHello: on_hello(client, frame); return;
    case MsgType::kOpenSession: on_open_session(client, frame); return;
    case MsgType::kAddEvents: on_add_events(client, frame); return;
    case MsgType::kStart: on_start(client, frame); return;
    case MsgType::kRead: on_read(client, frame); return;
    case MsgType::kSubscribe: on_subscribe(client, frame); return;
    case MsgType::kSubscribeAggregate:
      if (client.version < 2) {
        ++stats_.protocol_errors;
        enqueue_error(client, frame.type,
                      make_error(StatusCode::kNotSupported,
                                 "SubscribeAggregate requires protocol v2"));
        return;
      }
      on_subscribe_aggregate(client, frame);
      return;
    case MsgType::kUnsubscribe: on_unsubscribe(client, frame); return;
    case MsgType::kGetStats: on_get_stats(client, frame); return;
    case MsgType::kClose: on_close(client, frame); return;
    case MsgType::kPing: {  // v3 liveness probe from the client: echo it
      auto msg = Ping::decode(frame);
      if (!msg) {
        ++stats_.protocol_errors;
        enqueue_error(client, frame.type, msg.status());
        return;
      }
      Pong pong;
      pong.token = msg->token;
      enqueue(client, MsgType::kPong, pong.encode());
      return;
    }
    case MsgType::kPong: {  // answer to OUR probe; drain_client already
      auto msg = Pong::decode(frame);  // reset the miss counters
      if (!msg) {
        ++stats_.protocol_errors;
        enqueue_error(client, frame.type, msg.status());
      }
      return;
    }
    default:
      ++stats_.protocol_errors;
      enqueue_error(client, frame.type,
                    make_error(StatusCode::kNotSupported,
                               "unexpected message type"));
      return;
  }
}

// --- handlers --------------------------------------------------------------

void Daemon::on_hello(ClientState& client, const Frame& frame) {
  auto msg = Hello::decode(frame);
  if (!msg) {
    ++stats_.protocol_errors;
    enqueue_error(client, frame.type, msg.status());
    client.closing = true;
    return;
  }
  if (msg->version < kMinProtocolVersion || msg->version > kProtocolVersion) {
    ++stats_.protocol_errors;
    enqueue_error(
        client, frame.type,
        make_error(StatusCode::kNotSupported,
                   str_format("protocol version %u not supported (daemon "
                              "speaks %u..%u)",
                              msg->version, kMinProtocolVersion,
                              kProtocolVersion)));
    client.closing = true;
    return;
  }
  // Serve down-level clients at their version: a v1 client keeps the
  // exact v1 message shapes and never sees a v2-only frame. (A client
  // from the future downgrades by offering a lower version.)
  client.version = msg->version;
  client.hello_done = true;
  HelloAck ack;
  ack.version = client.version;
  ack.client_id = client.id;
  ack.server_name = config_.name;
  ack.epoch = config_.epoch;  // dropped by encode() for pre-v3 peers
  enqueue(client, MsgType::kHelloAck, ack.encode(client.version));
}

Expected<int> Daemon::build_eventset(TargetKind kind, std::int64_t target,
                                     const std::vector<std::string>& events,
                                     std::vector<std::string>* canonical_out) {
  auto set = library_->create_eventset();
  if (!set) return set.status();
  const auto fail = [&](const Status& s) -> Expected<int> {
    (void)library_->destroy_eventset(*set);
    return s;
  };
  switch (kind) {
    case TargetKind::kDefault: break;
    case TargetKind::kThread: {
      const Status s =
          library_->attach(*set, static_cast<simkernel::Tid>(target));
      if (!s.is_ok()) return fail(s);
      break;
    }
    case TargetKind::kCpu: {
      const Status s = library_->attach_cpu(*set, static_cast<int>(target));
      if (!s.is_ok()) return fail(s);
      break;
    }
  }
  for (const std::string& event : events) {
    auto canonical = library_->canonical_event_name(event);
    if (!canonical) return fail(canonical.status());
    const Status added = library_->add_event(*set, event);
    if (!added.is_ok()) return fail(added);
    if (canonical_out != nullptr) canonical_out->push_back(std::move(*canonical));
  }
  return *set;
}

void Daemon::on_open_session(ClientState& client, const Frame& frame) {
  auto msg = OpenSession::decode(frame);
  if (!msg) {
    enqueue_error(client, frame.type, msg.status());
    return;
  }
  auto set = build_eventset(msg->target_kind, msg->target, {}, nullptr);
  if (!set) {
    enqueue_error(client, frame.type, set.status());
    return;
  }
  Session session;
  session.eventset = *set;
  const std::uint32_t session_id = next_session_id_++;
  client.sessions.emplace(session_id, std::move(session));
  OpenSessionAck ack;
  ack.session_id = session_id;
  enqueue(client, MsgType::kOpenSessionAck, ack.encode());
}

void Daemon::on_add_events(ClientState& client, const Frame& frame) {
  auto msg = AddEvents::decode(frame);
  if (!msg) {
    enqueue_error(client, frame.type, msg.status());
    return;
  }
  const auto it = client.sessions.find(msg->session_id);
  if (it == client.sessions.end()) {
    enqueue_error(client, frame.type,
                  make_error(StatusCode::kNoEventSet, "no such session"));
    return;
  }
  Session& session = it->second;
  // Atomic add: either every event in the request lands or none does.
  AddEventsAck ack;
  std::size_t added = 0;
  Status failure = Status::ok();
  for (const std::string& event : msg->events) {
    auto canonical = library_->canonical_event_name(event);
    if (canonical) {
      const Status s = library_->add_event(session.eventset, event);
      if (s.is_ok()) {
        ack.canonical_names.push_back(std::move(*canonical));
        ++added;
        continue;
      }
      failure = s;
    } else {
      failure = canonical.status();
    }
    for (std::size_t i = added; i-- > 0;) {
      (void)library_->remove_event(session.eventset, msg->events[i]);
    }
    enqueue_error(client, frame.type, failure);
    return;
  }
  session.canonical_names.insert(session.canonical_names.end(),
                                 ack.canonical_names.begin(),
                                 ack.canonical_names.end());
  enqueue(client, MsgType::kAddEventsAck, ack.encode());
}

void Daemon::on_start(ClientState& client, const Frame& frame) {
  auto msg = Start::decode(frame);
  if (!msg) {
    enqueue_error(client, frame.type, msg.status());
    return;
  }
  const auto it = client.sessions.find(msg->session_id);
  if (it == client.sessions.end()) {
    enqueue_error(client, frame.type,
                  make_error(StatusCode::kNoEventSet, "no such session"));
    return;
  }
  const Status s = library_->start(it->second.eventset);
  if (!s.is_ok()) {
    enqueue_error(client, frame.type, s);
    return;
  }
  enqueue(client, MsgType::kStartAck, {});
}

void Daemon::on_read(ClientState& client, const Frame& frame) {
  auto msg = Read::decode(frame);
  if (!msg) {
    enqueue_error(client, frame.type, msg.status());
    return;
  }
  const auto it = client.sessions.find(msg->session_id);
  if (it == client.sessions.end()) {
    enqueue_error(client, frame.type,
                  make_error(StatusCode::kNoEventSet, "no such session"));
    return;
  }
  auto reading = library_->read_checked(it->second.eventset);
  if (!reading) {
    enqueue_error(client, frame.type, reading.status());
    return;
  }
  ++stats_.backend_reads;
  ReadReply reply;
  reply.values = std::move(reading->values);
  reply.degraded = std::move(reading->value_degraded);
  enqueue(client, MsgType::kReadReply, reply.encode());
}

void Daemon::on_subscribe(ClientState& client, const Frame& frame) {
  auto msg = Subscribe::decode(frame);
  if (!msg) {
    enqueue_error(client, frame.type, msg.status());
    return;
  }
  if (msg->period_ticks == 0 || msg->events.empty()) {
    enqueue_error(client, frame.type,
                  make_error(StatusCode::kInvalidArgument,
                             "subscription needs events and period >= 1"));
    return;
  }
  if (config_.max_subscriptions > 0 &&
      client.subscriptions.size() + client.agg_subscriptions.size() >=
          config_.max_subscriptions) {
    ++stats_.overload_rejections;
    enqueue_error(client, frame.type,
                  make_error(StatusCode::kOverloaded,
                             "client at max_subscriptions"));
    return;
  }
  const std::uint32_t sub_id = next_subscription_id_++;
  auto key_id = join_subscription(client, sub_id, *msg, /*aggregate=*/false);
  if (!key_id) {
    enqueue_error(client, frame.type, key_id.status());
    return;
  }
  client.subscriptions.emplace(sub_id, *key_id);
  SubscribeAck ack;
  ack.subscription_id = sub_id;
  ack.shared_key_id = *key_id;
  enqueue(client, MsgType::kSubscribeAck, ack.encode());
}

void Daemon::on_subscribe_aggregate(ClientState& client, const Frame& frame) {
  auto msg = AggSubscribe::decode(frame);
  if (!msg) {
    enqueue_error(client, frame.type, msg.status());
    return;
  }
  if (msg->period_ticks == 0 || msg->events.empty()) {
    enqueue_error(client, frame.type,
                  make_error(StatusCode::kInvalidArgument,
                             "aggregate needs events and period >= 1"));
    return;
  }
  if (config_.max_subscriptions > 0 &&
      client.subscriptions.size() + client.agg_subscriptions.size() >=
          config_.max_subscriptions) {
    ++stats_.overload_rejections;
    enqueue_error(client, frame.type,
                  make_error(StatusCode::kOverloaded,
                             "client at max_subscriptions"));
    return;
  }
  const std::uint32_t sub_id = next_subscription_id_++;
  if (downstreams_.empty()) {
    // Leaf daemon: the aggregate rides the same coalesced qualified
    // shared subscription a plain Subscribe would create, so its
    // statistics are the local read verbatim (count=1, σ=0) and it
    // coalesces with direct subscribers onto one EventSet.
    Subscribe local;
    local.target_kind = msg->target_kind;
    local.target = msg->target;
    local.events = msg->events;
    local.period_ticks = msg->period_ticks;
    local.qualified = 1;
    auto key_id = join_subscription(client, sub_id, local, /*aggregate=*/true);
    if (!key_id) {
      enqueue_error(client, frame.type, key_id.status());
      return;
    }
    client.subscriptions.emplace(sub_id, *key_id);
    AggSubscribeAck ack;
    ack.subscription_id = sub_id;
    ack.shared_key_id = *key_id;
    ack.fanin = 1;
    enqueue(client, MsgType::kSubscribeAggregateAck, ack.encode());
    return;
  }
  auto key_id = join_aggregate(client, sub_id, *msg);
  if (!key_id) {
    enqueue_error(client, frame.type, key_id.status());
    return;
  }
  client.agg_subscriptions.emplace(sub_id, *key_id);
  const AggregateShared& agg = agg_subs_.at(*key_id);
  AggSubscribeAck ack;
  ack.subscription_id = sub_id;
  ack.shared_key_id = *key_id;
  for (const DownstreamState& st : agg.downstream) {
    if (st.sub_id != 0) ++ack.fanin;
  }
  enqueue(client, MsgType::kSubscribeAggregateAck, ack.encode());
}

Expected<std::uint32_t> Daemon::join_subscription(ClientState& client,
                                                  std::uint32_t subscription_id,
                                                  const Subscribe& spec,
                                                  bool aggregate) {
  std::vector<std::string> canonical;
  canonical.reserve(spec.events.size());
  for (const std::string& event : spec.events) {
    auto name = library_->canonical_event_name(event);
    if (!name) return name.status();
    canonical.push_back(std::move(*name));
  }
  const std::string key = make_key(spec.target_kind, spec.target,
                                   spec.period_ticks, spec.qualified != 0,
                                   canonical);
  if (const auto it = key_ids_.find(key); it != key_ids_.end()) {
    shared_subs_[it->second].subscribers.push_back(
        {client.id, subscription_id, aggregate});
    return it->second;
  }
  auto set = build_eventset(spec.target_kind, spec.target, spec.events,
                            nullptr);
  if (!set) return set.status();
  if (const Status s = library_->start(*set); !s.is_ok()) {
    (void)library_->destroy_eventset(*set);
    return s;
  }
  SharedSubscription sub;
  sub.key_id = next_key_id_++;
  sub.key = key;
  sub.eventset = *set;
  sub.period_ticks = spec.period_ticks;
  sub.qualified = spec.qualified != 0;
  sub.subscribers.push_back({client.id, subscription_id, aggregate});
  key_ids_.emplace(key, sub.key_id);
  const std::uint32_t key_id = sub.key_id;
  shared_subs_.emplace(key_id, std::move(sub));
  return key_id;
}

void Daemon::leave_subscription(std::uint32_t client_id, std::uint32_t sub_id,
                                std::uint32_t key_id) {
  const auto it = shared_subs_.find(key_id);
  if (it == shared_subs_.end()) return;
  SharedSubscription& sub = it->second;
  std::erase_if(sub.subscribers, [&](const Rider& rider) {
    return rider.client_id == client_id && rider.subscription_id == sub_id;
  });
  if (!sub.subscribers.empty()) return;
  // Last rider gone: tear the shared EventSet down. Force-destroy so a
  // backend fault during stop can never pin the set's fds.
  (void)library_->force_destroy_eventset(sub.eventset);
  key_ids_.erase(sub.key);
  shared_subs_.erase(it);
}

Expected<std::uint32_t> Daemon::join_aggregate(ClientState& client,
                                               std::uint32_t subscription_id,
                                               const AggSubscribe& spec) {
  std::vector<std::string> canonical;
  canonical.reserve(spec.events.size());
  for (const std::string& event : spec.events) {
    auto name = library_->canonical_event_name(event);
    if (!name) return name.status();
    canonical.push_back(std::move(*name));
  }
  const std::string key =
      "agg|" + make_key(spec.target_kind, spec.target, spec.period_ticks,
                        /*qualified=*/true, canonical);
  if (const auto it = agg_key_ids_.find(key); it != agg_key_ids_.end()) {
    agg_subs_[it->second].subscribers.push_back(
        {client.id, subscription_id, true});
    return it->second;
  }
  AggregateShared agg;
  agg.key = key;
  agg.spec = spec;
  agg.period_ticks = spec.period_ticks;
  agg.slot_count = canonical.size();
  agg.downstream.resize(downstreams_.size());
  std::size_t accepted = 0;
  for (std::size_t d = 0; d < downstreams_.size(); ++d) {
    Downstream& link = downstreams_[d];
    if (!link.alive || !link.client->connected()) continue;
    auto ack = link.client->subscribe_aggregate(spec);
    if (!ack) {
      // A refusing or faulting downstream is skipped, not fatal — its
      // siblings still feed the merge (the sample just reads
      // incomplete). A dead link stops being pumped entirely.
      if (!link.client->connected()) link.alive = false;
      continue;
    }
    agg.downstream[d].sub_id = ack->subscription_id;
    ++accepted;
  }
  if (accepted == 0) {
    return make_error(StatusCode::kNotRunning,
                      "no live downstream accepted the aggregate");
  }
  agg.key_id = next_agg_key_id_++;
  agg.subscribers.push_back({client.id, subscription_id, true});
  agg_key_ids_.emplace(key, agg.key_id);
  const std::uint32_t key_id = agg.key_id;
  agg_subs_.emplace(key_id, std::move(agg));
  return key_id;
}

void Daemon::leave_aggregate(std::uint32_t client_id, std::uint32_t sub_id,
                             std::uint32_t key_id) {
  const auto it = agg_subs_.find(key_id);
  if (it == agg_subs_.end()) return;
  AggregateShared& agg = it->second;
  std::erase_if(agg.subscribers, [&](const Rider& rider) {
    return rider.client_id == client_id && rider.subscription_id == sub_id;
  });
  if (!agg.subscribers.empty()) return;
  // Last rider gone: release the downstream legs.
  for (std::size_t d = 0; d < downstreams_.size(); ++d) {
    if (d >= agg.downstream.size() || agg.downstream[d].sub_id == 0) continue;
    Downstream& link = downstreams_[d];
    if (link.alive && link.client->connected()) {
      (void)link.client->unsubscribe(agg.downstream[d].sub_id);
    }
  }
  agg_key_ids_.erase(agg.key);
  agg_subs_.erase(it);
}

void Daemon::on_unsubscribe(ClientState& client, const Frame& frame) {
  auto msg = Unsubscribe::decode(frame);
  if (!msg) {
    enqueue_error(client, frame.type, msg.status());
    return;
  }
  if (const auto it = client.subscriptions.find(msg->subscription_id);
      it != client.subscriptions.end()) {
    leave_subscription(client.id, it->first, it->second);
    client.subscriptions.erase(it);
    enqueue(client, MsgType::kUnsubscribeAck, {});
    return;
  }
  if (const auto it = client.agg_subscriptions.find(msg->subscription_id);
      it != client.agg_subscriptions.end()) {
    leave_aggregate(client.id, it->first, it->second);
    client.agg_subscriptions.erase(it);
    enqueue(client, MsgType::kUnsubscribeAck, {});
    return;
  }
  enqueue_error(client, frame.type,
                make_error(StatusCode::kNotFound, "no such subscription"));
}

void Daemon::on_get_stats(ClientState& client, const Frame& frame) {
  auto msg = GetStats::decode(frame);
  if (!msg) {
    enqueue_error(client, frame.type, msg.status());
    return;
  }
  StatsReply reply;
  reply.ticks = stats_.ticks;
  reply.backend_reads = stats_.backend_reads;
  reply.samples_delivered = stats_.samples_delivered;
  reply.frames_received = stats_.frames_received;
  reply.frames_sent = stats_.frames_sent;
  reply.active_clients = static_cast<std::uint32_t>(clients_.size());
  reply.active_sessions = static_cast<std::uint32_t>(session_count());
  reply.distinct_subscriptions =
      static_cast<std::uint32_t>(shared_subs_.size());
  reply.total_subscribers =
      static_cast<std::uint32_t>(total_subscriber_count());
  reply.clients_dropped_slow = stats_.clients_dropped_slow;
  reply.clients_closed_idle = stats_.clients_closed_idle;
  reply.shards = static_cast<std::uint32_t>(shard_count_);
  reply.downstreams = static_cast<std::uint32_t>(downstreams_.size());
  reply.agg_subscriptions = static_cast<std::uint32_t>(agg_subs_.size());
  reply.agg_samples_delivered = stats_.agg_samples_delivered;
  enqueue(client, MsgType::kStatsReply, reply.encode(client.version));
}

void Daemon::on_close(ClientState& client, const Frame& frame) {
  auto msg = Close::decode(frame);
  if (!msg) {
    enqueue_error(client, frame.type, msg.status());
    return;
  }
  teardown_client(client);
  enqueue(client, MsgType::kCloseAck, {});
  client.closing = true;
}

void Daemon::teardown_client(ClientState& client) {
  for (const auto& [sub_id, key_id] : client.subscriptions) {
    leave_subscription(client.id, sub_id, key_id);
  }
  client.subscriptions.clear();
  for (const auto& [sub_id, key_id] : client.agg_subscriptions) {
    leave_aggregate(client.id, sub_id, key_id);
  }
  client.agg_subscriptions.clear();
  for (const auto& [session_id, session] : client.sessions) {
    (void)library_->force_destroy_eventset(session.eventset);
  }
  client.sessions.clear();
}

// --- the two drive shafts --------------------------------------------------

void Daemon::poll() {
  if (library_ == nullptr || shut_down_) return;
  accept_pending();
  for (const auto& client : clients_) {
    if (!client->conn->is_open()) continue;
    drain_client(*client);
  }
  for (const auto& client : clients_) {
    if (!client->conn->is_open()) continue;
    enforce_queue_cap(*client);
    flush_client(*client);
  }
  reap_closed();
}

void Daemon::deliver(const std::vector<std::vector<std::uint8_t>>& templates,
                     const std::vector<Delivery>& deliveries) {
  if (deliveries.empty()) return;
  // Bucket by shard. Each client lives in exactly one shard, so the
  // parallel stage below never touches a client from two jobs, and the
  // per-client enqueue order still follows the global delivery order —
  // which is why the byte stream is shard-count invariant.
  std::vector<std::vector<const Delivery*>> by_shard(shard_count_);
  for (const Delivery& d : deliveries) {
    const auto it = clients_by_id_.find(d.client_id);
    if (it == clients_by_id_.end()) continue;
    by_shard[it->second->shard].push_back(&d);
  }
  struct ShardCounters {
    std::uint64_t frames = 0;
    std::uint64_t samples = 0;
    std::uint64_t agg_samples = 0;
  };
  std::vector<ShardCounters> counters(shard_count_);
  const auto run_shard = [&](std::size_t s) {
    for (const Delivery* d : by_shard[s]) {
      ClientState* client = clients_by_id_.find(d->client_id)->second;
      const bool v3 = client->version >= 3;
      std::vector<std::uint8_t> frame =
          templates[v3 ? d->template_v3 : d->template_v2];
      patch_subscription_id(frame, d->subscription_id);
      if (v3) patch_sequence_tail(frame, d->seq);
      client->out.push_back({std::move(frame), 0});
      ++counters[s].frames;
      if (d->aggregate) {
        ++counters[s].agg_samples;
      } else {
        ++counters[s].samples;
      }
    }
  };
  if (encode_pool_ != nullptr) {
    encode_pool_->parallel_for_each(shard_count_, run_shard);
  } else {
    for (std::size_t s = 0; s < shard_count_; ++s) run_shard(s);
  }
  // Serial merge: fold the shard-local counters in shard order so the
  // totals never depend on scheduling.
  for (const ShardCounters& c : counters) {
    stats_.frames_sent += c.frames;
    stats_.samples_delivered += c.samples;
    stats_.agg_samples_delivered += c.agg_samples;
  }
}

void Daemon::serve_subscriptions() {
  struct DueRead {
    SharedSubscription* sub;
    std::vector<long long> values;
    std::vector<std::uint8_t> degraded;
    std::vector<std::vector<std::pair<std::string, long long>>> parts;
    std::uint8_t ok = 1;
  };
  std::vector<DueRead> due;
  for (auto& [key_id, sub] : shared_subs_) {
    if (stats_.ticks % sub.period_ticks == 0) due.push_back({&sub, {}, {}, {}, 1});
  }
  if (due.empty()) return;

  const double t_seconds =
      kernel_ != nullptr ? kernel_->now().seconds()
                         : static_cast<double>(stats_.ticks);
  double temp = std::nan("");
  double power = std::nan("");
  if (sampler_ != nullptr) {
    const telemetry::Sample s = sampler_->sample();
    temp = s.package_temp_c;
    power = s.package_power_w;
  }

  // The coalescing payoff: ONE backend read per distinct subscription,
  // regardless of how many clients ride it. Reads stay serial — the
  // backend is not a concurrent structure.
  for (DueRead& read : due) {
    ++stats_.backend_reads;
    if (read.sub->qualified) {
      auto q = library_->read_qualified(read.sub->eventset);
      if (!q) {
        read.ok = 0;
        continue;
      }
      for (const papi::QualifiedReading& slot : *q) {
        read.values.push_back(slot.total);
        read.degraded.push_back(slot.degraded ? 1 : 0);
        std::vector<std::pair<std::string, long long>> parts;
        parts.reserve(slot.parts.size());
        for (const papi::QualifiedValue& part : slot.parts) {
          parts.emplace_back(part.core_type.empty()
                                 ? part.native_name
                                 : part.native_name + "[" + part.core_type +
                                       "]",
                             part.valid ? part.value : 0);
        }
        read.parts.push_back(std::move(parts));
      }
    } else {
      auto reading = library_->read_checked(read.sub->eventset);
      if (!reading) {
        read.ok = 0;
        continue;
      }
      read.values = std::move(reading->values);
      read.degraded = std::move(reading->value_degraded);
    }
  }

  // Batched fan-out: ONE template frame per due read per frame shape
  // (the subscription id — the first payload field — is patched per
  // rider at delivery, as is the v3 sequence tail), instead of a full
  // encode per subscriber. Template slots 4*i + {0,1,2,3} hold read
  // i's WireSample-v2 / WireSample-v3 / AggSample-v2 / AggSample-v3
  // rendition; shapes no rider wants stay empty. Encoding is pure, so
  // it parallelizes across due reads (clients_by_id_ is read-only
  // during the encode stage).
  std::vector<std::vector<std::uint8_t>> templates(due.size() * 4);
  const auto encode_templates = [&](std::size_t i) {
    const DueRead& read = due[i];
    bool want[4] = {false, false, false, false};
    for (const Rider& rider : read.sub->subscribers) {
      const auto it = clients_by_id_.find(rider.client_id);
      const bool v3 =
          it != clients_by_id_.end() && it->second->version >= 3;
      want[(rider.aggregate ? 2 : 0) + (v3 ? 1 : 0)] = true;
    }
    if (want[0] || want[1]) {
      WireSample sample;
      sample.subscription_id = 0;  // patched per rider
      sample.seq = 0;              // patched per rider (v3)
      sample.tick = stats_.ticks;
      sample.t_seconds = t_seconds;
      sample.values = read.values;
      sample.degraded = read.degraded;
      sample.counters_ok = read.ok;
      sample.package_temp_c = temp;
      sample.package_power_w = power;
      sample.parts = read.parts;
      if (want[0])
        templates[4 * i] = encode_frame(MsgType::kSample, sample.encode(2));
      if (want[1])
        templates[4 * i + 1] = encode_frame(MsgType::kSample, sample.encode(3));
    }
    if (want[2] || want[3]) {
      // The leaf rendition of the aggregate stream: one contributor,
      // so every statistic collapses onto the local reading.
      AggSample agg;
      agg.subscription_id = 0;  // patched per rider
      agg.seq = 0;              // patched per rider (v3)
      agg.tick = stats_.ticks;
      agg.t_seconds = t_seconds;
      agg.complete = read.ok;
      agg.slots.resize(read.values.size());
      for (std::size_t s = 0; s < read.values.size(); ++s) {
        SlotStats& slot = agg.slots[s];
        slot.sum = slot.min = slot.max = read.values[s];
        slot.avg = static_cast<double>(read.values[s]);
        slot.stddev = 0.0;
        slot.count = 1;
        if (s < read.parts.size()) slot.per_core_type = read.parts[s];
        std::sort(slot.per_core_type.begin(), slot.per_core_type.end());
      }
      if (want[2])
        templates[4 * i + 2] = encode_frame(MsgType::kAggSample, agg.encode(2));
      if (want[3])
        templates[4 * i + 3] = encode_frame(MsgType::kAggSample, agg.encode(3));
    }
  };
  if (encode_pool_ != nullptr) {
    encode_pool_->parallel_for_each(due.size(), encode_templates);
  } else {
    for (std::size_t i = 0; i < due.size(); ++i) encode_templates(i);
  }

  // Sequence numbers are bumped HERE, serially, in the same global
  // (key_id, subscribe order) the delivery list has always used — so
  // they are deterministic for any shard/thread count.
  std::vector<Delivery> deliveries;
  for (std::size_t i = 0; i < due.size(); ++i) {
    for (Rider& rider : due[i].sub->subscribers) {
      ++rider.seq;
      deliveries.push_back({rider.client_id, rider.subscription_id,
                            rider.aggregate ? 4 * i + 2 : 4 * i,
                            rider.aggregate ? 4 * i + 3 : 4 * i + 1,
                            rider.aggregate, rider.seq});
    }
  }
  deliver(templates, deliveries);
}

AggSample Daemon::merge_aggregate(const AggregateShared& agg) const {
  AggSample out;
  out.complete = 1;
  out.slots.resize(agg.slot_count);
  // A leg contributes its latest sample while its link is alive — a
  // slow ticker's slightly stale value is still the truth of that
  // subtree. A DEAD link is excluded entirely: folding its frozen
  // last sample into every future merge would double-count against
  // the live siblings' fresh values.
  const auto leg_alive = [&](std::size_t d) {
    return agg.downstream[d].sub_id != 0 && d < downstreams_.size() &&
           downstreams_[d].alive;
  };
  // complete means: every configured downstream leg is live, reported
  // inside this merge window, and was itself complete. A dead leg or a
  // stale contribution degrades the sample, never blocks it.
  for (std::size_t d = 0; d < agg.downstream.size(); ++d) {
    const DownstreamState& st = agg.downstream[d];
    if (!leg_alive(d) || !st.reported || !st.fresh || !st.latest.complete) {
      out.complete = 0;
    }
  }
  for (std::size_t s = 0; s < agg.slot_count; ++s) {
    SlotStats& slot = out.slots[s];
    // First pass: totals and extrema.
    std::uint64_t count = 0;
    long long mn = LLONG_MAX;
    long long mx = LLONG_MIN;
    std::map<std::string, long long> parts;
    for (std::size_t d = 0; d < agg.downstream.size(); ++d) {
      const DownstreamState& st = agg.downstream[d];
      if (!leg_alive(d) || !st.reported) continue;
      if (s >= st.latest.slots.size()) continue;
      const SlotStats& child = st.latest.slots[s];
      if (child.count == 0) continue;
      slot.sum += child.sum;
      count += child.count;
      mn = std::min(mn, child.min);
      mx = std::max(mx, child.max);
      for (const auto& [label, value] : child.per_core_type) {
        parts[label] += value;
      }
    }
    if (count == 0) continue;
    slot.count = static_cast<std::uint32_t>(count);
    slot.min = mn;
    slot.max = mx;
    slot.avg = static_cast<double>(slot.sum) / static_cast<double>(count);
    // Second pass: exact population-σ composition — combining each
    // child's variance with its mean's offset from the merged mean
    // reproduces the flat gather's σ, so a two-level tree reports the
    // same statistics as one daemon over all the leaves.
    double weighted_var = 0.0;
    for (std::size_t d = 0; d < agg.downstream.size(); ++d) {
      const DownstreamState& st = agg.downstream[d];
      if (!leg_alive(d) || !st.reported) continue;
      if (s >= st.latest.slots.size()) continue;
      const SlotStats& child = st.latest.slots[s];
      if (child.count == 0) continue;
      const double delta = child.avg - slot.avg;
      weighted_var += static_cast<double>(child.count) *
                      (child.stddev * child.stddev + delta * delta);
    }
    slot.stddev = std::sqrt(weighted_var / static_cast<double>(count));
    slot.per_core_type.assign(parts.begin(), parts.end());
  }
  return out;
}

void Daemon::serve_aggregates() {
  if (downstreams_.empty() || agg_subs_.empty()) return;
  // Pump every live downstream once and route its aggregate samples to
  // the matching leg. One faulting or silent downstream contributes
  // nothing this window — its siblings still flow below.
  for (std::size_t d = 0; d < downstreams_.size(); ++d) {
    Downstream& link = downstreams_[d];
    if (!link.alive) continue;
    if (!link.client->connected()) {
      link.alive = false;
      continue;
    }
    // Drain the link completely: a closed peer leaves its final bytes
    // (Goodbye) buffered ahead of the error, and the leg must be seen
    // dead in the same tick so merges stop folding in its frozen last
    // sample.
    while (link.client->pump_once()) {
    }
    if (!link.client->connected()) link.alive = false;
    for (AggSample& sample : link.client->take_agg_samples()) {
      for (auto& [key_id, agg] : agg_subs_) {
        if (d < agg.downstream.size() &&
            agg.downstream[d].sub_id == sample.subscription_id &&
            agg.downstream[d].sub_id != 0) {
          agg.downstream[d].latest = std::move(sample);
          agg.downstream[d].reported = true;
          agg.downstream[d].fresh = true;
          break;
        }
      }
    }
  }

  const double t_seconds =
      kernel_ != nullptr ? kernel_->now().seconds()
                         : static_cast<double>(stats_.ticks);
  std::vector<std::vector<std::uint8_t>> templates;
  std::vector<Delivery> deliveries;
  for (auto& [key_id, agg] : agg_subs_) {
    bool any_fresh = false;
    for (const DownstreamState& st : agg.downstream) any_fresh |= st.fresh;
    if (!any_fresh) continue;  // nothing new — no sample this tick
    AggSample merged = merge_aggregate(agg);
    merged.subscription_id = 0;  // patched per rider
    merged.seq = 0;              // patched per rider (v3)
    merged.tick = stats_.ticks;
    merged.t_seconds = t_seconds;
    bool want_v2 = false;
    bool want_v3 = false;
    for (const Rider& rider : agg.subscribers) {
      const auto it = clients_by_id_.find(rider.client_id);
      const bool v3 = it != clients_by_id_.end() && it->second->version >= 3;
      (v3 ? want_v3 : want_v2) = true;
    }
    const std::size_t v2_index = templates.size();
    templates.push_back(want_v2 ? encode_frame(MsgType::kAggSample,
                                               merged.encode(2))
                                : std::vector<std::uint8_t>{});
    const std::size_t v3_index = templates.size();
    templates.push_back(want_v3 ? encode_frame(MsgType::kAggSample,
                                               merged.encode(3))
                                : std::vector<std::uint8_t>{});
    for (Rider& rider : agg.subscribers) {
      ++rider.seq;
      deliveries.push_back({rider.client_id, rider.subscription_id, v2_index,
                            v3_index, true, rider.seq});
    }
    for (DownstreamState& st : agg.downstream) st.fresh = false;
  }
  deliver(templates, deliveries);
}

void Daemon::heal_downstreams() {
  for (std::size_t d = 0; d < downstreams_.size(); ++d) {
    Downstream& link = downstreams_[d];
    if (link.alive && link.client->connected()) continue;
    link.alive = false;
    if (!link.factory) continue;  // factory-less legs stay dead
    if (stats_.ticks < link.next_retry_tick) continue;
    ++stats_.reconnects;
    const auto back_off = [&] {
      link.backoff_ticks = std::min<std::uint64_t>(link.backoff_ticks * 2, 64);
      link.next_retry_tick = stats_.ticks + link.backoff_ticks;
    };
    auto conn = link.factory();
    if (!conn) {
      back_off();
      continue;
    }
    auto fresh = std::make_unique<Client>(std::move(*conn));
    if (!fresh->hello(config_.name + "/downstream").is_ok()) {
      back_off();
      continue;
    }
    // Adopt the healed link, then re-subscribe this leg of every
    // aggregate. The downstream daemon may have restarted, so every
    // old sub_id is void either way; reported/fresh reset so a stale
    // pre-outage sample can never fold into a post-heal merge.
    link.client = std::move(fresh);
    link.alive = true;
    link.backoff_ticks = 1;
    link.next_retry_tick = 0;
    bool resubscribed_all = true;
    for (auto& [key_id, agg] : agg_subs_) {
      if (d >= agg.downstream.size()) continue;
      DownstreamState& st = agg.downstream[d];
      auto ack = link.client->subscribe_aggregate(agg.spec);
      if (!ack) {
        st.sub_id = 0;
        resubscribed_all = false;
        if (!link.client->connected()) {
          link.alive = false;
          back_off();
          break;
        }
        continue;
      }
      st.sub_id = ack->subscription_id;
      st.reported = false;
      st.fresh = false;
      st.latest = AggSample{};
    }
    if (link.alive && resubscribed_all) ++stats_.downstream_reheals;
  }
}

void Daemon::enforce_liveness() {
  if (config_.ping_interval_ticks == 0) return;
  for (const auto& client : clients_) {
    if (!client->conn->is_open() || client->closing || !client->hello_done) {
      continue;
    }
    if (client->version < 3) continue;  // pre-v3 peers have no Ping verb
    if (client->ping_outstanding) {
      if (stats_.ticks - client->ping_sent_tick <
          config_.ping_interval_ticks) {
        continue;  // still inside this deadline
      }
      ++client->pings_missed;
      ++stats_.pings_missed;
      if (client->pings_missed >= config_.ping_max_missed) {
        // Active subscriptions do NOT save a dead peer — that is the
        // point: a half-open connection must not pin EventSets.
        ++stats_.clients_dropped_liveness;
        teardown_client(*client);
        Goodbye bye;
        bye.reason = "dropped: liveness timeout";
        enqueue(*client, MsgType::kGoodbye, bye.encode());
        client->closing = true;
        continue;
      }
      Ping ping;  // next deadline
      ping.token = stats_.ticks;
      enqueue(*client, MsgType::kPing, ping.encode());
      client->ping_sent_tick = stats_.ticks;
    } else if (stats_.ticks - client->last_activity_tick >=
               config_.ping_interval_ticks) {
      Ping ping;
      ping.token = stats_.ticks;
      enqueue(*client, MsgType::kPing, ping.encode());
      client->ping_sent_tick = stats_.ticks;
      client->ping_outstanding = true;
    }
  }
}

void Daemon::tick() {
  if (library_ == nullptr || shut_down_) return;
  ++stats_.ticks;
  serve_subscriptions();
  heal_downstreams();
  serve_aggregates();
  enforce_liveness();

  if (config_.idle_timeout_ticks > 0) {
    for (const auto& client : clients_) {
      if (!client->conn->is_open() || client->closing) continue;
      if (!client->subscriptions.empty() ||
          !client->agg_subscriptions.empty()) {
        continue;
      }
      if (stats_.ticks - client->last_activity_tick <
          config_.idle_timeout_ticks) {
        continue;
      }
      ++stats_.clients_closed_idle;
      teardown_client(*client);
      Goodbye bye;
      bye.reason = "disconnected: idle timeout";
      enqueue(*client, MsgType::kGoodbye, bye.encode());
      client->closing = true;
    }
  }

  for (const auto& client : clients_) {
    if (!client->conn->is_open()) continue;
    enforce_queue_cap(*client);
    flush_client(*client);
  }
  reap_closed();
}

void Daemon::shutdown() {
  if (shut_down_ || library_ == nullptr) {
    shut_down_ = true;
    return;
  }
  // Graceful drain: every surviving client gets a Goodbye and one flush
  // attempt; then all measurement state is released so the backend's fd
  // ledger reads zero.
  for (const auto& client : clients_) {
    if (!client->conn->is_open()) continue;
    Goodbye bye;
    bye.reason = "daemon shutting down";
    enqueue(*client, MsgType::kGoodbye, bye.encode());
    client->closing = true;
    flush_client(*client, config_.shutdown_max_flush_ops);
    teardown_client(*client);
    client->conn->close();
  }
  clients_.clear();
  clients_by_id_.clear();
  // Downstream legs: a polite Close releases the subscriptions we hold
  // on the next daemon down the tree.
  for (Downstream& link : downstreams_) {
    if (link.alive && link.client->connected()) (void)link.client->close();
    link.alive = false;
  }
  agg_subs_.clear();
  agg_key_ids_.clear();
  // Shared subscriptions whose owners vanished without teardown.
  for (auto& [key_id, sub] : shared_subs_) {
    (void)library_->force_destroy_eventset(sub.eventset);
  }
  shared_subs_.clear();
  key_ids_.clear();
  shut_down_ = true;
}

}  // namespace hetpapi::service
