#include "service/daemon.hpp"

#include <algorithm>
#include <cmath>

#include "base/log.hpp"
#include "base/strings.hpp"

namespace hetpapi::service {

namespace {

/// One coalescing key: target kind/id, period, qualified flag, then the
/// ordered canonical event names. Order-sensitive by design — the
/// streamed value vector must match each subscriber's requested slot
/// order, so differently-ordered lists are distinct subscriptions.
std::string make_key(TargetKind kind, std::int64_t target,
                     std::uint32_t period_ticks, bool qualified,
                     const std::vector<std::string>& canonical_events) {
  std::string key = str_format("k%d|t%lld|p%u|q%d|",
                               static_cast<int>(kind),
                               static_cast<long long>(target), period_ticks,
                               qualified ? 1 : 0);
  for (const std::string& event : canonical_events) {
    key += event;
    key += '\x1f';
  }
  return key;
}

}  // namespace

Daemon::Daemon(simkernel::SimKernel* kernel, papi::Backend* backend,
               DaemonConfig config)
    : kernel_(kernel), backend_(backend), config_(std::move(config)) {}

Daemon::~Daemon() { shutdown(); }

Status Daemon::init() {
  auto lib = papi::Library::init(backend_, config_.library);
  if (!lib) return lib.status();
  library_ = std::move(*lib);
  if (config_.include_telemetry && kernel_ != nullptr) {
    sampler_ = std::make_unique<telemetry::Sampler>(kernel_);
    sampler_->reset();
  }
  if (config_.encode_threads > 1) {
    encode_pool_ = std::make_unique<ThreadPool>(config_.encode_threads);
  }
  return Status::ok();
}

void Daemon::add_listener(Listener* listener) {
  listeners_.push_back(listener);
}

std::size_t Daemon::session_count() const {
  std::size_t n = 0;
  for (const auto& client : clients_) n += client->sessions.size();
  return n;
}

std::size_t Daemon::total_subscriber_count() const {
  std::size_t n = 0;
  for (const auto& [key_id, sub] : shared_subs_) n += sub.subscribers.size();
  return n;
}

// --- wire plumbing ---------------------------------------------------------

void Daemon::accept_pending() {
  for (Listener* listener : listeners_) {
    for (;;) {
      auto conn = listener->accept();
      if (!conn) break;
      auto client = std::make_unique<ClientState>();
      client->id = next_client_id_++;
      client->conn = std::move(*conn);
      client->last_activity_tick = stats_.ticks;
      clients_.push_back(std::move(client));
    }
  }
}

void Daemon::enqueue(ClientState& client, MsgType type,
                     const std::vector<std::uint8_t>& payload) {
  client.out.push_back({encode_frame(type, payload), 0});
  ++stats_.frames_sent;
}

void Daemon::enqueue_error(ClientState& client, MsgType in_reply_to,
                           const Status& s) {
  WireError err;
  err.code = static_cast<std::int32_t>(s.code());
  err.in_reply_to = static_cast<std::uint8_t>(in_reply_to);
  err.message = s.message();
  enqueue(client, MsgType::kError, err.encode());
}

void Daemon::flush_client(ClientState& client) {
  if (!client.conn->is_open()) {
    client.out.clear();
    return;
  }
  while (!client.out.empty()) {
    PendingBytes& front = client.out.front();
    auto sent = client.conn->send(front.bytes.data() + front.offset,
                                  front.bytes.size() - front.offset);
    if (!sent) {  // peer gone
      teardown_client(client);
      client.conn->close();
      return;
    }
    if (*sent == 0) return;  // would block; retry next poll/tick
    front.offset += *sent;
    if (front.offset >= front.bytes.size()) client.out.pop_front();
  }
  if (client.closing) client.conn->close();
}

void Daemon::enforce_queue_cap(ClientState& client) {
  if (client.closing || client.out.size() <= config_.max_client_queue_frames) {
    return;
  }
  // Slow-client drop: releasing its subscriptions keeps one wedged
  // consumer from growing daemon memory without bound or stalling the
  // shared tick. One best-effort Goodbye, then the connection dies.
  ++stats_.clients_dropped_slow;
  teardown_client(client);
  client.out.clear();
  Goodbye bye;
  bye.reason = "dropped: send queue overflow (slow client)";
  const auto frame = encode_frame(MsgType::kGoodbye, bye.encode());
  (void)client.conn->send(frame.data(), frame.size());
  ++stats_.frames_sent;
  client.conn->close();
}

void Daemon::reap_closed() {
  std::erase_if(clients_, [&](const std::unique_ptr<ClientState>& client) {
    if (client->conn->is_open()) return false;
    teardown_client(*client);
    return true;
  });
}

void Daemon::drain_client(ClientState& client) {
  std::vector<std::uint8_t> bytes;
  for (;;) {
    auto n = client.conn->receive(bytes);
    if (!n) {  // peer closed or transport error
      teardown_client(client);
      client.conn->close();
      return;
    }
    if (*n == 0) break;
  }
  if (!bytes.empty()) {
    client.reader.feed(bytes);
    client.last_activity_tick = stats_.ticks;
  }
  for (;;) {
    auto frame = client.reader.next();
    if (!frame) {
      if (client.reader.corrupt()) {
        ++stats_.protocol_errors;
        teardown_client(client);
        client.conn->close();
      }
      return;
    }
    dispatch(client, *frame);
    if (!client.conn->is_open()) return;
  }
}

void Daemon::dispatch(ClientState& client, const Frame& frame) {
  ++stats_.frames_received;
  if (!client.hello_done && frame.type != MsgType::kHello) {
    ++stats_.protocol_errors;
    enqueue_error(client, frame.type,
                  make_error(StatusCode::kPermission,
                             "handshake required before " +
                                 std::string(to_string(frame.type))));
    client.closing = true;
    return;
  }
  switch (frame.type) {
    case MsgType::kHello: on_hello(client, frame); return;
    case MsgType::kOpenSession: on_open_session(client, frame); return;
    case MsgType::kAddEvents: on_add_events(client, frame); return;
    case MsgType::kStart: on_start(client, frame); return;
    case MsgType::kRead: on_read(client, frame); return;
    case MsgType::kSubscribe: on_subscribe(client, frame); return;
    case MsgType::kUnsubscribe: on_unsubscribe(client, frame); return;
    case MsgType::kGetStats: on_get_stats(client, frame); return;
    case MsgType::kClose: on_close(client, frame); return;
    default:
      ++stats_.protocol_errors;
      enqueue_error(client, frame.type,
                    make_error(StatusCode::kNotSupported,
                               "unexpected message type"));
      return;
  }
}

// --- handlers --------------------------------------------------------------

void Daemon::on_hello(ClientState& client, const Frame& frame) {
  auto msg = Hello::decode(frame);
  if (!msg) {
    ++stats_.protocol_errors;
    enqueue_error(client, frame.type, msg.status());
    client.closing = true;
    return;
  }
  if (msg->version != kProtocolVersion) {
    ++stats_.protocol_errors;
    enqueue_error(
        client, frame.type,
        make_error(StatusCode::kNotSupported,
                   str_format("protocol version %u not supported (daemon "
                              "speaks %u)",
                              msg->version, kProtocolVersion)));
    client.closing = true;
    return;
  }
  client.hello_done = true;
  HelloAck ack;
  ack.client_id = client.id;
  ack.server_name = config_.name;
  enqueue(client, MsgType::kHelloAck, ack.encode());
}

Expected<int> Daemon::build_eventset(TargetKind kind, std::int64_t target,
                                     const std::vector<std::string>& events,
                                     std::vector<std::string>* canonical_out) {
  auto set = library_->create_eventset();
  if (!set) return set.status();
  const auto fail = [&](const Status& s) -> Expected<int> {
    (void)library_->destroy_eventset(*set);
    return s;
  };
  switch (kind) {
    case TargetKind::kDefault: break;
    case TargetKind::kThread: {
      const Status s =
          library_->attach(*set, static_cast<simkernel::Tid>(target));
      if (!s.is_ok()) return fail(s);
      break;
    }
    case TargetKind::kCpu: {
      const Status s = library_->attach_cpu(*set, static_cast<int>(target));
      if (!s.is_ok()) return fail(s);
      break;
    }
  }
  for (const std::string& event : events) {
    auto canonical = library_->canonical_event_name(event);
    if (!canonical) return fail(canonical.status());
    const Status added = library_->add_event(*set, event);
    if (!added.is_ok()) return fail(added);
    if (canonical_out != nullptr) canonical_out->push_back(std::move(*canonical));
  }
  return *set;
}

void Daemon::on_open_session(ClientState& client, const Frame& frame) {
  auto msg = OpenSession::decode(frame);
  if (!msg) {
    enqueue_error(client, frame.type, msg.status());
    return;
  }
  auto set = build_eventset(msg->target_kind, msg->target, {}, nullptr);
  if (!set) {
    enqueue_error(client, frame.type, set.status());
    return;
  }
  Session session;
  session.eventset = *set;
  const std::uint32_t session_id = next_session_id_++;
  client.sessions.emplace(session_id, std::move(session));
  OpenSessionAck ack;
  ack.session_id = session_id;
  enqueue(client, MsgType::kOpenSessionAck, ack.encode());
}

void Daemon::on_add_events(ClientState& client, const Frame& frame) {
  auto msg = AddEvents::decode(frame);
  if (!msg) {
    enqueue_error(client, frame.type, msg.status());
    return;
  }
  const auto it = client.sessions.find(msg->session_id);
  if (it == client.sessions.end()) {
    enqueue_error(client, frame.type,
                  make_error(StatusCode::kNoEventSet, "no such session"));
    return;
  }
  Session& session = it->second;
  // Atomic add: either every event in the request lands or none does.
  AddEventsAck ack;
  std::size_t added = 0;
  Status failure = Status::ok();
  for (const std::string& event : msg->events) {
    auto canonical = library_->canonical_event_name(event);
    if (canonical) {
      const Status s = library_->add_event(session.eventset, event);
      if (s.is_ok()) {
        ack.canonical_names.push_back(std::move(*canonical));
        ++added;
        continue;
      }
      failure = s;
    } else {
      failure = canonical.status();
    }
    for (std::size_t i = added; i-- > 0;) {
      (void)library_->remove_event(session.eventset, msg->events[i]);
    }
    enqueue_error(client, frame.type, failure);
    return;
  }
  session.canonical_names.insert(session.canonical_names.end(),
                                 ack.canonical_names.begin(),
                                 ack.canonical_names.end());
  enqueue(client, MsgType::kAddEventsAck, ack.encode());
}

void Daemon::on_start(ClientState& client, const Frame& frame) {
  auto msg = Start::decode(frame);
  if (!msg) {
    enqueue_error(client, frame.type, msg.status());
    return;
  }
  const auto it = client.sessions.find(msg->session_id);
  if (it == client.sessions.end()) {
    enqueue_error(client, frame.type,
                  make_error(StatusCode::kNoEventSet, "no such session"));
    return;
  }
  const Status s = library_->start(it->second.eventset);
  if (!s.is_ok()) {
    enqueue_error(client, frame.type, s);
    return;
  }
  enqueue(client, MsgType::kStartAck, {});
}

void Daemon::on_read(ClientState& client, const Frame& frame) {
  auto msg = Read::decode(frame);
  if (!msg) {
    enqueue_error(client, frame.type, msg.status());
    return;
  }
  const auto it = client.sessions.find(msg->session_id);
  if (it == client.sessions.end()) {
    enqueue_error(client, frame.type,
                  make_error(StatusCode::kNoEventSet, "no such session"));
    return;
  }
  auto reading = library_->read_checked(it->second.eventset);
  if (!reading) {
    enqueue_error(client, frame.type, reading.status());
    return;
  }
  ++stats_.backend_reads;
  ReadReply reply;
  reply.values = std::move(reading->values);
  reply.degraded = std::move(reading->value_degraded);
  enqueue(client, MsgType::kReadReply, reply.encode());
}

void Daemon::on_subscribe(ClientState& client, const Frame& frame) {
  auto msg = Subscribe::decode(frame);
  if (!msg) {
    enqueue_error(client, frame.type, msg.status());
    return;
  }
  if (msg->period_ticks == 0 || msg->events.empty()) {
    enqueue_error(client, frame.type,
                  make_error(StatusCode::kInvalidArgument,
                             "subscription needs events and period >= 1"));
    return;
  }
  const std::uint32_t sub_id = next_subscription_id_++;
  auto key_id = join_subscription(client, sub_id, *msg);
  if (!key_id) {
    enqueue_error(client, frame.type, key_id.status());
    return;
  }
  client.subscriptions.emplace(sub_id, *key_id);
  SubscribeAck ack;
  ack.subscription_id = sub_id;
  ack.shared_key_id = *key_id;
  enqueue(client, MsgType::kSubscribeAck, ack.encode());
}

Expected<std::uint32_t> Daemon::join_subscription(ClientState& client,
                                                  std::uint32_t subscription_id,
                                                  const Subscribe& spec) {
  std::vector<std::string> canonical;
  canonical.reserve(spec.events.size());
  for (const std::string& event : spec.events) {
    auto name = library_->canonical_event_name(event);
    if (!name) return name.status();
    canonical.push_back(std::move(*name));
  }
  const std::string key = make_key(spec.target_kind, spec.target,
                                   spec.period_ticks, spec.qualified != 0,
                                   canonical);
  if (const auto it = key_ids_.find(key); it != key_ids_.end()) {
    shared_subs_[it->second].subscribers.emplace_back(client.id,
                                                      subscription_id);
    return it->second;
  }
  auto set = build_eventset(spec.target_kind, spec.target, spec.events,
                            nullptr);
  if (!set) return set.status();
  if (const Status s = library_->start(*set); !s.is_ok()) {
    (void)library_->destroy_eventset(*set);
    return s;
  }
  SharedSubscription sub;
  sub.key_id = next_key_id_++;
  sub.key = key;
  sub.eventset = *set;
  sub.period_ticks = spec.period_ticks;
  sub.qualified = spec.qualified != 0;
  sub.subscribers.emplace_back(client.id, subscription_id);
  key_ids_.emplace(key, sub.key_id);
  const std::uint32_t key_id = sub.key_id;
  shared_subs_.emplace(key_id, std::move(sub));
  return key_id;
}

void Daemon::leave_subscription(std::uint32_t client_id, std::uint32_t sub_id,
                                std::uint32_t key_id) {
  const auto it = shared_subs_.find(key_id);
  if (it == shared_subs_.end()) return;
  SharedSubscription& sub = it->second;
  std::erase_if(sub.subscribers, [&](const auto& pair) {
    return pair.first == client_id && pair.second == sub_id;
  });
  if (!sub.subscribers.empty()) return;
  // Last rider gone: tear the shared EventSet down.
  if (library_->eventset_running(sub.eventset)) {
    (void)library_->stop(sub.eventset);
  }
  (void)library_->destroy_eventset(sub.eventset);
  key_ids_.erase(sub.key);
  shared_subs_.erase(it);
}

void Daemon::on_unsubscribe(ClientState& client, const Frame& frame) {
  auto msg = Unsubscribe::decode(frame);
  if (!msg) {
    enqueue_error(client, frame.type, msg.status());
    return;
  }
  const auto it = client.subscriptions.find(msg->subscription_id);
  if (it == client.subscriptions.end()) {
    enqueue_error(client, frame.type,
                  make_error(StatusCode::kNotFound, "no such subscription"));
    return;
  }
  leave_subscription(client.id, it->first, it->second);
  client.subscriptions.erase(it);
  enqueue(client, MsgType::kUnsubscribeAck, {});
}

void Daemon::on_get_stats(ClientState& client, const Frame& frame) {
  auto msg = GetStats::decode(frame);
  if (!msg) {
    enqueue_error(client, frame.type, msg.status());
    return;
  }
  StatsReply reply;
  reply.ticks = stats_.ticks;
  reply.backend_reads = stats_.backend_reads;
  reply.samples_delivered = stats_.samples_delivered;
  reply.frames_received = stats_.frames_received;
  reply.frames_sent = stats_.frames_sent;
  reply.active_clients = static_cast<std::uint32_t>(clients_.size());
  reply.active_sessions = static_cast<std::uint32_t>(session_count());
  reply.distinct_subscriptions =
      static_cast<std::uint32_t>(shared_subs_.size());
  reply.total_subscribers =
      static_cast<std::uint32_t>(total_subscriber_count());
  reply.clients_dropped_slow = stats_.clients_dropped_slow;
  reply.clients_closed_idle = stats_.clients_closed_idle;
  enqueue(client, MsgType::kStatsReply, reply.encode());
}

void Daemon::on_close(ClientState& client, const Frame& frame) {
  auto msg = Close::decode(frame);
  if (!msg) {
    enqueue_error(client, frame.type, msg.status());
    return;
  }
  teardown_client(client);
  enqueue(client, MsgType::kCloseAck, {});
  client.closing = true;
}

void Daemon::teardown_client(ClientState& client) {
  for (const auto& [sub_id, key_id] : client.subscriptions) {
    leave_subscription(client.id, sub_id, key_id);
  }
  client.subscriptions.clear();
  for (const auto& [session_id, session] : client.sessions) {
    if (library_->eventset_running(session.eventset)) {
      (void)library_->stop(session.eventset);
    }
    (void)library_->destroy_eventset(session.eventset);
  }
  client.sessions.clear();
}

// --- the two drive shafts --------------------------------------------------

void Daemon::poll() {
  if (library_ == nullptr || shut_down_) return;
  accept_pending();
  for (const auto& client : clients_) {
    if (!client->conn->is_open()) continue;
    drain_client(*client);
  }
  for (const auto& client : clients_) {
    if (!client->conn->is_open()) continue;
    enforce_queue_cap(*client);
    flush_client(*client);
  }
  reap_closed();
}

void Daemon::serve_subscriptions() {
  struct DueRead {
    const SharedSubscription* sub;
    std::vector<long long> values;
    std::vector<std::uint8_t> degraded;
    std::vector<std::vector<std::pair<std::string, long long>>> parts;
    std::uint8_t ok = 1;
  };
  std::vector<DueRead> due;
  for (const auto& [key_id, sub] : shared_subs_) {
    if (stats_.ticks % sub.period_ticks == 0) due.push_back({&sub, {}, {}, {}, 1});
  }
  if (due.empty()) return;

  const double t_seconds =
      kernel_ != nullptr ? kernel_->now().seconds()
                         : static_cast<double>(stats_.ticks);
  double temp = std::nan("");
  double power = std::nan("");
  if (sampler_ != nullptr) {
    const telemetry::Sample s = sampler_->sample();
    temp = s.package_temp_c;
    power = s.package_power_w;
  }

  // The coalescing payoff: ONE backend read per distinct subscription,
  // regardless of how many clients ride it. Reads stay serial — the
  // backend is not a concurrent structure.
  for (DueRead& read : due) {
    ++stats_.backend_reads;
    if (read.sub->qualified) {
      auto q = library_->read_qualified(read.sub->eventset);
      if (!q) {
        read.ok = 0;
        continue;
      }
      for (const papi::QualifiedReading& slot : *q) {
        read.values.push_back(slot.total);
        read.degraded.push_back(slot.degraded ? 1 : 0);
        std::vector<std::pair<std::string, long long>> parts;
        parts.reserve(slot.parts.size());
        for (const papi::QualifiedValue& part : slot.parts) {
          parts.emplace_back(part.core_type.empty()
                                 ? part.native_name
                                 : part.native_name + "[" + part.core_type +
                                       "]",
                             part.valid ? part.value : 0);
        }
        read.parts.push_back(std::move(parts));
      }
    } else {
      auto reading = library_->read_checked(read.sub->eventset);
      if (!reading) {
        read.ok = 0;
        continue;
      }
      read.values = std::move(reading->values);
      read.degraded = std::move(reading->value_degraded);
    }
  }

  // Fan out: one frame per (due subscription, subscriber). Encoding is
  // pure, so it parallelizes; the merge below is in deterministic job
  // order, which makes the byte stream identical for any thread count.
  struct Job {
    const DueRead* read;
    std::uint32_t client_id;
    std::uint32_t subscription_id;
  };
  std::vector<Job> jobs;
  for (const DueRead& read : due) {
    for (const auto& [client_id, sub_id] : read.sub->subscribers) {
      jobs.push_back({&read, client_id, sub_id});
    }
  }
  std::vector<std::vector<std::uint8_t>> frames(jobs.size());
  const auto encode_job = [&](std::size_t i) {
    const Job& job = jobs[i];
    WireSample sample;
    sample.subscription_id = job.subscription_id;
    sample.tick = stats_.ticks;
    sample.t_seconds = t_seconds;
    sample.values = job.read->values;
    sample.degraded = job.read->degraded;
    sample.counters_ok = job.read->ok;
    sample.package_temp_c = temp;
    sample.package_power_w = power;
    sample.parts = job.read->parts;
    frames[i] = encode_frame(MsgType::kSample, sample.encode());
  };
  if (encode_pool_ != nullptr) {
    encode_pool_->parallel_for_each(jobs.size(), encode_job);
  } else {
    for (std::size_t i = 0; i < jobs.size(); ++i) encode_job(i);
  }

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    for (const auto& client : clients_) {
      if (client->id != jobs[i].client_id) continue;
      client->out.push_back({std::move(frames[i]), 0});
      ++stats_.frames_sent;
      ++stats_.samples_delivered;
      break;
    }
  }
}

void Daemon::tick() {
  if (library_ == nullptr || shut_down_) return;
  ++stats_.ticks;
  serve_subscriptions();

  if (config_.idle_timeout_ticks > 0) {
    for (const auto& client : clients_) {
      if (!client->conn->is_open() || client->closing) continue;
      if (!client->subscriptions.empty()) continue;
      if (stats_.ticks - client->last_activity_tick <
          config_.idle_timeout_ticks) {
        continue;
      }
      ++stats_.clients_closed_idle;
      teardown_client(*client);
      Goodbye bye;
      bye.reason = "disconnected: idle timeout";
      enqueue(*client, MsgType::kGoodbye, bye.encode());
      client->closing = true;
    }
  }

  for (const auto& client : clients_) {
    if (!client->conn->is_open()) continue;
    enforce_queue_cap(*client);
    flush_client(*client);
  }
  reap_closed();
}

void Daemon::shutdown() {
  if (shut_down_ || library_ == nullptr) {
    shut_down_ = true;
    return;
  }
  // Graceful drain: every surviving client gets a Goodbye and one flush
  // attempt; then all measurement state is released so the backend's fd
  // ledger reads zero.
  for (const auto& client : clients_) {
    if (!client->conn->is_open()) continue;
    Goodbye bye;
    bye.reason = "daemon shutting down";
    enqueue(*client, MsgType::kGoodbye, bye.encode());
    client->closing = true;
    flush_client(*client);
    teardown_client(*client);
    client->conn->close();
  }
  clients_.clear();
  // Shared subscriptions whose owners vanished without teardown.
  for (auto& [key_id, sub] : shared_subs_) {
    if (library_->eventset_running(sub.eventset)) {
      (void)library_->stop(sub.eventset);
    }
    (void)library_->destroy_eventset(sub.eventset);
  }
  shared_subs_.clear();
  key_ids_.clear();
  shut_down_ = true;
}

}  // namespace hetpapi::service
