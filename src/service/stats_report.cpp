#include "service/stats_report.hpp"

#include "base/strings.hpp"
#include "base/table.hpp"

namespace hetpapi::service {

std::string render_agg_stats_report(const std::vector<std::string>& events,
                                    const AggSample& sample) {
  TextTable table({"event", "sum", "min", "max", "avg", "stddev", "n"});
  for (std::size_t i = 0; i < sample.slots.size(); ++i) {
    const SlotStats& slot = sample.slots[i];
    const std::string name =
        i < events.size() ? events[i] : str_format("slot%zu", i);
    table.add_row({name, str_format("%lld", slot.sum),
                   str_format("%lld", slot.min), str_format("%lld", slot.max),
                   str_format("%.1f", slot.avg),
                   str_format("%.1f", slot.stddev),
                   str_format("%u", slot.count)});
  }
  std::string out = str_format(
      "aggregate statistics @ tick %llu (t=%.3fs, %s)\n",
      static_cast<unsigned long long>(sample.tick), sample.t_seconds,
      sample.complete ? "complete" : "partial");
  out += table.render();
  for (std::size_t i = 0; i < sample.slots.size(); ++i) {
    const SlotStats& slot = sample.slots[i];
    if (slot.per_core_type.empty()) continue;
    const std::string name =
        i < events.size() ? events[i] : str_format("slot%zu", i);
    out += str_format("%s per-core-type:", name.c_str());
    for (const auto& [label, value] : slot.per_core_type) {
      out += str_format(" %s=%lld", label.c_str(), value);
    }
    out += "\n";
  }
  return out;
}

telemetry::Sample to_telemetry_sample(const AggSample& sample) {
  telemetry::Sample out;
  out.t_seconds = sample.t_seconds;
  out.counters_ok = sample.complete != 0;
  out.counters.reserve(sample.slots.size());
  out.counter_parts.reserve(sample.slots.size());
  for (const SlotStats& slot : sample.slots) {
    out.counters.push_back(static_cast<double>(slot.sum));
    std::vector<double> parts;
    parts.reserve(slot.per_core_type.size());
    for (const auto& [label, value] : slot.per_core_type) {
      parts.push_back(static_cast<double>(value));
    }
    out.counter_parts.push_back(std::move(parts));
  }
  return out;
}

}  // namespace hetpapi::service
